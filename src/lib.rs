//! # samr-dlb — facade crate
//!
//! Re-exports the whole workspace: the SAMR substrate, the distributed-system
//! simulator, both DLB schemes, the driver, and the metrics helpers. See the
//! README for a tour and `examples/` for runnable scenarios.
//!
//! ```
//! use samr_dlb::prelude::*;
//!
//! // 2 processors at each of two sites, joined by the MREN OC-3 WAN preset
//! let sys = presets::anl_ncsa_wan(2, 2, 7);
//!
//! // a small ShockPool3D run under the paper's distributed DLB
//! let mut cfg = RunConfig::new(
//!     AppKind::ShockPool3D,
//!     16,                               // 16³ level-0 domain
//!     2,                                // level-0 steps
//!     samr_engine::Scheme::distributed_default(),
//! );
//! cfg.max_levels = 3;
//! let result = Driver::new(sys, cfg).run();
//!
//! assert!(result.total_secs > 0.0);
//! assert!(result.levels >= 2, "the shock triggered refinement");
//! println!("{}", result.summary());
//! ```

pub use dlb;
pub use forecast;
pub use metrics;
pub use samr_engine as engine;
pub use samr_mesh as mesh;
pub use samr_solvers as solvers;
pub use simnet;
pub use telemetry;
pub use topology;

/// Commonly used items in one import.
pub mod prelude {
    pub use dlb::{DistributedDlb, DistributedDlbConfig, LoadBalancer, ParallelDlb};
    pub use samr_engine::{AppKind, Driver, RunConfig, RunResult};
    pub use telemetry::Telemetry;
    pub use topology::presets;
    pub use topology::{DistributedSystem, SimTime};
}
