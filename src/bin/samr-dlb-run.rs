//! `samr-dlb-run` — command-line runner for one simulated SAMR execution.
//!
//! ```text
//! samr-dlb-run [--app shockpool3d|amr64|advect] [--scheme distributed|parallel|static]
//!              [--testbed wan|lan|smp|three-site|hetero] [--procs N] [--n0 N]
//!              [--steps N] [--levels N] [--gamma F] [--seed N] [--json]
//! ```
//!
//! Prints the run summary (and the full result as JSON with `--json`).

use samr_dlb::prelude::*;
use samr_engine::Scheme;

struct Args {
    app: AppKind,
    scheme: String,
    testbed: String,
    procs: usize,
    n0: i64,
    steps: usize,
    levels: usize,
    gamma: f64,
    seed: u64,
    json: bool,
}

fn parse() -> Result<Args, String> {
    let mut a = Args {
        app: AppKind::ShockPool3D,
        scheme: "distributed".into(),
        testbed: "wan".into(),
        procs: 4,
        n0: 24,
        steps: 4,
        levels: 4,
        gamma: 2.0,
        seed: 42,
        json: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut val = || -> Result<&str, String> {
            i += 1;
            argv.get(i)
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--app" => {
                a.app = match val()? {
                    "shockpool3d" => AppKind::ShockPool3D,
                    "amr64" => AppKind::Amr64,
                    "advect" => AppKind::AdvectBlob,
                    x => return Err(format!("unknown app {x}")),
                }
            }
            "--scheme" => a.scheme = val()?.to_string(),
            "--testbed" => a.testbed = val()?.to_string(),
            "--procs" => a.procs = val()?.parse().map_err(|e| format!("{e}"))?,
            "--n0" => a.n0 = val()?.parse().map_err(|e| format!("{e}"))?,
            "--steps" => a.steps = val()?.parse().map_err(|e| format!("{e}"))?,
            "--levels" => a.levels = val()?.parse().map_err(|e| format!("{e}"))?,
            "--gamma" => a.gamma = val()?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => a.seed = val()?.parse().map_err(|e| format!("{e}"))?,
            "--json" => a.json = true,
            "--help" | "-h" => {
                println!(
                    "usage: samr-dlb-run [--app shockpool3d|amr64|advect] \
                     [--scheme distributed|parallel|static] \
                     [--testbed wan|lan|smp|three-site|hetero] [--procs N] \
                     [--n0 N] [--steps N] [--levels N] [--gamma F] [--seed N] [--json]"
                );
                std::process::exit(0);
            }
            x => return Err(format!("unknown flag {x}")),
        }
        i += 1;
    }
    Ok(a)
}

fn main() {
    let a = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let per_site = a.procs.div_ceil(2).max(1);
    let sys = match a.testbed.as_str() {
        "wan" => presets::anl_ncsa_wan(per_site, per_site, a.seed),
        "lan" => presets::anl_lan_pair(per_site, per_site, a.seed),
        "smp" => presets::single_origin2000(a.procs.max(1)),
        "three-site" => {
            let per = (a.procs / 3).max(1);
            presets::three_site_wan(per, per, per, a.seed)
        }
        "hetero" => presets::heterogeneous_wan(per_site, per_site, 2.0, a.seed),
        x => {
            eprintln!("error: unknown testbed {x}");
            std::process::exit(2);
        }
    };
    let scheme = match a.scheme.as_str() {
        "distributed" => Scheme::Distributed(dlb::DistributedDlbConfig {
            gamma: a.gamma,
            ..Default::default()
        }),
        "parallel" => Scheme::Parallel,
        "static" => Scheme::Static,
        x => {
            eprintln!("error: unknown scheme {x}");
            std::process::exit(2);
        }
    };

    let mut cfg = RunConfig::new(a.app, a.n0, a.steps, scheme);
    cfg.max_levels = a.levels;
    cfg.seed = a.seed;
    let result = Driver::new(sys, cfg).run();

    if a.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&result).expect("result serializes")
        );
    } else {
        println!("{}", result.summary());
        println!(
            "levels {}  grids {}  cell-updates {}  remote {} msgs / {} bytes",
            result.levels,
            result.final_patches,
            result.cell_updates,
            result.breakdown.remote_msgs,
            result.breakdown.remote_bytes
        );
    }
}
