//! Integration tests asserting the paper's headline claims hold in shape on
//! quick-scale runs (the full-scale numbers live in EXPERIMENTS.md).

use samr_dlb::prelude::*;
use samr_engine::Scheme;

fn run(app: AppKind, sys: DistributedSystem, scheme: Scheme, steps: usize) -> samr_engine::RunResult {
    let cfg = RunConfig::new(app, 16, steps, scheme);
    let mut cfg = cfg;
    cfg.max_levels = 3;
    Driver::new(sys, cfg).run()
}

#[test]
fn fig3_shape_distributed_comm_dominates() {
    // §3 / Fig. 3: same parallel DLB, parallel machine vs WAN system —
    // compute similar, communication much larger on the distributed system.
    let par = run(
        AppKind::ShockPool3D,
        presets::single_origin2000(4),
        Scheme::Parallel,
        3,
    );
    let dist = run(
        AppKind::ShockPool3D,
        presets::anl_ncsa_wan(2, 2, 7),
        Scheme::Parallel,
        3,
    );
    let compute_ratio = dist.breakdown.compute / par.breakdown.compute;
    assert!(
        (0.8..1.25).contains(&compute_ratio),
        "computation should be similar: {compute_ratio}"
    );
    assert!(
        dist.breakdown.comm > 3.0 * par.breakdown.comm,
        "distributed communication ({:.2}s) must dwarf parallel ({:.2}s)",
        dist.breakdown.comm,
        par.breakdown.comm
    );
}

#[test]
fn fig7_shape_distributed_dlb_wins_on_both_testbeds() {
    for (app, sys) in [
        (AppKind::ShockPool3D, presets::anl_ncsa_wan(2, 2, 7)),
        (AppKind::Amr64, presets::anl_lan_pair(2, 2, 7)),
    ] {
        let par = run(app, sys.clone(), Scheme::Parallel, 3);
        let dist = run(app, sys, Scheme::distributed_default(), 3);
        let imp = metrics::improvement_percent(par.total_secs, dist.total_secs);
        assert!(
            imp > 0.0,
            "{app:?}: distributed DLB must improve over parallel DLB, got {imp:.1}%"
        );
    }
}

#[test]
fn fig8_shape_distributed_dlb_more_efficient() {
    let app = AppKind::ShockPool3D;
    let seq = run(app, presets::single_origin2000(1), Scheme::Static, 3);
    let sys = presets::anl_ncsa_wan(2, 2, 7);
    let p_total = sys.total_power();
    let par = run(app, sys.clone(), Scheme::Parallel, 3);
    let dist = run(app, sys, Scheme::distributed_default(), 3);
    let e_par = metrics::efficiency(seq.total_secs, par.total_secs, p_total);
    let e_dist = metrics::efficiency(seq.total_secs, dist.total_secs, p_total);
    assert!(e_dist > e_par, "efficiency {e_dist:.3} vs {e_par:.3}");
    assert!(e_par > 0.0 && e_dist <= 1.5, "sane range: {e_par} {e_dist}");
}

#[test]
fn mechanism_remote_traffic_reduced() {
    // the mechanism behind the improvement: far less remote data motion
    let sys = presets::anl_ncsa_wan(2, 2, 7);
    let par = run(AppKind::ShockPool3D, sys.clone(), Scheme::Parallel, 3);
    let dist = run(AppKind::ShockPool3D, sys, Scheme::distributed_default(), 3);
    assert!(
        (dist.breakdown.remote_bytes as f64) < 0.5 * par.breakdown.remote_bytes as f64,
        "remote bytes {} vs {}",
        dist.breakdown.remote_bytes,
        par.breakdown.remote_bytes
    );
}

#[test]
fn gamma_gate_defers_under_congestion() {
    use topology::link::Link;
    use topology::{SystemBuilder, TrafficModel};
    let build = |traffic: TrafficModel| {
        SystemBuilder::new()
            .group("A", 2, 1.0, presets::origin2000_intra())
            .group("B", 2, 1.0, presets::origin2000_intra())
            .connect(
                0,
                1,
                Link::shared("WAN", SimTime::from_millis(6), 19.375e6, traffic),
            )
            .build()
    };
    let quiet = run(
        AppKind::ShockPool3D,
        build(TrafficModel::Quiet),
        Scheme::distributed_default(),
        4,
    );
    let congested = run(
        AppKind::ShockPool3D,
        build(TrafficModel::Constant { load: 0.995 }),
        Scheme::distributed_default(),
        4,
    );
    assert!(
        congested.global_redistributions <= quiet.global_redistributions,
        "congestion must not increase redistributions: {} vs {}",
        congested.global_redistributions,
        quiet.global_redistributions
    );
}

#[test]
fn heterogeneity_handled_by_distributed_dlb() {
    // with a 4x-faster site B, distributed DLB's weight-proportional split
    // must beat the weight-blind even split clearly
    let sys = presets::heterogeneous_wan(2, 2, 4.0, 7);
    let par = run(AppKind::ShockPool3D, sys.clone(), Scheme::Parallel, 3);
    let dist = run(AppKind::ShockPool3D, sys, Scheme::distributed_default(), 3);
    let imp = metrics::improvement_percent(par.total_secs, dist.total_secs);
    assert!(imp > 10.0, "expected a clear win, got {imp:.1}%");
}
