//! Every run must be a pure function of (app, system, scheme, seed) —
//! including across host thread counts, since rayon only parallelizes
//! independent per-patch numerics.

use samr_dlb::prelude::*;
use samr_engine::Scheme;

fn run_result() -> samr_engine::RunResult {
    let sys = presets::anl_ncsa_wan(2, 2, 11);
    let mut cfg = RunConfig::new(AppKind::ShockPool3D, 16, 3, Scheme::distributed_default());
    cfg.max_levels = 3;
    Driver::new(sys, cfg).run()
}

fn fingerprint(r: &samr_engine::RunResult) -> (u64, u64, u64, usize, usize) {
    (
        r.total_secs.to_bits(),
        r.cell_updates,
        r.breakdown.remote_bytes,
        r.final_patches,
        r.global_redistributions,
    )
}

#[test]
fn identical_runs_identical_results() {
    assert_eq!(fingerprint(&run_result()), fingerprint(&run_result()));
}

/// Drive a run step by step so the trace and the final field data survive
/// for comparison, on either the optimized or the reference data path.
fn traced(
    app: AppKind,
    reference: bool,
) -> (String, Vec<Vec<Vec<u64>>>, samr_engine::RunResult) {
    let sys = match app {
        AppKind::Amr64 => presets::anl_lan_pair(2, 2, 11),
        _ => presets::anl_ncsa_wan(2, 2, 11),
    };
    let mut cfg = RunConfig::new(app, 16, 3, Scheme::distributed_default());
    cfg.max_levels = 3;
    cfg.reference_datapath = reference;
    let mut d = Driver::new(sys, cfg);
    for _ in 0..3 {
        d.step_once();
    }
    let csv = d.trace().to_csv();
    // field contents of every patch, level-major in id order, as raw bits
    let mut fields = Vec::new();
    for l in 0..d.hierarchy().num_levels() {
        for &id in d.hierarchy().level_ids(l) {
            let p = d.hierarchy().patch(id);
            fields.push(
                p.fields
                    .iter()
                    .map(|f| f.data().iter().map(|v| v.to_bits()).collect())
                    .collect(),
            );
        }
    }
    (csv, fields, d.finish())
}

#[test]
fn optimized_datapath_is_bit_identical_to_reference() {
    for app in [AppKind::ShockPool3D, AppKind::Amr64] {
        let (csv_o, fields_o, res_o) = traced(app, false);
        let (csv_r, fields_r, res_r) = traced(app, true);
        assert_eq!(csv_o, csv_r, "{app:?}: traces must match bitwise");
        assert_eq!(fields_o, fields_r, "{app:?}: field data must match bitwise");
        assert_eq!(
            fingerprint(&res_o),
            fingerprint(&res_r),
            "{app:?}: results must match bitwise"
        );
        assert_eq!(res_o.peak_patches, res_r.peak_patches);
    }
}

#[test]
fn recording_telemetry_is_bit_identical_to_null() {
    let mk = |tel: Telemetry| {
        let sys = presets::anl_ncsa_wan(2, 2, 11);
        let mut cfg = RunConfig::new(AppKind::ShockPool3D, 16, 3, Scheme::distributed_default());
        cfg.max_levels = 3;
        cfg.telemetry = tel;
        Driver::new(sys, cfg).run()
    };
    let null = mk(Telemetry::null());
    let (tel, sink) = Telemetry::recording_shared();
    let rec = mk(tel);
    assert_eq!(
        fingerprint(&null),
        fingerprint(&rec),
        "recording telemetry must be pure observation"
    );
    assert_eq!(null.peak_patches, rec.peak_patches);
    // and it did actually record: the engine's own counters reappear as
    // eviction-proof sink counts
    let sink = sink.lock().unwrap();
    let counts = sink.counts();
    assert_eq!(counts.gates, rec.global_checks as u64);
    assert_eq!(counts.gate_accepts, rec.global_redistributions as u64);
    assert!(rec.telemetry_summary.is_some());
    assert!(null.telemetry_summary.is_none());
    // the metrics layer rode along: per-step gauges were sampled on
    // simulated time without perturbing the fingerprint above
    let imb = sink
        .metric("imbalance")
        .expect("driver samples the imbalance gauge when recording");
    assert!(imb.observed() >= 3, "one sample per level-0 step");
    assert!(imb.min() >= 1.0, "max/mean imbalance is at least 1");
}

/// Metric series on simulated time are pure functions of the run: two
/// recording runs retain bit-identical points, and the online anomaly
/// detectors (fed by those series and the event stream) fire identically.
/// Pool occupancy gauges are excluded — which physical buffer serves a
/// request is host-scheduling-dependent by design.
#[test]
fn metric_series_and_anomalies_replay_bit_for_bit() {
    let record = || {
        let sys = presets::anl_ncsa_wan(2, 2, 11);
        let mut cfg = RunConfig::new(AppKind::ShockPool3D, 16, 3, Scheme::distributed_default());
        cfg.max_levels = 3;
        let (tel, sink) = Telemetry::recording_shared();
        cfg.telemetry = tel;
        let res = Driver::new(sys, cfg).run();
        (res, sink)
    };
    let (ra, sa) = record();
    let (rb, sb) = record();
    assert_eq!(fingerprint(&ra), fingerprint(&rb));
    let sa = sa.lock().unwrap();
    let sb = sb.lock().unwrap();
    let deterministic = |m: &std::collections::BTreeMap<String, telemetry::MetricSeries>| {
        m.iter()
            .filter(|(name, _)| !name.starts_with("pool_"))
            .map(|(name, s)| {
                let bits: Vec<(u64, u64)> = s
                    .points()
                    .iter()
                    .map(|(t, v)| (t.to_bits(), v.to_bits()))
                    .collect();
                (name.clone(), s.observed(), s.stride(), bits)
            })
            .collect::<Vec<_>>()
    };
    let (da, db) = (deterministic(sa.metrics()), deterministic(sb.metrics()));
    assert!(!da.is_empty(), "recording runs sample metric series");
    assert_eq!(da, db, "sim-time metric series must replay bit-for-bit");
    assert_eq!(
        sa.anomaly_tally(),
        sb.anomaly_tally(),
        "anomaly detectors must fire identically across identical runs"
    );
    assert_eq!(sa.counts().anomalies, sb.counts().anomalies);
}

#[test]
fn thread_count_does_not_change_results() {
    let one = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(run_result);
    let four = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap()
        .install(run_result);
    assert_eq!(fingerprint(&one), fingerprint(&four));
}

#[test]
fn predictive_scheme_is_deterministic() {
    let mk = || {
        let sys = presets::anl_ncsa_wan(2, 2, 11);
        let mut cfg = RunConfig::new(
            AppKind::ShockPool3D,
            16,
            3,
            Scheme::distributed_predictive(20011110),
        );
        cfg.max_levels = 3;
        Driver::new(sys, cfg).run()
    };
    let a = mk();
    let b = mk();
    assert_eq!(fingerprint(&a), fingerprint(&b));
    // the forecast bookkeeping (MAE, scored samples, proactive counters)
    // must replay bit-for-bit too
    assert_eq!(a.forecast, b.forecast);
    assert!(a.forecast.load_mae >= 0.0 && a.forecast.load_mae.is_finite());
}

#[test]
fn forecast_seed_changes_tie_breaks_not_physics() {
    let mk = |forecast_seed| {
        let sys = presets::anl_ncsa_wan(2, 2, 11);
        let mut cfg = RunConfig::new(
            AppKind::ShockPool3D,
            16,
            3,
            Scheme::distributed_predictive(forecast_seed),
        );
        cfg.max_levels = 3;
        Driver::new(sys, cfg).run()
    };
    let a = mk(1);
    let b = mk(2);
    assert_eq!(a.cell_updates, b.cell_updates, "physics identical");
}

#[test]
fn different_seeds_different_amr64_runs() {
    let mk = |seed| {
        let sys = presets::anl_lan_pair(2, 2, 11);
        let mut cfg = RunConfig::new(AppKind::Amr64, 16, 2, Scheme::distributed_default());
        cfg.max_levels = 3;
        cfg.seed = seed;
        Driver::new(sys, cfg).run()
    };
    let a = mk(1);
    let b = mk(2);
    // different initial blobs -> different hierarchies and workloads
    assert_ne!(a.cell_updates, b.cell_updates);
}

#[test]
fn traffic_seed_changes_timing_not_physics() {
    let mk = |traffic_seed| {
        let sys = presets::anl_ncsa_wan(2, 2, traffic_seed);
        let mut cfg = RunConfig::new(AppKind::ShockPool3D, 16, 3, Scheme::Parallel);
        cfg.max_levels = 3;
        Driver::new(sys, cfg).run()
    };
    let a = mk(1);
    let b = mk(99);
    assert_eq!(a.cell_updates, b.cell_updates, "physics identical");
    assert_ne!(
        a.total_secs.to_bits(),
        b.total_secs.to_bits(),
        "timing feels different background traffic"
    );
}
