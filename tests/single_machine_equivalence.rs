//! On a single parallel machine (one group) the distributed scheme's global
//! phase is inert and its local phase *is* the parallel DLB — so the two
//! schemes must perform near-identically. This is the degenerate case that
//! makes the paper's scheme a strict generalization of its baseline.

use samr_dlb::prelude::*;
use samr_engine::Scheme;

fn run(scheme: Scheme) -> samr_engine::RunResult {
    let sys = presets::single_origin2000(4);
    let mut cfg = RunConfig::new(AppKind::ShockPool3D, 16, 3, scheme);
    cfg.max_levels = 3;
    Driver::new(sys, cfg).run()
}

#[test]
fn distributed_reduces_to_parallel_on_one_group() {
    let par = run(Scheme::Parallel);
    let dist = run(Scheme::distributed_default());
    // identical workload
    let work_ratio = par.cell_updates as f64 / dist.cell_updates as f64;
    assert!((0.9..1.12).contains(&work_ratio), "work ratio {work_ratio}");
    // near-identical total time (same balancing behaviour, no WAN to differ on)
    let t_ratio = par.total_secs / dist.total_secs;
    assert!(
        (0.85..1.18).contains(&t_ratio),
        "single-machine totals should match: parallel {:.2}s vs distributed {:.2}s",
        par.total_secs,
        dist.total_secs
    );
    // and the distributed scheme never even evaluated a global decision
    assert_eq!(dist.global_checks, 0);
    assert_eq!(dist.global_redistributions, 0);
}

#[test]
fn both_schemes_beat_static_on_one_group() {
    // on a single machine, any balancing beats none for an adaptive workload
    let stat = run(Scheme::Static);
    let par = run(Scheme::Parallel);
    let dist = run(Scheme::distributed_default());
    assert!(
        par.total_secs < stat.total_secs,
        "parallel {:.2} vs static {:.2}",
        par.total_secs,
        stat.total_secs
    );
    assert!(
        dist.total_secs < stat.total_secs,
        "distributed {:.2} vs static {:.2}",
        dist.total_secs,
        stat.total_secs
    );
}
