#!/usr/bin/env bash
# Full verification gate: build, lint clean, full test suite, and the
# fault-recovery integration test on its own (the robustness headline).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo clippy --all-targets -- -D warnings
cargo clippy -p forecast --all-targets -- -D warnings
# the pooled data path must not reintroduce hidden full-field copies, and
# no workspace crate may clone what a borrow would do
cargo clippy -p samr-mesh -p samr-solvers -p dlb -p topology -p simnet -p samr-engine \
  -p forecast -p metrics -p telemetry -p bench -p tenants --all-targets -- \
  -D warnings -D clippy::redundant_clone
cargo build -p forecast && cargo test -q -p forecast
cargo test -q
cargo test -p samr-engine --test fault_recovery
cargo test -p samr-engine --test crash_recovery
# forecast-gate smoke: the adaptive predictor must not regret more
# redistributions than the reactive baseline (quick-scale ablation)
cargo test -q -p bench --test harness forecast_ablation_adaptive_regrets_no_more_than_reactive

# hotpath smoke: run the throughput benchmark at quick scale (the binary
# itself exits nonzero if the optimized data path is not bit-identical to
# the reference path), then check the output is well-formed and that
# throughput did not regress >30% against the committed quick-scale
# baseline. Re-baseline with:
#   cargo run --release -p bench --bin hotpath -- --quick \
#     --out results/BENCH_hotpath_baseline.json
cargo run --release -p bench --bin hotpath -- --quick --out results/BENCH_hotpath_quick.json
python3 - <<'EOF'
import json, sys

cur = json.load(open("results/BENCH_hotpath_quick.json"))
base = json.load(open("results/BENCH_hotpath_baseline.json"))
names = [p["name"] for p in cur["presets"]]
if sorted(names) != ["amr64", "shockpool3d"]:
    sys.exit(f"hotpath: unexpected presets {names}")
for p in cur["presets"]:
    for key in ("cell_updates", "peak_patches", "cell_updates_per_sec",
                "wall_secs", "phases", "bit_identical",
                "pool_hits", "pool_misses", "pool_bytes_recycled",
                "steady_state_field_allocs", "speedup_vs_reference",
                "pool_detail"):
        if key not in p:
            sys.exit(f"hotpath: preset {p['name']} missing {key}")
    d = p["pool_detail"]
    for key in ("home_hits", "spill_hits", "steal_hits", "borrow_hits",
                "shard_hits"):
        if key not in d:
            sys.exit(f"hotpath: preset {p['name']} pool_detail missing {key}")
    if d["home_hits"] + d["spill_hits"] + d["steal_hits"] != p["pool_hits"]:
        sys.exit(f"hotpath: {p['name']} pool serving tiers do not sum to hits")
    if sum(d["shard_hits"]) != d["home_hits"] + d["steal_hits"]:
        sys.exit(f"hotpath: {p['name']} per-shard hits disagree with tier totals")
    if not p["bit_identical"]:
        sys.exit(f"hotpath: {p['name']} diverged from the reference path")
    if p["speedup_vs_reference"] < 1.0:
        sys.exit(
            f"hotpath: {p['name']} optimized path is slower than the scalar "
            f"reference (speedup {p['speedup_vs_reference']:.3f} < 1.0)"
        )
    if p["cell_updates_per_sec"] <= 0:
        sys.exit(f"hotpath: {p['name']} reports no throughput")
    if p["pool_hits"] <= 0:
        sys.exit(f"hotpath: {p['name']} never reused a pooled field buffer")
    if p["steady_state_field_allocs"] != 0:
        sys.exit(
            f"hotpath: {p['name']} allocated {p['steady_state_field_allocs']} "
            "field buffers after warm-up (steady state must allocate zero)"
        )
    b = next(q for q in base["presets"] if q["name"] == p["name"])
    floor = 0.7 * b["cell_updates_per_sec"]
    if p["cell_updates_per_sec"] < floor:
        sys.exit(
            f"hotpath: {p['name']} throughput {p['cell_updates_per_sec']:.3e} "
            f"is >30% below the committed baseline {b['cell_updates_per_sec']:.3e}"
        )
print("hotpath smoke: ok")
EOF

# telemetry gate: the AMR64 run with a RecordingSink must stay bit-identical
# to the null-handle run, the JSONL export must parse, the exported gate
# counts must equal the RunResult counters, and recording overhead must stay
# <= 2% (quick scale is noisy, so the binary reports best-of-3 walls). The
# trace_anatomy example must produce a well-formed Chrome trace.
cargo run --release -p bench --bin telemetry -- --quick --out results/BENCH_telemetry_quick.json
cargo run --release --example trace_anatomy >/dev/null
python3 - <<'EOF'
import json, sys

t = json.load(open("results/BENCH_telemetry_quick.json"))
if not t["bit_identical"]:
    sys.exit("telemetry: recording perturbed the simulation")
if not t["counts_match"]:
    sys.exit("telemetry: gate counts disagree with the RunResult counters")
if t["jsonl_lines"] < 2:
    sys.exit("telemetry: JSONL export is empty")
if t["gates"] <= 0 or t["gates"] != t["global_checks"]:
    sys.exit(f"telemetry: gate events {t['gates']} != global checks {t['global_checks']}")
if t["gate_accepts"] != t["global_redistributions"]:
    sys.exit(
        f"telemetry: accepts {t['gate_accepts']} != redistributions "
        f"{t['global_redistributions']}"
    )
if t["overhead_pct"] > 2.0:
    sys.exit(f"telemetry: recording overhead {t['overhead_pct']:.2f}% exceeds 2%")
if t.get("metric_series", 0) <= 0:
    sys.exit("telemetry: recording run sampled no metric series")

# the committed canonical (full-scale) report must carry the same schema
# and its quality gates must have held when it was generated
ref = json.load(open("results/BENCH_telemetry.json"))
for key in ("bench", "preset", "wall_null_secs", "wall_recording_secs",
            "overhead_pct", "bit_identical", "jsonl_lines", "gates",
            "gate_accepts", "global_checks", "global_redistributions",
            "dropped_decisions", "metric_series", "anomalies",
            "counts_match"):
    if key not in ref:
        sys.exit(f"telemetry: committed BENCH_telemetry.json missing {key}")
if not ref["bit_identical"] or not ref["counts_match"]:
    sys.exit("telemetry: committed BENCH_telemetry.json fails its own gates")
if ref["metric_series"] <= 0:
    sys.exit("telemetry: committed BENCH_telemetry.json recorded no metric series")

trace = json.load(open("results/trace_anatomy.trace.json"))
events = trace["traceEvents"]
if not events:
    sys.exit("telemetry: trace_anatomy produced an empty Chrome trace")
for e in events:
    for key in ("name", "ph", "pid"):
        if key not in e:
            sys.exit(f"telemetry: trace event missing {key}: {e}")
    if e["ph"] not in ("M", "X", "i", "C"):
        sys.exit(f"telemetry: unexpected phase {e['ph']}")
    if e["ph"] == "X" and (e["dur"] < 0 or e["ts"] < 0):
        sys.exit(f"telemetry: negative span timing: {e}")
    if e["ph"] == "C" and "value" not in e.get("args", {}):
        sys.exit(f"telemetry: counter row without a value: {e}")
phases = {e["ph"] for e in events}
if not {"X", "i", "C"} <= phases:
    sys.exit(f"telemetry: trace lacks spans, instants or counters (saw {sorted(phases)})")
jsonl = [json.loads(l) for l in open("results/trace_anatomy.jsonl")]
if jsonl[0].get("type") != "meta":
    sys.exit("telemetry: JSONL meta line missing")
types = {l.get("type") for l in jsonl}
if not {"phase", "metric"} <= types:
    sys.exit(f"telemetry: JSONL lacks phase/metric aggregate lines (saw {sorted(types)})")
print("telemetry gate: ok")
EOF

# report gate: the analyzer must round-trip a real run's JSONL, stay silent
# on a diff of identical inputs, and flag a seeded synthetic regression
# (recording wall time tripled) with a nonzero exit.
cargo run --release -p bench --bin report -- run results/trace_anatomy.jsonl > /dev/null
if ! diff_out=$(cargo run --release -p bench --bin report -- diff \
    results/BENCH_telemetry_quick.json results/BENCH_telemetry_quick.json); then
  echo "report: diff of identical inputs exited nonzero"; exit 1
fi
if [ -n "$diff_out" ]; then
  echo "report: diff of identical inputs was not silent: $diff_out"; exit 1
fi
python3 - <<'EOF'
import json
t = json.load(open("results/BENCH_telemetry_quick.json"))
t["wall_recording_secs"] = t["wall_recording_secs"] * 3 + 1.0
json.dump(t, open("results/BENCH_telemetry_regressed.json", "w"))
EOF
if cargo run --release -p bench --bin report -- diff \
    results/BENCH_telemetry_quick.json results/BENCH_telemetry_regressed.json > /dev/null; then
  echo "report: seeded synthetic regression was not flagged"; exit 1
fi
rm -f results/BENCH_telemetry_regressed.json
echo "report gate: ok"

# chaos gate: sweep seeded link+proc fault schedules through the invariant
# oracle at quick scale (the binary itself exits nonzero on any violation
# or a vacuous sweep), then re-check the emitted report: every seed's
# violation list must be empty, at least one crash and one evacuation must
# have happened, and the worst MTTR must respect the bound the binary
# derived from the fault-free baseline.
cargo run --release -p bench --bin chaos -- --quick --seeds 16 --out results/BENCH_chaos.json
python3 - <<'EOF'
import json, sys

c = json.load(open("results/BENCH_chaos.json"))
if c["seeds"] < 16:
    sys.exit(f"chaos: only {c['seeds']} seeds swept, need >= 16")
if c["violations"] != 0:
    sys.exit(f"chaos: {c['violations']} oracle violations")
if c["vacuous"] or c["total_crashes"] < 1:
    sys.exit("chaos: sweep was vacuous (no crash happened)")
if c["total_evacuations"] < 1:
    sys.exit("chaos: no evacuation happened")
bound = c["mttr_bound_secs"]
for s in c["seeds_detail"]:
    if s["violations"]:
        sys.exit(f"chaos: seed {s['seed']} violations: {s['violations']}")
    if s["mttr_max_secs"] > bound:
        sys.exit(
            f"chaos: seed {s['seed']} MTTR {s['mttr_max_secs']:.3f}s "
            f"exceeds the {bound:.3f}s bound"
        )
print(f"chaos gate: ok ({c['total_crashes']} crashes, "
      f"{c['total_evacuations']} evacuations, {c['total_rejoins']} rejoins "
      f"across {c['seeds']} seeds)")
EOF

# tenants gate: run the multi-tenant service benchmark at quick scale (the
# binary itself exits nonzero if two runs of the shared clock — one
# recording telemetry — diverge), then check the report is well-formed and
# that tenant-aware admission beats naive static placement on worst-tenant
# p99 step latency under the congested shared-WAN scenario.
cargo run --release -p bench --bin tenants -- --quick --out results/BENCH_tenants_quick.json
python3 - <<'EOF'
import json, sys

t = json.load(open("results/BENCH_tenants_quick.json"))
if not t["bit_identical"]:
    sys.exit("tenants: shared-clock run is not reproducible")
if t["tenants"] < 8:
    sys.exit(f"tenants: only {t['tenants']} concurrent tenants, need >= 8")
scenarios = {s["scenario"]: s for s in t["scenarios"]}
if sorted(scenarios) != ["congested", "quiet"]:
    sys.exit(f"tenants: unexpected scenarios {sorted(scenarios)}")
for name, s in scenarios.items():
    modes = {m["mode"]: m for m in s["modes"]}
    if sorted(modes) != ["aware", "static"]:
        sys.exit(f"tenants: scenario {name} has modes {sorted(modes)}")
    for mode, m in modes.items():
        if len(m["tenants"]) != t["tenants"]:
            sys.exit(f"tenants: {name}/{mode} reports {len(m['tenants'])} tenants")
        for row in m["tenants"]:
            for key in ("priority", "groups", "steps", "cell_updates",
                        "total_secs", "p50_step_secs", "p99_step_secs",
                        "migrations"):
                if key not in row:
                    sys.exit(f"tenants: {name}/{mode} tenant row missing {key}")
            if row["steps"] <= 0 or row["p99_step_secs"] < row["p50_step_secs"]:
                sys.exit(f"tenants: {name}/{mode} tenant {row['tenant']} malformed")
        if m["aggregate_cell_updates_per_sec"] <= 0:
            sys.exit(f"tenants: {name}/{mode} reports no throughput")
cong = {m["mode"]: m for m in scenarios["congested"]["modes"]}
aware, static = cong["aware"], cong["static"]
if aware["worst_p99_step_secs"] > static["worst_p99_step_secs"]:
    sys.exit(
        f"tenants: aware p99 {aware['worst_p99_step_secs']:.4f}s is worse than "
        f"static placement {static['worst_p99_step_secs']:.4f}s under congestion"
    )
print(f"tenants gate: ok (congested p99: aware {aware['worst_p99_step_secs']:.4f}s "
      f"<= static {static['worst_p99_step_secs']:.4f}s, "
      f"{aware['migrations']} migrations)")
EOF

# scale gate: federation-scale decision sweep at quick scale (the binary
# itself exits nonzero if the hierarchical path ends a run >10% worse
# balanced than the flat reference), then check the schema and the scaling
# claims: hierarchical decision bookkeeping must stay O(G) while the flat
# reference touches all O(G²) pairs, small G must be flat-equivalent, and
# the hierarchical decision wall must stay sublinear in group count.
cargo run --release -p bench --bin scale -- --quick --out results/BENCH_scale_quick.json
python3 - <<'EOF'
import json, sys

s = json.load(open("results/BENCH_scale_quick.json"))
rows = s["sweep"]
for r in rows:
    for key in ("groups", "procs", "mode", "decision_secs_per_step",
                "msgs_per_decision", "estimator_pairs", "final_imbalance",
                "global_checks", "redistributions", "wall_secs"):
        if key not in r:
            sys.exit(f"scale: sweep row missing {key}: {r}")
hier = {r["groups"]: r for r in rows if r["mode"] == "hierarchical"}
flat = {r["groups"]: r for r in rows if r["mode"] == "flat"}
if sorted(hier) != [2, 4, 8, 16, 32, 64] or sorted(flat) != sorted(hier):
    sys.exit(f"scale: unexpected sweep points {sorted(hier)}")
# at or below the tree arity the hierarchical dispatch is inert: the two
# modes must report identical decision traffic and outcomes
for g in (2, 4, 8):
    for key in ("msgs_per_decision", "estimator_pairs", "final_imbalance",
                "redistributions"):
        if hier[g][key] != flat[g][key]:
            sys.exit(f"scale: G={g} hierarchical {key} {hier[g][key]} != "
                     f"flat {flat[g][key]} (small-G equivalence broken)")
for g, r in hier.items():
    if r["estimator_pairs"] > 8 * g:
        sys.exit(f"scale: G={g} hierarchical estimator pairs "
                 f"{r['estimator_pairs']} are not O(G)")
    if r["msgs_per_decision"] > 16 * g + 32:
        sys.exit(f"scale: G={g} hierarchical decision traffic "
                 f"{r['msgs_per_decision']:.0f} msgs/step is not O(G)")
if flat[64]["estimator_pairs"] != 64 * 63 // 2:
    sys.exit(f"scale: flat G=64 estimator pairs {flat[64]['estimator_pairs']} "
             f"!= all {64 * 63 // 2} pairs")
if flat[64]["msgs_per_decision"] < 64 * 63:
    sys.exit("scale: flat G=64 decision traffic is not all-pairs")
for g, r in hier.items():
    if r["final_imbalance"] > 1.10 * flat[g]["final_imbalance"]:
        sys.exit(f"scale: G={g} hierarchical final imbalance "
                 f"{r['final_imbalance']:.4f} is >10% worse than flat "
                 f"{flat[g]['final_imbalance']:.4f}")
w8 = hier[8]["decision_secs_per_step"]
w64 = hier[64]["decision_secs_per_step"]
if w64 > 4 * max(w8, 0.02):
    sys.exit(f"scale: G=64 decision wall {w64:.4f}s/step is not sublinear "
             f"vs G=8 {w8:.4f}s/step")
print(f"scale gate: ok (hier G=64: {hier[64]['msgs_per_decision']:.0f} "
      f"msgs/step, {hier[64]['estimator_pairs']} pairs vs flat "
      f"{flat[64]['msgs_per_decision']:.0f} msgs, "
      f"{flat[64]['estimator_pairs']} pairs)")
EOF
