#!/usr/bin/env bash
# Full verification gate: build, lint clean, full test suite, and the
# fault-recovery integration test on its own (the robustness headline).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo clippy --all-targets -- -D warnings
cargo clippy -p forecast --all-targets -- -D warnings
cargo build -p forecast && cargo test -q -p forecast
cargo test -q
cargo test -p samr-engine --test fault_recovery
# forecast-gate smoke: the adaptive predictor must not regret more
# redistributions than the reactive baseline (quick-scale ablation)
cargo test -q -p bench --test harness forecast_ablation_adaptive_regrets_no_more_than_reactive

# hotpath smoke: run the throughput benchmark at quick scale (the binary
# itself exits nonzero if the optimized data path is not bit-identical to
# the reference path), then check the output is well-formed and that
# throughput did not regress >30% against the committed quick-scale
# baseline. Re-baseline with:
#   cargo run --release -p bench --bin hotpath -- --quick \
#     --out results/BENCH_hotpath_baseline.json
cargo run --release -p bench --bin hotpath -- --quick --out results/BENCH_hotpath_quick.json
python3 - <<'EOF'
import json, sys

cur = json.load(open("results/BENCH_hotpath_quick.json"))
base = json.load(open("results/BENCH_hotpath_baseline.json"))
names = [p["name"] for p in cur["presets"]]
if sorted(names) != ["amr64", "shockpool3d"]:
    sys.exit(f"hotpath: unexpected presets {names}")
for p in cur["presets"]:
    for key in ("cell_updates", "peak_patches", "cell_updates_per_sec",
                "wall_secs", "phases", "bit_identical"):
        if key not in p:
            sys.exit(f"hotpath: preset {p['name']} missing {key}")
    if not p["bit_identical"]:
        sys.exit(f"hotpath: {p['name']} diverged from the reference path")
    if p["cell_updates_per_sec"] <= 0:
        sys.exit(f"hotpath: {p['name']} reports no throughput")
    b = next(q for q in base["presets"] if q["name"] == p["name"])
    floor = 0.7 * b["cell_updates_per_sec"]
    if p["cell_updates_per_sec"] < floor:
        sys.exit(
            f"hotpath: {p['name']} throughput {p['cell_updates_per_sec']:.3e} "
            f"is >30% below the committed baseline {b['cell_updates_per_sec']:.3e}"
        )
print("hotpath smoke: ok")
EOF
