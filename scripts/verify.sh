#!/usr/bin/env bash
# Full verification gate: build, lint clean, full test suite, and the
# fault-recovery integration test on its own (the robustness headline).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo clippy --all-targets -- -D warnings
cargo test -q
cargo test -p samr-engine --test fault_recovery
