#!/usr/bin/env bash
# Full verification gate: build, lint clean, full test suite, and the
# fault-recovery integration test on its own (the robustness headline).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo clippy --all-targets -- -D warnings
cargo clippy -p forecast --all-targets -- -D warnings
cargo build -p forecast && cargo test -q -p forecast
cargo test -q
cargo test -p samr-engine --test fault_recovery
# forecast-gate smoke: the adaptive predictor must not regret more
# redistributions than the reactive baseline (quick-scale ablation)
cargo test -q -p bench --test harness forecast_ablation_adaptive_regrets_no_more_than_reactive
