//! Runtime performance records used by the gain/cost heuristics (§4.2–4.3).
//!
//! Between two iterations at level 0 the scheme records: the amount of load
//! each processor has at every level (`w_proc^i(t)`), the number of
//! iterations each finer level performs per level-0 step (`N_iter^i(t)`),
//! the execution time of one level-0 step (`T(t)`), and the computational
//! overhead `δ` of the previous global redistribution.

use serde::{Deserialize, Serialize};

/// Per-interval performance record, filled by the driver and read by the
/// distributed DLB's decision heuristics.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WorkloadHistory {
    /// `w[level][proc]`: cells owned by `proc` at `level` (latest snapshot).
    w: Vec<Vec<i64>>,
    /// `n_iter[level]`: number of iterations of `level` per level-0 step
    /// (`r^level` for a sub-cycled hierarchy with refinement factor `r`).
    n_iter: Vec<u32>,
    /// `T(t)`: wall time of the last completed level-0 step, seconds.
    last_step_secs: f64,
    /// `δ`: measured computational overhead of the previous global
    /// redistribution, seconds.
    delta: f64,
    /// Number of level-0 steps completed so far.
    steps: u64,
}

impl WorkloadHistory {
    /// Fresh, empty history for `nprocs` processors.
    pub fn new(nprocs: usize) -> Self {
        WorkloadHistory {
            w: vec![vec![0; nprocs]; 1],
            n_iter: vec![1],
            last_step_secs: 0.0,
            delta: 0.0,
            steps: 0,
        }
    }

    /// Number of processors tracked.
    pub fn nprocs(&self) -> usize {
        self.w.first().map(|v| v.len()).unwrap_or(0)
    }

    /// Number of levels currently recorded.
    pub fn nlevels(&self) -> usize {
        self.w.len()
    }

    /// Record a fresh snapshot of per-processor loads: `loads[level][proc]`
    /// in cells, and per-level iteration counts per level-0 step.
    pub fn record_snapshot(&mut self, loads: Vec<Vec<i64>>, n_iter: Vec<u32>) {
        assert_eq!(loads.len(), n_iter.len(), "levels mismatch");
        assert!(!loads.is_empty());
        let n = loads[0].len();
        assert!(loads.iter().all(|l| l.len() == n), "ragged loads");
        self.w = loads;
        self.n_iter = n_iter;
    }

    /// Record the duration of the last completed level-0 step.
    pub fn record_step_time(&mut self, secs: f64) {
        assert!(secs >= 0.0);
        self.last_step_secs = secs;
        self.steps += 1;
    }

    /// Record the computational overhead of a global redistribution; becomes
    /// the `δ` of the next cost evaluation.
    pub fn record_redistribution_overhead(&mut self, secs: f64) {
        assert!(secs >= 0.0);
        self.delta = secs;
    }

    /// `w_proc^i(t)` — cells owned by `proc` at `level` (0 when the level is
    /// not present).
    pub fn proc_level_load(&self, level: usize, proc: usize) -> i64 {
        self.w.get(level).map(|l| l[proc]).unwrap_or(0)
    }

    /// `N_iter^i(t)` for `level` (1 when unknown).
    pub fn level_iters(&self, level: usize) -> u32 {
        self.n_iter.get(level).copied().unwrap_or(1)
    }

    /// `T(t)` — duration of the last level-0 step, seconds.
    pub fn last_step_secs(&self) -> f64 {
        self.last_step_secs
    }

    /// Current `δ` (seconds).
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Completed level-0 steps.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Eq. (2): `W_group^i(t) = Σ_{proc ∈ group} w_proc^i(t)`.
    pub fn group_level_load(&self, level: usize, group_procs: &[usize]) -> i64 {
        group_procs
            .iter()
            .map(|&p| self.proc_level_load(level, p))
            .sum()
    }

    /// Eq. (3): `W_group(t) = Σ_i W_group^i(t) · N_iter^i(t)` — the total
    /// iteration-weighted workload a group will execute during the next
    /// level-0 step.
    pub fn group_total_load(&self, group_procs: &[usize]) -> f64 {
        (0..self.nlevels())
            .map(|i| self.group_level_load(i, group_procs) as f64 * self.level_iters(i) as f64)
            .sum()
    }

    /// Per-processor iteration-weighted total workload (all levels).
    pub fn proc_total_load(&self, proc: usize) -> f64 {
        (0..self.nlevels())
            .map(|i| self.proc_level_load(i, proc) as f64 * self.level_iters(i) as f64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WorkloadHistory {
        let mut h = WorkloadHistory::new(4);
        // 2 levels; procs 0,1 in group A; 2,3 in group B
        h.record_snapshot(
            vec![
                vec![100, 100, 100, 100], // level 0
                vec![400, 200, 0, 0],     // level 1: refinement concentrated in A
            ],
            vec![1, 2],
        );
        h.record_step_time(10.0);
        h
    }

    #[test]
    fn eq2_group_level_load() {
        let h = sample();
        assert_eq!(h.group_level_load(0, &[0, 1]), 200);
        assert_eq!(h.group_level_load(1, &[0, 1]), 600);
        assert_eq!(h.group_level_load(1, &[2, 3]), 0);
        // absent level counts zero
        assert_eq!(h.group_level_load(7, &[0, 1]), 0);
    }

    #[test]
    fn eq3_iteration_weighting() {
        let h = sample();
        // A: 200·1 + 600·2 = 1400 ; B: 200·1 + 0 = 200
        assert_eq!(h.group_total_load(&[0, 1]), 1400.0);
        assert_eq!(h.group_total_load(&[2, 3]), 200.0);
    }

    #[test]
    fn proc_total_load_weighted() {
        let h = sample();
        assert_eq!(h.proc_total_load(0), 100.0 + 400.0 * 2.0);
        assert_eq!(h.proc_total_load(3), 100.0);
    }

    #[test]
    fn records_update_state() {
        let mut h = sample();
        assert_eq!(h.last_step_secs(), 10.0);
        assert_eq!(h.steps(), 1);
        assert_eq!(h.delta(), 0.0);
        h.record_redistribution_overhead(0.7);
        assert_eq!(h.delta(), 0.7);
        h.record_step_time(8.0);
        assert_eq!(h.last_step_secs(), 8.0);
        assert_eq!(h.steps(), 2);
    }

    #[test]
    #[should_panic]
    fn ragged_snapshot_rejected() {
        let mut h = WorkloadHistory::new(2);
        h.record_snapshot(vec![vec![1, 2], vec![3]], vec![1, 2]);
    }
}
