//! The **distributed DLB scheme** — the paper's contribution (§4).
//!
//! Two phases:
//!
//! * **Global load balancing** — after each level-0 timestep only: check the
//!   load distribution among groups (allreduce); if imbalance exists,
//!   estimate the computational gain (Eq. 4) of removing it and, via the
//!   two-message α/β probe plus the recorded overhead `δ`, the cost (Eq. 1)
//!   of moving the required level-0 grids; redistribute only when
//!   `Gain > γ·Cost`, proportionally to each group's compute power.
//! * **Local load balancing** — after each timestep at the finer levels:
//!   run the parallel-DLB within each group only, so children grids always
//!   live in the same group as their parents and no parent↔child remote
//!   communication is needed.
//!
//! The scheme adapts to dynamic network load because the probe measures the
//! *current* α/β: when the shared WAN is congested, Cost inflates and global
//! redistribution is deferred.

use crate::balance::{balance_level_within, place_batch, BalanceParams};
use crate::cost::{evaluate_cost, should_redistribute, CostEstimate};
use crate::gain::{evaluate_gain, GainEstimate};
use crate::parallel::LOAD_MSG_BYTES;
use crate::partition::{global_redistribute_with, group_level0_cells, RedistributionReport, SelectionPolicy};
use crate::scheme::{proc_total_cells, LbContext, LoadBalancer};
use samr_mesh::hierarchy::GridHierarchy;
use simnet::{Activity, NetSim};
use topology::{DistributedSystem, GroupId, LinkEstimator, ProcId};
use std::collections::BTreeMap;

/// Tuning of the distributed scheme.
#[derive(Clone, Debug)]
pub struct DistributedDlbConfig {
    /// The γ of `Gain > γ·Cost` (§4.4; paper default 2.0).
    pub gamma: f64,
    /// Power-normalized group-load ratio above which "imbalance exists".
    pub imbalance_tolerance: f64,
    /// Within-set balancing knobs (local phase and redistribution).
    pub balance: BalanceParams,
    /// Modeled repartition scan cost per level-0 cell (seconds) — part of
    /// the computational overhead charged by a global redistribution.
    pub repartition_secs_per_cell: f64,
    /// Modeled rebuild/boundary-update cost per *moved* cell (seconds).
    pub rebuild_secs_per_moved_cell: f64,
    /// EWMA factor of the link estimator (1.0 = trust latest probe, like the
    /// paper's two-message scheme).
    pub estimator_lambda: f64,
    /// How donor level-0 grids are selected for global redistribution.
    pub selection: SelectionPolicy,
}

impl Default for DistributedDlbConfig {
    fn default() -> Self {
        DistributedDlbConfig {
            gamma: 2.0,
            imbalance_tolerance: 1.10,
            balance: BalanceParams::default(),
            repartition_secs_per_cell: 10e-9,
            rebuild_secs_per_moved_cell: 150e-9,
            estimator_lambda: 1.0,
            selection: SelectionPolicy::default(),
        }
    }
}

/// One global-phase decision, kept for reports and tests.
#[derive(Clone, Debug)]
pub struct GlobalDecision {
    /// Level-0 step index at which the decision was taken.
    pub step: u64,
    /// Eq. 4 evaluation.
    pub gain: GainEstimate,
    /// Eq. 1 evaluation (None when no imbalance was detected, so no probe
    /// was paid for).
    pub cost: Option<CostEstimate>,
    /// Whether redistribution was invoked.
    pub invoked: bool,
    /// Outcome when invoked.
    pub report: Option<RedistributionReport>,
}

/// The paper's two-phase distributed DLB.
#[derive(Clone, Debug)]
pub struct DistributedDlb {
    cfg: DistributedDlbConfig,
    estimators: BTreeMap<(usize, usize), LinkEstimator>,
    /// Full decision log of the global phase.
    pub decisions: Vec<GlobalDecision>,
}

impl DistributedDlb {
    pub fn new(cfg: DistributedDlbConfig) -> Self {
        DistributedDlb {
            cfg,
            estimators: BTreeMap::new(),
            decisions: Vec::new(),
        }
    }

    /// Config in use.
    pub fn config(&self) -> &DistributedDlbConfig {
        &self.cfg
    }

    /// How many global redistributions were actually invoked.
    pub fn invocations(&self) -> usize {
        self.decisions.iter().filter(|d| d.invoked).count()
    }

    fn estimator(&mut self, a: usize, b: usize) -> &mut LinkEstimator {
        let lambda = self.cfg.estimator_lambda;
        self.estimators
            .entry((a.min(b), a.max(b)))
            .or_insert_with(|| {
                let d = LinkEstimator::paper_default();
                LinkEstimator::new(lambda, d.small, d.large)
            })
    }

    /// Predicted level-0 cells each overloaded group would export — the `W`
    /// whose transfer cost Eq. 1 prices.
    fn planned_move_cells(
        hier: &GridHierarchy,
        sys: &DistributedSystem,
        group_loads: &[f64],
    ) -> i64 {
        let total: f64 = group_loads.iter().sum();
        let power = sys.total_power();
        if total <= 0.0 {
            return 0;
        }
        let mut cells = 0i64;
        for (g, &w) in group_loads.iter().enumerate() {
            let target = total * sys.group_power(GroupId(g)) / power;
            if w > target && w > 0.0 {
                let frac = (w - target) / w;
                cells += (frac * group_level0_cells(hier, sys, g) as f64).round() as i64;
            }
        }
        cells
    }

    /// The global load-balancing phase (runs after level-0 steps).
    fn global_phase(&mut self, ctx: &mut LbContext<'_>) {
        let sys = ctx.sim.system().clone();
        if sys.ngroups() < 2 {
            return;
        }
        // Evaluate the load distribution among the groups: every processor
        // participates (one small collective).
        ctx.sim.allreduce_all(LOAD_MSG_BYTES, Activity::LoadBalance);
        let gain = evaluate_gain(ctx.history, &sys);

        let step = ctx.history.steps();
        // NaN-safe: a NaN ratio reads as balanced
        let imbalanced = gain.imbalance_ratio > self.cfg.imbalance_tolerance;
        if !imbalanced || gain.gain_secs <= 0.0 {
            self.decisions.push(GlobalDecision {
                step,
                gain,
                cost: None,
                invoked: false,
                report: None,
            });
            return;
        }

        // Imbalance exists: price the redistribution. Probe the inter-group
        // links (two messages each — §4.2) and take the slowest path.
        let move_cells = Self::planned_move_cells(ctx.hier, &sys, &gain.group_loads);
        let cell_bytes = (ctx.hier.nfields() as u64) * 8;
        let move_bytes = move_cells.max(0) as u64 * cell_bytes;
        let mut alpha = 0.0f64;
        let mut beta = 0.0f64;
        for a in 0..sys.ngroups() {
            for b in (a + 1)..sys.ngroups() {
                let est = self.estimator(a, b);
                // split borrows: probe via the simulator
                let sample = ctx.sim.probe_inter(GroupId(a), GroupId(b), est);
                alpha = alpha.max(sample.alpha);
                beta = beta.max(sample.beta);
            }
        }
        let cost = evaluate_cost(alpha, beta, move_bytes, ctx.history);
        let invoked = should_redistribute(gain.gain_secs, &cost, self.cfg.gamma);

        let report = if invoked {
            let rep = global_redistribute_with(
                ctx.hier,
                ctx.sim,
                &gain.group_loads,
                &self.cfg.balance,
                self.cfg.selection,
            );
            // Computational overhead of the redistribution: repartitioning
            // the top-level grids, rebuilding internal data structures, and
            // updating boundary conditions (§4.2). Charged to every
            // processor and recorded as the next δ. A redistribution that
            // found nothing movable costs (and records) nothing.
            if rep.moves > 0 {
                let level0: i64 = ctx.hier.level_cells(0);
                let delta = level0 as f64 * self.cfg.repartition_secs_per_cell
                    + rep.moved_cells as f64 * self.cfg.rebuild_secs_per_moved_cell;
                charge_all(ctx.sim, delta);
                ctx.history.record_redistribution_overhead(delta);
            }
            Some(rep)
        } else {
            None
        };
        self.decisions.push(GlobalDecision {
            step,
            gain,
            cost: Some(cost),
            invoked,
            report,
        });
    }

    /// The local phase: parallel DLB restricted to each group.
    fn local_phase(&mut self, ctx: &mut LbContext<'_>, level: usize) {
        let sys = ctx.sim.system().clone();
        for g in sys.groups() {
            if g.nprocs() < 2 {
                continue;
            }
            ctx.sim
                .allreduce_group(g.id, LOAD_MSG_BYTES, Activity::LoadBalance);
            let procs: Vec<ProcId> = g.procs.clone();
            let weights: Vec<f64> = procs.iter().map(|p| sys.proc(*p).weight).collect();
            balance_level_within(
                ctx.hier,
                ctx.sim,
                level,
                &procs,
                &weights,
                &self.cfg.balance,
            );
        }
    }
}

fn charge_all(sim: &mut NetSim, secs: f64) {
    for p in 0..sim.system().nprocs() {
        sim.busy(ProcId(p), secs, Activity::LoadBalance);
    }
}

impl Default for DistributedDlb {
    fn default() -> Self {
        Self::new(DistributedDlbConfig::default())
    }
}

impl LoadBalancer for DistributedDlb {
    fn name(&self) -> &'static str {
        "distributed DLB"
    }

    fn after_level_step(&mut self, mut ctx: LbContext<'_>, level: usize) {
        if level == 0 {
            self.global_phase(&mut ctx);
            // after any global motion, even out level 0 within each group
            self.local_phase(&mut ctx, 0);
        } else {
            self.local_phase(&mut ctx, level);
        }
    }

    fn place_new_patches(
        &mut self,
        hier: &GridHierarchy,
        sys: &DistributedSystem,
        _level: usize,
        parents: &[usize],
        sizes: &[i64],
    ) -> Vec<usize> {
        // Children are placed inside their parent's group only — the
        // mechanism that removes parent↔child remote communication.
        let all_loads = proc_total_cells(hier, sys.nprocs());
        let mut owners = vec![0usize; parents.len()];
        for g in sys.groups() {
            let idxs: Vec<usize> = (0..parents.len())
                .filter(|&i| sys.group_of(ProcId(parents[i])) == g.id)
                .collect();
            if idxs.is_empty() {
                continue;
            }
            let gloads: Vec<i64> = g.procs.iter().map(|p| all_loads[p.0]).collect();
            let gweights: Vec<f64> = g.procs.iter().map(|p| sys.proc(*p).weight).collect();
            let gsizes: Vec<i64> = idxs.iter().map(|&i| sizes[i]).collect();
            let placed = place_batch(&gloads, &gweights, &gsizes);
            for (k, &i) in idxs.iter().enumerate() {
                owners[i] = g.procs[placed[k]].0;
            }
        }
        owners
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::WorkloadHistory;
    use samr_mesh::{ivec3, region};
    use topology::link::Link;
    use topology::{SimTime, SystemBuilder, TrafficModel};

    fn wan_sys(quiet: bool) -> DistributedSystem {
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
        let wan = if quiet {
            Link::dedicated("wan", SimTime::from_millis(5), 2e7)
        } else {
            Link::shared(
                "wan",
                SimTime::from_millis(5),
                2e7,
                TrafficModel::Constant { load: 0.98 },
            )
        };
        SystemBuilder::new()
            .group("A", 2, 1.0, intra.clone())
            .group("B", 2, 1.0, intra)
            .connect(0, 1, wan)
            .build()
    }

    /// 8 level-0 grids, `na` of them on proc 0 (group A), rest on proc 2.
    fn hier_split(na: i64) -> GridHierarchy {
        let mut h = GridHierarchy::new(region(ivec3(0, 0, 0), ivec3(64, 8, 8)), 2, 4, 1, 1);
        for i in 0..8 {
            let owner = if i < na { 0 } else { 2 };
            h.insert_patch(
                0,
                region(ivec3(8 * i, 0, 0), ivec3(8 * (i + 1), 8, 8)),
                None,
                owner,
            );
        }
        h
    }

    fn history_for(h: &GridHierarchy, nprocs: usize, t: f64) -> WorkloadHistory {
        let mut hist = WorkloadHistory::new(nprocs);
        let loads = vec![h.level_load_by_owner(0, nprocs)];
        hist.record_snapshot(loads, vec![1]);
        hist.record_step_time(t);
        hist
    }

    #[test]
    fn invokes_global_redistribution_when_gain_justifies() {
        let sys = wan_sys(true);
        let mut sim = NetSim::new(sys);
        let mut hier = hier_split(6); // A: 3072, B: 1024
        let mut history = history_for(&hier, 4, 60.0); // one step = 60 s
        let mut dlb = DistributedDlb::default();
        dlb.after_level_step(
            LbContext {
                hier: &mut hier,
                sim: &mut sim,
                history: &mut history,
            },
            0,
        );
        assert_eq!(dlb.decisions.len(), 1);
        let d = &dlb.decisions[0];
        assert!(d.invoked, "decision {d:?}");
        let rep = d.report.as_ref().unwrap();
        assert!(rep.moved_cells > 0);
        // δ recorded for the next cost evaluation
        assert!(history.delta() > 0.0);
        // local phase evened out within groups too
        let loads = hier.level_load_by_owner(0, 4);
        assert_eq!(loads[0] + loads[1] + loads[2] + loads[3], 4096);
        assert!(loads.iter().all(|&l| l > 0), "loads {loads:?}");
    }

    #[test]
    fn congested_wan_blocks_redistribution() {
        // Same imbalance and step time; quiet WAN → redistribute,
        // 98%-congested WAN → defer. This is the "adaptively choosing an
        // appropriate action based on the current traffic" behaviour.
        let run = |quiet: bool| {
            let sys = wan_sys(quiet);
            let mut sim = NetSim::new(sys);
            let mut hier = hier_split(6);
            let mut history = history_for(&hier, 4, 0.05);
            let mut dlb = DistributedDlb::default();
            dlb.after_level_step(
                LbContext {
                    hier: &mut hier,
                    sim: &mut sim,
                    history: &mut history,
                },
                0,
            );
            let d = dlb.decisions[0].clone();
            let sys = sim.system().clone();
            (d, crate::partition::group_level0_cells(&hier, &sys, 0))
        };
        let (quiet_d, _) = run(true);
        assert!(quiet_d.invoked, "quiet WAN should redistribute: {quiet_d:?}");
        let (busy_d, group_a_cells) = run(false);
        assert!(!busy_d.invoked, "should defer under congestion: {busy_d:?}");
        assert!(busy_d.cost.is_some(), "imbalance was detected, cost evaluated");
        // group ownership at level 0 unchanged under congestion
        assert_eq!(group_a_cells, 3072);
    }

    #[test]
    fn balanced_load_skips_probe() {
        let sys = wan_sys(true);
        let mut sim = NetSim::new(sys);
        let mut hier = hier_split(4);
        let mut history = history_for(&hier, 4, 10.0);
        let mut dlb = DistributedDlb::default();
        dlb.after_level_step(
            LbContext {
                hier: &mut hier,
                sim: &mut sim,
                history: &mut history,
            },
            0,
        );
        let d = &dlb.decisions[0];
        assert!(!d.invoked);
        assert!(d.cost.is_none(), "no imbalance -> no probe paid");
    }

    #[test]
    fn local_phase_never_crosses_groups() {
        let sys = wan_sys(true);
        let mut sim = NetSim::new(sys);
        let mut hier = hier_split(6);
        let mut history = history_for(&hier, 4, 10.0);
        let mut dlb = DistributedDlb::default();
        // fine-level step: local phase only
        dlb.after_level_step(
            LbContext {
                hier: &mut hier,
                sim: &mut sim,
                history: &mut history,
            },
            1,
        );
        // group A still owns 6 grids' worth of cells, B 2 — but spread
        // within each group
        let sys = sim.system().clone();
        assert_eq!(crate::partition::group_level0_cells(&hier, &sys, 0), 3072);
        assert_eq!(crate::partition::group_level0_cells(&hier, &sys, 1), 1024);
        assert_eq!(sim.stats().msgs.remote_msgs, 0, "no WAN traffic in local phase");
        assert!(dlb.decisions.is_empty(), "no global decision at fine levels");
    }

    #[test]
    fn placement_keeps_children_in_parent_group() {
        let sys = wan_sys(true);
        let hier = hier_split(4);
        let mut dlb = DistributedDlb::default();
        let parents = vec![0, 0, 2, 2, 0];
        let sizes = vec![100, 200, 300, 400, 500];
        let owners = dlb.place_new_patches(&hier, &sys, 1, &parents, &sizes);
        for (i, &o) in owners.iter().enumerate() {
            let pg = sys.group_of(ProcId(parents[i]));
            let og = sys.group_of(ProcId(o));
            assert_eq!(pg, og, "child {i} left its parent's group");
        }
    }

    #[test]
    fn gamma_zero_always_redistributes_on_imbalance() {
        let sys = wan_sys(false); // even congested
        let mut sim = NetSim::new(sys);
        let mut hier = hier_split(6);
        let mut history = history_for(&hier, 4, 0.5);
        let cfg = DistributedDlbConfig {
            gamma: 0.0,
            ..Default::default()
        };
        let mut dlb = DistributedDlb::new(cfg);
        dlb.after_level_step(
            LbContext {
                hier: &mut hier,
                sim: &mut sim,
                history: &mut history,
            },
            0,
        );
        assert!(dlb.decisions[0].invoked);
        assert_eq!(dlb.invocations(), 1);
    }

    #[test]
    fn single_group_global_phase_noop() {
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
        let sys = SystemBuilder::new().group("A", 4, 1.0, intra).build();
        let mut sim = NetSim::new(sys);
        let mut hier = hier_split(8);
        let mut history = history_for(&hier, 4, 10.0);
        let mut dlb = DistributedDlb::default();
        dlb.after_level_step(
            LbContext {
                hier: &mut hier,
                sim: &mut sim,
                history: &mut history,
            },
            0,
        );
        assert!(dlb.decisions.is_empty());
        // but local phase still evens out the single group
        let loads = hier.level_load_by_owner(0, 4);
        assert!(loads.iter().all(|&l| l == 1024), "{loads:?}");
    }
}

#[cfg(test)]
mod congestion_tests {
    use super::*;
    use crate::history::WorkloadHistory;
    use samr_mesh::{ivec3, region};
    use topology::link::Link;
    use topology::{SimTime, SystemBuilder, TrafficModel};

    /// WAN that is quiet until t = 100 s, then 99.5% congested.
    fn sys_with_congestion_onset() -> DistributedSystem {
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
        let wan = Link::shared(
            "wan",
            SimTime::from_millis(5),
            2e7,
            TrafficModel::Trace {
                initial: 0.0,
                points: vec![(SimTime::from_secs(100).into(), 0.995)],
            },
        );
        SystemBuilder::new()
            .group("A", 2, 1.0, intra.clone())
            .group("B", 2, 1.0, intra)
            .connect(0, 1, wan)
            .build()
    }

    fn imbalanced_hier() -> GridHierarchy {
        let mut h = GridHierarchy::new(region(ivec3(0, 0, 0), ivec3(64, 8, 8)), 2, 4, 1, 1);
        for i in 0..8 {
            let owner = if i < 6 { 0 } else { 2 };
            h.insert_patch(
                0,
                region(ivec3(8 * i, 0, 0), ivec3(8 * (i + 1), 8, 8)),
                None,
                owner,
            );
        }
        h
    }

    #[test]
    fn congestion_arriving_mid_run_flips_the_decision() {
        let mut sim = NetSim::new(sys_with_congestion_onset());
        let mut dlb = DistributedDlb::default();

        // phase 1: quiet network, strong imbalance -> redistribute
        let mut hier = imbalanced_hier();
        let mut history = WorkloadHistory::new(4);
        history.record_snapshot(vec![hier.level_load_by_owner(0, 4)], vec![1]);
        history.record_step_time(0.05);
        dlb.after_level_step(
            LbContext {
                hier: &mut hier,
                sim: &mut sim,
                history: &mut history,
            },
            0,
        );
        assert!(dlb.decisions[0].invoked, "quiet phase should redistribute");

        // advance simulated time past the congestion onset
        for p in 0..4 {
            sim.busy(ProcId(p), 150.0, simnet::Activity::Compute);
        }

        // phase 2: same imbalance shape, congested WAN -> defer
        let mut hier2 = imbalanced_hier();
        history.record_snapshot(vec![hier2.level_load_by_owner(0, 4)], vec![1]);
        history.record_step_time(0.05);
        dlb.after_level_step(
            LbContext {
                hier: &mut hier2,
                sim: &mut sim,
                history: &mut history,
            },
            0,
        );
        let d = dlb.decisions.last().unwrap();
        assert!(
            !d.invoked,
            "congested phase must defer: {d:?}"
        );
        // the probe saw the inflated beta (0.995 load clamps to the model's
        // 0.99 ceiling: effective bandwidth 1/100th, comm cost ~8.5x here)
        let cost = d.cost.unwrap();
        let quiet_cost = dlb.decisions[0].cost.unwrap();
        assert!(cost.comm_secs > quiet_cost.comm_secs * 5.0);
    }
}
