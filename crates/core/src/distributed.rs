//! The **distributed DLB scheme** — the paper's contribution (§4).
//!
//! Two phases:
//!
//! * **Global load balancing** — after each level-0 timestep only: check the
//!   load distribution among groups (allreduce); if imbalance exists,
//!   estimate the computational gain (Eq. 4) of removing it and, via the
//!   two-message α/β probe plus the recorded overhead `δ`, the cost (Eq. 1)
//!   of moving the required level-0 grids; redistribute only when
//!   `Gain > γ·Cost`, proportionally to each group's compute power.
//! * **Local load balancing** — after each timestep at the finer levels:
//!   run the parallel-DLB within each group only, so children grids always
//!   live in the same group as their parents and no parent↔child remote
//!   communication is needed.
//!
//! The scheme adapts to dynamic network load because the probe measures the
//! *current* α/β: when the shared WAN is congested, Cost inflates and global
//! redistribution is deferred.
//!
//! With a [`PredictorKind`] configured, the scheme goes from *reactive* to
//! *predictive* (NWS-style, via the `forecast` crate): the γ-gate prices the
//! move with forecasted α/β and must clear the cost's **upper bound**
//! (point forecast widened by the per-series forecast error), and per-group
//! load series can trigger a **proactive** global check after a fine-level
//! step when the predicted inter-group imbalance crosses
//! [`DistributedDlbConfig::proactive_threshold`] — instead of waiting for
//! the next level-0 step to notice what refinement did to the balance.
//!
//! On top of the paper's protocol sits a **degradation policy**
//! ([`FaultTolerancePolicy`]): probes retry with exponential backoff, a
//! group whose inter-link keeps failing is *quarantined* out of the global
//! phase (its local phase continues — children stay with parents), a
//! redistribution whose migration traffic dies mid-flight is rolled back
//! from a snapshot and the wasted work recorded as abort overhead, and
//! quarantined groups are re-admitted once a probation probe succeeds.

use crate::balance::{balance_level_within, place_batch, BalanceParams};
use crate::cost::{
    evaluate_cost, evaluate_cost_forecast, should_redistribute_confident, CostEstimate,
};
use crate::fault::{FaultEvent, FaultStats, FaultTolerancePolicy, GroupHealth, QuarantineRoster};
use crate::gain::{
    evaluate_gain_among_with_powers, evaluate_gain_forecast_with_powers, GainEstimate,
};
use forecast::{derive_seed, ForecastValue, PredictorKind, SeriesForecaster};
use crate::parallel::LOAD_MSG_BYTES;
use crate::partition::{
    global_redistribute_elastic, group_level0_cells, RedistributionReport, SelectionPolicy,
};
use crate::scheme::{proc_total_cells, LbContext, LoadBalancer};
use samr_mesh::checkpoint;
use samr_mesh::hierarchy::GridHierarchy;
use simnet::{Activity, SimError, SimResult, SimView};
use telemetry::{
    EventKind as TelEventKind, FaultEvent as TelFaultEvent, FaultKind as TelFaultKind,
    GammaGateEvent, GateVerdict, PredictorSwitchEvent, RedistributeEvent as TelRedistributeEvent,
    Telemetry,
};
use topology::{DistributedSystem, GroupId, LinkEstimator, ProcId, SimTime};
use std::collections::BTreeMap;

/// Tuning of the distributed scheme.
#[derive(Clone, Debug)]
pub struct DistributedDlbConfig {
    /// The γ of `Gain > γ·Cost` (§4.4; paper default 2.0).
    pub gamma: f64,
    /// Power-normalized group-load ratio above which "imbalance exists".
    pub imbalance_tolerance: f64,
    /// Within-set balancing knobs (local phase and redistribution).
    pub balance: BalanceParams,
    /// Modeled repartition scan cost per level-0 cell (seconds) — part of
    /// the computational overhead charged by a global redistribution.
    pub repartition_secs_per_cell: f64,
    /// Modeled rebuild/boundary-update cost per *moved* cell (seconds).
    pub rebuild_secs_per_moved_cell: f64,
    /// EWMA factor of the link estimator (1.0 = trust latest probe, like the
    /// paper's two-message scheme).
    pub estimator_lambda: f64,
    /// Sizes of the two probe messages (paper: 1 KiB / 64 KiB). Smaller
    /// probes squeeze through links that drop bulk traffic, which is what
    /// lets probation distinguish "degraded" from "dead".
    pub probe_small_bytes: u64,
    /// See [`Self::probe_small_bytes`]; must be strictly larger.
    pub probe_large_bytes: u64,
    /// How donor level-0 grids are selected for global redistribution.
    pub selection: SelectionPolicy,
    /// Retry / timeout / quarantine behaviour.
    pub fault: FaultTolerancePolicy,
    /// Predictor for the per-link α/β series and per-group load series.
    /// `None` keeps the paper's reactive behaviour exactly: the cost is
    /// priced from the freshest probe sample and carries no error bar.
    pub predictor: Option<PredictorKind>,
    /// Seed for the adaptive selector's deterministic tie-breaking and for
    /// deriving decorrelated per-series seeds.
    pub forecast_seed: u64,
    /// Forecast lookahead in global-check periods. The flat one-step models
    /// forecast the same value at any horizon, so the horizon enters as an
    /// error-growth factor: the cost's upper bound widens by
    /// `horizon · confidence_widening · MAE`.
    pub forecast_horizon: u32,
    /// Multiplier on the forecast error bars when widening the cost upper
    /// bound for the confident γ-gate (0 disables widening).
    pub confidence_widening: f64,
    /// Predicted power-normalized inter-group imbalance ratio above which a
    /// fine-level step triggers a proactive global check. `None` restricts
    /// global checks to level-0 steps (the paper's protocol).
    pub proactive_threshold: Option<f64>,
    /// Force the flat all-groups global compare even beyond
    /// [`TREE_ARITY`] groups — the reference decision datapath the
    /// hierarchical tree reduction is checked against (mirrors the
    /// driver's `reference_datapath` flag). At or below the arity the two
    /// paths are the same code, so this only matters at federation scale.
    pub flat_reference: bool,
}

impl Default for DistributedDlbConfig {
    fn default() -> Self {
        DistributedDlbConfig {
            gamma: 2.0,
            imbalance_tolerance: 1.10,
            balance: BalanceParams::default(),
            repartition_secs_per_cell: 10e-9,
            rebuild_secs_per_moved_cell: 150e-9,
            estimator_lambda: 1.0,
            probe_small_bytes: 1 << 10,
            probe_large_bytes: 1 << 16,
            selection: SelectionPolicy::default(),
            fault: FaultTolerancePolicy::default(),
            predictor: None,
            forecast_seed: 0,
            forecast_horizon: 1,
            confidence_widening: 1.0,
            proactive_threshold: None,
            flat_reference: false,
        }
    }
}

impl DistributedDlbConfig {
    /// Predictive defaults: the adaptive selector on every series, the
    /// confident γ-gate, and proactive checks at 1.5× predicted imbalance.
    pub fn predictive(seed: u64) -> Self {
        DistributedDlbConfig {
            predictor: Some(PredictorKind::Adaptive),
            forecast_seed: seed,
            proactive_threshold: Some(1.5),
            ..Default::default()
        }
    }
}

/// One global-phase decision, kept for reports and tests.
#[derive(Clone, Debug)]
pub struct GlobalDecision {
    /// Level-0 step index at which the decision was taken.
    pub step: u64,
    /// Eq. 4 evaluation (over the healthy groups only).
    pub gain: GainEstimate,
    /// Eq. 1 evaluation (None when no imbalance was detected — so no probe
    /// was paid for — or when the decision collective / probing failed).
    pub cost: Option<CostEstimate>,
    /// Whether redistribution was invoked.
    pub invoked: bool,
    /// Whether an invoked redistribution was aborted and rolled back.
    pub aborted: bool,
    /// Wasted computational overhead of an aborted redistribution,
    /// seconds (0 unless `aborted`). The driver records this as the next δ.
    pub abort_delta_secs: f64,
    /// Outcome when invoked (for an aborted invocation: the partial motion
    /// that was rolled back).
    pub report: Option<RedistributionReport>,
    /// Whether this check was triggered proactively by the load forecast
    /// after a fine-level step (false: the regular after-level-0 check).
    pub proactive: bool,
}

/// Aggregate forecast-quality counters of a run (zeroes while no predictor
/// is configured or before any series has scored a forecast).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ForecastSummary {
    /// Mean α forecast MAE over the link estimators that scored (seconds).
    pub alpha_mae: f64,
    /// Mean β forecast MAE over the link estimators that scored (s/byte).
    pub beta_mae: f64,
    /// Mean load forecast MAE over the group series that scored (cells).
    pub load_mae: f64,
    /// Total out-of-sample (forecast, probe) pairs scored on link series.
    pub scored_probes: u64,
    /// Global checks triggered proactively by the load forecast.
    pub proactive_checks: u64,
    /// Proactive checks that went on to invoke a redistribution.
    pub proactive_invocations: u64,
}

/// The paper's two-phase distributed DLB.
#[derive(Clone, Debug)]
pub struct DistributedDlb {
    cfg: DistributedDlbConfig,
    estimators: BTreeMap<(usize, usize), LinkEstimator>,
    /// Per-group total-cell series feeding the proactive trigger.
    load_forecasts: Vec<SeriesForecaster>,
    /// Quarantine state, fault-event log and counters.
    pub roster: QuarantineRoster,
    /// Full decision log of the global phase.
    pub decisions: Vec<GlobalDecision>,
    /// Cursor into `roster.events`: entries before it have already been
    /// forwarded to the telemetry sink.
    fault_events_forwarded: usize,
    /// Per-proc alive mask, refreshed from the simulator at the start of
    /// every `after_level_step` (all-alive when no proc faults are
    /// scheduled). Empty until the first step.
    alive: Vec<bool>,
    /// Inter-group messages the decision phase charged to the simulated
    /// network: collective legs, probe messages, and the reduction tree's
    /// summary/delegation traffic.
    decision_msgs: u64,
}

impl DistributedDlb {
    pub fn new(cfg: DistributedDlbConfig) -> Self {
        DistributedDlb {
            cfg,
            estimators: BTreeMap::new(),
            load_forecasts: Vec::new(),
            roster: QuarantineRoster::default(),
            decisions: Vec::new(),
            fault_events_forwarded: 0,
            alive: Vec::new(),
            decision_msgs: 0,
        }
    }

    /// The alive mask as of the last step (all-alive before the first).
    fn alive_mask(&self, nprocs: usize) -> Vec<bool> {
        if self.alive.len() == nprocs {
            self.alive.clone()
        } else {
            vec![true; nprocs]
        }
    }

    /// Config in use.
    pub fn config(&self) -> &DistributedDlbConfig {
        &self.cfg
    }

    /// How many global redistributions were actually invoked.
    pub fn invocations(&self) -> usize {
        self.decisions.iter().filter(|d| d.invoked).count()
    }

    /// Link-estimator pairs allocated so far. Estimators are created
    /// lazily on the first probe of a pair, so this measures decision-
    /// phase bookkeeping directly: the flat compare touches all O(G²)
    /// pairs, the hierarchical tree only its representative pairs — O(G).
    pub fn estimator_pairs(&self) -> usize {
        self.estimators.len()
    }

    /// Inter-group messages the decision phase charged to the simulated
    /// network (collective legs, 2 per α/β probe attempt, and the
    /// reduction tree's summary/delegation messages).
    pub fn decision_msgs(&self) -> u64 {
        self.decision_msgs
    }

    /// Chronological fault-event log.
    pub fn fault_events(&self) -> &[FaultEvent] {
        &self.roster.events
    }

    /// Aggregate fault counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.roster.stats
    }

    fn estimator(&mut self, a: usize, b: usize) -> &mut LinkEstimator {
        let lambda = self.cfg.estimator_lambda;
        let (small, large) = (self.cfg.probe_small_bytes, self.cfg.probe_large_bytes);
        let fault = self.cfg.fault;
        let predictor = self.cfg.predictor;
        let seed = self.cfg.forecast_seed;
        let pair = (a.min(b), a.max(b));
        self.estimators.entry(pair).or_insert_with(|| {
            let est = LinkEstimator::new(lambda, small, large)
                .with_staleness(fault.estimator_ttl_secs, fault.quarantine_after.max(1));
            match predictor {
                None => est,
                Some(kind) => {
                    est.with_predictor(kind, derive_seed(seed, (pair.0 * 1024 + pair.1) as u64))
                }
            }
        })
    }

    /// Aggregate forecast-quality counters (MAE averaged over the series
    /// that have scored at least one out-of-sample forecast).
    pub fn forecast_summary(&self) -> ForecastSummary {
        let mut s = ForecastSummary::default();
        let mut links = 0u64;
        for est in self.estimators.values() {
            if est.forecast_samples() > 0 {
                links += 1;
                s.alpha_mae += est.alpha_mae();
                s.beta_mae += est.beta_mae();
                s.scored_probes += est.forecast_samples();
            }
        }
        if links > 0 {
            s.alpha_mae /= links as f64;
            s.beta_mae /= links as f64;
        }
        let mut groups = 0u64;
        for lf in &self.load_forecasts {
            if lf.scored_samples() > 0 {
                groups += 1;
                s.load_mae += lf.mae();
            }
        }
        if groups > 0 {
            s.load_mae /= groups as f64;
        }
        for d in &self.decisions {
            if d.proactive {
                s.proactive_checks += 1;
                if d.invoked {
                    s.proactive_invocations += 1;
                }
            }
        }
        s
    }

    /// Current total cells per group, straight from the hierarchy — the
    /// load measure the proactive trigger forecasts. (The history snapshot
    /// only refreshes after level-0 steps; the hierarchy shows what
    /// refinement has done since.)
    fn group_cells(hier: &GridHierarchy, sys: &DistributedSystem) -> Vec<f64> {
        let per_proc = proc_total_cells(hier, sys.nprocs());
        let mut loads = vec![0.0f64; sys.ngroups()];
        for (p, &cells) in per_proc.iter().enumerate() {
            loads[sys.group_of(ProcId(p)).0] += cells as f64;
        }
        loads
    }

    /// Feed the per-group load series with the hierarchy's current state.
    /// Pure bookkeeping: charges no simulated time and, with proactive
    /// checks disabled, changes no decision.
    fn observe_group_loads(&mut self, ctx: &LbContext<'_>, sys: &DistributedSystem) {
        let kind = self.cfg.predictor.unwrap_or(PredictorKind::LastValue);
        let seed = self.cfg.forecast_seed;
        while self.load_forecasts.len() < sys.ngroups() {
            let g = self.load_forecasts.len() as u64;
            self.load_forecasts
                .push(SeriesForecaster::new(kind, derive_seed(seed, 0x4C4F_4144 + g)));
        }
        let t = ctx.sim.elapsed().as_secs_f64();
        let tel = ctx.sim.telemetry().clone();
        for (g, w) in Self::group_cells(ctx.hier, sys).into_iter().enumerate() {
            let before = tel.is_enabled().then(|| self.load_forecasts[g].model_name());
            if tel.is_enabled() {
                // per-level-step occupancy, finer-grained than the
                // driver's per-level-0-step group_load series
                tel.metric(t, &format!("group_cells:g{g}"), w);
            }
            self.load_forecasts[g].observe(t, w);
            if let Some(before) = before {
                let after = self.load_forecasts[g].model_name();
                if before != after {
                    tel.event(
                        t,
                        TelEventKind::PredictorSwitch(PredictorSwitchEvent {
                            series: format!("load:g{g}"),
                            from: before,
                            to: after,
                        }),
                    );
                }
            }
        }
    }

    /// After a fine-level step: predict the near-term inter-group balance
    /// and, if the predicted power-normalized imbalance crosses the
    /// configured threshold, run a full (gain/cost-gated) global check now
    /// instead of waiting for the next level-0 step.
    fn maybe_proactive_check(&mut self, ctx: &mut LbContext<'_>, level: usize) {
        let Some(threshold) = self.cfg.proactive_threshold else {
            return;
        };
        let sys = ctx.sim.system().clone();
        if sys.ngroups() < 2 {
            return;
        }
        self.roster.ensure_len(sys.ngroups());
        let powers: Vec<f64> = (0..sys.ngroups())
            .map(|g| ctx.sim.alive_group_power(GroupId(g)))
            .collect();
        let healthy: Vec<usize> = self
            .roster
            .healthy_groups()
            .into_iter()
            .filter(|&g| powers[g] > 0.0)
            .collect();
        if healthy.len() < 2 {
            return;
        }
        let observed = Self::group_cells(ctx.hier, &sys);
        let predicted: Vec<f64> = self
            .load_forecasts
            .iter()
            .zip(&observed)
            .map(|(lf, &obs)| lf.forecast().unwrap_or(obs))
            .collect();
        let gain = evaluate_gain_forecast_with_powers(
            predicted,
            ctx.history.last_step_secs(),
            &sys,
            &healthy,
            &powers,
        );
        if gain.imbalance_ratio > threshold && gain.gain_secs > 0.0 {
            self.global_phase(ctx, Some(gain), level);
        }
    }

    /// Predicted level-0 cells each overloaded *eligible* group would
    /// export — the `W` whose transfer cost Eq. 1 prices.
    fn planned_move_cells(
        hier: &GridHierarchy,
        sys: &DistributedSystem,
        group_loads: &[f64],
        eligible: &[bool],
        powers: &[f64],
    ) -> i64 {
        let total: f64 = group_loads
            .iter()
            .enumerate()
            .filter(|(g, _)| eligible[*g])
            .map(|(_, &w)| w)
            .sum();
        let power: f64 = (0..sys.ngroups())
            .filter(|&g| eligible[g])
            .map(|g| powers[g])
            .sum();
        if total <= 0.0 || power <= 0.0 {
            return 0;
        }
        let mut cells = 0i64;
        for (g, &w) in group_loads.iter().enumerate() {
            if !eligible[g] {
                continue;
            }
            let target = total * powers[g] / power;
            if w > target && w > 0.0 {
                let frac = (w - target) / w;
                cells += (frac * group_level0_cells(hier, sys, g) as f64).round() as i64;
            }
        }
        cells
    }

    /// Attempt re-admission of quarantined groups via a single probation
    /// probe toward the lowest-indexed healthy group.
    fn probation(&mut self, ctx: &mut LbContext<'_>, sys: &DistributedSystem, step: u64) {
        let fault = self.cfg.fault;
        for g in self.roster.quarantined_groups() {
            let due = match self.roster.health(g) {
                GroupHealth::Quarantined { since_step, .. } => {
                    step > since_step
                        && (step - since_step).is_multiple_of(fault.probation_interval.max(1))
                }
                GroupHealth::Healthy => false,
            };
            if !due {
                continue;
            }
            // group 0 is never quarantined, so a healthy peer always exists
            let h0 = self.roster.healthy_groups()[0];
            let pa = sys.procs_in(GroupId(h0))[0];
            let pb = sys.procs_in(GroupId(g))[0];
            let t0 = ctx.sim.now(pa).max(ctx.sim.now(pb));
            let dl = t0 + SimTime::from_secs_f64(fault.probe_timeout_secs);
            self.decision_msgs += 2;
            let est = self.estimator(h0, g);
            if ctx
                .sim
                .probe_inter(GroupId(h0), GroupId(g), est, Some(dl))
                .is_ok()
            {
                let now = ctx.sim.now(pb);
                self.roster.record_pair_success(h0, g);
                self.roster.readmit(g, step, now);
            }
        }
    }

    /// The global load-balancing phase. Runs after level-0 steps
    /// (`forecast_gain = None`: gain from the history snapshot) and, when
    /// the proactive trigger fires, after fine-level steps
    /// (`forecast_gain = Some(..)`: gain from predicted loads).
    fn global_phase(
        &mut self,
        ctx: &mut LbContext<'_>,
        forecast_gain: Option<GainEstimate>,
        level: usize,
    ) {
        let proactive = forecast_gain.is_some();
        let sys = ctx.sim.system().clone();
        if sys.ngroups() < 2 {
            return;
        }
        self.roster.ensure_len(sys.ngroups());
        let step = ctx.history.steps();
        let fault = self.cfg.fault;
        let tel = ctx.sim.telemetry().clone();
        // every pushed GlobalDecision gets exactly one matching gate event,
        // so the audit log's gamma_gate count equals the run's global_checks
        let gate_event = |tel: &Telemetry,
                          sim: &SimView,
                          gain: &GainEstimate,
                          cost: Option<&CostEstimate>,
                          alpha: f64,
                          beta: f64,
                          move_bytes: u64,
                          gamma: f64,
                          verdict: GateVerdict,
                          reason: &'static str| {
            emit_gate_event(
                tel, sim, step, level, proactive, gain, cost, alpha, beta, move_bytes, gamma,
                verdict, reason,
            );
        };

        // Quarantined groups get their probation probe first, so a
        // recovered link rejoins in the same step that notices it.
        self.probation(ctx, &sys, step);

        // Capacity as the crash-stop schedule leaves it right now: a group
        // that lost procs participates at reduced power; a group with *no*
        // alive proc drops out of the phase entirely (its work was already
        // evacuated, so it carries no load to misprice).
        let powers: Vec<f64> = (0..sys.ngroups())
            .map(|g| ctx.sim.alive_group_power(GroupId(g)))
            .collect();
        let healthy: Vec<usize> = self
            .roster
            .healthy_groups()
            .into_iter()
            .filter(|&g| powers[g] > 0.0)
            .collect();
        if healthy.len() < 2 {
            return; // nobody to exchange work with; local phases continue
        }

        // Federation scale: beyond the tree arity the flat all-pairs
        // compare below is replaced by the hierarchical tree reduction
        // (unless pinned to the flat reference datapath). At or below the
        // arity the tree would be a single node over the individual
        // groups — exactly the flat compare — so flat runs verbatim.
        if !self.cfg.flat_reference && healthy.len() > TREE_ARITY {
            self.global_phase_hierarchical(ctx, &sys, forecast_gain, level, &healthy, &powers, step);
            return;
        }

        // Evaluate the load distribution among the *healthy* groups: one
        // small collective in degraded mode, retried with backoff like any
        // other inter-group exchange.
        let gids: Vec<GroupId> = healthy.iter().map(|&g| GroupId(g)).collect();
        let mut attempt = 0u32;
        let collective = loop {
            match ctx
                .sim
                .allreduce_groups(&gids, LOAD_MSG_BYTES, Activity::LoadBalance)
            {
                Ok(t) => break Ok((t, attempt)),
                Err(e) => {
                    attempt += 1;
                    if attempt >= fault.retry.max_attempts.max(1) {
                        break Err(e);
                    }
                    let backoff = fault.retry.backoff_secs(attempt - 1);
                    for &gid in &gids {
                        for &p in sys.procs_in(gid) {
                            ctx.sim.busy(p, backoff, Activity::Wait);
                        }
                    }
                }
            }
        };
        match collective {
            Ok((_, retries)) => {
                // reduce-exchange-broadcast: two messages per group pair
                self.decision_msgs += (healthy.len() * (healthy.len() - 1)) as u64;
                if retries > 0 {
                    self.roster.stats.retries += retries as u64;
                    self.roster
                        .events
                        .push(FaultEvent::RetrySucceeded { step, retries });
                }
            }
            Err(e) => {
                self.roster.stats.comm_failures += 1;
                if let SimError::CollectiveFailed {
                    at,
                    group_a,
                    group_b,
                } = e
                {
                    self.roster
                        .record_pair_failure(group_a, group_b, step, at, fault.quarantine_after);
                }
                // no load information this step: defer the decision entirely
                let gain = GainEstimate {
                    gain_secs: 0.0,
                    group_loads: Vec::new(),
                    imbalance_ratio: 1.0,
                };
                gate_event(
                    &tel,
                    ctx.sim,
                    &gain,
                    None,
                    0.0,
                    0.0,
                    0,
                    self.cfg.gamma,
                    GateVerdict::Deferred,
                    "collective_failed",
                );
                self.decisions.push(GlobalDecision {
                    step,
                    gain,
                    cost: None,
                    invoked: false,
                    aborted: false,
                    abort_delta_secs: 0.0,
                    report: None,
                    proactive,
                });
                return;
            }
        }
        let gain = match forecast_gain {
            Some(g) => g,
            None => evaluate_gain_among_with_powers(ctx.history, &sys, &healthy, &powers),
        };

        // NaN-safe: a NaN ratio reads as balanced
        let imbalanced = gain.imbalance_ratio > self.cfg.imbalance_tolerance;
        if !imbalanced || gain.gain_secs <= 0.0 {
            gate_event(
                &tel,
                ctx.sim,
                &gain,
                None,
                0.0,
                0.0,
                0,
                self.cfg.gamma,
                GateVerdict::Reject,
                "balanced",
            );
            self.decisions.push(GlobalDecision {
                step,
                gain,
                cost: None,
                invoked: false,
                aborted: false,
                abort_delta_secs: 0.0,
                report: None,
                proactive,
            });
            return;
        }

        // Imbalance exists: price the redistribution. Probe the healthy
        // inter-group links (two messages each — §4.2, retried with backoff
        // on failure) and take the slowest path.
        let eligible: Vec<bool> = (0..sys.ngroups()).map(|g| healthy.contains(&g)).collect();
        let move_cells =
            Self::planned_move_cells(ctx.hier, &sys, &gain.group_loads, &eligible, &powers);
        let cell_bytes = (ctx.hier.nfields() as u64) * 8;
        let move_bytes = move_cells.max(0) as u64 * cell_bytes;
        let mut alpha = 0.0f64;
        let mut beta = 0.0f64;
        // Forecast path: worst (slowest) forecast value and worst error bar
        // over the healthy pairs — conservative, like the reactive max.
        let mut alpha_fv = ForecastValue::exact(0.0);
        let mut beta_fv = ForecastValue::exact(0.0);
        let mut probe_failed = false;
        'pairs: for (i, &a) in healthy.iter().enumerate() {
            for &b in &healthy[i + 1..] {
                let pa = sys.procs_in(GroupId(a))[0];
                let pb = sys.procs_in(GroupId(b))[0];
                let retry = fault.retry;
                let est = self.estimator(a, b);
                let mut attempt = 0u32;
                let outcome = loop {
                    if attempt > 0 {
                        // backoff is idle waiting on both leaders
                        let backoff = retry.backoff_secs(attempt - 1);
                        ctx.sim.busy(pa, backoff, Activity::Wait);
                        ctx.sim.busy(pb, backoff, Activity::Wait);
                    }
                    let t0 = ctx.sim.now(pa).max(ctx.sim.now(pb));
                    let dl = t0 + SimTime::from_secs_f64(fault.probe_timeout_secs);
                    match ctx.sim.probe_inter(GroupId(a), GroupId(b), est, Some(dl)) {
                        Ok(s) => break Ok((s, attempt)),
                        Err(e) => {
                            attempt += 1;
                            if attempt >= retry.max_attempts.max(1) {
                                break Err(e);
                            }
                        }
                    }
                };
                match outcome {
                    Ok((s, retries)) => {
                        // two messages per probe attempt (§4.2)
                        self.decision_msgs += 2 * (u64::from(retries) + 1);
                        if retries > 0 {
                            self.roster.stats.retries += retries as u64;
                            self.roster
                                .events
                                .push(FaultEvent::RetrySucceeded { step, retries });
                        }
                        self.roster.record_pair_success(a, b);
                        alpha = alpha.max(s.alpha);
                        beta = beta.max(s.beta);
                        if let (Some(af), Some(bf)) = {
                            let est = self.estimator(a, b);
                            (est.alpha_forecast(), est.beta_forecast())
                        } {
                            alpha_fv.value = alpha_fv.value.max(af.value);
                            alpha_fv.error = alpha_fv.error.max(af.error);
                            beta_fv.value = beta_fv.value.max(bf.value);
                            beta_fv.error = beta_fv.error.max(bf.error);
                        }
                    }
                    Err(e) => {
                        self.decision_msgs += 2 * u64::from(retry.max_attempts.max(1));
                        self.roster.stats.probe_failures += 1;
                        self.roster.events.push(FaultEvent::ProbeFailure {
                            step,
                            group_a: a,
                            group_b: b,
                        });
                        self.roster
                            .record_pair_failure(a, b, step, e.at(), fault.quarantine_after);
                        probe_failed = true;
                        break 'pairs;
                    }
                }
            }
        }
        if probe_failed {
            // α/β for some path is unknown (and that link is suspect):
            // defer — the quarantine protocol decides who sits out next step
            gate_event(
                &tel,
                ctx.sim,
                &gain,
                None,
                alpha,
                beta,
                move_bytes,
                self.cfg.gamma,
                GateVerdict::Deferred,
                "probe_failed",
            );
            self.decisions.push(GlobalDecision {
                step,
                gain,
                cost: None,
                invoked: false,
                aborted: false,
                abort_delta_secs: 0.0,
                report: None,
                proactive,
            });
            return;
        }
        // Reactive mode prices the move from the freshest probe samples (no
        // error bar, the paper's behaviour); predictive mode prices it from
        // the forecasts, widened by `horizon · widening · MAE`, and the gate
        // must clear the upper bound.
        let cost = if self.cfg.predictor.is_none() {
            evaluate_cost(alpha, beta, move_bytes, ctx.history)
        } else {
            let widen = self.cfg.confidence_widening * f64::from(self.cfg.forecast_horizon.max(1));
            evaluate_cost_forecast(alpha_fv, beta_fv, move_bytes, ctx.history, widen)
        };
        let invoked = should_redistribute_confident(gain.gain_secs, &cost, self.cfg.gamma);
        gate_event(
            &tel,
            ctx.sim,
            &gain,
            Some(&cost),
            alpha,
            beta,
            move_bytes,
            self.cfg.gamma,
            if invoked {
                GateVerdict::Accept
            } else {
                GateVerdict::Reject
            },
            "gate",
        );

        let mut aborted = false;
        let mut abort_delta_secs = 0.0;
        let report = if invoked {
            // Checkpoint first: migration traffic may die mid-flight, and a
            // half-moved hierarchy must be rolled back exactly.
            let snap = checkpoint::snapshot(ctx.hier);
            let deadline = fault
                .transfer_deadline_slack
                .map(|slack| ctx.sim.elapsed() + SimTime::from_secs_f64(slack));
            let alive = self.alive_mask(sys.nprocs());
            match global_redistribute_elastic(
                ctx.hier,
                ctx.sim,
                &gain.group_loads,
                &eligible,
                &self.cfg.balance,
                self.cfg.selection,
                deadline,
                &powers,
                &alive,
            ) {
                Ok(rep) => {
                    // Computational overhead of the redistribution:
                    // repartitioning the top-level grids, rebuilding internal
                    // data structures, and updating boundary conditions
                    // (§4.2). Charged to every processor and recorded as the
                    // next δ. A redistribution that found nothing movable
                    // costs (and records) nothing.
                    let mut delta = 0.0;
                    if rep.moves > 0 {
                        let level0: i64 = ctx.hier.level_cells(0);
                        delta = level0 as f64 * self.cfg.repartition_secs_per_cell
                            + rep.moved_cells as f64 * self.cfg.rebuild_secs_per_moved_cell;
                        charge_all(ctx.sim, delta);
                        ctx.history.record_redistribution_overhead(delta);
                    }
                    if tel.is_enabled() {
                        tel.event(
                            ctx.sim.elapsed().as_secs_f64(),
                            TelEventKind::Redistribute(TelRedistributeEvent {
                                step,
                                level,
                                moved_cells: rep.moved_cells,
                                moves: rep.moves,
                                aborted: false,
                                delta_secs: delta,
                            }),
                        );
                    }
                    Some(rep)
                }
                Err(ab) => {
                    *ctx.hier = checkpoint::restore(&snap);
                    aborted = true;
                    // Wasted work: the repartition scan plus rebuilding the
                    // partially-moved cells twice (out and back). The driver
                    // records this as the next δ.
                    let level0: i64 = ctx.hier.level_cells(0);
                    abort_delta_secs = level0 as f64 * self.cfg.repartition_secs_per_cell
                        + 2.0 * ab.partial.moved_cells as f64
                            * self.cfg.rebuild_secs_per_moved_cell;
                    charge_all(ctx.sim, abort_delta_secs);
                    self.roster.stats.aborts += 1;
                    self.roster.events.push(FaultEvent::RedistributionAborted {
                        step,
                        error: ab.error,
                    });
                    self.roster.record_pair_failure(
                        ab.src_group,
                        ab.dst_group,
                        step,
                        ab.error.at(),
                        fault.quarantine_after,
                    );
                    if tel.is_enabled() {
                        // the redistribute record first, then its rollback —
                        // the causality the audit tests check
                        let t_sim = ctx.sim.elapsed().as_secs_f64();
                        tel.event(
                            t_sim,
                            TelEventKind::Redistribute(TelRedistributeEvent {
                                step,
                                level,
                                moved_cells: ab.partial.moved_cells,
                                moves: ab.partial.moves,
                                aborted: true,
                                delta_secs: abort_delta_secs,
                            }),
                        );
                        tel.event(
                            t_sim,
                            TelEventKind::Fault(TelFaultEvent {
                                step,
                                kind: TelFaultKind::Rollback {
                                    wasted_secs: abort_delta_secs,
                                },
                            }),
                        );
                    }
                    Some(ab.partial)
                }
            }
        } else {
            None
        };
        self.decisions.push(GlobalDecision {
            step,
            gain,
            cost: Some(cost),
            invoked,
            aborted,
            abort_delta_secs,
            report,
            proactive,
        });
    }

    /// Federation-scale global phase: a balanced [`TREE_ARITY`]-ary
    /// reduction tree over the healthy groups replaces the flat all-pairs
    /// compare. (load, capacity) summaries flow up the tree as real
    /// messages over the actual inter-group links, imbalance is γ-gated
    /// per subtree top-down, and an accepted subtree redistributes among
    /// exactly its own groups — so decision traffic is O(G) messages and
    /// the probe/estimator set only ever holds the tree's representative
    /// pairs, instead of O(G²) of both. Only entered above the arity; at
    /// or below it the flat compare *is* the single-node tree, so the
    /// flat code runs verbatim (the small-G equivalence the tests pin).
    #[allow(clippy::too_many_arguments)]
    fn global_phase_hierarchical(
        &mut self,
        ctx: &mut LbContext<'_>,
        sys: &DistributedSystem,
        forecast_gain: Option<GainEstimate>,
        level: usize,
        healthy: &[usize],
        powers: &[f64],
        step: u64,
    ) {
        let proactive = forecast_gain.is_some();
        // Per-group loads: predicted (proactive trigger) or from the
        // synchronized history snapshot. Local arithmetic on data every
        // group leader already holds — the communication the phase
        // charges is the tree's summary/delegation traffic below.
        let group_loads = match forecast_gain {
            Some(g) => g.group_loads,
            None => evaluate_gain_among_with_powers(ctx.history, sys, healthy, powers).group_loads,
        };
        let root = build_reduction_tree(0, healthy.len());
        let inp = HierInputs {
            sys,
            healthy,
            group_loads: &group_loads,
            powers,
            step,
            level,
            proactive,
        };
        if let Err((a, b, e)) = self.hier_upsweep(ctx, &inp, &root) {
            // no aggregated load picture this step: defer the decision
            // entirely, exactly like a failed flat collective
            self.roster.stats.comm_failures += 1;
            self.roster
                .record_pair_failure(a, b, step, e.at(), self.cfg.fault.quarantine_after);
            let gain = GainEstimate {
                gain_secs: 0.0,
                group_loads: Vec::new(),
                imbalance_ratio: 1.0,
            };
            self.push_rejected_decision(
                ctx,
                &inp,
                gain,
                GateVerdict::Deferred,
                "collective_failed",
            );
            return;
        }
        self.hier_resolve(ctx, &inp, &root);
    }

    /// First alive processor of a group — the subtree-representative
    /// endpoint of summary/delegation messages (nameplate leader as a
    /// fallback; the phase only runs over groups with alive power).
    fn leader(ctx: &LbContext<'_>, sys: &DistributedSystem, g: usize) -> ProcId {
        ctx.sim
            .alive_procs_in(GroupId(g))
            .first()
            .copied()
            .unwrap_or_else(|| sys.procs_in(GroupId(g))[0])
    }

    /// One charged control/summary message between two group leaders,
    /// retried with idle backoff per the fault policy. Every attempt is a
    /// real message on the pair's actual inter-group link.
    fn leader_send(
        &mut self,
        ctx: &mut LbContext<'_>,
        sys: &DistributedSystem,
        from: usize,
        to: usize,
        bytes: u64,
        step: u64,
    ) -> Result<(), SimError> {
        let retry = self.cfg.fault.retry;
        let pa = Self::leader(ctx, sys, from);
        let pb = Self::leader(ctx, sys, to);
        let mut attempt = 0u32;
        loop {
            self.decision_msgs += 1;
            match ctx.sim.send(pa, pb, bytes, Activity::LoadBalance) {
                Ok(_) => {
                    if attempt > 0 {
                        self.roster.stats.retries += attempt as u64;
                        self.roster.events.push(FaultEvent::RetrySucceeded {
                            step,
                            retries: attempt,
                        });
                    }
                    return Ok(());
                }
                Err(e) => {
                    attempt += 1;
                    if attempt >= retry.max_attempts.max(1) {
                        return Err(e);
                    }
                    let backoff = retry.backoff_secs(attempt - 1);
                    ctx.sim.busy(pa, backoff, Activity::Wait);
                    ctx.sim.busy(pb, backoff, Activity::Wait);
                }
            }
        }
    }

    /// Upward pass: post-order over the tree, each child representative
    /// shipping its subtree's (load, capacity) summary to the node
    /// representative. The first child shares the node's representative
    /// (both are the subtree's lowest group), so it sends nothing. On
    /// failure returns the leader pair whose link dropped the summary.
    fn hier_upsweep(
        &mut self,
        ctx: &mut LbContext<'_>,
        inp: &HierInputs<'_>,
        node: &TreeNode,
    ) -> Result<(), (usize, usize, SimError)> {
        for child in &node.children {
            self.hier_upsweep(ctx, inp, child)?;
        }
        let rep = inp.healthy[node.lo];
        for child in node.children.iter().skip(1) {
            let crep = inp.healthy[child.lo];
            self.leader_send(ctx, inp.sys, crep, rep, SUMMARY_MSG_BYTES, inp.step)
                .map_err(|e| (crep, rep, e))?;
        }
        Ok(())
    }

    /// Emit the gate event + decision record of a node that did not
    /// invoke redistribution (balanced / deferred / delegate failure).
    fn push_rejected_decision(
        &mut self,
        ctx: &LbContext<'_>,
        inp: &HierInputs<'_>,
        gain: GainEstimate,
        verdict: GateVerdict,
        reason: &'static str,
    ) {
        let tel = ctx.sim.telemetry().clone();
        emit_gate_event(
            &tel,
            ctx.sim,
            inp.step,
            inp.level,
            inp.proactive,
            &gain,
            None,
            0.0,
            0.0,
            0,
            self.cfg.gamma,
            verdict,
            reason,
        );
        self.decisions.push(GlobalDecision {
            step: inp.step,
            gain,
            cost: None,
            invoked: false,
            aborted: false,
            abort_delta_secs: 0.0,
            report: None,
            proactive: inp.proactive,
        });
    }

    /// Delegate resolution to each multi-group child: a small control
    /// message from the node representative hands the child's subtree to
    /// its representative, which then resolves it. A failed delegation
    /// defers that subtree only (the pair-failure bookkeeping decides who
    /// sits out next step); its siblings proceed.
    fn hier_descend(&mut self, ctx: &mut LbContext<'_>, inp: &HierInputs<'_>, node: &TreeNode) {
        let rep = inp.healthy[node.lo];
        for child in &node.children {
            if child.len() < 2 {
                continue; // a single group balances in its local phase
            }
            let crep = inp.healthy[child.lo];
            if crep != rep {
                if let Err(e) =
                    self.leader_send(ctx, inp.sys, rep, crep, DELEGATE_MSG_BYTES, inp.step)
                {
                    self.roster.stats.comm_failures += 1;
                    self.roster.record_pair_failure(
                        rep,
                        crep,
                        inp.step,
                        e.at(),
                        self.cfg.fault.quarantine_after,
                    );
                    let gain = GainEstimate {
                        gain_secs: 0.0,
                        group_loads: Vec::new(),
                        imbalance_ratio: 1.0,
                    };
                    self.push_rejected_decision(
                        ctx,
                        inp,
                        gain,
                        GateVerdict::Deferred,
                        "delegate_failed",
                    );
                    continue;
                }
            }
            self.hier_resolve(ctx, inp, child);
        }
    }

    /// Top-down resolution of one internal tree node: score the subtree's
    /// imbalance over its children's aggregated (load, capacity)
    /// summaries; when imbalanced, probe only the child-representative
    /// pairs, γ-gate, and redistribute among exactly this subtree's
    /// groups; when the gate rejects (or the node is balanced), descend —
    /// a child subtree may still fix itself over its cheaper links.
    fn hier_resolve(&mut self, ctx: &mut LbContext<'_>, inp: &HierInputs<'_>, node: &TreeNode) {
        let fault = self.cfg.fault;
        let tel = ctx.sim.telemetry().clone();
        // each child subtree is scored as one pseudo-group
        let nch = node.children.len();
        let mut child_loads = Vec::with_capacity(nch);
        let mut child_powers = Vec::with_capacity(nch);
        for c in &node.children {
            child_loads.push(
                inp.healthy[c.lo..c.hi]
                    .iter()
                    .map(|&g| inp.group_loads[g])
                    .sum::<f64>(),
            );
            child_powers.push(
                inp.healthy[c.lo..c.hi]
                    .iter()
                    .map(|&g| inp.powers[g])
                    .sum::<f64>(),
            );
        }
        let among: Vec<usize> = (0..nch).collect();
        let node_gain = crate::gain::gain_from_loads(
            child_loads,
            ctx.history.last_step_secs(),
            &among,
            &child_powers,
        );
        // the decision records the full per-group load vector (what a
        // redistribution acts on) under the node's own verdict
        let gain = GainEstimate {
            gain_secs: node_gain.gain_secs,
            group_loads: inp.group_loads.to_vec(),
            imbalance_ratio: node_gain.imbalance_ratio,
        };
        let imbalanced = gain.imbalance_ratio > self.cfg.imbalance_tolerance;
        if !imbalanced || gain.gain_secs <= 0.0 {
            self.push_rejected_decision(ctx, inp, gain, GateVerdict::Reject, "balanced");
            self.hier_descend(ctx, inp, node);
            return;
        }

        // Imbalance within this subtree: price a redistribution over its
        // groups. Only the child-representative links are probed — the
        // sampled worst path of at most arity² probes per node.
        let mut eligible = vec![false; inp.sys.ngroups()];
        for &g in &inp.healthy[node.lo..node.hi] {
            eligible[g] = true;
        }
        let move_cells =
            Self::planned_move_cells(ctx.hier, inp.sys, inp.group_loads, &eligible, inp.powers);
        let cell_bytes = (ctx.hier.nfields() as u64) * 8;
        let move_bytes = move_cells.max(0) as u64 * cell_bytes;
        let reps: Vec<usize> = node.children.iter().map(|c| inp.healthy[c.lo]).collect();
        let mut alpha = 0.0f64;
        let mut beta = 0.0f64;
        let mut alpha_fv = ForecastValue::exact(0.0);
        let mut beta_fv = ForecastValue::exact(0.0);
        for (i, &a) in reps.iter().enumerate() {
            for &b in &reps[i + 1..] {
                let pa = inp.sys.procs_in(GroupId(a))[0];
                let pb = inp.sys.procs_in(GroupId(b))[0];
                let retry = fault.retry;
                let est = self.estimator(a, b);
                let mut attempt = 0u32;
                let outcome = loop {
                    if attempt > 0 {
                        let backoff = retry.backoff_secs(attempt - 1);
                        ctx.sim.busy(pa, backoff, Activity::Wait);
                        ctx.sim.busy(pb, backoff, Activity::Wait);
                    }
                    let t0 = ctx.sim.now(pa).max(ctx.sim.now(pb));
                    let dl = t0 + SimTime::from_secs_f64(fault.probe_timeout_secs);
                    match ctx.sim.probe_inter(GroupId(a), GroupId(b), est, Some(dl)) {
                        Ok(s) => break Ok((s, attempt)),
                        Err(e) => {
                            attempt += 1;
                            if attempt >= retry.max_attempts.max(1) {
                                break Err(e);
                            }
                        }
                    }
                };
                match outcome {
                    Ok((s, retries)) => {
                        self.decision_msgs += 2 * (u64::from(retries) + 1);
                        if retries > 0 {
                            self.roster.stats.retries += retries as u64;
                            self.roster
                                .events
                                .push(FaultEvent::RetrySucceeded { step: inp.step, retries });
                        }
                        self.roster.record_pair_success(a, b);
                        alpha = alpha.max(s.alpha);
                        beta = beta.max(s.beta);
                        if let (Some(af), Some(bf)) = {
                            let est = self.estimator(a, b);
                            (est.alpha_forecast(), est.beta_forecast())
                        } {
                            alpha_fv.value = alpha_fv.value.max(af.value);
                            alpha_fv.error = alpha_fv.error.max(af.error);
                            beta_fv.value = beta_fv.value.max(bf.value);
                            beta_fv.error = beta_fv.error.max(bf.error);
                        }
                    }
                    Err(e) => {
                        self.decision_msgs += 2 * u64::from(retry.max_attempts.max(1));
                        self.roster.stats.probe_failures += 1;
                        self.roster.events.push(FaultEvent::ProbeFailure {
                            step: inp.step,
                            group_a: a,
                            group_b: b,
                        });
                        self.roster.record_pair_failure(
                            a,
                            b,
                            inp.step,
                            e.at(),
                            fault.quarantine_after,
                        );
                        // a representative link is suspect: defer this
                        // whole subtree, don't descend through it
                        self.push_rejected_decision(
                            ctx,
                            inp,
                            gain,
                            GateVerdict::Deferred,
                            "probe_failed",
                        );
                        return;
                    }
                }
            }
        }
        let cost = if self.cfg.predictor.is_none() {
            evaluate_cost(alpha, beta, move_bytes, ctx.history)
        } else {
            let widen = self.cfg.confidence_widening * f64::from(self.cfg.forecast_horizon.max(1));
            evaluate_cost_forecast(alpha_fv, beta_fv, move_bytes, ctx.history, widen)
        };
        let invoked = should_redistribute_confident(gain.gain_secs, &cost, self.cfg.gamma);
        emit_gate_event(
            &tel,
            ctx.sim,
            inp.step,
            inp.level,
            inp.proactive,
            &gain,
            Some(&cost),
            alpha,
            beta,
            move_bytes,
            self.cfg.gamma,
            if invoked {
                GateVerdict::Accept
            } else {
                GateVerdict::Reject
            },
            "gate",
        );
        if !invoked {
            self.decisions.push(GlobalDecision {
                step: inp.step,
                gain,
                cost: Some(cost),
                invoked: false,
                aborted: false,
                abort_delta_secs: 0.0,
                report: None,
                proactive: inp.proactive,
            });
            // too expensive at this tier (e.g. a congested WAN between
            // the child representatives) — the children may still fix
            // their internal imbalance over cheaper links
            self.hier_descend(ctx, inp, node);
            return;
        }

        // Accepted: redistribute among exactly this subtree's groups and
        // stop descending — the elastic repartition balances everything
        // under the node in one pass.
        let snap = checkpoint::snapshot(ctx.hier);
        let deadline = fault
            .transfer_deadline_slack
            .map(|slack| ctx.sim.elapsed() + SimTime::from_secs_f64(slack));
        let alive = self.alive_mask(inp.sys.nprocs());
        let mut aborted = false;
        let mut abort_delta_secs = 0.0;
        let subtree = &inp.healthy[node.lo..node.hi];
        let report = match global_redistribute_elastic(
            ctx.hier,
            ctx.sim,
            inp.group_loads,
            &eligible,
            &self.cfg.balance,
            self.cfg.selection,
            deadline,
            inp.powers,
            &alive,
        ) {
            Ok(rep) => {
                // overhead charged to the subtree only: repartitioning and
                // rebuilding stay inside the groups whose grids moved
                let mut delta = 0.0;
                if rep.moves > 0 {
                    let level0: i64 = ctx.hier.level_cells(0);
                    delta = level0 as f64 * self.cfg.repartition_secs_per_cell
                        + rep.moved_cells as f64 * self.cfg.rebuild_secs_per_moved_cell;
                    charge_groups(ctx.sim, inp.sys, subtree, delta);
                    ctx.history.record_redistribution_overhead(delta);
                }
                if tel.is_enabled() {
                    tel.event(
                        ctx.sim.elapsed().as_secs_f64(),
                        TelEventKind::Redistribute(TelRedistributeEvent {
                            step: inp.step,
                            level: inp.level,
                            moved_cells: rep.moved_cells,
                            moves: rep.moves,
                            aborted: false,
                            delta_secs: delta,
                        }),
                    );
                }
                Some(rep)
            }
            Err(ab) => {
                *ctx.hier = checkpoint::restore(&snap);
                aborted = true;
                let level0: i64 = ctx.hier.level_cells(0);
                abort_delta_secs = level0 as f64 * self.cfg.repartition_secs_per_cell
                    + 2.0 * ab.partial.moved_cells as f64 * self.cfg.rebuild_secs_per_moved_cell;
                charge_groups(ctx.sim, inp.sys, subtree, abort_delta_secs);
                self.roster.stats.aborts += 1;
                self.roster.events.push(FaultEvent::RedistributionAborted {
                    step: inp.step,
                    error: ab.error,
                });
                self.roster.record_pair_failure(
                    ab.src_group,
                    ab.dst_group,
                    inp.step,
                    ab.error.at(),
                    fault.quarantine_after,
                );
                if tel.is_enabled() {
                    let t_sim = ctx.sim.elapsed().as_secs_f64();
                    tel.event(
                        t_sim,
                        TelEventKind::Redistribute(TelRedistributeEvent {
                            step: inp.step,
                            level: inp.level,
                            moved_cells: ab.partial.moved_cells,
                            moves: ab.partial.moves,
                            aborted: true,
                            delta_secs: abort_delta_secs,
                        }),
                    );
                    tel.event(
                        t_sim,
                        TelEventKind::Fault(TelFaultEvent {
                            step: inp.step,
                            kind: TelFaultKind::Rollback {
                                wasted_secs: abort_delta_secs,
                            },
                        }),
                    );
                }
                Some(ab.partial)
            }
        };
        self.decisions.push(GlobalDecision {
            step: inp.step,
            gain,
            cost: Some(cost),
            invoked: true,
            aborted,
            abort_delta_secs,
            report,
            proactive: inp.proactive,
        });
    }

    /// Mirror newly-appended roster fault events into the telemetry sink.
    /// `RedistributionAborted` entries are skipped: the abort site already
    /// emitted an inline `Rollback` right after its redistribute record,
    /// preserving causal order in the audit log.
    fn forward_fault_events(&mut self, ctx: &mut LbContext<'_>) {
        let tel = ctx.sim.telemetry().clone();
        if !tel.is_enabled() {
            self.fault_events_forwarded = self.roster.events.len();
            return;
        }
        let t_sim = ctx.sim.elapsed().as_secs_f64();
        for ev in &self.roster.events[self.fault_events_forwarded..] {
            let mapped = match *ev {
                FaultEvent::RetrySucceeded { step, retries } => Some((
                    step,
                    TelFaultKind::Retry { retries },
                )),
                FaultEvent::ProbeFailure {
                    step,
                    group_a,
                    group_b,
                } => Some((step, TelFaultKind::ProbeFailure { group_a, group_b })),
                FaultEvent::Quarantined { step, group } => {
                    Some((step, TelFaultKind::Quarantine { group }))
                }
                FaultEvent::Readmitted {
                    step,
                    group,
                    recovery_secs,
                } => Some((
                    step,
                    TelFaultKind::Readmit {
                        group,
                        recovery_secs,
                    },
                )),
                FaultEvent::RedistributionAborted { .. } => None,
            };
            if let Some((step, kind)) = mapped {
                tel.event(t_sim, TelEventKind::Fault(TelFaultEvent { step, kind }));
            }
        }
        self.fault_events_forwarded = self.roster.events.len();
    }

    /// The local phase: parallel DLB restricted to each group. Runs for
    /// every group — quarantined ones included: intra-group links are
    /// unaffected by an inter-link failure, and children stay with parents.
    fn local_phase(&mut self, ctx: &mut LbContext<'_>, level: usize) {
        let sys = ctx.sim.system().clone();
        let alive = self.alive_mask(sys.nprocs());
        for g in sys.groups() {
            // balance only among the group's alive procs: a crashed proc
            // neither donates (it was evacuated) nor receives
            let procs: Vec<ProcId> = g.procs.iter().copied().filter(|p| alive[p.0]).collect();
            if procs.len() < 2 {
                continue;
            }
            // single-group collectives cross no inter-link and cannot fail,
            // but stay defensive: a failed exchange skips the group's pass
            if ctx
                .sim
                .allreduce_group(g.id, LOAD_MSG_BYTES, Activity::LoadBalance)
                .is_err()
            {
                continue;
            }
            let weights: Vec<f64> = procs.iter().map(|p| sys.proc(*p).weight).collect();
            balance_level_within(
                ctx.hier,
                ctx.sim,
                level,
                &procs,
                &weights,
                &self.cfg.balance,
            );
        }
    }
}

fn charge_all(sim: &mut SimView, secs: f64) {
    for p in 0..sim.system().nprocs() {
        sim.busy(ProcId(p), secs, Activity::LoadBalance);
    }
}

/// [`charge_all`] restricted to the listed groups — a subtree-local
/// redistribution's repartition/rebuild overhead stays inside the subtree.
fn charge_groups(sim: &mut SimView, sys: &DistributedSystem, groups: &[usize], secs: f64) {
    for &g in groups {
        for &p in sys.procs_in(GroupId(g)) {
            sim.busy(p, secs, Activity::LoadBalance);
        }
    }
}

/// Fan-out of the reduction tree. Doubles as the flat/hierarchical cutover:
/// at or below this many healthy groups the tree would be one node over the
/// individual groups — exactly the flat compare — so the flat path runs.
/// Matches `topology::presets::FEDERATION_FANOUT`, so one tree tier maps to
/// one site and the next to one region of the federation presets.
pub const TREE_ARITY: usize = 8;

/// Bytes of one upward (load, capacity) subtree summary — same size class
/// as the flat collective's per-leg payload ([`LOAD_MSG_BYTES`]).
const SUMMARY_MSG_BYTES: u64 = LOAD_MSG_BYTES;

/// Bytes of one downward delegation message.
const DELEGATE_MSG_BYTES: u64 = LOAD_MSG_BYTES;

/// One node of the balanced reduction tree: the contiguous index range
/// `lo..hi` into the sorted healthy-group list (children partition it).
/// Contiguity is what makes subtrees cheap: group ids are assigned
/// site-major by the federation presets, so a subtree is a site, a region,
/// or a run of regions — and its internal links are the cheap ones.
#[derive(Debug)]
struct TreeNode {
    lo: usize,
    hi: usize,
    children: Vec<TreeNode>,
}

impl TreeNode {
    fn len(&self) -> usize {
        self.hi - self.lo
    }
}

/// Balanced [`TREE_ARITY`]-ary tree over `lo..hi`: split into up to arity
/// near-equal contiguous chunks, recurse into every multi-element chunk.
/// Depth is ⌈log₈ n⌉, so summaries and delegations are O(n) messages total
/// with an O(log n) critical path.
fn build_reduction_tree(lo: usize, hi: usize) -> TreeNode {
    let n = hi - lo;
    if n <= 1 {
        return TreeNode {
            lo,
            hi,
            children: Vec::new(),
        };
    }
    let nchunks = n.min(TREE_ARITY);
    let base = n / nchunks;
    let extra = n % nchunks;
    let mut children = Vec::with_capacity(nchunks);
    let mut start = lo;
    for i in 0..nchunks {
        let size = base + usize::from(i < extra);
        children.push(build_reduction_tree(start, start + size));
        start += size;
    }
    debug_assert_eq!(start, hi);
    TreeNode { lo, hi, children }
}

/// Per-step immutable inputs threaded through the tree walk.
struct HierInputs<'a> {
    sys: &'a DistributedSystem,
    /// Sorted healthy group ids — the tree's index space.
    healthy: &'a [usize],
    /// Loads indexed by group id (full length).
    group_loads: &'a [f64],
    /// Alive compute power indexed by group id (full length).
    powers: &'a [f64],
    step: u64,
    level: usize,
    proactive: bool,
}

/// The one gate event every pushed [`GlobalDecision`] gets, flat or
/// hierarchical — the audit log's gamma_gate count equals the run's
/// global_checks because every decision funnels through here exactly once.
#[allow(clippy::too_many_arguments)]
fn emit_gate_event(
    tel: &Telemetry,
    sim: &SimView,
    step: u64,
    level: usize,
    proactive: bool,
    gain: &GainEstimate,
    cost: Option<&CostEstimate>,
    alpha: f64,
    beta: f64,
    move_bytes: u64,
    gamma: f64,
    verdict: GateVerdict,
    reason: &'static str,
) {
    if !tel.is_enabled() {
        return;
    }
    let t = sim.elapsed().as_secs_f64();
    tel.metric(t, "gate_imbalance_ratio", gain.imbalance_ratio);
    tel.event(
        t,
        TelEventKind::GammaGate(GammaGateEvent {
            step,
            level,
            proactive,
            gain_secs: gain.gain_secs,
            cost_alpha_beta_w_secs: cost.map_or(0.0, |c| c.comm_secs),
            delta_secs: cost.map_or(0.0, |c| c.delta_secs),
            cost_upper_secs: cost.map_or(0.0, CostEstimate::upper_total_secs),
            alpha_secs: alpha,
            beta_secs_per_byte: beta,
            move_bytes,
            gamma,
            mae_widening_secs: cost.map_or(0.0, |c| c.comm_upper_secs - c.comm_secs),
            verdict,
            reason,
        }),
    );
}

impl Default for DistributedDlb {
    fn default() -> Self {
        Self::new(DistributedDlbConfig::default())
    }
}

impl LoadBalancer for DistributedDlb {
    fn name(&self) -> &'static str {
        "distributed DLB"
    }

    fn after_level_step(&mut self, mut ctx: LbContext<'_>, level: usize) -> SimResult<()> {
        // Keep the per-group load series current at every level: the
        // history snapshot only refreshes after level-0 steps, but the
        // proactive trigger wants to see what refinement just did.
        let sys = ctx.sim.system().clone();
        // refresh the crash-stop view before any balancing decision
        let t = ctx.sim.elapsed();
        self.alive = (0..sys.nprocs())
            .map(|p| ctx.sim.alive_at(ProcId(p), t))
            .collect();
        if sys.ngroups() >= 2 {
            self.observe_group_loads(&ctx, &sys);
        }
        if level == 0 {
            self.global_phase(&mut ctx, None, 0);
            // after any global motion, even out level 0 within each group
            self.local_phase(&mut ctx, 0);
        } else {
            self.local_phase(&mut ctx, level);
            self.maybe_proactive_check(&mut ctx, level);
        }
        self.forward_fault_events(&mut ctx);
        Ok(())
    }

    fn place_new_patches(
        &mut self,
        hier: &GridHierarchy,
        sys: &DistributedSystem,
        _level: usize,
        parents: &[usize],
        sizes: &[i64],
    ) -> Vec<usize> {
        // Children are placed inside their parent's group only — the
        // mechanism that removes parent↔child remote communication.
        let all_loads = proc_total_cells(hier, sys.nprocs());
        let alive = self.alive_mask(sys.nprocs());
        let mut owners = vec![0usize; parents.len()];
        for g in sys.groups() {
            let idxs: Vec<usize> = (0..parents.len())
                .filter(|&i| sys.group_of(ProcId(parents[i])) == g.id)
                .collect();
            if idxs.is_empty() {
                continue;
            }
            // never place a child on a crashed proc; a fully-dead group
            // falls back to its nameplate roster (nothing better exists —
            // the next evacuation pass will move the work out)
            let mut gprocs: Vec<ProcId> =
                g.procs.iter().copied().filter(|p| alive[p.0]).collect();
            if gprocs.is_empty() {
                gprocs = g.procs.clone();
            }
            let gloads: Vec<i64> = gprocs.iter().map(|p| all_loads[p.0]).collect();
            let gweights: Vec<f64> = gprocs.iter().map(|p| sys.proc(*p).weight).collect();
            let gsizes: Vec<i64> = idxs.iter().map(|&i| sizes[i]).collect();
            let placed = place_batch(&gloads, &gweights, &gsizes);
            for (k, &i) in idxs.iter().enumerate() {
                owners[i] = gprocs[placed[k]].0;
            }
        }
        owners
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::WorkloadHistory;
    use samr_mesh::{ivec3, region};
    use topology::link::Link;
    use topology::{SimTime, SystemBuilder, TrafficModel};

    fn wan_sys(quiet: bool) -> DistributedSystem {
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
        let wan = if quiet {
            Link::dedicated("wan", SimTime::from_millis(5), 2e7)
        } else {
            Link::shared(
                "wan",
                SimTime::from_millis(5),
                2e7,
                TrafficModel::Constant { load: 0.98 },
            )
        };
        SystemBuilder::new()
            .group("A", 2, 1.0, intra.clone())
            .group("B", 2, 1.0, intra)
            .connect(0, 1, wan)
            .build()
    }

    /// 8 level-0 grids, `na` of them on proc 0 (group A), rest on proc 2.
    fn hier_split(na: i64) -> GridHierarchy {
        let mut h = GridHierarchy::new(region(ivec3(0, 0, 0), ivec3(64, 8, 8)), 2, 4, 1, 1);
        for i in 0..8 {
            let owner = if i < na { 0 } else { 2 };
            h.insert_patch(
                0,
                region(ivec3(8 * i, 0, 0), ivec3(8 * (i + 1), 8, 8)),
                None,
                owner,
            );
        }
        h
    }

    fn history_for(h: &GridHierarchy, nprocs: usize, t: f64) -> WorkloadHistory {
        let mut hist = WorkloadHistory::new(nprocs);
        let loads = vec![h.level_load_by_owner(0, nprocs)];
        hist.record_snapshot(loads, vec![1]);
        hist.record_step_time(t);
        hist
    }

    #[test]
    fn invokes_global_redistribution_when_gain_justifies() {
        let sys = wan_sys(true);
        let mut sim = SimView::new(sys);
        let mut hier = hier_split(6); // A: 3072, B: 1024
        let mut history = history_for(&hier, 4, 60.0); // one step = 60 s
        let mut dlb = DistributedDlb::default();
        dlb.after_level_step(
            LbContext {
                hier: &mut hier,
                sim: &mut sim,
                history: &mut history,
            },
            0,
        )
        .unwrap();
        assert_eq!(dlb.decisions.len(), 1);
        let d = &dlb.decisions[0];
        assert!(d.invoked, "decision {d:?}");
        assert!(!d.aborted);
        let rep = d.report.as_ref().unwrap();
        assert!(rep.moved_cells > 0);
        // δ recorded for the next cost evaluation
        assert!(history.delta() > 0.0);
        // local phase evened out within groups too
        let loads = hier.level_load_by_owner(0, 4);
        assert_eq!(loads[0] + loads[1] + loads[2] + loads[3], 4096);
        assert!(loads.iter().all(|&l| l > 0), "loads {loads:?}");
        // nothing fault-related happened
        assert_eq!(dlb.fault_stats(), crate::fault::FaultStats::default());
    }

    #[test]
    fn congested_wan_blocks_redistribution() {
        // Same imbalance and step time; quiet WAN → redistribute,
        // 98%-congested WAN → defer. This is the "adaptively choosing an
        // appropriate action based on the current traffic" behaviour.
        let run = |quiet: bool| {
            let sys = wan_sys(quiet);
            let mut sim = SimView::new(sys);
            let mut hier = hier_split(6);
            let mut history = history_for(&hier, 4, 0.05);
            let mut dlb = DistributedDlb::default();
            dlb.after_level_step(
                LbContext {
                    hier: &mut hier,
                    sim: &mut sim,
                    history: &mut history,
                },
                0,
            )
            .unwrap();
            let d = dlb.decisions[0].clone();
            let sys = sim.system().clone();
            (d, crate::partition::group_level0_cells(&hier, &sys, 0))
        };
        let (quiet_d, _) = run(true);
        assert!(quiet_d.invoked, "quiet WAN should redistribute: {quiet_d:?}");
        let (busy_d, group_a_cells) = run(false);
        assert!(!busy_d.invoked, "should defer under congestion: {busy_d:?}");
        assert!(busy_d.cost.is_some(), "imbalance was detected, cost evaluated");
        // group ownership at level 0 unchanged under congestion
        assert_eq!(group_a_cells, 3072);
    }

    #[test]
    fn balanced_load_skips_probe() {
        let sys = wan_sys(true);
        let mut sim = SimView::new(sys);
        let mut hier = hier_split(4);
        let mut history = history_for(&hier, 4, 10.0);
        let mut dlb = DistributedDlb::default();
        dlb.after_level_step(
            LbContext {
                hier: &mut hier,
                sim: &mut sim,
                history: &mut history,
            },
            0,
        )
        .unwrap();
        let d = &dlb.decisions[0];
        assert!(!d.invoked);
        assert!(d.cost.is_none(), "no imbalance -> no probe paid");
    }

    #[test]
    fn local_phase_never_crosses_groups() {
        let sys = wan_sys(true);
        let mut sim = SimView::new(sys);
        let mut hier = hier_split(6);
        let mut history = history_for(&hier, 4, 10.0);
        let mut dlb = DistributedDlb::default();
        // fine-level step: local phase only
        dlb.after_level_step(
            LbContext {
                hier: &mut hier,
                sim: &mut sim,
                history: &mut history,
            },
            1,
        )
        .unwrap();
        // group A still owns 6 grids' worth of cells, B 2 — but spread
        // within each group
        let sys = sim.system().clone();
        assert_eq!(crate::partition::group_level0_cells(&hier, &sys, 0), 3072);
        assert_eq!(crate::partition::group_level0_cells(&hier, &sys, 1), 1024);
        assert_eq!(sim.stats().msgs.remote_msgs, 0, "no WAN traffic in local phase");
        assert!(dlb.decisions.is_empty(), "no global decision at fine levels");
    }

    #[test]
    fn placement_keeps_children_in_parent_group() {
        let sys = wan_sys(true);
        let hier = hier_split(4);
        let mut dlb = DistributedDlb::default();
        let parents = vec![0, 0, 2, 2, 0];
        let sizes = vec![100, 200, 300, 400, 500];
        let owners = dlb.place_new_patches(&hier, &sys, 1, &parents, &sizes);
        for (i, &o) in owners.iter().enumerate() {
            let pg = sys.group_of(ProcId(parents[i]));
            let og = sys.group_of(ProcId(o));
            assert_eq!(pg, og, "child {i} left its parent's group");
        }
    }

    #[test]
    fn gamma_zero_always_redistributes_on_imbalance() {
        let sys = wan_sys(false); // even congested
        let mut sim = SimView::new(sys);
        let mut hier = hier_split(6);
        let mut history = history_for(&hier, 4, 0.5);
        let cfg = DistributedDlbConfig {
            gamma: 0.0,
            ..Default::default()
        };
        let mut dlb = DistributedDlb::new(cfg);
        dlb.after_level_step(
            LbContext {
                hier: &mut hier,
                sim: &mut sim,
                history: &mut history,
            },
            0,
        )
        .unwrap();
        assert!(dlb.decisions[0].invoked);
        assert_eq!(dlb.invocations(), 1);
    }

    #[test]
    fn predictive_mode_widens_cost_with_forecast_error() {
        // β flips between quiet and congested each probe: the last-value
        // predictor keeps being wrong, so its MAE (and with it the cost
        // upper bound) grows while the point forecast stays reactive.
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
        let wan = Link::shared(
            "wan",
            SimTime::from_millis(5),
            2e7,
            TrafficModel::Trace {
                initial: 0.0,
                points: vec![
                    (SimTime::from_secs(50).into(), 0.9),
                    (SimTime::from_secs(150).into(), 0.0),
                ],
            },
        );
        let sys = SystemBuilder::new()
            .group("A", 2, 1.0, intra.clone())
            .group("B", 2, 1.0, intra)
            .connect(0, 1, wan)
            .build();
        let mut sim = SimView::new(sys);
        let cfg = DistributedDlbConfig {
            predictor: Some(forecast::PredictorKind::LastValue),
            // huge γ so nothing is ever invoked: we only want priced costs
            gamma: 1e9,
            ..Default::default()
        };
        let mut dlb = DistributedDlb::new(cfg);
        let mut history = WorkloadHistory::new(4);
        for k in 0..3 {
            let mut hier = hier_split(6);
            history.record_snapshot(vec![hier.level_load_by_owner(0, 4)], vec![1]);
            history.record_step_time(60.0);
            dlb.after_level_step(
                LbContext {
                    hier: &mut hier,
                    sim: &mut sim,
                    history: &mut history,
                },
                0,
            )
            .unwrap();
            // drift into the next traffic regime between checks
            for p in 0..4 {
                sim.busy(ProcId(p), 70.0, Activity::Compute);
            }
            let d = dlb.decisions.last().unwrap();
            let cost = d.cost.expect("imbalance priced every step");
            if k == 0 {
                assert_eq!(
                    cost.comm_upper_secs, cost.comm_secs,
                    "no forecast error before the first scored probe"
                );
            }
        }
        // regime flipped between probes: forecast error accrued and widened
        // the upper bound
        let last = dlb.decisions.last().unwrap().cost.unwrap();
        assert!(
            last.comm_upper_secs > last.comm_secs,
            "expected widened bound, got {last:?}"
        );
        let summary = dlb.forecast_summary();
        assert!(summary.beta_mae > 0.0);
        assert!(summary.scored_probes >= 2);
    }

    #[test]
    fn proactive_check_fires_between_level0_steps() {
        let sys = wan_sys(true);
        let mut sim = SimView::new(sys);
        let mut hier = hier_split(6); // groups imbalanced 3:1
        let mut history = history_for(&hier, 4, 60.0);
        let cfg = DistributedDlbConfig {
            proactive_threshold: Some(1.5),
            predictor: Some(forecast::PredictorKind::Adaptive),
            ..Default::default()
        };
        let mut dlb = DistributedDlb::new(cfg);
        // fine-level step only — the paper's protocol would sit on the
        // imbalance until the next level-0 step
        dlb.after_level_step(
            LbContext {
                hier: &mut hier,
                sim: &mut sim,
                history: &mut history,
            },
            1,
        )
        .unwrap();
        assert_eq!(dlb.decisions.len(), 1, "proactive check produced a decision");
        let d = &dlb.decisions[0];
        assert!(d.proactive);
        assert!(d.invoked, "{d:?}");
        let sys = sim.system().clone();
        assert_eq!(
            crate::partition::group_level0_cells(&hier, &sys, 0),
            2048,
            "redistribution happened without a level-0 step"
        );
        let summary = dlb.forecast_summary();
        assert_eq!(summary.proactive_checks, 1);
        assert_eq!(summary.proactive_invocations, 1);
    }

    #[test]
    fn proactive_disabled_by_default_keeps_fine_levels_local() {
        // Explicit twin of local_phase_never_crosses_groups: even with a
        // predictor configured, no proactive threshold means no global
        // decision at fine levels.
        let sys = wan_sys(true);
        let mut sim = SimView::new(sys);
        let mut hier = hier_split(6);
        let mut history = history_for(&hier, 4, 60.0);
        let cfg = DistributedDlbConfig {
            predictor: Some(forecast::PredictorKind::Adaptive),
            ..Default::default()
        };
        let mut dlb = DistributedDlb::new(cfg);
        dlb.after_level_step(
            LbContext {
                hier: &mut hier,
                sim: &mut sim,
                history: &mut history,
            },
            1,
        )
        .unwrap();
        assert!(dlb.decisions.is_empty());
    }

    #[test]
    fn single_group_global_phase_noop() {
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
        let sys = SystemBuilder::new().group("A", 4, 1.0, intra).build();
        let mut sim = SimView::new(sys);
        let mut hier = hier_split(8);
        let mut history = history_for(&hier, 4, 10.0);
        let mut dlb = DistributedDlb::default();
        dlb.after_level_step(
            LbContext {
                hier: &mut hier,
                sim: &mut sim,
                history: &mut history,
            },
            0,
        )
        .unwrap();
        assert!(dlb.decisions.is_empty());
        // but local phase still evens out the single group
        let loads = hier.level_load_by_owner(0, 4);
        assert!(loads.iter().all(|&l| l == 1024), "{loads:?}");
    }
}

#[cfg(test)]
mod congestion_tests {
    use super::*;
    use crate::history::WorkloadHistory;
    use samr_mesh::{ivec3, region};
    use topology::link::Link;
    use topology::{SimTime, SystemBuilder, TrafficModel};

    /// WAN that is quiet until t = 100 s, then 99.5% congested.
    fn sys_with_congestion_onset() -> DistributedSystem {
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
        let wan = Link::shared(
            "wan",
            SimTime::from_millis(5),
            2e7,
            TrafficModel::Trace {
                initial: 0.0,
                points: vec![(SimTime::from_secs(100).into(), 0.995)],
            },
        );
        SystemBuilder::new()
            .group("A", 2, 1.0, intra.clone())
            .group("B", 2, 1.0, intra)
            .connect(0, 1, wan)
            .build()
    }

    fn imbalanced_hier() -> GridHierarchy {
        let mut h = GridHierarchy::new(region(ivec3(0, 0, 0), ivec3(64, 8, 8)), 2, 4, 1, 1);
        for i in 0..8 {
            let owner = if i < 6 { 0 } else { 2 };
            h.insert_patch(
                0,
                region(ivec3(8 * i, 0, 0), ivec3(8 * (i + 1), 8, 8)),
                None,
                owner,
            );
        }
        h
    }

    #[test]
    fn congestion_arriving_mid_run_flips_the_decision() {
        let mut sim = SimView::new(sys_with_congestion_onset());
        let mut dlb = DistributedDlb::default();

        // phase 1: quiet network, strong imbalance -> redistribute
        let mut hier = imbalanced_hier();
        let mut history = WorkloadHistory::new(4);
        history.record_snapshot(vec![hier.level_load_by_owner(0, 4)], vec![1]);
        history.record_step_time(0.05);
        dlb.after_level_step(
            LbContext {
                hier: &mut hier,
                sim: &mut sim,
                history: &mut history,
            },
            0,
        )
        .unwrap();
        assert!(dlb.decisions[0].invoked, "quiet phase should redistribute");

        // advance simulated time past the congestion onset
        for p in 0..4 {
            sim.busy(ProcId(p), 150.0, simnet::Activity::Compute);
        }

        // phase 2: same imbalance shape, congested WAN -> defer
        let mut hier2 = imbalanced_hier();
        history.record_snapshot(vec![hier2.level_load_by_owner(0, 4)], vec![1]);
        history.record_step_time(0.05);
        dlb.after_level_step(
            LbContext {
                hier: &mut hier2,
                sim: &mut sim,
                history: &mut history,
            },
            0,
        )
        .unwrap();
        let d = dlb.decisions.last().unwrap();
        assert!(
            !d.invoked,
            "congested phase must defer: {d:?}"
        );
        // the probe saw the inflated beta (0.995 load clamps to the model's
        // 0.99 ceiling: effective bandwidth 1/100th, comm cost ~8.5x here)
        let cost = d.cost.unwrap();
        let quiet_cost = dlb.decisions[0].cost.unwrap();
        assert!(cost.comm_secs > quiet_cost.comm_secs * 5.0);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::history::WorkloadHistory;
    use samr_mesh::{ivec3, region};
    use topology::faults::{FaultKind, FaultSchedule};
    use topology::link::Link;
    use topology::{SimTime, SystemBuilder};

    fn faulty_wan_sys(sched: FaultSchedule) -> DistributedSystem {
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
        let wan = Link::dedicated("wan", SimTime::from_millis(5), 2e7).with_faults(sched);
        SystemBuilder::new()
            .group("A", 2, 1.0, intra.clone())
            .group("B", 2, 1.0, intra)
            .connect(0, 1, wan)
            .build()
    }

    fn hier_split(na: i64) -> GridHierarchy {
        let mut h = GridHierarchy::new(region(ivec3(0, 0, 0), ivec3(64, 8, 8)), 2, 4, 1, 1);
        for i in 0..8 {
            let owner = if i < na { 0 } else { 2 };
            h.insert_patch(
                0,
                region(ivec3(8 * i, 0, 0), ivec3(8 * (i + 1), 8, 8)),
                None,
                owner,
            );
        }
        h
    }

    /// One level-0 step: record the current load picture, then run the
    /// balancer. The shared history keeps the step counter advancing, which
    /// is what drives probation scheduling.
    fn step(
        dlb: &mut DistributedDlb,
        sim: &mut SimView,
        hier: &mut GridHierarchy,
        history: &mut WorkloadHistory,
        t: f64,
    ) {
        history.record_snapshot(vec![hier.level_load_by_owner(0, 4)], vec![1]);
        history.record_step_time(t);
        dlb.after_level_step(
            LbContext {
                hier,
                sim,
                history,
            },
            0,
        )
        .unwrap();
    }

    #[test]
    fn transient_outage_is_survived_by_retry() {
        // WAN down for the first 40 ms only; the default backoff (50 ms)
        // pushes the retry past the window.
        let sched = FaultSchedule::none().with_window(
            SimTime::ZERO,
            SimTime::from_millis(40),
            FaultKind::Outage,
        );
        let mut sim = SimView::new(faulty_wan_sys(sched));
        let mut hier = hier_split(6);
        let mut history = WorkloadHistory::new(4);
        let mut dlb = DistributedDlb::default();
        step(&mut dlb, &mut sim, &mut hier, &mut history, 60.0);
        let d = &dlb.decisions[0];
        assert!(d.invoked, "{d:?}");
        assert!(!d.aborted);
        let stats = dlb.fault_stats();
        assert!(stats.retries >= 1, "{stats:?}");
        assert_eq!(stats.quarantines, 0);
        assert!(dlb
            .fault_events()
            .iter()
            .any(|e| matches!(e, FaultEvent::RetrySucceeded { .. })));
    }

    #[test]
    fn persistent_outage_quarantines_then_readmits() {
        // WAN dead from 0 to 1000 s, healthy afterwards.
        let sched = FaultSchedule::none().with_window(
            SimTime::ZERO,
            SimTime::from_secs(1000),
            FaultKind::Outage,
        );
        let mut sim = SimView::new(faulty_wan_sys(sched));
        let mut hier = hier_split(6);
        let cfg = DistributedDlbConfig {
            fault: FaultTolerancePolicy {
                quarantine_after: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut dlb = DistributedDlb::new(cfg);
        let mut history = WorkloadHistory::new(4);

        // Two steps with the link dead: the decision collective fails even
        // after retries — one strike per step; quarantine_after = 2.
        step(&mut dlb, &mut sim, &mut hier, &mut history, 60.0);
        step(&mut dlb, &mut sim, &mut hier, &mut history, 60.0);
        assert!(
            !dlb.roster.is_healthy(1),
            "B should be quarantined: {:?}",
            dlb.fault_events()
        );
        assert_eq!(dlb.fault_stats().quarantines, 1);
        assert_eq!(group_level0_cells(&hier, sim.system(), 0), 3072, "no motion");

        // While quarantined the global phase is silent (healthy set = {A}),
        // and the probation probe keeps failing inside the fault window.
        let before = dlb.decisions.len();
        step(&mut dlb, &mut sim, &mut hier, &mut history, 60.0);
        assert_eq!(dlb.decisions.len(), before, "no global decision while alone");
        assert!(!dlb.roster.is_healthy(1));

        // Advance past the fault window; probation probe re-admits B.
        for p in 0..4 {
            sim.busy(ProcId(p), 1100.0, Activity::Compute);
        }
        step(&mut dlb, &mut sim, &mut hier, &mut history, 60.0);
        assert!(dlb.roster.is_healthy(1), "{:?}", dlb.fault_events());
        let stats = dlb.fault_stats();
        assert_eq!(stats.readmissions, 1);
        assert!(stats.recovery_secs > 0.0);
        // and with the link back, the imbalance finally gets fixed
        let d = dlb.decisions.last().unwrap();
        assert!(d.invoked, "{d:?}");
        assert_eq!(group_level0_cells(&hier, sim.system(), 0), 2048);
    }

    #[test]
    fn midflight_failure_rolls_back_and_records_abort() {
        // Lossy WAN: small messages (the decision collective and the
        // 1 KiB / 64 KiB probes) get through, bulk payloads above 64 KiB
        // die mid-flight. Grids of 32×32×32 = 32768 cells carry a 256 KiB
        // payload, so the migration itself is what fails.
        let sched = FaultSchedule::none().with_window(
            SimTime::ZERO,
            SimTime::from_secs(3600),
            FaultKind::DropLarge {
                threshold_bytes: (1 << 16) + 1,
            },
        );
        let mut sim = SimView::new(faulty_wan_sys(sched));
        let mut hier = {
            let mut h =
                GridHierarchy::new(region(ivec3(0, 0, 0), ivec3(256, 32, 32)), 2, 4, 1, 1);
            for i in 0..8 {
                let owner = if i < 6 { 0 } else { 2 };
                h.insert_patch(
                    0,
                    region(ivec3(32 * i, 0, 0), ivec3(32 * (i + 1), 32, 32)),
                    None,
                    owner,
                );
            }
            h
        };
        let grids_before = hier.level_ids(0).len();
        let cells_a_before = group_level0_cells(&hier, sim.system(), 0);
        let mut history = WorkloadHistory::new(4);
        let mut dlb = DistributedDlb::default();
        step(&mut dlb, &mut sim, &mut hier, &mut history, 600.0);
        let d = &dlb.decisions[0];
        assert!(d.invoked, "{d:?}");
        assert!(d.aborted, "bulk transfer must have failed: {d:?}");
        assert!(d.abort_delta_secs > 0.0);
        let stats = dlb.fault_stats();
        assert_eq!(stats.aborts, 1);
        // rollback restored ownership exactly
        assert_eq!(group_level0_cells(&hier, sim.system(), 0), cells_a_before);
        assert_eq!(hier.level_ids(0).len(), grids_before, "splits rolled back");
        assert!(hier.check_invariants().is_ok());
        assert!(dlb
            .fault_events()
            .iter()
            .any(|e| matches!(e, FaultEvent::RedistributionAborted { .. })));
    }
}
