//! Computational-gain evaluation for global redistribution — §4.3, Eq. (4).

use crate::history::WorkloadHistory;
use topology::{DistributedSystem, GroupId};

/// Result of evaluating Eq. (4) on the current history.
#[derive(Clone, Debug, PartialEq)]
pub struct GainEstimate {
    /// Estimated seconds saved per level-0 step by removing the imbalance.
    pub gain_secs: f64,
    /// Iteration-weighted workload per group, `W_group(t)` (Eq. 3).
    pub group_loads: Vec<f64>,
    /// Power-normalized imbalance ratio `max(W_g/P_g) / min(W_g/P_g)`
    /// (∞ when some group has zero load but others don't).
    pub imbalance_ratio: f64,
}

/// Evaluate the paper's gain heuristic.
///
/// `Gain = T(t) · (max_g W_g − min_g W_g) / (NumGroups · max_g W_g)` — a
/// deliberately conservative estimate of the per-step time saved by removing
/// the inter-group imbalance, scaled from the measured last step time `T(t)`.
pub fn evaluate_gain(history: &WorkloadHistory, sys: &DistributedSystem) -> GainEstimate {
    let all: Vec<usize> = (0..sys.ngroups()).collect();
    evaluate_gain_among(history, sys, &all)
}

/// [`evaluate_gain`] restricted to the listed (healthy) groups: the max/min
/// and imbalance ratio consider only `among`, so a quarantined group's
/// unreachable load can neither trigger nor suppress a redistribution among
/// the groups that can actually exchange work. `group_loads` in the result
/// still covers every group (entries outside `among` are reported but not
/// compared).
pub fn evaluate_gain_among(
    history: &WorkloadHistory,
    sys: &DistributedSystem,
    among: &[usize],
) -> GainEstimate {
    let powers = static_powers(sys);
    evaluate_gain_among_with_powers(history, sys, among, &powers)
}

/// [`evaluate_gain_among`] with explicit per-group compute powers —
/// the crash-stop path, where a group that lost procs has less capacity
/// than its nameplate `group_power` and imbalance must be judged against
/// what is *actually* alive. `powers` is indexed by group id (full
/// length, entries outside `among` ignored).
pub fn evaluate_gain_among_with_powers(
    history: &WorkloadHistory,
    sys: &DistributedSystem,
    among: &[usize],
    powers: &[f64],
) -> GainEstimate {
    let ngroups = sys.ngroups();
    let mut group_loads = Vec::with_capacity(ngroups);
    for g in 0..ngroups {
        let procs: Vec<usize> = sys.procs_in(GroupId(g)).iter().map(|p| p.0).collect();
        group_loads.push(history.group_total_load(&procs));
    }
    gain_from_loads(group_loads, history.last_step_secs(), among, powers)
}

/// Nameplate per-group powers (every proc assumed alive).
pub fn static_powers(sys: &DistributedSystem) -> Vec<f64> {
    (0..sys.ngroups())
        .map(|g| sys.group_power(GroupId(g)))
        .collect()
}

/// Evaluate the same Eq.-4 heuristic on *predicted* per-group loads — the
/// proactive-trigger path, where the loads come from the forecast crate's
/// per-group series instead of the last recorded snapshot.
pub fn evaluate_gain_forecast(
    predicted_loads: Vec<f64>,
    last_step_secs: f64,
    sys: &DistributedSystem,
    among: &[usize],
) -> GainEstimate {
    let powers = static_powers(sys);
    evaluate_gain_forecast_with_powers(predicted_loads, last_step_secs, sys, among, &powers)
}

/// [`evaluate_gain_forecast`] with explicit per-group powers (see
/// [`evaluate_gain_among_with_powers`]).
pub fn evaluate_gain_forecast_with_powers(
    predicted_loads: Vec<f64>,
    last_step_secs: f64,
    sys: &DistributedSystem,
    among: &[usize],
    powers: &[f64],
) -> GainEstimate {
    assert_eq!(predicted_loads.len(), sys.ngroups());
    gain_from_loads(predicted_loads, last_step_secs, among, powers)
}

/// Eq. 4 straight from an explicit load vector: the primitive behind every
/// `evaluate_gain_*` entry point, public so the hierarchical decision tree
/// can score a subtree from its children's aggregated (load, capacity)
/// summaries — `group_loads`/`powers` indexed by whatever granularity
/// `among` enumerates (groups for the flat path, child subtrees for a tree
/// node).
pub fn gain_from_loads(
    group_loads: Vec<f64>,
    last_step_secs: f64,
    among: &[usize],
    powers: &[f64],
) -> GainEstimate {
    let active = among.len();
    let max = among
        .iter()
        .map(|&g| group_loads[g])
        .fold(0.0, f64::max);
    let min = among
        .iter()
        .map(|&g| group_loads[g])
        .fold(f64::MAX, f64::min);
    let gain_secs = if max > 0.0 && active > 1 {
        last_step_secs * (max - min) / (active as f64 * max)
    } else {
        0.0
    };

    // Imbalance is judged on power-normalized loads so a faster group is
    // *supposed* to hold more work.
    let mut norm_max = 0.0f64;
    let mut norm_min = f64::MAX;
    for &g in among {
        let w = group_loads[g];
        let p = powers[g];
        // a group with no surviving capacity but load still assigned is
        // infinitely imbalanced — its work must leave
        let norm = if p > 0.0 {
            w / p
        } else if w > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
        norm_max = norm_max.max(norm);
        norm_min = norm_min.min(norm);
    }
    if among.is_empty() {
        norm_min = 0.0;
    }
    let imbalance_ratio = if norm_max == 0.0 {
        1.0
    } else if norm_min <= 0.0 {
        f64::INFINITY
    } else {
        norm_max / norm_min
    };

    GainEstimate {
        gain_secs,
        group_loads,
        imbalance_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::WorkloadHistory;
    use topology::link::Link;
    use topology::{SimTime, SystemBuilder};

    fn sys(na: usize, nb: usize, wb: f64) -> DistributedSystem {
        let intra = Link::dedicated("intra", SimTime::ZERO, 1e9);
        let wan = Link::dedicated("wan", SimTime::from_millis(5), 1e7);
        SystemBuilder::new()
            .group("A", na, 1.0, intra.clone())
            .group("B", nb, wb, intra)
            .connect(0, 1, wan)
            .build()
    }

    fn history(loads_a: i64, loads_b: i64, t: f64) -> WorkloadHistory {
        let mut h = WorkloadHistory::new(4);
        h.record_snapshot(
            vec![vec![loads_a / 2, loads_a / 2, loads_b / 2, loads_b / 2]],
            vec![1],
        );
        h.record_step_time(t);
        h
    }

    #[test]
    fn balanced_system_zero_gain() {
        let h = history(1000, 1000, 10.0);
        let g = evaluate_gain(&h, &sys(2, 2, 1.0));
        assert_eq!(g.gain_secs, 0.0);
        assert!((g.imbalance_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eq4_exact_value() {
        // W_A = 1400, W_B = 200, T = 10, 2 groups:
        // gain = 10 * (1400-200) / (2*1400) = 4.2857...
        let mut h = WorkloadHistory::new(4);
        h.record_snapshot(
            vec![vec![100, 100, 100, 100], vec![400, 200, 0, 0]],
            vec![1, 2],
        );
        h.record_step_time(10.0);
        let g = evaluate_gain(&h, &sys(2, 2, 1.0));
        assert_eq!(g.group_loads, vec![1400.0, 200.0]);
        assert!((g.gain_secs - 10.0 * 1200.0 / 2800.0).abs() < 1e-12);
        assert!((g.imbalance_ratio - 7.0).abs() < 1e-12);
    }

    #[test]
    fn gain_is_conservative_fraction_of_step() {
        // gain can never exceed T/NumGroups
        let h = history(10_000, 0, 10.0);
        let g = evaluate_gain(&h, &sys(2, 2, 1.0));
        assert!(g.gain_secs <= 10.0 / 2.0 + 1e-12);
        assert!(g.imbalance_ratio.is_infinite());
    }

    #[test]
    fn power_normalization_tolerates_fast_group_holding_more() {
        // group B has 2x-weight procs: holding 2x the load is balanced
        let h = history(1000, 2000, 10.0);
        let g = evaluate_gain(&h, &sys(2, 2, 2.0));
        assert!((g.imbalance_ratio - 1.0).abs() < 1e-9);
        // raw Eq.4 gain is still positive (it ignores power by design —
        // the caller gates on imbalance_ratio first)
        assert!(g.gain_secs > 0.0);
    }

    #[test]
    fn zero_step_time_zero_gain() {
        let h = history(1000, 0, 0.0);
        let g = evaluate_gain(&h, &sys(2, 2, 1.0));
        assert_eq!(g.gain_secs, 0.0);
    }

    #[test]
    fn gain_among_ignores_excluded_groups() {
        // B holds nothing; among all groups that is a huge imbalance, but
        // with B quarantined the healthy subset {A} is trivially balanced.
        let h = history(1000, 0, 10.0);
        let sys = sys(2, 2, 1.0);
        let full = evaluate_gain_among(&h, &sys, &[0, 1]);
        assert!(full.gain_secs > 0.0);
        assert!(full.imbalance_ratio.is_infinite());
        let only_a = evaluate_gain_among(&h, &sys, &[0]);
        assert_eq!(only_a.gain_secs, 0.0);
        assert!((only_a.imbalance_ratio - 1.0).abs() < 1e-12);
        // group_loads still reports every group
        assert_eq!(only_a.group_loads.len(), 2);
        // matches unrestricted evaluation when every group is listed
        assert_eq!(evaluate_gain(&h, &sys), full);
    }

    #[test]
    fn shrunken_powers_turn_balance_into_imbalance() {
        // equal loads on equal nameplate groups: balanced...
        let h = history(1000, 1000, 10.0);
        let sys = sys(2, 2, 1.0);
        let nameplate = evaluate_gain(&h, &sys);
        assert!((nameplate.imbalance_ratio - 1.0).abs() < 1e-12);
        // ...but with one of B's two procs dead, B is carrying double its
        // surviving capacity's fair share
        let shrunk = evaluate_gain_among_with_powers(&h, &sys, &[0, 1], &[2.0, 1.0]);
        assert!((shrunk.imbalance_ratio - 2.0).abs() < 1e-12);
        // a zero-capacity group with load pending is infinitely imbalanced
        let dead = evaluate_gain_among_with_powers(&h, &sys, &[0, 1], &[2.0, 0.0]);
        assert!(dead.imbalance_ratio.is_infinite());
        // static_powers reproduces the nameplate evaluation
        assert_eq!(
            evaluate_gain_among_with_powers(&h, &sys, &[0, 1], &static_powers(&sys)),
            nameplate
        );
    }

    #[test]
    fn forecast_gain_matches_history_gain_on_same_loads() {
        let h = history(1400, 200, 10.0);
        let sys = sys(2, 2, 1.0);
        let from_history = evaluate_gain(&h, &sys);
        let from_forecast = evaluate_gain_forecast(
            from_history.group_loads.clone(),
            h.last_step_secs(),
            &sys,
            &[0, 1],
        );
        assert_eq!(from_forecast, from_history);
        // and a predicted shift changes the verdict before history catches up
        let shifted = evaluate_gain_forecast(vec![200.0, 1400.0], 10.0, &sys, &[0, 1]);
        assert!((shifted.imbalance_ratio - 7.0).abs() < 1e-12);
    }
}
