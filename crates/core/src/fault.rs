//! Fault-tolerance policy for the distributed DLB: retries, probe
//! deadlines, and the group **quarantine** protocol.
//!
//! The paper assumes the WAN between groups stays up; real distributed
//! systems do not. The degradation policy implemented here keeps the
//! scheme's structure intact while making every inter-group interaction
//! abortable:
//!
//! * control traffic (probes, decision collectives) is retried with
//!   exponential backoff under a [`RetryPolicy`];
//! * a group whose inter-link keeps failing is **quarantined** — excluded
//!   from the global phase's collective, gain evaluation, and
//!   redistribution, while its *local* intra-group DLB continues (children
//!   stay with parents, so a partitioned group remains self-sufficient);
//! * a quarantined group is re-admitted after a **probation probe**
//!   succeeds, and the time it spent excluded is recorded as recovery time.

use simnet::{RetryPolicy, SimError};
use topology::SimTime;

/// Tuning of the fault-tolerance behaviour of [`DistributedDlb`]
/// (crate::DistributedDlb).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultTolerancePolicy {
    /// Retry/backoff applied to inter-group probes.
    pub retry: RetryPolicy,
    /// Deadline for one α/β probe attempt, seconds.
    pub probe_timeout_secs: f64,
    /// Deadline for the whole migration traffic of one global
    /// redistribution, seconds past its start (`None` = unbounded).
    pub transfer_deadline_slack: Option<f64>,
    /// Consecutive inter-link failures after which the remote group is
    /// quarantined.
    pub quarantine_after: u32,
    /// Probation probes are attempted every this many level-0 steps.
    pub probation_interval: u64,
    /// Staleness TTL handed to the link estimators: an α/β estimate older
    /// than this (in simulated seconds) no longer informs the γ-gate.
    pub estimator_ttl_secs: f64,
}

impl Default for FaultTolerancePolicy {
    fn default() -> Self {
        FaultTolerancePolicy {
            retry: RetryPolicy::default(),
            probe_timeout_secs: 2.0,
            transfer_deadline_slack: Some(4.0),
            quarantine_after: 2,
            probation_interval: 1,
            estimator_ttl_secs: 300.0,
        }
    }
}

/// Participation state of a group in the global phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GroupHealth {
    /// Fully participating.
    Healthy,
    /// Excluded from the global phase since level-0 step `since_step`
    /// (simulated time `since`); local DLB continues.
    Quarantined { since_step: u64, since: SimTime },
}

impl GroupHealth {
    pub fn is_healthy(&self) -> bool {
        matches!(self, GroupHealth::Healthy)
    }
}

/// One entry of the fault log kept by the scheme.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// An inter-group probe (or its retries) ultimately failed.
    ProbeFailure {
        step: u64,
        group_a: usize,
        group_b: usize,
    },
    /// A retried operation eventually succeeded after `retries` re-attempts.
    RetrySucceeded { step: u64, retries: u32 },
    /// `group` was quarantined.
    Quarantined { step: u64, group: usize },
    /// `group` passed its probation probe and rejoined the global phase;
    /// it had been excluded for `recovery_secs` of simulated time.
    Readmitted {
        step: u64,
        group: usize,
        recovery_secs: f64,
    },
    /// A global redistribution was aborted mid-flight and rolled back.
    RedistributionAborted { step: u64, error: SimError },
}

/// Aggregate fault counters (mirrored into the run-level report by the
/// driver).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultStats {
    /// Inter-group probes that failed even after retries.
    pub probe_failures: u64,
    /// Re-attempts consumed by eventually-successful retried operations.
    pub retries: u64,
    /// Global redistributions aborted and rolled back.
    pub aborts: u64,
    /// Groups placed in quarantine.
    pub quarantines: u64,
    /// Groups re-admitted after probation.
    pub readmissions: u64,
    /// Collectives that failed outright (before any retry).
    pub comm_failures: u64,
    /// Total simulated seconds groups spent quarantined before re-admission.
    pub recovery_secs: f64,
}

/// Tracks which groups are quarantined, their failure strikes, and the
/// fault-event log.
#[derive(Clone, Debug, Default)]
pub struct QuarantineRoster {
    health: Vec<GroupHealth>,
    /// Consecutive inter-link failures charged against each group.
    strikes: Vec<u32>,
    /// Chronological fault log.
    pub events: Vec<FaultEvent>,
    /// Aggregate counters.
    pub stats: FaultStats,
}

impl QuarantineRoster {
    pub fn new(ngroups: usize) -> Self {
        QuarantineRoster {
            health: vec![GroupHealth::Healthy; ngroups],
            strikes: vec![0; ngroups],
            events: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// Grow to `ngroups` entries if needed (roster may be created lazily).
    pub fn ensure_len(&mut self, ngroups: usize) {
        while self.health.len() < ngroups {
            self.health.push(GroupHealth::Healthy);
            self.strikes.push(0);
        }
    }

    pub fn health(&self, g: usize) -> GroupHealth {
        self.health[g]
    }

    pub fn is_healthy(&self, g: usize) -> bool {
        self.health[g].is_healthy()
    }

    /// Indices of groups currently participating in the global phase.
    pub fn healthy_groups(&self) -> Vec<usize> {
        (0..self.health.len())
            .filter(|&g| self.health[g].is_healthy())
            .collect()
    }

    /// Indices of quarantined groups.
    pub fn quarantined_groups(&self) -> Vec<usize> {
        (0..self.health.len())
            .filter(|&g| !self.health[g].is_healthy())
            .collect()
    }

    /// Charge a failure on the link between `a` and `b` at level-0 step
    /// `step` (simulated time `now`). The higher-indexed group takes the
    /// blame — group 0 hosts the coordinator and is never quarantined, so
    /// the scheme always retains a quorum to keep running. Returns the
    /// group that was quarantined by this strike, if any.
    pub fn record_pair_failure(
        &mut self,
        a: usize,
        b: usize,
        step: u64,
        now: SimTime,
        quarantine_after: u32,
    ) -> Option<usize> {
        let blamed = a.max(b);
        if blamed == 0 || !self.health[blamed].is_healthy() {
            return None;
        }
        self.strikes[blamed] = self.strikes[blamed].saturating_add(1);
        if self.strikes[blamed] >= quarantine_after.max(1) {
            self.health[blamed] = GroupHealth::Quarantined {
                since_step: step,
                since: now,
            };
            self.events.push(FaultEvent::Quarantined {
                step,
                group: blamed,
            });
            self.stats.quarantines += 1;
            return Some(blamed);
        }
        None
    }

    /// A successful interaction over the link between `a` and `b` clears
    /// both groups' strikes.
    pub fn record_pair_success(&mut self, a: usize, b: usize) {
        self.strikes[a] = 0;
        self.strikes[b] = 0;
    }

    /// Re-admit `g` after a successful probation probe at step `step`
    /// (simulated time `now`); records the recovery time.
    pub fn readmit(&mut self, g: usize, step: u64, now: SimTime) {
        if let GroupHealth::Quarantined { since, .. } = self.health[g] {
            let recovery_secs = now.saturating_sub(since).as_secs_f64();
            self.health[g] = GroupHealth::Healthy;
            self.strikes[g] = 0;
            self.events.push(FaultEvent::Readmitted {
                step,
                group: g,
                recovery_secs,
            });
            self.stats.readmissions += 1;
            self.stats.recovery_secs += recovery_secs;
        }
    }

    /// Current strike count of `g`.
    pub fn strikes(&self, g: usize) -> u32 {
        self.strikes[g]
    }
}

/// Liveness transitions observed between two snapshots of the alive mask.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProcTransitions {
    /// Procs that were alive last observation and are dead now.
    pub crashed: Vec<usize>,
    /// Procs that were dead last observation and are alive now.
    pub rejoined: Vec<usize>,
}

impl ProcTransitions {
    pub fn is_empty(&self) -> bool {
        self.crashed.is_empty() && self.rejoined.is_empty()
    }
}

/// Edge detector over the per-proc alive mask: the simulator answers
/// "who is alive *now*" as a pure function of time, and this turns
/// consecutive answers into crash/rejoin *events* the driver can act on
/// (evacuate patches, refill a returning proc).
#[derive(Clone, Debug)]
pub struct ProcHealth {
    alive: Vec<bool>,
}

impl ProcHealth {
    /// All procs presumed alive initially.
    pub fn new(nprocs: usize) -> Self {
        ProcHealth {
            alive: vec![true; nprocs],
        }
    }

    /// Is `p` alive as of the last observation?
    pub fn is_alive(&self, p: usize) -> bool {
        self.alive.get(p).copied().unwrap_or(true)
    }

    /// The full alive mask as of the last observation.
    pub fn alive_mask(&self) -> &[bool] {
        &self.alive
    }

    /// Number of alive procs as of the last observation.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Fold in a fresh observation of the alive mask and return the
    /// transitions since the previous one.
    pub fn observe(&mut self, now_alive: &[bool]) -> ProcTransitions {
        assert_eq!(now_alive.len(), self.alive.len(), "proc count is fixed");
        let mut tr = ProcTransitions::default();
        for (p, (&was, &is)) in self.alive.iter().zip(now_alive).enumerate() {
            match (was, is) {
                (true, false) => tr.crashed.push(p),
                (false, true) => tr.rejoined.push(p),
                _ => {}
            }
        }
        self.alive.copy_from_slice(now_alive);
        tr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strikes_accumulate_into_quarantine() {
        let mut r = QuarantineRoster::new(3);
        assert_eq!(r.healthy_groups(), vec![0, 1, 2]);
        assert!(r
            .record_pair_failure(0, 2, 1, SimTime::from_secs(1), 2)
            .is_none());
        assert_eq!(r.strikes(2), 1);
        let q = r.record_pair_failure(0, 2, 2, SimTime::from_secs(2), 2);
        assert_eq!(q, Some(2));
        assert!(!r.is_healthy(2));
        assert_eq!(r.healthy_groups(), vec![0, 1]);
        assert_eq!(r.quarantined_groups(), vec![2]);
        assert_eq!(r.stats.quarantines, 1);
    }

    #[test]
    fn group_zero_is_never_blamed() {
        let mut r = QuarantineRoster::new(2);
        // pair failure between 0 and 1 blames 1, never 0
        r.record_pair_failure(1, 0, 1, SimTime::ZERO, 1);
        assert!(r.is_healthy(0));
        assert!(!r.is_healthy(1));
        // a failure "between 0 and 0" (degenerate) can't quarantine 0
        assert!(r.record_pair_failure(0, 0, 1, SimTime::ZERO, 1).is_none());
        assert!(r.is_healthy(0));
    }

    #[test]
    fn success_clears_strikes() {
        let mut r = QuarantineRoster::new(2);
        r.record_pair_failure(0, 1, 1, SimTime::ZERO, 3);
        r.record_pair_failure(0, 1, 2, SimTime::ZERO, 3);
        assert_eq!(r.strikes(1), 2);
        r.record_pair_success(0, 1);
        assert_eq!(r.strikes(1), 0);
        // strikes must re-accumulate from scratch
        r.record_pair_failure(0, 1, 3, SimTime::ZERO, 3);
        assert!(r.is_healthy(1));
    }

    #[test]
    fn readmit_records_recovery_time() {
        let mut r = QuarantineRoster::new(2);
        r.record_pair_failure(0, 1, 5, SimTime::from_secs(10), 1);
        assert!(!r.is_healthy(1));
        r.readmit(1, 8, SimTime::from_secs(25));
        assert!(r.is_healthy(1));
        assert_eq!(r.stats.readmissions, 1);
        assert!((r.stats.recovery_secs - 15.0).abs() < 1e-9);
        assert!(matches!(
            r.events.last(),
            Some(FaultEvent::Readmitted { group: 1, .. })
        ));
        // re-admitting a healthy group is a no-op
        r.readmit(1, 9, SimTime::from_secs(30));
        assert_eq!(r.stats.readmissions, 1);
    }

    #[test]
    fn quarantined_group_takes_no_further_strikes() {
        let mut r = QuarantineRoster::new(2);
        r.record_pair_failure(0, 1, 1, SimTime::ZERO, 1);
        assert_eq!(r.stats.quarantines, 1);
        assert!(r.record_pair_failure(0, 1, 2, SimTime::ZERO, 1).is_none());
        assert_eq!(r.stats.quarantines, 1, "no double quarantine");
    }

    #[test]
    fn proc_health_detects_edges_once() {
        let mut h = ProcHealth::new(4);
        assert_eq!(h.alive_count(), 4);
        let tr = h.observe(&[true, false, true, false]);
        assert_eq!(tr.crashed, vec![1, 3]);
        assert!(tr.rejoined.is_empty());
        // same mask again: no new events
        assert!(h.observe(&[true, false, true, false]).is_empty());
        assert_eq!(h.alive_count(), 2);
        assert!(!h.is_alive(1));
        let tr = h.observe(&[true, true, true, false]);
        assert_eq!(tr.rejoined, vec![1]);
        assert!(tr.crashed.is_empty());
        // out-of-range queries default to alive
        assert!(h.is_alive(99));
    }

    #[test]
    fn policy_default_is_sane() {
        let p = FaultTolerancePolicy::default();
        assert!(p.probe_timeout_secs > 0.0);
        assert!(p.quarantine_after >= 1);
        assert!(p.estimator_ttl_secs > 0.0);
    }
}
