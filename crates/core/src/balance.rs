//! The within-set balancing primitive shared by the parallel-DLB baseline
//! and the distributed scheme's local phase: redistribute one level's grids
//! among a set of processors, moving (and when necessary splitting) grids
//! from overloaded to underloaded processors.

use samr_mesh::hierarchy::GridHierarchy;
use samr_mesh::patch::PatchId;
use simnet::{Activity, SimView};
use topology::ProcId;

/// Tuning for [`balance_level_within`].
#[derive(Clone, Copy, Debug)]
pub struct BalanceParams {
    /// A processor is "balanced enough" when its load is within this factor
    /// of its target (1.05 = 5% slack).
    pub tolerance: f64,
    /// Hard cap on grid moves per invocation.
    pub max_moves: usize,
    /// Grids with fewer cells than this are never split.
    pub min_split_cells: i64,
    /// Whether oversized grids may be split to hit the target.
    pub allow_split: bool,
}

impl Default for BalanceParams {
    fn default() -> Self {
        BalanceParams {
            tolerance: 1.05,
            max_moves: 256,
            min_split_cells: 32,
            allow_split: true,
        }
    }
}

/// What a balancing pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BalanceOutcome {
    /// Number of grid migrations performed.
    pub moves: usize,
    /// Number of grid splits performed.
    pub splits: usize,
    /// Total cells migrated.
    pub moved_cells: i64,
    /// Total bytes shipped for migrations.
    pub moved_bytes: u64,
    /// Migrations abandoned because the transfer failed (the grid stays
    /// with its current owner).
    pub failed_moves: usize,
}

/// Balance the grids of `level` among `procs` (weights parallel to `procs`),
/// leaving grids owned by processors outside the set untouched.
///
/// Targets are proportional to weights; grids move from the most-overloaded
/// to the most-underloaded processor until every load is within
/// `params.tolerance` of target or no productive move remains. Migration
/// traffic is charged to the simulator as [`Activity::LoadBalance`].
pub fn balance_level_within(
    hier: &mut GridHierarchy,
    sim: &mut SimView,
    level: usize,
    procs: &[ProcId],
    weights: &[f64],
    params: &BalanceParams,
) -> BalanceOutcome {
    assert_eq!(procs.len(), weights.len());
    let mut out = BalanceOutcome::default();
    if procs.len() < 2 {
        return out;
    }
    let wsum: f64 = weights.iter().sum();
    assert!(wsum > 0.0);

    let in_set = |owner: usize| procs.iter().position(|p| p.0 == owner);

    for _ in 0..params.max_moves {
        // Current loads of the set's processors at this level.
        let mut loads = vec![0i64; procs.len()];
        let mut owned: Vec<Vec<PatchId>> = vec![Vec::new(); procs.len()];
        for &id in hier.level_ids(level) {
            let p = hier.patch(id);
            if let Some(ix) = in_set(p.owner) {
                loads[ix] += p.cells();
                owned[ix].push(id);
            }
        }
        let total: i64 = loads.iter().sum();
        if total == 0 {
            break;
        }
        let target: Vec<f64> = weights
            .iter()
            .map(|w| total as f64 * w / wsum)
            .collect();

        // Most overloaded / most underloaded (deterministic tie-break by
        // index).
        let (mut over, mut under) = (0usize, 0usize);
        let mut max_sur = f64::MIN;
        let mut max_def = f64::MIN;
        for i in 0..procs.len() {
            let sur = loads[i] as f64 - target[i];
            if sur > max_sur {
                max_sur = sur;
                over = i;
            }
            if -sur > max_def {
                max_def = -sur;
                under = i;
            }
        }
        // Balanced enough?
        let within = |i: usize| loads[i] as f64 <= target[i] * params.tolerance + 1.0;
        if within(over) || over == under {
            break;
        }
        let gap = max_sur.min(max_def).max(0.0) as i64;
        if gap <= 0 {
            break;
        }

        // Choose the grid to move: the largest one not exceeding ~the gap,
        // else consider splitting the smallest one that is too large.
        let mut best: Option<(PatchId, i64)> = None; // fits under cap
        let mut smallest: Option<(PatchId, i64)> = None;
        for &id in &owned[over] {
            let c = hier.patch(id).cells();
            if c as f64 <= gap as f64 * 1.25
                && best.is_none_or(|(_, bc)| c > bc) {
                    best = Some((id, c));
                }
            if smallest.is_none_or(|(_, sc)| c < sc) {
                smallest = Some((id, c));
            }
        }

        let move_id = match (best, smallest) {
            (Some((id, _)), _) => Some(id),
            (None, Some((id, c))) => {
                // Every grid overshoots the gap. Split if worthwhile,
                // otherwise move the smallest whole grid only if that still
                // improves balance.
                if params.allow_split
                    && c >= params.min_split_cells * 2
                    && gap >= params.min_split_cells
                {
                    let (a, _b) = hier.split_patch(id, gap, axis_of(hier, id));
                    out.splits += 1;
                    Some(a)
                } else if (c as f64) < 2.0 * gap as f64 {
                    Some(id)
                } else {
                    None
                }
            }
            (None, None) => None,
        };

        let Some(id) = move_id else { break };
        let cells = hier.patch(id).cells();
        let bytes = hier.patch(id).payload_bytes();
        let src = ProcId(hier.patch(id).owner);
        let dst = procs[under];
        // Ship the grid before committing ownership; a failed transfer
        // leaves it with its current owner. The pass stops there — the
        // same move would be picked again and fail again.
        if sim.send(src, dst, bytes, Activity::LoadBalance).is_err() {
            out.failed_moves += 1;
            break;
        }
        hier.set_owner(id, dst.0);
        out.moves += 1;
        out.moved_cells += cells;
        out.moved_bytes += bytes;
    }
    out
}

/// Pick the split axis for a patch: its longest extent, so slabs stay chunky.
fn axis_of(hier: &GridHierarchy, id: PatchId) -> usize {
    hier.patch(id).region.size().longest_axis()
}

/// Greedy weighted placement for a batch of new grids: processing sizes in
/// descending order, each grid goes to the processor with the lowest
/// load-per-weight. `loads` are pre-existing loads (cells) parallel to
/// `weights`; returns the chosen processor *indices within the set*, in the
/// input order of `sizes`.
pub fn place_batch(loads: &[i64], weights: &[f64], sizes: &[i64]) -> Vec<usize> {
    assert_eq!(loads.len(), weights.len());
    assert!(!loads.is_empty());
    let mut cur: Vec<f64> = loads.iter().map(|&l| l as f64).collect();
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(sizes[i]));
    let mut out = vec![0usize; sizes.len()];
    for i in order {
        let mut best = 0usize;
        let mut best_norm = f64::MAX;
        for (j, (&l, &w)) in cur.iter().zip(weights).enumerate() {
            let norm = (l + sizes[i] as f64) / w;
            if norm < best_norm {
                best_norm = norm;
                best = j;
            }
        }
        out[i] = best;
        cur[best] += sizes[i] as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_mesh::region::Region;
    use samr_mesh::{ivec3, region};
    use topology::link::Link;
    use topology::{SimTime, SystemBuilder};

    fn sim4() -> SimView {
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
        let sys = SystemBuilder::new().group("A", 4, 1.0, intra).build();
        SimView::new(sys)
    }

    /// A hierarchy with `n` equal 8^3 level-0 grids all owned by proc 0.
    fn lopsided(n: i64) -> GridHierarchy {
        let mut h = GridHierarchy::new(
            region(ivec3(0, 0, 0), ivec3(8 * n, 8, 8)),
            2,
            3,
            1,
            1,
        );
        for i in 0..n {
            h.insert_patch(
                0,
                region(ivec3(8 * i, 0, 0), ivec3(8 * (i + 1), 8, 8)),
                None,
                0,
            );
        }
        h
    }

    #[test]
    fn evens_out_equal_grids() {
        let mut h = lopsided(8);
        let mut sim = sim4();
        let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
        let out = balance_level_within(
            &mut h,
            &mut sim,
            0,
            &procs,
            &[1.0; 4],
            &BalanceParams::default(),
        );
        let loads = h.level_load_by_owner(0, 4);
        assert_eq!(loads, vec![1024, 1024, 1024, 1024], "{out:?}");
        assert!(out.moves >= 6);
        assert_eq!(out.moved_cells, 512 * 6);
        // migration traffic was charged
        assert!(sim.stats().procs[0].load_balance > SimTime::ZERO);
    }

    #[test]
    fn respects_weights() {
        let mut h = lopsided(8);
        let mut sim = sim4();
        let procs: Vec<ProcId> = (0..2).map(ProcId).collect();
        balance_level_within(
            &mut h,
            &mut sim,
            0,
            &procs,
            &[1.0, 3.0],
            &BalanceParams::default(),
        );
        let loads = h.level_load_by_owner(0, 4);
        assert_eq!(loads[0], 1024); // 1/4 of 4096
        assert_eq!(loads[1], 3072); // 3/4
    }

    #[test]
    fn splits_single_giant_grid() {
        let mut h = GridHierarchy::new(Region::cube(16), 2, 3, 1, 1);
        h.insert_patch(0, Region::cube(16), None, 0);
        let mut sim = sim4();
        let procs: Vec<ProcId> = (0..2).map(ProcId).collect();
        let out = balance_level_within(
            &mut h,
            &mut sim,
            0,
            &procs,
            &[1.0, 1.0],
            &BalanceParams::default(),
        );
        assert!(out.splits >= 1);
        let loads = h.level_load_by_owner(0, 4);
        assert_eq!(loads[0] + loads[1], 4096);
        let ratio = loads[0].max(loads[1]) as f64 / loads[0].min(loads[1]) as f64;
        assert!(ratio < 1.1, "loads {loads:?}");
        assert!(h.check_invariants().is_ok());
    }

    #[test]
    fn no_split_when_disallowed() {
        let mut h = GridHierarchy::new(Region::cube(16), 2, 3, 1, 1);
        h.insert_patch(0, Region::cube(16), None, 0);
        let mut sim = sim4();
        let procs: Vec<ProcId> = (0..2).map(ProcId).collect();
        let params = BalanceParams {
            allow_split: false,
            ..Default::default()
        };
        let out = balance_level_within(&mut h, &mut sim, 0, &procs, &[1.0, 1.0], &params);
        assert_eq!(out.splits, 0);
        assert_eq!(out.moves, 0, "moving the only grid helps nothing");
    }

    #[test]
    fn leaves_outside_owners_alone() {
        let mut h = lopsided(4);
        // give one grid to proc 3 (outside the balanced set)
        let id = h.level_ids(0)[3];
        h.set_owner(id, 3);
        let mut sim = sim4();
        let procs: Vec<ProcId> = (0..2).map(ProcId).collect();
        balance_level_within(
            &mut h,
            &mut sim,
            0,
            &procs,
            &[1.0, 1.0],
            &BalanceParams::default(),
        );
        let loads = h.level_load_by_owner(0, 4);
        assert_eq!(loads[3], 512, "outsider untouched");
        assert_eq!(loads[0], loads[1]);
    }

    #[test]
    fn already_balanced_is_noop() {
        let mut h = lopsided(4);
        for (i, &id) in h.level_ids(0).to_vec().iter().enumerate() {
            h.set_owner(id, i);
        }
        let mut sim = sim4();
        let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
        let out = balance_level_within(
            &mut h,
            &mut sim,
            0,
            &procs,
            &[1.0; 4],
            &BalanceParams::default(),
        );
        assert_eq!(out, BalanceOutcome::default());
        assert_eq!(sim.elapsed(), SimTime::ZERO);
    }

    #[test]
    fn single_proc_noop() {
        let mut h = lopsided(4);
        let mut sim = sim4();
        let out = balance_level_within(
            &mut h,
            &mut sim,
            0,
            &[ProcId(0)],
            &[1.0],
            &BalanceParams::default(),
        );
        assert_eq!(out, BalanceOutcome::default());
    }

    #[test]
    fn failed_transfer_leaves_owner_and_counts() {
        use topology::faults::{FaultKind, FaultSchedule};
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9).with_faults(
            FaultSchedule::none().with_window(
                SimTime::ZERO,
                SimTime::from_secs(3600),
                FaultKind::Outage,
            ),
        );
        let sys = SystemBuilder::new().group("A", 4, 1.0, intra).build();
        let mut sim = SimView::new(sys);
        let mut h = lopsided(8);
        let out = balance_level_within(
            &mut h,
            &mut sim,
            0,
            &(0..4).map(ProcId).collect::<Vec<_>>(),
            &[1.0; 4],
            &BalanceParams::default(),
        );
        assert_eq!(out.moves, 0);
        assert_eq!(out.failed_moves, 1, "gave up after the first failure");
        let loads = h.level_load_by_owner(0, 4);
        assert_eq!(loads[0], 4096, "nothing moved: {loads:?}");
        assert!(h.check_invariants().is_ok());
    }

    #[test]
    fn place_batch_greedy_lpt() {
        // sizes 8,7,6,5 onto 2 equal procs -> {8,5} and {7,6}
        let owners = place_batch(&[0, 0], &[1.0, 1.0], &[8, 7, 6, 5]);
        let mut loads = [0i64; 2];
        for (i, &o) in owners.iter().enumerate() {
            loads[o] += [8, 7, 6, 5][i];
        }
        assert_eq!(loads[0], loads[1]);
    }

    #[test]
    fn place_batch_respects_existing_load_and_weights() {
        // proc0 pre-loaded; new work goes to proc1
        let owners = place_batch(&[100, 0], &[1.0, 1.0], &[10, 10]);
        assert_eq!(owners, vec![1, 1]);
        // heavier-weight proc absorbs more
        let owners = place_batch(&[0, 0], &[1.0, 9.0], &[10, 10, 10]);
        assert!(owners.iter().filter(|&&o| o == 1).count() >= 2);
    }
}
