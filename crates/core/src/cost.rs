//! Redistribution-cost evaluation — §4.2, Eq. (1):
//! `Cost = (α + β·W) + δ`.
//!
//! The communication term uses α and β measured on-line by the two-message
//! probe ([`topology::probe`]); the computational term `δ` is the recorded
//! overhead of the previous redistribution (history information).

use crate::history::WorkloadHistory;

/// Result of evaluating Eq. (1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostEstimate {
    /// Communication part: `α + β·W` seconds.
    pub comm_secs: f64,
    /// Computational part `δ`: repartition + rebuild + boundary update,
    /// taken from the previous redistribution.
    pub delta_secs: f64,
}

impl CostEstimate {
    /// Total redistribution cost in seconds.
    pub fn total_secs(&self) -> f64 {
        self.comm_secs + self.delta_secs
    }
}

/// Evaluate Eq. (1) for moving `move_bytes` across a link with probed
/// parameters `alpha` (s) and `beta` (s/byte).
pub fn evaluate_cost(
    alpha: f64,
    beta: f64,
    move_bytes: u64,
    history: &WorkloadHistory,
) -> CostEstimate {
    assert!(alpha >= 0.0 && beta >= 0.0);
    CostEstimate {
        comm_secs: alpha + beta * move_bytes as f64,
        delta_secs: history.delta(),
    }
}

/// The γ-gate of §4.4: redistribution is invoked only when
/// `Gain > γ · Cost`. `gamma`'s paper default is 2.0.
pub fn should_redistribute(gain_secs: f64, cost: &CostEstimate, gamma: f64) -> bool {
    gain_secs > gamma * cost.total_secs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::WorkloadHistory;

    #[test]
    fn eq1_sum_of_terms() {
        let mut h = WorkloadHistory::new(1);
        h.record_redistribution_overhead(0.25);
        let c = evaluate_cost(0.01, 1e-7, 10_000_000, &h);
        assert!((c.comm_secs - (0.01 + 1.0)).abs() < 1e-12);
        assert_eq!(c.delta_secs, 0.25);
        assert!((c.total_secs() - 1.26).abs() < 1e-12);
    }

    #[test]
    fn zero_bytes_costs_latency_plus_delta() {
        let h = WorkloadHistory::new(1);
        let c = evaluate_cost(0.005, 1e-7, 0, &h);
        assert_eq!(c.comm_secs, 0.005);
        assert_eq!(c.total_secs(), 0.005);
    }

    #[test]
    fn gamma_gate_default() {
        let h = WorkloadHistory::new(1);
        let c = evaluate_cost(0.0, 1e-6, 1_000_000, &h); // 1 s
        assert!(should_redistribute(2.5, &c, 2.0));
        assert!(!should_redistribute(2.0, &c, 2.0)); // strict inequality
        assert!(!should_redistribute(1.0, &c, 2.0));
        // gamma = 0 accepts any positive gain
        assert!(should_redistribute(0.001, &c, 0.0));
    }

    #[test]
    fn congestion_raises_cost_and_blocks() {
        let h = WorkloadHistory::new(1);
        let quiet = evaluate_cost(0.005, 5.16e-8, 50_000_000, &h); // ~2.6 s
        let congested = evaluate_cost(0.005, 5.16e-7, 50_000_000, &h); // ~25.8 s
        let gain = 10.0;
        assert!(should_redistribute(gain, &quiet, 2.0));
        assert!(!should_redistribute(gain, &congested, 2.0));
    }
}
