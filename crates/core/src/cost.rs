//! Redistribution-cost evaluation — §4.2, Eq. (1):
//! `Cost = (α + β·W) + δ`.
//!
//! The communication term uses α and β measured on-line by the two-message
//! probe ([`topology::probe`]); the computational term `δ` is the recorded
//! overhead of the previous redistribution (history information).
//!
//! When α/β come from a *forecast* rather than a raw probe, the estimate
//! also carries a pessimistic upper bound widened by the forecast error
//! ([`evaluate_cost_forecast`]), and the γ-gate can demand
//! `Gain > γ · Cost_upper` so an unstable link must clear a higher bar.

use crate::history::WorkloadHistory;
use forecast::ForecastValue;

/// Result of evaluating Eq. (1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostEstimate {
    /// Communication part: `α + β·W` seconds (point forecast).
    pub comm_secs: f64,
    /// Pessimistic communication bound: α/β widened by their forecast error
    /// bars. Equals `comm_secs` for reactive (probe-direct) estimates.
    pub comm_upper_secs: f64,
    /// Computational part `δ`: repartition + rebuild + boundary update,
    /// taken from the previous redistribution.
    pub delta_secs: f64,
}

impl CostEstimate {
    /// Total redistribution cost in seconds (point estimate).
    pub fn total_secs(&self) -> f64 {
        self.comm_secs + self.delta_secs
    }

    /// Pessimistic total: communication upper bound plus δ.
    pub fn upper_total_secs(&self) -> f64 {
        self.comm_upper_secs + self.delta_secs
    }
}

/// Evaluate Eq. (1) for moving `move_bytes` across a link with probed
/// parameters `alpha` (s) and `beta` (s/byte). The upper bound collapses
/// onto the point estimate: a raw probe carries no error bar.
pub fn evaluate_cost(
    alpha: f64,
    beta: f64,
    move_bytes: u64,
    history: &WorkloadHistory,
) -> CostEstimate {
    assert!(alpha >= 0.0 && beta >= 0.0);
    let comm_secs = alpha + beta * move_bytes as f64;
    CostEstimate {
        comm_secs,
        comm_upper_secs: comm_secs,
        delta_secs: history.delta(),
    }
}

/// Evaluate Eq. (1) from forecasted α/β with error bars.
///
/// The point estimate uses the forecast values; the upper bound widens each
/// parameter by `widen` times its error bar (the series MAE) before pricing
/// the move, so `widen = 1` charges one mean-absolute-error of pessimism
/// and `widen = 0` reproduces [`evaluate_cost`] on the forecast values.
pub fn evaluate_cost_forecast(
    alpha: ForecastValue,
    beta: ForecastValue,
    move_bytes: u64,
    history: &WorkloadHistory,
    widen: f64,
) -> CostEstimate {
    assert!(alpha.value >= 0.0 && beta.value >= 0.0 && widen >= 0.0);
    let bytes = move_bytes as f64;
    let comm_secs = alpha.value + beta.value * bytes;
    let comm_upper_secs =
        (alpha.value + widen * alpha.error) + (beta.value + widen * beta.error) * bytes;
    CostEstimate {
        comm_secs,
        comm_upper_secs,
        delta_secs: history.delta(),
    }
}

/// The γ-gate of §4.4: redistribution is invoked only when
/// `Gain > γ · Cost`. `gamma`'s paper default is 2.0.
pub fn should_redistribute(gain_secs: f64, cost: &CostEstimate, gamma: f64) -> bool {
    gain_secs > gamma * cost.total_secs()
}

/// Confidence-aware γ-gate: the gain must beat γ times the *pessimistic*
/// cost. Identical to [`should_redistribute`] for reactive estimates
/// (where the upper bound equals the point estimate); under high forecast
/// error the bar rises with the error bars.
pub fn should_redistribute_confident(gain_secs: f64, cost: &CostEstimate, gamma: f64) -> bool {
    gain_secs > gamma * cost.upper_total_secs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::WorkloadHistory;

    #[test]
    fn eq1_sum_of_terms() {
        let mut h = WorkloadHistory::new(1);
        h.record_redistribution_overhead(0.25);
        let c = evaluate_cost(0.01, 1e-7, 10_000_000, &h);
        assert!((c.comm_secs - (0.01 + 1.0)).abs() < 1e-12);
        assert_eq!(c.delta_secs, 0.25);
        assert!((c.total_secs() - 1.26).abs() < 1e-12);
    }

    #[test]
    fn zero_bytes_costs_latency_plus_delta() {
        let h = WorkloadHistory::new(1);
        let c = evaluate_cost(0.005, 1e-7, 0, &h);
        assert_eq!(c.comm_secs, 0.005);
        assert_eq!(c.total_secs(), 0.005);
    }

    #[test]
    fn gamma_gate_default() {
        let h = WorkloadHistory::new(1);
        let c = evaluate_cost(0.0, 1e-6, 1_000_000, &h); // 1 s
        assert!(should_redistribute(2.5, &c, 2.0));
        assert!(!should_redistribute(2.0, &c, 2.0)); // strict inequality
        assert!(!should_redistribute(1.0, &c, 2.0));
        // gamma = 0 accepts any positive gain
        assert!(should_redistribute(0.001, &c, 0.0));
    }

    #[test]
    fn forecast_cost_widens_the_upper_bound() {
        let mut h = WorkloadHistory::new(1);
        h.record_redistribution_overhead(0.1);
        let alpha = ForecastValue { value: 0.01, error: 0.005 };
        let beta = ForecastValue { value: 1e-7, error: 5e-8 };
        let c = evaluate_cost_forecast(alpha, beta, 10_000_000, &h, 1.0);
        assert!((c.comm_secs - (0.01 + 1.0)).abs() < 1e-12);
        assert!((c.comm_upper_secs - (0.015 + 1.5)).abs() < 1e-12);
        assert!(c.upper_total_secs() > c.total_secs());
        // widen = 0 collapses onto the point estimate
        let c0 = evaluate_cost_forecast(alpha, beta, 10_000_000, &h, 0.0);
        assert_eq!(c0.comm_upper_secs, c0.comm_secs);
        // exact forecasts (reactive) keep both gates equivalent
        let exact = evaluate_cost_forecast(
            ForecastValue::exact(0.01),
            ForecastValue::exact(1e-7),
            10_000_000,
            &h,
            1.0,
        );
        assert_eq!(exact.comm_upper_secs, exact.comm_secs);
    }

    #[test]
    fn confident_gate_demands_more_under_forecast_error() {
        let h = WorkloadHistory::new(1);
        let alpha = ForecastValue::exact(0.0);
        let beta = ForecastValue { value: 1e-6, error: 1e-6 };
        let c = evaluate_cost_forecast(alpha, beta, 1_000_000, &h, 1.0);
        // point cost 1 s, upper 2 s: a gain of 3 s passes the plain gate
        // but not the confident one at γ = 2
        assert!(should_redistribute(3.0, &c, 2.0));
        assert!(!should_redistribute_confident(3.0, &c, 2.0));
        assert!(should_redistribute_confident(4.5, &c, 2.0));
    }

    #[test]
    fn congestion_raises_cost_and_blocks() {
        let h = WorkloadHistory::new(1);
        let quiet = evaluate_cost(0.005, 5.16e-8, 50_000_000, &h); // ~2.6 s
        let congested = evaluate_cost(0.005, 5.16e-7, 50_000_000, &h); // ~25.8 s
        let gain = 10.0;
        assert!(should_redistribute(gain, &quiet, 2.0));
        assert!(!should_redistribute(gain, &congested, 2.0));
    }
}
