//! # dlb — dynamic load balancing for SAMR on distributed systems
//!
//! The paper's primary contribution (Lan, Taylor, Bryan — SC'01):
//!
//! * [`DistributedDlb`] — the proposed two-phase scheme: a **global phase**
//!   after each level-0 step gated by the Eq.-4 gain vs. Eq.-1 cost
//!   heuristic (`Gain > γ·Cost`), moving level-0 grids between groups
//!   proportionally to compute power; and a **local phase** after every
//!   finer-level step, balancing strictly within each group so children stay
//!   with their parents.
//! * [`ParallelDlb`] — the ICPP'01 baseline: group-blind even distribution
//!   across all processors after every step.
//! * [`gain`]/[`cost`] — the decision heuristics exactly as published.
//! * [`balance`]/[`partition`] — the grid-motion machinery both schemes use.
//! * [`fault`] — the retry / timeout / quarantine degradation policy that
//!   keeps the distributed scheme making progress over failing WAN links.

// Fixed-axis (0..3) loops indexing several parallel arrays read more
// clearly as index loops.
#![allow(clippy::needless_range_loop)]

pub mod balance;
pub mod cost;
pub mod distributed;
pub mod fault;
pub mod gain;
pub mod history;
pub mod parallel;
pub mod partition;
pub mod scheme;

pub use balance::{balance_level_within, place_batch, BalanceOutcome, BalanceParams};
pub use cost::{
    evaluate_cost, evaluate_cost_forecast, should_redistribute, should_redistribute_confident,
    CostEstimate,
};
pub use distributed::{DistributedDlb, DistributedDlbConfig, ForecastSummary, GlobalDecision};
pub use fault::{
    FaultEvent, FaultStats, FaultTolerancePolicy, GroupHealth, ProcHealth, ProcTransitions,
    QuarantineRoster,
};
pub use forecast::{ForecastValue, PredictorKind};
pub use gain::{
    evaluate_gain, evaluate_gain_among, evaluate_gain_among_with_powers, evaluate_gain_forecast,
    evaluate_gain_forecast_with_powers, gain_from_loads, static_powers, GainEstimate,
};
pub use history::WorkloadHistory;
pub use parallel::ParallelDlb;
pub use partition::{
    decompose_domain, evacuate_proc, global_redistribute, global_redistribute_elastic,
    global_redistribute_guarded, global_redistribute_with, EvacuationMove, EvacuationReport,
    RedistributionAbort, RedistributionReport, SelectionPolicy,
};
pub use scheme::{proc_total_cells, LbContext, LoadBalancer};
