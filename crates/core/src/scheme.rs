//! The load-balancer interface the SAMR driver invokes, matching the two
//! hook points of the paper's flowchart (Fig. 4): *after each level step*
//! (balance) and *at regrid* (placement of newly created grids).

use crate::history::WorkloadHistory;
use samr_mesh::hierarchy::GridHierarchy;
use simnet::{SimResult, SimView};
use topology::DistributedSystem;

/// Mutable state handed to a balancer after a level step. The simulator is
/// a [`SimView`] so the same scheme code runs both exclusively (one run,
/// one simulator) and as a tenant of a shared substrate.
pub struct LbContext<'a> {
    pub hier: &'a mut GridHierarchy,
    pub sim: &'a mut SimView,
    pub history: &'a mut WorkloadHistory,
}

/// A dynamic load-balancing scheme.
pub trait LoadBalancer {
    /// Scheme name for reports ("parallel DLB", "distributed DLB").
    fn name(&self) -> &'static str;

    /// Invoked after each completed timestep at `level` (level 0 included).
    /// This is where grids migrate. Communication and migration costs must
    /// be charged to `ctx.sim`.
    ///
    /// Returns `Err` only when the scheme could not leave the hierarchy in
    /// a consistent state (a fault-tolerant scheme absorbs link failures
    /// itself — degrading, retrying, or rolling back — and still returns
    /// `Ok`).
    fn after_level_step(&mut self, ctx: LbContext<'_>, level: usize) -> SimResult<()>;

    /// Choose owners for a batch of grids about to be created at `level`
    /// during regridding. `parents[i]` is the owner of grid `i`'s parent and
    /// `sizes[i]` its cell count. Returns one owner per grid.
    ///
    /// The driver charges the prolongation traffic (parent → chosen owner)
    /// afterwards, so placements that scatter children away from their
    /// parents pay for it — across the WAN if need be.
    fn place_new_patches(
        &mut self,
        hier: &GridHierarchy,
        sys: &DistributedSystem,
        level: usize,
        parents: &[usize],
        sizes: &[i64],
    ) -> Vec<usize>;
}

/// Current total cells owned by each processor across all levels — the load
/// baseline used when placing freshly created grids.
pub fn proc_total_cells(hier: &GridHierarchy, nprocs: usize) -> Vec<i64> {
    let mut v = vec![0i64; nprocs];
    for p in hier.iter() {
        v[p.owner] += p.cells();
    }
    v
}
