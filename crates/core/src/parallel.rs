//! The **parallel DLB scheme** — the baseline the paper compares against
//! (Lan, Taylor, Bryan, ICPP'01; summarized in §2.3).
//!
//! Designed for homogeneous parallel machines: after every level step it
//! evenly and equally redistributes the level's grids across **all**
//! processors, and it places newly created grids on the globally
//! least-loaded processor. It is oblivious to groups, to processor weights,
//! and to network heterogeneity or load — which is precisely why it performs
//! poorly on distributed systems (Fig. 3): children land in other groups
//! than their parents, so parent↔child and sibling traffic crosses the slow
//! shared WAN, and its load-information exchange synchronizes over the WAN
//! at every fine step.

use crate::balance::{balance_level_within, place_batch, BalanceOutcome, BalanceParams};
use crate::scheme::{proc_total_cells, LbContext, LoadBalancer};
use samr_mesh::hierarchy::GridHierarchy;
use simnet::Activity;
use topology::{DistributedSystem, ProcId};

/// Size in bytes of the per-processor load record exchanged before each
/// balancing decision.
pub const LOAD_MSG_BYTES: u64 = 64;

/// The group-blind, weight-blind baseline scheme.
#[derive(Clone, Debug)]
pub struct ParallelDlb {
    params: BalanceParams,
    /// Cumulative outcome, for reports.
    pub total: BalanceOutcome,
}

impl ParallelDlb {
    pub fn new(params: BalanceParams) -> Self {
        ParallelDlb {
            params,
            total: BalanceOutcome::default(),
        }
    }
}

impl Default for ParallelDlb {
    fn default() -> Self {
        Self::new(BalanceParams::default())
    }
}

impl LoadBalancer for ParallelDlb {
    fn name(&self) -> &'static str {
        "parallel DLB"
    }

    fn after_level_step(&mut self, ctx: LbContext<'_>, level: usize) -> simnet::SimResult<()> {
        let sys = ctx.sim.system().clone();
        let nprocs = sys.nprocs();
        if nprocs < 2 {
            return Ok(());
        }
        // Load-information exchange involves every processor — over the WAN
        // on a distributed system, at every level step. The baseline has no
        // degraded mode: a failed collective fails the step.
        ctx.sim.allreduce_all(LOAD_MSG_BYTES, Activity::LoadBalance)?;
        let procs: Vec<ProcId> = (0..nprocs).map(ProcId).collect();
        // "evenly and equally distributed among the processors": uniform
        // weights regardless of actual processor performance.
        let weights = vec![1.0; nprocs];
        let out = balance_level_within(ctx.hier, ctx.sim, level, &procs, &weights, &self.params);
        self.total.moves += out.moves;
        self.total.splits += out.splits;
        self.total.moved_cells += out.moved_cells;
        self.total.moved_bytes += out.moved_bytes;
        self.total.failed_moves += out.failed_moves;
        Ok(())
    }

    fn place_new_patches(
        &mut self,
        hier: &GridHierarchy,
        sys: &DistributedSystem,
        _level: usize,
        _parents: &[usize],
        sizes: &[i64],
    ) -> Vec<usize> {
        // Globally least-loaded placement, parent location ignored.
        let loads = proc_total_cells(hier, sys.nprocs());
        let weights = vec![1.0; sys.nprocs()];
        place_batch(&loads, &weights, sizes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::WorkloadHistory;
    use samr_mesh::{ivec3, region};
    use simnet::SimView;
    use topology::link::Link;
    use topology::{SimTime, SystemBuilder};

    fn wan_sys(na: usize, nb: usize) -> DistributedSystem {
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
        let wan = Link::dedicated("wan", SimTime::from_millis(10), 1e7);
        SystemBuilder::new()
            .group("A", na, 1.0, intra.clone())
            .group("B", nb, 1.0, intra)
            .connect(0, 1, wan)
            .build()
    }

    fn hier_with_grids(n: i64, owner: usize) -> GridHierarchy {
        let mut h = GridHierarchy::new(region(ivec3(0, 0, 0), ivec3(8 * n, 8, 8)), 2, 3, 1, 1);
        for i in 0..n {
            h.insert_patch(
                0,
                region(ivec3(8 * i, 0, 0), ivec3(8 * (i + 1), 8, 8)),
                None,
                owner,
            );
        }
        h
    }

    #[test]
    fn balances_across_groups_blindly() {
        let sys = wan_sys(2, 2);
        let mut sim = SimView::new(sys);
        let mut hier = hier_with_grids(8, 0);
        let mut history = WorkloadHistory::new(4);
        let mut dlb = ParallelDlb::default();
        dlb.after_level_step(
            LbContext {
                hier: &mut hier,
                sim: &mut sim,
                history: &mut history,
            },
            0,
        )
        .unwrap();
        let loads = hier.level_load_by_owner(0, 4);
        assert_eq!(loads, vec![1024; 4]);
        // crossing the WAN for migrations + allreduce: remote messages happened
        assert!(sim.stats().msgs.remote_msgs > 0);
        assert!(dlb.total.moves >= 6);
    }

    #[test]
    fn placement_ignores_parent_group() {
        let sys = wan_sys(2, 2);
        // all current load on group A's procs
        let hier = hier_with_grids(4, 0);
        let mut dlb = ParallelDlb::default();
        // new children whose parents are all on proc 0 (group A)
        let owners = dlb.place_new_patches(&hier, &sys, 1, &[0, 0, 0, 0], &[100, 100, 100, 100]);
        // least-loaded placement sends them to procs 1..3, including group B
        assert!(owners.iter().any(|&o| o >= 2), "owners {owners:?}");
        assert!(owners.iter().all(|&o| o != 0));
    }

    #[test]
    fn single_proc_is_noop() {
        let intra = Link::dedicated("intra", SimTime::ZERO, 1e9);
        let sys = SystemBuilder::new().group("A", 1, 1.0, intra).build();
        let mut sim = SimView::new(sys);
        let mut hier = hier_with_grids(2, 0);
        let mut history = WorkloadHistory::new(1);
        let mut dlb = ParallelDlb::default();
        dlb.after_level_step(
            LbContext {
                hier: &mut hier,
                sim: &mut sim,
                history: &mut history,
            },
            0,
        )
        .unwrap();
        assert_eq!(sim.elapsed(), SimTime::ZERO);
        assert_eq!(dlb.total.moves, 0);
    }

    #[test]
    fn ignores_weights_by_design() {
        // heterogeneous system: proc 1 is 3x faster, but parallel DLB
        // still splits work evenly
        let intra = Link::dedicated("intra", SimTime::from_micros(5), 1e9);
        let sys = SystemBuilder::new()
            .group("A", 1, 1.0, intra.clone())
            .group("B", 1, 3.0, intra)
            .connect(0, 1, Link::dedicated("wan", SimTime::from_millis(1), 1e8))
            .build();
        let mut sim = SimView::new(sys);
        let mut hier = hier_with_grids(8, 0);
        let mut history = WorkloadHistory::new(2);
        let mut dlb = ParallelDlb::default();
        dlb.after_level_step(
            LbContext {
                hier: &mut hier,
                sim: &mut sim,
                history: &mut history,
            },
            0,
        )
        .unwrap();
        let loads = hier.level_load_by_owner(0, 2);
        assert_eq!(loads[0], loads[1], "even split despite weights");
    }
}
