//! Global (inter-group) redistribution of level-0 grids — §4.4 and Fig. 6 —
//! plus the initial weighted domain decomposition.

use crate::balance::BalanceParams;
use samr_mesh::hierarchy::GridHierarchy;
use samr_mesh::patch::PatchId;
use samr_mesh::region::Region;
use simnet::{Activity, SimError, SimView};
use topology::{DistributedSystem, GroupId, ProcId, SimTime};

/// How donor level-0 grids are selected for global redistribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// Select/split by iteration-weighted **subtree workload** — the work
    /// that actually follows a grid between groups. Stable (default).
    #[default]
    SubtreeWorkload,
    /// Select by level-0 **cell count** (the naive literal reading of
    /// Fig. 6). Kept as an ablation: on refinement-concentrated workloads it
    /// moves workload-free grids and oscillates.
    Cells,
}

/// What a global redistribution did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RedistributionReport {
    /// Level-0 cells moved between groups.
    pub moved_cells: i64,
    /// Bytes shipped across inter-group links.
    pub moved_bytes: u64,
    /// Number of grid migrations.
    pub moves: usize,
    /// Number of grid splits performed to hit the transfer amount.
    pub splits: usize,
    /// Net level-0 cell flow out of (+) or into (−) each group.
    pub group_flow: Vec<i64>,
}

/// A global redistribution that died mid-flight: the migration transfer
/// between `src_group` and `dst_group` failed with `error` after the moves
/// in `partial` had already been issued. The hierarchy has been partially
/// mutated (owners changed, possibly grids split) — the caller is expected
/// to roll it back from a pre-redistribution snapshot.
#[derive(Clone, Debug)]
pub struct RedistributionAbort {
    /// The communication failure that killed the redistribution.
    pub error: SimError,
    /// Donor group of the failed transfer.
    pub src_group: usize,
    /// Receiving group of the failed transfer.
    pub dst_group: usize,
    /// What had been done before the failure (failed move excluded).
    pub partial: RedistributionReport,
}

/// Move level-0 grids from overloaded to underloaded groups so that each
/// group's iteration-weighted workload approaches its compute-power share
/// `n_g·p_g / Σ n·p` (§4.4).
///
/// Only level-0 grids move; finer grids stay put and are rebuilt beneath
/// their (possibly relocated) parents at the next regrid — exactly the
/// paper's policy. For two homogeneous groups the moved amount reduces to
/// Fig. 6's `(W_A − W_B)/(2·W_A) · W⁰_A`.
pub fn global_redistribute(
    hier: &mut GridHierarchy,
    sim: &mut SimView,
    group_loads: &[f64],
    params: &BalanceParams,
) -> RedistributionReport {
    global_redistribute_with(
        hier,
        sim,
        group_loads,
        params,
        SelectionPolicy::SubtreeWorkload,
    )
}

/// [`global_redistribute`] with an explicit donor-selection policy.
///
/// Infallible legacy entry point: every group is eligible, transfers have
/// no deadline, and a mid-flight failure simply truncates the result to the
/// moves that completed (adequate on fault-free links, where failures
/// cannot occur; fault-aware callers use
/// [`global_redistribute_guarded`]).
pub fn global_redistribute_with(
    hier: &mut GridHierarchy,
    sim: &mut SimView,
    group_loads: &[f64],
    params: &BalanceParams,
    policy: SelectionPolicy,
) -> RedistributionReport {
    let eligible = vec![true; sim.system().ngroups()];
    match global_redistribute_guarded(hier, sim, group_loads, &eligible, params, policy, None) {
        Ok(rep) => rep,
        Err(abort) => abort.partial,
    }
}

/// Fault-aware [`global_redistribute_with`]: only groups with
/// `eligible[g] == true` donate or receive (quarantined groups keep their
/// grids), every migration transfer carries the absolute `deadline`, and a
/// transfer failure aborts the redistribution with a
/// [`RedistributionAbort`] instead of pressing on over a dead link.
///
/// Ownership is only committed after the transfer succeeds, but earlier
/// moves (and any grid splits) remain applied on `Err` — roll back from a
/// [`samr_mesh::checkpoint`] snapshot taken before the call.
pub fn global_redistribute_guarded(
    hier: &mut GridHierarchy,
    sim: &mut SimView,
    group_loads: &[f64],
    eligible: &[bool],
    params: &BalanceParams,
    policy: SelectionPolicy,
    deadline: Option<SimTime>,
) -> Result<RedistributionReport, RedistributionAbort> {
    let powers = crate::gain::static_powers(sim.system());
    let alive = vec![true; sim.system().nprocs()];
    global_redistribute_elastic(
        hier, sim, group_loads, eligible, params, policy, deadline, &powers, &alive,
    )
}

/// Capacity-aware [`global_redistribute_guarded`]: group targets are
/// proportional to the supplied `powers` (per group id — pass the *alive*
/// capacity of a group that lost procs to crash-stop failures), and
/// migration destinations are restricted to procs with `alive[p] == true`.
/// A group whose power is zero but which still holds load becomes a pure
/// donor; a group with no alive procs can never receive.
#[allow(clippy::too_many_arguments)]
pub fn global_redistribute_elastic(
    hier: &mut GridHierarchy,
    sim: &mut SimView,
    group_loads: &[f64],
    eligible: &[bool],
    params: &BalanceParams,
    policy: SelectionPolicy,
    deadline: Option<SimTime>,
    powers: &[f64],
    alive: &[bool],
) -> Result<RedistributionReport, RedistributionAbort> {
    let sys = sim.system().clone();
    let ngroups = sys.ngroups();
    assert_eq!(group_loads.len(), ngroups);
    assert_eq!(eligible.len(), ngroups);
    assert_eq!(powers.len(), ngroups);
    assert_eq!(alive.len(), sys.nprocs());
    let mut report = RedistributionReport {
        group_flow: vec![0; ngroups],
        ..Default::default()
    };
    if eligible.iter().filter(|&&e| e).count() < 2 {
        return Ok(report);
    }

    let total_load: f64 = group_loads
        .iter()
        .enumerate()
        .filter(|(g, _)| eligible[*g])
        .map(|(_, &w)| w)
        .sum();
    let total_power: f64 = (0..ngroups)
        .filter(|&g| eligible[g])
        .map(|g| powers[g])
        .sum();
    if total_load <= 0.0 || total_power <= 0.0 {
        return Ok(report);
    }

    // Iteration-weighted *subtree* workload of every level-0 grid: the work
    // that actually follows the grid when it changes groups (its refined
    // descendants are rebuilt beneath it at the next regrid).
    let iter_w: Vec<f64> = (0..hier.num_levels())
        .map(|l| (hier.refine_factor() as f64).powi(l as i32))
        .collect();
    let subtree = subtree_loads(hier, &iter_w);
    // grid weight under the active selection policy
    let grid_weight = |hier: &GridHierarchy, id: PatchId| -> f64 {
        match policy {
            SelectionPolicy::SubtreeWorkload => {
                subtree.get(&id).copied().unwrap_or(0.0) + hier.patch(id).cells() as f64
            }
            SelectionPolicy::Cells => hier.patch(id).cells() as f64,
        }
    };

    // Workload surplus each overloaded group must export, and each
    // underloaded group's deficit (both in iteration-weighted cell units).
    let mut donors: Vec<(usize, f64)> = Vec::new();
    let mut receivers: Vec<(usize, f64)> = Vec::new();
    for g in (0..ngroups).filter(|&g| eligible[g]) {
        let target = total_load * powers[g] / total_power;
        let w = group_loads[g];
        if w > target && w > 0.0 {
            donors.push((g, w - target));
        } else if target > w {
            receivers.push((g, target - w));
        }
    }
    if donors.is_empty() || receivers.is_empty() {
        return Ok(report);
    }

    // Stop once the residual surplus is within a small fraction of the
    // fair share — chasing the last few cells costs more than it gains and
    // risks oscillation between steps.
    let active = eligible.iter().filter(|&&e| e).count();
    let fair_share = total_load / active as f64;
    let stop = (0.04 * fair_share).max(params.min_split_cells as f64);
    let mut moves_left = params.max_moves;
    for (dg, mut remaining) in donors {
        while remaining > stop && moves_left > 0 {
            // Neediest receiver right now.
            let Some(rix) = receivers
                .iter()
                .enumerate()
                .filter(|(_, (_, d))| *d > 0.0)
                .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
                .map(|(i, _)| i)
            else {
                break;
            };
            let rg = receivers[rix].0;

            // Largest-subtree-workload grid of the donor group not
            // overshooting the remaining surplus; else split the heaviest
            // grid by cell fraction. The donor's last level-0 grid may be
            // split but never moved whole (a group must keep owning part of
            // the root domain).
            let candidates = donor_level0_patches(hier, &sys, dg);
            if candidates.is_empty() {
                break;
            }
            let last_one = candidates.len() == 1;
            let mut fit: Option<(PatchId, f64)> = None;
            let mut heaviest: Option<(PatchId, f64)> = None;
            for &(id, _) in &candidates {
                let w = grid_weight(hier, id);
                if w <= 0.0 {
                    continue;
                }
                if !last_one && w <= remaining * 1.05 && fit.is_none_or(|(_, fw)| w > fw) {
                    fit = Some((id, w));
                }
                if heaviest.is_none_or(|(_, hw)| w > hw) {
                    heaviest = Some((id, w));
                }
            }
            // A fit that covers less than half the surplus while a much
            // heavier (splittable) grid exists means the workload is
            // concentrated: split the heavy grid instead of shuffling
            // featherweight ones.
            let prefer_split = match (fit, heaviest) {
                (Some((_, fw)), Some((hid, hw))) => {
                    fw < remaining * 0.5
                        && hw > remaining * 1.05
                        && params.allow_split
                        && hier.patch(hid).cells() >= params.min_split_cells * 2
                }
                _ => false,
            };
            let fit = if prefer_split { None } else { fit };
            let (move_id, moved_load) = match (fit, heaviest) {
                (Some(x), _) => x,
                (None, Some((id, _w))) => {
                    let cells = hier.patch(id).cells();
                    if params.allow_split && cells >= params.min_split_cells * 2 {
                        // cut the grid where the *workload profile* says the
                        // desired amount lies — a cell-fraction cut would miss
                        // when the refined region is concentrated
                        let Some(plan) = best_workload_split(hier, id, remaining, &iter_w)
                        else {
                            break;
                        };
                        let (a, b) = hier.split_patch(id, plan.low_cells, plan.axis);
                        report.splits += 1;
                        let move_half = if plan.move_low { a } else { b };
                        let wm = match policy {
                            SelectionPolicy::SubtreeWorkload => {
                                subtree_load_of(hier, move_half, &iter_w)
                                    + hier.patch(move_half).cells() as f64
                            }
                            SelectionPolicy::Cells => hier.patch(move_half).cells() as f64,
                        };
                        (move_half, wm)
                    } else {
                        break; // nothing movable without overshooting badly
                    }
                }
                (None, None) => break,
            };

            // A move that barely dents the surplus (a childless grid when a
            // heavy subtree is what's imbalanced) is not worth the traffic
            // or the churn; moving it cannot converge either.
            if moved_load < stop.min(remaining * 0.02) {
                break;
            }

            // Destination: least-loaded (level-0 cells per weight) *alive*
            // processor of the receiving group.
            let Some(dst) = least_loaded_proc_among(hier, &sys, rg, alive) else {
                break;
            };
            let src = ProcId(hier.patch(move_id).owner);
            let cells = hier.patch(move_id).cells();
            let bytes = hier.patch(move_id).payload_bytes();
            // Transfer first, commit ownership only once the bytes arrived:
            // a grid must never end up owned by a processor that did not
            // receive it.
            if let Err(error) =
                sim.send_with_deadline(src, dst, bytes, Activity::LoadBalance, deadline)
            {
                return Err(RedistributionAbort {
                    error,
                    src_group: dg,
                    dst_group: rg,
                    partial: report,
                });
            }
            hier.set_owner(move_id, dst.0);

            remaining -= moved_load;
            moves_left -= 1;
            report.moved_cells += cells;
            report.moved_bytes += bytes;
            report.moves += 1;
            report.group_flow[dg] += cells;
            report.group_flow[rg] -= cells;
            receivers[rix].1 -= moved_load;
        }
    }
    Ok(report)
}

/// One patch reassigned away from a crashed processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvacuationMove {
    pub patch: PatchId,
    pub level: usize,
    /// New owner processor.
    pub to: usize,
    pub cells: i64,
    pub bytes: u64,
}

/// What evacuating a crashed processor did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EvacuationReport {
    pub moves: Vec<EvacuationMove>,
    /// Cells (all levels) whose ownership was reassigned.
    pub evacuated_cells: i64,
    /// Bytes shipped from the checkpoint holder to the new owners.
    pub moved_bytes: u64,
    /// Moves that stayed inside the dead proc's group.
    pub intra: usize,
    /// Moves that had to leave the group (no alive proc at home).
    pub inter: usize,
}

impl EvacuationReport {
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Reassign every patch (all levels) owned by crashed processor `dead` to
/// surviving processors: the least-loaded *alive* proc of the dead proc's
/// own group when one exists, otherwise the least-loaded alive proc
/// anywhere (the inter-group escape hatch for a fully-dead group). The
/// patch payload is charged as a migration transfer from the checkpoint
/// holder (the group's first alive proc, else the first alive proc of the
/// system) to each new owner — the dead proc cannot send, so the state is
/// served from the last checkpoint and the *content* is reconstructed by
/// the caller (restore + recompute, charged separately).
///
/// Transfer failures are tolerated: evacuation is forced, so ownership is
/// committed even when the link is degraded (the wasted detection time is
/// still charged by the simulator). Returns an empty report if no proc is
/// alive at all.
pub fn evacuate_proc(
    hier: &mut GridHierarchy,
    sim: &mut SimView,
    dead: ProcId,
    alive: &[bool],
) -> EvacuationReport {
    let sys = sim.system().clone();
    let nprocs = sys.nprocs();
    assert_eq!(alive.len(), nprocs);
    assert!(!alive[dead.0], "evacuating a live proc");
    let mut report = EvacuationReport::default();
    if !alive.iter().any(|&a| a) {
        return report; // total failure: nothing left to evacuate onto
    }
    let home = sys.group_of(dead);

    // placement pressure: cells owned per proc across every level, updated
    // as patches are reassigned so one survivor doesn't absorb everything
    let mut load = vec![0i64; nprocs];
    for l in 0..hier.num_levels() {
        for (p, c) in hier.level_load_by_owner(l, nprocs).iter().enumerate() {
            load[p] += c;
        }
    }

    // the checkpoint holder serving the evacuated state
    let all_procs: Vec<ProcId> = (0..nprocs).map(ProcId).collect();
    let holder = sys
        .procs_in(home)
        .iter()
        .chain(all_procs.iter())
        .copied()
        .find(|p| alive[p.0])
        .expect("some proc is alive");

    let doomed: Vec<(usize, PatchId)> = (0..hier.num_levels())
        .flat_map(|l| {
            hier.level_ids(l)
                .iter()
                .filter(|&&id| hier.patch(id).owner == dead.0)
                .map(move |&id| (l, id))
                .collect::<Vec<_>>()
        })
        .collect();

    for (level, id) in doomed {
        let best_in = |procs: &[ProcId], load: &[i64]| -> Option<ProcId> {
            procs
                .iter()
                .filter(|p| alive[p.0])
                .min_by(|a, b| {
                    let la = load[a.0] as f64 / sys.proc(**a).weight;
                    let lb = load[b.0] as f64 / sys.proc(**b).weight;
                    la.total_cmp(&lb)
                })
                .copied()
        };
        let (dst, intra) = match best_in(sys.procs_in(home), &load) {
            Some(p) => (p, true),
            None => (
                best_in(&all_procs, &load).expect("some proc is alive"),
                false,
            ),
        };
        let cells = hier.patch(id).cells();
        let bytes = hier.patch(id).payload_bytes();
        let _ = sim.send(holder, dst, bytes, Activity::LoadBalance);
        hier.set_owner(id, dst.0);
        load[dst.0] += cells;
        report.moves.push(EvacuationMove {
            patch: id,
            level,
            to: dst.0,
            cells,
            bytes,
        });
        report.evacuated_cells += cells;
        report.moved_bytes += bytes;
        if intra {
            report.intra += 1;
        } else {
            report.inter += 1;
        }
    }
    report
}

/// Level-0 cells owned by processors of group `g`.
pub fn group_level0_cells(hier: &GridHierarchy, sys: &DistributedSystem, g: usize) -> i64 {
    hier.level_ids(0)
        .iter()
        .map(|id| hier.patch(*id))
        .filter(|p| sys.group_of(ProcId(p.owner)).0 == g)
        .map(|p| p.cells())
        .sum()
}



/// A planned workload-aware split of a level-0 grid.
#[derive(Clone, Copy, Debug)]
struct SplitPlan {
    axis: usize,
    /// Cells in the low-side half (passed to `split_patch` as `want`).
    low_cells: i64,
    /// Whether the low-side half is the one to migrate.
    move_low: bool,
}

/// Find the cut (axis + plane) of grid `id` whose one-sided subtree-workload
/// best matches `want`. Projects every descendant's iteration-weighted load
/// onto each axis (uniform within its extent) plus the grid's own cells,
/// then scans all cut planes. Returns `None` for grids too thin to split.
fn best_workload_split(
    hier: &GridHierarchy,
    id: PatchId,
    want: f64,
    iter_weights: &[f64],
) -> Option<SplitPlan> {
    let region = hier.patch(id).region;
    let size = region.size();
    let r = hier.refine_factor();

    // gather descendants of this level-0 grid with their loads, projected
    // onto level-0 coordinates
    let mut desc: Vec<(Region, f64)> = Vec::new();
    for l in 1..hier.num_levels() {
        let w = iter_weights.get(l).copied().unwrap_or(1.0);
        for &cid in hier.level_ids(l) {
            let mut cur = cid;
            while let Some(par) = hier.patch(cur).parent {
                cur = par;
            }
            if cur != id {
                continue;
            }
            let p = hier.patch(cid);
            let mut creg = p.region;
            for _ in 0..l {
                creg = creg.coarsen(r);
            }
            desc.push((creg, p.cells() as f64 * w));
        }
    }

    let mut best: Option<(f64, SplitPlan)> = None; // (abs error, plan)
    for axis in 0..3 {
        let extent = size[axis];
        if extent < 2 {
            continue;
        }
        // per-plane workload profile along this axis
        let own_per_plane = region.cells() as f64 / extent as f64;
        let mut profile = vec![own_per_plane; extent as usize];
        for (creg, load) in &desc {
            let lo = (creg.lo[axis].max(region.lo[axis]) - region.lo[axis]) as usize;
            let hi = (creg.hi[axis].min(region.hi[axis]) - region.lo[axis]).max(0) as usize;
            if hi <= lo {
                continue;
            }
            let per = load / (hi - lo) as f64;
            for v in profile.iter_mut().take(hi).skip(lo) {
                *v += per;
            }
        }
        let total: f64 = profile.iter().sum();
        let mut cum = 0.0;
        for cut in 1..extent {
            cum += profile[(cut - 1) as usize];
            for (side_load, move_low) in [(cum, true), (total - cum, false)] {
                let err = (side_load - want).abs();
                if best.is_none_or(|(be, _)| err < be) {
                    let plane_cells = region.cells() / extent;
                    best = Some((
                        err,
                        SplitPlan {
                            axis,
                            low_cells: cut * plane_cells,
                            move_low,
                        },
                    ));
                }
            }
        }
    }
    best.map(|(_, plan)| plan)
}

/// Iteration-weighted subtree workload (descendants only) of every level-0
/// grid: `Σ_descendants cells · iter_weight(level)`.
pub fn subtree_loads(
    hier: &GridHierarchy,
    iter_weights: &[f64],
) -> std::collections::BTreeMap<PatchId, f64> {
    let mut acc: std::collections::BTreeMap<PatchId, f64> = hier
        .level_ids(0)
        .iter()
        .map(|&id| (id, 0.0))
        .collect();
    // map every patch to its level-0 ancestor
    for l in 1..hier.num_levels() {
        for &id in hier.level_ids(l) {
            let mut cur = id;
            while let Some(par) = hier.patch(cur).parent {
                cur = par;
            }
            let w = iter_weights.get(l).copied().unwrap_or(1.0);
            *acc.entry(cur).or_default() += hier.patch(id).cells() as f64 * w;
        }
    }
    acc
}

/// Subtree workload (descendants only) of one level-0 grid.
pub fn subtree_load_of(hier: &GridHierarchy, root: PatchId, iter_weights: &[f64]) -> f64 {
    let mut total = 0.0;
    for l in 1..hier.num_levels() {
        for &id in hier.level_ids(l) {
            let mut cur = id;
            while let Some(par) = hier.patch(cur).parent {
                cur = par;
            }
            if cur == root {
                let w = iter_weights.get(l).copied().unwrap_or(1.0);
                total += hier.patch(id).cells() as f64 * w;
            }
        }
    }
    total
}

fn donor_level0_patches(
    hier: &GridHierarchy,
    sys: &DistributedSystem,
    g: usize,
) -> Vec<(PatchId, i64)> {
    hier.level_ids(0)
        .iter()
        .map(|&id| (id, hier.patch(id)))
        .filter(|(_, p)| sys.group_of(ProcId(p.owner)).0 == g)
        .map(|(id, p)| (id, p.cells()))
        .collect()
}

fn least_loaded_proc_among(
    hier: &GridHierarchy,
    sys: &DistributedSystem,
    g: usize,
    alive: &[bool],
) -> Option<ProcId> {
    let loads = hier.level_load_by_owner(0, sys.nprocs());
    sys.procs_in(GroupId(g))
        .iter()
        .filter(|p| alive[p.0])
        .min_by(|a, b| {
            let la = loads[a.0] as f64 / sys.proc(**a).weight;
            let lb = loads[b.0] as f64 / sys.proc(**b).weight;
            la.total_cmp(&lb)
        })
        .copied()
}

/// Initial static decomposition: slice `domain` into one slab per processor
/// along its longest axis, slab sizes proportional to `shares`. Returns
/// `(region, share_index)` pairs covering the domain exactly.
pub fn decompose_domain(domain: Region, shares: &[f64]) -> Vec<(Region, usize)> {
    assert!(!shares.is_empty());
    let total: f64 = shares.iter().sum();
    assert!(total > 0.0);
    let axis = domain.size().longest_axis();
    if shares.len() as i64 > domain.size()[axis] {
        // Federation scale: more shares than planes along the longest
        // axis, so single-axis slabbing cannot host them. Recursive
        // weighted bisection instead, re-picking the longest axis at
        // every cut so leaves stay near-cubic.
        let mut out = Vec::with_capacity(shares.len());
        let idx: Vec<usize> = (0..shares.len()).collect();
        bisect_shares(domain, &idx, shares, &mut out);
        return out;
    }
    let mut out = Vec::with_capacity(shares.len());
    let mut rest = domain;
    for (i, &s) in shares.iter().enumerate() {
        if i + 1 == shares.len() {
            if !rest.is_empty() {
                out.push((rest, i));
            }
            break;
        }
        let remaining_share: f64 = shares[i..].iter().sum();
        let want = (rest.cells() as f64 * s / remaining_share).round() as i64;
        let (slab, r) = rest.split_cells(want.max(1), axis);
        if !slab.is_empty() {
            out.push((slab, i));
        }
        rest = r;
        if rest.is_empty() {
            break;
        }
    }
    out
}

/// Recursive weighted bisection of `domain` over the share indices `idx`:
/// split the shares near half their total weight, cut the region
/// proportionally along its current longest axis, recurse. A region too
/// thin to cut (or with fewer cells than shares) goes whole to the heavier
/// half — the shares left out start empty and pick up work from the first
/// balancing pass.
fn bisect_shares(domain: Region, idx: &[usize], shares: &[f64], out: &mut Vec<(Region, usize)>) {
    if domain.is_empty() {
        return;
    }
    if idx.len() == 1 {
        out.push((domain, idx[0]));
        return;
    }
    let total: f64 = idx.iter().map(|&i| shares[i]).sum();
    let mut acc = 0.0;
    let mut k = idx.len() - 1;
    for (j, &i) in idx.iter().enumerate() {
        acc += shares[i];
        if acc >= total / 2.0 {
            k = (j + 1).clamp(1, idx.len() - 1);
            break;
        }
    }
    let (li, ri) = idx.split_at(k);
    let ltotal: f64 = li.iter().map(|&i| shares[i]).sum();
    let axis = domain.size().longest_axis();
    if domain.size()[axis] < 2 {
        // indivisible: the heavier half takes the whole region
        if ltotal * 2.0 >= total {
            bisect_shares(domain, li, shares, out);
        } else {
            bisect_shares(domain, ri, shares, out);
        }
        return;
    }
    let want = (domain.cells() as f64 * ltotal / total).round() as i64;
    let (a, b) = domain.split_cells(want.max(1), axis);
    bisect_shares(a, li, shares, out);
    bisect_shares(b, ri, shares, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_mesh::{ivec3, region};
    use topology::link::Link;
    use topology::{SimTime, SystemBuilder};

    fn wan_sys(na: usize, nb: usize, wb: f64) -> DistributedSystem {
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
        let wan = Link::dedicated("wan", SimTime::from_millis(10), 1e7);
        SystemBuilder::new()
            .group("A", na, 1.0, intra.clone())
            .group("B", nb, wb, intra)
            .connect(0, 1, wan)
            .build()
    }

    /// 8 level-0 grids of 512 cells each, split between first procs of the
    /// two groups.
    fn hier_split(owner_a: usize, owner_b: usize, na: i64) -> GridHierarchy {
        let mut h = GridHierarchy::new(region(ivec3(0, 0, 0), ivec3(64, 8, 8)), 2, 3, 1, 1);
        for i in 0..8 {
            let owner = if i < na { owner_a } else { owner_b };
            h.insert_patch(
                0,
                region(ivec3(8 * i, 0, 0), ivec3(8 * (i + 1), 8, 8)),
                None,
                owner,
            );
        }
        h
    }

    #[test]
    fn fig6_two_group_amount() {
        // Group A holds 6 grids (3072 cells of workload), B holds 2 (1024).
        // Fig. 6: move (W_A−W_B)/(2·W_A) · W⁰_A
        //       = 2048/6144 · 3072 = 1024 cells (two 512-cell grids).
        let sys = wan_sys(2, 2, 1.0);
        let mut sim = SimView::new(sys);
        let mut hier = hier_split(0, 2, 6);
        let loads = [3072.0, 1024.0];
        let rep = global_redistribute(
            &mut hier,
            &mut sim,
            &loads,
            &BalanceParams::default(),
        );
        assert_eq!(rep.moved_cells, 1024, "{rep:?}");
        assert_eq!(rep.moves, 2);
        assert_eq!(rep.group_flow, vec![1024, -1024]);
        // groups end holding equal level-0 cells
        let sys = sim.system().clone();
        assert_eq!(group_level0_cells(&hier, &sys, 0), 2048);
        assert_eq!(group_level0_cells(&hier, &sys, 1), 2048);
        // remote migration traffic happened
        assert_eq!(sim.stats().msgs.remote_msgs, 2);
        assert!(hier.check_invariants().is_ok());
    }

    #[test]
    fn balanced_loads_no_motion() {
        let sys = wan_sys(2, 2, 1.0);
        let mut sim = SimView::new(sys);
        let mut hier = hier_split(0, 2, 4);
        let rep = global_redistribute(
            &mut hier,
            &mut sim,
            &[2048.0, 2048.0],
            &BalanceParams::default(),
        );
        assert_eq!(rep.moved_cells, 0);
        assert_eq!(sim.elapsed(), SimTime::ZERO);
    }

    #[test]
    fn heterogeneous_target_respects_power() {
        // Group B is 3x faster per proc: with equal loads, A (power 2) vs B
        // (power 6) ⇒ A's target = total/4 ⇒ A must export half its cells.
        let sys = wan_sys(2, 2, 3.0);
        let mut sim = SimView::new(sys);
        let mut hier = hier_split(0, 2, 4);
        let rep = global_redistribute(
            &mut hier,
            &mut sim,
            &[2048.0, 2048.0],
            &BalanceParams::default(),
        );
        assert!(
            (rep.moved_cells - 1024).abs() <= 64,
            "expected ≈1024 cells moved, got {}",
            rep.moved_cells
        );
        assert!(rep.group_flow[0] > 0 && rep.group_flow[1] < 0);
    }

    #[test]
    fn splits_when_grids_are_chunky() {
        // One giant grid holds all of A's cells; moving 1/4 of the workload
        // requires splitting it.
        let sys = wan_sys(2, 2, 1.0);
        let mut sim = SimView::new(sys);
        let mut hier = GridHierarchy::new(region(ivec3(0, 0, 0), ivec3(64, 8, 8)), 2, 3, 1, 1);
        hier.insert_patch(0, region(ivec3(0, 0, 0), ivec3(32, 8, 8)), None, 0);
        hier.insert_patch(0, region(ivec3(32, 0, 0), ivec3(64, 8, 8)), None, 2);
        // A overloaded 3:1 in workload
        let rep = global_redistribute(
            &mut hier,
            &mut sim,
            &[3000.0, 1000.0],
            &BalanceParams::default(),
        );
        assert!(rep.splits >= 1, "{rep:?}");
        assert!(rep.moved_cells > 0);
        assert!(hier.check_invariants().is_ok());
    }

    #[test]
    fn single_group_noop() {
        let intra = Link::dedicated("intra", SimTime::ZERO, 1e9);
        let sys = SystemBuilder::new().group("A", 4, 1.0, intra).build();
        let mut sim = SimView::new(sys);
        let mut hier = hier_split(0, 1, 4);
        let rep =
            global_redistribute(&mut hier, &mut sim, &[4096.0], &BalanceParams::default());
        assert_eq!(rep, RedistributionReport {
            group_flow: vec![0],
            ..Default::default()
        });
    }

    #[test]
    fn decompose_domain_covers_exactly() {
        let domain = Region::cube(16);
        let parts = decompose_domain(domain, &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(parts.len(), 4);
        let total: i64 = parts.iter().map(|(r, _)| r.cells()).sum();
        assert_eq!(total, domain.cells());
        for (i, (a, _)) in parts.iter().enumerate() {
            for (b, _) in &parts[i + 1..] {
                assert!(!a.overlaps(b));
            }
        }
        // equal shares -> equal slabs
        assert!(parts.iter().all(|(r, _)| r.cells() == 1024));
    }

    #[test]
    fn decompose_domain_weighted() {
        let domain = Region::cube(16);
        let parts = decompose_domain(domain, &[1.0, 3.0]);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0.cells(), 1024);
        assert_eq!(parts[1].0.cells(), 3072);
    }

    #[test]
    fn guarded_excludes_ineligible_groups() {
        // Three groups; C is quarantined. A's surplus flows to B only, and
        // C's grids never move despite C being the emptiest group.
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
        let wan = Link::dedicated("wan", SimTime::from_millis(10), 1e7);
        let sys = SystemBuilder::new()
            .group("A", 2, 1.0, intra.clone())
            .group("B", 2, 1.0, intra.clone())
            .group("C", 2, 1.0, intra)
            .connect(0, 1, wan.clone())
            .connect(0, 2, wan.clone())
            .connect(1, 2, wan)
            .build();
        let mut sim = SimView::new(sys);
        let mut hier = hier_split(0, 2, 6); // A: 6 grids, B: 2, C: 0
        let rep = global_redistribute_guarded(
            &mut hier,
            &mut sim,
            &[3072.0, 1024.0, 0.0],
            &[true, true, false],
            &BalanceParams::default(),
            SelectionPolicy::SubtreeWorkload,
            None,
        )
        .unwrap();
        assert!(rep.moved_cells > 0);
        assert_eq!(rep.group_flow[2], 0, "quarantined group untouched: {rep:?}");
        let sys = sim.system().clone();
        assert_eq!(group_level0_cells(&hier, &sys, 2), 0);
        // A and B converge toward equal shares of *their* load
        assert_eq!(group_level0_cells(&hier, &sys, 0), 2048);
        assert_eq!(group_level0_cells(&hier, &sys, 1), 2048);
    }

    #[test]
    fn evacuation_prefers_survivors_at_home() {
        let sys = wan_sys(2, 2, 1.0);
        let mut sim = SimView::new(sys);
        let mut hier = hier_split(0, 2, 4); // procs 0 and 2 hold 4 grids each
        let alive = [false, true, true, true];
        let rep = evacuate_proc(&mut hier, &mut sim, ProcId(0), &alive);
        assert_eq!(rep.moves.len(), 4);
        assert_eq!(rep.evacuated_cells, 4 * 512);
        assert_eq!(rep.inter, 0, "home group had a survivor: {rep:?}");
        let sys = sim.system().clone();
        // everything landed on proc 1 (the only alive proc of group A)
        for m in &rep.moves {
            assert_eq!(m.to, 1);
        }
        assert_eq!(group_level0_cells(&hier, &sys, 0), 2048);
        assert!(hier.check_invariants().is_ok());
        // no patch lost or duplicated: total cells conserved
        let total: i64 = hier.level_ids(0).iter().map(|&id| hier.patch(id).cells()).sum();
        assert_eq!(total, 8 * 512);
    }

    #[test]
    fn evacuation_escapes_a_fully_dead_group() {
        let sys = wan_sys(2, 2, 1.0);
        let mut sim = SimView::new(sys);
        let mut hier = hier_split(0, 2, 4);
        // all of group A dead: proc 0's grids must cross to group B, spread
        // over B's two procs by load
        let alive = [false, false, true, true];
        let rep = evacuate_proc(&mut hier, &mut sim, ProcId(0), &alive);
        assert_eq!(rep.moves.len(), 4);
        assert_eq!(rep.intra, 0);
        assert_eq!(rep.inter, 4);
        let sys = sim.system().clone();
        assert_eq!(group_level0_cells(&hier, &sys, 0), 0);
        assert_eq!(group_level0_cells(&hier, &sys, 1), 4096);
        // proc 3 started empty, so placement alternated 3,3,2/3...: no
        // single proc absorbed all four grids
        let owners: Vec<usize> = rep.moves.iter().map(|m| m.to).collect();
        assert!(owners.contains(&3));
        assert!(hier.check_invariants().is_ok());
    }

    #[test]
    fn elastic_redistribute_prices_shrunken_capacity() {
        // Equal loads, equal nameplate groups — but half of B is dead, so
        // the elastic pass moves work *out* of B toward A.
        let sys = wan_sys(2, 2, 1.0);
        let mut sim = SimView::new(sys);
        let mut hier = hier_split(0, 2, 4);
        let alive = [true, true, true, false];
        let rep = global_redistribute_elastic(
            &mut hier,
            &mut sim,
            &[2048.0, 2048.0],
            &[true, true],
            &BalanceParams::default(),
            SelectionPolicy::SubtreeWorkload,
            None,
            &[2.0, 1.0],
            &alive,
        )
        .unwrap();
        assert!(rep.moved_cells > 0, "{rep:?}");
        assert!(rep.group_flow[1] > 0 && rep.group_flow[0] < 0);
        // nothing may land on the dead proc
        for &id in hier.level_ids(0) {
            assert_ne!(hier.patch(id).owner, 3);
        }
        // guarded (all alive, nameplate powers) still sees this as balanced
        let mut sim2 = SimView::new(wan_sys(2, 2, 1.0));
        let mut hier2 = hier_split(0, 2, 4);
        let rep2 = global_redistribute_guarded(
            &mut hier2,
            &mut sim2,
            &[2048.0, 2048.0],
            &[true, true],
            &BalanceParams::default(),
            SelectionPolicy::SubtreeWorkload,
            None,
        )
        .unwrap();
        assert_eq!(rep2.moved_cells, 0);
    }

    #[test]
    fn guarded_aborts_on_failed_transfer_without_committing_ownership() {
        use topology::faults::{FaultKind, FaultSchedule};
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
        let wan = Link::dedicated("wan", SimTime::from_millis(10), 1e7).with_faults(
            FaultSchedule::none().with_window(
                SimTime::ZERO,
                SimTime::from_secs(3600),
                FaultKind::Outage,
            ),
        );
        let sys = SystemBuilder::new()
            .group("A", 2, 1.0, intra.clone())
            .group("B", 2, 1.0, intra)
            .connect(0, 1, wan)
            .build();
        let mut sim = SimView::new(sys);
        let mut hier = hier_split(0, 2, 6);
        let abort = global_redistribute_guarded(
            &mut hier,
            &mut sim,
            &[3072.0, 1024.0],
            &[true, true],
            &BalanceParams::default(),
            SelectionPolicy::SubtreeWorkload,
            None,
        )
        .unwrap_err();
        assert!(matches!(abort.error, SimError::LinkDown { .. }));
        assert_eq!((abort.src_group, abort.dst_group), (0, 1));
        assert_eq!(abort.partial.moves, 0, "first transfer already failed");
        // ownership was not committed for the failed move
        let sys = sim.system().clone();
        assert_eq!(group_level0_cells(&hier, &sys, 0), 3072);
        assert_eq!(sim.stats().msgs.failed_msgs, 1);
    }
}
