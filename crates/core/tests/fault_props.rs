//! Property-style tests of the fault-tolerance protocol: randomized fault
//! schedules never lose workload, and faults that the retry/quarantine
//! machinery absorbs leave the final grid placement exactly as a fault-free
//! run would — deterministically under a fixed seed.

use dlb::fault::FaultTolerancePolicy;
use dlb::{DistributedDlb, DistributedDlbConfig, LbContext, LoadBalancer, WorkloadHistory};
use samr_mesh::hierarchy::GridHierarchy;
use samr_mesh::{ivec3, region};
use simnet::{Activity, SimView};
use topology::faults::{FaultKind, FaultSchedule};
use topology::link::Link;
use topology::{DistributedSystem, ProcId, SimTime, SystemBuilder};

const NPROCS: usize = 4;
const TOTAL_CELLS: i64 = 8 * 512;

fn wan_sys(sched: FaultSchedule) -> DistributedSystem {
    let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
    let wan = Link::dedicated("wan", SimTime::from_millis(5), 2e7).with_faults(sched);
    SystemBuilder::new()
        .group("A", 2, 1.0, intra.clone())
        .group("B", 2, 1.0, intra)
        .connect(0, 1, wan)
        .build()
}

/// 8 level-0 grids of 512 cells; 6 on proc 0 (group A), 2 on proc 2 (B).
fn imbalanced_hier() -> GridHierarchy {
    let mut h = GridHierarchy::new(region(ivec3(0, 0, 0), ivec3(64, 8, 8)), 2, 4, 1, 1);
    for i in 0..8 {
        let owner = if i < 6 { 0 } else { 2 };
        h.insert_patch(
            0,
            region(ivec3(8 * i, 0, 0), ivec3(8 * (i + 1), 8, 8)),
            None,
            owner,
        );
    }
    h
}

/// Run `steps` level-0 steps of the distributed scheme over a WAN carrying
/// the given fault schedule, checking conservation invariants after every
/// step. Each step is followed by 30 s of compute so the simulated clock
/// actually traverses the schedule's windows.
fn run(sched: FaultSchedule, steps: usize) -> (GridHierarchy, DistributedDlb) {
    let mut sim = SimView::new(wan_sys(sched));
    let mut hier = imbalanced_hier();
    let mut history = WorkloadHistory::new(NPROCS);
    let cfg = DistributedDlbConfig {
        fault: FaultTolerancePolicy {
            quarantine_after: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut dlb = DistributedDlb::new(cfg);
    for _ in 0..steps {
        history.record_snapshot(vec![hier.level_load_by_owner(0, NPROCS)], vec![1]);
        history.record_step_time(60.0);
        dlb.after_level_step(
            LbContext {
                hier: &mut hier,
                sim: &mut sim,
                history: &mut history,
            },
            0,
        )
        .expect("fault-tolerant scheme must absorb link failures");
        assert_eq!(
            hier.level_cells(0),
            TOTAL_CELLS,
            "workload lost or duplicated"
        );
        hier.check_invariants().expect("hierarchy invariants");
        for p in 0..NPROCS {
            sim.busy(ProcId(p), 30.0, Activity::Compute);
        }
    }
    (hier, dlb)
}

/// Sorted (region, owner) signature of the level-0 placement — stable
/// against patch-id renumbering.
fn placement(h: &GridHierarchy) -> Vec<(String, usize)> {
    let mut v: Vec<(String, usize)> = h
        .iter()
        .filter(|p| p.level == 0)
        .map(|p| (format!("{:?}", p.region), p.owner))
        .collect();
    v.sort();
    v
}

#[test]
fn random_fault_schedules_never_lose_workload() {
    for seed in 0..24u64 {
        let sched = FaultSchedule::generate(
            seed,
            SimTime::from_secs(600),
            SimTime::from_secs(90),
            SimTime::from_secs(45),
        );
        let (hier, dlb) = run(sched, 12);
        // conservation is asserted inside `run` after every step; here,
        // check the protocol's own ledger stayed coherent
        let s = dlb.fault_stats();
        assert!(
            s.readmissions <= s.quarantines,
            "seed {seed}: re-admitted groups that were never quarantined: {s:?}"
        );
        assert!(
            dlb.roster.quarantined_groups().len() + dlb.roster.healthy_groups().len() == 2,
            "seed {seed}: roster lost a group"
        );
        assert_eq!(hier.level_cells(0), TOTAL_CELLS);
    }
}

#[test]
fn quarantine_and_readmission_roundtrip_preserves_workload() {
    // Deterministic long outage: B gets quarantined, sits out several
    // steps, then is re-admitted — with every cell accounted for along the
    // way and the imbalance finally fixed after recovery.
    let sched = FaultSchedule::none().with_window(
        SimTime::ZERO,
        SimTime::from_secs(200),
        FaultKind::Outage,
    );
    let (hier, dlb) = run(sched, 12);
    let s = dlb.fault_stats();
    assert!(s.quarantines >= 1, "{s:?}");
    assert!(s.readmissions >= 1, "{s:?}");
    assert!(dlb.roster.is_healthy(1), "B must be back in service");
    assert_eq!(hier.level_cells(0), TOTAL_CELLS);
    // post-recovery redistribution evens the groups out again
    let sys = wan_sys(FaultSchedule::none());
    assert_eq!(dlb::partition::group_level0_cells(&hier, &sys, 0), 2048);
}

#[test]
fn survivable_fault_run_matches_fault_free_placement() {
    // An outage short enough that the first backoff clears it: the faulted
    // run must converge to the same placement as a fault-free run (the
    // retries cost simulated time, not correctness).
    let transient = FaultSchedule::none().with_window(
        SimTime::ZERO,
        SimTime::from_millis(40),
        FaultKind::Outage,
    );
    let (h_fault, dlb_fault) = run(transient, 4);
    let (h_clean, dlb_clean) = run(FaultSchedule::none(), 4);
    assert!(
        dlb_fault.fault_stats().retries >= 1,
        "the fault must actually have been hit: {:?}",
        dlb_fault.fault_stats()
    );
    assert_eq!(dlb_fault.fault_stats().aborts, 0);
    assert_eq!(dlb_fault.fault_stats().quarantines, 0);
    assert_eq!(placement(&h_fault), placement(&h_clean));
    assert_eq!(dlb_fault.invocations(), dlb_clean.invocations());
}

#[test]
fn faulted_runs_are_deterministic_under_a_fixed_seed() {
    for seed in [3u64, 7, 11] {
        let sched = || {
            FaultSchedule::generate(
                seed,
                SimTime::from_secs(600),
                SimTime::from_secs(90),
                SimTime::from_secs(45),
            )
        };
        let (h1, dlb1) = run(sched(), 10);
        let (h2, dlb2) = run(sched(), 10);
        assert_eq!(placement(&h1), placement(&h2), "seed {seed}");
        assert_eq!(dlb1.fault_stats(), dlb2.fault_stats(), "seed {seed}");
        assert_eq!(dlb1.fault_events(), dlb2.fault_events(), "seed {seed}");
        assert_eq!(dlb1.decisions.len(), dlb2.decisions.len(), "seed {seed}");
    }
}
