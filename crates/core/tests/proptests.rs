//! Property-based tests for the DLB machinery: balancing conserves work and
//! respects boundaries; placement, gain and redistribution behave sanely on
//! arbitrary load shapes.

use dlb::{
    balance_level_within, evaluate_gain, global_redistribute, place_batch, BalanceParams,
    WorkloadHistory,
};
use proptest::prelude::*;
use samr_mesh::hierarchy::GridHierarchy;
use samr_mesh::{ivec3, region};
use simnet::SimView;
use topology::link::Link;
use topology::{ProcId, SimTime, SystemBuilder};

fn sys(na: usize, nb: usize) -> topology::DistributedSystem {
    let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
    let wan = Link::dedicated("wan", SimTime::from_millis(5), 2e7);
    SystemBuilder::new()
        .group("A", na, 1.0, intra.clone())
        .group("B", nb, 1.0, intra)
        .connect(0, 1, wan)
        .build()
}

/// Hierarchy of n level-0 grids (512 cells each) with given owners.
fn hier_with(owners: &[usize]) -> GridHierarchy {
    let n = owners.len() as i64;
    let mut h = GridHierarchy::new(region(ivec3(0, 0, 0), ivec3(8 * n, 8, 8)), 2, 3, 1, 1);
    for (i, &o) in owners.iter().enumerate() {
        let i = i as i64;
        h.insert_patch(
            0,
            region(ivec3(8 * i, 0, 0), ivec3(8 * (i + 1), 8, 8)),
            None,
            o,
        );
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn balance_conserves_total_work(owners in prop::collection::vec(0usize..4, 1..24)) {
        let mut h = hier_with(&owners);
        let before: i64 = h.level_cells(0);
        let mut sim = SimView::new(sys(2, 2));
        let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
        balance_level_within(&mut h, &mut sim, 0, &procs, &[1.0; 4], &BalanceParams::default());
        prop_assert_eq!(h.level_cells(0), before);
        prop_assert!(h.check_invariants().is_ok());
    }

    #[test]
    fn balance_reaches_tolerance_or_cannot_improve(
        owners in prop::collection::vec(0usize..4, 4..24),
    ) {
        let mut h = hier_with(&owners);
        let mut sim = SimView::new(sys(2, 2));
        let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
        balance_level_within(&mut h, &mut sim, 0, &procs, &[1.0; 4], &BalanceParams::default());
        let loads = h.level_load_by_owner(0, 4);
        let total: i64 = loads.iter().sum();
        let target = total as f64 / 4.0;
        // with 512-cell granularity every proc must be within one grid of target
        for (i, &l) in loads.iter().enumerate() {
            prop_assert!(
                (l as f64 - target).abs() <= 512.0 + target * 0.05 + 1.0,
                "proc {} load {} target {}", i, l, target
            );
        }
    }

    #[test]
    fn balance_never_touches_outside_owners(
        owners in prop::collection::vec(0usize..4, 4..16),
    ) {
        let mut h = hier_with(&owners);
        let outside_before = h.level_load_by_owner(0, 4)[3];
        let mut sim = SimView::new(sys(2, 2));
        // balance only procs 0..3 (proc 3 excluded)
        let procs: Vec<ProcId> = (0..3).map(ProcId).collect();
        balance_level_within(&mut h, &mut sim, 0, &procs, &[1.0; 3], &BalanceParams::default());
        prop_assert_eq!(h.level_load_by_owner(0, 4)[3], outside_before);
    }

    #[test]
    fn place_batch_returns_valid_indices(
        loads in prop::collection::vec(0i64..10_000, 1..8),
        sizes in prop::collection::vec(1i64..5_000, 0..32),
    ) {
        let weights = vec![1.0; loads.len()];
        let owners = place_batch(&loads, &weights, &sizes);
        prop_assert_eq!(owners.len(), sizes.len());
        for &o in &owners {
            prop_assert!(o < loads.len());
        }
    }

    #[test]
    fn place_batch_near_optimal_for_uniform(
        nprocs in 2usize..8,
        sizes in prop::collection::vec(64i64..512, 8..40),
    ) {
        // LPT greedy is a 4/3-approximation of makespan
        let loads = vec![0i64; nprocs];
        let weights = vec![1.0; nprocs];
        let owners = place_batch(&loads, &weights, &sizes);
        let mut bins = vec![0i64; nprocs];
        for (i, &o) in owners.iter().enumerate() {
            bins[o] += sizes[i];
        }
        let total: i64 = sizes.iter().sum();
        let ideal = total as f64 / nprocs as f64;
        let makespan = *bins.iter().max().unwrap() as f64;
        let lower = ideal.max(*sizes.iter().max().unwrap() as f64);
        prop_assert!(makespan <= lower * 4.0 / 3.0 + 1.0,
            "makespan {} vs bound {}", makespan, lower * 4.0 / 3.0);
    }

    #[test]
    fn gain_nonnegative_and_bounded(
        w0 in prop::collection::vec(0i64..100_000, 4),
        w1 in prop::collection::vec(0i64..100_000, 4),
        t in 0.0f64..1000.0,
    ) {
        let mut h = WorkloadHistory::new(4);
        h.record_snapshot(vec![w0, w1], vec![1, 2]);
        h.record_step_time(t);
        let g = evaluate_gain(&h, &sys(2, 2));
        prop_assert!(g.gain_secs >= 0.0);
        // Eq. 4 bound: gain <= T / NumGroups
        prop_assert!(g.gain_secs <= t / 2.0 + 1e-9);
        prop_assert!(g.imbalance_ratio >= 1.0 - 1e-12);
    }

    #[test]
    fn redistribution_moves_toward_balance(
        split in 1usize..15,
    ) {
        // 16 grids, `split` of them owned by group A's proc 0, rest by B's
        let owners: Vec<usize> = (0..16).map(|i| if i < split { 0 } else { 2 }).collect();
        let mut h = hier_with(&owners);
        let mut sim = SimView::new(sys(2, 2));
        let sysd = sim.system().clone();
        let wa = dlb::partition::group_level0_cells(&h, &sysd, 0) as f64;
        let wb = dlb::partition::group_level0_cells(&h, &sysd, 1) as f64;
        let before_gap = (wa - wb).abs();
        global_redistribute(&mut h, &mut sim, &[wa, wb], &BalanceParams::default());
        let na = dlb::partition::group_level0_cells(&h, &sysd, 0) as f64;
        let nb = dlb::partition::group_level0_cells(&h, &sysd, 1) as f64;
        let after_gap = (na - nb).abs();
        prop_assert!(after_gap <= before_gap, "gap {} -> {}", before_gap, after_gap);
        prop_assert_eq!((na + nb) as i64, 16 * 512);
        prop_assert!(h.check_invariants().is_ok());
    }
}
