//! Property-based tests for links, traffic models, probes and systems.

use proptest::prelude::*;
use topology::link::Link;
use topology::probe::probe_link;
use topology::traffic::TrafficModel;
use topology::{SimTime, SystemBuilder};

fn arb_traffic() -> impl Strategy<Value = TrafficModel> {
    prop_oneof![
        Just(TrafficModel::Quiet),
        (0.0f64..0.99).prop_map(|load| TrafficModel::Constant { load }),
        (0.1f64..0.6, 0.0f64..0.35, 1u64..600).prop_map(|(base, amp, p)| {
            TrafficModel::Diurnal {
                base,
                amp,
                period: SimTime::from_secs(p).into(),
            }
        }),
        (0.0f64..0.4, 0.4f64..0.95, 0.0f64..1.0, 1u64..60, any::<u64>()).prop_map(
            |(low, high, p_on, slot, seed)| TrafficModel::Bursty {
                low,
                high,
                p_on,
                slot: SimTime::from_secs(slot).into(),
                seed,
            }
        ),
    ]
}

proptest! {
    #[test]
    fn utilization_always_in_unit_range(m in arb_traffic(), t in 0u64..100_000) {
        let u = m.utilization(SimTime::from_millis(t));
        prop_assert!((0.0..=0.99).contains(&u), "u = {}", u);
    }

    #[test]
    fn utilization_is_pure(m in arb_traffic(), t in 0u64..100_000) {
        let time = SimTime::from_millis(t);
        prop_assert_eq!(m.utilization(time), m.utilization(time));
    }

    #[test]
    fn transfer_time_monotone_in_bytes(
        m in arb_traffic(),
        lat_us in 0u64..20_000,
        bw in 1e6f64..1e9,
        bytes in 0u64..100_000_000,
        extra in 1u64..1_000_000,
        t in 0u64..10_000,
    ) {
        let link = Link::shared("x", SimTime::from_micros(lat_us), bw, m);
        let time = SimTime::from_millis(t);
        let small = link.transfer_time(time, bytes);
        let large = link.transfer_time(time, bytes + extra);
        prop_assert!(large >= small);
        // never faster than latency alone
        prop_assert!(small >= SimTime::from_micros(lat_us));
    }

    #[test]
    fn probe_recovers_params_within_tolerance(
        lat_us in 1u64..20_000,
        bw in 1e6f64..1e9,
        load in 0.0f64..0.9,
    ) {
        // constant background: the two probe messages see the same link
        // state, so the estimate must match the true α and effective β
        let link = Link::shared(
            "x",
            SimTime::from_micros(lat_us),
            bw,
            TrafficModel::Constant { load },
        );
        let s = probe_link(&link, SimTime::ZERO, 1 << 10, 1 << 17)
            .expect("fault-free link probes must succeed");
        let true_alpha = lat_us as f64 * 1e-6;
        let true_beta = 1.0 / (bw * (1.0 - load));
        prop_assert!((s.alpha - true_alpha).abs() <= true_alpha * 0.01 + 1e-9,
            "alpha {} vs {}", s.alpha, true_alpha);
        prop_assert!((s.beta - true_beta).abs() <= true_beta * 0.01 + 1e-15,
            "beta {} vs {}", s.beta, true_beta);
    }

    #[test]
    fn group_powers_sum_to_total(
        na in 1usize..9,
        nb in 1usize..9,
        wa in 0.25f64..4.0,
        wb in 0.25f64..4.0,
    ) {
        let intra = Link::dedicated("intra", SimTime::ZERO, 1e9);
        let wan = Link::dedicated("wan", SimTime::from_millis(1), 1e7);
        let sys = SystemBuilder::new()
            .group("A", na, wa, intra.clone())
            .group("B", nb, wb, intra)
            .connect(0, 1, wan)
            .build();
        let total: f64 = (0..sys.ngroups())
            .map(|g| sys.group_power(topology::GroupId(g)))
            .sum();
        prop_assert!((total - sys.total_power()).abs() < 1e-9);
        prop_assert_eq!(sys.nprocs(), na + nb);
        // every processor belongs to exactly one group's roster
        for p in sys.procs() {
            let g = sys.group(p.group);
            prop_assert!(g.procs.contains(&p.id));
        }
    }

    #[test]
    fn mean_utilization_within_extremes(m in arb_traffic()) {
        let mean = m.mean_utilization(SimTime::ZERO, SimTime::from_secs(1000), 200);
        prop_assert!((0.0..=0.99).contains(&mean));
    }
}
