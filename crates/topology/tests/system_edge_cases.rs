//! Edge cases of system construction and description.

use topology::link::Link;
use topology::{presets, GroupId, ProcId, SimTime, SystemBuilder};

#[test]
fn single_group_has_no_inter_links() {
    let sys = presets::single_origin2000(3);
    assert_eq!(sys.ngroups(), 1);
    let d = sys.describe();
    assert!(d.contains("ANL(3)"));
    assert!(!d.contains(" over "), "no inter link to mention: {d}");
}

#[test]
fn three_site_fully_connected() {
    let sys = presets::three_site_wan(1, 2, 3, 9);
    assert_eq!(sys.ngroups(), 3);
    assert_eq!(sys.nprocs(), 6);
    for a in 0..3 {
        for b in (a + 1)..3 {
            let l = sys.inter_link(GroupId(a), GroupId(b));
            assert!(!l.name.is_empty());
        }
    }
    // ANL-NCSA is the OC-3; the others are the slower vBNS path
    assert_eq!(sys.inter_link(GroupId(0), GroupId(1)).name, "MREN OC-3");
    assert_eq!(sys.inter_link(GroupId(0), GroupId(2)).name, "vBNS");
}

#[test]
#[should_panic]
fn empty_group_rejected() {
    let intra = Link::dedicated("x", SimTime::ZERO, 1e9);
    let _ = SystemBuilder::new().group("A", 0, 1.0, intra).build();
}

#[test]
#[should_panic]
fn non_positive_weight_rejected() {
    let intra = Link::dedicated("x", SimTime::ZERO, 1e9);
    let _ = SystemBuilder::new().group("A", 2, 0.0, intra).build();
}

#[test]
#[should_panic]
fn self_connect_rejected() {
    let intra = Link::dedicated("x", SimTime::ZERO, 1e9);
    let wan = Link::dedicated("w", SimTime::ZERO, 1e7);
    let _ = SystemBuilder::new()
        .group("A", 2, 1.0, intra.clone())
        .group("B", 2, 1.0, intra)
        .connect(0, 0, wan.clone())
        .connect(0, 1, wan)
        .build();
}

#[test]
#[should_panic]
fn inter_link_within_group_panics() {
    let sys = presets::single_origin2000(2);
    let _ = sys.inter_link(GroupId(0), GroupId(0));
}

#[test]
fn transfer_time_self_is_zero_everywhere() {
    let sys = presets::three_site_wan(2, 2, 2, 1);
    for p in 0..6 {
        assert_eq!(
            sys.transfer_time(SimTime::from_secs(5), ProcId(p), ProcId(p), 1 << 30),
            SimTime::ZERO
        );
    }
}

#[test]
fn heterogeneous_wan_weights_only_group_b() {
    let sys = presets::heterogeneous_wan(3, 2, 0.5, 4);
    for p in sys.procs_in(GroupId(0)) {
        assert_eq!(sys.proc(*p).weight, 1.0);
    }
    for p in sys.procs_in(GroupId(1)) {
        assert_eq!(sys.proc(*p).weight, 0.5);
    }
    assert_eq!(sys.total_power(), 4.0);
}
