//! Property tests for fault-schedule boundary semantics: half-open
//! windows, touching windows, query-order independence, and the
//! non-overlap invariant of generated proc-crash schedules.

use proptest::prelude::*;
use topology::{FaultKind, FaultSchedule, LinkHealth, ProcFaultSchedule, SimTime};

fn kind_of(ix: usize, arg: u64) -> FaultKind {
    match ix % 4 {
        0 => FaultKind::Outage,
        1 => FaultKind::Blackhole,
        2 => FaultKind::Slowdown {
            factor: 0.05 + (arg % 90) as f64 / 100.0,
        },
        _ => FaultKind::DropLarge {
            threshold_bytes: 1 << (10 + arg % 8),
        },
    }
}

fn arb_window() -> impl Strategy<Value = (u64, u64, FaultKind)> {
    (0u64..900, 1u64..120, 0usize..4, 0u64..1000)
        .prop_map(|(start, len, ix, arg)| (start, start + len, kind_of(ix, arg)))
}

fn sched_from(windows: &[(u64, u64, FaultKind)]) -> FaultSchedule {
    let mut s = FaultSchedule::none();
    for &(a, b, k) in windows {
        s = s.with_window(SimTime::from_secs(a), SimTime::from_secs(b), k);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn single_window_is_half_open(w in arb_window()) {
        let (a, b, k) = w;
        let s = sched_from(&[w]);
        let start = SimTime::from_secs(a);
        let end = SimTime::from_secs(b);
        prop_assert_ne!(s.health_at(start), LinkHealth::Up);
        prop_assert_eq!(s.health_at(end), LinkHealth::Up);
        prop_assert_ne!(s.health_at(SimTime(end.as_nanos() - 1)), LinkHealth::Up);
        if a > 0 {
            prop_assert_eq!(s.health_at(SimTime(start.as_nanos() - 1)), LinkHealth::Up);
        }
        // a window disrupts itself (unless it is a pure slowdown / small drop)
        let disrupts = !matches!(k, FaultKind::Slowdown { .. });
        let hit = s.first_disruption_in(start, end, u64::MAX).is_some();
        prop_assert_eq!(hit, disrupts);
    }

    #[test]
    fn touching_windows_cover_the_seam_with_the_second_kind(
        a in 0u64..500,
        l1 in 1u64..100,
        l2 in 1u64..100,
    ) {
        // [a, b) Outage then [b, c) Blackhole: at the seam exactly the
        // second window applies (half-open on the left, closed on the right)
        let b = a + l1;
        let c = b + l2;
        let s = sched_from(&[
            (a, b, FaultKind::Outage),
            (b, c, FaultKind::Blackhole),
        ]);
        prop_assert_eq!(s.health_at(SimTime::from_secs(b)), LinkHealth::Blackhole);
        prop_assert_eq!(s.health_at(SimTime(SimTime::from_secs(b).as_nanos() - 1)), LinkHealth::Down);
        prop_assert_eq!(s.health_at(SimTime::from_secs(c)), LinkHealth::Up);
    }

    #[test]
    fn queries_are_window_order_independent(
        ws in prop::collection::vec(arb_window(), 1..12),
        probe_s in prop::collection::vec(0u64..1100, 1..16),
        bytes in 1u64..10_000_000,
    ) {
        let fwd = sched_from(&ws);
        let mut rev_ws = ws.clone();
        rev_ws.reverse();
        let rev = sched_from(&rev_ws);
        for &t in &probe_s {
            let t = SimTime::from_secs(t);
            prop_assert_eq!(fwd.health_at(t), rev.health_at(t));
            prop_assert_eq!(fwd.slowdown_factor_at(t), rev.slowdown_factor_at(t));
            let span = SimTime(t.as_nanos() + SimTime::from_secs(30).as_nanos());
            prop_assert_eq!(
                fwd.first_disruption_in(t, span, bytes).map(|d| d.0),
                rev.first_disruption_in(t, span, bytes).map(|d| d.0)
            );
        }
    }

    #[test]
    fn schedule_is_quiet_outside_every_window(
        ws in prop::collection::vec(arb_window(), 0..8),
    ) {
        let s = sched_from(&ws);
        prop_assert_eq!(s.is_quiet(), ws.is_empty());
        let horizon = ws.iter().map(|w| w.1).max().unwrap_or(0);
        prop_assert_eq!(s.health_at(SimTime::from_secs(horizon + 1)), LinkHealth::Up);
        prop_assert_eq!(s.slowdown_factor_at(SimTime::from_secs(horizon + 1)), 1.0);
    }

    #[test]
    fn generated_proc_windows_never_overlap(
        seed in any::<u64>(),
        nprocs in 1usize..12,
        mean_up_s in 5u64..120,
        mean_down_s in 2u64..60,
    ) {
        let s = ProcFaultSchedule::generate(
            seed,
            nprocs,
            &[],
            SimTime::from_secs(2000),
            SimTime::from_secs(mean_up_s),
            SimTime::from_secs(mean_down_s),
        );
        prop_assert_eq!(s.nprocs(), nprocs);
        for p in 0..nprocs {
            let mut ws = s.windows[p].clone();
            ws.sort_by_key(|w| w.start.0);
            for pair in ws.windows(2) {
                prop_assert!(
                    pair[0].end.0 <= pair[1].start.0,
                    "proc {} windows overlap: {:?}", p, pair
                );
            }
            for w in &ws {
                prop_assert!(w.start.0 < w.end.0);
                // dead inside, alive at both edges of the complement
                let mid = SimTime(w.start.0 + (w.end.0 - w.start.0) / 2);
                prop_assert!(!s.alive_at(p, mid));
                prop_assert_eq!(s.crash_start(p, mid), Some(SimTime(w.start.0)));
                prop_assert!(s.alive_at(p, SimTime(w.end.0)));
            }
        }
    }

    #[test]
    fn generated_proc_schedule_is_reproducible(seed in any::<u64>()) {
        let mk = || ProcFaultSchedule::generate(
            seed, 6, &[0, 3],
            SimTime::from_secs(1000),
            SimTime::from_secs(30),
            SimTime::from_secs(10),
        );
        let (a, b) = (mk(), mk());
        prop_assert_eq!(a, b);
    }
}
