//! NWS-lite: on-line estimation of a link's α and β by active probing.
//!
//! §4.2 of the paper: *"the scheme sends two messages between groups, and
//! calculates the network performance parameters α and β"*. We reproduce
//! exactly that two-message probe; smoothing and forecasting of the sampled
//! α/β streams live in the `forecast` crate (the Network Weather Service
//! direction the authors cite as future work), which [`LinkEstimator`]
//! delegates to — by default with the same latest-sample EWMA as before.
//!
//! Probing is fallible: a dead or blackholed link returns a typed
//! [`ProbeError`] instead of a bogus sample, and [`LinkEstimator`] tracks
//! probe failures and sample age so stale α/β from a dead link stop
//! informing the γ-gate (see [`LinkEstimator::with_staleness`]).

use crate::faults::LinkHealth;
use crate::link::Link;
use crate::time::SimTime;
use forecast::{ForecastValue, LinkForecast, PredictorKind};

/// Floor for the estimated per-byte rate β (seconds/byte).
///
/// Two probe messages whose transfer times quantize to the same value (an
/// extremely fast link under the simulator's nanosecond clock) solve to
/// β = 0, and downstream consumers routinely form `1.0 / β` (effective
/// bandwidth). Rather than returning a typed error for a sample that is
/// merely "too fast to resolve", β is floored at this epsilon — equivalent
/// to capping measurable bandwidth at 10¹² byte/s, three orders of
/// magnitude above any link in the paper's testbed.
pub const MIN_BETA: f64 = 1e-12;

/// Result of one two-message probe: estimated latency and per-byte rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeSample {
    /// Estimated latency α in seconds.
    pub alpha: f64,
    /// Estimated transfer rate β in seconds/byte.
    pub beta: f64,
    /// Simulated time spent performing the probe (both messages).
    pub elapsed: SimTime,
}

/// Why a probe could not produce a trustworthy sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProbeError {
    /// Probe messages must satisfy `small < large` to solve for (α, β).
    BadProbeSizes { small: u64, large: u64 },
    /// The link reports zero, negative, or non-finite effective bandwidth —
    /// a sample taken now would contain garbage α/β.
    DegenerateBandwidth { bandwidth: f64 },
    /// The link is down (outage window): the first message fails fast.
    LinkDown,
    /// The link blackholes traffic: a probe message was sent but no reply
    /// ever arrives.
    NoReply,
}

impl std::fmt::Display for ProbeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeError::BadProbeSizes { small, large } => {
                write!(f, "probe sizes must satisfy small < large (got {small} >= {large})")
            }
            ProbeError::DegenerateBandwidth { bandwidth } => {
                write!(f, "link reports degenerate bandwidth {bandwidth} B/s")
            }
            ProbeError::LinkDown => write!(f, "link is down"),
            ProbeError::NoReply => write!(f, "probe got no reply (blackholed link)"),
        }
    }
}

impl std::error::Error for ProbeError {}

/// Probe a link at time `t` with two messages of `small` and `large` bytes.
///
/// Solves `t1 = α + β·s1`, `t2 = α + β·s2` for `(α, β)`. The probe itself
/// consumes simulated time `t1 + t2` (the messages really cross the link),
/// which callers charge as DLB overhead. Returns a [`ProbeError`] instead
/// of a bogus sample when the sizes are degenerate, the link reports
/// non-positive bandwidth, or a fault window makes the link unreachable.
/// β is floored at [`MIN_BETA`] so identical round-trip times (β = 0)
/// cannot leak a divide-by-zero into `1/β` bandwidth paths.
///
/// ```
/// use topology::{probe_link, Link, SimTime};
/// let link = Link::dedicated("x", SimTime::from_millis(2), 1e7);
/// let s = probe_link(&link, SimTime::ZERO, 1 << 10, 1 << 16).unwrap();
/// assert!((s.alpha - 0.002).abs() < 1e-6);
/// assert!((s.beta - 1e-7).abs() < 1e-12);
/// ```
pub fn probe_link(link: &Link, t: SimTime, small: u64, large: u64) -> Result<ProbeSample, ProbeError> {
    if small >= large {
        return Err(ProbeError::BadProbeSizes { small, large });
    }
    check_reachable(link, t)?;
    let t1 = link.transfer_time(t, small);
    // second message departs after the first completes — the link may have
    // failed in between
    check_reachable(link, t + t1)?;
    let t2 = link.transfer_time(t + t1, large);
    let s1 = t1.as_secs_f64();
    let s2 = t2.as_secs_f64();
    let beta = (s2 - s1) / (large - small) as f64;
    let alpha = (s1 - beta * small as f64).max(0.0);
    if !beta.is_finite() || !alpha.is_finite() {
        return Err(ProbeError::DegenerateBandwidth {
            bandwidth: link.effective_bandwidth(t),
        });
    }
    Ok(ProbeSample {
        alpha,
        beta: beta.max(MIN_BETA),
        elapsed: t1 + t2,
    })
}

fn check_reachable(link: &Link, t: SimTime) -> Result<(), ProbeError> {
    match link.health_at(t) {
        LinkHealth::Down => return Err(ProbeError::LinkDown),
        LinkHealth::Blackhole => return Err(ProbeError::NoReply),
        LinkHealth::Up | LinkHealth::Lossy { .. } | LinkHealth::Slow { .. } => {}
    }
    let bw = link.effective_bandwidth(t);
    if !(bw.is_finite() && bw > 0.0) {
        return Err(ProbeError::DegenerateBandwidth { bandwidth: bw });
    }
    Ok(())
}

/// Forecasting smoother over probe samples, NWS-style, with staleness
/// tracking. The α/β/bandwidth streams are folded through a
/// [`forecast::LinkForecast`]; the default model is a fixed-gain EWMA with
/// gain λ, which reproduces the pre-forecast estimator bit for bit
/// (λ = 1 ⇒ the paper's latest-sample mode).
#[derive(Clone, Debug)]
pub struct LinkEstimator {
    /// Per-series predictors for α, β, and effective bandwidth.
    series: LinkForecast,
    /// Probe message sizes.
    pub small: u64,
    pub large: u64,
    samples: usize,
    /// Time of the last successful probe.
    last_success: Option<SimTime>,
    /// Consecutive probe failures since the last success.
    failures: u32,
    /// Staleness policy: `(ttl_secs, max_failures)`. `None` disables
    /// staleness (estimates never expire — the pre-fault behaviour).
    staleness: Option<(f64, u32)>,
}

/// Seed for the default (non-adaptive) estimator models. Fixed models
/// ignore it, so any constant keeps the default path deterministic.
const DEFAULT_FORECAST_SEED: u64 = 0;

impl LinkEstimator {
    /// A fresh estimator. `lambda = 1.0` means "trust only the latest probe"
    /// (what the paper's two-message scheme does); smaller values smooth.
    pub fn new(lambda: f64, small: u64, large: u64) -> Self {
        assert!(lambda > 0.0 && lambda <= 1.0);
        assert!(large > small);
        LinkEstimator {
            series: LinkForecast::new(PredictorKind::Ewma { gain: lambda }, DEFAULT_FORECAST_SEED),
            small,
            large,
            samples: 0,
            last_success: None,
            failures: 0,
            staleness: None,
        }
    }

    /// Defaults matching the paper's decision cadence: latest-sample
    /// weighting, 1 KiB / 64 KiB probe messages.
    pub fn paper_default() -> Self {
        LinkEstimator::new(1.0, 1 << 10, 1 << 16)
    }

    /// Replace the default EWMA(λ) with another predictor family — e.g.
    /// [`PredictorKind::Adaptive`] for the MAE-tracked selector. Discards
    /// any samples already folded, so call it at construction time.
    pub fn with_predictor(mut self, kind: PredictorKind, seed: u64) -> Self {
        self.series = LinkForecast::new(kind, seed);
        self
    }

    /// Enable staleness decay: [`estimate`](Self::estimate) returns `None`
    /// once the last successful probe is older than `ttl_secs` or after
    /// `max_failures` consecutive probe failures, so α/β from a dead link
    /// stop informing redistribution decisions.
    pub fn with_staleness(mut self, ttl_secs: f64, max_failures: u32) -> Self {
        assert!(ttl_secs > 0.0 && max_failures > 0);
        self.staleness = Some((ttl_secs, max_failures));
        self
    }

    /// Probe `link` at `t` and fold the sample in. On failure the
    /// estimator records a strike (for staleness decay) and keeps its
    /// previous α/β untouched.
    pub fn refresh(&mut self, link: &Link, t: SimTime) -> Result<ProbeSample, ProbeError> {
        match probe_link(link, t, self.small, self.large) {
            Ok(s) => {
                self.fold(t, s.alpha, s.beta);
                self.samples += 1;
                self.last_success = Some(t + s.elapsed);
                self.failures = 0;
                Ok(s)
            }
            Err(e) => {
                self.record_failure(t);
                Err(e)
            }
        }
    }

    /// Fold one sample into the per-series predictors, clamped against
    /// NaN/negative samples: non-finite contributions are discarded (the
    /// old estimate survives) and finite ones are floored at zero before
    /// smoothing — the same semantics the in-place EWMA had.
    fn fold(&mut self, t: SimTime, alpha: f64, beta: f64) {
        let secs = t.as_secs_f64();
        if alpha.is_finite() && beta.is_finite() {
            self.series.observe_probe(secs, alpha.max(0.0), beta.max(0.0));
        } else if alpha.is_finite() {
            self.series.alpha.observe(secs, alpha.max(0.0));
        } else if beta.is_finite() {
            self.series.beta.observe(secs, beta.max(0.0));
        }
    }

    /// Record a probe failure observed at `t` without touching α/β.
    pub fn record_failure(&mut self, _t: SimTime) {
        self.failures = self.failures.saturating_add(1);
    }

    /// Consecutive failures since the last successful probe.
    pub fn consecutive_failures(&self) -> u32 {
        self.failures
    }

    /// Is the estimate too old or too failure-ridden to trust at `now`?
    /// Always `false` while staleness is disabled.
    pub fn is_stale(&self, now: SimTime) -> bool {
        let Some((ttl, max_failures)) = self.staleness else {
            return false;
        };
        if self.failures >= max_failures {
            return true;
        }
        match self.last_success {
            None => self.samples == 0,
            Some(t) => now.saturating_sub(t).as_secs_f64() > ttl,
        }
    }

    /// Current α forecast (seconds); `None` before the first probe.
    pub fn alpha(&self) -> Option<f64> {
        self.series.alpha.forecast()
    }

    /// Current β forecast (seconds/byte).
    pub fn beta(&self) -> Option<f64> {
        self.series.beta.forecast()
    }

    /// α forecast with its running-MAE error bar.
    pub fn alpha_forecast(&self) -> Option<ForecastValue> {
        self.series.alpha.forecast_value()
    }

    /// β forecast with its running-MAE error bar.
    pub fn beta_forecast(&self) -> Option<ForecastValue> {
        self.series.beta.forecast_value()
    }

    /// Effective-bandwidth (1/β) forecast with its error bar.
    pub fn bandwidth_forecast(&self) -> Option<ForecastValue> {
        self.series.bandwidth.forecast_value()
    }

    /// Mean absolute one-step forecast error of the α series (seconds).
    pub fn alpha_mae(&self) -> f64 {
        self.series.alpha.mae()
    }

    /// Mean absolute one-step forecast error of the β series (s/byte).
    pub fn beta_mae(&self) -> f64 {
        self.series.beta.mae()
    }

    /// Number of out-of-sample (forecast, probe) pairs scored so far.
    pub fn forecast_samples(&self) -> u64 {
        self.series.beta.scored_samples()
    }

    /// Name of the model the α/β series run (`"ewma(1.00)"` by default).
    pub fn model_name(&self) -> String {
        self.series.beta.model_name()
    }

    /// The β series' adaptive selector, when that model family is in use —
    /// exposes the per-member MAE scoreboard and the current best member.
    pub fn beta_selector(&self) -> Option<&forecast::AdaptiveSelector> {
        self.series.beta.selector()
    }

    /// `(α, β)` if a trustworthy estimate exists at `now` — `None` before
    /// the first probe or once the estimate has gone stale.
    pub fn estimate(&self, now: SimTime) -> Option<(f64, f64)> {
        if self.is_stale(now) {
            return None;
        }
        match (self.alpha(), self.beta()) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        }
    }

    /// `(α, β)` forecasts with error bars, staleness-gated like
    /// [`estimate`](Self::estimate).
    pub fn estimate_forecast(&self, now: SimTime) -> Option<(ForecastValue, ForecastValue)> {
        if self.is_stale(now) {
            return None;
        }
        match (self.alpha_forecast(), self.beta_forecast()) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        }
    }

    /// Number of probes folded in.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Predicted time to ship `bytes` across the estimated link:
    /// `α + β·bytes` (the paper's Eq. 1 communication term). `None` before
    /// the first probe.
    pub fn predict(&self, bytes: u64) -> Option<f64> {
        match (self.alpha(), self.beta()) {
            (Some(a), Some(b)) => Some(a + b * bytes as f64),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultKind, FaultSchedule};
    use crate::traffic::TrafficModel;

    #[test]
    fn probe_recovers_dedicated_link_params() {
        let link = Link::dedicated("x", SimTime::from_millis(2), 1e7);
        let s = probe_link(&link, SimTime::ZERO, 1 << 10, 1 << 16).unwrap();
        assert!((s.alpha - 0.002).abs() < 1e-6, "alpha {}", s.alpha);
        assert!((s.beta - 1e-7).abs() < 1e-12, "beta {}", s.beta);
    }

    #[test]
    fn probe_elapsed_accounts_both_messages() {
        let link = Link::dedicated("x", SimTime::from_millis(1), 1e6);
        let s = probe_link(&link, SimTime::ZERO, 1000, 2000).unwrap();
        let expect = 0.001 + 0.001 + 0.001 + 0.002;
        assert!((s.elapsed.as_secs_f64() - expect).abs() < 1e-9);
    }

    #[test]
    fn probe_sees_congestion() {
        let busy = Link::shared(
            "b",
            SimTime::from_millis(2),
            1e7,
            TrafficModel::Constant { load: 0.8 },
        );
        let s = probe_link(&busy, SimTime::ZERO, 1 << 10, 1 << 16).unwrap();
        // effective bandwidth 2e6 => beta 5e-7
        assert!((s.beta - 5e-7).abs() < 1e-10, "beta {}", s.beta);
    }

    #[test]
    fn degenerate_sizes_and_bandwidth_are_errors() {
        let link = Link::dedicated("x", SimTime::from_millis(1), 1e6);
        assert_eq!(
            probe_link(&link, SimTime::ZERO, 2000, 2000),
            Err(ProbeError::BadProbeSizes {
                small: 2000,
                large: 2000
            })
        );
        let dead = Link::dedicated("zero", SimTime::from_millis(1), 0.0);
        assert!(matches!(
            probe_link(&dead, SimTime::ZERO, 1 << 10, 1 << 16),
            Err(ProbeError::DegenerateBandwidth { .. })
        ));
        let nan = Link::dedicated("nan", SimTime::from_millis(1), f64::NAN);
        assert!(matches!(
            probe_link(&nan, SimTime::ZERO, 1 << 10, 1 << 16),
            Err(ProbeError::DegenerateBandwidth { .. })
        ));
    }

    #[test]
    fn probe_fails_during_outage_and_blackhole() {
        let down = Link::dedicated("d", SimTime::from_millis(1), 1e6).with_faults(
            FaultSchedule::none().with_window(
                SimTime::ZERO,
                SimTime::from_secs(10),
                FaultKind::Outage,
            ),
        );
        assert_eq!(
            probe_link(&down, SimTime::from_secs(5), 1 << 10, 1 << 16),
            Err(ProbeError::LinkDown)
        );
        // after the window the probe works again
        assert!(probe_link(&down, SimTime::from_secs(10), 1 << 10, 1 << 16).is_ok());
        let hole = Link::dedicated("h", SimTime::from_millis(1), 1e6).with_faults(
            FaultSchedule::none().with_window(
                SimTime::ZERO,
                SimTime::from_secs(10),
                FaultKind::Blackhole,
            ),
        );
        assert_eq!(
            probe_link(&hole, SimTime::ZERO, 1 << 10, 1 << 16),
            Err(ProbeError::NoReply)
        );
    }

    #[test]
    fn probe_fails_if_link_dies_between_messages() {
        // first message completes around 2 ms + transfer; fault opens at 3 ms
        let link = Link::dedicated("mid", SimTime::from_millis(2), 1e6).with_faults(
            FaultSchedule::none().with_window(
                SimTime::from_millis(3),
                SimTime::from_secs(1),
                FaultKind::Outage,
            ),
        );
        assert_eq!(
            probe_link(&link, SimTime::ZERO, 1 << 10, 1 << 16),
            Err(ProbeError::LinkDown)
        );
    }

    #[test]
    fn estimator_latest_sample_mode() {
        let mut est = LinkEstimator::paper_default();
        assert!(est.predict(100).is_none());
        let link = Link::shared(
            "t",
            SimTime::from_millis(1),
            1e7,
            TrafficModel::Trace {
                initial: 0.0,
                points: vec![(SimTime::from_secs(10).into(), 0.9)],
            },
        );
        est.refresh(&link, SimTime::ZERO).unwrap();
        let quiet_beta = est.beta().unwrap();
        est.refresh(&link, SimTime::from_secs(10)).unwrap();
        let busy_beta = est.beta().unwrap();
        assert!(
            (busy_beta / quiet_beta - 10.0).abs() < 1e-6,
            "λ=1 tracks the newest sample exactly"
        );
        assert_eq!(est.samples(), 2);
    }

    #[test]
    fn estimator_smoothing() {
        let mut est = LinkEstimator::new(0.5, 1 << 10, 1 << 16);
        let link = Link::shared(
            "t",
            SimTime::ZERO,
            1e7,
            TrafficModel::Trace {
                initial: 0.0,
                points: vec![(SimTime::from_secs(10).into(), 0.9)],
            },
        );
        est.refresh(&link, SimTime::ZERO).unwrap();
        let b0 = est.beta().unwrap();
        est.refresh(&link, SimTime::from_secs(10)).unwrap();
        let b1 = est.beta().unwrap();
        // smoothed estimate lies strictly between quiet and congested betas
        let congested = link.beta(SimTime::from_secs(10));
        assert!(b1 > b0 && b1 < congested);
    }

    #[test]
    fn prediction_matches_link_for_dedicated() {
        let link = Link::dedicated("x", SimTime::from_millis(5), 2e7);
        let mut est = LinkEstimator::paper_default();
        est.refresh(&link, SimTime::ZERO).unwrap();
        let predicted = est.predict(1 << 20).unwrap();
        let actual = link.transfer_time(SimTime::ZERO, 1 << 20).as_secs_f64();
        assert!((predicted - actual).abs() / actual < 1e-6);
    }

    #[test]
    fn failed_refresh_keeps_old_estimate_and_counts_strikes() {
        let link = Link::dedicated("x", SimTime::from_millis(2), 1e7).with_faults(
            FaultSchedule::none().with_window(
                SimTime::from_secs(10),
                SimTime::from_secs(20),
                FaultKind::Outage,
            ),
        );
        let mut est = LinkEstimator::paper_default();
        est.refresh(&link, SimTime::ZERO).unwrap();
        let (a, b) = est.estimate(SimTime::from_secs(1)).unwrap();
        assert!(est.refresh(&link, SimTime::from_secs(15)).is_err());
        assert_eq!(est.consecutive_failures(), 1);
        assert_eq!(est.alpha(), Some(a));
        assert_eq!(est.beta(), Some(b));
        // a success resets the strike counter
        est.refresh(&link, SimTime::from_secs(25)).unwrap();
        assert_eq!(est.consecutive_failures(), 0);
    }

    #[test]
    fn staleness_expires_estimates() {
        let link = Link::dedicated("x", SimTime::from_millis(2), 1e7);
        let mut est = LinkEstimator::paper_default().with_staleness(30.0, 2);
        assert!(est.estimate(SimTime::ZERO).is_none(), "no sample yet");
        est.refresh(&link, SimTime::ZERO).unwrap();
        assert!(est.estimate(SimTime::from_secs(10)).is_some());
        assert!(
            est.estimate(SimTime::from_secs(60)).is_none(),
            "TTL exceeded"
        );
        // failures also expire the estimate
        let mut est2 = LinkEstimator::paper_default().with_staleness(1e9, 2);
        est2.refresh(&link, SimTime::ZERO).unwrap();
        est2.record_failure(SimTime::from_secs(1));
        assert!(est2.estimate(SimTime::from_secs(1)).is_some(), "one strike");
        est2.record_failure(SimTime::from_secs(2));
        assert!(est2.estimate(SimTime::from_secs(2)).is_none(), "two strikes");
    }

    #[test]
    fn identical_round_trips_floor_beta_at_epsilon() {
        // A link so fast that both probe messages' transfer times quantize
        // to the same nanosecond count: the solved β would be 0. The floor
        // keeps 1/β (effective bandwidth) finite.
        let warp = Link::dedicated("warp", SimTime::from_millis(1), 1e18);
        let s = probe_link(&warp, SimTime::ZERO, 1 << 10, 1 << 16).unwrap();
        assert_eq!(s.beta, MIN_BETA);
        let mut est = LinkEstimator::paper_default();
        est.refresh(&warp, SimTime::ZERO).unwrap();
        let bw = 1.0 / est.beta().unwrap();
        assert!(bw.is_finite() && bw > 0.0);
    }

    #[test]
    fn adaptive_predictor_tracks_and_scores() {
        let link = Link::shared(
            "t",
            SimTime::from_millis(1),
            1e7,
            TrafficModel::Trace {
                initial: 0.0,
                points: vec![(SimTime::from_secs(60).into(), 0.9)],
            },
        );
        let mut est = LinkEstimator::paper_default()
            .with_predictor(forecast::PredictorKind::Adaptive, 42);
        for i in 0..12 {
            est.refresh(&link, SimTime::from_secs(i * 10)).unwrap();
        }
        // scored out-of-sample pairs: one per probe after the first
        assert_eq!(est.forecast_samples(), 11);
        assert!(est.beta_mae() > 0.0, "regime change produced forecast error");
        let (a, b) = est.estimate_forecast(SimTime::from_secs(120)).unwrap();
        assert!(a.value >= 0.0 && a.error >= 0.0);
        assert!(b.upper() > b.value, "error bar widens the pessimistic bound");
        assert_eq!(est.model_name(), "adaptive");
    }

    #[test]
    fn default_predictor_matches_legacy_ewma_bit_for_bit() {
        // The λ-EWMA through the forecast crate must reproduce the old
        // in-place fold exactly: λ·new + (1 − λ)·old.
        let link = Link::shared(
            "t",
            SimTime::ZERO,
            1e7,
            TrafficModel::Trace {
                initial: 0.0,
                points: vec![(SimTime::from_secs(10).into(), 0.9)],
            },
        );
        let lambda = 0.5;
        let mut est = LinkEstimator::new(lambda, 1 << 10, 1 << 16);
        let s0 = est.refresh(&link, SimTime::ZERO).unwrap();
        let s1 = est.refresh(&link, SimTime::from_secs(10)).unwrap();
        let expect_beta = lambda * s1.beta + (1.0 - lambda) * s0.beta;
        assert_eq!(est.beta(), Some(expect_beta));
        let expect_alpha = lambda * s1.alpha + (1.0 - lambda) * s0.alpha;
        assert_eq!(est.alpha(), Some(expect_alpha));
    }

    #[test]
    fn staleness_disabled_by_default() {
        let link = Link::dedicated("x", SimTime::from_millis(2), 1e7);
        let mut est = LinkEstimator::paper_default();
        est.refresh(&link, SimTime::ZERO).unwrap();
        for i in 0..100 {
            est.record_failure(SimTime::from_secs(i));
        }
        assert!(est.estimate(SimTime::from_secs(1_000_000)).is_some());
    }
}
