//! NWS-lite: on-line estimation of a link's α and β by active probing.
//!
//! §4.2 of the paper: *"the scheme sends two messages between groups, and
//! calculates the network performance parameters α and β"*. We reproduce
//! exactly that two-message probe, plus exponentially-weighted smoothing in
//! the spirit of the Network Weather Service the authors cite as future work.

use crate::link::Link;
use crate::time::SimTime;

/// Result of one two-message probe: estimated latency and per-byte rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeSample {
    /// Estimated latency α in seconds.
    pub alpha: f64,
    /// Estimated transfer rate β in seconds/byte.
    pub beta: f64,
    /// Simulated time spent performing the probe (both messages).
    pub elapsed: SimTime,
}

/// Probe a link at time `t` with two messages of `small` and `large` bytes.
///
/// Solves `t1 = α + β·s1`, `t2 = α + β·s2` for `(α, β)`. The probe itself
/// consumes simulated time `t1 + t2` (the messages really cross the link),
/// which callers charge as DLB overhead.
///
/// ```
/// use topology::{probe_link, Link, SimTime};
/// let link = Link::dedicated("x", SimTime::from_millis(2), 1e7);
/// let s = probe_link(&link, SimTime::ZERO, 1 << 10, 1 << 16);
/// assert!((s.alpha - 0.002).abs() < 1e-6);
/// assert!((s.beta - 1e-7).abs() < 1e-12);
/// ```
pub fn probe_link(link: &Link, t: SimTime, small: u64, large: u64) -> ProbeSample {
    assert!(large > small, "probe sizes must differ");
    let t1 = link.transfer_time(t, small);
    // second message departs after the first completes
    let t2 = link.transfer_time(t + t1, large);
    let s1 = t1.as_secs_f64();
    let s2 = t2.as_secs_f64();
    let beta = (s2 - s1) / (large - small) as f64;
    let alpha = (s1 - beta * small as f64).max(0.0);
    ProbeSample {
        alpha,
        beta: beta.max(0.0),
        elapsed: t1 + t2,
    }
}

/// EWMA smoother over probe samples, NWS-style.
#[derive(Clone, Debug)]
pub struct LinkEstimator {
    /// Smoothing factor λ ∈ (0, 1]: weight of the newest sample.
    lambda: f64,
    alpha: Option<f64>,
    beta: Option<f64>,
    /// Probe message sizes.
    pub small: u64,
    pub large: u64,
    samples: usize,
}

impl LinkEstimator {
    /// A fresh estimator. `lambda = 1.0` means "trust only the latest probe"
    /// (what the paper's two-message scheme does); smaller values smooth.
    pub fn new(lambda: f64, small: u64, large: u64) -> Self {
        assert!(lambda > 0.0 && lambda <= 1.0);
        assert!(large > small);
        LinkEstimator {
            lambda,
            alpha: None,
            beta: None,
            small,
            large,
            samples: 0,
        }
    }

    /// Defaults matching the paper's decision cadence: latest-sample
    /// weighting, 1 KiB / 64 KiB probe messages.
    pub fn paper_default() -> Self {
        LinkEstimator::new(1.0, 1 << 10, 1 << 16)
    }

    /// Probe `link` at `t`, fold the sample in, and return it.
    pub fn refresh(&mut self, link: &Link, t: SimTime) -> ProbeSample {
        let s = probe_link(link, t, self.small, self.large);
        self.alpha = Some(match self.alpha {
            None => s.alpha,
            Some(a) => self.lambda * s.alpha + (1.0 - self.lambda) * a,
        });
        self.beta = Some(match self.beta {
            None => s.beta,
            Some(b) => self.lambda * s.beta + (1.0 - self.lambda) * b,
        });
        self.samples += 1;
        s
    }

    /// Current α estimate (seconds); `None` before the first probe.
    pub fn alpha(&self) -> Option<f64> {
        self.alpha
    }

    /// Current β estimate (seconds/byte).
    pub fn beta(&self) -> Option<f64> {
        self.beta
    }

    /// Number of probes folded in.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Predicted time to ship `bytes` across the estimated link:
    /// `α + β·bytes` (the paper's Eq. 1 communication term). `None` before
    /// the first probe.
    pub fn predict(&self, bytes: u64) -> Option<f64> {
        match (self.alpha, self.beta) {
            (Some(a), Some(b)) => Some(a + b * bytes as f64),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficModel;

    #[test]
    fn probe_recovers_dedicated_link_params() {
        let link = Link::dedicated("x", SimTime::from_millis(2), 1e7);
        let s = probe_link(&link, SimTime::ZERO, 1 << 10, 1 << 16);
        assert!((s.alpha - 0.002).abs() < 1e-6, "alpha {}", s.alpha);
        assert!((s.beta - 1e-7).abs() < 1e-12, "beta {}", s.beta);
    }

    #[test]
    fn probe_elapsed_accounts_both_messages() {
        let link = Link::dedicated("x", SimTime::from_millis(1), 1e6);
        let s = probe_link(&link, SimTime::ZERO, 1000, 2000);
        let expect = 0.001 + 0.001 + 0.001 + 0.002;
        assert!((s.elapsed.as_secs_f64() - expect).abs() < 1e-9);
    }

    #[test]
    fn probe_sees_congestion() {
        let busy = Link::shared(
            "b",
            SimTime::from_millis(2),
            1e7,
            TrafficModel::Constant { load: 0.8 },
        );
        let s = probe_link(&busy, SimTime::ZERO, 1 << 10, 1 << 16);
        // effective bandwidth 2e6 => beta 5e-7
        assert!((s.beta - 5e-7).abs() < 1e-10, "beta {}", s.beta);
    }

    #[test]
    fn estimator_latest_sample_mode() {
        let mut est = LinkEstimator::paper_default();
        assert!(est.predict(100).is_none());
        let link = Link::shared(
            "t",
            SimTime::from_millis(1),
            1e7,
            TrafficModel::Trace {
                initial: 0.0,
                points: vec![(SimTime::from_secs(10).into(), 0.9)],
            },
        );
        est.refresh(&link, SimTime::ZERO);
        let quiet_beta = est.beta().unwrap();
        est.refresh(&link, SimTime::from_secs(10));
        let busy_beta = est.beta().unwrap();
        assert!(
            (busy_beta / quiet_beta - 10.0).abs() < 1e-6,
            "λ=1 tracks the newest sample exactly"
        );
        assert_eq!(est.samples(), 2);
    }

    #[test]
    fn estimator_smoothing() {
        let mut est = LinkEstimator::new(0.5, 1 << 10, 1 << 16);
        let link = Link::shared(
            "t",
            SimTime::ZERO,
            1e7,
            TrafficModel::Trace {
                initial: 0.0,
                points: vec![(SimTime::from_secs(10).into(), 0.9)],
            },
        );
        est.refresh(&link, SimTime::ZERO);
        let b0 = est.beta().unwrap();
        est.refresh(&link, SimTime::from_secs(10));
        let b1 = est.beta().unwrap();
        // smoothed estimate lies strictly between quiet and congested betas
        let congested = link.beta(SimTime::from_secs(10));
        assert!(b1 > b0 && b1 < congested);
    }

    #[test]
    fn prediction_matches_link_for_dedicated() {
        let link = Link::dedicated("x", SimTime::from_millis(5), 2e7);
        let mut est = LinkEstimator::paper_default();
        est.refresh(&link, SimTime::ZERO);
        let predicted = est.predict(1 << 20).unwrap();
        let actual = link.transfer_time(SimTime::ZERO, 1 << 20).as_secs_f64();
        assert!((predicted - actual).abs() / actual < 1e-6);
    }
}
