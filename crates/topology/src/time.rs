//! Simulated time: integer nanoseconds, totally ordered and exact.
//!
//! Every timing quantity in the simulator is a [`SimTime`] (a point) or a
//! [`SimTime`] difference expressed with [`SimTime::from_secs_f64`]. Integer
//! nanoseconds keep event ordering deterministic across platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) of simulated time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from (non-negative, finite) seconds, rounding to nanos.
    pub fn from_secs_f64(s: f64) -> SimTime {
        assert!(s.is_finite() && s >= 0.0, "invalid time {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// As floating-point seconds (for reporting and models).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanosecond count.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, o: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(o.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, o: SimTime) -> SimTime {
        SimTime(self.0 + o.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, o: SimTime) {
        self.0 += o.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, o: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(o.0).expect("negative SimTime"))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        let t = SimTime::from_secs_f64(1.25);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(1);
        assert_eq!((a + b).as_secs_f64(), 4.0);
        assert_eq!((a - b).as_secs_f64(), 2.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_secs(4));
    }

    #[test]
    #[should_panic]
    fn negative_subtraction_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    #[should_panic]
    fn negative_seconds_panics() {
        let _ = SimTime::from_secs_f64(-0.5);
    }
}
