//! Background-traffic models for shared links.
//!
//! The paper's testbeds (Gigabit LAN at ANL, the MREN ATM OC-3 WAN between
//! ANL and NCSA) are *shared* networks whose available bandwidth varies at
//! runtime. We model that as a background-utilization function
//! `u(t) ∈ [0, 1)`: at simulated time `t` a fraction `u(t)` of the link's raw
//! bandwidth is consumed by other users, and message latency grows
//! accordingly.
//!
//! Every model is a *pure function of time and seed* so simulations are
//! reproducible regardless of query order.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Deterministic background-utilization model of a shared link.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TrafficModel {
    /// Dedicated link: no background traffic ever.
    Quiet,
    /// Constant fractional utilization in `[0, 1)`.
    Constant { load: f64 },
    /// Sinusoidal "diurnal" load swinging between `base - amp` and
    /// `base + amp` with the given period.
    Diurnal {
        base: f64,
        amp: f64,
        period: SimTimeSerde,
    },
    /// Markov-style bursty traffic: time is divided into `slot` buckets; each
    /// bucket is "on" (utilization `high`) with probability `p_on`, otherwise
    /// `low`. Bucket states are derived by hashing `(seed, bucket)`, so the
    /// model is stationary, deterministic, and O(1) to query.
    Bursty {
        low: f64,
        high: f64,
        p_on: f64,
        slot: SimTimeSerde,
        seed: u64,
    },
    /// Piecewise-constant trace: `(start_time, load)` pairs sorted by time;
    /// load before the first point is `initial`.
    Trace {
        initial: f64,
        points: Vec<(SimTimeSerde, f64)>,
    },
}

/// Serde-friendly nanosecond wrapper (SimTime stored as u64 nanos).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimTimeSerde(pub u64);

impl From<SimTime> for SimTimeSerde {
    fn from(t: SimTime) -> Self {
        SimTimeSerde(t.as_nanos())
    }
}

impl From<SimTimeSerde> for SimTime {
    fn from(t: SimTimeSerde) -> Self {
        SimTime(t.0)
    }
}

/// SplitMix64 — tiny, high-quality hash for bucket randomization (also
/// the RNG behind [`crate::faults::FaultSchedule::generate`]).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn unit_hash(seed: u64, bucket: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(bucket.wrapping_add(0xA5A5_A5A5)));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl TrafficModel {
    /// Background utilization at time `t`, clamped to `[0, 0.99]` so a link
    /// always retains at least 1% of its bandwidth (a fully saturated shared
    /// link still drains, just very slowly — as real TCP flows do).
    pub fn utilization(&self, t: SimTime) -> f64 {
        let raw = match self {
            TrafficModel::Quiet => 0.0,
            TrafficModel::Constant { load } => *load,
            TrafficModel::Diurnal { base, amp, period } => {
                let p: SimTime = (*period).into();
                let phase = if p.as_nanos() == 0 {
                    0.0
                } else {
                    (t.as_nanos() % p.as_nanos()) as f64 / p.as_nanos() as f64
                };
                base + amp * (2.0 * std::f64::consts::PI * phase).sin()
            }
            TrafficModel::Bursty {
                low,
                high,
                p_on,
                slot,
                seed,
            } => {
                let s: SimTime = (*slot).into();
                let bucket = if s.as_nanos() == 0 {
                    0
                } else {
                    t.as_nanos() / s.as_nanos()
                };
                if unit_hash(*seed, bucket) < *p_on {
                    *high
                } else {
                    *low
                }
            }
            TrafficModel::Trace { initial, points } => {
                let mut load = *initial;
                for (pt, l) in points {
                    if SimTime::from(*pt) <= t {
                        load = *l;
                    } else {
                        break;
                    }
                }
                load
            }
        };
        raw.clamp(0.0, 0.99)
    }

    /// Mean utilization over `[t0, t1)` sampled at `n` points — used by
    /// tests and by the probe's ground-truth comparisons.
    pub fn mean_utilization(&self, t0: SimTime, t1: SimTime, n: usize) -> f64 {
        assert!(n > 0 && t1 > t0);
        let span = (t1 - t0).as_nanos();
        (0..n)
            .map(|i| {
                let t = SimTime(t0.as_nanos() + span * i as u64 / n as u64);
                self.utilization(t)
            })
            .sum::<f64>()
            / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_is_zero() {
        let m = TrafficModel::Quiet;
        assert_eq!(m.utilization(SimTime::ZERO), 0.0);
        assert_eq!(m.utilization(SimTime::from_secs(100)), 0.0);
    }

    #[test]
    fn constant_clamped() {
        let m = TrafficModel::Constant { load: 0.5 };
        assert_eq!(m.utilization(SimTime::from_secs(3)), 0.5);
        let m = TrafficModel::Constant { load: 2.0 };
        assert_eq!(m.utilization(SimTime::ZERO), 0.99);
        let m = TrafficModel::Constant { load: -1.0 };
        assert_eq!(m.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn diurnal_oscillates_with_period() {
        let m = TrafficModel::Diurnal {
            base: 0.4,
            amp: 0.3,
            period: SimTime::from_secs(100).into(),
        };
        let quarter = m.utilization(SimTime::from_secs(25));
        assert!((quarter - 0.7).abs() < 1e-9);
        let three_quarter = m.utilization(SimTime::from_secs(75));
        assert!((three_quarter - 0.1).abs() < 1e-9);
        // periodicity
        assert!(
            (m.utilization(SimTime::from_secs(25)) - m.utilization(SimTime::from_secs(125))).abs()
                < 1e-9
        );
    }

    #[test]
    fn bursty_deterministic_and_two_valued() {
        let m = TrafficModel::Bursty {
            low: 0.1,
            high: 0.8,
            p_on: 0.5,
            slot: SimTime::from_secs(1).into(),
            seed: 42,
        };
        for s in 0..50 {
            let t = SimTime::from_millis(s * 500);
            let u = m.utilization(t);
            assert!(u == 0.1 || u == 0.8, "got {u}");
            assert_eq!(u, m.utilization(t), "same query same answer");
        }
        // p_on controls long-run fraction approximately
        let mean = m.mean_utilization(SimTime::ZERO, SimTime::from_secs(2000), 2000);
        assert!((mean - 0.45).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn bursty_constant_within_slot() {
        let m = TrafficModel::Bursty {
            low: 0.0,
            high: 0.9,
            p_on: 0.5,
            slot: SimTime::from_secs(10).into(),
            seed: 7,
        };
        let a = m.utilization(SimTime::from_secs(20));
        let b = m.utilization(SimTime::from_secs(29));
        assert_eq!(a, b);
    }

    #[test]
    fn trace_steps() {
        let m = TrafficModel::Trace {
            initial: 0.1,
            points: vec![
                (SimTime::from_secs(10).into(), 0.7),
                (SimTime::from_secs(20).into(), 0.2),
            ],
        };
        assert_eq!(m.utilization(SimTime::from_secs(5)), 0.1);
        assert_eq!(m.utilization(SimTime::from_secs(10)), 0.7);
        assert_eq!(m.utilization(SimTime::from_secs(15)), 0.7);
        assert_eq!(m.utilization(SimTime::from_secs(25)), 0.2);
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| TrafficModel::Bursty {
            low: 0.0,
            high: 0.9,
            p_on: 0.5,
            slot: SimTime::from_secs(1).into(),
            seed,
        };
        let a = mk(1);
        let b = mk(2);
        let same = (0..100)
            .filter(|&s| {
                a.utilization(SimTime::from_secs(s)) == b.utilization(SimTime::from_secs(s))
            })
            .count();
        assert!(same < 100, "seeds produced identical traces");
    }
}
