//! # topology — distributed-system description substrate
//!
//! Models the hardware side of the paper's experiments: processors with
//! relative performance weights, homogeneous *groups* joined by dedicated
//! intra-networks, shared inter-group links with the `T = α + β·L` timing
//! model, deterministic dynamic background traffic, and NWS-lite α/β probes.

pub mod faults;
pub mod link;
pub mod presets;
pub mod probe;
pub mod system;
pub mod time;
pub mod traffic;

pub use faults::{
    FaultKind, FaultSchedule, FaultWindow, LinkHealth, ProcFaultSchedule, ProcFaultWindow,
};
pub use link::Link;
pub use probe::{probe_link, LinkEstimator, ProbeError, ProbeSample, MIN_BETA};
pub use system::{
    DistributedSystem, Group, GroupId, ProcId, Processor, SystemBuilder, TierTopology,
};
pub use time::SimTime;
pub use traffic::TrafficModel;
