//! Network links with the paper's `T = α + β·L` timing model plus dynamic
//! background traffic.

use crate::faults::{FaultSchedule, LinkHealth};
use crate::time::SimTime;
use crate::traffic::TrafficModel;
use serde::{Deserialize, Serialize};

/// A (possibly shared) network link.
///
/// Transfer time for `L` bytes starting at time `t` is
/// `α + L / (B · (1 − u(t)))` where `α` is the latency, `B` the raw
/// bandwidth and `u(t)` the background utilization — i.e. the paper's
/// `T = α + β·L` with an *effective* `β` that varies with network load.
///
/// ```
/// use topology::{Link, SimTime, TrafficModel};
/// // an OC-3-class WAN at 60% background load
/// let wan = Link::shared(
///     "OC-3",
///     SimTime::from_millis(6),
///     19.375e6,
///     TrafficModel::Constant { load: 0.6 },
/// );
/// let t = wan.transfer_time(SimTime::ZERO, 1_000_000);
/// // 6 ms latency + 1 MB over the remaining 40% of 19.375 MB/s
/// assert!((t.as_secs_f64() - (0.006 + 1e6 / (19.375e6 * 0.4))).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Human-readable name for reports ("MREN OC-3", "GigE", …).
    pub name: String,
    /// One-way message latency α.
    pub latency: SimTimeNanos,
    /// Raw bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Background traffic on the link (Quiet for dedicated links).
    pub traffic: TrafficModel,
    /// Fault timeline (empty for a fault-free link; `#[serde(default)]`
    /// keeps pre-fault configurations loadable).
    #[serde(default)]
    pub faults: FaultSchedule,
}

/// Serde-friendly nanosecond count for latencies.
pub type SimTimeNanos = u64;

impl Link {
    /// Construct a dedicated (quiet) link.
    pub fn dedicated(name: &str, latency: SimTime, bandwidth: f64) -> Link {
        Link {
            name: name.to_string(),
            latency: latency.as_nanos(),
            bandwidth,
            traffic: TrafficModel::Quiet,
            faults: FaultSchedule::none(),
        }
    }

    /// Construct a shared link with the given traffic model.
    pub fn shared(name: &str, latency: SimTime, bandwidth: f64, traffic: TrafficModel) -> Link {
        Link {
            name: name.to_string(),
            latency: latency.as_nanos(),
            bandwidth,
            traffic,
            faults: FaultSchedule::none(),
        }
    }

    /// Builder: attach a fault schedule.
    pub fn with_faults(mut self, faults: FaultSchedule) -> Link {
        self.faults = faults;
        self
    }

    /// Instantaneous health of the link at time `t`.
    pub fn health_at(&self, t: SimTime) -> LinkHealth {
        self.faults.health_at(t)
    }

    /// Latency α as [`SimTime`].
    pub fn alpha(&self) -> SimTime {
        SimTime(self.latency)
    }

    /// Effective bandwidth (bytes/s) at time `t` after background traffic
    /// and any active bandwidth-collapse fault.
    pub fn effective_bandwidth(&self, t: SimTime) -> f64 {
        self.bandwidth * (1.0 - self.traffic.utilization(t)) * self.faults.slowdown_factor_at(t)
    }

    /// Effective per-byte transfer rate β (s/byte) at time `t`.
    pub fn beta(&self, t: SimTime) -> f64 {
        1.0 / self.effective_bandwidth(t)
    }

    /// Time to move `bytes` across the link starting at `t`:
    /// `α + β(t) · bytes`.
    pub fn transfer_time(&self, t: SimTime, bytes: u64) -> SimTime {
        let secs = self.alpha().as_secs_f64() + bytes as f64 * self.beta(t);
        SimTime::from_secs_f64(secs)
    }

    /// Per-message software overhead used for collectives over this link
    /// (half the latency — a standard LogP-style approximation).
    pub fn overhead(&self) -> SimTime {
        SimTime(self.latency / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedicated_transfer_matches_alpha_beta() {
        // α = 1 ms, B = 1e6 B/s ⇒ 1e6 bytes take 1.001 s
        let l = Link::dedicated("test", SimTime::from_millis(1), 1e6);
        let t = l.transfer_time(SimTime::ZERO, 1_000_000);
        assert!((t.as_secs_f64() - 1.001).abs() < 1e-9);
        // zero bytes still pay latency
        assert_eq!(l.transfer_time(SimTime::ZERO, 0), SimTime::from_millis(1));
    }

    #[test]
    fn background_traffic_slows_transfers() {
        let quiet = Link::dedicated("q", SimTime::ZERO, 1e6);
        let busy = Link::shared(
            "b",
            SimTime::ZERO,
            1e6,
            TrafficModel::Constant { load: 0.5 },
        );
        let tq = quiet.transfer_time(SimTime::ZERO, 1_000_000);
        let tb = busy.transfer_time(SimTime::ZERO, 1_000_000);
        assert!((tq.as_secs_f64() - 1.0).abs() < 1e-9);
        assert!((tb.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn beta_varies_with_time() {
        let l = Link::shared(
            "trace",
            SimTime::ZERO,
            1e8,
            TrafficModel::Trace {
                initial: 0.0,
                points: vec![(SimTime::from_secs(10).into(), 0.9)],
            },
        );
        assert!(l.beta(SimTime::from_secs(0)) < l.beta(SimTime::from_secs(10)));
        let ratio = l.beta(SimTime::from_secs(10)) / l.beta(SimTime::from_secs(0));
        assert!((ratio - 10.0).abs() < 1e-9);
    }

    #[test]
    fn slowdown_fault_collapses_bandwidth() {
        use crate::faults::{FaultKind, FaultSchedule};
        let l = Link::dedicated("f", SimTime::ZERO, 1e6).with_faults(
            FaultSchedule::none().with_window(
                SimTime::from_secs(10),
                SimTime::from_secs(20),
                FaultKind::Slowdown { factor: 0.1 },
            ),
        );
        let before = l.transfer_time(SimTime::ZERO, 1_000_000);
        let during = l.transfer_time(SimTime::from_secs(15), 1_000_000);
        assert!((before.as_secs_f64() - 1.0).abs() < 1e-9);
        assert!((during.as_secs_f64() - 10.0).abs() < 1e-9);
        use crate::faults::LinkHealth;
        assert_eq!(l.health_at(SimTime::ZERO), LinkHealth::Up);
        assert_eq!(
            l.health_at(SimTime::from_secs(15)),
            LinkHealth::Slow { factor: 0.1 }
        );
    }

    #[test]
    fn overhead_is_half_latency() {
        let l = Link::dedicated("x", SimTime::from_micros(10), 1e9);
        assert_eq!(l.overhead(), SimTime::from_micros(5));
    }
}
