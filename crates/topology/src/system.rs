//! Distributed-system description: processors, groups, and the links between
//! them.
//!
//! Following §4.1 of the paper, a **group** is a set of processors with the
//! same performance sharing an intra-connected (dedicated) network — a
//! shared-memory machine, an MPP, or a workstation cluster. A **distributed
//! system** is two or more groups joined by (typically shared) inter-group
//! links. Communication within a group is *local*; between groups it is
//! *remote*.

use crate::link::Link;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Global processor index (dense, `0..nprocs`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct ProcId(pub usize);

/// Group index (dense, `0..ngroups`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct GroupId(pub usize);

/// One processor of the distributed system.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Processor {
    pub id: ProcId,
    pub group: GroupId,
    /// Relative performance weight (1.0 = reference processor). The paper's
    /// mechanism for processor heterogeneity (§4): workload is distributed
    /// proportionally to these weights.
    pub weight: f64,
}

/// A homogeneous set of processors sharing a dedicated intra-network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Group {
    pub id: GroupId,
    pub name: String,
    pub procs: Vec<ProcId>,
    pub intra: Link,
}

impl Group {
    /// Number of processors in the group (`n_g`).
    pub fn nprocs(&self) -> usize {
        self.procs.len()
    }
}

/// Hierarchical inter-group connectivity for federation-scale systems:
/// instead of an explicit link per group pair (O(G²) storage, and O(G²)
/// builder work), each group carries a `(region, site)` coordinate and the
/// link between two groups is resolved from the lowest tier they share —
/// the site LAN when co-located, the region MAN across sites, and the
/// per-region-pair WAN across regions. Links are stateless (background
/// traffic is a pure function of time and seed), so sharing one [`Link`]
/// across every pair it serves is sound; the simulator still contends
/// traffic per group pair.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TierTopology {
    /// `(region, site)` coordinate per group, indexed by group id.
    pub coords: Vec<(usize, usize)>,
    /// LAN joining the groups of one site, keyed by `(region, site)`.
    pub site_links: BTreeMap<(usize, usize), Link>,
    /// MAN joining the sites of one region, keyed by region.
    pub region_links: BTreeMap<usize, Link>,
    /// WAN joining two regions, keyed by unordered `(min, max)` region pair.
    pub wan_links: BTreeMap<(usize, usize), Link>,
}

impl TierTopology {
    /// The link serving the pair of groups `a`/`b` (panics when the needed
    /// tier link is missing — [`SystemBuilder::build`] validates coverage).
    pub fn link_for(&self, a: usize, b: usize) -> &Link {
        let (ra, sa) = self.coords[a];
        let (rb, sb) = self.coords[b];
        if ra == rb && sa == sb {
            self.site_links
                .get(&(ra, sa))
                .unwrap_or_else(|| panic!("no site link for region {ra} site {sa}"))
        } else if ra == rb {
            self.region_links
                .get(&ra)
                .unwrap_or_else(|| panic!("no region link for region {ra}"))
        } else {
            let key = (ra.min(rb), ra.max(rb));
            self.wan_links
                .get(&key)
                .unwrap_or_else(|| panic!("no wan link for regions {key:?}"))
        }
    }
}

/// A distributed system: groups of processors plus inter-group links.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DistributedSystem {
    groups: Vec<Group>,
    procs: Vec<Processor>,
    /// Inter-group links keyed by unordered `(min, max)` group pair.
    inter: BTreeMap<(usize, usize), Link>,
    /// Tiered connectivity backing the pairs `inter` does not list
    /// (federation-scale systems; absent for the explicit-map presets).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    tiers: Option<TierTopology>,
}

impl DistributedSystem {
    /// Number of processors.
    pub fn nprocs(&self) -> usize {
        self.procs.len()
    }

    /// Number of groups.
    pub fn ngroups(&self) -> usize {
        self.groups.len()
    }

    /// All processors.
    pub fn procs(&self) -> &[Processor] {
        &self.procs
    }

    /// All groups.
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// A processor by id.
    pub fn proc(&self, p: ProcId) -> &Processor {
        &self.procs[p.0]
    }

    /// A group by id.
    pub fn group(&self, g: GroupId) -> &Group {
        &self.groups[g.0]
    }

    /// The group a processor belongs to.
    pub fn group_of(&self, p: ProcId) -> GroupId {
        self.procs[p.0].group
    }

    /// Are two processors in the same group (local communication)?
    pub fn same_group(&self, a: ProcId, b: ProcId) -> bool {
        self.group_of(a) == self.group_of(b)
    }

    /// The link used between two processors: the source group's intra link
    /// when they are co-located, otherwise the inter-group link.
    pub fn link_between(&self, a: ProcId, b: ProcId) -> &Link {
        let ga = self.group_of(a);
        let gb = self.group_of(b);
        if ga == gb {
            &self.groups[ga.0].intra
        } else {
            self.inter_link(ga, gb)
        }
    }

    /// The inter-group link between `a` and `b` (panics if absent or a == b).
    /// An explicit per-pair link wins; otherwise the tier hierarchy resolves
    /// the pair to its lowest shared tier.
    pub fn inter_link(&self, a: GroupId, b: GroupId) -> &Link {
        assert_ne!(a, b, "no inter link within a group");
        let key = (a.0.min(b.0), a.0.max(b.0));
        if let Some(l) = self.inter.get(&key) {
            return l;
        }
        if let Some(tiers) = &self.tiers {
            return tiers.link_for(a.0, b.0);
        }
        panic!("groups {a:?} and {b:?} are not connected")
    }

    /// The tier hierarchy, when this system uses one.
    pub fn tiers(&self) -> Option<&TierTopology> {
        self.tiers.as_ref()
    }

    /// Point-to-point transfer time at `t` for `bytes` from `a` to `b`
    /// (zero when `a == b`: same address space).
    pub fn transfer_time(&self, t: SimTime, a: ProcId, b: ProcId, bytes: u64) -> SimTime {
        if a == b {
            return SimTime::ZERO;
        }
        self.link_between(a, b).transfer_time(t, bytes)
    }

    /// Total relative compute power `P = Σ weights` (the denominator of the
    /// paper's efficiency metric).
    pub fn total_power(&self) -> f64 {
        self.procs.iter().map(|p| p.weight).sum()
    }

    /// Group compute power `n_g · p_g` — the proportional share used by the
    /// global redistribution phase.
    pub fn group_power(&self, g: GroupId) -> f64 {
        self.groups[g.0]
            .procs
            .iter()
            .map(|p| self.procs[p.0].weight)
            .sum()
    }

    /// Processor ids of a group.
    pub fn procs_in(&self, g: GroupId) -> &[ProcId] {
        &self.groups[g.0].procs
    }

    /// Short description like `"ANL(4) + NCSA(4) over MREN OC-3"`. A
    /// federation-scale system is summarized rather than enumerated.
    pub fn describe(&self) -> String {
        if self.groups.len() > 8 {
            let regions = self
                .tiers
                .as_ref()
                .map(|t| {
                    let mut rs: Vec<usize> = t.coords.iter().map(|&(r, _)| r).collect();
                    rs.sort_unstable();
                    rs.dedup();
                    rs.len()
                })
                .unwrap_or(0);
            return if regions > 0 {
                format!(
                    "{} groups / {} procs in {} regions",
                    self.groups.len(),
                    self.procs.len(),
                    regions
                )
            } else {
                format!("{} groups / {} procs", self.groups.len(), self.procs.len())
            };
        }
        let parts: Vec<String> = self
            .groups
            .iter()
            .map(|g| format!("{}({})", g.name, g.nprocs()))
            .collect();
        let link = self
            .inter
            .values()
            .next()
            .map(|l| format!(" over {}", l.name))
            .unwrap_or_default();
        format!("{}{}", parts.join(" + "), link)
    }
}

/// Builder for [`DistributedSystem`].
#[derive(Default)]
pub struct SystemBuilder {
    groups: Vec<(String, usize, f64, Link)>,
    inter: Vec<(usize, usize, Link)>,
    tiers: Option<TierTopology>,
}

impl SystemBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a group of `n` processors named `name`, each of relative
    /// performance `weight`, joined by `intra`.
    pub fn group(mut self, name: &str, n: usize, weight: f64, intra: Link) -> Self {
        assert!(n > 0, "empty group");
        assert!(weight > 0.0, "non-positive weight");
        self.groups.push((name.to_string(), n, weight, intra));
        self
    }

    /// Connect groups `a` and `b` (indices in insertion order) with `link`.
    pub fn connect(mut self, a: usize, b: usize, link: Link) -> Self {
        self.inter.push((a, b, link));
        self
    }

    /// Back the system with a tier hierarchy: pairs without an explicit
    /// [`connect`](Self::connect) resolve through `tiers` instead, and the
    /// all-pairs completeness requirement is waived (the hierarchy must
    /// still cover every unconnected pair — `build` validates that).
    pub fn tiers(mut self, tiers: TierTopology) -> Self {
        self.tiers = Some(tiers);
        self
    }

    /// Finalize. Panics if any pair of groups lacks a link.
    pub fn build(self) -> DistributedSystem {
        assert!(!self.groups.is_empty(), "no groups");
        let mut procs = Vec::new();
        let mut groups = Vec::new();
        for (gi, (name, n, weight, intra)) in self.groups.into_iter().enumerate() {
            let gid = GroupId(gi);
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                let pid = ProcId(procs.len());
                procs.push(Processor {
                    id: pid,
                    group: gid,
                    weight,
                });
                ids.push(pid);
            }
            groups.push(Group {
                id: gid,
                name,
                procs: ids,
                intra,
            });
        }
        let mut inter = BTreeMap::new();
        for (a, b, link) in self.inter {
            assert!(a < groups.len() && b < groups.len() && a != b, "bad connect({a},{b})");
            inter.insert((a.min(b), a.max(b)), link);
        }
        // every distinct pair must be connected: explicitly, or through
        // the tier hierarchy when one is configured
        if let Some(tiers) = &self.tiers {
            assert_eq!(
                tiers.coords.len(),
                groups.len(),
                "tier coords must cover every group"
            );
            for a in 0..groups.len() {
                for b in (a + 1)..groups.len() {
                    if !inter.contains_key(&(a, b)) {
                        // panics with the missing tier if uncovered
                        let _ = tiers.link_for(a, b);
                    }
                }
            }
        } else {
            for a in 0..groups.len() {
                for b in (a + 1)..groups.len() {
                    assert!(
                        inter.contains_key(&(a, b)),
                        "groups {a} and {b} are not connected"
                    );
                }
            }
        }
        DistributedSystem {
            groups,
            procs,
            inter,
            tiers: self.tiers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn two_group_system() -> DistributedSystem {
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 3e8);
        let wan = Link::dedicated("wan", SimTime::from_millis(5), 2e7);
        SystemBuilder::new()
            .group("A", 4, 1.0, intra.clone())
            .group("B", 2, 2.0, intra)
            .connect(0, 1, wan)
            .build()
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let s = two_group_system();
        assert_eq!(s.nprocs(), 6);
        assert_eq!(s.ngroups(), 2);
        assert_eq!(s.group_of(ProcId(0)), GroupId(0));
        assert_eq!(s.group_of(ProcId(3)), GroupId(0));
        assert_eq!(s.group_of(ProcId(4)), GroupId(1));
        assert_eq!(s.procs_in(GroupId(1)), &[ProcId(4), ProcId(5)]);
    }

    #[test]
    fn powers() {
        let s = two_group_system();
        assert_eq!(s.group_power(GroupId(0)), 4.0);
        assert_eq!(s.group_power(GroupId(1)), 4.0);
        assert_eq!(s.total_power(), 8.0);
    }

    #[test]
    fn link_selection_local_vs_remote() {
        let s = two_group_system();
        assert_eq!(s.link_between(ProcId(0), ProcId(1)).name, "intra");
        assert_eq!(s.link_between(ProcId(0), ProcId(4)).name, "wan");
        assert!(s.same_group(ProcId(0), ProcId(3)));
        assert!(!s.same_group(ProcId(3), ProcId(4)));
    }

    #[test]
    fn transfer_times() {
        let s = two_group_system();
        // self transfer free
        assert_eq!(
            s.transfer_time(SimTime::ZERO, ProcId(2), ProcId(2), 1 << 20),
            SimTime::ZERO
        );
        let local = s.transfer_time(SimTime::ZERO, ProcId(0), ProcId(1), 1 << 20);
        let remote = s.transfer_time(SimTime::ZERO, ProcId(0), ProcId(4), 1 << 20);
        assert!(remote > local, "remote {remote:?} <= local {local:?}");
    }

    #[test]
    #[should_panic]
    fn unconnected_groups_panic() {
        let intra = Link::dedicated("intra", SimTime::ZERO, 1e9);
        let _ = SystemBuilder::new()
            .group("A", 1, 1.0, intra.clone())
            .group("B", 1, 1.0, intra)
            .build();
    }

    fn tiny_tiers() -> TierTopology {
        let mut site_links = BTreeMap::new();
        site_links.insert((0, 0), Link::dedicated("lan00", SimTime::from_micros(100), 1e8));
        site_links.insert((0, 1), Link::dedicated("lan01", SimTime::from_micros(100), 1e8));
        site_links.insert((1, 0), Link::dedicated("lan10", SimTime::from_micros(100), 1e8));
        let mut region_links = BTreeMap::new();
        region_links.insert(0, Link::dedicated("man0", SimTime::from_millis(1), 5e7));
        region_links.insert(1, Link::dedicated("man1", SimTime::from_millis(1), 5e7));
        let mut wan_links = BTreeMap::new();
        wan_links.insert((0, 1), Link::dedicated("wan01", SimTime::from_millis(6), 2e7));
        TierTopology {
            // groups 0,1 share region 0 / site 0; group 2 is region 0 /
            // site 1; group 3 is region 1 / site 0
            coords: vec![(0, 0), (0, 0), (0, 1), (1, 0)],
            site_links,
            region_links,
            wan_links,
        }
    }

    fn tiered_system() -> DistributedSystem {
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 3e8);
        SystemBuilder::new()
            .group("G0", 2, 1.0, intra.clone())
            .group("G1", 2, 1.0, intra.clone())
            .group("G2", 2, 1.0, intra.clone())
            .group("G3", 2, 1.0, intra)
            .tiers(tiny_tiers())
            .build()
    }

    #[test]
    fn tiers_resolve_lowest_shared_tier() {
        let s = tiered_system();
        assert_eq!(s.inter_link(GroupId(0), GroupId(1)).name, "lan00");
        assert_eq!(s.inter_link(GroupId(0), GroupId(2)).name, "man0");
        assert_eq!(s.inter_link(GroupId(2), GroupId(3)).name, "wan01");
        assert_eq!(s.inter_link(GroupId(3), GroupId(0)).name, "wan01");
    }

    #[test]
    fn explicit_connect_overrides_tiers() {
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 3e8);
        let direct = Link::dedicated("direct", SimTime::from_micros(50), 2e8);
        let s = SystemBuilder::new()
            .group("G0", 1, 1.0, intra.clone())
            .group("G1", 1, 1.0, intra.clone())
            .group("G2", 1, 1.0, intra.clone())
            .group("G3", 1, 1.0, intra)
            .connect(0, 1, direct)
            .tiers(tiny_tiers())
            .build();
        assert_eq!(s.inter_link(GroupId(0), GroupId(1)).name, "direct");
        assert_eq!(s.inter_link(GroupId(0), GroupId(2)).name, "man0");
    }

    #[test]
    #[should_panic]
    fn tiers_missing_coverage_panics() {
        let intra = Link::dedicated("intra", SimTime::ZERO, 1e9);
        let mut tiers = tiny_tiers();
        tiers.wan_links.clear(); // groups 0..3 span regions 0 and 1
        let _ = SystemBuilder::new()
            .group("G0", 1, 1.0, intra.clone())
            .group("G1", 1, 1.0, intra.clone())
            .group("G2", 1, 1.0, intra.clone())
            .group("G3", 1, 1.0, intra)
            .tiers(tiers)
            .build();
    }

    #[test]
    fn describe_mentions_groups_and_link() {
        let s = two_group_system();
        let d = s.describe();
        assert!(d.contains("A(4)"));
        assert!(d.contains("B(2)"));
        assert!(d.contains("wan"));
    }
}
