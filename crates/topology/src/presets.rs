//! Testbed presets mirroring the systems of the paper's evaluation (§3, §5).
//!
//! * 250 MHz R10000 SGI Origin2000 machines at ANL and NCSA;
//! * a fiber Gigabit-Ethernet LAN joining two machines at ANL;
//! * the MREN ATM OC-3 WAN joining ANL and NCSA.
//!
//! Both experiment networks were *shared*; the presets attach bursty
//! background-traffic models with magnitudes chosen to match the paper's
//! observation that remote communication dominates on the WAN.

use crate::link::Link;
use crate::system::{DistributedSystem, SystemBuilder, TierTopology};
use crate::time::SimTime;
use crate::traffic::TrafficModel;
use std::collections::BTreeMap;

/// Origin2000 intra-machine interconnect (CrayLink-class): a dedicated,
/// low-latency, high-bandwidth link. MPI-visible numbers, not raw hardware.
pub fn origin2000_intra() -> Link {
    Link::dedicated("Origin2000", SimTime::from_micros(15), 250e6)
}

/// Fiber Gigabit Ethernet LAN between two machines at ANL (shared).
pub fn gige_lan(seed: u64) -> Link {
    Link::shared(
        "GigE LAN",
        SimTime::from_micros(120),
        125e6, // 1 Gb/s
        TrafficModel::Bursty {
            low: 0.10,
            high: 0.55,
            p_on: 0.35,
            slot: SimTime::from_secs(2).into(),
            seed,
        },
    )
}

/// MREN ATM OC-3 WAN between ANL and NCSA (shared, high latency).
pub fn mren_oc3_wan(seed: u64) -> Link {
    Link::shared(
        "MREN OC-3",
        SimTime::from_millis(6),
        19.375e6, // 155 Mb/s
        TrafficModel::Bursty {
            low: 0.25,
            high: 0.75,
            p_on: 0.45,
            slot: SimTime::from_secs(5).into(),
            seed,
        },
    )
}

/// A single parallel machine of `n` Origin2000 processors — the paper's
/// "parallel system" baseline in §3 (one group, intra network only).
pub fn single_origin2000(n: usize) -> DistributedSystem {
    SystemBuilder::new()
        .group("ANL", n, 1.0, origin2000_intra())
        .build()
}

/// Two Origin2000s at ANL over the shared Gigabit LAN (`AMR64` testbed).
pub fn anl_lan_pair(na: usize, nb: usize, seed: u64) -> DistributedSystem {
    SystemBuilder::new()
        .group("ANL-1", na, 1.0, origin2000_intra())
        .group("ANL-2", nb, 1.0, origin2000_intra())
        .connect(0, 1, gige_lan(seed))
        .build()
}

/// ANL + NCSA Origin2000s over the MREN OC-3 WAN (`ShockPool3D` testbed).
pub fn anl_ncsa_wan(na: usize, nb: usize, seed: u64) -> DistributedSystem {
    SystemBuilder::new()
        .group("ANL", na, 1.0, origin2000_intra())
        .group("NCSA", nb, 1.0, origin2000_intra())
        .connect(0, 1, mren_oc3_wan(seed))
        .build()
}

/// Three-site extension: ANL + NCSA over MREN OC-3 plus a third site
/// reachable from both over a slower, busier vBNS-class path. Exercises the
/// multi-group paths of the DLB (the paper's scheme generalizes beyond two
/// groups).
pub fn three_site_wan(na: usize, nb: usize, nc: usize, seed: u64) -> DistributedSystem {
    let slow_wan = |seed: u64| {
        Link::shared(
            "vBNS",
            SimTime::from_millis(12),
            12e6,
            TrafficModel::Bursty {
                low: 0.3,
                high: 0.8,
                p_on: 0.5,
                slot: SimTime::from_secs(4).into(),
                seed,
            },
        )
    };
    SystemBuilder::new()
        .group("ANL", na, 1.0, origin2000_intra())
        .group("NCSA", nb, 1.0, origin2000_intra())
        .group("SDSC", nc, 1.0, origin2000_intra())
        .connect(0, 1, mren_oc3_wan(seed))
        .connect(0, 2, slow_wan(seed ^ 0x5555))
        .connect(1, 2, slow_wan(seed ^ 0xAAAA))
        .build()
}

/// ANL + NCSA WAN whose inter-link carries a seeded fault schedule
/// (outages, blackholes, slowdowns, large-message drops) on top of the
/// usual bursty background traffic — the robustness testbed.
pub fn faulty_anl_ncsa_wan(
    na: usize,
    nb: usize,
    seed: u64,
    horizon: SimTime,
) -> DistributedSystem {
    use crate::faults::FaultSchedule;
    let wan = mren_oc3_wan(seed).with_faults(FaultSchedule::generate(
        seed,
        horizon,
        SimTime::from_secs(60),
        SimTime::from_secs(8),
    ));
    SystemBuilder::new()
        .group("ANL", na, 1.0, origin2000_intra())
        .group("NCSA", nb, 1.0, origin2000_intra())
        .connect(0, 1, wan)
        .build()
}

/// Groups per site and sites per region of the [`federation`] generator —
/// also the arity of the hierarchical decision tree's natural alignment:
/// group ids are assigned site-major, so a contiguous id range is a site
/// (or a region) and subtree traffic stays on the cheap low tiers.
pub const FEDERATION_FANOUT: usize = 8;

/// SplitMix64 — the deterministic per-entity seed/weight mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Metro-area network joining the sites of one region: an order of
/// magnitude slower than the site LAN, an order faster than the WAN.
fn metro_man(seed: u64) -> Link {
    Link::shared(
        "Metro MAN",
        SimTime::from_millis(1),
        50e6,
        TrafficModel::Bursty {
            low: 0.15,
            high: 0.60,
            p_on: 0.40,
            slot: SimTime::from_secs(3).into(),
            seed,
        },
    )
}

/// Federation-scale preset (seeded, deterministic): `ngroups` groups of
/// `procs_per_group` processors arranged site→region→federation, with
/// [`FEDERATION_FANOUT`] groups per site and sites per region. Every site
/// shares a GigE-class LAN, every region a metro MAN, and every region
/// pair an OC-3-class WAN — all with seeded bursty background traffic —
/// and each group's processors carry a heterogeneous weight in
/// [0.75, 1.25) derived from the seed. Group ids are site-major, so a
/// contiguous id range maps to a site or region and the storage stays
/// O(G) via [`TierTopology`] instead of an O(G²) explicit link map.
pub fn federation(ngroups: usize, procs_per_group: usize, seed: u64) -> DistributedSystem {
    assert!(ngroups > 0 && procs_per_group > 0, "empty federation");
    let mut coords = Vec::with_capacity(ngroups);
    let mut site_links = BTreeMap::new();
    let mut region_links = BTreeMap::new();
    let mut wan_links = BTreeMap::new();
    let mut b = SystemBuilder::new();
    for g in 0..ngroups {
        let site_global = g / FEDERATION_FANOUT;
        let region = site_global / FEDERATION_FANOUT;
        let site = site_global % FEDERATION_FANOUT;
        coords.push((region, site));
        site_links
            .entry((region, site))
            .or_insert_with(|| gige_lan(mix(seed ^ 0x5349_5445).wrapping_add(site_global as u64)));
        region_links
            .entry(region)
            .or_insert_with(|| metro_man(mix(seed ^ 0x5245_4749).wrapping_add(region as u64)));
        let weight = 0.75 + 0.5 * (mix(seed.wrapping_add(g as u64)) % 1000) as f64 / 1000.0;
        b = b.group(
            &format!("R{region}S{site}G{g}"),
            procs_per_group,
            weight,
            origin2000_intra(),
        );
    }
    let nregions = coords.iter().map(|&(r, _)| r).max().unwrap_or(0) + 1;
    for ra in 0..nregions {
        for rb in (ra + 1)..nregions {
            wan_links.insert(
                (ra, rb),
                mren_oc3_wan(mix(seed ^ 0x5741_4E00).wrapping_add((ra * 1024 + rb) as u64)),
            );
        }
    }
    b.tiers(TierTopology {
        coords,
        site_links,
        region_links,
        wan_links,
    })
    .build()
}

/// Heterogeneous extension: `nb` processors in group B run at `rel` times the
/// speed of group A's (exercises the weight-proportional code path the paper
/// describes but could not test on its homogeneous testbeds).
pub fn heterogeneous_wan(na: usize, nb: usize, rel: f64, seed: u64) -> DistributedSystem {
    SystemBuilder::new()
        .group("Site-A", na, 1.0, origin2000_intra())
        .group("Site-B", nb, rel, origin2000_intra())
        .connect(0, 1, mren_oc3_wan(seed))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{GroupId, ProcId};

    #[test]
    fn wan_slower_than_lan_slower_than_intra() {
        let t = SimTime::ZERO;
        let bytes = 1 << 20;
        let intra = origin2000_intra().transfer_time(t, bytes);
        let lan = gige_lan(1).transfer_time(t, bytes);
        let wan = mren_oc3_wan(1).transfer_time(t, bytes);
        assert!(intra < lan, "{intra:?} vs {lan:?}");
        assert!(lan < wan, "{lan:?} vs {wan:?}");
    }

    #[test]
    fn preset_systems_shape() {
        let s = anl_ncsa_wan(4, 4, 3);
        assert_eq!(s.nprocs(), 8);
        assert_eq!(s.ngroups(), 2);
        assert_eq!(s.inter_link(GroupId(0), GroupId(1)).name, "MREN OC-3");
        let p = single_origin2000(8);
        assert_eq!(p.ngroups(), 1);
        assert_eq!(p.nprocs(), 8);
    }

    #[test]
    fn heterogeneous_weights() {
        let s = heterogeneous_wan(4, 4, 2.0, 0);
        assert_eq!(s.group_power(GroupId(0)), 4.0);
        assert_eq!(s.group_power(GroupId(1)), 8.0);
        assert_eq!(s.proc(ProcId(6)).weight, 2.0);
        assert_eq!(s.total_power(), 12.0);
    }

    #[test]
    fn faulty_wan_preset_has_schedule() {
        let s = faulty_anl_ncsa_wan(2, 2, 9, SimTime::from_secs(600));
        let link = s.inter_link(GroupId(0), GroupId(1));
        assert!(!link.faults.is_quiet(), "seeded schedule should fault");
        // deterministic: same seed, same schedule
        let s2 = faulty_anl_ncsa_wan(2, 2, 9, SimTime::from_secs(600));
        assert_eq!(link.faults, s2.inter_link(GroupId(0), GroupId(1)).faults);
    }

    #[test]
    fn federation_shape_and_tiers() {
        let s = federation(130, 4, 7);
        assert_eq!(s.ngroups(), 130);
        assert_eq!(s.nprocs(), 520);
        // same site → LAN, same region / different site → MAN,
        // different region → WAN (ids are site-major, fanout 8)
        assert_eq!(s.inter_link(GroupId(0), GroupId(7)).name, "GigE LAN");
        assert_eq!(s.inter_link(GroupId(0), GroupId(8)).name, "Metro MAN");
        assert_eq!(s.inter_link(GroupId(0), GroupId(64)).name, "MREN OC-3");
        assert_eq!(s.inter_link(GroupId(129), GroupId(0)).name, "MREN OC-3");
    }

    #[test]
    fn federation_deterministic_and_heterogeneous() {
        let a = federation(20, 2, 11);
        let b = federation(20, 2, 11);
        let wa: Vec<f64> = a.procs().iter().map(|p| p.weight).collect();
        let wb: Vec<f64> = b.procs().iter().map(|p| p.weight).collect();
        assert_eq!(wa, wb, "same seed, same weights");
        let min = wa.iter().cloned().fold(f64::MAX, f64::min);
        let max = wa.iter().cloned().fold(0.0, f64::max);
        assert!((0.75..1.25).contains(&min));
        assert!(max < 1.25 && max > min, "weights heterogeneous: {min}..{max}");
        let c = federation(20, 2, 12);
        let wc: Vec<f64> = c.procs().iter().map(|p| p.weight).collect();
        assert_ne!(wa, wc, "different seed, different weights");
    }

    #[test]
    fn shared_links_fluctuate() {
        let l = mren_oc3_wan(11);
        let betas: Vec<f64> = (0..40)
            .map(|i| l.beta(SimTime::from_secs(i * 5)))
            .collect();
        let min = betas.iter().cloned().fold(f64::MAX, f64::min);
        let max = betas.iter().cloned().fold(0.0, f64::max);
        assert!(max > min * 1.5, "WAN beta should vary: {min} .. {max}");
    }
}
