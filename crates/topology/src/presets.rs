//! Testbed presets mirroring the systems of the paper's evaluation (§3, §5).
//!
//! * 250 MHz R10000 SGI Origin2000 machines at ANL and NCSA;
//! * a fiber Gigabit-Ethernet LAN joining two machines at ANL;
//! * the MREN ATM OC-3 WAN joining ANL and NCSA.
//!
//! Both experiment networks were *shared*; the presets attach bursty
//! background-traffic models with magnitudes chosen to match the paper's
//! observation that remote communication dominates on the WAN.

use crate::link::Link;
use crate::system::{DistributedSystem, SystemBuilder};
use crate::time::SimTime;
use crate::traffic::TrafficModel;

/// Origin2000 intra-machine interconnect (CrayLink-class): a dedicated,
/// low-latency, high-bandwidth link. MPI-visible numbers, not raw hardware.
pub fn origin2000_intra() -> Link {
    Link::dedicated("Origin2000", SimTime::from_micros(15), 250e6)
}

/// Fiber Gigabit Ethernet LAN between two machines at ANL (shared).
pub fn gige_lan(seed: u64) -> Link {
    Link::shared(
        "GigE LAN",
        SimTime::from_micros(120),
        125e6, // 1 Gb/s
        TrafficModel::Bursty {
            low: 0.10,
            high: 0.55,
            p_on: 0.35,
            slot: SimTime::from_secs(2).into(),
            seed,
        },
    )
}

/// MREN ATM OC-3 WAN between ANL and NCSA (shared, high latency).
pub fn mren_oc3_wan(seed: u64) -> Link {
    Link::shared(
        "MREN OC-3",
        SimTime::from_millis(6),
        19.375e6, // 155 Mb/s
        TrafficModel::Bursty {
            low: 0.25,
            high: 0.75,
            p_on: 0.45,
            slot: SimTime::from_secs(5).into(),
            seed,
        },
    )
}

/// A single parallel machine of `n` Origin2000 processors — the paper's
/// "parallel system" baseline in §3 (one group, intra network only).
pub fn single_origin2000(n: usize) -> DistributedSystem {
    SystemBuilder::new()
        .group("ANL", n, 1.0, origin2000_intra())
        .build()
}

/// Two Origin2000s at ANL over the shared Gigabit LAN (`AMR64` testbed).
pub fn anl_lan_pair(na: usize, nb: usize, seed: u64) -> DistributedSystem {
    SystemBuilder::new()
        .group("ANL-1", na, 1.0, origin2000_intra())
        .group("ANL-2", nb, 1.0, origin2000_intra())
        .connect(0, 1, gige_lan(seed))
        .build()
}

/// ANL + NCSA Origin2000s over the MREN OC-3 WAN (`ShockPool3D` testbed).
pub fn anl_ncsa_wan(na: usize, nb: usize, seed: u64) -> DistributedSystem {
    SystemBuilder::new()
        .group("ANL", na, 1.0, origin2000_intra())
        .group("NCSA", nb, 1.0, origin2000_intra())
        .connect(0, 1, mren_oc3_wan(seed))
        .build()
}

/// Three-site extension: ANL + NCSA over MREN OC-3 plus a third site
/// reachable from both over a slower, busier vBNS-class path. Exercises the
/// multi-group paths of the DLB (the paper's scheme generalizes beyond two
/// groups).
pub fn three_site_wan(na: usize, nb: usize, nc: usize, seed: u64) -> DistributedSystem {
    let slow_wan = |seed: u64| {
        Link::shared(
            "vBNS",
            SimTime::from_millis(12),
            12e6,
            TrafficModel::Bursty {
                low: 0.3,
                high: 0.8,
                p_on: 0.5,
                slot: SimTime::from_secs(4).into(),
                seed,
            },
        )
    };
    SystemBuilder::new()
        .group("ANL", na, 1.0, origin2000_intra())
        .group("NCSA", nb, 1.0, origin2000_intra())
        .group("SDSC", nc, 1.0, origin2000_intra())
        .connect(0, 1, mren_oc3_wan(seed))
        .connect(0, 2, slow_wan(seed ^ 0x5555))
        .connect(1, 2, slow_wan(seed ^ 0xAAAA))
        .build()
}

/// ANL + NCSA WAN whose inter-link carries a seeded fault schedule
/// (outages, blackholes, slowdowns, large-message drops) on top of the
/// usual bursty background traffic — the robustness testbed.
pub fn faulty_anl_ncsa_wan(
    na: usize,
    nb: usize,
    seed: u64,
    horizon: SimTime,
) -> DistributedSystem {
    use crate::faults::FaultSchedule;
    let wan = mren_oc3_wan(seed).with_faults(FaultSchedule::generate(
        seed,
        horizon,
        SimTime::from_secs(60),
        SimTime::from_secs(8),
    ));
    SystemBuilder::new()
        .group("ANL", na, 1.0, origin2000_intra())
        .group("NCSA", nb, 1.0, origin2000_intra())
        .connect(0, 1, wan)
        .build()
}

/// Heterogeneous extension: `nb` processors in group B run at `rel` times the
/// speed of group A's (exercises the weight-proportional code path the paper
/// describes but could not test on its homogeneous testbeds).
pub fn heterogeneous_wan(na: usize, nb: usize, rel: f64, seed: u64) -> DistributedSystem {
    SystemBuilder::new()
        .group("Site-A", na, 1.0, origin2000_intra())
        .group("Site-B", nb, rel, origin2000_intra())
        .connect(0, 1, mren_oc3_wan(seed))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{GroupId, ProcId};

    #[test]
    fn wan_slower_than_lan_slower_than_intra() {
        let t = SimTime::ZERO;
        let bytes = 1 << 20;
        let intra = origin2000_intra().transfer_time(t, bytes);
        let lan = gige_lan(1).transfer_time(t, bytes);
        let wan = mren_oc3_wan(1).transfer_time(t, bytes);
        assert!(intra < lan, "{intra:?} vs {lan:?}");
        assert!(lan < wan, "{lan:?} vs {wan:?}");
    }

    #[test]
    fn preset_systems_shape() {
        let s = anl_ncsa_wan(4, 4, 3);
        assert_eq!(s.nprocs(), 8);
        assert_eq!(s.ngroups(), 2);
        assert_eq!(s.inter_link(GroupId(0), GroupId(1)).name, "MREN OC-3");
        let p = single_origin2000(8);
        assert_eq!(p.ngroups(), 1);
        assert_eq!(p.nprocs(), 8);
    }

    #[test]
    fn heterogeneous_weights() {
        let s = heterogeneous_wan(4, 4, 2.0, 0);
        assert_eq!(s.group_power(GroupId(0)), 4.0);
        assert_eq!(s.group_power(GroupId(1)), 8.0);
        assert_eq!(s.proc(ProcId(6)).weight, 2.0);
        assert_eq!(s.total_power(), 12.0);
    }

    #[test]
    fn faulty_wan_preset_has_schedule() {
        let s = faulty_anl_ncsa_wan(2, 2, 9, SimTime::from_secs(600));
        let link = s.inter_link(GroupId(0), GroupId(1));
        assert!(!link.faults.is_quiet(), "seeded schedule should fault");
        // deterministic: same seed, same schedule
        let s2 = faulty_anl_ncsa_wan(2, 2, 9, SimTime::from_secs(600));
        assert_eq!(link.faults, s2.inter_link(GroupId(0), GroupId(1)).faults);
    }

    #[test]
    fn shared_links_fluctuate() {
        let l = mren_oc3_wan(11);
        let betas: Vec<f64> = (0..40)
            .map(|i| l.beta(SimTime::from_secs(i * 5)))
            .collect();
        let min = betas.iter().cloned().fold(f64::MAX, f64::min);
        let max = betas.iter().cloned().fold(0.0, f64::max);
        assert!(max > min * 1.5, "WAN beta should vary: {min} .. {max}");
    }
}
