//! Deterministic link-fault schedules: outage windows, blackholed probes,
//! bandwidth collapse, and size-dependent drops.
//!
//! The paper's shared-WAN premise already models *slowdown* via
//! [`TrafficModel`](crate::traffic::TrafficModel); this module adds the
//! failure half of the story. A [`FaultSchedule`] is a list of half-open
//! time windows `[start, end)` during which a link misbehaves in one of
//! four ways ([`FaultKind`]). Like the traffic models, a schedule is a
//! *pure function of time and seed*: queries at the same time always agree,
//! so simulations stay reproducible regardless of query order.

use crate::time::SimTime;
use crate::traffic::{splitmix64, SimTimeSerde};
use serde::{Deserialize, Serialize};

/// What a link does wrong during a fault window.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Link is down: sends fail fast (the sender detects the dead peer
    /// after a round-trip's worth of waiting).
    Outage,
    /// Link silently swallows traffic: sends hang until their deadline.
    Blackhole,
    /// Bandwidth collapse: transfers succeed but effective bandwidth is
    /// multiplied by `factor` (e.g. 0.01 for a 100× collapse).
    Slowdown { factor: f64 },
    /// Transfers larger than `threshold_bytes` are cut partway through;
    /// small messages (probes, load reports) still get through.
    DropLarge { threshold_bytes: u64 },
}

/// One fault window `[start, end)` on a link's timeline.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    pub start: SimTimeSerde,
    pub end: SimTimeSerde,
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Does this window cover time `t`?
    pub fn contains(&self, t: SimTime) -> bool {
        SimTime::from(self.start) <= t && t < SimTime::from(self.end)
    }

    /// Does this window overlap the half-open span `[t0, t1)`?
    pub fn overlaps(&self, t0: SimTime, t1: SimTime) -> bool {
        SimTime::from(self.start) < t1 && t0 < SimTime::from(self.end)
    }
}

/// Instantaneous health of a link, derived from its schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkHealth {
    /// No active fault.
    Up,
    /// Outage in progress.
    Down,
    /// Blackhole in progress.
    Blackhole,
    /// Messages above the threshold are being dropped mid-flight.
    Lossy { threshold_bytes: u64 },
    /// Bandwidth collapsed by `factor`.
    Slow { factor: f64 },
}

impl LinkHealth {
    /// True when small control messages (probes, load reports) get through.
    pub fn passes_probes(&self) -> bool {
        !matches!(self, LinkHealth::Down | LinkHealth::Blackhole)
    }
}

/// A link's fault timeline. The default schedule is empty (a fault-free
/// link), so existing configurations deserialize unchanged.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    pub windows: Vec<FaultWindow>,
}

impl FaultSchedule {
    /// The fault-free schedule.
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// True when no fault window exists at all.
    pub fn is_quiet(&self) -> bool {
        self.windows.is_empty()
    }

    /// Builder: add one window `[start, end)`.
    pub fn with_window(mut self, start: SimTime, end: SimTime, kind: FaultKind) -> FaultSchedule {
        assert!(start < end, "fault window must have positive length");
        self.windows.push(FaultWindow {
            start: start.into(),
            end: end.into(),
            kind,
        });
        self
    }

    /// Health at time `t`. When windows overlap, the most severe fault
    /// wins: Outage > Blackhole > DropLarge > Slowdown.
    pub fn health_at(&self, t: SimTime) -> LinkHealth {
        let mut health = LinkHealth::Up;
        let mut rank = 0u8;
        for w in self.windows.iter().filter(|w| w.contains(t)) {
            let (r, h) = match w.kind {
                FaultKind::Outage => (4, LinkHealth::Down),
                FaultKind::Blackhole => (3, LinkHealth::Blackhole),
                FaultKind::DropLarge { threshold_bytes } => {
                    (2, LinkHealth::Lossy { threshold_bytes })
                }
                FaultKind::Slowdown { factor } => (1, LinkHealth::Slow { factor }),
            };
            if r > rank {
                rank = r;
                health = h;
            }
        }
        health
    }

    /// Combined bandwidth multiplier from all Slowdown windows active at
    /// `t` (1.0 when none). Factors compose multiplicatively and the
    /// result is floored at 1% so a slowed link still drains.
    pub fn slowdown_factor_at(&self, t: SimTime) -> f64 {
        let factor: f64 = self
            .windows
            .iter()
            .filter(|w| w.contains(t))
            .filter_map(|w| match w.kind {
                FaultKind::Slowdown { factor } => Some(factor),
                _ => None,
            })
            .product();
        factor.clamp(0.01, 1.0)
    }

    /// Earliest moment in `[t0, t1)` at which a transfer of `bytes` in
    /// flight over that span would be disrupted, with the responsible
    /// fault. Outage and Blackhole disrupt every transfer; `DropLarge`
    /// only those strictly larger than its threshold; `Slowdown` never
    /// disrupts (it is priced into the bandwidth instead).
    pub fn first_disruption_in(
        &self,
        t0: SimTime,
        t1: SimTime,
        bytes: u64,
    ) -> Option<(SimTime, FaultKind)> {
        self.windows
            .iter()
            .filter(|w| w.overlaps(t0, t1))
            .filter(|w| match w.kind {
                FaultKind::Outage | FaultKind::Blackhole => true,
                FaultKind::DropLarge { threshold_bytes } => bytes > threshold_bytes,
                FaultKind::Slowdown { .. } => false,
            })
            .map(|w| (SimTime::from(w.start).max(t0), w.kind))
            .min_by_key(|(t, _)| *t)
    }

    /// Generate a seeded, deterministic schedule over `[0, horizon)`:
    /// alternating up/down spans with exponentially distributed lengths
    /// (means `mean_up`/`mean_down`), each down span assigned a fault
    /// kind from the same RNG stream. Same seed ⇒ same schedule.
    pub fn generate(
        seed: u64,
        horizon: SimTime,
        mean_up: SimTime,
        mean_down: SimTime,
    ) -> FaultSchedule {
        assert!(mean_up > SimTime::ZERO && mean_down > SimTime::ZERO);
        let mut sched = FaultSchedule::none();
        let mut state = splitmix64(seed ^ 0xFA17_FA17_FA17_FA17);
        fn draw(state: &mut u64) -> u64 {
            *state = splitmix64(*state);
            *state
        }
        fn unit(state: &mut u64) -> f64 {
            (draw(state) >> 11) as f64 / (1u64 << 53) as f64
        }
        // exponential sample with the given mean, in nanos
        fn exp(state: &mut u64, mean: SimTime, horizon: SimTime) -> u64 {
            let ns = -(mean.as_nanos() as f64) * (1.0 - unit(state)).ln();
            (ns.max(1.0).min(horizon.as_nanos() as f64)) as u64
        }
        let mut t = SimTime(exp(&mut state, mean_up, horizon));
        while t < horizon {
            let down = SimTime(exp(&mut state, mean_down, horizon));
            let end = SimTime(t.as_nanos().saturating_add(down.as_nanos())).min(horizon);
            let kind = match draw(&mut state) % 4 {
                0 => FaultKind::Outage,
                1 => FaultKind::Blackhole,
                2 => FaultKind::Slowdown {
                    factor: 0.05 + 0.2 * unit(&mut state),
                },
                _ => FaultKind::DropLarge {
                    threshold_bytes: 1 << (10 + draw(&mut state) % 8),
                },
            };
            if t < end {
                sched = sched.with_window(t, end, kind);
            }
            t = SimTime(end.as_nanos().saturating_add(exp(&mut state, mean_up, horizon)));
        }
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn quiet_schedule_is_always_up() {
        let s = FaultSchedule::none();
        assert!(s.is_quiet());
        assert_eq!(s.health_at(SimTime::ZERO), LinkHealth::Up);
        assert_eq!(s.slowdown_factor_at(secs(100)), 1.0);
        assert_eq!(s.first_disruption_in(SimTime::ZERO, secs(100), 1 << 30), None);
    }

    #[test]
    fn window_is_half_open() {
        let s = FaultSchedule::none().with_window(secs(10), secs(20), FaultKind::Outage);
        assert_eq!(s.health_at(secs(9)), LinkHealth::Up);
        assert_eq!(s.health_at(secs(10)), LinkHealth::Down);
        assert_eq!(s.health_at(secs(19)), LinkHealth::Down);
        assert_eq!(s.health_at(secs(20)), LinkHealth::Up);
    }

    #[test]
    fn severity_priority_on_overlap() {
        let s = FaultSchedule::none()
            .with_window(secs(0), secs(30), FaultKind::Slowdown { factor: 0.5 })
            .with_window(secs(10), secs(20), FaultKind::Outage);
        assert_eq!(s.health_at(secs(5)), LinkHealth::Slow { factor: 0.5 });
        assert_eq!(s.health_at(secs(15)), LinkHealth::Down);
    }

    #[test]
    fn drop_large_spares_small_messages() {
        let s = FaultSchedule::none().with_window(
            secs(10),
            secs(20),
            FaultKind::DropLarge {
                threshold_bytes: 4096,
            },
        );
        assert!(s.health_at(secs(15)).passes_probes());
        // small transfer sails through the window
        assert_eq!(s.first_disruption_in(secs(12), secs(18), 512), None);
        // large transfer is cut at the window start (or span start if later)
        assert_eq!(
            s.first_disruption_in(secs(5), secs(18), 1 << 20),
            Some((
                secs(10),
                FaultKind::DropLarge {
                    threshold_bytes: 4096
                }
            ))
        );
        assert_eq!(
            s.first_disruption_in(secs(12), secs(18), 1 << 20).map(|d| d.0),
            Some(secs(12))
        );
    }

    #[test]
    fn earliest_disruption_wins() {
        let s = FaultSchedule::none()
            .with_window(secs(40), secs(50), FaultKind::Outage)
            .with_window(secs(20), secs(25), FaultKind::Blackhole);
        let (t, kind) = s.first_disruption_in(secs(0), secs(100), 1).unwrap();
        assert_eq!(t, secs(20));
        assert_eq!(kind, FaultKind::Blackhole);
    }

    #[test]
    fn slowdown_factors_compose() {
        let s = FaultSchedule::none()
            .with_window(secs(0), secs(10), FaultKind::Slowdown { factor: 0.5 })
            .with_window(secs(0), secs(10), FaultKind::Slowdown { factor: 0.4 });
        assert!((s.slowdown_factor_at(secs(5)) - 0.2).abs() < 1e-12);
        // floored at 1%
        let s2 = FaultSchedule::none().with_window(
            secs(0),
            secs(10),
            FaultKind::Slowdown { factor: 1e-6 },
        );
        assert_eq!(s2.slowdown_factor_at(secs(5)), 0.01);
    }

    #[test]
    fn generate_is_deterministic_and_bounded() {
        let a = FaultSchedule::generate(7, secs(1000), secs(60), secs(10));
        let b = FaultSchedule::generate(7, secs(1000), secs(60), secs(10));
        assert_eq!(a, b);
        assert!(!a.is_quiet(), "1000 s horizon with 60 s MTBF should fault");
        for w in &a.windows {
            assert!(SimTime::from(w.start) < SimTime::from(w.end));
            assert!(SimTime::from(w.end) <= secs(1000));
        }
        let c = FaultSchedule::generate(8, secs(1000), secs(60), secs(10));
        assert_ne!(a, c, "different seeds should differ");
    }
}
