//! Deterministic link-fault schedules: outage windows, blackholed probes,
//! bandwidth collapse, and size-dependent drops.
//!
//! The paper's shared-WAN premise already models *slowdown* via
//! [`TrafficModel`](crate::traffic::TrafficModel); this module adds the
//! failure half of the story. A [`FaultSchedule`] is a list of half-open
//! time windows `[start, end)` during which a link misbehaves in one of
//! four ways ([`FaultKind`]). Like the traffic models, a schedule is a
//! *pure function of time and seed*: queries at the same time always agree,
//! so simulations stay reproducible regardless of query order.

use crate::time::SimTime;
use crate::traffic::{splitmix64, SimTimeSerde};
use serde::{Deserialize, Serialize};

/// What a link does wrong during a fault window.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Link is down: sends fail fast (the sender detects the dead peer
    /// after a round-trip's worth of waiting).
    Outage,
    /// Link silently swallows traffic: sends hang until their deadline.
    Blackhole,
    /// Bandwidth collapse: transfers succeed but effective bandwidth is
    /// multiplied by `factor` (e.g. 0.01 for a 100× collapse).
    Slowdown { factor: f64 },
    /// Transfers larger than `threshold_bytes` are cut partway through;
    /// small messages (probes, load reports) still get through.
    DropLarge { threshold_bytes: u64 },
}

/// One fault window `[start, end)` on a link's timeline.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    pub start: SimTimeSerde,
    pub end: SimTimeSerde,
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Does this window cover time `t`?
    pub fn contains(&self, t: SimTime) -> bool {
        SimTime::from(self.start) <= t && t < SimTime::from(self.end)
    }

    /// Does this window overlap the half-open span `[t0, t1)`?
    pub fn overlaps(&self, t0: SimTime, t1: SimTime) -> bool {
        SimTime::from(self.start) < t1 && t0 < SimTime::from(self.end)
    }
}

/// Instantaneous health of a link, derived from its schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkHealth {
    /// No active fault.
    Up,
    /// Outage in progress.
    Down,
    /// Blackhole in progress.
    Blackhole,
    /// Messages above the threshold are being dropped mid-flight.
    Lossy { threshold_bytes: u64 },
    /// Bandwidth collapsed by `factor`.
    Slow { factor: f64 },
}

impl LinkHealth {
    /// True when small control messages (probes, load reports) get through.
    pub fn passes_probes(&self) -> bool {
        !matches!(self, LinkHealth::Down | LinkHealth::Blackhole)
    }
}

/// A link's fault timeline. The default schedule is empty (a fault-free
/// link), so existing configurations deserialize unchanged.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    pub windows: Vec<FaultWindow>,
}

impl FaultSchedule {
    /// The fault-free schedule.
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// True when no fault window exists at all.
    pub fn is_quiet(&self) -> bool {
        self.windows.is_empty()
    }

    /// Builder: add one window `[start, end)`.
    pub fn with_window(mut self, start: SimTime, end: SimTime, kind: FaultKind) -> FaultSchedule {
        assert!(start < end, "fault window must have positive length");
        self.windows.push(FaultWindow {
            start: start.into(),
            end: end.into(),
            kind,
        });
        self
    }

    /// Health at time `t`. When windows overlap, the most severe fault
    /// wins: Outage > Blackhole > DropLarge > Slowdown. Ties between two
    /// windows of the same kind go to the harsher payload (lower drop
    /// threshold, lower bandwidth factor), so the answer is independent
    /// of window insertion order.
    pub fn health_at(&self, t: SimTime) -> LinkHealth {
        let mut health = LinkHealth::Up;
        let mut rank = 0u8;
        for w in self.windows.iter().filter(|w| w.contains(t)) {
            let (r, h) = match w.kind {
                FaultKind::Outage => (4, LinkHealth::Down),
                FaultKind::Blackhole => (3, LinkHealth::Blackhole),
                FaultKind::DropLarge { threshold_bytes } => {
                    (2, LinkHealth::Lossy { threshold_bytes })
                }
                FaultKind::Slowdown { factor } => (1, LinkHealth::Slow { factor }),
            };
            let harsher_tie = r == rank
                && match (h, health) {
                    (
                        LinkHealth::Lossy { threshold_bytes: a },
                        LinkHealth::Lossy { threshold_bytes: b },
                    ) => a < b,
                    (LinkHealth::Slow { factor: a }, LinkHealth::Slow { factor: b }) => a < b,
                    _ => false,
                };
            if r > rank || harsher_tie {
                rank = r;
                health = h;
            }
        }
        health
    }

    /// Combined bandwidth multiplier from all Slowdown windows active at
    /// `t` (1.0 when none). Factors compose multiplicatively and the
    /// result is floored at 1% so a slowed link still drains.
    pub fn slowdown_factor_at(&self, t: SimTime) -> f64 {
        let factor: f64 = self
            .windows
            .iter()
            .filter(|w| w.contains(t))
            .filter_map(|w| match w.kind {
                FaultKind::Slowdown { factor } => Some(factor),
                _ => None,
            })
            .product();
        factor.clamp(0.01, 1.0)
    }

    /// Earliest moment in `[t0, t1)` at which a transfer of `bytes` in
    /// flight over that span would be disrupted, with the responsible
    /// fault. Outage and Blackhole disrupt every transfer; `DropLarge`
    /// only those strictly larger than its threshold; `Slowdown` never
    /// disrupts (it is priced into the bandwidth instead).
    pub fn first_disruption_in(
        &self,
        t0: SimTime,
        t1: SimTime,
        bytes: u64,
    ) -> Option<(SimTime, FaultKind)> {
        self.windows
            .iter()
            .filter(|w| w.overlaps(t0, t1))
            .filter(|w| match w.kind {
                FaultKind::Outage | FaultKind::Blackhole => true,
                FaultKind::DropLarge { threshold_bytes } => bytes > threshold_bytes,
                FaultKind::Slowdown { .. } => false,
            })
            .map(|w| (SimTime::from(w.start).max(t0), w.kind))
            .min_by_key(|(t, _)| *t)
    }

    /// Generate a seeded, deterministic schedule over `[0, horizon)`:
    /// alternating up/down spans with exponentially distributed lengths
    /// (means `mean_up`/`mean_down`), each down span assigned a fault
    /// kind from the same RNG stream. Same seed ⇒ same schedule.
    pub fn generate(
        seed: u64,
        horizon: SimTime,
        mean_up: SimTime,
        mean_down: SimTime,
    ) -> FaultSchedule {
        assert!(mean_up > SimTime::ZERO && mean_down > SimTime::ZERO);
        let mut sched = FaultSchedule::none();
        let mut state = splitmix64(seed ^ 0xFA17_FA17_FA17_FA17);
        fn draw(state: &mut u64) -> u64 {
            *state = splitmix64(*state);
            *state
        }
        fn unit(state: &mut u64) -> f64 {
            (draw(state) >> 11) as f64 / (1u64 << 53) as f64
        }
        // exponential sample with the given mean, in nanos
        fn exp(state: &mut u64, mean: SimTime, horizon: SimTime) -> u64 {
            let ns = -(mean.as_nanos() as f64) * (1.0 - unit(state)).ln();
            (ns.max(1.0).min(horizon.as_nanos() as f64)) as u64
        }
        let mut t = SimTime(exp(&mut state, mean_up, horizon));
        while t < horizon {
            let down = SimTime(exp(&mut state, mean_down, horizon));
            let end = SimTime(t.as_nanos().saturating_add(down.as_nanos())).min(horizon);
            let kind = match draw(&mut state) % 4 {
                0 => FaultKind::Outage,
                1 => FaultKind::Blackhole,
                2 => FaultKind::Slowdown {
                    factor: 0.05 + 0.2 * unit(&mut state),
                },
                _ => FaultKind::DropLarge {
                    threshold_bytes: 1 << (10 + draw(&mut state) % 8),
                },
            };
            if t < end {
                sched = sched.with_window(t, end, kind);
            }
            t = SimTime(end.as_nanos().saturating_add(exp(&mut state, mean_up, horizon)));
        }
        sched
    }
}

/// One crash window `[start, end)` on a processor's timeline: the proc is
/// dead (crash-stop) for the whole window and rejoins, empty-handed, at
/// `end`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProcFaultWindow {
    pub start: SimTimeSerde,
    pub end: SimTimeSerde,
}

impl ProcFaultWindow {
    /// Is the proc dead at time `t`? Half-open like [`FaultWindow`]:
    /// dead at `start`, alive again at `end`.
    pub fn contains(&self, t: SimTime) -> bool {
        SimTime::from(self.start) <= t && t < SimTime::from(self.end)
    }
}

/// Crash/rejoin timelines for every processor of a system, indexed by the
/// dense `ProcId`. Like [`FaultSchedule`] this is a *pure function of time
/// and seed*: liveness queries at the same time always agree, so crash
/// detection is reproducible regardless of query order. Windows of one
/// proc never overlap (alternating up/down spans by construction;
/// [`ProcFaultSchedule::with_crash`] asserts it for hand-built schedules).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ProcFaultSchedule {
    pub windows: Vec<Vec<ProcFaultWindow>>,
}

impl ProcFaultSchedule {
    /// The crash-free schedule for `nprocs` processors.
    pub fn none(nprocs: usize) -> ProcFaultSchedule {
        ProcFaultSchedule {
            windows: vec![Vec::new(); nprocs],
        }
    }

    /// Number of processors the schedule covers.
    pub fn nprocs(&self) -> usize {
        self.windows.len()
    }

    /// True when no proc ever crashes.
    pub fn is_quiet(&self) -> bool {
        self.windows.iter().all(|w| w.is_empty())
    }

    /// Builder: proc `p` is dead during `[start, end)`. Panics on an empty
    /// window or one that overlaps an existing window of the same proc.
    pub fn with_crash(mut self, p: usize, start: SimTime, end: SimTime) -> ProcFaultSchedule {
        assert!(start < end, "crash window must have positive length");
        if p >= self.windows.len() {
            self.windows.resize(p + 1, Vec::new());
        }
        for w in &self.windows[p] {
            assert!(
                end <= SimTime::from(w.start) || SimTime::from(w.end) <= start,
                "crash windows of one proc must not overlap"
            );
        }
        self.windows[p].push(ProcFaultWindow {
            start: start.into(),
            end: end.into(),
        });
        self
    }

    /// Is proc `p` alive at time `t`? Procs beyond the schedule's length
    /// are always alive (the default for systems without proc faults).
    pub fn alive_at(&self, p: usize, t: SimTime) -> bool {
        match self.windows.get(p) {
            Some(ws) => !ws.iter().any(|w| w.contains(t)),
            None => true,
        }
    }

    /// When proc `p` is dead at `t`, the start of the covering crash
    /// window (the moment the failure began — the MTTR clock's zero).
    pub fn crash_start(&self, p: usize, t: SimTime) -> Option<SimTime> {
        self.windows
            .get(p)?
            .iter()
            .find(|w| w.contains(t))
            .map(|w| SimTime::from(w.start))
    }

    /// Generate a seeded, deterministic schedule over `[0, horizon)` for
    /// `nprocs` processors: per proc, alternating up/down spans with
    /// exponentially distributed lengths (means `mean_up`/`mean_down`),
    /// exactly like [`FaultSchedule::generate`] but on proc liveness.
    /// Procs listed in `protected` never crash — pass each group's head
    /// so a group always keeps at least one live member (see
    /// [`ProcFaultSchedule::generate_for`]). Each proc draws from its own
    /// derived stream, so schedules are stable under `nprocs` changes.
    pub fn generate(
        seed: u64,
        nprocs: usize,
        protected: &[usize],
        horizon: SimTime,
        mean_up: SimTime,
        mean_down: SimTime,
    ) -> ProcFaultSchedule {
        assert!(mean_up > SimTime::ZERO && mean_down > SimTime::ZERO);
        fn draw(state: &mut u64) -> u64 {
            *state = splitmix64(*state);
            *state
        }
        fn unit(state: &mut u64) -> f64 {
            (draw(state) >> 11) as f64 / (1u64 << 53) as f64
        }
        // exponential sample with the given mean, in nanos
        fn exp(state: &mut u64, mean: SimTime, horizon: SimTime) -> u64 {
            let ns = -(mean.as_nanos() as f64) * (1.0 - unit(state)).ln();
            (ns.max(1.0).min(horizon.as_nanos() as f64)) as u64
        }
        let mut sched = ProcFaultSchedule::none(nprocs);
        for p in 0..nprocs {
            if protected.contains(&p) {
                continue;
            }
            let mut state = splitmix64(
                seed ^ 0xDEAD_DEAD_DEAD_DEAD ^ (p as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let mut t = SimTime(exp(&mut state, mean_up, horizon));
            while t < horizon {
                let down = SimTime(exp(&mut state, mean_down, horizon));
                let end = SimTime(t.as_nanos().saturating_add(down.as_nanos())).min(horizon);
                if t < end {
                    sched = sched.with_crash(p, t, end);
                }
                t = SimTime(end.as_nanos().saturating_add(exp(&mut state, mean_up, horizon)));
            }
        }
        sched
    }

    /// [`ProcFaultSchedule::generate`] with every group head of `sys`
    /// protected, so no group is ever fully dead (group heads hold the
    /// recovery checkpoints and lead inter-group probes).
    pub fn generate_for(
        sys: &crate::system::DistributedSystem,
        seed: u64,
        horizon: SimTime,
        mean_up: SimTime,
        mean_down: SimTime,
    ) -> ProcFaultSchedule {
        let heads: Vec<usize> = sys.groups().iter().map(|g| g.procs[0].0).collect();
        ProcFaultSchedule::generate(seed, sys.nprocs(), &heads, horizon, mean_up, mean_down)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn quiet_schedule_is_always_up() {
        let s = FaultSchedule::none();
        assert!(s.is_quiet());
        assert_eq!(s.health_at(SimTime::ZERO), LinkHealth::Up);
        assert_eq!(s.slowdown_factor_at(secs(100)), 1.0);
        assert_eq!(s.first_disruption_in(SimTime::ZERO, secs(100), 1 << 30), None);
    }

    #[test]
    fn window_is_half_open() {
        let s = FaultSchedule::none().with_window(secs(10), secs(20), FaultKind::Outage);
        assert_eq!(s.health_at(secs(9)), LinkHealth::Up);
        assert_eq!(s.health_at(secs(10)), LinkHealth::Down);
        assert_eq!(s.health_at(secs(19)), LinkHealth::Down);
        assert_eq!(s.health_at(secs(20)), LinkHealth::Up);
    }

    #[test]
    fn severity_priority_on_overlap() {
        let s = FaultSchedule::none()
            .with_window(secs(0), secs(30), FaultKind::Slowdown { factor: 0.5 })
            .with_window(secs(10), secs(20), FaultKind::Outage);
        assert_eq!(s.health_at(secs(5)), LinkHealth::Slow { factor: 0.5 });
        assert_eq!(s.health_at(secs(15)), LinkHealth::Down);
    }

    #[test]
    fn drop_large_spares_small_messages() {
        let s = FaultSchedule::none().with_window(
            secs(10),
            secs(20),
            FaultKind::DropLarge {
                threshold_bytes: 4096,
            },
        );
        assert!(s.health_at(secs(15)).passes_probes());
        // small transfer sails through the window
        assert_eq!(s.first_disruption_in(secs(12), secs(18), 512), None);
        // large transfer is cut at the window start (or span start if later)
        assert_eq!(
            s.first_disruption_in(secs(5), secs(18), 1 << 20),
            Some((
                secs(10),
                FaultKind::DropLarge {
                    threshold_bytes: 4096
                }
            ))
        );
        assert_eq!(
            s.first_disruption_in(secs(12), secs(18), 1 << 20).map(|d| d.0),
            Some(secs(12))
        );
    }

    #[test]
    fn earliest_disruption_wins() {
        let s = FaultSchedule::none()
            .with_window(secs(40), secs(50), FaultKind::Outage)
            .with_window(secs(20), secs(25), FaultKind::Blackhole);
        let (t, kind) = s.first_disruption_in(secs(0), secs(100), 1).unwrap();
        assert_eq!(t, secs(20));
        assert_eq!(kind, FaultKind::Blackhole);
    }

    #[test]
    fn slowdown_factors_compose() {
        let s = FaultSchedule::none()
            .with_window(secs(0), secs(10), FaultKind::Slowdown { factor: 0.5 })
            .with_window(secs(0), secs(10), FaultKind::Slowdown { factor: 0.4 });
        assert!((s.slowdown_factor_at(secs(5)) - 0.2).abs() < 1e-12);
        // floored at 1%
        let s2 = FaultSchedule::none().with_window(
            secs(0),
            secs(10),
            FaultKind::Slowdown { factor: 1e-6 },
        );
        assert_eq!(s2.slowdown_factor_at(secs(5)), 0.01);
    }

    #[test]
    fn generate_is_deterministic_and_bounded() {
        let a = FaultSchedule::generate(7, secs(1000), secs(60), secs(10));
        let b = FaultSchedule::generate(7, secs(1000), secs(60), secs(10));
        assert_eq!(a, b);
        assert!(!a.is_quiet(), "1000 s horizon with 60 s MTBF should fault");
        for w in &a.windows {
            assert!(SimTime::from(w.start) < SimTime::from(w.end));
            assert!(SimTime::from(w.end) <= secs(1000));
        }
        let c = FaultSchedule::generate(8, secs(1000), secs(60), secs(10));
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn proc_schedule_quiet_is_always_alive() {
        let s = ProcFaultSchedule::none(4);
        assert!(s.is_quiet());
        assert_eq!(s.nprocs(), 4);
        for p in 0..4 {
            assert!(s.alive_at(p, SimTime::ZERO));
            assert!(s.alive_at(p, secs(1_000_000)));
            assert_eq!(s.crash_start(p, secs(5)), None);
        }
        // procs beyond the schedule are immortal
        assert!(s.alive_at(99, secs(1)));
    }

    #[test]
    fn proc_crash_window_is_half_open() {
        let s = ProcFaultSchedule::none(2).with_crash(1, secs(10), secs(20));
        assert!(s.alive_at(1, secs(9)));
        assert!(!s.alive_at(1, secs(10)));
        assert!(!s.alive_at(1, secs(19)));
        assert!(s.alive_at(1, secs(20)));
        // the other proc is untouched
        assert!(s.alive_at(0, secs(15)));
        assert_eq!(s.crash_start(1, secs(15)), Some(secs(10)));
        assert_eq!(s.crash_start(1, secs(25)), None);
    }

    #[test]
    #[should_panic]
    fn overlapping_crash_windows_panic() {
        let _ = ProcFaultSchedule::none(1)
            .with_crash(0, secs(10), secs(20))
            .with_crash(0, secs(15), secs(25));
    }

    #[test]
    fn touching_crash_windows_allowed_and_disjoint() {
        let s = ProcFaultSchedule::none(1)
            .with_crash(0, secs(10), secs(20))
            .with_crash(0, secs(20), secs(30));
        assert!(!s.alive_at(0, secs(19)));
        assert!(!s.alive_at(0, secs(20)), "second window starts exactly at 20");
        assert!(s.alive_at(0, secs(30)));
        // crash_start answers per covering window
        assert_eq!(s.crash_start(0, secs(12)), Some(secs(10)));
        assert_eq!(s.crash_start(0, secs(22)), Some(secs(20)));
    }

    #[test]
    fn proc_generate_deterministic_protected_and_bounded() {
        let prot = [0usize, 4];
        let a = ProcFaultSchedule::generate(42, 8, &prot, secs(1000), secs(60), secs(10));
        let b = ProcFaultSchedule::generate(42, 8, &prot, secs(1000), secs(60), secs(10));
        assert_eq!(a, b);
        assert!(!a.is_quiet(), "1000 s horizon with 60 s MTBF should crash");
        assert!(a.windows[0].is_empty() && a.windows[4].is_empty(), "protected");
        for ws in &a.windows {
            for w in ws {
                assert!(SimTime::from(w.start) < SimTime::from(w.end));
                assert!(SimTime::from(w.end) <= secs(1000));
            }
        }
        let c = ProcFaultSchedule::generate(43, 8, &prot, secs(1000), secs(60), secs(10));
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn proc_generate_streams_are_per_proc() {
        // growing the system must not reshuffle earlier procs' schedules
        let small = ProcFaultSchedule::generate(7, 4, &[], secs(500), secs(40), secs(8));
        let large = ProcFaultSchedule::generate(7, 8, &[], secs(500), secs(40), secs(8));
        assert_eq!(small.windows[..4], large.windows[..4]);
    }
}
