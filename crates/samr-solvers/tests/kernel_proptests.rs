//! Property-based bit-identity pins for the vectorized row kernels: on
//! randomized patch shapes (including z-rows that are not a multiple of the
//! lane width, exercising the `chunks_exact` remainders) the line/row
//! kernels must produce exactly the bits of the retained `reference`
//! modules.

use proptest::prelude::*;
use samr_mesh::field::Field3;
use samr_mesh::pool::FieldPool;
use samr_mesh::region::Region;
use samr_mesh::{ivec3, region};
use samr_solvers::euler::{self, NFIELDS};
use samr_solvers::{advection, muscl, poisson};

fn splitmix(s: &mut u64) -> f64 {
    *s = s.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A patch interior with irregular extents: z-rows deliberately span 1–19
/// cells so `chunks_exact(8)` sees empty, partial and multi-lane rows.
fn arb_region() -> impl Strategy<Value = Region> {
    (1i64..6, 1i64..6, 1i64..20, -3i64..4, -3i64..4, -3i64..4).prop_map(
        |(nx, ny, nz, ox, oy, oz)| region(ivec3(ox, oy, oz), ivec3(ox + nx, oy + ny, oz + nz)),
    )
}

/// Random positive-density conserved fields over `r` with ghost width `g`.
fn random_euler_fields(r: Region, g: i64, seed: u64) -> Vec<Field3> {
    let mut s = seed;
    (0..NFIELDS)
        .map(|k| {
            let mut f = Field3::zeros(r, g);
            for v in f.data_mut() {
                *v = match k {
                    0 => 0.1 + splitmix(&mut s),               // rho > 0
                    4 => 1.0 + 2.0 * splitmix(&mut s),         // energy
                    _ => 2.0 * splitmix(&mut s) - 1.0,         // momenta
                };
            }
            f
        })
        .collect()
}

fn bits(fs: &[Field3]) -> Vec<Vec<u64>> {
    fs.iter()
        .map(|f| f.data().iter().map(|v| v.to_bits()).collect())
        .collect()
}

proptest! {
    #[test]
    fn euler_line_kernel_matches_reference(
        r in arb_region(),
        axis in 0usize..3,
        seed in any::<u64>(),
    ) {
        let mut a = random_euler_fields(r, 1, seed);
        let mut b = a.clone();
        euler::sweep(&mut a, axis, 0.2, 1.4);
        euler::reference::sweep(&mut b, axis, 0.2, 1.4);
        prop_assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn muscl_line_kernel_matches_reference(
        r in arb_region(),
        axis in 0usize..3,
        seed in any::<u64>(),
    ) {
        let pool = FieldPool::new();
        let mut a = random_euler_fields(r, 2, seed);
        let mut b = a.clone();
        muscl::sweep_muscl(&mut a, axis, 0.15, 1.4, &pool);
        muscl::reference::sweep_muscl(&mut b, axis, 0.15, 1.4);
        prop_assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn advection_row_kernel_matches_reference(
        r in arb_region(),
        cx in -1.0f64..1.0,
        cy in -1.0f64..1.0,
        cz in prop_oneof![Just(0.0f64), -1.0f64..1.0],
        limited in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let pool = FieldPool::new();
        let mut a = Field3::zeros(r, 2);
        let mut s = seed;
        for v in a.data_mut() {
            *v = 2.0 * splitmix(&mut s) - 1.0;
        }
        let mut b = a.clone();
        advection::advect_step(&mut a, [cx, cy, cz], limited, &pool);
        advection::reference::advect_step(&mut b, [cx, cy, cz], limited);
        prop_assert_eq!(
            a.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rbgs_row_kernel_matches_reference(
        r in arb_region(),
        seed in any::<u64>(),
    ) {
        let mut phi = Field3::zeros(r, 1);
        let mut rhs = Field3::zeros(r, 0);
        let mut s = seed;
        for v in phi.data_mut().iter_mut().chain(rhs.data_mut().iter_mut()) {
            *v = 2.0 * splitmix(&mut s) - 1.0;
        }
        let mut phi_ref = phi.clone();
        poisson::rbgs_sweep(&mut phi, &rhs, 1.0);
        poisson::reference::rbgs_sweep(&mut phi_ref, &rhs, 1.0);
        prop_assert_eq!(
            phi.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            phi_ref.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
