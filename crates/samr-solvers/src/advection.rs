//! Linear advection: first-order upwind with optional minmod-limited slopes.
//! A cheap scalar solver used by tests and the quickstart example.

use crate::checked_capacity;
use samr_mesh::field::Field3;
use samr_mesh::index::{ivec3, IVec3};
use samr_mesh::pool::FieldAlloc;

/// Minmod limiter.
#[inline]
pub fn minmod(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        0.0
    } else if a.abs() < b.abs() {
        a
    } else {
        b
    }
}

/// Lane width of the row kernel's `chunks_exact` blocks. Wide enough for
/// the autovectorizer to pack full AVX2/AVX-512 registers, small enough
/// that short z-rows still mostly run in lanes.
const LANE: usize = 8;

/// The per-cell upwind flux difference `c · (f_hi − f_lo)` along one axis,
/// from the five-point stencil values along that axis. The caller subtracts
/// it from the accumulated update. Shared verbatim by the row kernel and
/// the reference step so they stay bit-identical by construction.
#[inline]
fn axis_increment(c: f64, limited: bool, umm: f64, um: f64, u0: f64, up: f64, upp: f64) -> f64 {
    assert!(c.abs() <= 1.0, "CFL violation: {c}");
    // upwind face values with optional limited correction
    let (f_lo, f_hi) = if c > 0.0 {
        let slope_m = if limited { minmod(u0 - um, um - umm) } else { 0.0 };
        let slope_0 = if limited { minmod(up - u0, u0 - um) } else { 0.0 };
        (
            um + 0.5 * (1.0 - c) * slope_m,
            u0 + 0.5 * (1.0 - c) * slope_0,
        )
    } else {
        let slope_p = if limited { minmod(upp - up, up - u0) } else { 0.0 };
        let slope_0 = if limited { minmod(up - u0, u0 - um) } else { 0.0 };
        (
            u0 - 0.5 * (1.0 + c) * slope_0,
            up - 0.5 * (1.0 + c) * slope_p,
        )
    };
    c * (f_hi - f_lo)
}

/// The per-cell upwind update: the new value of `f` at `p`. Point-stencil
/// composition of [`axis_increment`]; the row kernel computes the same
/// per-cell sequence over whole rows.
#[inline]
fn updated_value(f: &Field3, p: IVec3, courant: [f64; 3], limited: bool) -> f64 {
    let mut du = 0.0;
    for (axis, &c) in courant.iter().enumerate() {
        if c == 0.0 {
            continue;
        }
        let dir = match axis {
            0 => ivec3(1, 0, 0),
            1 => ivec3(0, 1, 0),
            _ => ivec3(0, 0, 1),
        };
        du -= axis_increment(
            c,
            limited,
            f.get(p - dir - dir),
            f.get(p - dir),
            f.get(p),
            f.get(p + dir),
            f.get(p + dir + dir),
        );
    }
    f.get(p) + du
}

/// One axis' contribution over a stride-1 z-row: `du[j] -= axis_increment`
/// elementwise. The five neighbour rows arrive pre-sliced to the row length
/// (bounds checks hoisted to the slicing), and the body runs `chunks_exact`
/// lanes with a scalar remainder so the compiler can keep the lane loop
/// branch-free per element and autovectorize it.
#[allow(clippy::too_many_arguments)]
fn axis_pass(
    du: &mut [f64],
    umm: &[f64],
    um: &[f64],
    u0: &[f64],
    up: &[f64],
    upp: &[f64],
    c: f64,
    limited: bool,
) {
    let n = du.len();
    debug_assert!(
        umm.len() == n && um.len() == n && u0.len() == n && up.len() == n && upp.len() == n
    );
    let lanes = umm
        .chunks_exact(LANE)
        .zip(um.chunks_exact(LANE))
        .zip(u0.chunks_exact(LANE))
        .zip(up.chunks_exact(LANE))
        .zip(upp.chunks_exact(LANE));
    for (d, ((((a, b), u), p), q)) in du.chunks_exact_mut(LANE).zip(lanes) {
        for j in 0..LANE {
            d[j] -= axis_increment(c, limited, a[j], b[j], u[j], p[j], q[j]);
        }
    }
    for j in (n - n % LANE)..n {
        du[j] -= axis_increment(c, limited, umm[j], um[j], u0[j], up[j], upp[j]);
    }
}

/// One advection step of field `f` with constant velocity `v` (cells/step
/// fractions as `v · dt/dx` per axis, each must satisfy |c| ≤ 1). Second
/// order in smooth regions via minmod-limited fluxes. Ghosts (width ≥ 2 on
/// each active axis) must be filled beforehand.
///
/// Double-buffered through `pool`: new values stream row-wise into one
/// pooled ghost-0 scratch field, then its interior is copied back — no
/// per-call update-list allocation. Each interior z-row is processed as a
/// stride-1 pass per active axis ([`axis_pass`]), accumulating into a
/// pooled row of flux differences in the same per-cell order as the
/// reference, so the result is bit-identical to [`reference::advect_step`].
pub fn advect_step<P: FieldAlloc>(f: &mut Field3, courant: [f64; 3], limited: bool, pool: &P) {
    let interior = f.interior();
    let sto = f.storage_region();
    let mut scratch = Field3::new_in(pool, interior, 0);
    let n = (interior.hi.z - interior.lo.z) as usize;
    let mut du = pool.acquire(n);
    {
        let d = f.data();
        let out_region = scratch.storage_region();
        let out = scratch.data_mut();
        let sz = (sto.hi.z - sto.lo.z) as usize;
        let strides = [(sto.hi.y - sto.lo.y) as usize * sz, sz, 1usize];
        for x in interior.lo.x..interior.hi.x {
            for y in interior.lo.y..interior.hi.y {
                let i0 = sto.linear_index(ivec3(x, y, interior.lo.z));
                let o0 = out_region.linear_index(ivec3(x, y, interior.lo.z));
                du.fill(0.0);
                for (axis, &c) in courant.iter().enumerate() {
                    if c == 0.0 {
                        continue;
                    }
                    let s = strides[axis];
                    axis_pass(
                        &mut du,
                        &d[i0 - 2 * s..i0 - 2 * s + n],
                        &d[i0 - s..i0 - s + n],
                        &d[i0..i0 + n],
                        &d[i0 + s..i0 + s + n],
                        &d[i0 + 2 * s..i0 + 2 * s + n],
                        c,
                        limited,
                    );
                }
                let u0 = &d[i0..i0 + n];
                let orow = &mut out[o0..o0 + n];
                for j in 0..n {
                    orow[j] = u0[j] + du[j];
                }
            }
        }
    }
    f.copy_from(&scratch, &interior);
    scratch.recycle(pool);
    pool.release(du);
}

/// Update-list form retained as a bit-identity oracle (see
/// [`crate::euler::reference`]).
pub mod reference {
    use super::*;

    /// Reference for [`super::advect_step`].
    pub fn advect_step(f: &mut Field3, courant: [f64; 3], limited: bool) {
        let interior = f.interior();
        let mut updates = Vec::with_capacity(checked_capacity(interior.cells()));
        for p in interior.iter_cells() {
            updates.push((p, updated_value(f, p, courant, limited)));
        }
        for (p, v) in updates {
            f.set(p, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_mesh::pool::FieldPool;
    use samr_mesh::region::Region;

    #[test]
    fn minmod_properties() {
        assert_eq!(minmod(1.0, 2.0), 1.0);
        assert_eq!(minmod(-3.0, -2.0), -2.0);
        assert_eq!(minmod(1.0, -1.0), 0.0);
        assert_eq!(minmod(0.0, 5.0), 0.0);
    }

    #[test]
    fn in_place_step_matches_reference_bitwise() {
        let pool = FieldPool::new();
        for limited in [false, true] {
            let mut a = Field3::zeros(Region::cube(10), 2);
            // deterministic irregular data
            let mut s = 42u64;
            for v in a.data_mut() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *v = ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
            }
            let mut b = a.clone();
            for _ in 0..3 {
                a.fill_ghosts_zero_gradient();
                advect_step(&mut a, [0.4, -0.3, 0.2], limited, &pool);
                b.fill_ghosts_zero_gradient();
                reference::advect_step(&mut b, [0.4, -0.3, 0.2], limited);
            }
            let bits = |f: &Field3| -> Vec<u64> { f.data().iter().map(|v| v.to_bits()).collect() };
            assert_eq!(bits(&a), bits(&b), "limited={limited}");
        }
        assert!(pool.stats().hits > 0, "scratch reused across steps");
    }

    #[test]
    fn constant_field_unchanged() {
        let mut f = Field3::constant(Region::cube(6), 2, 3.0);
        advect_step(&mut f, [0.5, 0.25, 0.1], true, &FieldPool::new());
        for p in Region::cube(6).iter_cells() {
            assert!((f.get(p) - 3.0).abs() < 1e-14);
        }
    }

    #[test]
    fn unit_courant_shifts_exactly() {
        // c = 1 upwind is exact translation by one cell
        let mut f = Field3::zeros(Region::cube(8), 2);
        f.set(ivec3(3, 4, 4), 1.0);
        f.fill_ghosts_zero_gradient();
        advect_step(&mut f, [1.0, 0.0, 0.0], false, &FieldPool::new());
        assert!((f.get(ivec3(4, 4, 4)) - 1.0).abs() < 1e-14);
        assert!(f.get(ivec3(3, 4, 4)).abs() < 1e-14);
    }

    #[test]
    fn mass_conserved_away_from_boundary() {
        let mut f = Field3::zeros(Region::cube(12), 2);
        for p in samr_mesh::region(ivec3(4, 4, 4), ivec3(7, 7, 7)).iter_cells() {
            f.set(p, 2.0);
        }
        let pool = FieldPool::new();
        let before = f.interior_sum();
        for _ in 0..3 {
            f.fill_ghosts_zero_gradient();
            advect_step(&mut f, [0.4, 0.0, 0.0], true, &pool);
        }
        let after = f.interior_sum();
        assert!((before - after).abs() < 1e-10, "{before} vs {after}");
    }

    #[test]
    fn blob_moves_downstream() {
        let mut f = Field3::zeros(Region::cube(12), 2);
        f.set(ivec3(2, 6, 6), 1.0);
        let center_of_mass_x = |f: &Field3| {
            let mut m = 0.0;
            let mut mx = 0.0;
            for p in Region::cube(12).iter_cells() {
                m += f.get(p);
                mx += f.get(p) * p.x as f64;
            }
            mx / m
        };
        let pool = FieldPool::new();
        let x0 = center_of_mass_x(&f);
        for _ in 0..5 {
            f.fill_ghosts_zero_gradient();
            advect_step(&mut f, [0.5, 0.0, 0.0], true, &pool);
        }
        let x1 = center_of_mass_x(&f);
        assert!((x1 - x0 - 2.5).abs() < 0.1, "moved {}", x1 - x0);
    }

    #[test]
    #[should_panic]
    fn cfl_violation_panics() {
        let mut f = Field3::zeros(Region::cube(4), 2);
        advect_step(&mut f, [1.5, 0.0, 0.0], false, &FieldPool::new());
    }
}
