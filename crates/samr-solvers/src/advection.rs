//! Linear advection: first-order upwind with optional minmod-limited slopes.
//! A cheap scalar solver used by tests and the quickstart example.

use samr_mesh::field::Field3;
use samr_mesh::index::ivec3;

/// Minmod limiter.
#[inline]
pub fn minmod(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        0.0
    } else if a.abs() < b.abs() {
        a
    } else {
        b
    }
}

/// One advection step of field `f` with constant velocity `v` (cells/step
/// fractions as `v · dt/dx` per axis, each must satisfy |c| ≤ 1). Second
/// order in smooth regions via minmod-limited fluxes. Ghosts (width ≥ 2 for
/// the limited scheme, ≥ 1 for pure upwind) must be filled beforehand.
pub fn advect_step(f: &mut Field3, courant: [f64; 3], limited: bool) {
    let interior = f.interior();
    let mut updates = Vec::with_capacity(interior.cells() as usize);
    for p in interior.iter_cells() {
        let mut du = 0.0;
        for (axis, &c) in courant.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            assert!(c.abs() <= 1.0, "CFL violation: {c}");
            let dir = match axis {
                0 => ivec3(1, 0, 0),
                1 => ivec3(0, 1, 0),
                _ => ivec3(0, 0, 1),
            };
            let u0 = f.get(p);
            let um = f.get(p - dir);
            let up = f.get(p + dir);
            // upwind face values with optional limited correction
            let (f_lo, f_hi) = if c > 0.0 {
                let umm = f.get(p - dir - dir);
                let slope_m = if limited { minmod(u0 - um, um - umm) } else { 0.0 };
                let slope_0 = if limited { minmod(up - u0, u0 - um) } else { 0.0 };
                (
                    um + 0.5 * (1.0 - c) * slope_m,
                    u0 + 0.5 * (1.0 - c) * slope_0,
                )
            } else {
                let upp = f.get(p + dir + dir);
                let slope_p = if limited { minmod(upp - up, up - u0) } else { 0.0 };
                let slope_0 = if limited { minmod(up - u0, u0 - um) } else { 0.0 };
                (
                    u0 - 0.5 * (1.0 + c) * slope_0,
                    up - 0.5 * (1.0 + c) * slope_p,
                )
            };
            du -= c * (f_hi - f_lo);
        }
        updates.push((p, f.get(p) + du));
    }
    for (p, v) in updates {
        f.set(p, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_mesh::region::Region;

    #[test]
    fn minmod_properties() {
        assert_eq!(minmod(1.0, 2.0), 1.0);
        assert_eq!(minmod(-3.0, -2.0), -2.0);
        assert_eq!(minmod(1.0, -1.0), 0.0);
        assert_eq!(minmod(0.0, 5.0), 0.0);
    }

    #[test]
    fn constant_field_unchanged() {
        let mut f = Field3::constant(Region::cube(6), 2, 3.0);
        advect_step(&mut f, [0.5, 0.25, 0.1], true);
        for p in Region::cube(6).iter_cells() {
            assert!((f.get(p) - 3.0).abs() < 1e-14);
        }
    }

    #[test]
    fn unit_courant_shifts_exactly() {
        // c = 1 upwind is exact translation by one cell
        let mut f = Field3::zeros(Region::cube(8), 2);
        f.set(ivec3(3, 4, 4), 1.0);
        f.fill_ghosts_zero_gradient();
        advect_step(&mut f, [1.0, 0.0, 0.0], false);
        assert!((f.get(ivec3(4, 4, 4)) - 1.0).abs() < 1e-14);
        assert!(f.get(ivec3(3, 4, 4)).abs() < 1e-14);
    }

    #[test]
    fn mass_conserved_away_from_boundary() {
        let mut f = Field3::zeros(Region::cube(12), 2);
        for p in samr_mesh::region(ivec3(4, 4, 4), ivec3(7, 7, 7)).iter_cells() {
            f.set(p, 2.0);
        }
        let before = f.interior_sum();
        for _ in 0..3 {
            f.fill_ghosts_zero_gradient();
            advect_step(&mut f, [0.4, 0.0, 0.0], true);
        }
        let after = f.interior_sum();
        assert!((before - after).abs() < 1e-10, "{before} vs {after}");
    }

    #[test]
    fn blob_moves_downstream() {
        let mut f = Field3::zeros(Region::cube(12), 2);
        f.set(ivec3(2, 6, 6), 1.0);
        let center_of_mass_x = |f: &Field3| {
            let mut m = 0.0;
            let mut mx = 0.0;
            for p in Region::cube(12).iter_cells() {
                m += f.get(p);
                mx += f.get(p) * p.x as f64;
            }
            mx / m
        };
        let x0 = center_of_mass_x(&f);
        for _ in 0..5 {
            f.fill_ghosts_zero_gradient();
            advect_step(&mut f, [0.5, 0.0, 0.0], true);
        }
        let x1 = center_of_mass_x(&f);
        assert!((x1 - x0 - 2.5).abs() < 0.1, "moved {}", x1 - x0);
    }

    #[test]
    #[should_panic]
    fn cfl_violation_panics() {
        let mut f = Field3::zeros(Region::cube(4), 2);
        advect_step(&mut f, [1.5, 0.0, 0.0], false);
    }
}
