//! Poisson solver: weighted-Jacobi / red-black Gauss–Seidel relaxation of
//! `∇²φ = rhs` on a patch, with Dirichlet values supplied through ghost
//! zones. The elliptic half of the `AMR64` dataset's physics.

use samr_mesh::field::Field3;
use samr_mesh::index::{ivec3, IVec3, FACE_NEIGHBORS};

/// One red-black Gauss–Seidel sweep (both colors) of `∇²φ = rhs` with unit
/// cell spacing scaled by `h` (so the stencil divides by `h²`).
///
/// Row-strided form: per (x,y) z-row the six neighbour offsets are fixed
/// strides into the storage slice, the color parity picks the starting z,
/// and cells of one color step by 2 — index math and bounds checks happen
/// once per row instead of once per cell. The stencil sum accumulates in
/// the same `FACE_NEIGHBORS` order as [`reference::rbgs_sweep`] and the
/// cells of each color are visited in the same storage order, so the sweep
/// is bit-identical to the per-cell form (golden test pins it).
pub fn rbgs_sweep(phi: &mut Field3, rhs: &Field3, h: f64) {
    let interior = phi.interior();
    let sto = phi.storage_region();
    let rsto = rhs.storage_region();
    let h2 = h * h;
    let dz = (sto.hi.z - sto.lo.z) as usize;
    let dy = dz;
    let dx = (sto.hi.y - sto.lo.y) as usize * dz;
    let rd = rhs.data();
    let pd = phi.data_mut();
    for color in 0..2i64 {
        for x in interior.lo.x..interior.hi.x {
            for y in interior.lo.y..interior.hi.y {
                let par = (x + y + interior.lo.z).rem_euclid(2);
                let z0 = if par == color {
                    interior.lo.z
                } else {
                    interior.lo.z + 1
                };
                if z0 >= interior.hi.z {
                    continue;
                }
                let mut i = sto.linear_index(ivec3(x, y, z0));
                let mut ri = rsto.linear_index(ivec3(x, y, z0));
                let cells = ((interior.hi.z - z0) as usize).div_ceil(2);
                for _ in 0..cells {
                    // accumulate in FACE_NEIGHBORS order (−x +x −y +y −z +z)
                    let mut s = 0.0;
                    s += pd[i - dx];
                    s += pd[i + dx];
                    s += pd[i - dy];
                    s += pd[i + dy];
                    s += pd[i - 1];
                    s += pd[i + 1];
                    pd[i] = (s - h2 * rd[ri]) / 6.0;
                    i += 2;
                    ri += 2;
                }
            }
        }
    }
}

/// Per-cell form retained as a bit-identity oracle (see
/// [`crate::euler::reference`]).
pub mod reference {
    use super::*;

    /// Reference for [`super::rbgs_sweep`].
    pub fn rbgs_sweep(phi: &mut Field3, rhs: &Field3, h: f64) {
        let interior = phi.interior();
        let h2 = h * h;
        for color in 0..2i64 {
            for p in interior.iter_cells() {
                if (p.x + p.y + p.z).rem_euclid(2) != color {
                    continue;
                }
                let mut s = 0.0;
                for d in FACE_NEIGHBORS {
                    s += phi.get(p + d);
                }
                phi.set(p, (s - h2 * rhs.get(p)) / 6.0);
            }
        }
    }
}

/// Residual `rhs − ∇²φ` L2 norm over the interior.
pub fn residual_l2(phi: &Field3, rhs: &Field3, h: f64) -> f64 {
    let interior = phi.interior();
    let inv_h2 = 1.0 / (h * h);
    let mut acc = 0.0;
    for p in interior.iter_cells() {
        let mut lap = -6.0 * phi.get(p);
        for d in FACE_NEIGHBORS {
            lap += phi.get(p + d);
        }
        let r = rhs.get(p) - lap * inv_h2;
        acc += r * r;
    }
    acc.sqrt()
}

/// Relax until the residual shrinks below `tol` (relative to the first
/// residual) or `max_sweeps` is hit. Returns `(sweeps, final_residual)`.
pub fn solve(
    phi: &mut Field3,
    rhs: &Field3,
    h: f64,
    tol: f64,
    max_sweeps: usize,
) -> (usize, f64) {
    let r0 = residual_l2(phi, rhs, h).max(1e-300);
    let mut r = r0;
    for sweep in 0..max_sweeps {
        if r / r0 <= tol {
            return (sweep, r);
        }
        rbgs_sweep(phi, rhs, h);
        r = residual_l2(phi, rhs, h);
    }
    (max_sweeps, r)
}

/// Central-difference gradient of φ at cell `p` (for particle acceleration:
/// `a = −∇φ`).
pub fn gradient(phi: &Field3, p: IVec3, h: f64) -> [f64; 3] {
    let inv = 0.5 / h;
    [
        (phi.get(p + ivec3(1, 0, 0)) - phi.get(p - ivec3(1, 0, 0))) * inv,
        (phi.get(p + ivec3(0, 1, 0)) - phi.get(p - ivec3(0, 1, 0))) * inv,
        (phi.get(p + ivec3(0, 0, 1)) - phi.get(p - ivec3(0, 0, 1))) * inv,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_mesh::region::Region;

    /// Set φ on the full storage from an analytic function of the cell index.
    fn fill(f: &mut Field3, g: impl Fn(IVec3) -> f64) {
        for p in f.storage_region().iter_cells() {
            f.set(p, g(p));
        }
    }

    #[test]
    fn zero_rhs_harmonic_linear_solution_is_fixed_point() {
        // φ = x is harmonic; with exact Dirichlet ghosts a sweep keeps it.
        let r = Region::cube(6);
        let mut phi = Field3::zeros(r, 1);
        fill(&mut phi, |p| p.x as f64);
        let rhs = Field3::zeros(r, 1);
        let before = residual_l2(&phi, &rhs, 1.0);
        assert!(before < 1e-12);
        rbgs_sweep(&mut phi, &rhs, 1.0);
        for p in r.iter_cells() {
            assert!((phi.get(p) - p.x as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn row_strided_sweep_matches_reference_bitwise() {
        // irregular (non-cube, offset) region, different phi/rhs ghosts
        let r = samr_mesh::region(ivec3(-2, 1, 0), ivec3(5, 8, 11));
        for ghost in [1i64, 2] {
            let mut a = Field3::zeros(r, ghost);
            let mut rhs = Field3::zeros(r, 0);
            let mut s = 7u64 + ghost as u64;
            for v in a.data_mut().iter_mut().chain(rhs.data_mut().iter_mut()) {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *v = ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
            }
            let mut b = a.clone();
            for _ in 0..3 {
                rbgs_sweep(&mut a, &rhs, 0.5);
                reference::rbgs_sweep(&mut b, &rhs, 0.5);
            }
            let bits = |f: &Field3| -> Vec<u64> { f.data().iter().map(|v| v.to_bits()).collect() };
            assert_eq!(bits(&a), bits(&b), "ghost={ghost}");
        }
    }

    #[test]
    fn converges_to_manufactured_solution() {
        // Manufactured: φ* = x² ⇒ ∇²φ* = 2. Ghosts carry the exact values.
        let r = Region::cube(8);
        let mut phi = Field3::zeros(r, 1);
        // exact on ghosts, zero inside
        fill(&mut phi, |p| {
            if r.contains(p) {
                0.0
            } else {
                (p.x * p.x) as f64
            }
        });
        let rhs = Field3::constant(r, 1, 2.0);
        let (sweeps, res) = solve(&mut phi, &rhs, 1.0, 1e-10, 2000);
        assert!(sweeps < 2000, "did not converge: residual {res}");
        for p in r.iter_cells() {
            assert!(
                (phi.get(p) - (p.x * p.x) as f64).abs() < 1e-6,
                "at {p:?}: {} vs {}",
                phi.get(p),
                p.x * p.x
            );
        }
    }

    #[test]
    fn residual_decreases_monotonically_enough() {
        let r = Region::cube(8);
        let mut phi = Field3::zeros(r, 1);
        let mut rhs = Field3::zeros(r, 1);
        rhs.set(ivec3(4, 4, 4), -50.0); // point source
        let r0 = residual_l2(&phi, &rhs, 1.0);
        rbgs_sweep(&mut phi, &rhs, 1.0);
        let r1 = residual_l2(&phi, &rhs, 1.0);
        for _ in 0..20 {
            rbgs_sweep(&mut phi, &rhs, 1.0);
        }
        let r2 = residual_l2(&phi, &rhs, 1.0);
        assert!(r1 < r0);
        assert!(r2 < r1 * 0.9);
    }

    #[test]
    fn gradient_of_linear_field_exact() {
        let r = Region::cube(4);
        let mut phi = Field3::zeros(r, 1);
        fill(&mut phi, |p| 2.0 * p.x as f64 - 3.0 * p.y as f64 + p.z as f64);
        let g = gradient(&phi, ivec3(2, 2, 2), 1.0);
        assert!((g[0] - 2.0).abs() < 1e-12);
        assert!((g[1] + 3.0).abs() < 1e-12);
        assert!((g[2] - 1.0).abs() < 1e-12);
        // spacing scales it
        let g = gradient(&phi, ivec3(2, 2, 2), 0.5);
        assert!((g[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn point_source_yields_negative_well() {
        // ∇²φ = q with q < 0 at center and φ=0 boundary → φ > 0 well? sign:
        // discrete solution of ∇²φ = −δ is positive (like −1/r potential
        // flipped); just assert the center is the extremum.
        let r = Region::cube(9);
        let mut phi = Field3::zeros(r, 1);
        let mut rhs = Field3::zeros(r, 1);
        rhs.set(ivec3(4, 4, 4), -10.0);
        solve(&mut phi, &rhs, 1.0, 1e-8, 5000);
        let c = phi.get(ivec3(4, 4, 4));
        assert!(c > 0.0);
        assert!(c >= phi.get(ivec3(0, 0, 0)));
        assert!(c >= phi.get(ivec3(8, 4, 4)));
    }
}
