//! Exact Riemann solver for the 1-D Euler equations (Toro's two-shock /
//! two-rarefaction iteration), used to validate the HLL scheme against
//! analytic solutions of Sod-type shock tubes.

/// A primitive 1-D state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrimState {
    pub rho: f64,
    pub v: f64,
    pub p: f64,
}

impl PrimState {
    pub fn sound_speed(&self, gamma: f64) -> f64 {
        (gamma * self.p / self.rho).sqrt()
    }
}

/// The exact solution structure of a Riemann problem.
#[derive(Clone, Copy, Debug)]
pub struct RiemannSolution {
    /// Star-region pressure.
    pub p_star: f64,
    /// Star-region (contact) velocity.
    pub v_star: f64,
    /// Density left of the contact.
    pub rho_star_l: f64,
    /// Density right of the contact.
    pub rho_star_r: f64,
}

/// `f_K(p)` and its derivative for the pressure iteration (Toro §4.3).
fn f_k(p: f64, s: &PrimState, gamma: f64) -> (f64, f64) {
    let a = 2.0 / ((gamma + 1.0) * s.rho);
    let b = (gamma - 1.0) / (gamma + 1.0) * s.p;
    if p > s.p {
        // shock
        let q = (a / (p + b)).sqrt();
        let f = (p - s.p) * q;
        let df = q * (1.0 - (p - s.p) / (2.0 * (p + b)));
        (f, df)
    } else {
        // rarefaction
        let c = s.sound_speed(gamma);
        let pr = p / s.p;
        let g1 = (gamma - 1.0) / (2.0 * gamma);
        let f = 2.0 * c / (gamma - 1.0) * (pr.powf(g1) - 1.0);
        let df = 1.0 / (s.rho * c) * pr.powf(-(gamma + 1.0) / (2.0 * gamma));
        (f, df)
    }
}

/// Solve the Riemann problem exactly. Panics on vacuum-generating data.
pub fn solve_riemann(left: &PrimState, right: &PrimState, gamma: f64) -> RiemannSolution {
    let cl = left.sound_speed(gamma);
    let cr = right.sound_speed(gamma);
    // vacuum check
    assert!(
        2.0 * (cl + cr) / (gamma - 1.0) > right.v - left.v,
        "vacuum-generating Riemann data"
    );
    // initial guess: two-rarefaction approximation
    let g1 = (gamma - 1.0) / (2.0 * gamma);
    let p0 = ((cl + cr - 0.5 * (gamma - 1.0) * (right.v - left.v))
        / (cl / left.p.powf(g1) + cr / right.p.powf(g1)))
    .powf(1.0 / g1);
    let mut p = p0.max(1e-12);
    for _ in 0..60 {
        let (fl, dfl) = f_k(p, left, gamma);
        let (fr, dfr) = f_k(p, right, gamma);
        let f = fl + fr + (right.v - left.v);
        let df = dfl + dfr;
        let step = f / df;
        let next = (p - step).max(1e-12);
        if (next - p).abs() / (0.5 * (next + p)) < 1e-14 {
            p = next;
            break;
        }
        p = next;
    }
    let (fl, _) = f_k(p, left, gamma);
    let (fr, _) = f_k(p, right, gamma);
    let v_star = 0.5 * (left.v + right.v) + 0.5 * (fr - fl);

    let star_rho = |s: &PrimState| -> f64 {
        let b = (gamma - 1.0) / (gamma + 1.0);
        if p > s.p {
            // shock: Rankine-Hugoniot density
            s.rho * ((p / s.p + b) / (b * p / s.p + 1.0))
        } else {
            // rarefaction: isentropic
            s.rho * (p / s.p).powf(1.0 / gamma)
        }
    };
    RiemannSolution {
        p_star: p,
        v_star,
        rho_star_l: star_rho(left),
        rho_star_r: star_rho(right),
    }
}

/// Sample the exact solution at similarity coordinate `xi = x/t`.
pub fn sample(
    left: &PrimState,
    right: &PrimState,
    sol: &RiemannSolution,
    gamma: f64,
    xi: f64,
) -> PrimState {
    let g1 = (gamma - 1.0) / (gamma + 1.0);
    if xi <= sol.v_star {
        // left of contact
        let s = left;
        let c = s.sound_speed(gamma);
        if sol.p_star > s.p {
            // left shock
            let sh = s.v - c * ((gamma + 1.0) / (2.0 * gamma) * sol.p_star / s.p
                + (gamma - 1.0) / (2.0 * gamma))
                .sqrt();
            if xi < sh {
                *s
            } else {
                PrimState {
                    rho: sol.rho_star_l,
                    v: sol.v_star,
                    p: sol.p_star,
                }
            }
        } else {
            // left rarefaction: head and tail speeds
            let c_star = c * (sol.p_star / s.p).powf((gamma - 1.0) / (2.0 * gamma));
            let head = s.v - c;
            let tail = sol.v_star - c_star;
            if xi < head {
                *s
            } else if xi > tail {
                PrimState {
                    rho: sol.rho_star_l,
                    v: sol.v_star,
                    p: sol.p_star,
                }
            } else {
                // inside the fan
                let v = (1.0 - g1) * xi + g1 * (s.v + 2.0 * c / (gamma - 1.0));
                let c_local = v - xi;
                let rho = s.rho * (c_local / c).powf(2.0 / (gamma - 1.0));
                let p = s.p * (c_local / c).powf(2.0 * gamma / (gamma - 1.0));
                PrimState { rho, v, p }
            }
        }
    } else {
        // right of contact (mirror)
        let s = right;
        let c = s.sound_speed(gamma);
        if sol.p_star > s.p {
            let sh = s.v + c * ((gamma + 1.0) / (2.0 * gamma) * sol.p_star / s.p
                + (gamma - 1.0) / (2.0 * gamma))
                .sqrt();
            if xi > sh {
                *s
            } else {
                PrimState {
                    rho: sol.rho_star_r,
                    v: sol.v_star,
                    p: sol.p_star,
                }
            }
        } else {
            let c_star = c * (sol.p_star / s.p).powf((gamma - 1.0) / (2.0 * gamma));
            let head = s.v + c;
            let tail = sol.v_star + c_star;
            if xi > head {
                *s
            } else if xi < tail {
                PrimState {
                    rho: sol.rho_star_r,
                    v: sol.v_star,
                    p: sol.p_star,
                }
            } else {
                let v = (1.0 - g1) * xi - g1 * (2.0 * c / (gamma - 1.0) - s.v);
                let c_local = xi - v;
                let rho = s.rho * (c_local / c).powf(2.0 / (gamma - 1.0));
                let p = s.p * (c_local / c).powf(2.0 * gamma / (gamma - 1.0));
                PrimState { rho, v, p }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler::{self, fields as F};
    use samr_mesh::field::Field3;
    use samr_mesh::region::region;
    use samr_mesh::ivec3;

    const GAMMA: f64 = 1.4;

    fn sod() -> (PrimState, PrimState) {
        (
            PrimState { rho: 1.0, v: 0.0, p: 1.0 },
            PrimState { rho: 0.125, v: 0.0, p: 0.1 },
        )
    }

    #[test]
    fn sod_star_state_matches_literature() {
        let (l, r) = sod();
        let s = solve_riemann(&l, &r, GAMMA);
        // Toro's reference values for the Sod problem
        assert!((s.p_star - 0.30313).abs() < 1e-4, "p* {}", s.p_star);
        assert!((s.v_star - 0.92745).abs() < 1e-4, "v* {}", s.v_star);
        assert!((s.rho_star_l - 0.42632).abs() < 1e-4, "rho*L {}", s.rho_star_l);
        assert!((s.rho_star_r - 0.26557).abs() < 1e-4, "rho*R {}", s.rho_star_r);
    }

    #[test]
    fn symmetric_collision_has_zero_contact_velocity() {
        let l = PrimState { rho: 1.0, v: 2.0, p: 1.0 };
        let r = PrimState { rho: 1.0, v: -2.0, p: 1.0 };
        let s = solve_riemann(&l, &r, GAMMA);
        assert!(s.v_star.abs() < 1e-12);
        assert!(s.p_star > 1.0, "colliding flows compress");
        assert!((s.rho_star_l - s.rho_star_r).abs() < 1e-12);
    }

    #[test]
    fn trivial_riemann_problem_is_identity() {
        let u = PrimState { rho: 1.0, v: 0.3, p: 2.0 };
        let s = solve_riemann(&u, &u, GAMMA);
        assert!((s.p_star - 2.0).abs() < 1e-10);
        assert!((s.v_star - 0.3).abs() < 1e-10);
        let mid = sample(&u, &u, &s, GAMMA, 0.3);
        assert!((mid.rho - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sampling_is_consistent_at_extremes() {
        let (l, r) = sod();
        let s = solve_riemann(&l, &r, GAMMA);
        let far_left = sample(&l, &r, &s, GAMMA, -10.0);
        let far_right = sample(&l, &r, &s, GAMMA, 10.0);
        assert_eq!(far_left, l);
        assert_eq!(far_right, r);
        // at the contact, pressure and velocity continuous, density jumps
        let eps = 1e-6;
        let cl = sample(&l, &r, &s, GAMMA, s.v_star - eps);
        let cr = sample(&l, &r, &s, GAMMA, s.v_star + eps);
        assert!((cl.p - cr.p).abs() < 1e-6);
        assert!((cl.v - cr.v).abs() < 1e-6);
        assert!((cl.rho - cr.rho).abs() > 0.1);
    }

    /// Run the 3-D HLL solver on a 1-D Sod tube (uniform in y, z) and
    /// compare the density profile against the exact solution.
    #[test]
    fn hll_converges_to_exact_sod_profile() {
        let (l, r) = sod();
        let exact = solve_riemann(&l, &r, GAMMA);
        let n = 64i64;
        let reg = region(ivec3(0, 0, 0), ivec3(n, 4, 4));
        let mut fs: Vec<Field3> = (0..euler::NFIELDS)
            .map(|_| Field3::zeros(reg, 1))
            .collect();
        for p in fs[0].storage_region().iter_cells() {
            let s = if p.x < n / 2 { l } else { r };
            fs[F::RHO].set(p, s.rho);
            fs[F::MX].set(p, s.rho * s.v);
            fs[F::E].set(p, s.p / (GAMMA - 1.0) + 0.5 * s.rho * s.v * s.v);
        }
        // advance to t such that waves stay inside the box
        let dx = 1.0;
        let mut t = 0.0;
        let t_end = 10.0; // in cell units: waves move ~1.75 cells/unit, safe
        while t < t_end {
            let smax = euler::max_wave_speed(&fs, GAMMA);
            let dt = (0.4 * dx / smax).min(t_end - t);
            for f in fs.iter_mut() {
                f.fill_ghosts_zero_gradient();
            }
            euler::sweep(&mut fs, 0, dt / dx, GAMMA);
            t += dt;
        }
        // compare rho(x) to exact rho((x - x0)/t)
        let x0 = (n / 2) as f64;
        let mut l1 = 0.0;
        for x in 0..n {
            let xi = (x as f64 + 0.5 - x0) / t;
            let ex = sample(&l, &r, &exact, GAMMA, xi);
            let got = fs[F::RHO].get(ivec3(x, 2, 2));
            l1 += (got - ex.rho).abs();
        }
        l1 /= n as f64;
        // first-order HLL at n=64: L1 error of a few percent
        assert!(l1 < 0.035, "L1 density error {l1}");
    }

    #[test]
    #[should_panic]
    fn vacuum_data_rejected() {
        let l = PrimState { rho: 1.0, v: -20.0, p: 0.01 };
        let r = PrimState { rho: 1.0, v: 20.0, p: 0.01 };
        let _ = solve_riemann(&l, &r, GAMMA);
    }
}
