//! 3-D compressible Euler equations: Godunov finite-volume update with HLL
//! fluxes and dimensional splitting.
//!
//! This is the hyperbolic (fluid) solver behind both evaluation datasets:
//! `ShockPool3D` solves "a purely hyperbolic equation" (a tilted planar shock
//! sweeping the domain) and `AMR64` uses the fluid equations alongside
//! Poisson's equation and particle ODEs.

use crate::checked_capacity;
use samr_mesh::field::Field3;
use samr_mesh::index::{ivec3, IVec3};
use samr_mesh::pool::FieldPool;

/// Number of conserved fields: ρ, mx, my, mz, E.
pub const NFIELDS: usize = 5;

/// Field indices within a patch's field vector.
pub mod fields {
    pub const RHO: usize = 0;
    pub const MX: usize = 1;
    pub const MY: usize = 2;
    pub const MZ: usize = 3;
    pub const E: usize = 4;
}

/// Floors applied after every update to keep the scheme robust on strong
/// shocks (standard practice in production SAMR codes).
pub const RHO_FLOOR: f64 = 1e-10;
pub const P_FLOOR: f64 = 1e-12;

/// A conserved state vector at one cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Cons {
    pub rho: f64,
    pub m: [f64; 3],
    pub e: f64,
}

impl Cons {
    /// Pressure via the ideal-gas EOS, floored.
    pub fn pressure(&self, gamma: f64) -> f64 {
        let ke = 0.5 * (self.m[0] * self.m[0] + self.m[1] * self.m[1] + self.m[2] * self.m[2])
            / self.rho.max(RHO_FLOOR);
        ((gamma - 1.0) * (self.e - ke)).max(P_FLOOR)
    }

    /// Sound speed.
    pub fn sound_speed(&self, gamma: f64) -> f64 {
        (gamma * self.pressure(gamma) / self.rho.max(RHO_FLOOR)).sqrt()
    }

    /// Velocity component along `axis`.
    pub fn vel(&self, axis: usize) -> f64 {
        self.m[axis] / self.rho.max(RHO_FLOOR)
    }

    /// Physical flux along `axis`.
    pub fn flux(&self, axis: usize, gamma: f64) -> [f64; NFIELDS] {
        let v = self.vel(axis);
        let p = self.pressure(gamma);
        let mut f = [
            self.rho * v,
            self.m[0] * v,
            self.m[1] * v,
            self.m[2] * v,
            (self.e + p) * v,
        ];
        f[1 + axis] += p;
        f
    }
}

/// Read the conserved state at cell `p` from a patch's field slice.
#[inline]
pub fn load(fieldset: &[Field3], p: IVec3) -> Cons {
    Cons {
        rho: fieldset[fields::RHO].get(p),
        m: [
            fieldset[fields::MX].get(p),
            fieldset[fields::MY].get(p),
            fieldset[fields::MZ].get(p),
        ],
        e: fieldset[fields::E].get(p),
    }
}

/// Clamp a conserved state to the density and pressure floors — the exact
/// per-cell post-update fix both the in-place and reference paths share.
#[inline]
pub fn apply_floors(mut u: Cons, gamma: f64) -> Cons {
    if u.rho < RHO_FLOOR {
        u.rho = RHO_FLOOR;
    }
    // enforce pressure floor by re-deriving energy when necessary
    let ke = 0.5 * (u.m[0] * u.m[0] + u.m[1] * u.m[1] + u.m[2] * u.m[2]) / u.rho;
    let p_now = (gamma - 1.0) * (u.e - ke);
    if p_now < P_FLOOR {
        u.e = ke + P_FLOOR / (gamma - 1.0);
    }
    u
}

/// Write a conserved state to cell `p`, applying floors.
#[inline]
pub fn store(fieldset: &mut [Field3], p: IVec3, u: Cons, gamma: f64) {
    let u = apply_floors(u, gamma);
    fieldset[fields::RHO].set(p, u.rho);
    fieldset[fields::MX].set(p, u.m[0]);
    fieldset[fields::MY].set(p, u.m[1]);
    fieldset[fields::MZ].set(p, u.m[2]);
    fieldset[fields::E].set(p, u.e);
}

/// HLL numerical flux along `axis` between left and right states.
pub fn hll_flux(l: &Cons, r: &Cons, axis: usize, gamma: f64) -> [f64; NFIELDS] {
    let vl = l.vel(axis);
    let vr = r.vel(axis);
    let al = l.sound_speed(gamma);
    let ar = r.sound_speed(gamma);
    let sl = (vl - al).min(vr - ar);
    let sr = (vl + al).max(vr + ar);
    if sl >= 0.0 {
        return l.flux(axis, gamma);
    }
    if sr <= 0.0 {
        return r.flux(axis, gamma);
    }
    let fl = l.flux(axis, gamma);
    let fr = r.flux(axis, gamma);
    let ul = [l.rho, l.m[0], l.m[1], l.m[2], l.e];
    let ur = [r.rho, r.m[0], r.m[1], r.m[2], r.e];
    let mut f = [0.0; NFIELDS];
    let inv = 1.0 / (sr - sl);
    for k in 0..NFIELDS {
        f[k] = (sr * fl[k] - sl * fr[k] + sl * sr * (ur[k] - ul[k])) * inv;
    }
    f
}

/// Axis unit vector for a dimensionally-split sweep.
#[inline]
pub(crate) fn axis_dir(axis: usize) -> IVec3 {
    match axis {
        0 => ivec3(1, 0, 0),
        1 => ivec3(0, 1, 0),
        _ => ivec3(0, 0, 1),
    }
}

/// Acquire `NFIELDS` pooled ghost-0 scratch fields over `interior` — the
/// write side of the solver double buffer.
pub(crate) fn acquire_scratch(
    pool: &FieldPool,
    interior: samr_mesh::region::Region,
    nfields: usize,
) -> Vec<Field3> {
    (0..nfields)
        .map(|_| Field3::new_in(pool, interior, 0))
        .collect()
}

/// Copy the scratch interiors back over `fieldset` and shelve the scratch
/// buffers. Row-sliced copies preserve bits exactly, so this is equivalent
/// to the reference path's deferred tuple application.
pub(crate) fn commit_scratch(fieldset: &mut [Field3], scratch: Vec<Field3>, pool: &FieldPool) {
    for (dst, src) in fieldset.iter_mut().zip(scratch.iter()) {
        let interior = src.interior();
        dst.copy_from(src, &interior);
    }
    for s in scratch {
        s.recycle(pool);
    }
}

/// One dimensionally-split first-order Godunov sweep along `axis` over the
/// interior of the patch. Ghost zones must have been filled beforehand.
///
/// Double-buffered through `pool`: updated states stream row-wise into
/// pooled scratch fields (the stencil reads neighbours, so writes cannot go
/// in place directly) and the interiors are copied back at the end — no
/// per-call update-list allocation. Bit-identical to [`reference::sweep`].
pub fn sweep(fieldset: &mut [Field3], axis: usize, dt_over_dx: f64, gamma: f64, pool: &FieldPool) {
    assert!(fieldset.len() >= NFIELDS);
    let interior = fieldset[0].interior();
    let dir = axis_dir(axis);
    let mut scratch = acquire_scratch(pool, interior, NFIELDS);
    {
        // ghost-0 scratch ⇒ its storage region is exactly `interior`, so one
        // row range addresses the same cells in all five output slices
        let mut out: Vec<&mut [f64]> = scratch.iter_mut().map(|f| f.data_mut()).collect();
        for x in interior.lo.x..interior.hi.x {
            for y in interior.lo.y..interior.hi.y {
                let row = interior.row_range(x, y, interior.lo.z, interior.hi.z);
                for (k, i) in row.enumerate() {
                    let p = ivec3(x, y, interior.lo.z + k as i64);
                    let um = load(fieldset, p - dir);
                    let u0 = load(fieldset, p);
                    let up = load(fieldset, p + dir);
                    let f_lo = hll_flux(&um, &u0, axis, gamma);
                    let f_hi = hll_flux(&u0, &up, axis, gamma);
                    let mut v = [u0.rho, u0.m[0], u0.m[1], u0.m[2], u0.e];
                    for kk in 0..NFIELDS {
                        v[kk] -= dt_over_dx * (f_hi[kk] - f_lo[kk]);
                    }
                    let u = apply_floors(
                        Cons {
                            rho: v[0],
                            m: [v[1], v[2], v[3]],
                            e: v[4],
                        },
                        gamma,
                    );
                    out[fields::RHO][i] = u.rho;
                    out[fields::MX][i] = u.m[0];
                    out[fields::MY][i] = u.m[1];
                    out[fields::MZ][i] = u.m[2];
                    out[fields::E][i] = u.e;
                }
            }
        }
    }
    commit_scratch(fieldset, scratch, pool);
}

/// Full XYZ dimensionally-split step.
///
/// Ghost zones are refilled with zero-gradient extrapolation *before each
/// sweep* so the stencil never reads values stale from the previous sweep
/// (which would break conservation). Callers that have sibling/parent ghost
/// data should fill ghosts once before calling (the first sweep then uses
/// it) or drive [`sweep`] directly with their own exchange between sweeps.
pub fn euler_step(fieldset: &mut [Field3], dt_over_dx: f64, gamma: f64, pool: &FieldPool) {
    for axis in 0..3 {
        if axis > 0 {
            for f in fieldset.iter_mut().take(NFIELDS) {
                f.fill_ghosts_zero_gradient();
            }
        }
        sweep(fieldset, axis, dt_over_dx, gamma, pool);
    }
}

/// Maximum signal speed (|v|+a over all axes) over the interior — the CFL
/// quantity.
pub fn max_wave_speed(fieldset: &[Field3], gamma: f64) -> f64 {
    let interior = fieldset[0].interior();
    let mut s: f64 = 0.0;
    for p in interior.iter_cells() {
        let u = load(fieldset, p);
        let a = u.sound_speed(gamma);
        for axis in 0..3 {
            s = s.max(u.vel(axis).abs() + a);
        }
    }
    s
}

/// Total conserved quantities over the interior: (mass, momentum, energy).
pub fn totals(fieldset: &[Field3]) -> (f64, [f64; 3], f64) {
    let interior = fieldset[0].interior();
    let mut mass = 0.0;
    let mut mom = [0.0; 3];
    let mut e = 0.0;
    for p in interior.iter_cells() {
        let u = load(fieldset, p);
        mass += u.rho;
        for k in 0..3 {
            mom[k] += u.m[k];
        }
        e += u.e;
    }
    (mass, mom, e)
}

/// The update-list forms of the sweep the in-place double-buffered versions
/// replaced, retained purely as bit-identity oracles for the golden tests.
/// Production code must call [`sweep`] / [`euler_step`].
pub mod reference {
    use super::*;

    /// Reference for [`super::sweep`]: accumulate `(cell, state)` tuples,
    /// then apply them through [`store`].
    pub fn sweep(fieldset: &mut [Field3], axis: usize, dt_over_dx: f64, gamma: f64) {
        assert!(fieldset.len() >= NFIELDS);
        let interior = fieldset[0].interior();
        let dir = axis_dir(axis);
        // Collect updates first, then apply (the stencil reads neighbours).
        let mut updates: Vec<(IVec3, Cons)> = Vec::with_capacity(checked_capacity(interior.cells()));
        for p in interior.iter_cells() {
            let um = load(fieldset, p - dir);
            let u0 = load(fieldset, p);
            let up = load(fieldset, p + dir);
            let f_lo = hll_flux(&um, &u0, axis, gamma);
            let f_hi = hll_flux(&u0, &up, axis, gamma);
            let mut v = [u0.rho, u0.m[0], u0.m[1], u0.m[2], u0.e];
            for k in 0..NFIELDS {
                v[k] -= dt_over_dx * (f_hi[k] - f_lo[k]);
            }
            updates.push((
                p,
                Cons {
                    rho: v[0],
                    m: [v[1], v[2], v[3]],
                    e: v[4],
                },
            ));
        }
        for (p, u) in updates {
            store(fieldset, p, u, gamma);
        }
    }

    /// Reference for [`super::euler_step`].
    pub fn euler_step(fieldset: &mut [Field3], dt_over_dx: f64, gamma: f64) {
        for axis in 0..3 {
            if axis > 0 {
                for f in fieldset.iter_mut().take(NFIELDS) {
                    f.fill_ghosts_zero_gradient();
                }
            }
            sweep(fieldset, axis, dt_over_dx, gamma);
        }
    }
}

/// Set a uniform ambient state over the full storage (ghosts included).
pub fn set_ambient(fieldset: &mut [Field3], rho: f64, v: [f64; 3], p: f64, gamma: f64) {
    let e = p / (gamma - 1.0) + 0.5 * rho * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
    fieldset[fields::RHO].fill(rho);
    fieldset[fields::MX].fill(rho * v[0]);
    fieldset[fields::MY].fill(rho * v[1]);
    fieldset[fields::MZ].fill(rho * v[2]);
    fieldset[fields::E].fill(e);
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_mesh::region::Region;

    fn uniform_set(n: i64, ghost: i64) -> Vec<Field3> {
        (0..NFIELDS)
            .map(|_| Field3::zeros(Region::cube(n), ghost))
            .collect()
    }

    /// Deterministic pseudo-random, physically plausible state (LCG fill)
    /// for golden comparisons without a rand dependency.
    fn scrambled_state(n: i64, ghost: i64, seed: u64) -> Vec<Field3> {
        let mut fs = uniform_set(n, ghost);
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15);
        for (k, f) in fs.iter_mut().enumerate() {
            for v in f.data_mut() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let u = (s >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
                *v = match k {
                    fields::RHO => 0.5 + u,
                    fields::E => 1.5 + u,
                    _ => u - 0.5,
                };
            }
        }
        fs
    }

    fn bits(fs: &[Field3]) -> Vec<Vec<u64>> {
        fs.iter()
            .map(|f| f.data().iter().map(|v| v.to_bits()).collect())
            .collect()
    }

    #[test]
    fn in_place_sweep_matches_reference_bitwise() {
        let pool = FieldPool::new();
        for seed in [1u64, 2, 3] {
            let mut a = scrambled_state(9, 1, seed);
            let mut b = a.clone();
            for axis in 0..3 {
                sweep(&mut a, axis, 0.21, 1.4, &pool);
                reference::sweep(&mut b, axis, 0.21, 1.4);
                assert_eq!(bits(&a), bits(&b), "seed {seed} axis {axis}");
            }
            euler_step(&mut a, 0.17, 1.4, &pool);
            reference::euler_step(&mut b, 0.17, 1.4);
            assert_eq!(bits(&a), bits(&b), "seed {seed} full step");
        }
        // the double buffer actually recycled: after warm-up, zero misses
        let s = pool.stats();
        assert!(s.hits > 0, "scratch reused across sweeps: {s:?}");
    }

    #[test]
    fn uniform_state_is_steady() {
        let pool = FieldPool::new();
        let mut fs = uniform_set(6, 1);
        set_ambient(&mut fs, 1.0, [0.0; 3], 1.0, 1.4);
        let before = totals(&fs);
        euler_step(&mut fs, 0.1, 1.4, &pool);
        let after = totals(&fs);
        assert!((before.0 - after.0).abs() < 1e-12);
        assert!((before.2 - after.2).abs() < 1e-12);
        // pointwise steady
        for p in Region::cube(6).iter_cells() {
            assert!((fs[fields::RHO].get(p) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pressure_and_sound_speed() {
        let u = Cons {
            rho: 1.0,
            m: [0.0; 3],
            e: 2.5,
        };
        assert!((u.pressure(1.4) - 1.0).abs() < 1e-12);
        assert!((u.sound_speed(1.4) - 1.4f64.sqrt()).abs() < 1e-12);
        // moving frame: subtract kinetic energy
        let u = Cons {
            rho: 2.0,
            m: [2.0, 0.0, 0.0],
            e: 3.5,
        };
        // ke = 0.5*4/2 = 1 ⇒ p = 0.4*(3.5-1) = 1
        assert!((u.pressure(1.4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hll_consistent_with_physical_flux() {
        // identical supersonic left/right states: HLL must equal the exact flux
        let u = Cons {
            rho: 1.0,
            m: [3.0, 0.0, 0.0],
            e: 5.0,
        };
        let f = hll_flux(&u, &u, 0, 1.4);
        let exact = u.flux(0, 1.4);
        for k in 0..NFIELDS {
            assert!((f[k] - exact[k]).abs() < 1e-12, "component {k}");
        }
    }

    #[test]
    fn mass_conserved_in_interior_shock_tube() {
        // Sod-like jump in the middle of a periodic-free box; before the wave
        // reaches the boundary total interior mass is conserved.
        let pool = FieldPool::new();
        let n = 16;
        let mut fs = uniform_set(n, 1);
        let gamma = 1.4;
        for p in fs[0].storage_region().iter_cells() {
            let (rho, pr) = if p.x < n / 2 { (1.0, 1.0) } else { (0.125, 0.1) };
            let u = Cons {
                rho,
                m: [0.0; 3],
                e: pr / (gamma - 1.0),
            };
            fs[fields::RHO].set(p, u.rho);
            fs[fields::MX].set(p, 0.0);
            fs[fields::MY].set(p, 0.0);
            fs[fields::MZ].set(p, 0.0);
            fs[fields::E].set(p, u.e);
        }
        let (m0, _, e0) = totals(&fs);
        // a few small steps; dt chosen well under CFL
        let s = max_wave_speed(&fs, gamma);
        let dt_over_dx = 0.4 / s;
        for _ in 0..3 {
            // refill ghosts from interior edge (zero-gradient)
            for f in fs.iter_mut() {
                f.fill_ghosts_zero_gradient();
            }
            euler_step(&mut fs, dt_over_dx, gamma, &pool);
        }
        let (m1, mom1, e1) = totals(&fs);
        assert!((m0 - m1).abs() / m0 < 1e-10, "mass {m0} -> {m1}");
        assert!((e0 - e1).abs() / e0 < 1e-10, "energy {e0} -> {e1}");
        // shock generates +x momentum
        assert!(mom1[0] > 1e-3);
    }

    #[test]
    fn shock_moves_in_expected_direction() {
        let pool = FieldPool::new();
        let n = 16;
        let gamma = 1.4;
        let mut fs = uniform_set(n, 1);
        for p in fs[0].storage_region().iter_cells() {
            let (rho, pr) = if p.x < 4 { (4.0, 4.0) } else { (1.0, 1.0) };
            fs[fields::RHO].set(p, rho);
            fs[fields::E].set(p, pr / (gamma - 1.0));
        }
        let s = max_wave_speed(&fs, gamma);
        let mut steps = 0;
        let dt_over_dx = 0.4 / s;
        for _ in 0..6 {
            for f in fs.iter_mut() {
                f.fill_ghosts_zero_gradient();
            }
            euler_step(&mut fs, dt_over_dx, gamma, &pool);
            steps += 1;
        }
        assert!(steps == 6);
        // density at x=6 must have risen above ambient as the shock passed
        let probe = ivec3(6, n / 2, n / 2);
        assert!(
            fs[fields::RHO].get(probe) > 1.05,
            "rho at probe {}",
            fs[fields::RHO].get(probe)
        );
    }

    #[test]
    fn cfl_speed_positive_and_scales_with_pressure() {
        let mut quiet = uniform_set(4, 1);
        set_ambient(&mut quiet, 1.0, [0.0; 3], 1.0, 1.4);
        let mut hot = uniform_set(4, 1);
        set_ambient(&mut hot, 1.0, [0.0; 3], 100.0, 1.4);
        let sq = max_wave_speed(&quiet, 1.4);
        let sh = max_wave_speed(&hot, 1.4);
        assert!(sq > 0.0);
        assert!((sh / sq - 10.0).abs() < 1e-9);
    }

    #[test]
    fn floors_prevent_negative_states() {
        let mut fs = uniform_set(4, 1);
        let bad = Cons {
            rho: -1.0,
            m: [0.0; 3],
            e: -5.0,
        };
        store(&mut fs, ivec3(0, 0, 0), bad, 1.4);
        let u = load(&fs, ivec3(0, 0, 0));
        assert!(u.rho >= RHO_FLOOR);
        assert!(u.pressure(1.4) >= P_FLOOR);
    }
}
