//! 3-D compressible Euler equations: Godunov finite-volume update with HLL
//! fluxes and dimensional splitting.
//!
//! This is the hyperbolic (fluid) solver behind both evaluation datasets:
//! `ShockPool3D` solves "a purely hyperbolic equation" (a tilted planar shock
//! sweeping the domain) and `AMR64` uses the fluid equations alongside
//! Poisson's equation and particle ODEs.

use crate::checked_capacity;
use samr_mesh::field::Field3;
use samr_mesh::index::{ivec3, IVec3};
use samr_mesh::pool::FieldAlloc;
use samr_mesh::region::Region;

/// Number of conserved fields: ρ, mx, my, mz, E.
pub const NFIELDS: usize = 5;

/// Field indices within a patch's field vector.
pub mod fields {
    pub const RHO: usize = 0;
    pub const MX: usize = 1;
    pub const MY: usize = 2;
    pub const MZ: usize = 3;
    pub const E: usize = 4;
}

/// Floors applied after every update to keep the scheme robust on strong
/// shocks (standard practice in production SAMR codes).
pub const RHO_FLOOR: f64 = 1e-10;
pub const P_FLOOR: f64 = 1e-12;

/// A conserved state vector at one cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Cons {
    pub rho: f64,
    pub m: [f64; 3],
    pub e: f64,
}

impl Cons {
    /// Pressure via the ideal-gas EOS, floored.
    pub fn pressure(&self, gamma: f64) -> f64 {
        let ke = 0.5 * (self.m[0] * self.m[0] + self.m[1] * self.m[1] + self.m[2] * self.m[2])
            / self.rho.max(RHO_FLOOR);
        ((gamma - 1.0) * (self.e - ke)).max(P_FLOOR)
    }

    /// Sound speed.
    pub fn sound_speed(&self, gamma: f64) -> f64 {
        (gamma * self.pressure(gamma) / self.rho.max(RHO_FLOOR)).sqrt()
    }

    /// Velocity component along `axis`.
    pub fn vel(&self, axis: usize) -> f64 {
        self.m[axis] / self.rho.max(RHO_FLOOR)
    }

    /// Physical flux along `axis`.
    pub fn flux(&self, axis: usize, gamma: f64) -> [f64; NFIELDS] {
        let v = self.vel(axis);
        let p = self.pressure(gamma);
        let mut f = [
            self.rho * v,
            self.m[0] * v,
            self.m[1] * v,
            self.m[2] * v,
            (self.e + p) * v,
        ];
        f[1 + axis] += p;
        f
    }
}

/// Read the conserved state at cell `p` from a patch's field slice.
#[inline]
pub fn load(fieldset: &[Field3], p: IVec3) -> Cons {
    Cons {
        rho: fieldset[fields::RHO].get(p),
        m: [
            fieldset[fields::MX].get(p),
            fieldset[fields::MY].get(p),
            fieldset[fields::MZ].get(p),
        ],
        e: fieldset[fields::E].get(p),
    }
}

/// Clamp a conserved state to the density and pressure floors — the exact
/// per-cell post-update fix both the in-place and reference paths share.
#[inline]
pub fn apply_floors(mut u: Cons, gamma: f64) -> Cons {
    if u.rho < RHO_FLOOR {
        u.rho = RHO_FLOOR;
    }
    // enforce pressure floor by re-deriving energy when necessary
    let ke = 0.5 * (u.m[0] * u.m[0] + u.m[1] * u.m[1] + u.m[2] * u.m[2]) / u.rho;
    let p_now = (gamma - 1.0) * (u.e - ke);
    if p_now < P_FLOOR {
        u.e = ke + P_FLOOR / (gamma - 1.0);
    }
    u
}

/// Write a conserved state to cell `p`, applying floors.
#[inline]
pub fn store(fieldset: &mut [Field3], p: IVec3, u: Cons, gamma: f64) {
    let u = apply_floors(u, gamma);
    fieldset[fields::RHO].set(p, u.rho);
    fieldset[fields::MX].set(p, u.m[0]);
    fieldset[fields::MY].set(p, u.m[1]);
    fieldset[fields::MZ].set(p, u.m[2]);
    fieldset[fields::E].set(p, u.e);
}

/// The per-cell quantities an HLL interface needs from each side, computed
/// once per cell by the line kernel and reused by both of the cell's
/// interfaces. `v`, `a` and `f` are exactly [`Cons::vel`],
/// [`Cons::sound_speed`] and [`Cons::flux`] of `u` — pure functions of the
/// state — so an HLL flux assembled from two `AxisPrim`s is bit-identical
/// to [`hll_flux`] on the raw states (which now delegates here).
#[derive(Clone, Copy, Debug)]
pub(crate) struct AxisPrim {
    pub u: Cons,
    pub v: f64,
    pub a: f64,
    pub f: [f64; NFIELDS],
}

impl AxisPrim {
    /// Shared-subexpression form of calling [`Cons::vel`],
    /// [`Cons::sound_speed`] and [`Cons::flux`] separately: the floored
    /// density, kinetic energy, pressure and velocity are each the same
    /// expression on the same inputs as in those methods, computed once and
    /// reused — so the bits match the three separate calls while performing
    /// three divisions instead of six.
    #[inline]
    pub(crate) fn new(u: Cons, axis: usize, gamma: f64) -> Self {
        let rho = u.rho.max(RHO_FLOOR);
        let ke = 0.5 * (u.m[0] * u.m[0] + u.m[1] * u.m[1] + u.m[2] * u.m[2]) / rho;
        let p = ((gamma - 1.0) * (u.e - ke)).max(P_FLOOR);
        let v = u.m[axis] / rho;
        let a = (gamma * p / rho).sqrt();
        let mut f = [
            u.rho * v,
            u.m[0] * v,
            u.m[1] * v,
            u.m[2] * v,
            (u.e + p) * v,
        ];
        f[1 + axis] += p;
        AxisPrim { u, v, a, f }
    }
}

/// HLL flux from precomputed per-side primitives — the single shared
/// implementation behind [`hll_flux`] and the row kernels.
///
/// Written branch-free (compute the mid-state flux unconditionally, then
/// *select* per component) so the row kernels' per-interface loops
/// if-convert and vectorize. The selected values are exactly those of the
/// early-return form: when `sl >= 0` the left flux is chosen regardless of
/// what the mid expression evaluated to (it may be inf/NaN when
/// `sr == sl`; IEEE arithmetic on it has no side effects and the value is
/// discarded), and symmetrically for `sr <= 0`.
#[inline]
pub(crate) fn hll_from_prims(l: &AxisPrim, r: &AxisPrim) -> [f64; NFIELDS] {
    let sl = (l.v - l.a).min(r.v - r.a);
    let sr = (l.v + l.a).max(r.v + r.a);
    let ul = [l.u.rho, l.u.m[0], l.u.m[1], l.u.m[2], l.u.e];
    let ur = [r.u.rho, r.u.m[0], r.u.m[1], r.u.m[2], r.u.e];
    let mut f = [0.0; NFIELDS];
    let inv = 1.0 / (sr - sl);
    let slsr = sl * sr;
    for k in 0..NFIELDS {
        let mid = (sr * l.f[k] - sl * r.f[k] + slsr * (ur[k] - ul[k])) * inv;
        f[k] = if sl >= 0.0 {
            l.f[k]
        } else if sr <= 0.0 {
            r.f[k]
        } else {
            mid
        };
    }
    f
}

/// HLL numerical flux along `axis` between left and right states.
pub fn hll_flux(l: &Cons, r: &Cons, axis: usize, gamma: f64) -> [f64; NFIELDS] {
    hll_from_prims(
        &AxisPrim::new(*l, axis, gamma),
        &AxisPrim::new(*r, axis, gamma),
    )
}

/// Axis unit vector for a dimensionally-split sweep.
#[inline]
pub(crate) fn axis_dir(axis: usize) -> IVec3 {
    match axis {
        0 => ivec3(1, 0, 0),
        1 => ivec3(0, 1, 0),
        _ => ivec3(0, 0, 1),
    }
}

/// The Godunov flux-difference update at one cell, before floors. Shared
/// verbatim by the optimized line kernels and the reference sweeps, so the
/// two stay bit-identical by construction.
#[inline]
pub(crate) fn flux_difference_update(
    u0: &Cons,
    f_lo: &[f64; NFIELDS],
    f_hi: &[f64; NFIELDS],
    dt_over_dx: f64,
) -> Cons {
    let mut v = [u0.rho, u0.m[0], u0.m[1], u0.m[2], u0.e];
    for k in 0..NFIELDS {
        v[k] -= dt_over_dx * (f_hi[k] - f_lo[k]);
    }
    Cons {
        rho: v[0],
        m: [v[1], v[2], v[3]],
        e: v[4],
    }
}

/// Geometry of one sweep line: the run of cells along the sweep axis at
/// fixed transverse coordinates, with precomputed start indices and strides
/// into the (ghosted) source storage and the ghost-0 output region — all
/// 3D→1D index math is done once per line, not once per cell.
pub(crate) struct LinePlan {
    pub src_start: usize,
    pub out_start: usize,
    pub src_stride: usize,
    pub out_stride: usize,
    pub n: usize,
}

/// Visit every sweep line of `interior` along `axis`. The transverse
/// coordinates iterate z-fastest (storage order), so consecutive lines of
/// the strided x/y sweeps touch adjacent memory and the cache lines loaded
/// for one line are reused by the next seven — the cache-blocking that
/// keeps the non-contiguous sweeps streaming. The z sweep's lines are
/// stride-1 slices outright.
pub(crate) fn for_each_line(
    interior: Region,
    storage: Region,
    out: Region,
    axis: usize,
    mut f: impl FnMut(LinePlan),
) {
    let ssz = (storage.hi.z - storage.lo.z) as usize;
    let osz = (out.hi.z - out.lo.z) as usize;
    let (src_stride, out_stride) = match axis {
        0 => (
            (storage.hi.y - storage.lo.y) as usize * ssz,
            (out.hi.y - out.lo.y) as usize * osz,
        ),
        1 => (ssz, osz),
        _ => (1, 1),
    };
    let lo = interior.lo;
    let hi = interior.hi;
    let mut line = |start: IVec3, n: i64| {
        f(LinePlan {
            src_start: storage.linear_index(start),
            out_start: out.linear_index(start),
            src_stride,
            out_stride,
            n: n as usize,
        })
    };
    match axis {
        0 => {
            for y in lo.y..hi.y {
                for z in lo.z..hi.z {
                    line(ivec3(lo.x, y, z), hi.x - lo.x);
                }
            }
        }
        1 => {
            for x in lo.x..hi.x {
                for z in lo.z..hi.z {
                    line(ivec3(x, lo.y, z), hi.y - lo.y);
                }
            }
        }
        _ => {
            for x in lo.x..hi.x {
                for y in lo.y..hi.y {
                    line(ivec3(x, y, lo.z), hi.z - lo.z);
                }
            }
        }
    }
}

/// Assert the shape invariant the line kernels index by: every conserved
/// field shares `fieldset[0]`'s interior and ghost width, with at least one
/// ghost layer for the stencil.
fn assert_sweep_shapes(fieldset: &[Field3]) {
    assert!(fieldset.len() >= NFIELDS);
    assert!(fieldset[0].ghost() >= 1, "sweep needs ghost width >= 1");
    for f in &fieldset[..NFIELDS] {
        assert!(
            f.interior() == fieldset[0].interior() && f.ghost() == fieldset[0].ghost(),
            "conserved fields must share one shape"
        );
    }
}

/// Acquire `nfields` pooled ghost-0 scratch fields over `interior` — the
/// write side of the MUSCL solver's double buffer.
pub(crate) fn acquire_scratch<P: FieldAlloc>(
    pool: &P,
    interior: Region,
    nfields: usize,
) -> Vec<Field3> {
    (0..nfields)
        .map(|_| Field3::new_in(pool, interior, 0))
        .collect()
}

/// Copy the scratch interiors back over `fieldset` and shelve the scratch
/// buffers. Row-sliced copies preserve bits exactly, so this is equivalent
/// to the reference path's deferred tuple application.
pub(crate) fn commit_scratch<P: FieldAlloc>(fieldset: &mut [Field3], scratch: Vec<Field3>, pool: &P) {
    for (dst, src) in fieldset.iter_mut().zip(scratch.iter()) {
        let interior = src.interior();
        dst.copy_from(src, &interior);
    }
    for s in scratch {
        s.recycle(pool);
    }
}

/// SoA rows of per-cell sweep primitives for one stride-1 run of cells:
/// element `i` holds exactly [`AxisPrim::new`] of cell `i` — the conserved
/// state `u`, `v`, `a` and the physical flux — so an interface flux
/// assembled from two rows (or two shifted views of one row) is
/// [`hll_from_prims`] elementwise.
#[derive(Default)]
struct PrimRow {
    u: [Vec<f64>; NFIELDS],
    v: Vec<f64>,
    a: Vec<f64>,
    f: [Vec<f64>; NFIELDS],
}

/// Reusable per-thread sweep scratch: three primitive rows rolling along
/// the sweep axis plus two interface-flux rows. A few KiB per thread,
/// grown once to the longest row seen and reused for every patch after —
/// steady-state sweeps allocate nothing.
#[derive(Default)]
struct SweepScratch {
    prims: [PrimRow; 3],
    flux: [[Vec<f64>; NFIELDS]; 2],
}

impl SweepScratch {
    fn ensure(&mut self, len: usize) {
        let grow = |v: &mut Vec<f64>| {
            if v.len() < len {
                v.resize(len, 0.0);
            }
        };
        for p in &mut self.prims {
            p.u.iter_mut().for_each(&grow);
            grow(&mut p.v);
            grow(&mut p.a);
            p.f.iter_mut().for_each(&grow);
        }
        for f in &mut self.flux {
            f.iter_mut().for_each(&grow);
        }
    }
}

thread_local! {
    static SWEEP_SCRATCH: std::cell::RefCell<SweepScratch> =
        std::cell::RefCell::new(SweepScratch::default());
}

/// Fill `out[0..len]` with the primitives of the `len` cells starting at
/// linear index `start` — one stride-1 pass calling [`AxisPrim::new`] per
/// element, so the loop body is branch-free straight-line arithmetic the
/// compiler vectorizes (divisions and the sound-speed square root
/// included). `AXIS` is const so the flux component picking up the
/// pressure term is a static index.
#[inline(always)]
fn fill_prim_row<const AXIS: usize>(
    data: &[&mut [f64]; NFIELDS],
    start: usize,
    len: usize,
    gamma: f64,
    out: &mut PrimRow,
) {
    let rho = &data[fields::RHO][start..start + len];
    let mx = &data[fields::MX][start..start + len];
    let my = &data[fields::MY][start..start + len];
    let mz = &data[fields::MZ][start..start + len];
    let en = &data[fields::E][start..start + len];
    let [u0, u1, u2, u3, u4] = &mut out.u;
    let (u0, u1, u2, u3, u4) = (
        &mut u0[..len],
        &mut u1[..len],
        &mut u2[..len],
        &mut u3[..len],
        &mut u4[..len],
    );
    let ov = &mut out.v[..len];
    let oa = &mut out.a[..len];
    let [f0, f1, f2, f3, f4] = &mut out.f;
    let (f0, f1, f2, f3, f4) = (
        &mut f0[..len],
        &mut f1[..len],
        &mut f2[..len],
        &mut f3[..len],
        &mut f4[..len],
    );
    for i in 0..len {
        let u = Cons {
            rho: rho[i],
            m: [mx[i], my[i], mz[i]],
            e: en[i],
        };
        let p = AxisPrim::new(u, AXIS, gamma);
        u0[i] = u.rho;
        u1[i] = u.m[0];
        u2[i] = u.m[1];
        u3[i] = u.m[2];
        u4[i] = u.e;
        ov[i] = p.v;
        oa[i] = p.a;
        f0[i] = p.f[0];
        f1[i] = p.f[1];
        f2[i] = p.f[2];
        f3[i] = p.f[3];
        f4[i] = p.f[4];
    }
}

/// Reassemble the `i`-th primitive of a row view starting at `off`.
#[inline(always)]
fn prim_at(p: &PrimRow, off: usize, i: usize) -> AxisPrim {
    let j = off + i;
    AxisPrim {
        u: Cons {
            rho: p.u[0][j],
            m: [p.u[1][j], p.u[2][j], p.u[3][j]],
            e: p.u[4][j],
        },
        v: p.v[j],
        a: p.a[j],
        f: [p.f[0][j], p.f[1][j], p.f[2][j], p.f[3][j], p.f[4][j]],
    }
}

/// `out[k][0..len] =` [`hll_from_prims`] of rows `l` (from `lo`) and `r`
/// (from `ro`), elementwise. `hll_from_prims` is branch-free, so this is a
/// vectorizable select-and-blend loop. `l` and `r` may be the same row at
/// shifted offsets (the z sweep).
#[inline(always)]
fn hll_row(
    l: &PrimRow,
    lo: usize,
    r: &PrimRow,
    ro: usize,
    len: usize,
    out: &mut [Vec<f64>; NFIELDS],
) {
    let [o0, o1, o2, o3, o4] = out;
    let (o0, o1, o2, o3, o4) = (
        &mut o0[..len],
        &mut o1[..len],
        &mut o2[..len],
        &mut o3[..len],
        &mut o4[..len],
    );
    for i in 0..len {
        let f = hll_from_prims(&prim_at(l, lo, i), &prim_at(r, ro, i));
        o0[i] = f[0];
        o1[i] = f[1];
        o2[i] = f[2];
        o3[i] = f[3];
        o4[i] = f[4];
    }
}

/// Write the updated row of `len` cells at linear index `start`:
/// [`flux_difference_update`] + [`apply_floors`] elementwise, reading the
/// pre-update states from `prim` (captured before any write touched them)
/// and the interface fluxes from `fl`/`fh` — which may be the same flux row
/// at shifted offsets (the z sweep).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn update_row(
    data: &mut [&mut [f64]; NFIELDS],
    start: usize,
    len: usize,
    prim: &PrimRow,
    po: usize,
    fl: &[Vec<f64>; NFIELDS],
    flo: usize,
    fh: &[Vec<f64>; NFIELDS],
    fho: usize,
    dt_over_dx: f64,
    gamma: f64,
) {
    let [d0, d1, d2, d3, d4] = data;
    let (d0, d1, d2, d3, d4) = (
        &mut d0[start..start + len],
        &mut d1[start..start + len],
        &mut d2[start..start + len],
        &mut d3[start..start + len],
        &mut d4[start..start + len],
    );
    for i in 0..len {
        let u0 = Cons {
            rho: prim.u[0][po + i],
            m: [prim.u[1][po + i], prim.u[2][po + i], prim.u[3][po + i]],
            e: prim.u[4][po + i],
        };
        let f_lo = [
            fl[0][flo + i],
            fl[1][flo + i],
            fl[2][flo + i],
            fl[3][flo + i],
            fl[4][flo + i],
        ];
        let f_hi = [
            fh[0][fho + i],
            fh[1][fho + i],
            fh[2][fho + i],
            fh[3][fho + i],
            fh[4][fho + i],
        ];
        let u = apply_floors(flux_difference_update(&u0, &f_lo, &f_hi, dt_over_dx), gamma);
        d0[i] = u.rho;
        d1[i] = u.m[0];
        d2[i] = u.m[1];
        d3[i] = u.m[2];
        d4[i] = u.e;
    }
}

/// The strided (x or y) sweep: for each transverse line bundle, primitive
/// rows roll along the sweep axis — `pp` is filled for the next source row
/// while `p0` still holds the row being updated as it was *before* any
/// write (the in-place hazard), and the shared interface satisfies
/// `f_lo(i+1) = f_hi(i)` by a buffer swap, never a recompute.
fn sweep_strided<const AXIS: usize>(
    data: &mut [&mut [f64]; NFIELDS],
    interior: Region,
    storage: Region,
    s: &mut SweepScratch,
    dt_over_dx: f64,
    gamma: f64,
) {
    let nz = (interior.hi.z - interior.lo.z) as usize;
    let sz = (storage.hi.z - storage.lo.z) as usize;
    let sxy = (storage.hi.y - storage.lo.y) as usize * sz;
    let (stride, n_sweep, outer_n) = if AXIS == 0 {
        (sxy, interior.hi.x - interior.lo.x, interior.hi.y - interior.lo.y)
    } else {
        (sz, interior.hi.y - interior.lo.y, interior.hi.x - interior.lo.x)
    };
    let lo = interior.lo;
    let [pm, p0, pp] = &mut s.prims;
    let [f_lo, f_hi] = &mut s.flux;
    for j in 0..outer_n {
        let first = if AXIS == 0 {
            storage.linear_index(ivec3(lo.x - 1, lo.y + j, lo.z))
        } else {
            storage.linear_index(ivec3(lo.x + j, lo.y - 1, lo.z))
        };
        fill_prim_row::<AXIS>(data, first, nz, gamma, pm);
        fill_prim_row::<AXIS>(data, first + stride, nz, gamma, p0);
        hll_row(pm, 0, p0, 0, nz, f_lo);
        let mut cur = first + stride;
        for _ in 0..n_sweep {
            fill_prim_row::<AXIS>(data, cur + stride, nz, gamma, pp);
            hll_row(p0, 0, pp, 0, nz, f_hi);
            update_row(data, cur, nz, p0, 0, f_lo, 0, f_hi, 0, dt_over_dx, gamma);
            std::mem::swap(pm, p0);
            std::mem::swap(p0, pp);
            std::mem::swap(f_lo, f_hi);
            cur += stride;
        }
    }
}

/// The z sweep: every line is one contiguous run, so a single primitive
/// row over `nz + 2` cells feeds all `nz + 1` interfaces as two shifted
/// views of itself, and the update reads the same flux row at offsets 0
/// and 1.
fn sweep_z(
    data: &mut [&mut [f64]; NFIELDS],
    interior: Region,
    storage: Region,
    s: &mut SweepScratch,
    dt_over_dx: f64,
    gamma: f64,
) {
    let nz = (interior.hi.z - interior.lo.z) as usize;
    let [p0, _, _] = &mut s.prims;
    let [f_all, _] = &mut s.flux;
    let lo = interior.lo;
    for x in lo.x..interior.hi.x {
        for y in lo.y..interior.hi.y {
            let first = storage.linear_index(ivec3(x, y, lo.z - 1));
            fill_prim_row::<2>(data, first, nz + 2, gamma, p0);
            hll_row(p0, 0, p0, 1, nz + 1, f_all);
            update_row(data, first + 1, nz, p0, 1, f_all, 0, f_all, 1, dt_over_dx, gamma);
        }
    }
}

/// One dimensionally-split first-order Godunov sweep along `axis` over the
/// interior of the patch. Ghost zones must have been filled beforehand.
///
/// Runs **in place** over the fields (no field-sized scratch) as stride-1
/// row passes: every inner loop — primitive extraction ([`AxisPrim::new`]
/// per element into SoA rows), interface fluxes (branch-free
/// [`hll_from_prims`] elementwise) and the flux-difference update — walks
/// contiguous memory with no data-dependent branches, so the compiler
/// autovectorizes the divisions and sound-speed square roots that dominate
/// the kernel. Primitives are computed once per cell and serve both
/// interfaces (`f_hi` of row `i` *is* `f_lo` of row `i+1` — a buffer swap
/// of the same pure evaluation), quartering primitive evaluations and
/// halving Riemann solves versus the per-cell form. In-place safety is the
/// rolling-row discipline: a row's primitives are captured in scratch
/// before any write can touch it, exactly reproducing the reference path's
/// double buffering bit for bit (golden tests and the kernel proptests pin
/// it). Scratch is a few KiB of thread-local rows reused across calls.
pub fn sweep(fieldset: &mut [Field3], axis: usize, dt_over_dx: f64, gamma: f64) {
    assert_sweep_shapes(fieldset);
    let interior = fieldset[0].interior();
    let storage = fieldset[0].storage_region();
    let mut slices: Vec<&mut [f64]> = fieldset
        .iter_mut()
        .take(NFIELDS)
        .map(|f| f.data_mut())
        .collect();
    // fixed-size view: field selection compiles to plain offsets
    let data: &mut [&mut [f64]; NFIELDS] =
        (&mut slices[..]).try_into().expect("NFIELDS field slices");
    let nz = (interior.hi.z - interior.lo.z) as usize;
    SWEEP_SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        s.ensure(nz + 2);
        match axis {
            0 => sweep_strided::<0>(data, interior, storage, s, dt_over_dx, gamma),
            1 => sweep_strided::<1>(data, interior, storage, s, dt_over_dx, gamma),
            _ => sweep_z(data, interior, storage, s, dt_over_dx, gamma),
        }
    });
}

/// Full XYZ dimensionally-split step.
///
/// Ghost zones are refilled with zero-gradient extrapolation *before each
/// sweep* so the stencil never reads values stale from the previous sweep
/// (which would break conservation). Callers that have sibling/parent ghost
/// data should fill ghosts once before calling (the first sweep then uses
/// it) or drive [`sweep`] directly with their own exchange between sweeps.
/// Fully in place — the hyperbolic step performs zero heap allocations.
pub fn euler_step(fieldset: &mut [Field3], dt_over_dx: f64, gamma: f64) {
    for axis in 0..3 {
        if axis > 0 {
            for f in fieldset.iter_mut().take(NFIELDS) {
                f.fill_ghosts_zero_gradient();
            }
        }
        sweep(fieldset, axis, dt_over_dx, gamma);
    }
}

/// Maximum signal speed (|v|+a over all axes) over the interior — the CFL
/// quantity.
pub fn max_wave_speed(fieldset: &[Field3], gamma: f64) -> f64 {
    let interior = fieldset[0].interior();
    let mut s: f64 = 0.0;
    for p in interior.iter_cells() {
        let u = load(fieldset, p);
        let a = u.sound_speed(gamma);
        for axis in 0..3 {
            s = s.max(u.vel(axis).abs() + a);
        }
    }
    s
}

/// Total conserved quantities over the interior: (mass, momentum, energy).
pub fn totals(fieldset: &[Field3]) -> (f64, [f64; 3], f64) {
    let interior = fieldset[0].interior();
    let mut mass = 0.0;
    let mut mom = [0.0; 3];
    let mut e = 0.0;
    for p in interior.iter_cells() {
        let u = load(fieldset, p);
        mass += u.rho;
        for k in 0..3 {
            mom[k] += u.m[k];
        }
        e += u.e;
    }
    (mass, mom, e)
}

/// The update-list forms of the sweep the in-place double-buffered versions
/// replaced, retained purely as bit-identity oracles for the golden tests.
/// Production code must call [`sweep`] / [`euler_step`].
pub mod reference {
    use super::*;

    /// Reference for [`super::sweep`]: accumulate `(cell, state)` tuples,
    /// then apply them through [`store`]. Per-cell and per-flux naive — it
    /// evaluates [`hll_flux`] twice per cell with no interface reuse — but
    /// it shares [`flux_difference_update`] with the line kernel, so the
    /// golden tests pin exactly the reuse and indexing transformations.
    pub fn sweep(fieldset: &mut [Field3], axis: usize, dt_over_dx: f64, gamma: f64) {
        assert!(fieldset.len() >= NFIELDS);
        let interior = fieldset[0].interior();
        let dir = axis_dir(axis);
        // Collect updates first, then apply (the stencil reads neighbours).
        let mut updates: Vec<(IVec3, Cons)> = Vec::with_capacity(checked_capacity(interior.cells()));
        for p in interior.iter_cells() {
            let um = load(fieldset, p - dir);
            let u0 = load(fieldset, p);
            let up = load(fieldset, p + dir);
            let f_lo = hll_flux(&um, &u0, axis, gamma);
            let f_hi = hll_flux(&u0, &up, axis, gamma);
            updates.push((p, flux_difference_update(&u0, &f_lo, &f_hi, dt_over_dx)));
        }
        for (p, u) in updates {
            store(fieldset, p, u, gamma);
        }
    }

    /// Reference for [`super::euler_step`].
    pub fn euler_step(fieldset: &mut [Field3], dt_over_dx: f64, gamma: f64) {
        for axis in 0..3 {
            if axis > 0 {
                for f in fieldset.iter_mut().take(NFIELDS) {
                    f.fill_ghosts_zero_gradient();
                }
            }
            sweep(fieldset, axis, dt_over_dx, gamma);
        }
    }
}

/// Set a uniform ambient state over the full storage (ghosts included).
pub fn set_ambient(fieldset: &mut [Field3], rho: f64, v: [f64; 3], p: f64, gamma: f64) {
    let e = p / (gamma - 1.0) + 0.5 * rho * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
    fieldset[fields::RHO].fill(rho);
    fieldset[fields::MX].fill(rho * v[0]);
    fieldset[fields::MY].fill(rho * v[1]);
    fieldset[fields::MZ].fill(rho * v[2]);
    fieldset[fields::E].fill(e);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_set(n: i64, ghost: i64) -> Vec<Field3> {
        (0..NFIELDS)
            .map(|_| Field3::zeros(Region::cube(n), ghost))
            .collect()
    }

    /// Deterministic pseudo-random, physically plausible state (LCG fill)
    /// for golden comparisons without a rand dependency.
    fn scrambled_state(n: i64, ghost: i64, seed: u64) -> Vec<Field3> {
        let mut fs = uniform_set(n, ghost);
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15);
        for (k, f) in fs.iter_mut().enumerate() {
            for v in f.data_mut() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let u = (s >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
                *v = match k {
                    fields::RHO => 0.5 + u,
                    fields::E => 1.5 + u,
                    _ => u - 0.5,
                };
            }
        }
        fs
    }

    fn bits(fs: &[Field3]) -> Vec<Vec<u64>> {
        fs.iter()
            .map(|f| f.data().iter().map(|v| v.to_bits()).collect())
            .collect()
    }

    #[test]
    fn in_place_sweep_matches_reference_bitwise() {
        for seed in [1u64, 2, 3] {
            let mut a = scrambled_state(9, 1, seed);
            let mut b = a.clone();
            for axis in 0..3 {
                sweep(&mut a, axis, 0.21, 1.4);
                reference::sweep(&mut b, axis, 0.21, 1.4);
                assert_eq!(bits(&a), bits(&b), "seed {seed} axis {axis}");
            }
            euler_step(&mut a, 0.17, 1.4);
            reference::euler_step(&mut b, 0.17, 1.4);
            assert_eq!(bits(&a), bits(&b), "seed {seed} full step");
        }
    }

    #[test]
    fn uniform_state_is_steady() {
        let mut fs = uniform_set(6, 1);
        set_ambient(&mut fs, 1.0, [0.0; 3], 1.0, 1.4);
        let before = totals(&fs);
        euler_step(&mut fs, 0.1, 1.4);
        let after = totals(&fs);
        assert!((before.0 - after.0).abs() < 1e-12);
        assert!((before.2 - after.2).abs() < 1e-12);
        // pointwise steady
        for p in Region::cube(6).iter_cells() {
            assert!((fs[fields::RHO].get(p) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pressure_and_sound_speed() {
        let u = Cons {
            rho: 1.0,
            m: [0.0; 3],
            e: 2.5,
        };
        assert!((u.pressure(1.4) - 1.0).abs() < 1e-12);
        assert!((u.sound_speed(1.4) - 1.4f64.sqrt()).abs() < 1e-12);
        // moving frame: subtract kinetic energy
        let u = Cons {
            rho: 2.0,
            m: [2.0, 0.0, 0.0],
            e: 3.5,
        };
        // ke = 0.5*4/2 = 1 ⇒ p = 0.4*(3.5-1) = 1
        assert!((u.pressure(1.4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hll_consistent_with_physical_flux() {
        // identical supersonic left/right states: HLL must equal the exact flux
        let u = Cons {
            rho: 1.0,
            m: [3.0, 0.0, 0.0],
            e: 5.0,
        };
        let f = hll_flux(&u, &u, 0, 1.4);
        let exact = u.flux(0, 1.4);
        for k in 0..NFIELDS {
            assert!((f[k] - exact[k]).abs() < 1e-12, "component {k}");
        }
    }

    #[test]
    fn mass_conserved_in_interior_shock_tube() {
        // Sod-like jump in the middle of a periodic-free box; before the wave
        // reaches the boundary total interior mass is conserved.
        let n = 16;
        let mut fs = uniform_set(n, 1);
        let gamma = 1.4;
        for p in fs[0].storage_region().iter_cells() {
            let (rho, pr) = if p.x < n / 2 { (1.0, 1.0) } else { (0.125, 0.1) };
            let u = Cons {
                rho,
                m: [0.0; 3],
                e: pr / (gamma - 1.0),
            };
            fs[fields::RHO].set(p, u.rho);
            fs[fields::MX].set(p, 0.0);
            fs[fields::MY].set(p, 0.0);
            fs[fields::MZ].set(p, 0.0);
            fs[fields::E].set(p, u.e);
        }
        let (m0, _, e0) = totals(&fs);
        // a few small steps; dt chosen well under CFL
        let s = max_wave_speed(&fs, gamma);
        let dt_over_dx = 0.4 / s;
        for _ in 0..3 {
            // refill ghosts from interior edge (zero-gradient)
            for f in fs.iter_mut() {
                f.fill_ghosts_zero_gradient();
            }
            euler_step(&mut fs, dt_over_dx, gamma);
        }
        let (m1, mom1, e1) = totals(&fs);
        assert!((m0 - m1).abs() / m0 < 1e-10, "mass {m0} -> {m1}");
        assert!((e0 - e1).abs() / e0 < 1e-10, "energy {e0} -> {e1}");
        // shock generates +x momentum
        assert!(mom1[0] > 1e-3);
    }

    #[test]
    fn shock_moves_in_expected_direction() {
        let n = 16;
        let gamma = 1.4;
        let mut fs = uniform_set(n, 1);
        for p in fs[0].storage_region().iter_cells() {
            let (rho, pr) = if p.x < 4 { (4.0, 4.0) } else { (1.0, 1.0) };
            fs[fields::RHO].set(p, rho);
            fs[fields::E].set(p, pr / (gamma - 1.0));
        }
        let s = max_wave_speed(&fs, gamma);
        let mut steps = 0;
        let dt_over_dx = 0.4 / s;
        for _ in 0..6 {
            for f in fs.iter_mut() {
                f.fill_ghosts_zero_gradient();
            }
            euler_step(&mut fs, dt_over_dx, gamma);
            steps += 1;
        }
        assert!(steps == 6);
        // density at x=6 must have risen above ambient as the shock passed
        let probe = ivec3(6, n / 2, n / 2);
        assert!(
            fs[fields::RHO].get(probe) > 1.05,
            "rho at probe {}",
            fs[fields::RHO].get(probe)
        );
    }

    #[test]
    fn cfl_speed_positive_and_scales_with_pressure() {
        let mut quiet = uniform_set(4, 1);
        set_ambient(&mut quiet, 1.0, [0.0; 3], 1.0, 1.4);
        let mut hot = uniform_set(4, 1);
        set_ambient(&mut hot, 1.0, [0.0; 3], 100.0, 1.4);
        let sq = max_wave_speed(&quiet, 1.4);
        let sh = max_wave_speed(&hot, 1.4);
        assert!(sq > 0.0);
        assert!((sh / sq - 10.0).abs() < 1e-9);
    }

    #[test]
    fn floors_prevent_negative_states() {
        let mut fs = uniform_set(4, 1);
        let bad = Cons {
            rho: -1.0,
            m: [0.0; 3],
            e: -5.0,
        };
        store(&mut fs, ivec3(0, 0, 0), bad, 1.4);
        let u = load(&fs, ivec3(0, 0, 0));
        assert!(u.rho >= RHO_FLOOR);
        assert!(u.pressure(1.4) >= P_FLOOR);
    }
}
