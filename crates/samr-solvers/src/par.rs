//! Rayon helpers: apply a solver kernel to many patches' field sets in
//! parallel. Results are independent per patch, so parallel execution is
//! bit-identical to sequential.

use rayon::prelude::*;
use samr_mesh::field::Field3;

/// Apply `kernel` to every field set concurrently.
pub fn for_each_patch_parallel<K>(fieldsets: &mut [&mut Vec<Field3>], kernel: K)
where
    K: Fn(&mut Vec<Field3>) + Sync,
{
    fieldsets.par_iter_mut().for_each(|fs| kernel(fs));
}

/// Apply `kernel` to every item concurrently, passing each item's index so
/// the kernel can look up per-item task data (ghost-fill plans, restriction
/// groups) from a shared slice. Items must be independent — writes go only
/// through `&mut T` — which makes parallel execution bit-identical to
/// sequential.
pub fn for_each_task_parallel<T, K>(items: &mut [T], kernel: K)
where
    T: Send,
    K: Fn(usize, &mut T) + Sync,
{
    items
        .par_iter_mut()
        .enumerate()
        .for_each(|(i, t)| kernel(i, t));
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_mesh::region::Region;

    #[test]
    fn parallel_matches_sequential() {
        let mk = || -> Vec<Vec<Field3>> {
            (0..8)
                .map(|i| {
                    let mut f = Field3::zeros(Region::cube(4), 1);
                    f.map_interior(|p, _| (p.x + p.y + p.z + i) as f64);
                    vec![f]
                })
                .collect()
        };
        let kernel = |fs: &mut Vec<Field3>| {
            fs[0].map_interior(|_, v| v * 2.0 + 1.0);
        };
        let mut seq = mk();
        for fs in seq.iter_mut() {
            kernel(fs);
        }
        let mut par = mk();
        let mut refs: Vec<&mut Vec<Field3>> = par.iter_mut().collect();
        for_each_patch_parallel(&mut refs, kernel);
        assert_eq!(seq, par);
    }
}
