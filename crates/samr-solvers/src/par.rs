//! Rayon helpers: apply a solver kernel to many patches' field sets in
//! parallel. Results are independent per patch, so parallel execution is
//! bit-identical to sequential.

use rayon::prelude::*;
use samr_mesh::field::Field3;
use samr_mesh::pool::{FieldPool, PoolHandle};

/// Apply `kernel` to every field set concurrently.
pub fn for_each_patch_parallel<K>(fieldsets: &mut [&mut Vec<Field3>], kernel: K)
where
    K: Fn(&mut Vec<Field3>) + Sync,
{
    fieldsets.par_iter_mut().for_each(|fs| kernel(fs));
}

/// Apply `kernel` to every item concurrently, passing each item's index so
/// the kernel can look up per-item task data (ghost-fill plans, restriction
/// groups) from a shared slice. Items must be independent — writes go only
/// through `&mut T` — which makes parallel execution bit-identical to
/// sequential.
pub fn for_each_task_parallel<T, K>(items: &mut [T], kernel: K)
where
    T: Send,
    K: Fn(usize, &mut T) + Sync,
{
    items
        .par_iter_mut()
        .enumerate()
        .for_each(|(i, t)| kernel(i, t));
}

/// Like [`for_each_task_parallel`], but hands each kernel invocation a
/// [`PoolHandle`] bound to the executing rayon worker's home shard, so
/// solver scratch acquire/recycle on the hot path stays on per-thread free
/// lists instead of rendezvousing on one shared lock. The handle is
/// constructed lazily per invocation (it is two words: an `Arc` clone and
/// the thread's cached shard index), and results remain bit-identical to
/// sequential execution because the pool only changes *where* buffers come
/// from, never their contents after the zero-fill.
pub fn for_each_task_parallel_pooled<T, K>(pool: &FieldPool, items: &mut [T], kernel: K)
where
    T: Send,
    K: Fn(usize, &mut T, &PoolHandle) + Sync,
{
    items.par_iter_mut().enumerate().for_each(|(i, t)| {
        let handle = pool.worker_handle();
        kernel(i, t, &handle);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_mesh::region::Region;

    #[test]
    fn parallel_matches_sequential() {
        let mk = || -> Vec<Vec<Field3>> {
            (0..8)
                .map(|i| {
                    let mut f = Field3::zeros(Region::cube(4), 1);
                    f.map_interior(|p, _| (p.x + p.y + p.z + i) as f64);
                    vec![f]
                })
                .collect()
        };
        let kernel = |fs: &mut Vec<Field3>| {
            fs[0].map_interior(|_, v| v * 2.0 + 1.0);
        };
        let mut seq = mk();
        for fs in seq.iter_mut() {
            kernel(fs);
        }
        let mut par = mk();
        let mut refs: Vec<&mut Vec<Field3>> = par.iter_mut().collect();
        for_each_patch_parallel(&mut refs, kernel);
        assert_eq!(seq, par);
    }

    #[test]
    fn pooled_helper_hands_each_task_a_working_handle() {
        let pool = FieldPool::new();
        let mut items: Vec<Field3> = (0..6).map(|_| Field3::zeros(Region::cube(4), 1)).collect();
        for_each_task_parallel_pooled(&pool, &mut items, |i, f, h| {
            let int = f.interior();
            let mut scratch = Field3::new_in(h, int, 0);
            scratch.map_interior(|_, _| i as f64);
            f.copy_from(&scratch, &int);
            scratch.recycle(h);
        });
        for (i, f) in items.iter().enumerate() {
            assert_eq!(f.get(samr_mesh::ivec3(1, 1, 1)), i as f64);
        }
        // recycled scratch is back on a shelf, visible pool-wide
        assert!(pool.idle_buffers() > 0);
    }
}
