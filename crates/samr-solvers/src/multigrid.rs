//! Geometric multigrid for `∇²φ = rhs` on a single patch: V-cycles built
//! from red-black Gauss–Seidel smoothing plus the mesh crate's conservative
//! restriction and (tri)linear prolongation.
//!
//! `AMR64`'s production-grade elliptic path: where plain relaxation needs
//! `O(n²)` sweeps, the V-cycle converges in a grid-independent handful of
//! cycles.

use crate::poisson::{rbgs_sweep, residual_l2};
use samr_mesh::field::Field3;
use samr_mesh::index::{IVec3, FACE_NEIGHBORS};
use samr_mesh::interp::{prolong_linear, restrict_average};
use samr_mesh::region::Region;

/// Multigrid tuning.
#[derive(Clone, Copy, Debug)]
pub struct MgParams {
    /// Pre-smoothing sweeps per level.
    pub pre_sweeps: usize,
    /// Post-smoothing sweeps per level.
    pub post_sweeps: usize,
    /// Coarsest-level extent (solved by many sweeps).
    pub coarsest: i64,
    /// Sweeps on the coarsest level.
    pub coarse_sweeps: usize,
}

impl Default for MgParams {
    fn default() -> Self {
        MgParams {
            pre_sweeps: 2,
            post_sweeps: 2,
            coarsest: 4,
            coarse_sweeps: 60,
        }
    }
}

/// Residual field `rhs − ∇²φ` over the interior (zero ghosts).
fn residual_field(phi: &Field3, rhs: &Field3, h: f64) -> Field3 {
    let mut res = Field3::zeros(phi.interior(), phi.ghost());
    let inv_h2 = 1.0 / (h * h);
    for p in phi.interior().iter_cells() {
        let mut lap = -6.0 * phi.get(p);
        for d in FACE_NEIGHBORS {
            lap += phi.get(p + d);
        }
        res.set(p, rhs.get(p) - lap * inv_h2);
    }
    res
}

/// One V-cycle on `phi` (homogeneous Dirichlet ghost values are preserved —
/// the caller sets boundary conditions in the ghost zones of the finest
/// level; correction grids use zero boundaries as usual).
pub fn v_cycle(phi: &mut Field3, rhs: &Field3, h: f64, params: &MgParams) {
    let n = phi.interior().size();
    let extent = n.x.min(n.y).min(n.z);
    if extent <= params.coarsest || extent % 2 != 0 {
        for _ in 0..params.coarse_sweeps {
            rbgs_sweep(phi, rhs, h);
        }
        return;
    }
    for _ in 0..params.pre_sweeps {
        rbgs_sweep(phi, rhs, h);
    }
    // restrict the residual to the coarse grid
    let res = residual_field(phi, rhs, h);
    let coarse_region = phi.interior().coarsen(2);
    let mut coarse_rhs = Field3::zeros(coarse_region, 1);
    restrict_average(&res, &mut coarse_rhs, &coarse_region, 2);
    // solve the coarse error equation (zero initial guess + zero boundary)
    let mut coarse_err = Field3::zeros(coarse_region, 1);
    v_cycle(&mut coarse_err, &coarse_rhs, 2.0 * h, params);
    // prolong the correction and add it
    let mut corr = Field3::zeros(phi.interior(), phi.ghost());
    prolong_linear(&coarse_err, &mut corr, &phi.interior(), 2);
    for p in phi.interior().iter_cells() {
        let v = phi.get(p) + corr.get(p);
        phi.set(p, v);
    }
    for _ in 0..params.post_sweeps {
        rbgs_sweep(phi, rhs, h);
    }
}

/// Solve to a relative residual `tol` with at most `max_cycles` V-cycles.
/// Returns `(cycles, final_relative_residual)`.
pub fn solve_mg(
    phi: &mut Field3,
    rhs: &Field3,
    h: f64,
    tol: f64,
    max_cycles: usize,
    params: &MgParams,
) -> (usize, f64) {
    let r0 = residual_l2(phi, rhs, h).max(1e-300);
    for cycle in 0..max_cycles {
        let r = residual_l2(phi, rhs, h);
        if r / r0 <= tol {
            return (cycle, r / r0);
        }
        v_cycle(phi, rhs, h, params);
    }
    (max_cycles, residual_l2(phi, rhs, h) / r0)
}

/// Build a zero-boundary problem of extent `n` with a manufactured solution
/// `φ* = sin-free polynomial x(n−x)·y(n−y)·z(n−z)`-style bump via its exact
/// Laplacian, used by tests and benches.
pub fn manufactured_problem(n: i64) -> (Field3, Field3, impl Fn(IVec3) -> f64) {
    let region = Region::cube(n);
    let phi = Field3::zeros(region, 1);
    let nf = n as f64;
    let exact = move |p: IVec3| {
        let x = p.x as f64 + 0.5;
        let y = p.y as f64 + 0.5;
        let z = p.z as f64 + 0.5;
        x * (nf - x) * y * (nf - y) * z * (nf - z) / (nf * nf * nf)
    };
    let mut rhs = Field3::zeros(region, 1);
    let lap = move |p: IVec3| {
        let x = p.x as f64 + 0.5;
        let y = p.y as f64 + 0.5;
        let z = p.z as f64 + 0.5;
        let u = |a: f64| a * (nf - a);
        (-2.0 * (u(y) * u(z) + u(x) * u(z) + u(x) * u(y))) / (nf * nf * nf)
    };
    for p in region.iter_cells() {
        rhs.set(p, lap(p));
    }
    (phi, rhs, exact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson;

    #[test]
    fn v_cycle_reduces_residual() {
        let (mut phi, rhs, _) = manufactured_problem(16);
        let h = 1.0;
        let r0 = residual_l2(&phi, &rhs, h);
        for _ in 0..3 {
            v_cycle(&mut phi, &rhs, h, &MgParams::default());
        }
        let r3 = residual_l2(&phi, &rhs, h);
        assert!(
            r3 < r0 * 0.05,
            "three V-cycles should cut the residual by >20x: {r0} -> {r3}"
        );
    }

    #[test]
    fn cycle_growth_far_below_relaxation_growth() {
        // Plain relaxation needs O(n²) more sweeps as n grows; the V-cycle
        // count must grow far slower (our ghost-center Dirichlet boundary
        // costs it exact grid-independence, but the scaling gap is what
        // makes it the production path).
        let mut mg_counts = Vec::new();
        let mut gs_counts = Vec::new();
        for n in [8, 16] {
            let (mut phi, rhs, _) = manufactured_problem(n);
            let (cycles, rel) = solve_mg(&mut phi, &rhs, 1.0, 1e-6, 60, &MgParams::default());
            assert!(cycles < 60, "n={n}: did not converge (rel {rel})");
            mg_counts.push(cycles as f64);
            let (mut phi2, rhs2, _) = manufactured_problem(n);
            let (sweeps, _) = poisson::solve(&mut phi2, &rhs2, 1.0, 1e-6, 20_000);
            gs_counts.push(sweeps as f64);
        }
        let mg_growth = mg_counts[1] / mg_counts[0];
        let gs_growth = gs_counts[1] / gs_counts[0];
        assert!(
            mg_growth * 1.5 < gs_growth,
            "mg growth {mg_growth} vs gs growth {gs_growth} ({mg_counts:?} vs {gs_counts:?})"
        );
    }

    #[test]
    fn much_faster_than_plain_relaxation() {
        // compare work: V-cycles vs plain RBGS sweeps to the same tolerance
        let (mut phi_mg, rhs, _) = manufactured_problem(16);
        let (cycles, _) = solve_mg(&mut phi_mg, &rhs, 1.0, 1e-6, 50, &MgParams::default());
        let (mut phi_gs, rhs2, _) = manufactured_problem(16);
        let (sweeps, rel) = poisson::solve(&mut phi_gs, &rhs2, 1.0, 1e-6, 2000);
        // a V-cycle costs ~(pre+post)·(1 + 1/8 + …) ≈ 5 fine sweeps
        assert!(
            cycles * 6 < sweeps || rel > 1e-6,
            "mg {cycles} cycles vs gs {sweeps} sweeps"
        );
    }

    #[test]
    fn solves_the_same_discrete_system_as_relaxation() {
        // MG and exhaustive RBGS must agree on the discrete solution
        let n = 8;
        let (mut phi_mg, rhs, _) = manufactured_problem(n);
        solve_mg(&mut phi_mg, &rhs, 1.0, 1e-12, 60, &MgParams::default());
        let (mut phi_gs, rhs2, _) = manufactured_problem(n);
        poisson::solve(&mut phi_gs, &rhs2, 1.0, 1e-12, 20_000);
        let mut max_diff: f64 = 0.0;
        let mut max_val: f64 = 0.0;
        for p in Region::cube(n).iter_cells() {
            max_diff = max_diff.max((phi_mg.get(p) - phi_gs.get(p)).abs());
            max_val = max_val.max(phi_gs.get(p).abs());
        }
        assert!(
            max_diff < 1e-6 * max_val.max(1.0),
            "solutions diverge: {max_diff} (scale {max_val})"
        );
    }

    #[test]
    fn odd_extent_falls_back_to_relaxation() {
        let region = Region::cube(7);
        let mut phi = Field3::zeros(region, 1);
        let mut rhs = Field3::zeros(region, 1);
        rhs.set(samr_mesh::ivec3(3, 3, 3), 1.0);
        let r0 = residual_l2(&phi, &rhs, 1.0);
        v_cycle(&mut phi, &rhs, 1.0, &MgParams::default());
        assert!(residual_l2(&phi, &rhs, 1.0) < r0);
    }
}
