//! Second-order MUSCL–Hancock extension of the Euler solver: minmod-limited
//! piecewise-linear reconstruction with a half-step predictor, falling back
//! to the same HLL Riemann flux.
//!
//! Needs ghost width ≥ 2. Used where solution quality matters more than
//! speed; the driver's default remains the first-order scheme (the DLB
//! behaviour depends on workload dynamics, not numerics order).

use crate::advection::minmod;
use crate::checked_capacity;
use crate::euler::{
    apply_floors, flux_difference_update, for_each_line, hll_flux, load, store, Cons, NFIELDS,
};
use samr_mesh::field::Field3;
use samr_mesh::index::IVec3;
use samr_mesh::pool::FieldAlloc;

fn as_array(u: &Cons) -> [f64; NFIELDS] {
    [u.rho, u.m[0], u.m[1], u.m[2], u.e]
}

fn from_array(v: [f64; NFIELDS]) -> Cons {
    Cons {
        rho: v[0],
        m: [v[1], v[2], v[3]],
        e: v[4],
    }
}

/// The per-cell MUSCL–Hancock reconstruction: minmod-limited edge states of
/// the cell with state `u0` (neighbours `um`/`up` along the sweep axis),
/// advanced by the half-step predictor. Returns (low-side, high-side) edge
/// states. Shared verbatim by the line kernel and the reference sweep so
/// they stay bit-identical by construction.
#[inline]
pub(crate) fn edge_states(
    um: &Cons,
    u0: &Cons,
    up: &Cons,
    axis: usize,
    dt_over_dx: f64,
    gamma: f64,
) -> (Cons, Cons) {
    let um = as_array(um);
    let u = as_array(u0);
    let up = as_array(up);
    let mut ul = [0.0; NFIELDS]; // low-side edge
    let mut uh = [0.0; NFIELDS]; // high-side edge
    for k in 0..NFIELDS {
        let s = minmod(u[k] - um[k], up[k] - u[k]);
        ul[k] = u[k] - 0.5 * s;
        uh[k] = u[k] + 0.5 * s;
    }
    // half-step predictor: u_edge += dt/2dx (F(ul) − F(uh))
    let fl = from_array(ul).flux(axis, gamma);
    let fh = from_array(uh).flux(axis, gamma);
    for k in 0..NFIELDS {
        let corr = 0.5 * dt_over_dx * (fl[k] - fh[k]);
        ul[k] += corr;
        uh[k] += corr;
    }
    (from_array(ul), from_array(uh))
}

/// The per-cell MUSCL–Hancock flux-difference update: the evolved conserved
/// state at `p`, before floors. Used by the reference sweep; the line kernel
/// computes the same composition of [`edge_states`], [`hll_flux`] and
/// [`flux_difference_update`] with rolling registers.
fn updated_state(
    fieldset: &[Field3],
    p: IVec3,
    dir: IVec3,
    axis: usize,
    dt_over_dx: f64,
    gamma: f64,
) -> Cons {
    let es = |q: IVec3| {
        edge_states(
            &load(fieldset, q - dir),
            &load(fieldset, q),
            &load(fieldset, q + dir),
            axis,
            dt_over_dx,
            gamma,
        )
    };
    // face states: for the face between p and p+dir we need the evolved
    // high-side edge of p and low-side edge of p+dir
    let (p_lo_edge, p_hi_edge) = es(p);
    let (_, pm_hi_edge) = es(p - dir);
    let (pp_lo_edge, _) = es(p + dir);
    let f_lo = hll_flux(&pm_hi_edge, &p_lo_edge, axis, gamma);
    let f_hi = hll_flux(&p_hi_edge, &pp_lo_edge, axis, gamma);
    flux_difference_update(&load(fieldset, p), &f_lo, &f_hi, dt_over_dx)
}

fn assert_muscl_ghosts(fieldset: &[Field3]) {
    assert!(fieldset.len() >= NFIELDS);
    assert!(
        fieldset[0].ghost() >= 2,
        "MUSCL needs ghost width >= 2 (have {})",
        fieldset[0].ghost()
    );
    for f in &fieldset[..NFIELDS] {
        assert!(
            f.interior() == fieldset[0].interior() && f.ghost() == fieldset[0].ghost(),
            "conserved fields must share one shape"
        );
    }
}

/// One MUSCL–Hancock sweep along `axis`. Ghosts (width ≥ 2) must be filled.
///
/// Double-buffered through `pool` like [`crate::euler::sweep`], and
/// line-based the same way: a rolling window of four cell states and two
/// reconstructed edge-state pairs turns the per-cell form's four
/// reconstructions and two Riemann solves into one of each per cell (the
/// reused values are the same pure functions on the same inputs, so the
/// result stays bit-identical to [`reference::sweep_muscl`] — golden tests
/// pin it).
pub fn sweep_muscl<P: FieldAlloc>(
    fieldset: &mut [Field3],
    axis: usize,
    dt_over_dx: f64,
    gamma: f64,
    pool: &P,
) {
    assert_muscl_ghosts(fieldset);
    let interior = fieldset[0].interior();
    let storage = fieldset[0].storage_region();
    let mut scratch = crate::euler::acquire_scratch(pool, interior, NFIELDS);
    {
        let (rho, rest) = fieldset.split_first().unwrap();
        let src: [&[f64]; NFIELDS] = [
            rho.data(),
            rest[0].data(),
            rest[1].data(),
            rest[2].data(),
            rest[3].data(),
        ];
        let at = |i: usize| Cons {
            rho: src[0][i],
            m: [src[1][i], src[2][i], src[3][i]],
            e: src[4][i],
        };
        let mut out: Vec<&mut [f64]> = scratch.iter_mut().map(|f| f.data_mut()).collect();
        for_each_line(interior, storage, interior, axis, |l| {
            let s = l.src_stride;
            // prologue: states of cells [p-2dir ..= p+dir] and the edge
            // states of p-dir and p give the low-face flux of the first cell
            let u_mm = at(l.src_start - 2 * s);
            let u_m = at(l.src_start - s);
            let mut u_0 = at(l.src_start);
            let mut u_p = at(l.src_start + s);
            let e_prev = edge_states(&u_mm, &u_m, &u_0, axis, dt_over_dx, gamma);
            let mut e_cur = edge_states(&u_m, &u_0, &u_p, axis, dt_over_dx, gamma);
            let mut f_lo = hll_flux(&e_prev.1, &e_cur.0, axis, gamma);
            let mut si = l.src_start;
            let mut oi = l.out_start;
            for _ in 0..l.n {
                let u_pp = at(si + 2 * s);
                let e_next = edge_states(&u_0, &u_p, &u_pp, axis, dt_over_dx, gamma);
                let f_hi = hll_flux(&e_cur.1, &e_next.0, axis, gamma);
                let u = apply_floors(flux_difference_update(&u_0, &f_lo, &f_hi, dt_over_dx), gamma);
                out[crate::euler::fields::RHO][oi] = u.rho;
                out[crate::euler::fields::MX][oi] = u.m[0];
                out[crate::euler::fields::MY][oi] = u.m[1];
                out[crate::euler::fields::MZ][oi] = u.m[2];
                out[crate::euler::fields::E][oi] = u.e;
                u_0 = u_p;
                u_p = u_pp;
                e_cur = e_next;
                f_lo = f_hi;
                si += s;
                oi += l.out_stride;
            }
        });
    }
    crate::euler::commit_scratch(fieldset, scratch, pool);
}

/// Full dimensionally-split MUSCL–Hancock step (zero-gradient ghost refill
/// between sweeps, as in [`crate::euler::euler_step`]).
pub fn muscl_step<P: FieldAlloc>(fieldset: &mut [Field3], dt_over_dx: f64, gamma: f64, pool: &P) {
    for axis in 0..3 {
        if axis > 0 {
            for f in fieldset.iter_mut().take(NFIELDS) {
                f.fill_ghosts_zero_gradient();
            }
        }
        sweep_muscl(fieldset, axis, dt_over_dx, gamma, pool);
    }
}

/// Update-list forms retained as bit-identity oracles (see
/// [`crate::euler::reference`]).
pub mod reference {
    use super::*;

    /// Reference for [`super::sweep_muscl`].
    pub fn sweep_muscl(fieldset: &mut [Field3], axis: usize, dt_over_dx: f64, gamma: f64) {
        assert_muscl_ghosts(fieldset);
        let interior = fieldset[0].interior();
        let dir = crate::euler::axis_dir(axis);
        let mut updates: Vec<(IVec3, Cons)> = Vec::with_capacity(checked_capacity(interior.cells()));
        for p in interior.iter_cells() {
            updates.push((p, updated_state(fieldset, p, dir, axis, dt_over_dx, gamma)));
        }
        for (p, u) in updates {
            store(fieldset, p, u, gamma);
        }
    }

    /// Reference for [`super::muscl_step`].
    pub fn muscl_step(fieldset: &mut [Field3], dt_over_dx: f64, gamma: f64) {
        for axis in 0..3 {
            if axis > 0 {
                for f in fieldset.iter_mut().take(NFIELDS) {
                    f.fill_ghosts_zero_gradient();
                }
            }
            sweep_muscl(fieldset, axis, dt_over_dx, gamma);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler::{fields as F, max_wave_speed, set_ambient, totals};
    use samr_mesh::pool::FieldPool;
    use samr_mesh::region::Region;

    fn smooth_wave(n: i64, ghost: i64) -> Vec<Field3> {
        let gamma = 1.4;
        let mut fs: Vec<Field3> = (0..NFIELDS)
            .map(|_| Field3::zeros(Region::cube(n), ghost))
            .collect();
        set_ambient(&mut fs, 1.0, [0.5, 0.0, 0.0], 1.0, gamma);
        // smooth density bump advected by the uniform flow
        for p in fs[0].storage_region().iter_cells() {
            let x = (p.x as f64 + 0.5) / n as f64;
            let rho = 1.0 + 0.2 * (2.0 * std::f64::consts::PI * x).sin().powi(2);
            let v = 0.5;
            fs[F::RHO].set(p, rho);
            fs[F::MX].set(p, rho * v);
            fs[F::E].set(p, 1.0 / (gamma - 1.0) + 0.5 * rho * v * v);
        }
        fs
    }

    #[test]
    fn in_place_sweep_matches_reference_bitwise() {
        let pool = FieldPool::new();
        let gamma = 1.4;
        for steps in [1, 3] {
            let mut a = smooth_wave(10, 2);
            let mut b = a.clone();
            let s = max_wave_speed(&a, gamma);
            for _ in 0..steps {
                for f in a.iter_mut() {
                    f.fill_ghosts_zero_gradient();
                }
                muscl_step(&mut a, 0.3 / s, gamma, &pool);
                for f in b.iter_mut() {
                    f.fill_ghosts_zero_gradient();
                }
                reference::muscl_step(&mut b, 0.3 / s, gamma);
            }
            let bits = |fs: &[Field3]| -> Vec<Vec<u64>> {
                fs.iter()
                    .map(|f| f.data().iter().map(|v| v.to_bits()).collect())
                    .collect()
            };
            assert_eq!(bits(&a), bits(&b), "{steps} steps");
        }
        assert!(pool.stats().hits > 0);
    }

    #[test]
    fn uniform_state_is_steady() {
        let pool = FieldPool::new();
        let gamma = 1.4;
        let mut fs: Vec<Field3> = (0..NFIELDS)
            .map(|_| Field3::zeros(Region::cube(6), 2))
            .collect();
        set_ambient(&mut fs, 1.0, [0.3, -0.2, 0.1], 1.0, gamma);
        let before = totals(&fs);
        muscl_step(&mut fs, 0.1, gamma, &pool);
        let after = totals(&fs);
        assert!((before.0 - after.0).abs() < 1e-12);
        assert!((before.2 - after.2).abs() < 1e-11);
    }

    #[test]
    fn mass_conserved_in_interior() {
        let pool = FieldPool::new();
        let gamma = 1.4;
        let mut fs = smooth_wave(12, 2);
        let (m0, _, _) = totals(&fs);
        let s = max_wave_speed(&fs, gamma);
        for _ in 0..3 {
            for f in fs.iter_mut() {
                f.fill_ghosts_zero_gradient();
            }
            muscl_step(&mut fs, 0.3 / s, gamma, &pool);
        }
        let (m1, _, _) = totals(&fs);
        // zero-gradient boundaries admit small in/outflow of the moving
        // wave; interior conservation must still hold to a few percent
        assert!((m0 - m1).abs() / m0 < 0.02, "{m0} vs {m1}");
    }

    #[test]
    fn less_diffusive_than_first_order() {
        // advect the smooth bump; the 2nd-order scheme must preserve the
        // density contrast better than the 1st-order one
        let gamma = 1.4;
        let contrast = |fs: &[Field3]| {
            let int = fs[0].interior();
            let mut lo = f64::MAX;
            let mut hi = f64::MIN;
            // measure away from the boundary to avoid BC effects
            for p in int.grow(-2).iter_cells() {
                lo = lo.min(fs[F::RHO].get(p));
                hi = hi.max(fs[F::RHO].get(p));
            }
            hi - lo
        };
        let pool = FieldPool::new();
        let steps = 8;
        let mut first = smooth_wave(16, 2);
        let mut second = smooth_wave(16, 2);
        let s = max_wave_speed(&first, gamma);
        let dt_over_dx = 0.3 / s;
        for _ in 0..steps {
            for f in first.iter_mut() {
                f.fill_ghosts_zero_gradient();
            }
            crate::euler::euler_step(&mut first, dt_over_dx, gamma);
            for f in second.iter_mut() {
                f.fill_ghosts_zero_gradient();
            }
            muscl_step(&mut second, dt_over_dx, gamma, &pool);
        }
        let c1 = contrast(&first);
        let c2 = contrast(&second);
        assert!(
            c2 > c1 * 1.05,
            "2nd order must keep more contrast: {c2} vs {c1}"
        );
    }

    #[test]
    #[should_panic]
    fn requires_two_ghosts() {
        let mut fs: Vec<Field3> = (0..NFIELDS)
            .map(|_| Field3::zeros(Region::cube(4), 1))
            .collect();
        sweep_muscl(&mut fs, 0, 0.1, 1.4, &FieldPool::new());
    }
}
