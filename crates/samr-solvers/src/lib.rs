//! # samr-solvers — numerical kernels for the SAMR substrate
//!
//! Real numerics (not cost stubs) so the grid hierarchy adapts the way the
//! paper's datasets do:
//!
//! * [`euler`] — 3-D compressible Euler with HLL fluxes: the hyperbolic
//!   solver behind `ShockPool3D` (tilted planar shock) and the fluid half of
//!   `AMR64`.
//! * [`advection`] — scalar linear advection (upwind/minmod), used by tests
//!   and the quickstart.
//! * [`poisson`] — red-black Gauss–Seidel relaxation for `∇²φ = ρ`, the
//!   elliptic half of `AMR64`; [`multigrid`] accelerates it with V-cycles
//!   built on the mesh crate's inter-level transfer operators.
//! * [`particles`] — leapfrog particle trajectories with NGP deposition,
//!   `AMR64`'s ODE component.
//!
//! [`par`] runs a solver over many patches with rayon; simulated timing is
//! charged separately by the driver, so real parallelism only shortens
//! wall-clock time, never changes results.

// Fixed-axis (0..3) loops indexing several parallel arrays read more
// clearly as index loops.
#![allow(clippy::needless_range_loop)]

pub mod advection;
pub mod euler;
pub mod multigrid;
pub mod muscl;
pub mod par;
pub mod particles;
pub mod poisson;
pub mod riemann;

pub use particles::{Particle, ParticleSet};

/// Convert a region cell count (`i64`, non-negative by construction) into a
/// `usize` buffer capacity, panicking instead of silently truncating when
/// the count does not fit the address space (e.g. a pathological region on a
/// 32-bit target). Shared by the solvers' update-list reference paths.
#[inline]
pub fn checked_capacity(cells: i64) -> usize {
    usize::try_from(cells)
        .unwrap_or_else(|_| panic!("cell count {cells} does not fit in usize"))
}
