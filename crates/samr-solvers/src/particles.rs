//! Collisionless particles with leapfrog (kick–drift–kick) integration and
//! nearest-grid-point deposition — the "set of ordinary differential
//! equations for the particle trajectories" of the `AMR64` dataset.

use samr_mesh::field::Field3;
use samr_mesh::index::ivec3;
use samr_mesh::region::Region;
use serde::{Deserialize, Serialize};

/// One tracer/mass particle. Positions are continuous level-0 cell
/// coordinates (cell `i` spans `[i, i+1)`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Particle {
    pub pos: [f64; 3],
    pub vel: [f64; 3],
    pub mass: f64,
}

/// A set of particles living on the level-0 domain.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ParticleSet {
    pub particles: Vec<Particle>,
}

impl ParticleSet {
    pub fn new(particles: Vec<Particle>) -> Self {
        ParticleSet { particles }
    }

    pub fn len(&self) -> usize {
        self.particles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// Velocity kick: `v += a(pos) · dt`.
    pub fn kick(&mut self, dt: f64, accel: impl Fn([f64; 3]) -> [f64; 3]) {
        for p in &mut self.particles {
            let a = accel(p.pos);
            for k in 0..3 {
                p.vel[k] += a[k] * dt;
            }
        }
    }

    /// Position drift: `x += v · dt`, with periodic wrapping into `domain`
    /// (level-0 cell coordinates).
    pub fn drift(&mut self, dt: f64, domain: Region) {
        let lo = [domain.lo.x as f64, domain.lo.y as f64, domain.lo.z as f64];
        let hi = [domain.hi.x as f64, domain.hi.y as f64, domain.hi.z as f64];
        for p in &mut self.particles {
            for k in 0..3 {
                p.pos[k] += p.vel[k] * dt;
                let span = hi[k] - lo[k];
                while p.pos[k] < lo[k] {
                    p.pos[k] += span;
                }
                while p.pos[k] >= hi[k] {
                    p.pos[k] -= span;
                }
            }
        }
    }

    /// One full leapfrog step (kick–drift–kick).
    pub fn leapfrog(&mut self, dt: f64, domain: Region, accel: impl Fn([f64; 3]) -> [f64; 3]) {
        self.kick(0.5 * dt, &accel);
        self.drift(dt, domain);
        self.kick(0.5 * dt, &accel);
    }

    /// Deposit particle mass onto `field` (whose interior is in the same
    /// level-0 coordinates) with nearest-grid-point weighting, scaled by
    /// `scale` (mass→density conversion). Particles outside the field's
    /// interior are skipped.
    pub fn deposit_ngp(&self, field: &mut Field3, scale: f64) {
        let interior = field.interior();
        for p in &self.particles {
            let c = ivec3(
                p.pos[0].floor() as i64,
                p.pos[1].floor() as i64,
                p.pos[2].floor() as i64,
            );
            if interior.contains(c) {
                *field.at_mut(c) += p.mass * scale;
            }
        }
    }

    /// Deposit particle mass with cloud-in-cell (trilinear) weighting: each
    /// particle's mass is shared among the 8 cells nearest its position.
    /// Smoother than NGP (the operator production cosmology codes use);
    /// shares outside the field's interior are dropped.
    pub fn deposit_cic(&self, field: &mut Field3, scale: f64) {
        let interior = field.interior();
        for p in &self.particles {
            // cell centers sit at i + 0.5
            let xc = [p.pos[0] - 0.5, p.pos[1] - 0.5, p.pos[2] - 0.5];
            let base = [
                xc[0].floor() as i64,
                xc[1].floor() as i64,
                xc[2].floor() as i64,
            ];
            let frac = [
                xc[0] - base[0] as f64,
                xc[1] - base[1] as f64,
                xc[2] - base[2] as f64,
            ];
            for dx in 0..2i64 {
                for dy in 0..2i64 {
                    for dz in 0..2i64 {
                        let w = (if dx == 0 { 1.0 - frac[0] } else { frac[0] })
                            * (if dy == 0 { 1.0 - frac[1] } else { frac[1] })
                            * (if dz == 0 { 1.0 - frac[2] } else { frac[2] });
                        let c = ivec3(base[0] + dx, base[1] + dy, base[2] + dz);
                        if interior.contains(c) && w > 0.0 {
                            *field.at_mut(c) += p.mass * scale * w;
                        }
                    }
                }
            }
        }
    }

    /// Count particles whose containing cell lies inside `region`.
    pub fn count_in(&self, region: Region) -> usize {
        self.particles
            .iter()
            .filter(|p| {
                region.contains(ivec3(
                    p.pos[0].floor() as i64,
                    p.pos[1].floor() as i64,
                    p.pos[2].floor() as i64,
                ))
            })
            .count()
    }

    /// Total kinetic energy `Σ ½ m v²`.
    pub fn kinetic_energy(&self) -> f64 {
        self.particles
            .iter()
            .map(|p| {
                0.5 * p.mass * (p.vel[0] * p.vel[0] + p.vel[1] * p.vel[1] + p.vel[2] * p.vel[2])
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(pos: [f64; 3], vel: [f64; 3]) -> ParticleSet {
        ParticleSet::new(vec![Particle {
            pos,
            vel,
            mass: 1.0,
        }])
    }

    #[test]
    fn free_particle_moves_linearly() {
        let mut s = one([1.0, 1.0, 1.0], [1.0, 0.0, 0.5]);
        s.leapfrog(2.0, Region::cube(16), |_| [0.0; 3]);
        let p = s.particles[0];
        assert!((p.pos[0] - 3.0).abs() < 1e-12);
        assert!((p.pos[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn periodic_wrap() {
        let mut s = one([15.5, 0.0, 0.0], [1.0, -1.0, 0.0]);
        s.drift(1.0, Region::cube(16));
        let p = s.particles[0];
        assert!((p.pos[0] - 0.5).abs() < 1e-12);
        assert!((p.pos[1] - 15.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_oscillator_energy_bounded() {
        // a = -x (center 8): leapfrog conserves energy to O(dt^2) over many
        // periods — check it doesn't drift systematically.
        let center = 8.0;
        let accel = |pos: [f64; 3]| [-(pos[0] - center), 0.0, 0.0];
        let mut s = one([10.0, 8.0, 8.0], [0.0, 0.0, 0.0]);
        let e0 = 0.5 * (10.0f64 - center).powi(2); // potential energy
        let dt = 0.05;
        let mut max_dev: f64 = 0.0;
        for _ in 0..2000 {
            s.leapfrog(dt, Region::cube(16), accel);
            let p = s.particles[0];
            let e = 0.5 * p.vel[0] * p.vel[0] + 0.5 * (p.pos[0] - center).powi(2);
            max_dev = max_dev.max((e - e0).abs() / e0);
        }
        assert!(max_dev < 0.01, "energy deviation {max_dev}");
    }

    #[test]
    fn deposit_ngp_sums_mass() {
        let mut s = ParticleSet::new(
            (0..10)
                .map(|i| Particle {
                    pos: [2.3, 2.7, i as f64 / 10.0 + 2.0],
                    vel: [0.0; 3],
                    mass: 2.0,
                })
                .collect(),
        );
        let mut f = Field3::zeros(Region::cube(8), 0);
        s.deposit_ngp(&mut f, 1.0);
        // all land in cell (2,2,2)
        assert!((f.get(ivec3(2, 2, 2)) - 20.0).abs() < 1e-12);
        assert!((f.interior_sum() - 20.0).abs() < 1e-12);
        // outside-field particles skipped without panic
        s.particles[0].pos = [100.0, 0.0, 0.0];
        let mut g = Field3::zeros(Region::cube(8), 0);
        s.deposit_ngp(&mut g, 1.0);
        assert!((g.interior_sum() - 18.0).abs() < 1e-12);
    }

    #[test]
    fn cic_conserves_mass_in_interior() {
        let s = ParticleSet::new(vec![
            Particle { pos: [3.2, 4.7, 5.1], vel: [0.0; 3], mass: 2.0 },
            Particle { pos: [2.5, 2.5, 2.5], vel: [0.0; 3], mass: 3.0 },
        ]);
        let mut f = Field3::zeros(Region::cube(8), 0);
        s.deposit_cic(&mut f, 1.0);
        assert!((f.interior_sum() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cic_centered_particle_is_ngp_like() {
        // a particle at a cell center gives all its mass to that cell
        let s = ParticleSet::new(vec![Particle {
            pos: [3.5, 3.5, 3.5],
            vel: [0.0; 3],
            mass: 4.0,
        }]);
        let mut f = Field3::zeros(Region::cube(8), 0);
        s.deposit_cic(&mut f, 1.0);
        assert!((f.get(ivec3(3, 3, 3)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cic_smoother_than_ngp() {
        // a particle on a cell boundary splits mass between neighbours
        let s = ParticleSet::new(vec![Particle {
            pos: [4.0, 3.5, 3.5],
            vel: [0.0; 3],
            mass: 2.0,
        }]);
        let mut f = Field3::zeros(Region::cube(8), 0);
        s.deposit_cic(&mut f, 1.0);
        assert!((f.get(ivec3(3, 3, 3)) - 1.0).abs() < 1e-12);
        assert!((f.get(ivec3(4, 3, 3)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn count_in_regions() {
        let s = ParticleSet::new(vec![
            Particle { pos: [1.5, 1.5, 1.5], vel: [0.0; 3], mass: 1.0 },
            Particle { pos: [6.5, 6.5, 6.5], vel: [0.0; 3], mass: 1.0 },
        ]);
        assert_eq!(s.count_in(Region::cube(4)), 1);
        assert_eq!(s.count_in(Region::cube(8)), 2);
        assert_eq!(s.kinetic_energy(), 0.0);
    }
}
