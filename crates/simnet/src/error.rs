//! Typed communication failures surfaced by [`NetSim`](crate::NetSim).
//!
//! Before the fault-injection subsystem every comms call silently
//! succeeded; now a faulted link produces one of these errors, each
//! carrying the simulated time at which the caller *learned* of the
//! failure (clocks have already been advanced to that point, so wasted
//! wall-clock is accounted).

use topology::{ProbeError, SimTime};

/// Why a simulated communication operation failed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SimError {
    /// The link was down when the transfer started; the sender detected
    /// the dead peer at `at` (after a round-trip's worth of waiting).
    LinkDown { at: SimTime },
    /// The transfer did not complete before its deadline (explicit
    /// per-transfer deadline or the simulator's default timeout against
    /// blackholed links).
    Timeout { at: SimTime, deadline: SimTime },
    /// The transfer was cut mid-flight: `sent` of `total` bytes arrived
    /// before the link failed at `at`.
    PartialTransfer { at: SimTime, sent: u64, total: u64 },
    /// A two-message α/β probe failed.
    Probe { at: SimTime, source: ProbeError },
    /// A collective could not complete because the inter-link between
    /// `group_a` and `group_b` was unusable at `at`.
    CollectiveFailed {
        at: SimTime,
        group_a: usize,
        group_b: usize,
    },
    /// One endpoint of the transfer was crashed (crash-stop proc failure)
    /// when the transfer started; the live side detected the dead peer at
    /// `at` (after a round-trip's worth of waiting).
    PeerDead { at: SimTime },
}

impl SimError {
    /// Simulated time at which the failure was detected.
    pub fn at(&self) -> SimTime {
        match self {
            SimError::LinkDown { at }
            | SimError::Timeout { at, .. }
            | SimError::PartialTransfer { at, .. }
            | SimError::Probe { at, .. }
            | SimError::CollectiveFailed { at, .. }
            | SimError::PeerDead { at } => *at,
        }
    }

    /// Is this the kind of failure that should count as a timeout strike
    /// against the link (vs. a hard down)?
    pub fn is_timeout(&self) -> bool {
        matches!(self, SimError::Timeout { .. })
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::LinkDown { at } => write!(f, "link down (detected at {at:?})"),
            SimError::Timeout { at, deadline } => {
                write!(f, "transfer timed out at {at:?} (deadline {deadline:?})")
            }
            SimError::PartialTransfer { at, sent, total } => {
                write!(f, "partial transfer: {sent}/{total} bytes before failure at {at:?}")
            }
            SimError::Probe { at, source } => write!(f, "probe failed at {at:?}: {source}"),
            SimError::CollectiveFailed { at, group_a, group_b } => write!(
                f,
                "collective failed at {at:?}: link between groups {group_a} and {group_b} unusable"
            ),
            SimError::PeerDead { at } => {
                write!(f, "peer crashed (detected at {at:?})")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias for fallible simulator operations.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_extracts_detection_time() {
        let t = SimTime::from_secs(3);
        assert_eq!(SimError::LinkDown { at: t }.at(), t);
        assert_eq!(
            SimError::PartialTransfer {
                at: t,
                sent: 1,
                total: 2
            }
            .at(),
            t
        );
        assert!(SimError::Timeout { at: t, deadline: t }.is_timeout());
        assert!(!SimError::LinkDown { at: t }.is_timeout());
    }

    #[test]
    fn display_is_informative() {
        let e = SimError::CollectiveFailed {
            at: SimTime::ZERO,
            group_a: 0,
            group_b: 1,
        };
        assert!(e.to_string().contains("groups 0 and 1"));
    }
}
