//! Shared-substrate views: many tenants, one simulator clock.
//!
//! [`NetSim`] owns one [`DistributedSystem`] and its clocks outright — the
//! right shape for a single run, but a multi-tenant service needs N
//! independent drivers charging time to *one* network on *one* clock.
//! [`SimHandle`] wraps a `NetSim` for shared ownership, and [`SimView`]
//! gives each tenant a scoped window onto it: the tenant sees a small
//! `DistributedSystem` made of just its groups, while every charge lands on
//! the global simulator, so tenants contend for the same WAN links and
//! time-multiplex the same processors.
//!
//! `SimView` is an enum under the hood:
//!
//! - **Exclusive** wraps a plain `NetSim` and delegates directly — zero
//!   locking, zero translation. Single-run code (every benchmark, every
//!   test that predates the tenants layer) goes through this arm and stays
//!   bit-identical to the pre-view simulator.
//! - **Shared** holds a [`SimHandle`] plus local↔global id maps. Each call
//!   locks the handle once, translates the view-local `ProcId`/`GroupId`s
//!   to global ones, and charges the global simulator.
//!
//! Shared views are deliberately narrower than the raw simulator: they
//! cannot `reset` the global clock, carry proc-fault schedules (crash-stop
//! chaos stays a single-tenant concern), or override the global timeout.
//! Those methods panic on a shared view so a misuse fails loudly in tests
//! rather than silently perturbing co-tenants.

use crate::error::SimResult;
use crate::sim::NetSim;
use crate::stats::{Activity, SimStats};
use std::sync::{Arc, Mutex};
use telemetry::Telemetry;
use topology::{
    DistributedSystem, GroupId, LinkEstimator, ProbeSample, ProcFaultSchedule, ProcId, SimTime,
    SystemBuilder,
};

/// Shared ownership of one [`NetSim`]: the substrate N tenants charge time
/// to. Cloning the handle clones the `Arc`, not the simulator.
#[derive(Clone, Debug)]
pub struct SimHandle {
    inner: Arc<Mutex<NetSim>>,
}

impl SimHandle {
    /// Wrap a fresh simulator over `sys`.
    pub fn new(sys: DistributedSystem) -> Self {
        SimHandle {
            inner: Arc::new(Mutex::new(NetSim::new(sys))),
        }
    }

    /// Run `f` with the global simulator locked.
    pub fn with<R>(&self, f: impl FnOnce(&mut NetSim) -> R) -> R {
        let mut sim = self.inner.lock().expect("simnet handle poisoned");
        f(&mut sim)
    }

    /// Zero the global clocks and statistics (see [`NetSim::reset`]) — used
    /// once after all tenants are admitted, so setup work is excluded from
    /// the measured service run.
    pub fn reset(&self) {
        self.with(|s| s.reset());
    }

    /// Wall-clock of the global simulator (max over *all* procs).
    pub fn elapsed(&self) -> SimTime {
        self.with(|s| s.elapsed())
    }

    /// A clone of the global system description.
    pub fn system(&self) -> DistributedSystem {
        self.with(|s| s.system().clone())
    }

    /// A tenant-scoped view over `groups` of the global system.
    ///
    /// The view's local system re-binds the selected groups to dense local
    /// ids in selection order (group `groups[i]` becomes local `GroupId(i)`;
    /// its procs get the next contiguous run of local `ProcId`s). Every
    /// pair of selected groups must be connected in the global system —
    /// the local system clones those inter links, so link *parameters*
    /// (latency, bandwidth, traffic) travel with the view while contention
    /// state stays global.
    pub fn view(&self, groups: &[GroupId]) -> SimView {
        assert!(!groups.is_empty(), "view over no groups");
        let (sys, proc_map) = self.with(|s| {
            let g = s.system();
            let mut b = SystemBuilder::new();
            let mut proc_map: Vec<ProcId> = Vec::new();
            for &gid in groups {
                let grp = g.group(gid);
                let weight = g.proc(grp.procs[0]).weight;
                b = b.group(&grp.name, grp.nprocs(), weight, grp.intra.clone());
                proc_map.extend(grp.procs.iter().copied());
            }
            for (i, &ga) in groups.iter().enumerate() {
                for (j, &gb) in groups.iter().enumerate().skip(i + 1) {
                    b = b.connect(i, j, g.inter_link(ga, gb).clone());
                }
            }
            (b.build(), proc_map)
        });
        SimView {
            inner: ViewInner::Shared {
                handle: self.clone(),
                sys,
                proc_map,
                group_map: groups.to_vec(),
                faults: ProcFaultSchedule::default(),
                tel: Telemetry::null(),
            },
        }
    }
}

/// A simulator as seen by one run: either the whole thing (exclusive) or a
/// tenant's window onto a shared substrate. Mirrors the [`NetSim`] API the
/// schemes and the engine driver use, so run code is agnostic to which it
/// got.
#[derive(Clone, Debug)]
pub struct SimView {
    inner: ViewInner,
}

#[derive(Clone, Debug)]
enum ViewInner {
    /// Sole owner of the simulator: direct delegation, no lock, no id
    /// translation — the pre-tenants fast path.
    Exclusive(NetSim),
    /// A window onto a shared simulator: `proc_map[local] = global` and
    /// `group_map[local] = global`; `sys` is the local re-binding of the
    /// selected groups; `faults` is always quiet (shared views cannot carry
    /// crash schedules); `tel` is the view's own telemetry lane.
    Shared {
        handle: SimHandle,
        sys: DistributedSystem,
        proc_map: Vec<ProcId>,
        group_map: Vec<GroupId>,
        faults: ProcFaultSchedule,
        tel: Telemetry,
    },
}

impl SimView {
    /// An exclusive view over a fresh simulator — the drop-in replacement
    /// for `NetSim::new` in single-run code.
    pub fn new(sys: DistributedSystem) -> Self {
        SimView {
            inner: ViewInner::Exclusive(NetSim::new(sys)),
        }
    }

    /// Does this view share its simulator with other tenants?
    pub fn is_shared(&self) -> bool {
        matches!(self.inner, ViewInner::Shared { .. })
    }

    /// Translate a view-local group id to the global one.
    fn gg(&self, g: GroupId) -> GroupId {
        match &self.inner {
            ViewInner::Exclusive(_) => g,
            ViewInner::Shared { group_map, .. } => group_map[g.0],
        }
    }

    /// The system this view runs over (the local re-binding when shared).
    pub fn system(&self) -> &DistributedSystem {
        match &self.inner {
            ViewInner::Exclusive(s) => s.system(),
            ViewInner::Shared { sys, .. } => sys,
        }
    }

    /// Local clock of view processor `p`.
    pub fn now(&self, p: ProcId) -> SimTime {
        match &self.inner {
            ViewInner::Exclusive(s) => s.now(p),
            ViewInner::Shared {
                handle, proc_map, ..
            } => {
                let g = proc_map[p.0];
                handle.with(|s| s.now(g))
            }
        }
    }

    /// Wall-clock of *this view*: the maximum clock over the view's procs
    /// (not over co-tenants' procs).
    pub fn elapsed(&self) -> SimTime {
        match &self.inner {
            ViewInner::Exclusive(s) => s.elapsed(),
            ViewInner::Shared {
                handle, proc_map, ..
            } => handle.with(|s| {
                proc_map
                    .iter()
                    .map(|&p| s.now(p))
                    .max()
                    .expect("view has procs")
            }),
        }
    }

    /// Accumulated statistics, projected onto the view's procs. Message
    /// totals are global when shared (messages are a property of the
    /// substrate, not the tenant).
    pub fn stats(&self) -> SimStats {
        match &self.inner {
            ViewInner::Exclusive(s) => s.stats().clone(),
            ViewInner::Shared {
                handle, proc_map, ..
            } => handle.with(|s| {
                let global = s.stats();
                SimStats {
                    procs: proc_map.iter().map(|&p| global.procs[p.0]).collect(),
                    msgs: global.msgs,
                }
            }),
        }
    }

    /// Zero clocks and statistics. Exclusive views only: a shared view must
    /// not rewind co-tenants (use [`SimHandle::reset`] on the substrate
    /// before any tenant starts stepping).
    pub fn reset(&mut self) {
        match &mut self.inner {
            ViewInner::Exclusive(s) => s.reset(),
            ViewInner::Shared { .. } => panic!("reset on a shared view"),
        }
    }

    /// Attach a crash-stop schedule. Exclusive views only — crash windows
    /// on a shared substrate would tear co-tenants' procs out from under
    /// them without their drivers seeing it.
    pub fn set_proc_faults(&mut self, sched: ProcFaultSchedule) {
        match &mut self.inner {
            ViewInner::Exclusive(s) => s.set_proc_faults(sched),
            ViewInner::Shared { .. } => panic!("proc faults on a shared view"),
        }
    }

    /// Is any proc-crash window scheduled? Always `false` on shared views.
    pub fn has_proc_faults(&self) -> bool {
        match &self.inner {
            ViewInner::Exclusive(s) => s.has_proc_faults(),
            ViewInner::Shared { faults, .. } => !faults.is_quiet(),
        }
    }

    /// The proc-fault schedule (quiet on shared views).
    pub fn proc_faults(&self) -> &ProcFaultSchedule {
        match &self.inner {
            ViewInner::Exclusive(s) => s.proc_faults(),
            ViewInner::Shared { faults, .. } => faults,
        }
    }

    /// Is view proc `p` alive at `t`?
    pub fn alive_at(&self, p: ProcId, t: SimTime) -> bool {
        match &self.inner {
            ViewInner::Exclusive(s) => s.alive_at(p, t),
            ViewInner::Shared { faults, .. } => faults.alive_at(p.0, t),
        }
    }

    /// Is view proc `p` alive at the view's current wall-clock?
    pub fn alive_now(&self, p: ProcId) -> bool {
        self.alive_at(p, self.elapsed())
    }

    /// The procs of view group `g` that are alive now (view-local ids).
    pub fn alive_procs_in(&self, g: GroupId) -> Vec<ProcId> {
        match &self.inner {
            ViewInner::Exclusive(s) => s.alive_procs_in(g),
            ViewInner::Shared { sys, faults, .. } => {
                let t = self.elapsed();
                sys.procs_in(g)
                    .iter()
                    .copied()
                    .filter(|p| faults.alive_at(p.0, t))
                    .collect()
            }
        }
    }

    /// Sum of performance weights of view group `g`'s alive procs.
    pub fn alive_group_power(&self, g: GroupId) -> f64 {
        match &self.inner {
            ViewInner::Exclusive(s) => s.alive_group_power(g),
            ViewInner::Shared { sys, faults, .. } => {
                let t = self.elapsed();
                sys.procs_in(g)
                    .iter()
                    .filter(|p| faults.alive_at(p.0, t))
                    .map(|&p| sys.proc(p).weight)
                    .sum()
            }
        }
    }

    /// Attach a telemetry handle. On a shared view this sets the *view's*
    /// lane (read back by [`telemetry`](Self::telemetry) and the scheme
    /// layer); the substrate's transfer-level telemetry stays whatever was
    /// set on the underlying `NetSim`.
    pub fn set_telemetry(&mut self, t: Telemetry) {
        match &mut self.inner {
            ViewInner::Exclusive(s) => s.set_telemetry(t),
            ViewInner::Shared { tel, .. } => *tel = t,
        }
    }

    /// The view's telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        match &self.inner {
            ViewInner::Exclusive(s) => s.telemetry(),
            ViewInner::Shared { tel, .. } => tel,
        }
    }

    /// The blackhole-detection timeout of the underlying simulator.
    pub fn default_timeout(&self) -> SimTime {
        match &self.inner {
            ViewInner::Exclusive(s) => s.default_timeout(),
            ViewInner::Shared { handle, .. } => handle.with(|s| s.default_timeout()),
        }
    }

    /// Override the default timeout. Exclusive views only (the timeout is a
    /// substrate property).
    pub fn set_default_timeout(&mut self, t: SimTime) {
        match &mut self.inner {
            ViewInner::Exclusive(s) => s.set_default_timeout(t),
            ViewInner::Shared { .. } => panic!("timeout override on a shared view"),
        }
    }

    /// Utilization rows of the underlying simulator's inter links (global
    /// group ids when shared — the substrate's links are shared property).
    pub fn inter_link_utilization(&self) -> Vec<(usize, usize, f64)> {
        match &self.inner {
            ViewInner::Exclusive(s) => s.inter_link_utilization(),
            ViewInner::Shared { handle, .. } => handle.with(|s| s.inter_link_utilization()),
        }
    }

    /// View proc `p` computes for `secs` simulated seconds.
    pub fn compute(&mut self, p: ProcId, secs: f64) {
        match &mut self.inner {
            ViewInner::Exclusive(s) => s.compute(p, secs),
            ViewInner::Shared {
                handle, proc_map, ..
            } => {
                let g = proc_map[p.0];
                handle.with(|s| s.compute(g, secs));
            }
        }
    }

    /// View proc `p` is busy for `secs` seconds attributed to `act`.
    pub fn busy(&mut self, p: ProcId, secs: f64, act: Activity) {
        match &mut self.inner {
            ViewInner::Exclusive(s) => s.busy(p, secs, act),
            ViewInner::Shared {
                handle, proc_map, ..
            } => {
                let g = proc_map[p.0];
                handle.with(|s| s.busy(g, secs, act));
            }
        }
    }

    /// Is the `src → dst` path remote? Decided on the view's local system
    /// (group structure is identical to the global one for the view's
    /// procs).
    pub fn is_remote(&self, src: ProcId, dst: ProcId) -> bool {
        !self.system().same_group(src, dst)
    }

    /// Send `bytes` between view procs (see [`NetSim::send`]). On a shared
    /// substrate the transfer serializes on the *global* link, so
    /// co-tenants' traffic queues behind it.
    pub fn send(
        &mut self,
        src: ProcId,
        dst: ProcId,
        bytes: u64,
        act: Activity,
    ) -> SimResult<SimTime> {
        self.send_with_deadline(src, dst, bytes, act, None)
    }

    /// [`send`](Self::send) with an absolute deadline.
    pub fn send_with_deadline(
        &mut self,
        src: ProcId,
        dst: ProcId,
        bytes: u64,
        act: Activity,
        deadline: Option<SimTime>,
    ) -> SimResult<SimTime> {
        match &mut self.inner {
            ViewInner::Exclusive(s) => s.send_with_deadline(src, dst, bytes, act, deadline),
            ViewInner::Shared {
                handle, proc_map, ..
            } => {
                let (gs, gd) = (proc_map[src.0], proc_map[dst.0]);
                handle.with(|s| s.send_with_deadline(gs, gd, bytes, act, deadline))
            }
        }
    }

    /// Send classifying the time automatically as local or remote.
    pub fn send_auto(&mut self, src: ProcId, dst: ProcId, bytes: u64) -> SimResult<SimTime> {
        let act = if self.is_remote(src, dst) {
            Activity::RemoteComm
        } else {
            Activity::LocalComm
        };
        self.send(src, dst, bytes, act)
    }

    /// Synchronize a set of view procs; slack charged as `act`.
    pub fn sync(&mut self, procs: &[ProcId], act: Activity) -> SimTime {
        match &mut self.inner {
            ViewInner::Exclusive(s) => s.sync(procs, act),
            ViewInner::Shared {
                handle, proc_map, ..
            } => {
                let global: Vec<ProcId> = procs.iter().map(|p| proc_map[p.0]).collect();
                handle.with(|s| s.sync(&global, act))
            }
        }
    }

    /// Barrier over every proc of *this view* (co-tenants keep running).
    pub fn barrier_all(&mut self) -> SimTime {
        match &mut self.inner {
            ViewInner::Exclusive(s) => s.barrier_all(),
            ViewInner::Shared {
                handle, proc_map, ..
            } => handle.with(|s| s.sync(proc_map, Activity::Wait)),
        }
    }

    /// Barrier within one view group.
    pub fn barrier_group(&mut self, g: GroupId) -> SimTime {
        let procs = self.system().procs_in(g).to_vec();
        self.sync(&procs, Activity::Wait)
    }

    /// Allreduce over every proc of this view.
    pub fn allreduce_all(&mut self, bytes: u64, act: Activity) -> SimResult<SimTime> {
        let groups: Vec<GroupId> = (0..self.system().ngroups()).map(GroupId).collect();
        self.allreduce_groups(&groups, bytes, act)
    }

    /// Allreduce over the listed view groups only.
    pub fn allreduce_groups(
        &mut self,
        groups: &[GroupId],
        bytes: u64,
        act: Activity,
    ) -> SimResult<SimTime> {
        match &mut self.inner {
            ViewInner::Exclusive(s) => s.allreduce_groups(groups, bytes, act),
            ViewInner::Shared {
                handle, group_map, ..
            } => {
                let global: Vec<GroupId> = groups.iter().map(|g| group_map[g.0]).collect();
                handle.with(|s| s.allreduce_groups(&global, bytes, act))
            }
        }
    }

    /// Allreduce within one view group.
    pub fn allreduce_group(&mut self, g: GroupId, bytes: u64, act: Activity) -> SimResult<SimTime> {
        self.allreduce_groups(&[g], bytes, act)
    }

    /// Probe the inter link between two view groups (see
    /// [`NetSim::probe_inter`]). The probe prices the *global* link — on a
    /// congested shared substrate a tenant's α/β estimates see co-tenant
    /// weather.
    pub fn probe_inter(
        &mut self,
        a: GroupId,
        b: GroupId,
        est: &mut LinkEstimator,
        deadline: Option<SimTime>,
    ) -> SimResult<ProbeSample> {
        let (ga, gb) = (self.gg(a), self.gg(b));
        match &mut self.inner {
            ViewInner::Exclusive(s) => s.probe_inter(ga, gb, est, deadline),
            ViewInner::Shared { handle, .. } => {
                handle.with(|s| s.probe_inter(ga, gb, est, deadline))
            }
        }
    }

    /// Advance this view's procs to their common maximum and return it.
    pub fn finish(&mut self) -> SimTime {
        match &mut self.inner {
            ViewInner::Exclusive(s) => s.finish(),
            ViewInner::Shared {
                handle, proc_map, ..
            } => handle.with(|s| s.sync(proc_map, Activity::Wait)),
        }
    }

    /// Re-point view group `local` at global group `new_global` — the
    /// substrate half of a whole-tenant migration. The destination must
    /// have the same proc count as the view group (the tenant's partition
    /// maps procs by position). Shared views only.
    ///
    /// Note the local system is *not* rebuilt: the view keeps its original
    /// group name, weights, and link parameters for cost modeling, while
    /// the charges land on the new global procs/links. The tenants service
    /// keeps this honest by migrating only between homogeneous groups.
    pub fn remap_group(&mut self, local: GroupId, new_global: GroupId) {
        match &mut self.inner {
            ViewInner::Exclusive(_) => panic!("remap_group on an exclusive view"),
            ViewInner::Shared {
                handle,
                sys,
                proc_map,
                group_map,
                ..
            } => {
                let new_procs = handle.with(|s| s.system().procs_in(new_global).to_vec());
                let local_procs = sys.procs_in(local);
                assert_eq!(
                    local_procs.len(),
                    new_procs.len(),
                    "remap_group: proc count mismatch"
                );
                for (lp, gp) in local_procs.iter().zip(new_procs) {
                    proc_map[lp.0] = gp;
                }
                group_map[local.0] = new_global;
            }
        }
    }

    /// The view's local→global group mapping (identity-length list for
    /// exclusive views).
    pub fn group_mapping(&self) -> Vec<GroupId> {
        match &self.inner {
            ViewInner::Exclusive(s) => (0..s.system().ngroups()).map(GroupId).collect(),
            ViewInner::Shared { group_map, .. } => group_map.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::link::Link;

    fn substrate(groups: usize, n: usize) -> DistributedSystem {
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
        let wan = Link::dedicated("wan", SimTime::from_millis(10), 1e7);
        let mut b = SystemBuilder::new();
        for gi in 0..groups {
            b = b.group(&format!("G{gi}"), n, 1.0, intra.clone());
        }
        for a in 0..groups {
            for c in (a + 1)..groups {
                b = b.connect(a, c, wan.clone());
            }
        }
        b.build()
    }

    #[test]
    fn exclusive_view_matches_raw_netsim() {
        let sys = substrate(2, 2);
        let mut raw = NetSim::new(sys.clone());
        let mut view = SimView::new(sys);
        raw.compute(ProcId(0), 0.5);
        view.compute(ProcId(0), 0.5);
        raw.send_auto(ProcId(0), ProcId(2), 123_456).unwrap();
        view.send_auto(ProcId(0), ProcId(2), 123_456).unwrap();
        raw.allreduce_all(64, Activity::LoadBalance).unwrap();
        view.allreduce_all(64, Activity::LoadBalance).unwrap();
        assert_eq!(raw.finish(), view.finish());
        assert_eq!(raw.stats().msgs.remote_msgs, view.stats().msgs.remote_msgs);
        assert!(!view.is_shared());
    }

    #[test]
    fn shared_view_translates_ids() {
        let handle = SimHandle::new(substrate(3, 2));
        // a view over the *last* two groups: local proc 0 is global proc 2
        let mut v = handle.view(&[GroupId(1), GroupId(2)]);
        assert!(v.is_shared());
        assert_eq!(v.system().nprocs(), 4);
        assert_eq!(v.system().ngroups(), 2);
        v.compute(ProcId(0), 1.0);
        assert_eq!(v.now(ProcId(0)), SimTime::from_secs(1));
        handle.with(|s| {
            assert_eq!(s.now(ProcId(2)), SimTime::from_secs(1));
            assert_eq!(s.now(ProcId(0)), SimTime::ZERO);
        });
        // the view's elapsed ignores procs outside the view
        handle.with(|s| s.compute(ProcId(0), 9.0));
        assert_eq!(v.elapsed(), SimTime::from_secs(1));
    }

    #[test]
    fn tenants_contend_on_the_shared_link() {
        let handle = SimHandle::new(substrate(2, 2));
        // two tenants, both spanning the same two groups
        let mut a = handle.view(&[GroupId(0), GroupId(1)]);
        let mut b = handle.view(&[GroupId(0), GroupId(1)]);
        a.send_auto(ProcId(0), ProcId(2), 1_000_000).unwrap();
        b.send_auto(ProcId(1), ProcId(3), 1_000_000).unwrap();
        // second transfer had to queue behind the first on the global wan
        let t = b.now(ProcId(3)).as_secs_f64();
        assert!((t - 0.22).abs() < 1e-6, "{t}");
    }

    #[test]
    fn disjoint_views_do_not_contend() {
        let handle = SimHandle::new(substrate(4, 2));
        let mut a = handle.view(&[GroupId(0), GroupId(1)]);
        let mut b = handle.view(&[GroupId(2), GroupId(3)]);
        a.send_auto(ProcId(0), ProcId(2), 1_000_000).unwrap();
        b.send_auto(ProcId(0), ProcId(2), 1_000_000).unwrap();
        assert_eq!(a.now(ProcId(2)), b.now(ProcId(2)));
    }

    #[test]
    fn view_barrier_leaves_cotenants_alone() {
        let handle = SimHandle::new(substrate(3, 2));
        let mut v = handle.view(&[GroupId(0), GroupId(1)]);
        v.compute(ProcId(0), 2.0);
        v.barrier_all();
        handle.with(|s| {
            assert_eq!(s.now(ProcId(3)), SimTime::from_secs(2));
            assert_eq!(s.now(ProcId(4)), SimTime::ZERO, "outside the view");
        });
    }

    #[test]
    fn shared_view_stats_project_the_right_procs() {
        let handle = SimHandle::new(substrate(2, 2));
        let mut v = handle.view(&[GroupId(1)]);
        v.compute(ProcId(0), 3.0);
        let st = v.stats();
        assert_eq!(st.procs.len(), 2);
        assert_eq!(st.procs[0].compute, SimTime::from_secs(3));
    }

    #[test]
    fn remap_group_repoints_charges() {
        let handle = SimHandle::new(substrate(3, 2));
        let mut v = handle.view(&[GroupId(0)]);
        v.remap_group(GroupId(0), GroupId(2));
        v.compute(ProcId(0), 1.5);
        handle.with(|s| {
            assert_eq!(s.now(ProcId(4)), SimTime::from_secs_f64(1.5));
            assert_eq!(s.now(ProcId(0)), SimTime::ZERO);
        });
        assert_eq!(v.group_mapping(), vec![GroupId(2)]);
    }

    #[test]
    #[should_panic(expected = "reset on a shared view")]
    fn shared_view_cannot_reset() {
        let handle = SimHandle::new(substrate(2, 2));
        let mut v = handle.view(&[GroupId(0)]);
        v.reset();
    }

    #[test]
    fn shared_view_probe_prices_the_global_link() {
        let handle = SimHandle::new(substrate(2, 2));
        let mut v = handle.view(&[GroupId(0), GroupId(1)]);
        let mut est = LinkEstimator::paper_default();
        v.probe_inter(GroupId(0), GroupId(1), &mut est, None).unwrap();
        // wan alpha ~ 10ms
        assert!((est.alpha().unwrap() - 0.01).abs() < 1e-4);
    }
}
