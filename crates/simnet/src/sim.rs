//! The virtual-time execution simulator.
//!
//! Every processor carries a local clock; compute blocks advance one clock,
//! messages advance sender and receiver and serialize on their physical
//! link (a shared link is busy while a transfer is in flight, so concurrent
//! transfers queue — contention among the application's own messages). On
//! top of that, each link's *background* traffic (other grid users) scales
//! its effective bandwidth at the transfer's start time.
//!
//! Links may also carry a fault schedule. A transfer that starts on (or
//! runs into) an outage, blackhole, or large-message-drop window fails with
//! a typed [`SimError`] instead of silently succeeding; the endpoint clocks
//! are advanced to the moment the failure was *detected*, so wasted time is
//! fully accounted.
//!
//! The model is BSP/LogP-flavoured rather than packet-level: exact enough to
//! reproduce who-waits-for-what and how shared-WAN slowness scales, while
//! staying deterministic and fast.

use crate::error::{SimError, SimResult};
use crate::stats::{Activity, SimStats};
use telemetry::{EventKind, PredictorSwitchEvent, ProbeEvent, Telemetry, TransferEvent};
use topology::faults::FaultKind;
use topology::link::Link;
use topology::{DistributedSystem, GroupId, ProcFaultSchedule, ProcId, SimTime};

/// Physical link identity for contention tracking.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum LinkKey {
    Intra(usize),
    Inter(usize, usize),
}

/// Virtual-time simulator over a [`DistributedSystem`].
#[derive(Clone, Debug)]
pub struct NetSim {
    sys: DistributedSystem,
    clocks: Vec<SimTime>,
    link_free: std::collections::BTreeMap<LinkKey, SimTime>,
    link_busy: std::collections::BTreeMap<LinkKey, SimTime>,
    stats: SimStats,
    /// How long a sender waits on a blackholed link (or a transfer with no
    /// explicit deadline) before declaring a timeout.
    default_timeout: SimTime,
    /// Observability handle; [`Telemetry::null`] by default, which makes
    /// every recording call a no-op. Recording never touches clocks, link
    /// state or statistics — a recorded run is bit-identical to a null one.
    telemetry: Telemetry,
    /// Crash-stop process failure schedule; quiet by default. Liveness is
    /// a pure function of simulated time, so detection needs no extra
    /// state: a send touching a dead endpoint fails fast, while
    /// collectives proceed over whoever is scheduled in (crashed procs'
    /// clocks keep advancing — they model the *slot*, not the host).
    proc_faults: ProcFaultSchedule,
}

impl NetSim {
    /// A fresh simulator with all clocks at zero.
    pub fn new(sys: DistributedSystem) -> Self {
        let n = sys.nprocs();
        NetSim {
            sys,
            clocks: vec![SimTime::ZERO; n],
            link_free: std::collections::BTreeMap::new(),
            link_busy: std::collections::BTreeMap::new(),
            stats: SimStats::new(n),
            default_timeout: SimTime::from_secs(5),
            telemetry: Telemetry::null(),
            proc_faults: ProcFaultSchedule::default(),
        }
    }

    /// Attach a crash-stop process failure schedule (pass
    /// [`ProcFaultSchedule::none`] or the default to clear it).
    pub fn set_proc_faults(&mut self, sched: ProcFaultSchedule) {
        self.proc_faults = sched;
    }

    /// Is any proc-crash window scheduled at all?
    pub fn has_proc_faults(&self) -> bool {
        !self.proc_faults.is_quiet()
    }

    /// The attached proc-fault schedule (quiet by default).
    pub fn proc_faults(&self) -> &ProcFaultSchedule {
        &self.proc_faults
    }

    /// Is `p` alive at simulated time `t` under the proc-fault schedule?
    pub fn alive_at(&self, p: ProcId, t: SimTime) -> bool {
        self.proc_faults.alive_at(p.0, t)
    }

    /// Is `p` alive right now (at the wall-clock [`elapsed`](Self::elapsed))?
    pub fn alive_now(&self, p: ProcId) -> bool {
        self.alive_at(p, self.elapsed())
    }

    /// The procs of group `g` that are alive at the current wall-clock.
    pub fn alive_procs_in(&self, g: GroupId) -> Vec<ProcId> {
        let t = self.elapsed();
        self.sys
            .procs_in(g)
            .iter()
            .copied()
            .filter(|&p| self.alive_at(p, t))
            .collect()
    }

    /// Sum of performance weights of group `g`'s *alive* procs — the
    /// capacity the balancer should price for a shrunken group.
    pub fn alive_group_power(&self, g: GroupId) -> f64 {
        let t = self.elapsed();
        self.sys
            .procs_in(g)
            .iter()
            .filter(|&&p| self.alive_at(p, t))
            .map(|&p| self.sys.proc(p).weight)
            .sum()
    }

    /// Attach a telemetry handle (pass [`Telemetry::null`] to detach).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.telemetry = tel;
    }

    /// The attached telemetry handle (null unless one was set).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The system being simulated.
    pub fn system(&self) -> &DistributedSystem {
        &self.sys
    }

    /// Local clock of processor `p`.
    pub fn now(&self, p: ProcId) -> SimTime {
        self.clocks[p.0]
    }

    /// Wall-clock so far: the maximum processor clock.
    pub fn elapsed(&self) -> SimTime {
        *self.clocks.iter().max().expect("no processors")
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The timeout applied to blackholed transfers without an explicit
    /// deadline.
    pub fn default_timeout(&self) -> SimTime {
        self.default_timeout
    }

    /// Override the default blackhole-detection timeout.
    pub fn set_default_timeout(&mut self, t: SimTime) {
        assert!(t > SimTime::ZERO, "timeout must be positive");
        self.default_timeout = t;
    }

    /// Zero all clocks, link-busy state and statistics — used to exclude
    /// setup work from a measured run.
    pub fn reset(&mut self) {
        self.clocks.fill(SimTime::ZERO);
        self.link_free.clear();
        self.link_busy.clear();
        self.stats = SimStats::new(self.sys.nprocs());
        // exclude pre-reset setup work from the recorded trace too
        self.telemetry.clear();
    }

    /// Fraction of elapsed time each inter-group link spent carrying the
    /// application's own transfers — `(group_a, group_b, utilization)` rows.
    pub fn inter_link_utilization(&self) -> Vec<(usize, usize, f64)> {
        let total = self.elapsed().as_secs_f64();
        if total <= 0.0 {
            return Vec::new();
        }
        self.link_busy
            .iter()
            .filter_map(|(k, busy)| match k {
                LinkKey::Inter(a, b) => Some((*a, *b, busy.as_secs_f64() / total)),
                LinkKey::Intra(_) => None,
            })
            .collect()
    }

    fn advance(&mut self, p: ProcId, to: SimTime, act: Activity) {
        let cur = self.clocks[p.0];
        if to > cur {
            self.stats.procs[p.0].charge(act, to - cur);
            self.clocks[p.0] = to;
        }
    }

    /// Processor `p` computes for `secs` seconds of simulated time.
    pub fn compute(&mut self, p: ProcId, secs: f64) {
        let to = self.clocks[p.0] + SimTime::from_secs_f64(secs);
        self.advance(p, to, Activity::Compute);
    }

    /// Processor `p` is busy for `secs` seconds attributed to `act` — used
    /// for non-solver local work such as regridding or repartitioning.
    pub fn busy(&mut self, p: ProcId, secs: f64, act: Activity) {
        let to = self.clocks[p.0] + SimTime::from_secs_f64(secs);
        self.advance(p, to, act);
    }

    fn link_key(&self, a: ProcId, b: ProcId) -> LinkKey {
        let ga = self.sys.group_of(a);
        let gb = self.sys.group_of(b);
        if ga == gb {
            LinkKey::Intra(ga.0)
        } else {
            LinkKey::Inter(ga.0.min(gb.0), ga.0.max(gb.0))
        }
    }

    /// Is the `src → dst` path remote (crosses groups)?
    pub fn is_remote(&self, src: ProcId, dst: ProcId) -> bool {
        !self.sys.same_group(src, dst)
    }

    /// Send `bytes` from `src` to `dst`, attributing the time to `act`
    /// (commonly [`Activity::LocalComm`]/[`Activity::RemoteComm`] — pass
    /// [`Activity::LoadBalance`] for migration traffic). Returns the
    /// completion time. Sender and receiver both block until completion
    /// (rendezvous semantics, as for large MPI messages); on failure both
    /// block until the failure was detected.
    ///
    /// A zero-byte send still pays latency — it is a control message.
    pub fn send(&mut self, src: ProcId, dst: ProcId, bytes: u64, act: Activity) -> SimResult<SimTime> {
        self.send_with_deadline(src, dst, bytes, act, None)
    }

    /// [`send`](Self::send) with an absolute per-transfer deadline: if the
    /// transfer would not complete by `deadline`, both ends give up there
    /// and the call returns [`SimError::Timeout`].
    pub fn send_with_deadline(
        &mut self,
        src: ProcId,
        dst: ProcId,
        bytes: u64,
        act: Activity,
        deadline: Option<SimTime>,
    ) -> SimResult<SimTime> {
        if src == dst {
            return Ok(self.clocks[src.0]); // same address space: free
        }
        let link = self.sys.link_between(src, dst).clone();
        let key = self.link_key(src, dst);
        let ready = self.clocks[src.0].max(self.clocks[dst.0]);
        let free = self.link_free.get(&key).copied().unwrap_or(SimTime::ZERO);
        let start = ready.max(free);
        // crash-stop endpoint: the live side gets a round trip of silence,
        // then learns the peer is dead — fail fast, don't tie up the link
        if !self.alive_at(src, start) || !self.alive_at(dst, start) {
            let at = start + link.alpha() + link.alpha();
            return Err(self.fail_transfer_at(src, dst, key, bytes, start, at, act, |at| {
                SimError::PeerDead { at }
            }));
        }
        let finish = start + link.transfer_time(start, bytes);
        let disruption = link.faults.first_disruption_in(start, finish, bytes);
        // a deadline that expires before the fault bites fires first
        let deadline_violation = deadline.filter(|&dl| finish > dl);
        if let Some(dl) = deadline_violation {
            let fault_first = matches!(disruption, Some((tf, _)) if tf < dl);
            if !fault_first {
                return Err(self.fail_transfer_at(src, dst, key, bytes, start, dl.max(start), act, |at| {
                    SimError::Timeout { at, deadline: dl }
                }));
            }
        }
        if let Some((tf, kind)) = disruption {
            return Err(self.fail_transfer(src, dst, key, &link, bytes, start, finish, tf, kind, deadline, act));
        }
        self.link_free.insert(key, finish);
        *self.link_busy.entry(key).or_default() += finish - start;
        // receiver waits for the data; sender blocks in rendezvous
        self.advance(src, finish, act);
        self.advance(dst, finish, act);
        let remote = matches!(key, LinkKey::Inter(_, _));
        if remote {
            self.stats.msgs.remote_msgs += 1;
            self.stats.msgs.remote_bytes += bytes;
        } else {
            self.stats.msgs.local_msgs += 1;
            self.stats.msgs.local_bytes += bytes;
        }
        if self.telemetry.is_enabled() {
            self.telemetry.event(
                finish.as_secs_f64(),
                EventKind::Transfer(TransferEvent {
                    src: src.0,
                    dst: dst.0,
                    bytes,
                    queue_secs: (start - ready).as_secs_f64(),
                    transfer_secs: (finish - start).as_secs_f64(),
                    remote,
                    failed: false,
                }),
            );
        }
        Ok(finish)
    }

    /// Common bookkeeping for a transfer that dies at `at`: the link is
    /// held until the failure, both endpoints block until they learn of it,
    /// and the attempt is counted as a failed message.
    #[allow(clippy::too_many_arguments)]
    fn fail_transfer_at(
        &mut self,
        src: ProcId,
        dst: ProcId,
        key: LinkKey,
        bytes: u64,
        start: SimTime,
        at: SimTime,
        act: Activity,
        err: impl FnOnce(SimTime) -> SimError,
    ) -> SimError {
        // pre-advance clocks still hold the rendezvous-ready time
        let ready = self.clocks[src.0].max(self.clocks[dst.0]);
        if at > start {
            self.link_free.insert(key, at);
            *self.link_busy.entry(key).or_default() += at - start;
        }
        self.advance(src, at, act);
        self.advance(dst, at, act);
        self.stats.msgs.failed_msgs += 1;
        self.stats.msgs.failed_bytes += bytes;
        if self.telemetry.is_enabled() {
            self.telemetry.event(
                at.as_secs_f64(),
                EventKind::Transfer(TransferEvent {
                    src: src.0,
                    dst: dst.0,
                    bytes,
                    queue_secs: (start.max(ready) - ready).as_secs_f64(),
                    transfer_secs: (at.max(start) - start).as_secs_f64(),
                    remote: matches!(key, LinkKey::Inter(_, _)),
                    failed: true,
                }),
            );
        }
        err(at)
    }

    /// Turn a fault-window disruption into the right [`SimError`].
    #[allow(clippy::too_many_arguments)]
    fn fail_transfer(
        &mut self,
        src: ProcId,
        dst: ProcId,
        key: LinkKey,
        link: &Link,
        bytes: u64,
        start: SimTime,
        finish: SimTime,
        tf: SimTime,
        kind: FaultKind,
        deadline: Option<SimTime>,
        act: Activity,
    ) -> SimError {
        match kind {
            // down before the first byte: the sender detects the dead peer
            // after a round trip of silence
            FaultKind::Outage if tf <= start => {
                let at = start + link.alpha() + link.alpha();
                self.fail_transfer_at(src, dst, key, bytes, start, at, act, |at| {
                    SimError::LinkDown { at }
                })
            }
            // blackhole: the transfer hangs until its deadline
            FaultKind::Blackhole => {
                let dl = deadline
                    .unwrap_or(start + self.default_timeout)
                    .max(start);
                self.fail_transfer_at(src, dst, key, bytes, start, dl, act, |at| {
                    SimError::Timeout { at, deadline: dl }
                })
            }
            // cut mid-flight: a fraction of the payload arrived
            FaultKind::Outage | FaultKind::DropLarge { .. } => {
                let at = tf.max(start + link.alpha()).min(finish);
                let span = (finish - start).as_nanos();
                let frac = if span == 0 {
                    1.0
                } else {
                    (at - start).as_nanos() as f64 / span as f64
                };
                let sent = ((bytes as f64 * frac) as u64).min(bytes.saturating_sub(1));
                self.fail_transfer_at(src, dst, key, bytes, start, at, act, |at| {
                    SimError::PartialTransfer {
                        at,
                        sent,
                        total: bytes,
                    }
                })
            }
            FaultKind::Slowdown { .. } => {
                unreachable!("slowdowns are priced into bandwidth, never disruptive")
            }
        }
    }

    /// Convenience: send classifying the time automatically as local or
    /// remote communication.
    pub fn send_auto(&mut self, src: ProcId, dst: ProcId, bytes: u64) -> SimResult<SimTime> {
        let act = if self.is_remote(src, dst) {
            Activity::RemoteComm
        } else {
            Activity::LocalComm
        };
        self.send(src, dst, bytes, act)
    }

    /// Synchronize a set of processors: all clocks jump to the set's max;
    /// the slack is charged as `act` (normally [`Activity::Wait`]).
    pub fn sync(&mut self, procs: &[ProcId], act: Activity) -> SimTime {
        let t = procs
            .iter()
            .map(|p| self.clocks[p.0])
            .max()
            .unwrap_or(SimTime::ZERO);
        for &p in procs {
            self.advance(p, t, act);
        }
        t
    }

    /// Barrier over every processor.
    pub fn barrier_all(&mut self) -> SimTime {
        let all: Vec<ProcId> = (0..self.sys.nprocs()).map(ProcId).collect();
        self.sync(&all, Activity::Wait)
    }

    /// Barrier within one group.
    pub fn barrier_group(&mut self, g: GroupId) -> SimTime {
        let procs = self.sys.procs_in(g).to_vec();
        self.sync(&procs, Activity::Wait)
    }

    /// A collective failed because the link between `a` and `b` is
    /// unusable: charge all `procs` a round trip of detection silence on
    /// that link, then report the failure.
    fn fail_collective(
        &mut self,
        procs: &[ProcId],
        link: &Link,
        t0: SimTime,
        a: GroupId,
        b: GroupId,
        act: Activity,
    ) -> SimError {
        let at = t0 + link.alpha() + link.alpha();
        for &p in procs {
            self.advance(p, at, act);
        }
        self.stats.msgs.failed_msgs += 1;
        SimError::CollectiveFailed {
            at,
            group_a: a.0,
            group_b: b.0,
        }
    }

    /// Allreduce of `bytes` over every processor, charged to `act`.
    ///
    /// Model: synchronize; recursive-doubling inside each group
    /// (`2·⌈log₂ n_g⌉` intra messages deep); for multi-group systems a
    /// reduce-exchange-broadcast over the inter links (2 messages deep on the
    /// slowest inter link). The whole operation completes simultaneously on
    /// all participants. Fails with [`SimError::CollectiveFailed`] if any
    /// needed inter link is down or blackholed when the exchange reaches it.
    pub fn allreduce_all(&mut self, bytes: u64, act: Activity) -> SimResult<SimTime> {
        let groups: Vec<GroupId> = (0..self.sys.ngroups()).map(GroupId).collect();
        self.allreduce_groups(&groups, bytes, act)
    }

    /// Allreduce of `bytes` over the processors of the listed groups only —
    /// the degraded-mode collective used while some groups are quarantined.
    pub fn allreduce_groups(
        &mut self,
        groups: &[GroupId],
        bytes: u64,
        act: Activity,
    ) -> SimResult<SimTime> {
        let procs: Vec<ProcId> = groups
            .iter()
            .flat_map(|&g| self.sys.procs_in(g).iter().copied())
            .collect();
        let t0 = self.sync(&procs, Activity::Wait);
        let mut dur = SimTime::ZERO;
        for &gid in groups {
            let g = self.sys.group(gid);
            let rounds = (g.nprocs() as f64).log2().ceil() as u32;
            let per = g.intra.transfer_time(t0, bytes);
            let d = SimTime(per.as_nanos() * 2 * rounds as u64);
            dur = dur.max(d);
        }
        if groups.len() > 1 {
            let t_inter = t0 + dur;
            // every needed pairwise link must be usable when the exchange
            // reaches it; the link is only cloned on the failure path, so
            // the healthy pass over G² pairs stays allocation-free
            let mut inter_d = SimTime::ZERO;
            for (i, &a) in groups.iter().enumerate() {
                for &b in &groups[i + 1..] {
                    let l = self.sys.inter_link(a, b);
                    if !l.health_at(t_inter).passes_probes() {
                        let l = l.clone();
                        return Err(self.fail_collective(&procs, &l, t_inter, a, b, act));
                    }
                    let per = l.transfer_time(t_inter, bytes);
                    inter_d = inter_d.max(SimTime(per.as_nanos() * 2));
                }
            }
            dur += inter_d;
        }
        let t1 = t0 + dur;
        for &p in &procs {
            self.advance(p, t1, act);
        }
        Ok(t1)
    }

    /// Allreduce of `bytes` within one group only.
    pub fn allreduce_group(&mut self, g: GroupId, bytes: u64, act: Activity) -> SimResult<SimTime> {
        self.allreduce_groups(&[g], bytes, act)
    }

    /// One-to-all broadcast of `bytes` from `root`, charged to `act`: a
    /// binomial tree within `root`'s group, one inter-group message to each
    /// other group's leader, then intra-group trees there.
    pub fn broadcast(&mut self, root: ProcId, bytes: u64, act: Activity) -> SimResult<SimTime> {
        let all: Vec<ProcId> = (0..self.sys.nprocs()).map(ProcId).collect();
        let t0 = self.sync(&all, Activity::Wait);
        let rg = self.sys.group_of(root);
        for g in 0..self.sys.ngroups() {
            let gid = GroupId(g);
            if gid == rg {
                continue;
            }
            let l = self.sys.inter_link(rg, gid).clone();
            if !l.health_at(t0).passes_probes() {
                return Err(self.fail_collective(&all, &l, t0, rg, gid, act));
            }
        }
        let mut finish = t0;
        // intra tree at the root group
        {
            let g = self.sys.group(rg);
            let rounds = (g.nprocs() as f64).log2().ceil() as u64;
            let per = g.intra.transfer_time(t0, bytes);
            finish = finish.max(t0 + SimTime(per.as_nanos() * rounds));
        }
        // fan out to other groups, then their intra trees
        for g in self.sys.groups() {
            if g.id == rg {
                continue;
            }
            let inter = self.sys.inter_link(rg, g.id).transfer_time(t0, bytes);
            let rounds = (g.nprocs() as f64).log2().ceil() as u64;
            let per = g.intra.transfer_time(t0 + inter, bytes);
            finish = finish.max(t0 + inter + SimTime(per.as_nanos() * rounds));
            self.stats.msgs.remote_msgs += 1;
            self.stats.msgs.remote_bytes += bytes;
        }
        for &p in &all {
            self.advance(p, finish, act);
        }
        Ok(finish)
    }

    /// All-to-one gather of `bytes` per processor to `root`, charged to
    /// `act`: intra-group trees concentrate each group's data at its leader,
    /// leaders forward the group's aggregate over the inter links (which
    /// serialize on the shared medium).
    pub fn gather(&mut self, root: ProcId, bytes: u64, act: Activity) -> SimResult<SimTime> {
        let all: Vec<ProcId> = (0..self.sys.nprocs()).map(ProcId).collect();
        let t0 = self.sync(&all, Activity::Wait);
        let rg = self.sys.group_of(root);
        let mut finish = t0;
        for g in self.sys.groups().to_vec() {
            let rounds = (g.nprocs() as f64).log2().ceil() as u64;
            let per = g.intra.transfer_time(t0, bytes);
            let intra_done = t0 + SimTime(per.as_nanos() * rounds);
            if g.id == rg {
                finish = finish.max(intra_done);
            } else {
                let l = self.sys.inter_link(g.id, rg).clone();
                if !l.health_at(intra_done).passes_probes() {
                    return Err(self.fail_collective(&all, &l, intra_done, g.id, rg, act));
                }
                let agg = bytes * g.nprocs() as u64;
                let inter = l.transfer_time(intra_done, agg);
                finish = finish.max(intra_done + inter);
                self.stats.msgs.remote_msgs += 1;
                self.stats.msgs.remote_bytes += agg;
            }
        }
        for &p in &all {
            self.advance(p, finish, act);
        }
        Ok(finish)
    }

    /// Probe the inter-group link between `a` and `b` with the two-message
    /// scheme of §4.2, performed by each group's first processor; the probe's
    /// simulated duration is charged to both as load-balance overhead. On
    /// failure the estimator records a strike, the leaders are charged the
    /// wasted detection time, and the typed error is returned. An optional
    /// absolute `deadline` bounds the probe's completion.
    pub fn probe_inter(
        &mut self,
        a: GroupId,
        b: GroupId,
        est: &mut topology::LinkEstimator,
        deadline: Option<SimTime>,
    ) -> SimResult<topology::ProbeSample> {
        // each side's leader is its first *alive* proc; if a whole group
        // is down the nominal leader stands in (probe outcome is then
        // decided by the link model alone)
        let lead = |sim: &Self, g: GroupId| {
            let t = sim.elapsed();
            sim.sys
                .procs_in(g)
                .iter()
                .copied()
                .find(|&p| sim.alive_at(p, t))
                .unwrap_or(sim.sys.procs_in(g)[0])
        };
        let pa = lead(self, a);
        let pb = lead(self, b);
        let t0 = self.clocks[pa.0].max(self.clocks[pb.0]);
        let link = self.sys.inter_link(a, b).clone();
        match topology::probe_link(&link, t0, est.small, est.large) {
            Ok(sample) => {
                let t1 = t0 + sample.elapsed;
                if let Some(dl) = deadline {
                    if t1 > dl {
                        est.record_failure(t0);
                        let at = dl.max(t0);
                        self.advance(pa, at, Activity::LoadBalance);
                        self.advance(pb, at, Activity::LoadBalance);
                        self.stats.msgs.failed_msgs += 1;
                        return Err(SimError::Timeout { at, deadline: dl });
                    }
                }
                // capture the estimator's view *before* folding the sample,
                // so the trace shows predicted-vs-measured drift
                let tel_on = self.telemetry.is_enabled();
                let (pred_alpha, pred_beta, model_before) = if tel_on {
                    (est.alpha(), est.beta(), Some(est.model_name()))
                } else {
                    (None, None, None)
                };
                // deterministic: refresh re-probes the same pure function
                let sample = est
                    .refresh(&link, t0)
                    .expect("probe succeeded a moment ago");
                self.advance(pa, t1, Activity::LoadBalance);
                self.advance(pb, t1, Activity::LoadBalance);
                if tel_on {
                    let t_sim = t1.as_secs_f64();
                    let model_after = est.model_name();
                    if let Some(before) = model_before {
                        if before != model_after {
                            self.telemetry.event(
                                t_sim,
                                EventKind::PredictorSwitch(PredictorSwitchEvent {
                                    series: format!("beta:g{}-g{}", a.0, b.0),
                                    from: before,
                                    to: model_after,
                                }),
                            );
                        }
                    }
                    self.telemetry.event(
                        t_sim,
                        EventKind::Probe(ProbeEvent {
                            group_a: a.0,
                            group_b: b.0,
                            alpha_secs: sample.alpha,
                            beta_secs_per_byte: sample.beta,
                            predicted_alpha_secs: pred_alpha,
                            predicted_beta_secs_per_byte: pred_beta,
                            elapsed_secs: sample.elapsed.as_secs_f64(),
                        }),
                    );
                    // per-link α/β estimate series, and the prediction
                    // error once the estimator has a view to score
                    let (lo, hi) = (a.0.min(b.0), a.0.max(b.0));
                    self.telemetry
                        .metric(t_sim, &format!("alpha:g{lo}-g{hi}"), sample.alpha);
                    self.telemetry
                        .metric(t_sim, &format!("beta:g{lo}-g{hi}"), sample.beta);
                    if let (Some(pa), Some(pb)) = (pred_alpha, pred_beta) {
                        self.telemetry.metric(
                            t_sim,
                            &format!("alpha_abs_err:g{lo}-g{hi}"),
                            (sample.alpha - pa).abs(),
                        );
                        self.telemetry.metric(
                            t_sim,
                            &format!("beta_abs_err:g{lo}-g{hi}"),
                            (sample.beta - pb).abs(),
                        );
                    }
                }
                Ok(sample)
            }
            Err(e) => {
                est.record_failure(t0);
                let at = match e {
                    // no reply: wait out the timeout
                    topology::ProbeError::NoReply => {
                        deadline.unwrap_or(t0 + self.default_timeout).max(t0)
                    }
                    // down or degenerate: a round trip of silence
                    _ => t0 + link.alpha() + link.alpha(),
                };
                self.advance(pa, at, Activity::LoadBalance);
                self.advance(pb, at, Activity::LoadBalance);
                self.stats.msgs.failed_msgs += 1;
                Err(SimError::Probe { at, source: e })
            }
        }
    }

    /// Advance every clock to the current maximum and return it — used at
    /// the end of a run so idle processors account their trailing wait.
    pub fn finish(&mut self) -> SimTime {
        self.barrier_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::faults::{FaultKind, FaultSchedule, ProcFaultSchedule};
    use topology::link::Link;
    use topology::SystemBuilder;

    fn sys2x2() -> DistributedSystem {
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
        let wan = Link::dedicated("wan", SimTime::from_millis(10), 1e7);
        SystemBuilder::new()
            .group("A", 2, 1.0, intra.clone())
            .group("B", 2, 1.0, intra)
            .connect(0, 1, wan)
            .build()
    }

    fn sys2x2_faulty(sched: FaultSchedule) -> DistributedSystem {
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
        let wan = Link::dedicated("wan", SimTime::from_millis(10), 1e7).with_faults(sched);
        SystemBuilder::new()
            .group("A", 2, 1.0, intra.clone())
            .group("B", 2, 1.0, intra)
            .connect(0, 1, wan)
            .build()
    }

    #[test]
    fn compute_advances_only_one_clock() {
        let mut sim = NetSim::new(sys2x2());
        sim.compute(ProcId(0), 2.0);
        assert_eq!(sim.now(ProcId(0)), SimTime::from_secs(2));
        assert_eq!(sim.now(ProcId(1)), SimTime::ZERO);
        assert_eq!(sim.elapsed(), SimTime::from_secs(2));
        assert_eq!(sim.stats().procs[0].compute, SimTime::from_secs(2));
    }

    #[test]
    fn send_blocks_both_ends() {
        let mut sim = NetSim::new(sys2x2());
        sim.send_auto(ProcId(0), ProcId(1), 1_000_000).unwrap(); // local: 10us + 1ms
        let t = sim.now(ProcId(0));
        assert_eq!(t, sim.now(ProcId(1)));
        assert!((t.as_secs_f64() - 0.00101).abs() < 1e-9);
        assert_eq!(sim.stats().msgs.local_msgs, 1);
        assert_eq!(sim.stats().msgs.remote_msgs, 0);
    }

    #[test]
    fn remote_send_classified_and_slow() {
        let mut sim = NetSim::new(sys2x2());
        sim.send_auto(ProcId(0), ProcId(2), 1_000_000).unwrap(); // wan: 10ms + 100ms
        let t = sim.now(ProcId(2)).as_secs_f64();
        assert!((t - 0.11).abs() < 1e-9, "{t}");
        assert_eq!(sim.stats().msgs.remote_msgs, 1);
        assert!(sim.stats().procs[0].remote_comm > SimTime::ZERO);
        assert_eq!(sim.stats().procs[0].local_comm, SimTime::ZERO);
    }

    #[test]
    fn self_send_free() {
        let mut sim = NetSim::new(sys2x2());
        sim.send_auto(ProcId(1), ProcId(1), 1 << 30).unwrap();
        assert_eq!(sim.elapsed(), SimTime::ZERO);
        assert_eq!(sim.stats().msgs.local_msgs, 0);
    }

    #[test]
    fn link_contention_serializes() {
        let mut sim = NetSim::new(sys2x2());
        // two disjoint proc pairs share the single wan link
        sim.send_auto(ProcId(0), ProcId(2), 1_000_000).unwrap();
        sim.send_auto(ProcId(1), ProcId(3), 1_000_000).unwrap();
        // second transfer had to wait for the first: ~0.11 + 0.11
        let t = sim.now(ProcId(3)).as_secs_f64();
        assert!((t - 0.22).abs() < 1e-6, "{t}");
        // but intra transfers in different groups don't contend
        let mut sim2 = NetSim::new(sys2x2());
        sim2.send_auto(ProcId(0), ProcId(1), 1_000_000).unwrap();
        sim2.send_auto(ProcId(2), ProcId(3), 1_000_000).unwrap();
        assert_eq!(sim2.now(ProcId(1)), sim2.now(ProcId(3)));
    }

    #[test]
    fn sync_charges_wait_to_laggards() {
        let mut sim = NetSim::new(sys2x2());
        sim.compute(ProcId(0), 5.0);
        sim.barrier_all();
        assert_eq!(sim.now(ProcId(3)), SimTime::from_secs(5));
        assert_eq!(sim.stats().procs[3].wait, SimTime::from_secs(5));
        assert_eq!(sim.stats().procs[0].wait, SimTime::ZERO);
    }

    #[test]
    fn barrier_group_leaves_other_group_alone() {
        let mut sim = NetSim::new(sys2x2());
        sim.compute(ProcId(0), 3.0);
        sim.barrier_group(GroupId(0));
        assert_eq!(sim.now(ProcId(1)), SimTime::from_secs(3));
        assert_eq!(sim.now(ProcId(2)), SimTime::ZERO);
    }

    #[test]
    fn allreduce_all_costs_more_than_group() {
        let mut a = NetSim::new(sys2x2());
        a.allreduce_all(64, Activity::LoadBalance).unwrap();
        let ta = a.elapsed();
        let mut b = NetSim::new(sys2x2());
        b.allreduce_group(GroupId(0), 64, Activity::LoadBalance).unwrap();
        let tb = b.elapsed();
        assert!(ta > tb, "{ta:?} vs {tb:?}");
        // all-proc allreduce pays the WAN: >= 2 * 10ms
        assert!(ta >= SimTime::from_millis(20));
        // group allreduce never does
        assert!(tb < SimTime::from_millis(1));
    }

    #[test]
    fn allreduce_synchronizes_everyone() {
        let mut sim = NetSim::new(sys2x2());
        sim.compute(ProcId(2), 1.0);
        sim.allreduce_all(8, Activity::LoadBalance).unwrap();
        let t = sim.now(ProcId(0));
        for p in 0..4 {
            assert_eq!(sim.now(ProcId(p)), t);
        }
        assert!(t > SimTime::from_secs(1));
    }

    #[test]
    fn probe_charges_lb_overhead_to_leaders() {
        let mut sim = NetSim::new(sys2x2());
        let mut est = topology::LinkEstimator::paper_default();
        let s = sim.probe_inter(GroupId(0), GroupId(1), &mut est, None).unwrap();
        assert!(est.alpha().is_some());
        assert!(s.elapsed > SimTime::ZERO);
        assert!(sim.stats().procs[0].load_balance > SimTime::ZERO);
        assert!(sim.stats().procs[2].load_balance > SimTime::ZERO);
        assert_eq!(sim.stats().procs[1].load_balance, SimTime::ZERO);
        // estimator recovered wan alpha ~ 10ms
        assert!((est.alpha().unwrap() - 0.01).abs() < 1e-4);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut sim = NetSim::new(sys2x2());
            sim.compute(ProcId(0), 0.5);
            sim.send_auto(ProcId(0), ProcId(2), 123_456).unwrap();
            sim.allreduce_all(64, Activity::LoadBalance).unwrap();
            sim.compute(ProcId(3), 0.25);
            sim.finish()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn send_on_down_link_fails_fast() {
        let sched = FaultSchedule::none().with_window(
            SimTime::ZERO,
            SimTime::from_secs(100),
            FaultKind::Outage,
        );
        let mut sim = NetSim::new(sys2x2_faulty(sched));
        let err = sim.send_auto(ProcId(0), ProcId(2), 1_000_000).unwrap_err();
        assert!(matches!(err, SimError::LinkDown { .. }), "{err:?}");
        // both ends paid the 2·α detection time (20 ms wan RTT)
        assert_eq!(sim.now(ProcId(0)), SimTime::from_millis(20));
        assert_eq!(sim.now(ProcId(2)), SimTime::from_millis(20));
        assert_eq!(sim.stats().msgs.failed_msgs, 1);
        assert_eq!(sim.stats().msgs.remote_msgs, 0);
        // intra traffic is unaffected
        assert!(sim.send_auto(ProcId(0), ProcId(1), 1_000).is_ok());
    }

    #[test]
    fn blackhole_hangs_until_default_timeout() {
        let sched = FaultSchedule::none().with_window(
            SimTime::ZERO,
            SimTime::from_secs(100),
            FaultKind::Blackhole,
        );
        let mut sim = NetSim::new(sys2x2_faulty(sched));
        sim.set_default_timeout(SimTime::from_secs(2));
        let err = sim.send_auto(ProcId(0), ProcId(2), 1_000_000).unwrap_err();
        assert!(matches!(err, SimError::Timeout { .. }), "{err:?}");
        assert_eq!(sim.now(ProcId(0)), SimTime::from_secs(2));
    }

    #[test]
    fn explicit_deadline_beats_slow_transfer() {
        // healthy link but 110 ms transfer vs a 50 ms deadline
        let mut sim = NetSim::new(sys2x2());
        let err = sim
            .send_with_deadline(
                ProcId(0),
                ProcId(2),
                1_000_000,
                Activity::LoadBalance,
                Some(SimTime::from_millis(50)),
            )
            .unwrap_err();
        assert_eq!(
            err,
            SimError::Timeout {
                at: SimTime::from_millis(50),
                deadline: SimTime::from_millis(50)
            }
        );
        assert_eq!(sim.now(ProcId(0)), SimTime::from_millis(50));
        // a generous deadline passes
        let mut sim2 = NetSim::new(sys2x2());
        assert!(sim2
            .send_with_deadline(
                ProcId(0),
                ProcId(2),
                1_000_000,
                Activity::LoadBalance,
                Some(SimTime::from_secs(1)),
            )
            .is_ok());
    }

    #[test]
    fn mid_flight_outage_is_partial_transfer() {
        // transfer runs 10ms..110ms; outage opens at 60 ms
        let sched = FaultSchedule::none().with_window(
            SimTime::from_millis(60),
            SimTime::from_secs(100),
            FaultKind::Outage,
        );
        let mut sim = NetSim::new(sys2x2_faulty(sched));
        let err = sim.send_auto(ProcId(0), ProcId(2), 1_000_000).unwrap_err();
        match err {
            SimError::PartialTransfer { at, sent, total } => {
                assert_eq!(at, SimTime::from_millis(60));
                assert_eq!(total, 1_000_000);
                assert!(sent > 0 && sent < total, "sent {sent}");
            }
            other => panic!("expected partial transfer, got {other:?}"),
        }
        assert_eq!(sim.now(ProcId(2)), SimTime::from_millis(60));
    }

    #[test]
    fn drop_large_spares_small_messages() {
        let sched = FaultSchedule::none().with_window(
            SimTime::ZERO,
            SimTime::from_secs(100),
            FaultKind::DropLarge {
                threshold_bytes: 64 * 1024,
            },
        );
        let mut sim = NetSim::new(sys2x2_faulty(sched));
        // a probe-sized message crosses fine
        assert!(sim.send_auto(ProcId(0), ProcId(2), 1 << 10).is_ok());
        // a bulk migration does not
        let err = sim.send_auto(ProcId(0), ProcId(2), 1 << 20).unwrap_err();
        assert!(matches!(err, SimError::PartialTransfer { .. }), "{err:?}");
    }

    #[test]
    fn failed_collective_reports_pair() {
        let sched = FaultSchedule::none().with_window(
            SimTime::ZERO,
            SimTime::from_secs(100),
            FaultKind::Outage,
        );
        let mut sim = NetSim::new(sys2x2_faulty(sched));
        let err = sim.allreduce_all(64, Activity::LoadBalance).unwrap_err();
        assert!(
            matches!(err, SimError::CollectiveFailed { group_a: 0, group_b: 1, .. }),
            "{err:?}"
        );
        // intra-group collectives still work
        assert!(sim.allreduce_group(GroupId(0), 64, Activity::LoadBalance).is_ok());
        // and the degraded-mode collective over one healthy group works
        assert!(sim
            .allreduce_groups(&[GroupId(0)], 64, Activity::LoadBalance)
            .is_ok());
    }

    #[test]
    fn probe_inter_fails_and_strikes_estimator() {
        let sched = FaultSchedule::none().with_window(
            SimTime::ZERO,
            SimTime::from_secs(50),
            FaultKind::Outage,
        );
        let mut sim = NetSim::new(sys2x2_faulty(sched));
        let mut est = topology::LinkEstimator::paper_default();
        let err = sim
            .probe_inter(GroupId(0), GroupId(1), &mut est, None)
            .unwrap_err();
        assert!(matches!(err, SimError::Probe { .. }), "{err:?}");
        assert_eq!(est.consecutive_failures(), 1);
        assert!(est.alpha().is_none(), "no bogus sample folded in");
        // leaders were charged the wasted detection time
        assert!(sim.stats().procs[0].load_balance > SimTime::ZERO);
        // after recovery, probing works and resets the strikes
        sim.compute(ProcId(0), 60.0);
        sim.compute(ProcId(2), 60.0);
        assert!(sim.probe_inter(GroupId(0), GroupId(1), &mut est, None).is_ok());
        assert_eq!(est.consecutive_failures(), 0);
    }

    #[test]
    fn faulted_sends_keep_accounting_complete() {
        let sched = FaultSchedule::none()
            .with_window(SimTime::ZERO, SimTime::from_millis(500), FaultKind::Outage)
            .with_window(
                SimTime::from_secs(1),
                SimTime::from_secs(2),
                FaultKind::Blackhole,
            );
        let mut sim = NetSim::new(sys2x2_faulty(sched));
        sim.set_default_timeout(SimTime::from_millis(200));
        let _ = sim.send_auto(ProcId(0), ProcId(2), 1_000_000);
        sim.compute(ProcId(0), 1.0);
        let _ = sim.send_auto(ProcId(0), ProcId(2), 1_000_000);
        let _ = sim.allreduce_all(64, Activity::LoadBalance);
        sim.finish();
        for p in 0..4 {
            assert_eq!(
                sim.stats().procs[p].total(),
                sim.now(ProcId(p)),
                "proc {p}: every advance must be attributed"
            );
        }
    }

    #[test]
    fn dead_peer_send_fails_fast_and_stays_accounted() {
        let mut sim = NetSim::new(sys2x2());
        // proc 1 is crashed from t=0 to t=10s
        let sched = ProcFaultSchedule::none(4).with_crash(
            1,
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        sim.set_proc_faults(sched);
        assert!(sim.has_proc_faults());
        assert!(sim.alive_now(ProcId(0)));
        assert!(!sim.alive_now(ProcId(1)));

        let err = sim.send_auto(ProcId(0), ProcId(1), 1_000_000).unwrap_err();
        assert!(matches!(err, SimError::PeerDead { .. }));
        // detection costs a round trip of intra latency (2 × 10µs), far
        // less than the ~1ms the payload would have taken
        assert_eq!(err.at(), SimTime::from_micros(20));
        assert_eq!(sim.now(ProcId(0)), err.at());
        assert_eq!(sim.stats().msgs.failed_msgs, 1);
        for p in 0..4 {
            assert_eq!(
                sim.stats().procs[p].total(),
                sim.now(ProcId(p)),
                "proc {p}: every advance must be attributed"
            );
        }

        // after the rejoin window the same send succeeds
        sim.compute(ProcId(0), 11.0);
        sim.send_auto(ProcId(0), ProcId(1), 1_000_000).unwrap();
    }

    #[test]
    fn alive_group_power_prices_the_shrunken_group() {
        let mut sim = NetSim::new(sys2x2());
        assert_eq!(sim.alive_group_power(GroupId(0)), 2.0);
        let sched = ProcFaultSchedule::none(4).with_crash(
            0,
            SimTime::ZERO,
            SimTime::from_secs(5),
        );
        sim.set_proc_faults(sched);
        assert_eq!(sim.alive_group_power(GroupId(0)), 1.0);
        assert_eq!(sim.alive_group_power(GroupId(1)), 2.0);
        assert_eq!(sim.alive_procs_in(GroupId(0)), vec![ProcId(1)]);
        // past the window, capacity is restored
        sim.compute(ProcId(3), 6.0);
        assert_eq!(sim.alive_group_power(GroupId(0)), 2.0);
    }
}
