//! The virtual-time execution simulator.
//!
//! Every processor carries a local clock; compute blocks advance one clock,
//! messages advance sender and receiver and serialize on their physical
//! link (a shared link is busy while a transfer is in flight, so concurrent
//! transfers queue — contention among the application's own messages). On
//! top of that, each link's *background* traffic (other grid users) scales
//! its effective bandwidth at the transfer's start time.
//!
//! The model is BSP/LogP-flavoured rather than packet-level: exact enough to
//! reproduce who-waits-for-what and how shared-WAN slowness scales, while
//! staying deterministic and fast.

use crate::stats::{Activity, SimStats};
use topology::{DistributedSystem, GroupId, ProcId, SimTime};

/// Physical link identity for contention tracking.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum LinkKey {
    Intra(usize),
    Inter(usize, usize),
}

/// Virtual-time simulator over a [`DistributedSystem`].
#[derive(Clone, Debug)]
pub struct NetSim {
    sys: DistributedSystem,
    clocks: Vec<SimTime>,
    link_free: std::collections::BTreeMap<LinkKey, SimTime>,
    link_busy: std::collections::BTreeMap<LinkKey, SimTime>,
    stats: SimStats,
}

impl NetSim {
    /// A fresh simulator with all clocks at zero.
    pub fn new(sys: DistributedSystem) -> Self {
        let n = sys.nprocs();
        NetSim {
            sys,
            clocks: vec![SimTime::ZERO; n],
            link_free: std::collections::BTreeMap::new(),
            link_busy: std::collections::BTreeMap::new(),
            stats: SimStats::new(n),
        }
    }

    /// The system being simulated.
    pub fn system(&self) -> &DistributedSystem {
        &self.sys
    }

    /// Local clock of processor `p`.
    pub fn now(&self, p: ProcId) -> SimTime {
        self.clocks[p.0]
    }

    /// Wall-clock so far: the maximum processor clock.
    pub fn elapsed(&self) -> SimTime {
        *self.clocks.iter().max().expect("no processors")
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Zero all clocks, link-busy state and statistics — used to exclude
    /// setup work from a measured run.
    pub fn reset(&mut self) {
        self.clocks.fill(SimTime::ZERO);
        self.link_free.clear();
        self.link_busy.clear();
        self.stats = SimStats::new(self.sys.nprocs());
    }

    /// Fraction of elapsed time each inter-group link spent carrying the
    /// application's own transfers — `(group_a, group_b, utilization)` rows.
    pub fn inter_link_utilization(&self) -> Vec<(usize, usize, f64)> {
        let total = self.elapsed().as_secs_f64();
        if total <= 0.0 {
            return Vec::new();
        }
        self.link_busy
            .iter()
            .filter_map(|(k, busy)| match k {
                LinkKey::Inter(a, b) => Some((*a, *b, busy.as_secs_f64() / total)),
                LinkKey::Intra(_) => None,
            })
            .collect()
    }

    fn advance(&mut self, p: ProcId, to: SimTime, act: Activity) {
        let cur = self.clocks[p.0];
        if to > cur {
            self.stats.procs[p.0].charge(act, to - cur);
            self.clocks[p.0] = to;
        }
    }

    /// Processor `p` computes for `secs` seconds of simulated time.
    pub fn compute(&mut self, p: ProcId, secs: f64) {
        let to = self.clocks[p.0] + SimTime::from_secs_f64(secs);
        self.advance(p, to, Activity::Compute);
    }

    /// Processor `p` is busy for `secs` seconds attributed to `act` — used
    /// for non-solver local work such as regridding or repartitioning.
    pub fn busy(&mut self, p: ProcId, secs: f64, act: Activity) {
        let to = self.clocks[p.0] + SimTime::from_secs_f64(secs);
        self.advance(p, to, act);
    }

    fn link_key(&self, a: ProcId, b: ProcId) -> LinkKey {
        let ga = self.sys.group_of(a);
        let gb = self.sys.group_of(b);
        if ga == gb {
            LinkKey::Intra(ga.0)
        } else {
            LinkKey::Inter(ga.0.min(gb.0), ga.0.max(gb.0))
        }
    }

    /// Is the `src → dst` path remote (crosses groups)?
    pub fn is_remote(&self, src: ProcId, dst: ProcId) -> bool {
        !self.sys.same_group(src, dst)
    }

    /// Send `bytes` from `src` to `dst`, attributing the time to `act`
    /// (commonly [`Activity::LocalComm`]/[`Activity::RemoteComm`] — pass
    /// [`Activity::LoadBalance`] for migration traffic). Returns the
    /// completion time. Sender and receiver both block until completion
    /// (rendezvous semantics, as for large MPI messages).
    ///
    /// A zero-byte send still pays latency — it is a control message.
    pub fn send(&mut self, src: ProcId, dst: ProcId, bytes: u64, act: Activity) {
        if src == dst {
            return; // same address space: free
        }
        let link = self.sys.link_between(src, dst).clone();
        let key = self.link_key(src, dst);
        let ready = self.clocks[src.0].max(self.clocks[dst.0]);
        let free = self.link_free.get(&key).copied().unwrap_or(SimTime::ZERO);
        let start = ready.max(free);
        let finish = start + link.transfer_time(start, bytes);
        self.link_free.insert(key, finish);
        *self.link_busy.entry(key).or_default() += finish - start;
        // receiver waits for the data; sender blocks in rendezvous
        self.advance(src, finish, act);
        self.advance(dst, finish, act);
        let remote = matches!(key, LinkKey::Inter(_, _));
        if remote {
            self.stats.msgs.remote_msgs += 1;
            self.stats.msgs.remote_bytes += bytes;
        } else {
            self.stats.msgs.local_msgs += 1;
            self.stats.msgs.local_bytes += bytes;
        }
    }

    /// Convenience: send classifying the time automatically as local or
    /// remote communication.
    pub fn send_auto(&mut self, src: ProcId, dst: ProcId, bytes: u64) {
        let act = if self.is_remote(src, dst) {
            Activity::RemoteComm
        } else {
            Activity::LocalComm
        };
        self.send(src, dst, bytes, act);
    }

    /// Synchronize a set of processors: all clocks jump to the set's max;
    /// the slack is charged as `act` (normally [`Activity::Wait`]).
    pub fn sync(&mut self, procs: &[ProcId], act: Activity) -> SimTime {
        let t = procs
            .iter()
            .map(|p| self.clocks[p.0])
            .max()
            .unwrap_or(SimTime::ZERO);
        for &p in procs {
            self.advance(p, t, act);
        }
        t
    }

    /// Barrier over every processor.
    pub fn barrier_all(&mut self) -> SimTime {
        let all: Vec<ProcId> = (0..self.sys.nprocs()).map(ProcId).collect();
        self.sync(&all, Activity::Wait)
    }

    /// Barrier within one group.
    pub fn barrier_group(&mut self, g: GroupId) -> SimTime {
        let procs = self.sys.procs_in(g).to_vec();
        self.sync(&procs, Activity::Wait)
    }

    /// Allreduce of `bytes` over every processor, charged to `act`.
    ///
    /// Model: synchronize; recursive-doubling inside each group
    /// (`2·⌈log₂ n_g⌉` intra messages deep); for multi-group systems a
    /// reduce-exchange-broadcast over the inter links (2 messages deep on the
    /// slowest inter link). The whole operation completes simultaneously on
    /// all participants.
    pub fn allreduce_all(&mut self, bytes: u64, act: Activity) {
        let all: Vec<ProcId> = (0..self.sys.nprocs()).map(ProcId).collect();
        let t0 = self.sync(&all, Activity::Wait);
        let mut dur = SimTime::ZERO;
        for g in self.sys.groups() {
            let rounds = (g.nprocs() as f64).log2().ceil() as u32;
            let per = g.intra.transfer_time(t0, bytes);
            let d = SimTime(per.as_nanos() * 2 * rounds as u64);
            dur = dur.max(d);
        }
        if self.sys.ngroups() > 1 {
            let mut inter_d = SimTime::ZERO;
            for a in 0..self.sys.ngroups() {
                for b in (a + 1)..self.sys.ngroups() {
                    let l = self.sys.inter_link(GroupId(a), GroupId(b));
                    let per = l.transfer_time(t0 + dur, bytes);
                    inter_d = inter_d.max(SimTime(per.as_nanos() * 2));
                }
            }
            dur += inter_d;
        }
        let t1 = t0 + dur;
        for &p in &all {
            self.advance(p, t1, act);
        }
    }

    /// Allreduce of `bytes` within one group only.
    pub fn allreduce_group(&mut self, g: GroupId, bytes: u64, act: Activity) {
        let procs = self.sys.procs_in(g).to_vec();
        let t0 = self.sync(&procs, Activity::Wait);
        let grp = self.sys.group(g);
        let rounds = (grp.nprocs() as f64).log2().ceil() as u32;
        let per = grp.intra.transfer_time(t0, bytes);
        let t1 = t0 + SimTime(per.as_nanos() * 2 * rounds as u64);
        for &p in &procs {
            self.advance(p, t1, act);
        }
    }

    /// One-to-all broadcast of `bytes` from `root`, charged to `act`: a
    /// binomial tree within `root`'s group, one inter-group message to each
    /// other group's leader, then intra-group trees there.
    pub fn broadcast(&mut self, root: ProcId, bytes: u64, act: Activity) {
        let all: Vec<ProcId> = (0..self.sys.nprocs()).map(ProcId).collect();
        let t0 = self.sync(&all, Activity::Wait);
        let rg = self.sys.group_of(root);
        let mut finish = t0;
        // intra tree at the root group
        {
            let g = self.sys.group(rg);
            let rounds = (g.nprocs() as f64).log2().ceil() as u64;
            let per = g.intra.transfer_time(t0, bytes);
            finish = finish.max(t0 + SimTime(per.as_nanos() * rounds));
        }
        // fan out to other groups, then their intra trees
        for g in self.sys.groups() {
            if g.id == rg {
                continue;
            }
            let inter = self.sys.inter_link(rg, g.id).transfer_time(t0, bytes);
            let rounds = (g.nprocs() as f64).log2().ceil() as u64;
            let per = g.intra.transfer_time(t0 + inter, bytes);
            finish = finish.max(t0 + inter + SimTime(per.as_nanos() * rounds));
            self.stats.msgs.remote_msgs += 1;
            self.stats.msgs.remote_bytes += bytes;
        }
        for &p in &all {
            self.advance(p, finish, act);
        }
    }

    /// All-to-one gather of `bytes` per processor to `root`, charged to
    /// `act`: intra-group trees concentrate each group's data at its leader,
    /// leaders forward the group's aggregate over the inter links (which
    /// serialize on the shared medium).
    pub fn gather(&mut self, root: ProcId, bytes: u64, act: Activity) {
        let all: Vec<ProcId> = (0..self.sys.nprocs()).map(ProcId).collect();
        let t0 = self.sync(&all, Activity::Wait);
        let rg = self.sys.group_of(root);
        let mut finish = t0;
        for g in self.sys.groups() {
            let rounds = (g.nprocs() as f64).log2().ceil() as u64;
            let per = g.intra.transfer_time(t0, bytes);
            let intra_done = t0 + SimTime(per.as_nanos() * rounds);
            if g.id == rg {
                finish = finish.max(intra_done);
            } else {
                let agg = bytes * g.nprocs() as u64;
                let inter = self.sys.inter_link(g.id, rg).transfer_time(intra_done, agg);
                finish = finish.max(intra_done + inter);
                self.stats.msgs.remote_msgs += 1;
                self.stats.msgs.remote_bytes += agg;
            }
        }
        for &p in &all {
            self.advance(p, finish, act);
        }
    }

    /// Probe the inter-group link between `a` and `b` with the two-message
    /// scheme of §4.2, performed by each group's first processor; the probe's
    /// simulated duration is charged to both as load-balance overhead.
    pub fn probe_inter(
        &mut self,
        a: GroupId,
        b: GroupId,
        est: &mut topology::LinkEstimator,
    ) -> topology::ProbeSample {
        let pa = self.sys.procs_in(a)[0];
        let pb = self.sys.procs_in(b)[0];
        let t0 = self.clocks[pa.0].max(self.clocks[pb.0]);
        let link = self.sys.inter_link(a, b).clone();
        let sample = est.refresh(&link, t0);
        let t1 = t0 + sample.elapsed;
        self.advance(pa, t1, Activity::LoadBalance);
        self.advance(pb, t1, Activity::LoadBalance);
        sample
    }

    /// Advance every clock to the current maximum and return it — used at
    /// the end of a run so idle processors account their trailing wait.
    pub fn finish(&mut self) -> SimTime {
        self.barrier_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::link::Link;
    use topology::SystemBuilder;

    fn sys2x2() -> DistributedSystem {
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
        let wan = Link::dedicated("wan", SimTime::from_millis(10), 1e7);
        SystemBuilder::new()
            .group("A", 2, 1.0, intra.clone())
            .group("B", 2, 1.0, intra)
            .connect(0, 1, wan)
            .build()
    }

    #[test]
    fn compute_advances_only_one_clock() {
        let mut sim = NetSim::new(sys2x2());
        sim.compute(ProcId(0), 2.0);
        assert_eq!(sim.now(ProcId(0)), SimTime::from_secs(2));
        assert_eq!(sim.now(ProcId(1)), SimTime::ZERO);
        assert_eq!(sim.elapsed(), SimTime::from_secs(2));
        assert_eq!(sim.stats().procs[0].compute, SimTime::from_secs(2));
    }

    #[test]
    fn send_blocks_both_ends() {
        let mut sim = NetSim::new(sys2x2());
        sim.send_auto(ProcId(0), ProcId(1), 1_000_000); // local: 10us + 1ms
        let t = sim.now(ProcId(0));
        assert_eq!(t, sim.now(ProcId(1)));
        assert!((t.as_secs_f64() - 0.00101).abs() < 1e-9);
        assert_eq!(sim.stats().msgs.local_msgs, 1);
        assert_eq!(sim.stats().msgs.remote_msgs, 0);
    }

    #[test]
    fn remote_send_classified_and_slow() {
        let mut sim = NetSim::new(sys2x2());
        sim.send_auto(ProcId(0), ProcId(2), 1_000_000); // wan: 10ms + 100ms
        let t = sim.now(ProcId(2)).as_secs_f64();
        assert!((t - 0.11).abs() < 1e-9, "{t}");
        assert_eq!(sim.stats().msgs.remote_msgs, 1);
        assert!(sim.stats().procs[0].remote_comm > SimTime::ZERO);
        assert_eq!(sim.stats().procs[0].local_comm, SimTime::ZERO);
    }

    #[test]
    fn self_send_free() {
        let mut sim = NetSim::new(sys2x2());
        sim.send_auto(ProcId(1), ProcId(1), 1 << 30);
        assert_eq!(sim.elapsed(), SimTime::ZERO);
        assert_eq!(sim.stats().msgs.local_msgs, 0);
    }

    #[test]
    fn link_contention_serializes() {
        let mut sim = NetSim::new(sys2x2());
        // two disjoint proc pairs share the single wan link
        sim.send_auto(ProcId(0), ProcId(2), 1_000_000);
        sim.send_auto(ProcId(1), ProcId(3), 1_000_000);
        // second transfer had to wait for the first: ~0.11 + 0.11
        let t = sim.now(ProcId(3)).as_secs_f64();
        assert!((t - 0.22).abs() < 1e-6, "{t}");
        // but intra transfers in different groups don't contend
        let mut sim2 = NetSim::new(sys2x2());
        sim2.send_auto(ProcId(0), ProcId(1), 1_000_000);
        sim2.send_auto(ProcId(2), ProcId(3), 1_000_000);
        assert_eq!(sim2.now(ProcId(1)), sim2.now(ProcId(3)));
    }

    #[test]
    fn sync_charges_wait_to_laggards() {
        let mut sim = NetSim::new(sys2x2());
        sim.compute(ProcId(0), 5.0);
        sim.barrier_all();
        assert_eq!(sim.now(ProcId(3)), SimTime::from_secs(5));
        assert_eq!(sim.stats().procs[3].wait, SimTime::from_secs(5));
        assert_eq!(sim.stats().procs[0].wait, SimTime::ZERO);
    }

    #[test]
    fn barrier_group_leaves_other_group_alone() {
        let mut sim = NetSim::new(sys2x2());
        sim.compute(ProcId(0), 3.0);
        sim.barrier_group(GroupId(0));
        assert_eq!(sim.now(ProcId(1)), SimTime::from_secs(3));
        assert_eq!(sim.now(ProcId(2)), SimTime::ZERO);
    }

    #[test]
    fn allreduce_all_costs_more_than_group() {
        let mut a = NetSim::new(sys2x2());
        a.allreduce_all(64, Activity::LoadBalance);
        let ta = a.elapsed();
        let mut b = NetSim::new(sys2x2());
        b.allreduce_group(GroupId(0), 64, Activity::LoadBalance);
        let tb = b.elapsed();
        assert!(ta > tb, "{ta:?} vs {tb:?}");
        // all-proc allreduce pays the WAN: >= 2 * 10ms
        assert!(ta >= SimTime::from_millis(20));
        // group allreduce never does
        assert!(tb < SimTime::from_millis(1));
    }

    #[test]
    fn allreduce_synchronizes_everyone() {
        let mut sim = NetSim::new(sys2x2());
        sim.compute(ProcId(2), 1.0);
        sim.allreduce_all(8, Activity::LoadBalance);
        let t = sim.now(ProcId(0));
        for p in 0..4 {
            assert_eq!(sim.now(ProcId(p)), t);
        }
        assert!(t > SimTime::from_secs(1));
    }

    #[test]
    fn probe_charges_lb_overhead_to_leaders() {
        let mut sim = NetSim::new(sys2x2());
        let mut est = topology::LinkEstimator::paper_default();
        let s = sim.probe_inter(GroupId(0), GroupId(1), &mut est);
        assert!(est.alpha().is_some());
        assert!(s.elapsed > SimTime::ZERO);
        assert!(sim.stats().procs[0].load_balance > SimTime::ZERO);
        assert!(sim.stats().procs[2].load_balance > SimTime::ZERO);
        assert_eq!(sim.stats().procs[1].load_balance, SimTime::ZERO);
        // estimator recovered wan alpha ~ 10ms
        assert!((est.alpha().unwrap() - 0.01).abs() < 1e-4);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut sim = NetSim::new(sys2x2());
            sim.compute(ProcId(0), 0.5);
            sim.send_auto(ProcId(0), ProcId(2), 123_456);
            sim.allreduce_all(64, Activity::LoadBalance);
            sim.compute(ProcId(3), 0.25);
            sim.finish()
        };
        assert_eq!(run(), run());
    }
}
