//! Retry-with-exponential-backoff over fallible simulator sends.
//!
//! The DLB's control traffic must survive transient link faults; this
//! module provides the shared retry policy (attempt count, base backoff,
//! multiplier) and a helper that re-issues a point-to-point transfer,
//! charging the backoff sleeps to [`Activity::Wait`] on both endpoints so
//! the accounting invariant (every clock advance is attributed) holds.

use crate::error::{SimError, SimResult};
use crate::shared::SimView;
use crate::stats::Activity;
use topology::{ProcId, SimTime};

/// Exponential-backoff retry policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 means "no retries".
    pub max_attempts: u32,
    /// Backoff before the first retry, in seconds.
    pub base_backoff_secs: f64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_secs: 0.05,
            backoff_multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_secs: 0.0,
            backoff_multiplier: 1.0,
        }
    }

    /// Backoff to sleep after failed attempt number `attempt` (0-based):
    /// `base · multiplier^attempt`.
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        self.base_backoff_secs * self.backoff_multiplier.powi(attempt as i32)
    }
}

/// Send with retries under `policy`; an optional absolute `deadline`
/// applies to each attempt. Returns how many retries were consumed along
/// with the outcome (the error of the last attempt, if all failed).
pub fn send_with_retry(
    sim: &mut SimView,
    src: ProcId,
    dst: ProcId,
    bytes: u64,
    act: Activity,
    deadline: Option<SimTime>,
    policy: RetryPolicy,
) -> (u32, SimResult<SimTime>) {
    let attempts = policy.max_attempts.max(1);
    let mut last: SimError = SimError::LinkDown { at: sim.now(src) };
    for attempt in 0..attempts {
        if attempt > 0 {
            let backoff = policy.backoff_secs(attempt - 1);
            sim.busy(src, backoff, Activity::Wait);
            sim.busy(dst, backoff, Activity::Wait);
        }
        match sim.send_with_deadline(src, dst, bytes, act, deadline) {
            Ok(t) => return (attempt, Ok(t)),
            Err(e) => last = e,
        }
    }
    (attempts - 1, Err(last))
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::faults::{FaultKind, FaultSchedule};
    use topology::link::Link;
    use topology::SystemBuilder;

    fn faulty_pair(windows: FaultSchedule) -> SimView {
        let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
        let wan = Link::dedicated("wan", SimTime::from_millis(10), 1e7).with_faults(windows);
        SimView::new(
            SystemBuilder::new()
                .group("A", 1, 1.0, intra.clone())
                .group("B", 1, 1.0, intra)
                .connect(0, 1, wan)
                .build(),
        )
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy::default();
        assert!((p.backoff_secs(0) - 0.05).abs() < 1e-12);
        assert!((p.backoff_secs(1) - 0.10).abs() < 1e-12);
        assert!((p.backoff_secs(2) - 0.20).abs() < 1e-12);
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn retry_succeeds_once_fault_clears() {
        // outage covers [0, 60 ms); first attempt fails, backoff pushes the
        // retry past the window and it succeeds
        let sched = FaultSchedule::none().with_window(
            SimTime::ZERO,
            SimTime::from_millis(60),
            FaultKind::Outage,
        );
        let mut sim = faulty_pair(sched);
        let (retries, res) = send_with_retry(
            &mut sim,
            ProcId(0),
            ProcId(1),
            1_000,
            Activity::LoadBalance,
            None,
            RetryPolicy::default(),
        );
        assert!(res.is_ok(), "{res:?}");
        assert!(retries >= 1);
        assert!(sim.stats().procs[0].wait > SimTime::ZERO, "backoff charged");
    }

    #[test]
    fn exhausted_retries_return_last_error() {
        let sched = FaultSchedule::none().with_window(
            SimTime::ZERO,
            SimTime::from_secs(3600),
            FaultKind::Outage,
        );
        let mut sim = faulty_pair(sched);
        let (retries, res) = send_with_retry(
            &mut sim,
            ProcId(0),
            ProcId(1),
            1_000,
            Activity::LoadBalance,
            None,
            RetryPolicy::default(),
        );
        assert_eq!(retries, 2, "default policy = 3 attempts");
        assert!(matches!(res, Err(SimError::LinkDown { .. })), "{res:?}");
    }
}
