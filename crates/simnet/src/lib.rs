//! # simnet — virtual-time execution simulator
//!
//! Simulates SAMR execution timing on a [`topology::DistributedSystem`]:
//! per-processor clocks, point-to-point messages that serialize on shared
//! physical links and feel time-varying background traffic, group and global
//! collectives, and the two-message α/β probe of the paper's §4.2. Every
//! clock advance is attributed to compute / local comm / remote comm / DLB
//! overhead / wait, which is exactly the decomposition the paper's Fig. 3
//! plots.

//! Faults are first-class: links may carry a [`topology::FaultSchedule`],
//! and every comms call returns a [`SimResult`] whose [`SimError`] carries
//! the simulated detection time. [`retry`] layers exponential backoff on
//! top for the DLB's control traffic.

pub mod error;
pub mod retry;
pub mod shared;
pub mod sim;
pub mod stats;

pub use error::{SimError, SimResult};
pub use retry::{send_with_retry, RetryPolicy};
pub use shared::{SimHandle, SimView};
pub use sim::NetSim;
pub use stats::{Activity, MsgStats, ProcStats, SimStats};
