//! # simnet — virtual-time execution simulator
//!
//! Simulates SAMR execution timing on a [`topology::DistributedSystem`]:
//! per-processor clocks, point-to-point messages that serialize on shared
//! physical links and feel time-varying background traffic, group and global
//! collectives, and the two-message α/β probe of the paper's §4.2. Every
//! clock advance is attributed to compute / local comm / remote comm / DLB
//! overhead / wait, which is exactly the decomposition the paper's Fig. 3
//! plots.

pub mod sim;
pub mod stats;

pub use sim::NetSim;
pub use stats::{Activity, MsgStats, ProcStats, SimStats};
