//! Per-processor and aggregate accounting of where simulated time goes.
//!
//! The paper's Fig. 3 splits execution into *computation* and *communication*
//! (local vs. remote); its §4 DLB adds *load-balancing overhead* (probes,
//! decision collectives, grid migration). Every clock advance in the
//! simulator is attributed to exactly one of these buckets.

use topology::SimTime;

/// What an interval of a processor's simulated time was spent on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Activity {
    /// Numerical solver work.
    Compute,
    /// Ghost-zone / sibling boundary exchange within a group.
    LocalComm,
    /// Boundary exchange or data motion across groups.
    RemoteComm,
    /// Load-balancer overhead: probes, decision collectives, migration.
    LoadBalance,
    /// Waiting at synchronization points.
    Wait,
}

/// Accumulated time per activity for one processor.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProcStats {
    pub compute: SimTime,
    pub local_comm: SimTime,
    pub remote_comm: SimTime,
    pub load_balance: SimTime,
    pub wait: SimTime,
}

impl ProcStats {
    /// Add `dt` to the bucket selected by `act`.
    pub fn charge(&mut self, act: Activity, dt: SimTime) {
        match act {
            Activity::Compute => self.compute += dt,
            Activity::LocalComm => self.local_comm += dt,
            Activity::RemoteComm => self.remote_comm += dt,
            Activity::LoadBalance => self.load_balance += dt,
            Activity::Wait => self.wait += dt,
        }
    }

    /// Total accounted time.
    pub fn total(&self) -> SimTime {
        self.compute + self.local_comm + self.remote_comm + self.load_balance + self.wait
    }

    /// Communication (local + remote), the quantity Fig. 3 plots.
    pub fn comm(&self) -> SimTime {
        self.local_comm + self.remote_comm
    }
}

/// Message counters, split by locality, plus failed-transfer counters
/// (attempted transfers that ended in a [`SimError`](crate::SimError)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MsgStats {
    pub local_msgs: u64,
    pub local_bytes: u64,
    pub remote_msgs: u64,
    pub remote_bytes: u64,
    pub failed_msgs: u64,
    pub failed_bytes: u64,
}

/// Whole-simulation statistics.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    pub procs: Vec<ProcStats>,
    pub msgs: MsgStats,
}

impl SimStats {
    pub fn new(nprocs: usize) -> Self {
        SimStats {
            procs: vec![ProcStats::default(); nprocs],
            msgs: MsgStats::default(),
        }
    }

    /// Maximum compute time over processors.
    pub fn max_compute(&self) -> SimTime {
        self.procs.iter().map(|p| p.compute).max().unwrap_or(SimTime::ZERO)
    }

    /// Mean compute seconds over processors.
    pub fn mean_compute_secs(&self) -> f64 {
        if self.procs.is_empty() {
            return 0.0;
        }
        self.procs.iter().map(|p| p.compute.as_secs_f64()).sum::<f64>() / self.procs.len() as f64
    }

    /// Maximum communication time over processors (Fig. 3's comm bar).
    pub fn max_comm(&self) -> SimTime {
        self.procs.iter().map(|p| p.comm()).max().unwrap_or(SimTime::ZERO)
    }

    /// Mean communication seconds over processors.
    pub fn mean_comm_secs(&self) -> f64 {
        if self.procs.is_empty() {
            return 0.0;
        }
        self.procs.iter().map(|p| p.comm().as_secs_f64()).sum::<f64>() / self.procs.len() as f64
    }

    /// Mean load-balance overhead seconds over processors.
    pub fn mean_lb_secs(&self) -> f64 {
        if self.procs.is_empty() {
            return 0.0;
        }
        self.procs
            .iter()
            .map(|p| p.load_balance.as_secs_f64())
            .sum::<f64>()
            / self.procs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_routes_to_buckets() {
        let mut s = ProcStats::default();
        s.charge(Activity::Compute, SimTime::from_secs(3));
        s.charge(Activity::LocalComm, SimTime::from_secs(1));
        s.charge(Activity::RemoteComm, SimTime::from_secs(2));
        s.charge(Activity::LoadBalance, SimTime::from_millis(500));
        s.charge(Activity::Wait, SimTime::from_millis(250));
        assert_eq!(s.compute, SimTime::from_secs(3));
        assert_eq!(s.comm(), SimTime::from_secs(3));
        assert_eq!(s.total(), SimTime::from_millis(6750));
    }

    #[test]
    fn aggregates() {
        let mut st = SimStats::new(2);
        st.procs[0].charge(Activity::Compute, SimTime::from_secs(5));
        st.procs[1].charge(Activity::Compute, SimTime::from_secs(3));
        st.procs[1].charge(Activity::RemoteComm, SimTime::from_secs(4));
        assert_eq!(st.max_compute(), SimTime::from_secs(5));
        assert_eq!(st.max_comm(), SimTime::from_secs(4));
        assert!((st.mean_compute_secs() - 4.0).abs() < 1e-12);
        assert!((st.mean_comm_secs() - 2.0).abs() < 1e-12);
    }
}
