//! Property-based tests for the virtual-time simulator: clocks never run
//! backwards, accounting is complete, messages respect link physics.

use proptest::prelude::*;
use simnet::{Activity, NetSim};
use topology::link::Link;
use topology::{ProcId, SimTime, SystemBuilder, TrafficModel};

#[derive(Clone, Debug)]
enum Op {
    Compute(u8, u16),
    Send(u8, u8, u32),
    Barrier,
    GroupReduce(bool),
    AllReduce,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 1u16..5000).prop_map(|(p, ms)| Op::Compute(p, ms)),
        (0u8..4, 0u8..4, 0u32..5_000_000).prop_map(|(a, b, n)| Op::Send(a, b, n)),
        Just(Op::Barrier),
        any::<bool>().prop_map(Op::GroupReduce),
        Just(Op::AllReduce),
    ]
}

fn sys() -> topology::DistributedSystem {
    let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
    let wan = Link::shared(
        "wan",
        SimTime::from_millis(5),
        2e7,
        TrafficModel::Bursty {
            low: 0.1,
            high: 0.8,
            p_on: 0.5,
            slot: SimTime::from_secs(1).into(),
            seed: 99,
        },
    );
    SystemBuilder::new()
        .group("A", 2, 1.0, intra.clone())
        .group("B", 2, 1.0, intra)
        .connect(0, 1, wan)
        .build()
}

fn apply(sim: &mut NetSim, op: &Op) {
    match *op {
        Op::Compute(p, ms) => sim.compute(ProcId(p as usize), ms as f64 * 1e-3),
        Op::Send(a, b, n) => {
            // fault-free system: sends cannot fail
            sim.send_auto(ProcId(a as usize), ProcId(b as usize), n as u64)
                .unwrap();
        }
        Op::Barrier => {
            sim.barrier_all();
        }
        Op::GroupReduce(b) => {
            sim.allreduce_group(topology::GroupId(b as usize), 64, Activity::LoadBalance)
                .unwrap();
        }
        Op::AllReduce => {
            sim.allreduce_all(64, Activity::LoadBalance).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn clocks_never_go_backwards(ops in prop::collection::vec(arb_op(), 0..40)) {
        let mut sim = NetSim::new(sys());
        let mut prev = [SimTime::ZERO; 4];
        for op in &ops {
            apply(&mut sim, op);
            for (p, prev_t) in prev.iter_mut().enumerate() {
                let now = sim.now(ProcId(p));
                prop_assert!(now >= *prev_t, "clock {} went backwards", p);
                *prev_t = now;
            }
        }
    }

    #[test]
    fn accounting_is_complete(ops in prop::collection::vec(arb_op(), 0..40)) {
        // every nanosecond of every clock is attributed to exactly one bucket
        let mut sim = NetSim::new(sys());
        for op in &ops {
            apply(&mut sim, op);
        }
        for p in 0..4 {
            let total = sim.stats().procs[p].total();
            prop_assert_eq!(total, sim.now(ProcId(p)), "proc {}", p);
        }
    }

    #[test]
    fn replay_is_deterministic(ops in prop::collection::vec(arb_op(), 0..30)) {
        let run = |ops: &[Op]| {
            let mut sim = NetSim::new(sys());
            for op in ops {
                apply(&mut sim, op);
            }
            (sim.elapsed(), sim.stats().msgs)
        };
        prop_assert_eq!(run(&ops), run(&ops));
    }

    #[test]
    fn elapsed_is_max_clock(ops in prop::collection::vec(arb_op(), 0..30)) {
        let mut sim = NetSim::new(sys());
        for op in &ops {
            apply(&mut sim, op);
        }
        let max = (0..4).map(|p| sim.now(ProcId(p))).max().unwrap();
        prop_assert_eq!(sim.elapsed(), max);
    }

    #[test]
    fn send_pays_at_least_latency_and_size(
        bytes in 0u64..50_000_000,
        from_a in any::<bool>(),
    ) {
        let mut sim = NetSim::new(sys());
        let (src, dst) = if from_a { (ProcId(0), ProcId(2)) } else { (ProcId(3), ProcId(1)) };
        sim.send_auto(src, dst, bytes).unwrap();
        let t = sim.now(dst);
        // latency 5ms; best-case bandwidth 2e7 B/s
        let floor = 0.005 + bytes as f64 / 2e7;
        prop_assert!(t.as_secs_f64() >= floor - 1e-9, "{} < {}", t.as_secs_f64(), floor);
        prop_assert_eq!(sim.stats().msgs.remote_bytes, bytes);
    }

    #[test]
    fn barrier_idempotent(ops in prop::collection::vec(arb_op(), 0..20)) {
        let mut sim = NetSim::new(sys());
        for op in &ops {
            apply(&mut sim, op);
        }
        let t1 = sim.barrier_all();
        let t2 = sim.barrier_all();
        prop_assert_eq!(t1, t2, "second barrier is free");
    }
}
