//! Tests for the broadcast/gather collective models and link-utilization
//! accounting.

use simnet::{Activity, NetSim};
use topology::link::Link;
use topology::{ProcId, SimTime, SystemBuilder};

fn sys2x2() -> topology::DistributedSystem {
    let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
    let wan = Link::dedicated("wan", SimTime::from_millis(10), 1e7);
    SystemBuilder::new()
        .group("A", 2, 1.0, intra.clone())
        .group("B", 2, 1.0, intra)
        .connect(0, 1, wan)
        .build()
}

#[test]
fn broadcast_synchronizes_everyone_and_pays_wan() {
    let mut sim = NetSim::new(sys2x2());
    sim.broadcast(ProcId(0), 1_000_000, Activity::LoadBalance).unwrap();
    let t = sim.now(ProcId(0));
    for p in 1..4 {
        assert_eq!(sim.now(ProcId(p)), t);
    }
    // must at least pay the WAN transfer: 10ms + 0.1s
    assert!(t >= SimTime::from_millis(110), "{t:?}");
    assert_eq!(sim.stats().msgs.remote_msgs, 1);
}

#[test]
fn broadcast_single_group_never_remote() {
    let intra = Link::dedicated("intra", SimTime::from_micros(10), 1e9);
    let sys = SystemBuilder::new().group("A", 4, 1.0, intra).build();
    let mut sim = NetSim::new(sys);
    sim.broadcast(ProcId(2), 1 << 20, Activity::LoadBalance).unwrap();
    assert_eq!(sim.stats().msgs.remote_msgs, 0);
    assert!(sim.elapsed() > SimTime::ZERO);
}

#[test]
fn gather_aggregates_group_payloads() {
    let mut sim = NetSim::new(sys2x2());
    sim.gather(ProcId(0), 500_000, Activity::LoadBalance).unwrap();
    // group B ships 2 * 500_000 bytes over the WAN
    assert_eq!(sim.stats().msgs.remote_bytes, 1_000_000);
    // everyone finishes at the same time
    let t = sim.now(ProcId(0));
    for p in 1..4 {
        assert_eq!(sim.now(ProcId(p)), t);
    }
}

#[test]
fn gather_costs_more_with_remote_root_data() {
    let mut a = NetSim::new(sys2x2());
    a.gather(ProcId(0), 1 << 20, Activity::LoadBalance).unwrap();
    let mut b = NetSim::new(sys2x2());
    b.allreduce_group(topology::GroupId(0), 1 << 20, Activity::LoadBalance)
        .unwrap();
    assert!(a.elapsed() > b.elapsed());
}

#[test]
fn link_utilization_tracks_busy_time() {
    let mut sim = NetSim::new(sys2x2());
    assert!(sim.inter_link_utilization().is_empty());
    // saturate the WAN for most of the run: 1MB at 1e7 B/s ≈ 0.1 s
    sim.send_auto(ProcId(0), ProcId(2), 1_000_000).unwrap();
    let rows = sim.inter_link_utilization();
    assert_eq!(rows.len(), 1);
    let (a, b, u) = rows[0];
    assert_eq!((a, b), (0, 1));
    assert!(u > 0.9, "WAN should be ~fully busy: {u}");
    // add idle compute: utilization fraction must drop
    sim.compute(ProcId(1), 10.0);
    let (_, _, u2) = sim.inter_link_utilization()[0];
    assert!(u2 < 0.05, "{u2}");
}
