//! Property-based tests for fields and inter-level transfer operators.

use proptest::prelude::*;
use samr_mesh::field::Field3;
use samr_mesh::interp::{prolong_constant, prolong_linear, restrict_average};
use samr_mesh::region::Region;
use samr_mesh::{ivec3, IVec3};

fn arb_cell(n: i64) -> impl Strategy<Value = IVec3> {
    (0..n, 0..n, 0..n).prop_map(|(x, y, z)| ivec3(x, y, z))
}

proptest! {
    #[test]
    fn set_then_get_roundtrips(
        cells in prop::collection::vec((arb_cell(6), -1e6f64..1e6), 1..50),
    ) {
        let mut f = Field3::zeros(Region::cube(6), 1);
        let mut last = std::collections::BTreeMap::new();
        for (c, v) in &cells {
            f.set(*c, *v);
            last.insert((c.x, c.y, c.z), *v);
        }
        for ((x, y, z), v) in last {
            prop_assert_eq!(f.get(ivec3(x, y, z)), v);
        }
    }

    #[test]
    fn zero_gradient_ghosts_only_touch_ghosts(
        cells in prop::collection::vec((arb_cell(4), -10f64..10.0), 1..30),
    ) {
        let mut f = Field3::zeros(Region::cube(4), 2);
        for (c, v) in &cells {
            f.set(*c, *v);
        }
        let before: Vec<f64> = Region::cube(4).iter_cells().map(|p| f.get(p)).collect();
        f.fill_ghosts_zero_gradient();
        let after: Vec<f64> = Region::cube(4).iter_cells().map(|p| f.get(p)).collect();
        prop_assert_eq!(before, after);
        // every ghost equals its clamped interior cell
        for p in f.storage_region().iter_cells() {
            if Region::cube(4).contains(p) {
                continue;
            }
            let clamped = p.max(IVec3::ZERO).min(IVec3::splat(3));
            prop_assert_eq!(f.get(p), f.get(clamped));
        }
    }

    #[test]
    fn restrict_conserves_mass(
        cells in prop::collection::vec((arb_cell(8), 0f64..10.0), 1..80),
    ) {
        let mut fine = Field3::zeros(Region::cube(8), 0);
        for (c, v) in &cells {
            fine.set(*c, *v);
        }
        let mut coarse = Field3::zeros(Region::cube(4), 0);
        restrict_average(&fine, &mut coarse, &Region::cube(4), 2);
        // coarse total x 8 = fine total (cell-volume weighting)
        prop_assert!((coarse.interior_sum() * 8.0 - fine.interior_sum()).abs() < 1e-9);
    }

    #[test]
    fn prolong_then_restrict_is_identity(
        cells in prop::collection::vec((arb_cell(4), -5f64..5.0), 1..30),
    ) {
        // piecewise-constant prolongation followed by averaging restores the
        // coarse data exactly
        let mut coarse = Field3::zeros(Region::cube(4), 0);
        for (c, v) in &cells {
            coarse.set(*c, *v);
        }
        let mut fine = Field3::zeros(Region::cube(8), 0);
        prolong_constant(&coarse, &mut fine, &Region::cube(8), 2);
        let mut back = Field3::zeros(Region::cube(4), 0);
        restrict_average(&fine, &mut back, &Region::cube(4), 2);
        for p in Region::cube(4).iter_cells() {
            prop_assert!((back.get(p) - coarse.get(p)).abs() < 1e-12);
        }
    }

    #[test]
    fn linear_prolongation_bounded_by_coarse_extremes(
        cells in prop::collection::vec((arb_cell(6), -5f64..5.0), 1..40),
    ) {
        // trilinear interpolation cannot overshoot the coarse min/max
        let mut coarse = Field3::zeros(Region::cube(6), 1);
        for (c, v) in &cells {
            coarse.set(*c, *v);
        }
        coarse.fill_ghosts_zero_gradient();
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        for p in coarse.storage_region().iter_cells() {
            lo = lo.min(coarse.get(p));
            hi = hi.max(coarse.get(p));
        }
        let mut fine = Field3::zeros(Region::cube(12), 0);
        prolong_linear(&coarse, &mut fine, &Region::cube(12), 2);
        for p in Region::cube(12).iter_cells() {
            let v = fine.get(p);
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "{v} not in [{lo}, {hi}]");
        }
    }

    #[test]
    fn copy_from_is_exact_on_window(
        vals in prop::collection::vec(-9f64..9.0, 27),
    ) {
        let mut src = Field3::zeros(Region::cube(3), 0);
        for (i, p) in Region::cube(3).iter_cells().enumerate() {
            src.set(p, vals[i]);
        }
        let mut dst = Field3::constant(Region::cube(3), 0, 99.0);
        let window = Region::cube(2); // partial window
        dst.copy_from(&src, &window);
        for p in Region::cube(3).iter_cells() {
            if window.contains(p) {
                prop_assert_eq!(dst.get(p), src.get(p));
            } else {
                prop_assert_eq!(dst.get(p), 99.0);
            }
        }
    }
}
