//! Property-based tests for the mesh substrate's core invariants.

use proptest::prelude::*;
use samr_mesh::cluster::{berger_rigoutsos, ClusterParams};
use samr_mesh::flag::FlagField;
use samr_mesh::hierarchy::GridHierarchy;
use samr_mesh::region::{region, Region};
use samr_mesh::{ivec3, IVec3};

fn arb_ivec(range: std::ops::Range<i64>) -> impl Strategy<Value = IVec3> {
    (range.clone(), range.clone(), range).prop_map(|(x, y, z)| ivec3(x, y, z))
}

/// Non-empty regions with corners in [-20, 20) and extents in [1, 12].
fn arb_region() -> impl Strategy<Value = Region> {
    (arb_ivec(-20..20), arb_ivec(1..13)).prop_map(|(lo, size)| Region::at(lo, size))
}

proptest! {
    #[test]
    fn intersection_is_subset_of_both(a in arb_region(), b in arb_region()) {
        let i = a.intersect(&b);
        prop_assert!(a.contains_region(&i));
        prop_assert!(b.contains_region(&i));
        // and symmetric
        prop_assert_eq!(i, b.intersect(&a));
    }

    #[test]
    fn intersection_cells_bounded(a in arb_region(), b in arb_region()) {
        let i = a.intersect(&b);
        prop_assert!(i.cells() <= a.cells().min(b.cells()));
    }

    #[test]
    fn hull_contains_both(a in arb_region(), b in arb_region()) {
        let h = a.hull(&b);
        prop_assert!(h.contains_region(&a));
        prop_assert!(h.contains_region(&b));
    }

    #[test]
    fn refine_coarsen_identity(a in arb_region(), r in 2i64..5) {
        prop_assert_eq!(a.refine(r).coarsen(r), a);
        // outer coarsening always covers
        let c = a.coarsen(r);
        prop_assert!(c.refine(r).contains_region(&a));
    }

    #[test]
    fn subtract_partitions_cells(a in arb_region(), b in arb_region()) {
        let parts = a.subtract(&b);
        let covered: i64 = parts.iter().map(|p| p.cells()).sum();
        prop_assert_eq!(covered, a.cells() - a.intersect(&b).cells());
        for (i, p) in parts.iter().enumerate() {
            prop_assert!(a.contains_region(p));
            prop_assert!(!p.overlaps(&b));
            for q in &parts[i + 1..] {
                prop_assert!(!p.overlaps(q));
            }
        }
    }

    #[test]
    fn bisect_conserves_and_balances(a in arb_region()) {
        prop_assume!(a.cells() >= 2);
        let (l, r) = a.bisect();
        prop_assert_eq!(l.cells() + r.cells(), a.cells());
        prop_assert!(!l.overlaps(&r));
        prop_assert_eq!(l.hull(&r), a);
        // halves within one plane of each other along the cut axis
        let axis = a.size().longest_axis();
        let plane = a.cells() / a.size()[axis];
        prop_assert!((l.cells() - r.cells()).abs() <= plane);
    }

    #[test]
    fn split_cells_is_exactly_requested_when_plane_aligned(
        a in arb_region(),
        frac in 1u32..8,
    ) {
        prop_assume!(a.cells() >= 8);
        let axis = a.size().longest_axis();
        prop_assume!(a.size()[axis] >= 2);
        let plane = a.cells() / a.size()[axis];
        let want = plane * (a.size()[axis] * frac as i64 / 8).max(1);
        let (s, rest) = a.split_cells(want, axis);
        prop_assert_eq!(s.cells() + rest.cells(), a.cells());
        // rounding is to the nearest whole plane
        prop_assert!((s.cells() - want).abs() <= plane / 2 + plane % 2);
    }

    #[test]
    fn grow_shrink_roundtrip(a in arb_region(), g in 1i64..4) {
        prop_assert_eq!(a.grow(g).grow(-g), a);
        prop_assert!(a.grow(g).contains_region(&a));
    }

    #[test]
    fn linear_index_is_bijection(a in arb_region()) {
        prop_assume!(a.cells() <= 1000);
        let mut seen = vec![false; a.cells() as usize];
        for c in a.iter_cells() {
            let i = a.linear_index(c);
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        prop_assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn surface_cells_at_most_total(a in arb_region()) {
        prop_assert!(a.surface_cells() <= a.cells());
        prop_assert!(a.surface_cells() >= 0);
    }
}

/// Random flag sets over a 16³ box.
fn arb_flags() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    prop::collection::vec((0i64..16, 0i64..16, 0i64..16), 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn clustering_covers_every_flag_once(cells in arb_flags()) {
        let mut flags = FlagField::new(Region::cube(16));
        for (x, y, z) in &cells {
            flags.set(ivec3(*x, *y, *z), true);
        }
        let params = ClusterParams::default();
        let boxes = berger_rigoutsos(&flags, &params);
        for p in Region::cube(16).iter_cells() {
            let n = boxes.iter().filter(|b| b.contains(p)).count();
            if flags.get(p) {
                prop_assert_eq!(n, 1, "flag at {:?} covered {} times", p, n);
            } else {
                prop_assert!(n <= 1, "cell {:?} covered {} times", p, n);
            }
        }
        for b in &boxes {
            prop_assert!(Region::cube(16).contains_region(b));
        }
    }

    #[test]
    fn clustering_efficiency_bound(cells in arb_flags()) {
        prop_assume!(!cells.is_empty());
        let mut flags = FlagField::new(Region::cube(16));
        for (x, y, z) in &cells {
            flags.set(ivec3(*x, *y, *z), true);
        }
        let params = ClusterParams {
            min_efficiency: 0.5,
            min_box_cells: 2,
            ..Default::default()
        };
        let boxes = berger_rigoutsos(&flags, &params);
        for b in &boxes {
            let eff = flags.count_in(b) as f64 / b.cells() as f64;
            prop_assert!(
                eff >= 0.5 || b.cells() <= 2,
                "box {:?} efficiency {}", b, eff
            );
        }
    }

    #[test]
    fn flag_buffering_monotone(cells in arb_flags(), buf in 0usize..3) {
        let mut flags = FlagField::new(Region::cube(16));
        for (x, y, z) in &cells {
            flags.set(ivec3(*x, *y, *z), true);
        }
        let before = flags.count();
        let mut buffered = flags.clone();
        buffered.buffer(buf);
        prop_assert!(buffered.count() >= before);
        // everything originally flagged stays flagged
        for p in Region::cube(16).iter_cells() {
            if flags.get(p) {
                prop_assert!(buffered.get(p));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn split_patch_preserves_invariants(
        want_frac in 0.1f64..0.9,
        child_lo in 0i64..20,
    ) {
        let mut h = GridHierarchy::new(region(ivec3(0, 0, 0), ivec3(32, 8, 8)), 2, 3, 1, 1);
        let root = h.insert_patch(0, region(ivec3(0, 0, 0), ivec3(32, 8, 8)), None, 0);
        let clo = child_lo.min(20);
        let _c = h.insert_patch(
            1,
            region(ivec3(2 * clo, 0, 0), ivec3(2 * clo + 8, 8, 8)),
            Some(root),
            0,
        );
        let want = ((32 * 8 * 8) as f64 * want_frac) as i64;
        let (a, b) = h.split_patch(root, want, 0);
        prop_assert!(h.check_invariants().is_ok(), "{:?}", h.check_invariants());
        prop_assert_eq!(h.patch(a).cells() + h.patch(b).cells(), 32 * 8 * 8);
    }
}
