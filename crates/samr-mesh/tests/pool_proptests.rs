//! Property-based tests of the field-buffer pool: checked-out buffers are
//! exclusively owned (no aliasing, contents undisturbed), every acquisition
//! is exact-length and zero-filled regardless of reuse, and the statistics
//! counters behave like monotone tallies.

use proptest::prelude::*;
use samr_mesh::pool::FieldPool;

/// One step of an interleaved acquire/release script. `Release` picks among
/// currently-held buffers by index (modulo the held count).
#[derive(Clone, Debug)]
enum Op {
    Acquire(usize),
    Release(usize),
    MarkSteady,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..4096).prop_map(Op::Acquire),
        any::<usize>().prop_map(Op::Release),
        Just(Op::MarkSteady),
    ]
}

proptest! {
    /// While a buffer is checked out, nothing the pool does disturbs it: a
    /// unique tag written at acquisition is intact at release, for any
    /// interleaving of acquires, releases, and the steady-state switch.
    /// Acquired buffers are always exact-length and zero-filled, whether
    /// they came from a free list or a fresh allocation.
    #[test]
    fn checked_out_buffers_are_exclusive_and_acquires_zero_filled(
        ops in prop::collection::vec(arb_op(), 1..60),
    ) {
        let pool = FieldPool::new();
        let mut held: Vec<(Vec<f64>, f64)> = Vec::new();
        let mut next_tag = 1.0f64;
        for op in ops {
            match op {
                Op::Acquire(len) => {
                    let mut buf = pool.acquire(len);
                    prop_assert_eq!(buf.len(), len);
                    prop_assert!(buf.iter().all(|&v| v == 0.0), "acquire not zero-filled");
                    for v in buf.iter_mut() {
                        *v = next_tag;
                    }
                    held.push((buf, next_tag));
                    next_tag += 1.0;
                }
                Op::Release(ix) => {
                    if held.is_empty() {
                        continue;
                    }
                    let (buf, tag) = held.swap_remove(ix % held.len());
                    prop_assert!(
                        buf.iter().all(|&v| v == tag),
                        "checked-out buffer was disturbed"
                    );
                    pool.release(buf);
                }
                Op::MarkSteady => pool.mark_steady(),
            }
        }
        for (buf, tag) in held {
            prop_assert!(buf.iter().all(|&v| v == tag));
            pool.release(buf);
        }
    }

    /// Reuse never crosses size classes downward: a buffer can only serve a
    /// later acquisition whose length fits its capacity, so acquisitions
    /// larger than every released capacity always miss.
    #[test]
    fn reuse_only_serves_fitting_lengths(
        small in 1usize..64,
        factor in 2usize..8,
    ) {
        let pool = FieldPool::new();
        let buf = pool.acquire(small);
        let cap = buf.capacity();
        pool.release(buf);
        // larger than the shelved capacity: must be a fresh allocation
        let big = pool.acquire(cap * factor);
        prop_assert_eq!(pool.stats().hits, 0);
        prop_assert_eq!(pool.stats().misses, 2);
        pool.release(big);
        // fits under the shelved capacity: must be a reuse
        let again = pool.acquire(small);
        prop_assert_eq!(again.len(), small);
        prop_assert_eq!(pool.stats().hits, 1);
        prop_assert_eq!(pool.stats().misses, 2);
        pool.release(again);
    }

    /// All four counters are monotone over any script, hits + misses equals
    /// the number of acquisitions, and steady misses never exceed misses.
    #[test]
    fn stats_are_monotone_tallies(
        ops in prop::collection::vec(arb_op(), 1..60),
    ) {
        let pool = FieldPool::new();
        let mut held: Vec<Vec<f64>> = Vec::new();
        let mut acquires = 0u64;
        let mut prev = pool.stats();
        for op in ops {
            match op {
                Op::Acquire(len) => {
                    held.push(pool.acquire(len));
                    acquires += 1;
                }
                Op::Release(ix) => {
                    if !held.is_empty() {
                        let buf = held.swap_remove(ix % held.len());
                        pool.release(buf);
                    }
                }
                Op::MarkSteady => pool.mark_steady(),
            }
            let s = pool.stats();
            prop_assert!(s.hits >= prev.hits);
            prop_assert!(s.misses >= prev.misses);
            prop_assert!(s.bytes_recycled >= prev.bytes_recycled);
            prop_assert!(s.steady_misses >= prev.steady_misses);
            prop_assert_eq!(s.hits + s.misses, acquires);
            prop_assert!(s.steady_misses <= s.misses);
            prev = s;
        }
    }
}

/// The pool is shared across solver threads through one handle; hammer it
/// from several threads and check the tallies still add up.
#[test]
fn concurrent_acquire_release_keeps_counts_coherent() {
    let pool = FieldPool::new();
    let threads = 4;
    let per_thread = 200u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let pool = pool.clone();
            s.spawn(move || {
                for i in 0..per_thread {
                    let len = 1 + ((t as u64 * 37 + i * 13) % 500) as usize;
                    let mut buf = pool.acquire(len);
                    assert_eq!(buf.len(), len);
                    assert!(buf.iter().all(|&v| v == 0.0));
                    buf[0] = t as f64;
                    pool.release(buf);
                }
            });
        }
    });
    let s = pool.stats();
    assert_eq!(s.hits + s.misses, threads as u64 * per_thread);
    assert!(s.hits > 0, "concurrent reuse never happened");
}
