//! Recycling allocator for field backing stores.
//!
//! SAMR regrids after *every* fine-level timestep, so a naive implementation
//! churns the heap with field-sized allocations forever: solver double
//! buffers, ghost-exchange slabs, regrid stashes and freshly inserted
//! patches all want a `Vec<f64>` of roughly recurring sizes. A [`FieldPool`]
//! keeps released backing stores on free-lists keyed by power-of-two
//! capacity class, so once the hierarchy has reached its working set a
//! timestep performs zero field-sized heap allocations (the
//! `steady_misses` counter proves it).
//!
//! Design notes:
//! - The pool is **sharded**: free-lists live in `NUM_SHARDS` independently
//!   locked shards, and every thread is pinned (round-robin at first touch)
//!   to one home shard. `acquire` and `release` touch only the home shard
//!   in the common case, so solve workers never serialize on a global lock;
//!   a shard is an array of shelves indexed by class *exponent* with a
//!   nonempty bitmask, making first-fit one `trailing_zeros`, not a map
//!   scan. When the home shard cannot serve, the request falls through a
//!   low-traffic **spill/steal tier**: the global shelf (where
//!   [`mark_steady`](FieldPool::mark_steady) provisions headroom), then the
//!   other shards. Only when no shelf anywhere can serve does the pool
//!   allocate.
//! - Buffers are keyed by *capacity class* (`len.next_power_of_two()`), not
//!   exact length: regrid keeps minting patches of novel sizes, and exact
//!   keying would miss forever. A request is served from its own class
//!   first, then first-fit from a few neighbouring larger classes
//!   (`BORROW_CLASSES`), and only as a last resort from an arbitrarily
//!   larger one — eager upward borrowing would let bursts of small
//!   ghost-slab requests raid the large patch-field shelves and force
//!   field-sized re-allocations. The served buffer is `resize`d down to the
//!   requested length (within capacity, so no reallocation).
//! - Every miss shelves a *spare* buffer of the same class alongside the
//!   one handed out. A miss marks a high-water mark of concurrent demand
//!   (solver scratch, ghost slabs and regrid stashes peak together), and
//!   that peak drifts as the mesh evolves — the spare gives later
//!   fluctuations headroom, amortizing misses to zero in steady state.
//! - [`mark_steady`](FieldPool::mark_steady) additionally provisions slack
//!   per class over the warm-up inventory — 50% by default, or a caller
//!   -supplied factor ([`mark_steady_with_headroom`]) sized to the measured
//!   mesh growth rate, since a hierarchy that keeps refining after warm-up
//!   needs inventory for its *final* working set, not its warm-up one.
//!   Provisioned spares are `Vec::with_capacity` reservations: they cost
//!   address space, not resident pages, until first use.
//! - Acquired buffers are always zero-filled, matching [`Field3::zeros`]
//!   semantics — pooled and fresh fields are bit-identical, which is what
//!   lets the optimized data path stay on the golden bit-identity tests.
//! - The handle is a cheap `Arc` clone and every operation is thread-safe,
//!   with exact monotone [`PoolStats`] kept in atomics. Which physical
//!   buffer a worker receives is scheduling-dependent, but since contents
//!   are always zeroed the *values* computed remain deterministic.
//! - Solver hot loops can resolve the home shard once via
//!   [`worker_handle`](FieldPool::worker_handle) and pass the resulting
//!   [`PoolHandle`] down through `step_patch`; both it and `FieldPool`
//!   implement [`FieldAlloc`], the trait the solvers are generic over.
//!
//! [`mark_steady_with_headroom`]: FieldPool::mark_steady_with_headroom
//! [`Field3::zeros`]: crate::field::Field3::zeros

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards (power of two).
const NUM_SHARDS: usize = 16;

/// One shelf per possible power-of-two class exponent.
const NUM_CLASSES: usize = usize::BITS as usize;

/// A request may be served first-fit from up to this many classes above its
/// own before falling through to the spill/steal tier; beyond that, upward
/// borrowing is a last resort (see module docs).
const BORROW_CLASSES: usize = 3;

/// Monotone counters describing pool behaviour over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Acquisitions served from a free-list (no heap allocation).
    pub hits: u64,
    /// Acquisitions that had to allocate a fresh backing store.
    pub misses: u64,
    /// Total bytes handed back out of the free-lists (8 × cells per hit).
    pub bytes_recycled: u64,
    /// Misses after [`FieldPool::mark_steady`] — the steady-state
    /// field-allocation count the zero-alloc gate asserts on.
    pub steady_misses: u64,
}

/// Breakdown of *where* hits were served from — the sharded fast path
/// versus the spill/steal fallback tiers — plus upward class borrowing.
/// Diagnostics only: which tier serves a given request depends on worker
/// scheduling, so unlike [`PoolStats`] these are not part of any
/// serialized result contract (deliberately no serde derives).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolDetail {
    /// Hits served by the caller's own home shard (the uncontended path).
    pub home_hits: u64,
    /// Hits served by the global spill tier (steady headroom and
    /// [`FieldPool::provision`]ed inventory live here).
    pub spill_hits: u64,
    /// Hits served by stealing from another thread's shard.
    pub steal_hits: u64,
    /// Hits served by a buffer of a *larger* class than requested
    /// (first-fit upward borrowing; see `BORROW_CLASSES`).
    pub borrow_hits: u64,
    /// Hits served out of each shard's shelves (home + stolen), indexed by
    /// shard. Sums to `home_hits + steal_hits`; spill-tier hits are global
    /// and belong to no shard.
    pub shard_hits: Vec<u64>,
}

/// Which tier ended up serving a reuse request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ServeTier {
    Home,
    Spill,
    Steal(usize),
}

/// Free-lists indexed by class exponent, with a nonempty bitmask so
/// first-fit in a class range is a couple of bit ops.
#[derive(Debug)]
struct Shelves {
    lists: [Vec<Vec<f64>>; NUM_CLASSES],
    nonempty: u64,
}

impl Shelves {
    fn new() -> Self {
        Shelves {
            lists: std::array::from_fn(|_| Vec::new()),
            nonempty: 0,
        }
    }

    fn push(&mut self, exp: usize, buf: Vec<f64>) {
        self.lists[exp].push(buf);
        self.nonempty |= 1u64 << exp;
    }

    /// Pop from the smallest nonempty class in `lo..=hi` (LIFO within a
    /// class, so the hottest buffer comes back first).
    fn pop_in(&mut self, lo: usize, hi: usize) -> Option<Vec<f64>> {
        let mut mask = self.nonempty >> lo << lo;
        if hi < NUM_CLASSES - 1 {
            mask &= (1u64 << (hi + 1)) - 1;
        }
        if mask == 0 {
            return None;
        }
        let exp = mask.trailing_zeros() as usize;
        let buf = self.lists[exp].pop();
        if self.lists[exp].is_empty() {
            self.nonempty &= !(1u64 << exp);
        }
        buf
    }

    fn len(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }
}

#[derive(Debug)]
struct PoolInner {
    /// Per-thread-home shards: the uncontended fast path.
    shards: [Mutex<Shelves>; NUM_SHARDS],
    /// Spill/steal tier: headroom provisioned at the steady switch lands
    /// here, and any shard may draw from it when its own shelves run dry.
    global: Mutex<Shelves>,
    /// Buffers minted per class exponent (by misses), sizing the headroom
    /// provisioned when [`FieldPool::mark_steady`] ends warm-up.
    minted: [AtomicU64; NUM_CLASSES],
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_recycled: AtomicU64,
    steady: AtomicBool,
    steady_misses: AtomicU64,
    /// Serving-tier breakdown (see [`PoolDetail`]).
    home_hits: AtomicU64,
    spill_hits: AtomicU64,
    steal_hits: AtomicU64,
    borrow_hits: AtomicU64,
    shard_hits: [AtomicU64; NUM_SHARDS],
}

impl Default for PoolInner {
    fn default() -> Self {
        PoolInner {
            shards: std::array::from_fn(|_| Mutex::new(Shelves::new())),
            global: Mutex::new(Shelves::new()),
            minted: std::array::from_fn(|_| AtomicU64::new(0)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes_recycled: AtomicU64::new(0),
            steady: AtomicBool::new(false),
            steady_misses: AtomicU64::new(0),
            home_hits: AtomicU64::new(0),
            spill_hits: AtomicU64::new(0),
            steal_hits: AtomicU64::new(0),
            borrow_hits: AtomicU64::new(0),
            shard_hits: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A shared, thread-safe recycling pool of `Vec<f64>` field backing stores.
#[derive(Clone, Debug, Default)]
pub struct FieldPool {
    inner: Arc<PoolInner>,
}

/// The allocation interface the solvers are generic over: both the pool
/// itself and a shard-resolved [`PoolHandle`] satisfy it, so library code
/// written against `&FieldPool` keeps working while the driver's solve
/// workers pass pre-resolved handles.
pub trait FieldAlloc {
    /// Hand out a zero-filled buffer of exactly `len` elements.
    fn acquire(&self, len: usize) -> Vec<f64>;
    /// Hand out a buffer of exactly `len` elements whose contents are
    /// unspecified (a reused buffer keeps whatever values its previous life
    /// left behind). Only for callers that overwrite every element before
    /// any read — skipping the zero fill is the entire point.
    fn acquire_unfilled(&self, len: usize) -> Vec<f64> {
        self.acquire(len)
    }
    /// Return a backing store for reuse.
    fn release(&self, buf: Vec<f64>);
}

/// Power-of-two class exponent a buffer of length `len` is requested from.
fn class_exp(len: usize) -> usize {
    len.next_power_of_two().max(1).trailing_zeros() as usize
}

/// Class exponent a buffer of capacity `cap` is shelved under: the largest
/// power of two ≤ `cap`, so serving a request from `exp..` never
/// reallocates on the resize down to the requested length.
fn shelf_exp(cap: usize) -> usize {
    debug_assert!(cap > 0);
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

/// Home shard of the calling thread: assigned round-robin at first touch,
/// cached in a thread-local. Shard identity only affects which physical
/// buffer a request receives, never the values computed (buffers are
/// zeroed), so the round-robin order is free to be scheduling-dependent.
fn home_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HOME: usize = NEXT.fetch_add(1, Ordering::Relaxed) & (NUM_SHARDS - 1);
    }
    HOME.with(|&h| h)
}

impl FieldPool {
    /// A fresh, empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle with the calling thread's home shard resolved once, for
    /// solver hot loops that acquire and release many buffers per patch.
    pub fn worker_handle(&self) -> PoolHandle {
        PoolHandle {
            pool: self.clone(),
            shard: home_shard(),
        }
    }

    fn try_reuse(&self, shard: usize, lo: usize, hi: usize) -> Option<(Vec<f64>, ServeTier)> {
        if let Some(buf) = self.inner.shards[shard].lock().unwrap().pop_in(lo, hi) {
            return Some((buf, ServeTier::Home));
        }
        if let Some(buf) = self.inner.global.lock().unwrap().pop_in(lo, hi) {
            return Some((buf, ServeTier::Spill));
        }
        // steal sweep: every other shard, briefly locked
        for k in 1..NUM_SHARDS {
            let other = (shard + k) & (NUM_SHARDS - 1);
            if let Some(buf) = self.inner.shards[other].lock().unwrap().pop_in(lo, hi) {
                return Some((buf, ServeTier::Steal(other)));
            }
        }
        None
    }

    fn acquire_from(&self, shard: usize, len: usize) -> Vec<f64> {
        self.acquire_from_with(shard, len, true)
    }

    fn acquire_from_with(&self, shard: usize, len: usize, zero: bool) -> Vec<f64> {
        let exp = class_exp(len);
        let near = (exp + BORROW_CLASSES).min(NUM_CLASSES - 1);
        let reused = self
            .try_reuse(shard, exp, near)
            .or_else(|| self.try_reuse(shard, exp, NUM_CLASSES - 1));
        match reused {
            Some((mut buf, tier)) => {
                debug_assert!(buf.capacity() >= len);
                if zero {
                    buf.clear();
                }
                // without `zero`, prior contents stay in place and only the
                // tail past the reused length is (necessarily) initialized
                buf.resize(len, 0.0);
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                self.inner
                    .bytes_recycled
                    .fetch_add(8 * len as u64, Ordering::Relaxed);
                match tier {
                    ServeTier::Home => {
                        self.inner.home_hits.fetch_add(1, Ordering::Relaxed);
                        self.inner.shard_hits[shard].fetch_add(1, Ordering::Relaxed);
                    }
                    ServeTier::Spill => {
                        self.inner.spill_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    ServeTier::Steal(other) => {
                        self.inner.steal_hits.fetch_add(1, Ordering::Relaxed);
                        self.inner.shard_hits[other].fetch_add(1, Ordering::Relaxed);
                    }
                }
                if shelf_exp(buf.capacity()) > exp {
                    self.inner.borrow_hits.fetch_add(1, Ordering::Relaxed);
                }
                buf
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                if self.inner.steady.load(Ordering::Relaxed) {
                    self.inner.steady_misses.fetch_add(1, Ordering::Relaxed);
                }
                // allocate the full class up front so the buffer can serve
                // any same-class request on its next life
                let cap = 1usize << exp;
                let mut buf = Vec::with_capacity(cap);
                buf.resize(len, 0.0);
                // A miss is a high-water mark: peak concurrent demand for
                // this class just outgrew inventory, and peak demand drifts
                // as the mesh evolves. Shelve a spare alongside so the next
                // fluctuation finds headroom instead of allocating again.
                self.inner.shards[shard]
                    .lock()
                    .unwrap()
                    .push(exp, Vec::with_capacity(cap));
                self.inner.minted[exp].fetch_add(2, Ordering::Relaxed);
                buf
            }
        }
    }

    fn release_to(&self, shard: usize, buf: Vec<f64>) {
        if buf.capacity() == 0 {
            return;
        }
        let exp = shelf_exp(buf.capacity());
        self.inner.shards[shard].lock().unwrap().push(exp, buf);
    }

    /// Hand out a zero-filled buffer of exactly `len` elements, reusing a
    /// pooled backing store when one of sufficient capacity exists.
    pub fn acquire(&self, len: usize) -> Vec<f64> {
        self.acquire_from(home_shard(), len)
    }

    /// Return a backing store to the pool for reuse.
    pub fn release(&self, buf: Vec<f64>) {
        self.release_to(home_shard(), buf);
    }

    /// Declare warm-up over with the default 50% headroom; see
    /// [`mark_steady_with_headroom`](Self::mark_steady_with_headroom).
    pub fn mark_steady(&self) {
        self.mark_steady_with_headroom(0.5);
    }

    /// Declare warm-up over: from now on every miss increments
    /// `steady_misses`, the count the zero-alloc verify gate asserts is 0.
    ///
    /// The first call (only — the transition is idempotent) also provisions
    /// `factor` headroom per class over everything minted during warm-up,
    /// into the global spill tier. Peak concurrent demand drifts with the
    /// evolving mesh and with worker scheduling, so inventory merely
    /// *equal* to the warm-up peak would still miss on the next
    /// fluctuation. Callers whose mesh keeps growing after warm-up (the
    /// driver measures this) pass a growth-scaled factor; the spares are
    /// capacity-only reservations until first use.
    pub fn mark_steady_with_headroom(&self, factor: f64) {
        if self.inner.steady.swap(true, Ordering::Relaxed) {
            return;
        }
        let factor = factor.max(0.0);
        let mut global = self.inner.global.lock().unwrap();
        for (exp, minted) in self.inner.minted.iter().enumerate() {
            let n = minted.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            let extra = (n as f64 * factor).ceil() as u64 + 1;
            for _ in 0..extra {
                global.push(exp, Vec::with_capacity(1usize << exp));
            }
        }
    }

    /// Shelve `count` spare buffers able to serve `len`-element requests
    /// into the global spill tier, ahead of demand. Unlike a miss this is a
    /// *planned* inventory extension: drivers call it when they observe the
    /// working set grow (e.g. a regrid that enlarged the hierarchy), so the
    /// zero-alloc steady state survives mesh growth no warm-up projection
    /// could have foreseen. The spares are `Vec::with_capacity`
    /// reservations — address space, not resident pages, until first use.
    pub fn provision(&self, len: usize, count: u64) {
        if len == 0 || count == 0 {
            return;
        }
        let exp = class_exp(len);
        let mut global = self.inner.global.lock().unwrap();
        for _ in 0..count {
            global.push(exp, Vec::with_capacity(1usize << exp));
        }
    }

    /// Whether [`mark_steady`](Self::mark_steady) has been called.
    pub fn is_steady(&self) -> bool {
        self.inner.steady.load(Ordering::Relaxed)
    }

    /// Snapshot of the monotone counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            bytes_recycled: self.inner.bytes_recycled.load(Ordering::Relaxed),
            steady_misses: self.inner.steady_misses.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the serving-tier breakdown. The invariant
    /// `home_hits + spill_hits + steal_hits == stats().hits` holds on any
    /// quiescent pool; which tier served a request is scheduling-dependent,
    /// so these feed diagnostics (stat blocks, hotpath JSON), never
    /// fingerprints.
    pub fn detail(&self) -> PoolDetail {
        PoolDetail {
            home_hits: self.inner.home_hits.load(Ordering::Relaxed),
            spill_hits: self.inner.spill_hits.load(Ordering::Relaxed),
            steal_hits: self.inner.steal_hits.load(Ordering::Relaxed),
            borrow_hits: self.inner.borrow_hits.load(Ordering::Relaxed),
            shard_hits: self
                .inner
                .shard_hits
                .iter()
                .map(|h| h.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Number of buffers currently shelved (for tests and diagnostics).
    pub fn idle_buffers(&self) -> usize {
        let shards: usize = self
            .inner
            .shards
            .iter()
            .map(|s| s.lock().unwrap().len())
            .sum();
        shards + self.inner.global.lock().unwrap().len()
    }
}

impl FieldAlloc for FieldPool {
    fn acquire(&self, len: usize) -> Vec<f64> {
        FieldPool::acquire(self, len)
    }
    fn acquire_unfilled(&self, len: usize) -> Vec<f64> {
        self.acquire_from_with(home_shard(), len, false)
    }
    fn release(&self, buf: Vec<f64>) {
        FieldPool::release(self, buf);
    }
}

/// A [`FieldPool`] handle with the home shard resolved once. Cheap to
/// clone; create one per solve worker ([`FieldPool::worker_handle`]) and
/// thread it through the patch kernels so the per-buffer fast path skips
/// even the thread-local lookup.
#[derive(Clone, Debug)]
pub struct PoolHandle {
    pool: FieldPool,
    shard: usize,
}

impl PoolHandle {
    /// The underlying pool.
    pub fn pool(&self) -> &FieldPool {
        &self.pool
    }
}

impl FieldAlloc for PoolHandle {
    fn acquire(&self, len: usize) -> Vec<f64> {
        self.pool.acquire_from(self.shard, len)
    }
    fn acquire_unfilled(&self, len: usize) -> Vec<f64> {
        self.pool.acquire_from_with(self.shard, len, false)
    }
    fn release(&self, buf: Vec<f64>) {
        self.pool.release_to(self.shard, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_is_zero_filled_and_exact_length() {
        let pool = FieldPool::new();
        let mut b = pool.acquire(100);
        assert_eq!(b.len(), 100);
        assert!(b.iter().all(|&v| v == 0.0));
        b.fill(7.0);
        pool.release(b);
        // reuse must re-zero
        let b2 = pool.acquire(60);
        assert_eq!(b2.len(), 60);
        assert!(b2.iter().all(|&v| v == 0.0));
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn same_class_reuses_larger_class_serves_smaller() {
        let pool = FieldPool::new();
        pool.release(pool.acquire(1000)); // class 1024
        // 1000 and 1024 share a class; 600 is class 1024 too
        let b = pool.acquire(600);
        assert_eq!(pool.stats().hits, 1);
        pool.release(b);
        // a smaller class (512) is served first-fit from the larger shelf
        let b = pool.acquire(300);
        assert_eq!(b.len(), 300);
        assert_eq!(pool.stats().hits, 2);
        pool.release(b);
        // a larger class (2048) cannot be served by a 1024-capacity buffer
        let b = pool.acquire(2000);
        assert_eq!(pool.stats().misses, 2);
        assert_eq!(b.len(), 2000);
    }

    #[test]
    fn distant_class_still_serves_as_last_resort() {
        let pool = FieldPool::new();
        // a huge buffer far above the near-borrow window
        pool.release(pool.acquire(1 << 16));
        pool.release(pool.acquire(1 << 16)); // consumes the minted spare
        assert_eq!(pool.idle_buffers(), 2);
        // a tiny request: nothing nearby, but inventory exists — must not miss
        let b = pool.acquire(8);
        assert_eq!(b.len(), 8);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn steady_misses_only_count_after_mark() {
        let pool = FieldPool::new();
        let a = pool.acquire(64);
        assert_eq!(pool.stats().steady_misses, 0);
        pool.release(a);
        pool.mark_steady();
        assert!(pool.is_steady());
        let _hit = pool.acquire(64);
        assert_eq!(pool.stats().steady_misses, 0, "hits never count");
        let _miss = pool.acquire(1 << 20);
        let s = pool.stats();
        assert_eq!(s.steady_misses, 1);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn mark_steady_provisions_headroom_exactly_once() {
        let pool = FieldPool::new();
        pool.release(pool.acquire(100)); // miss: mints the buffer + a spare
        let idle_before = pool.idle_buffers();
        assert_eq!(idle_before, 2);
        pool.mark_steady();
        let idle_after = pool.idle_buffers();
        assert!(idle_after > idle_before, "no headroom was provisioned");
        pool.mark_steady(); // idempotent: a second call adds nothing
        assert_eq!(pool.idle_buffers(), idle_after);
        pool.mark_steady_with_headroom(10.0); // still idempotent
        assert_eq!(pool.idle_buffers(), idle_after);
        // the provisioned slack serves steady demand beyond the warm-up
        // peak without a single steady miss
        let bufs: Vec<_> = (0..idle_after).map(|_| pool.acquire(100)).collect();
        assert_eq!(pool.stats().steady_misses, 0);
        for b in bufs {
            pool.release(b);
        }
    }

    #[test]
    fn headroom_factor_scales_provisioning() {
        let idle_with = |factor: f64| {
            let pool = FieldPool::new();
            pool.release(pool.acquire(100));
            pool.mark_steady_with_headroom(factor);
            pool.idle_buffers()
        };
        assert!(idle_with(4.0) > idle_with(0.5));
    }

    #[test]
    fn provision_extends_inventory_without_counting_misses() {
        let pool = FieldPool::new();
        pool.mark_steady();
        pool.provision(100, 3);
        assert_eq!(pool.idle_buffers(), 3);
        // provisioned spares serve steady demand with zero steady misses
        let bufs: Vec<_> = (0..3).map(|_| pool.acquire(100)).collect();
        let s = pool.stats();
        assert_eq!(s.steady_misses, 0);
        assert_eq!(s.hits, 3);
        for b in bufs {
            pool.release(b);
        }
        // degenerate inputs are no-ops
        pool.provision(0, 5);
        pool.provision(64, 0);
        assert_eq!(pool.idle_buffers(), 3);
    }

    #[test]
    fn a_miss_shelves_a_spare_of_the_same_class() {
        let pool = FieldPool::new();
        // first acquisition misses and leaves one spare behind ...
        let a = pool.acquire(64);
        assert_eq!(pool.idle_buffers(), 1);
        // ... so a second concurrent checkout of the class is a hit
        let b = pool.acquire(64);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(pool.idle_buffers(), 0);
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.idle_buffers(), 2);
    }

    #[test]
    fn clone_shares_the_same_pool() {
        let pool = FieldPool::new();
        let handle = pool.clone();
        handle.release(handle.acquire(32));
        let b = pool.acquire(32);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(handle.stats().hits, 1);
        drop(b);
    }

    #[test]
    fn worker_handle_shares_inventory_and_stats() {
        let pool = FieldPool::new();
        let h = pool.worker_handle();
        h.release(h.acquire(128));
        // the plain pool sees the handle's shelved buffer (same shard on
        // this thread) and its stats
        let b = pool.acquire(128);
        assert_eq!(b.len(), 128);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(h.pool().stats().hits, 1);
        h.release(b);
    }

    #[test]
    fn buffers_released_on_another_thread_are_stolen_not_missed() {
        let pool = FieldPool::new();
        // fill several distinct home shards from distinct threads
        for _ in 0..3 {
            let p = pool.clone();
            std::thread::spawn(move || {
                p.release(p.acquire(4096));
            })
            .join()
            .unwrap();
        }
        let before = pool.stats().misses;
        // this thread's shard may be empty; the steal sweep must find one
        let b = pool.acquire(4000);
        assert_eq!(b.len(), 4000);
        assert_eq!(pool.stats().misses, before, "steal path missed");
    }

    #[test]
    fn detail_attributes_hits_to_their_serving_tier() {
        let pool = FieldPool::new();
        // home-shard hit: released and re-acquired on this thread
        pool.release(pool.acquire(64));
        let _a = pool.acquire(64);
        let d = pool.detail();
        assert_eq!(d.home_hits, 1);
        assert_eq!((d.spill_hits, d.steal_hits, d.borrow_hits), (0, 0, 0));
        assert_eq!(d.shard_hits.iter().sum::<u64>(), 1);
        // spill-tier hit: provisioned inventory lives on the global shelf
        pool.provision(1 << 12, 1);
        let _b = pool.acquire(1 << 12);
        let d = pool.detail();
        assert_eq!(d.spill_hits, 1);
        // steal hit: inventory shelved by a different home shard
        let p = pool.clone();
        std::thread::spawn(move || p.release(p.acquire(1 << 14)))
            .join()
            .unwrap();
        let d0 = pool.detail();
        let _c = pool.acquire(1 << 14);
        let d = pool.detail();
        // the releasing thread may share this thread's shard (round-robin),
        // so the hit lands as either home or steal — but never spill
        assert_eq!(d.home_hits + d.steal_hits, d0.home_hits + d0.steal_hits + 1);
        let s = pool.stats();
        assert_eq!(d.home_hits + d.spill_hits + d.steal_hits, s.hits);
        assert_eq!(d.shard_hits.iter().sum::<u64>(), d.home_hits + d.steal_hits);
    }

    #[test]
    fn borrow_hits_count_service_from_a_larger_class() {
        let pool = FieldPool::new();
        pool.release(pool.acquire(1000)); // shelves class 1024
        let _b = pool.acquire(300); // class 512 request served by the 1024 buffer
        let d = pool.detail();
        assert_eq!(d.borrow_hits, 1);
        // same-class service is not a borrow
        let pool2 = FieldPool::new();
        pool2.release(pool2.acquire(1000));
        let _c = pool2.acquire(600);
        assert_eq!(pool2.detail().borrow_hits, 0);
    }

    #[test]
    fn stats_are_monotone() {
        let pool = FieldPool::new();
        let mut prev = pool.stats();
        for i in 1..50usize {
            let b = pool.acquire((i * 37) % 500 + 1);
            if i % 3 != 0 {
                pool.release(b);
            }
            let s = pool.stats();
            assert!(s.hits >= prev.hits);
            assert!(s.misses >= prev.misses);
            assert!(s.bytes_recycled >= prev.bytes_recycled);
            assert!(s.steady_misses >= prev.steady_misses);
            assert_eq!(s.hits + s.misses, i as u64);
            prev = s;
        }
    }
}
