//! Recycling allocator for field backing stores.
//!
//! SAMR regrids after *every* fine-level timestep, so a naive implementation
//! churns the heap with field-sized allocations forever: solver double
//! buffers, ghost-exchange slabs, regrid stashes and freshly inserted
//! patches all want a `Vec<f64>` of roughly recurring sizes. A [`FieldPool`]
//! keeps released backing stores on free-lists keyed by power-of-two
//! capacity class, so once the hierarchy has reached its working set a
//! timestep performs zero field-sized heap allocations (the
//! `steady_misses` counter proves it).
//!
//! Design notes:
//! - Buffers are keyed by *capacity class* (`len.next_power_of_two()`), not
//!   exact length: regrid keeps minting patches of novel sizes, and exact
//!   keying would miss forever. A request is served from its own class or,
//!   first-fit, from any larger class; the buffer is then `resize`d down to
//!   the requested length (within capacity, so no reallocation).
//! - Every miss shelves a *spare* buffer of the same class alongside the
//!   one handed out. A miss marks a high-water mark of concurrent demand
//!   (solver scratch, ghost slabs and regrid stashes peak together), and
//!   that peak drifts as the mesh evolves — doubling the class at each
//!   high-water mark gives later fluctuations headroom, amortizing misses
//!   to zero in steady state.
//! - [`mark_steady`](FieldPool::mark_steady) additionally provisions 50%
//!   slack per class over the warm-up inventory, absorbing the residual
//!   peak-demand drift (mesh motion, worker scheduling) that spare minting
//!   alone cannot bound.
//! - Acquired buffers are always zero-filled, matching [`Field3::zeros`]
//!   semantics — pooled and fresh fields are bit-identical, which is what
//!   lets the optimized data path stay on the golden bit-identity tests.
//! - The handle is a cheap `Arc` clone and every operation is thread-safe
//!   (a `Mutex` around the shelves, atomics for the counters), so the pool
//!   can be used from `for_each_task_parallel` workers. Which physical
//!   buffer a worker receives is scheduling-dependent, but since contents
//!   are always zeroed the *values* computed remain deterministic.
//!
//! [`Field3::zeros`]: crate::field::Field3::zeros

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotone counters describing pool behaviour over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Acquisitions served from a free-list (no heap allocation).
    pub hits: u64,
    /// Acquisitions that had to allocate a fresh backing store.
    pub misses: u64,
    /// Total bytes handed back out of the free-lists (8 × cells per hit).
    pub bytes_recycled: u64,
    /// Misses after [`FieldPool::mark_steady`] — the steady-state
    /// field-allocation count the zero-alloc gate asserts on.
    pub steady_misses: u64,
}

#[derive(Debug, Default)]
struct PoolInner {
    /// Free-lists keyed by power-of-two capacity class. Every stored buffer
    /// has `capacity() >= class`, so serving a request from `class..` never
    /// reallocates on the resize down to the requested length.
    shelves: Mutex<BTreeMap<usize, Vec<Vec<f64>>>>,
    /// Buffers minted per class (by misses), sizing the headroom
    /// provisioned when [`FieldPool::mark_steady`] ends warm-up.
    minted: Mutex<BTreeMap<usize, usize>>,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_recycled: AtomicU64,
    steady: AtomicBool,
    steady_misses: AtomicU64,
}

/// A shared, thread-safe recycling pool of `Vec<f64>` field backing stores.
#[derive(Clone, Debug, Default)]
pub struct FieldPool {
    inner: Arc<PoolInner>,
}

/// Power-of-two capacity class a buffer of length `len` is requested from.
fn class_of(len: usize) -> usize {
    len.next_power_of_two().max(1)
}

/// Class a buffer of capacity `cap` is shelved under: the largest
/// power of two ≤ `cap`, so lookups from `class..` only ever see buffers
/// whose capacity covers the class.
fn shelf_class(cap: usize) -> usize {
    debug_assert!(cap > 0);
    1 << (usize::BITS - 1 - cap.leading_zeros())
}

impl FieldPool {
    /// A fresh, empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hand out a zero-filled buffer of exactly `len` elements, reusing a
    /// pooled backing store when one of sufficient capacity exists.
    pub fn acquire(&self, len: usize) -> Vec<f64> {
        let class = class_of(len);
        let reused = {
            let mut shelves = self.inner.shelves.lock().unwrap();
            let key = shelves
                .range(class..)
                .find(|(_, list)| !list.is_empty())
                .map(|(&k, _)| k);
            key.and_then(|k| shelves.get_mut(&k).and_then(Vec::pop))
        };
        match reused {
            Some(mut buf) => {
                debug_assert!(buf.capacity() >= len);
                buf.clear();
                buf.resize(len, 0.0);
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                self.inner
                    .bytes_recycled
                    .fetch_add(8 * len as u64, Ordering::Relaxed);
                buf
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                if self.inner.steady.load(Ordering::Relaxed) {
                    self.inner.steady_misses.fetch_add(1, Ordering::Relaxed);
                }
                // allocate the full class up front so the buffer can serve
                // any same-class request on its next life
                let mut buf = Vec::with_capacity(class);
                buf.resize(len, 0.0);
                // A miss is a high-water mark: peak concurrent demand for
                // this class just outgrew inventory, and peak demand drifts
                // as the mesh evolves. Shelve a spare alongside so the next
                // fluctuation finds headroom instead of allocating again —
                // per-class doubling that amortizes steady-state misses to
                // zero the same way `Vec` growth amortizes pushes.
                self.inner
                    .shelves
                    .lock()
                    .unwrap()
                    .entry(class)
                    .or_default()
                    .push(Vec::with_capacity(class));
                *self.inner.minted.lock().unwrap().entry(class).or_insert(0) += 2;
                buf
            }
        }
    }

    /// Return a backing store to the pool for reuse.
    pub fn release(&self, buf: Vec<f64>) {
        if buf.capacity() == 0 {
            return;
        }
        let class = shelf_class(buf.capacity());
        let mut shelves = self.inner.shelves.lock().unwrap();
        shelves.entry(class).or_default().push(buf);
    }

    /// Declare warm-up over: from now on every miss increments
    /// `steady_misses`, the count the zero-alloc verify gate asserts is 0.
    ///
    /// The first call (only — the transition is idempotent) also provisions
    /// 50% headroom per class over everything minted during warm-up. Peak
    /// concurrent demand drifts with the evolving mesh and with worker
    /// scheduling, so inventory merely *equal* to the warm-up peak would
    /// still miss on the next fluctuation; the slack is what lets steady
    /// steps run allocation-free.
    pub fn mark_steady(&self) {
        if self.inner.steady.swap(true, Ordering::Relaxed) {
            return;
        }
        let minted = self.inner.minted.lock().unwrap().clone();
        let mut shelves = self.inner.shelves.lock().unwrap();
        for (&class, &n) in &minted {
            let shelf = shelves.entry(class).or_default();
            for _ in 0..(n / 2 + 1) {
                shelf.push(Vec::with_capacity(class));
            }
        }
    }

    /// Whether [`mark_steady`](Self::mark_steady) has been called.
    pub fn is_steady(&self) -> bool {
        self.inner.steady.load(Ordering::Relaxed)
    }

    /// Snapshot of the monotone counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            bytes_recycled: self.inner.bytes_recycled.load(Ordering::Relaxed),
            steady_misses: self.inner.steady_misses.load(Ordering::Relaxed),
        }
    }

    /// Number of buffers currently shelved (for tests and diagnostics).
    pub fn idle_buffers(&self) -> usize {
        self.inner
            .shelves
            .lock()
            .unwrap()
            .values()
            .map(Vec::len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_is_zero_filled_and_exact_length() {
        let pool = FieldPool::new();
        let mut b = pool.acquire(100);
        assert_eq!(b.len(), 100);
        assert!(b.iter().all(|&v| v == 0.0));
        b.fill(7.0);
        pool.release(b);
        // reuse must re-zero
        let b2 = pool.acquire(60);
        assert_eq!(b2.len(), 60);
        assert!(b2.iter().all(|&v| v == 0.0));
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn same_class_reuses_larger_class_serves_smaller() {
        let pool = FieldPool::new();
        pool.release(pool.acquire(1000)); // class 1024
        // 1000 and 1024 share a class; 600 is class 1024 too
        let b = pool.acquire(600);
        assert_eq!(pool.stats().hits, 1);
        pool.release(b);
        // a smaller class (512) is served first-fit from the larger shelf
        let b = pool.acquire(300);
        assert_eq!(b.len(), 300);
        assert_eq!(pool.stats().hits, 2);
        pool.release(b);
        // a larger class (2048) cannot be served by a 1024-capacity buffer
        let b = pool.acquire(2000);
        assert_eq!(pool.stats().misses, 2);
        assert_eq!(b.len(), 2000);
    }

    #[test]
    fn steady_misses_only_count_after_mark() {
        let pool = FieldPool::new();
        let a = pool.acquire(64);
        assert_eq!(pool.stats().steady_misses, 0);
        pool.release(a);
        pool.mark_steady();
        assert!(pool.is_steady());
        let _hit = pool.acquire(64);
        assert_eq!(pool.stats().steady_misses, 0, "hits never count");
        let _miss = pool.acquire(1 << 20);
        let s = pool.stats();
        assert_eq!(s.steady_misses, 1);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn mark_steady_provisions_headroom_exactly_once() {
        let pool = FieldPool::new();
        pool.release(pool.acquire(100)); // miss: mints the buffer + a spare
        let idle_before = pool.idle_buffers();
        assert_eq!(idle_before, 2);
        pool.mark_steady();
        let idle_after = pool.idle_buffers();
        assert!(idle_after > idle_before, "no headroom was provisioned");
        pool.mark_steady(); // idempotent: a second call adds nothing
        assert_eq!(pool.idle_buffers(), idle_after);
        // the provisioned slack serves steady demand beyond the warm-up
        // peak without a single steady miss
        let bufs: Vec<_> = (0..idle_after).map(|_| pool.acquire(100)).collect();
        assert_eq!(pool.stats().steady_misses, 0);
        for b in bufs {
            pool.release(b);
        }
    }

    #[test]
    fn a_miss_shelves_a_spare_of_the_same_class() {
        let pool = FieldPool::new();
        // first acquisition misses and leaves one spare behind ...
        let a = pool.acquire(64);
        assert_eq!(pool.idle_buffers(), 1);
        // ... so a second concurrent checkout of the class is a hit
        let b = pool.acquire(64);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(pool.idle_buffers(), 0);
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.idle_buffers(), 2);
    }

    #[test]
    fn clone_shares_the_same_pool() {
        let pool = FieldPool::new();
        let handle = pool.clone();
        handle.release(handle.acquire(32));
        let b = pool.acquire(32);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(handle.stats().hits, 1);
        drop(b);
    }

    #[test]
    fn stats_are_monotone() {
        let pool = FieldPool::new();
        let mut prev = pool.stats();
        for i in 1..50usize {
            let b = pool.acquire((i * 37) % 500 + 1);
            if i % 3 != 0 {
                pool.release(b);
            }
            let s = pool.stats();
            assert!(s.hits >= prev.hits);
            assert!(s.misses >= prev.misses);
            assert!(s.bytes_recycled >= prev.bytes_recycled);
            assert!(s.steady_misses >= prev.steady_misses);
            assert_eq!(s.hits + s.misses, i as u64);
            prev = s;
        }
    }
}
