//! Axis-aligned half-open boxes of cells — the region algebra underneath
//! every grid-hierarchy operation.
//!
//! A [`Region`] is the set of cells `{ (x,y,z) : lo <= (x,y,z) < hi }` at a
//! given level's resolution. All operations are exact integer arithmetic.

use crate::index::{ivec3, IVec3};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open axis-aligned box of cells: `lo` inclusive, `hi` exclusive.
///
/// An *empty* region has `hi[k] <= lo[k]` on some axis; empty regions compare
/// equal in spirit (all represent "no cells") but retain their coordinates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Region {
    pub lo: IVec3,
    pub hi: IVec3,
}

impl fmt::Debug for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?} .. {:?})", self.lo, self.hi)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {})", self.lo, self.hi)
    }
}

/// Shorthand constructor for [`Region`].
pub const fn region(lo: IVec3, hi: IVec3) -> Region {
    Region { lo, hi }
}

impl Region {
    /// The canonical empty region.
    pub const EMPTY: Region = region(IVec3::ZERO, IVec3::ZERO);

    /// A cube `[0, n)^3`.
    pub fn cube(n: i64) -> Region {
        region(IVec3::ZERO, IVec3::splat(n))
    }

    /// Construct from corner plus extent.
    pub fn at(lo: IVec3, size: IVec3) -> Region {
        region(lo, lo + size)
    }

    /// Extent on each axis (may have non-positive components when empty).
    pub fn size(&self) -> IVec3 {
        self.hi - self.lo
    }

    /// Number of cells; 0 for empty regions.
    pub fn cells(&self) -> i64 {
        let s = self.size();
        if s.x <= 0 || s.y <= 0 || s.z <= 0 {
            0
        } else {
            s.product()
        }
    }

    /// `true` if the region contains no cells.
    pub fn is_empty(&self) -> bool {
        self.cells() == 0
    }

    /// `true` if cell `p` lies inside this region.
    pub fn contains(&self, p: IVec3) -> bool {
        self.lo.all_le(p) && p.all_lt(self.hi)
    }

    /// `true` if `other` is entirely inside `self` (empty regions are
    /// contained in everything).
    pub fn contains_region(&self, other: &Region) -> bool {
        other.is_empty() || (self.lo.all_le(other.lo) && other.hi.all_le(self.hi))
    }

    /// Intersection; empty if the boxes do not overlap.
    pub fn intersect(&self, other: &Region) -> Region {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        let r = region(lo, hi);
        if r.cells() == 0 {
            Region::EMPTY
        } else {
            r
        }
    }

    /// `true` if the two regions share at least one cell.
    pub fn overlaps(&self, other: &Region) -> bool {
        !self.intersect(other).is_empty()
    }

    /// The smallest region containing both (bounding box, not set union).
    pub fn hull(&self, other: &Region) -> Region {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        region(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Grow by `g` cells on every face (shrink if negative).
    pub fn grow(&self, g: i64) -> Region {
        region(self.lo - IVec3::splat(g), self.hi + IVec3::splat(g))
    }

    /// Translate by `d`.
    pub fn shift(&self, d: IVec3) -> Region {
        region(self.lo + d, self.hi + d)
    }

    /// Map to the next finer level: every cell becomes an `r^3` block.
    pub fn refine(&self, r: i64) -> Region {
        debug_assert!(r >= 1);
        region(self.lo * r, self.hi * r)
    }

    /// Map to the next coarser level: the smallest coarse region covering
    /// `self` (outer coarsening).
    pub fn coarsen(&self, r: i64) -> Region {
        debug_assert!(r >= 1);
        if self.is_empty() {
            return Region::EMPTY;
        }
        region(self.lo.div_floor(r), self.hi.div_ceil(r))
    }

    /// Split into two halves at plane `cut` (level-local coordinate) normal to
    /// `axis`. `cut` must satisfy `lo[axis] < cut < hi[axis]` for both halves
    /// to be non-empty.
    pub fn split_at(&self, axis: usize, cut: i64) -> (Region, Region) {
        let mut a = *self;
        let mut b = *self;
        a.hi[axis] = cut.clamp(self.lo[axis], self.hi[axis]);
        b.lo[axis] = cut.clamp(self.lo[axis], self.hi[axis]);
        (a, b)
    }

    /// Split into two halves of (nearly) equal cell count along the longest
    /// axis. The left half is never larger than the right by more than one
    /// plane of cells.
    pub fn bisect(&self) -> (Region, Region) {
        let axis = self.size().longest_axis();
        let cut = self.lo[axis] + self.size()[axis] / 2;
        self.split_at(axis, cut)
    }

    /// Split off a leading slab of exactly `want` cells (or as close as a
    /// whole number of planes allows, rounding to the nearest plane but
    /// keeping both parts non-empty when possible).
    ///
    /// Returns `(slab, rest)`. Used by partitioners to move a precise amount
    /// of work across a group boundary (Fig. 6 of the paper).
    pub fn split_cells(&self, want: i64, axis: usize) -> (Region, Region) {
        let sz = self.size();
        if self.is_empty() || want <= 0 {
            return (Region::EMPTY, *self);
        }
        if want >= self.cells() {
            return (*self, Region::EMPTY);
        }
        let plane = match axis {
            0 => sz.y * sz.z,
            1 => sz.x * sz.z,
            _ => sz.x * sz.y,
        };
        // nearest whole number of planes, at least 1, at most extent-1
        let mut n = (want + plane / 2) / plane;
        n = n.clamp(1, sz[axis] - 1);
        self.split_at(axis, self.lo[axis] + n)
    }

    /// Subtract `other`, returning up to 6 disjoint boxes that exactly cover
    /// `self \ other`.
    pub fn subtract(&self, other: &Region) -> Vec<Region> {
        let inter = self.intersect(other);
        if inter.is_empty() {
            return if self.is_empty() { vec![] } else { vec![*self] };
        }
        if inter == *self {
            return vec![];
        }
        let mut out = Vec::with_capacity(6);
        let mut rem = *self;
        // Peel slabs on each axis around the intersection.
        for axis in 0..3 {
            if rem.lo[axis] < inter.lo[axis] {
                let (slab, rest) = rem.split_at(axis, inter.lo[axis]);
                out.push(slab);
                rem = rest;
            }
            if inter.hi[axis] < rem.hi[axis] {
                let (rest, slab) = rem.split_at(axis, inter.hi[axis]);
                out.push(slab);
                rem = rest;
            }
        }
        debug_assert_eq!(rem, inter);
        out
    }

    /// Iterate over all cells in deterministic (z-inner) order.
    pub fn iter_cells(self) -> impl Iterator<Item = IVec3> {
        let r = self;
        let empty = r.is_empty();
        (r.lo.x..r.hi.x)
            .flat_map(move |x| {
                (r.lo.y..r.hi.y).flat_map(move |y| (r.lo.z..r.hi.z).map(move |z| ivec3(x, y, z)))
            })
            .filter(move |_| !empty)
    }

    /// Number of cells on the surface of the box (cells with at least one
    /// face on the boundary) — proxy for ghost-exchange volume.
    pub fn surface_cells(&self) -> i64 {
        if self.is_empty() {
            return 0;
        }
        let s = self.size();
        let interior = (s.x - 2).max(0) * (s.y - 2).max(0) * (s.z - 2).max(0);
        self.cells() - interior
    }

    /// Linear index of cell `p` within this region (z fastest), for field
    /// storage. `p` must be inside.
    pub fn linear_index(&self, p: IVec3) -> usize {
        debug_assert!(self.contains(p), "{p:?} not in {self:?}");
        let s = self.size();
        let d = p - self.lo;
        ((d.x * s.y + d.y) * s.z + d.z) as usize
    }

    /// Index range of the z-contiguous row `(x, y, z0..z1)` in this region's
    /// linear (z fastest) layout. The row must lie inside the region; rows
    /// are the unit the sliced field kernels operate on (index math done
    /// once per row instead of once per cell).
    #[inline]
    pub fn row_range(&self, x: i64, y: i64, z0: i64, z1: i64) -> std::ops::Range<usize> {
        debug_assert!(z0 <= z1);
        let start = self.linear_index(ivec3(x, y, z0));
        start..start + (z1 - z0) as usize
    }
}

/// Total cell count of a list of regions (regions assumed disjoint).
pub fn total_cells(regions: &[Region]) -> i64 {
    regions.iter().map(|r| r.cells()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(l: (i64, i64, i64), h: (i64, i64, i64)) -> Region {
        region(ivec3(l.0, l.1, l.2), ivec3(h.0, h.1, h.2))
    }

    #[test]
    fn cells_and_empty() {
        assert_eq!(Region::cube(4).cells(), 64);
        assert!(Region::EMPTY.is_empty());
        assert!(r((0, 0, 0), (0, 5, 5)).is_empty());
        assert!(r((3, 0, 0), (2, 5, 5)).is_empty());
    }

    #[test]
    fn contains_cells_and_regions() {
        let a = r((0, 0, 0), (4, 4, 4));
        assert!(a.contains(ivec3(0, 0, 0)));
        assert!(a.contains(ivec3(3, 3, 3)));
        assert!(!a.contains(ivec3(4, 0, 0)));
        assert!(a.contains_region(&r((1, 1, 1), (3, 3, 3))));
        assert!(a.contains_region(&Region::EMPTY));
        assert!(!a.contains_region(&r((1, 1, 1), (5, 3, 3))));
    }

    #[test]
    fn intersection_cases() {
        let a = r((0, 0, 0), (4, 4, 4));
        let b = r((2, 2, 2), (6, 6, 6));
        assert_eq!(a.intersect(&b), r((2, 2, 2), (4, 4, 4)));
        assert!(a.overlaps(&b));
        let c = r((4, 0, 0), (8, 4, 4)); // face-adjacent, no shared cells
        assert!(!a.overlaps(&c));
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn hull_bounds_both() {
        let a = r((0, 0, 0), (2, 2, 2));
        let b = r((5, 5, 5), (6, 6, 6));
        let h = a.hull(&b);
        assert!(h.contains_region(&a) && h.contains_region(&b));
        assert_eq!(h, r((0, 0, 0), (6, 6, 6)));
        assert_eq!(a.hull(&Region::EMPTY), a);
        assert_eq!(Region::EMPTY.hull(&b), b);
    }

    #[test]
    fn refine_coarsen_roundtrip() {
        let a = r((1, 2, 3), (4, 5, 6));
        assert_eq!(a.refine(2).coarsen(2), a);
        // outer coarsening covers the original region
        let odd = r((1, 1, 1), (3, 3, 3));
        let c = odd.coarsen(2);
        assert!(c.refine(2).contains_region(&odd));
        assert_eq!(c, r((0, 0, 0), (2, 2, 2)));
    }

    #[test]
    fn bisect_balanced_and_covering() {
        let a = r((0, 0, 0), (8, 4, 4));
        let (l, rr) = a.bisect();
        assert_eq!(l.cells() + rr.cells(), a.cells());
        assert_eq!(l.cells(), rr.cells());
        assert!(!l.overlaps(&rr));
        assert_eq!(l.hull(&rr), a);
    }

    #[test]
    fn split_cells_moves_requested_amount() {
        let a = r((0, 0, 0), (10, 4, 4)); // plane = 16 cells
        let (slab, rest) = a.split_cells(32, 0);
        assert_eq!(slab.cells(), 32);
        assert_eq!(rest.cells(), a.cells() - 32);
        // rounding to nearest plane
        let (slab, _) = a.split_cells(40, 0); // 2.5 planes -> 2 or 3
        assert!(slab.cells() == 32 || slab.cells() == 48);
        // degenerate requests
        assert_eq!(a.split_cells(0, 0).0, Region::EMPTY);
        assert_eq!(a.split_cells(10_000, 0).1, Region::EMPTY);
        // never returns empty halves for interior requests
        let (s, rst) = a.split_cells(1, 0);
        assert!(!s.is_empty() && !rst.is_empty());
    }

    #[test]
    fn subtract_exact_cover() {
        let a = r((0, 0, 0), (4, 4, 4));
        let b = r((1, 1, 1), (3, 3, 3));
        let parts = a.subtract(&b);
        let total: i64 = parts.iter().map(|p| p.cells()).sum();
        assert_eq!(total, a.cells() - b.cells());
        for (i, p) in parts.iter().enumerate() {
            assert!(!p.overlaps(&b));
            assert!(a.contains_region(p));
            for q in &parts[i + 1..] {
                assert!(!p.overlaps(q));
            }
        }
        // disjoint case
        assert_eq!(a.subtract(&r((9, 9, 9), (10, 10, 10))), vec![a]);
        // full cover case
        assert!(a.subtract(&a).is_empty());
    }

    #[test]
    fn surface_cells_counts_shell() {
        assert_eq!(Region::cube(1).surface_cells(), 1);
        assert_eq!(Region::cube(2).surface_cells(), 8);
        assert_eq!(Region::cube(3).surface_cells(), 26);
        assert_eq!(Region::cube(4).surface_cells(), 64 - 8);
    }

    #[test]
    fn linear_index_bijective() {
        let a = r((1, 2, 3), (3, 5, 7));
        let mut seen = vec![false; a.cells() as usize];
        for c in a.iter_cells() {
            let i = a.linear_index(c);
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn grow_and_shift() {
        let a = r((2, 2, 2), (4, 4, 4));
        assert_eq!(a.grow(1), r((1, 1, 1), (5, 5, 5)));
        assert_eq!(a.grow(1).grow(-1), a);
        assert_eq!(a.shift(ivec3(1, -1, 0)), r((3, 1, 2), (5, 3, 4)));
    }
}
