//! Grid patches: rectangular subgrids carrying solution fields.

use crate::field::Field3;
use crate::region::Region;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a grid patch, unique within a [`crate::hierarchy::GridHierarchy`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PatchId(pub u64);

impl fmt::Debug for PatchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Index of the processor that owns a patch (meaningful to the caller's
/// system model; the mesh crate only stores it).
pub type OwnerProc = usize;

/// A rectangular subgrid at one refinement level.
///
/// `region` is expressed in the patch's *own level's* cell coordinates; the
/// physical span of one cell at level `l` is `h0 / r^l`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridPatch {
    /// Unique id within the hierarchy.
    pub id: PatchId,
    /// Refinement level (0 = root).
    pub level: usize,
    /// Cell region at this level's resolution.
    pub region: Region,
    /// Parent patch (`None` for level-0 patches).
    pub parent: Option<PatchId>,
    /// Owning processor index.
    pub owner: OwnerProc,
    /// Solution fields (application-defined layout; same length for all
    /// patches of a hierarchy).
    pub fields: Vec<Field3>,
}

impl GridPatch {
    /// Create a patch with `nfields` zero-initialized fields of ghost width
    /// `ghost`.
    pub fn new(
        id: PatchId,
        level: usize,
        region: Region,
        parent: Option<PatchId>,
        owner: OwnerProc,
        nfields: usize,
        ghost: i64,
    ) -> Self {
        let fields = (0..nfields).map(|_| Field3::zeros(region, ghost)).collect();
        GridPatch {
            id,
            level,
            region,
            parent,
            owner,
            fields,
        }
    }

    /// Like [`GridPatch::new`], but every field's backing store is drawn
    /// from `pool` — bit-identical to fresh zeroed fields.
    #[allow(clippy::too_many_arguments)]
    pub fn new_in(
        pool: &crate::pool::FieldPool,
        id: PatchId,
        level: usize,
        region: Region,
        parent: Option<PatchId>,
        owner: OwnerProc,
        nfields: usize,
        ghost: i64,
    ) -> Self {
        let fields = (0..nfields)
            .map(|_| Field3::new_in(pool, region, ghost))
            .collect();
        GridPatch {
            id,
            level,
            region,
            parent,
            owner,
            fields,
        }
    }

    /// Consume the patch, shelving every field's backing store in `pool`.
    pub fn recycle(self, pool: &crate::pool::FieldPool) {
        for f in self.fields {
            f.recycle(pool);
        }
    }

    /// Cell count — the unit of workload throughout the DLB schemes.
    pub fn cells(&self) -> i64 {
        self.region.cells()
    }

    /// Approximate in-memory size of the patch's field data in bytes; the
    /// payload size used when the patch migrates between processors.
    pub fn payload_bytes(&self) -> u64 {
        self.fields
            .iter()
            .map(|f| (f.storage_region().cells() as u64) * 8)
            .sum()
    }

    /// Boundary-exchange volume in bytes for a sibling overlap of `cells`
    /// cells: every field ships its ghost strip.
    pub fn boundary_bytes(&self, cells: i64) -> u64 {
        (cells.max(0) as u64) * 8 * self.fields.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_patch_shapes_fields() {
        let p = GridPatch::new(PatchId(3), 1, Region::cube(4), Some(PatchId(0)), 2, 5, 2);
        assert_eq!(p.fields.len(), 5);
        assert_eq!(p.cells(), 64);
        for f in &p.fields {
            assert_eq!(f.interior(), Region::cube(4));
            assert_eq!(f.ghost(), 2);
        }
        assert_eq!(p.owner, 2);
        assert_eq!(p.parent, Some(PatchId(0)));
    }

    #[test]
    fn payload_counts_ghosts() {
        let p = GridPatch::new(PatchId(0), 0, Region::cube(4), None, 0, 2, 1);
        // storage is 6^3 per field, 8 bytes per cell, 2 fields
        assert_eq!(p.payload_bytes(), 2 * 6 * 6 * 6 * 8);
        assert_eq!(p.boundary_bytes(10), 10 * 8 * 2);
        assert_eq!(p.boundary_bytes(-5), 0);
    }
}
