//! Inter-level data transfer: prolongation (coarse → fine) and restriction
//! (fine → coarse).

use crate::field::Field3;
use crate::index::{ivec3, IVec3};
use crate::region::Region;

/// Piecewise-constant prolongation: fill `fine`'s cells inside `fine_window`
/// (fine-level coordinates) by injecting the containing coarse cell's value.
///
/// Conservative for cell-averaged quantities and monotone, which is what a
/// newly created refined grid needs before its first fine step.
pub fn prolong_constant(coarse: &Field3, fine: &mut Field3, fine_window: &Region, r: i64) {
    let w = fine_window.intersect(&fine.storage_region());
    for p in w.iter_cells() {
        let cp = p.div_floor(r);
        if coarse.storage_region().contains(cp) {
            fine.set(p, coarse.get(cp));
        }
    }
}

/// Trilinear prolongation: fill fine cells by linear interpolation between
/// coarse cell centers. Falls back to the containing-cell value at coarse
/// boundaries where a full stencil is unavailable.
pub fn prolong_linear(coarse: &Field3, fine: &mut Field3, fine_window: &Region, r: i64) {
    let w = fine_window.intersect(&fine.storage_region());
    let cs = coarse.storage_region();
    let rf = r as f64;
    for p in w.iter_cells() {
        // fine cell center in coarse index space
        let cx = (p.x as f64 + 0.5) / rf - 0.5;
        let cy = (p.y as f64 + 0.5) / rf - 0.5;
        let cz = (p.z as f64 + 0.5) / rf - 0.5;
        let ix = cx.floor() as i64;
        let iy = cy.floor() as i64;
        let iz = cz.floor() as i64;
        let fx = cx - ix as f64;
        let fy = cy - iy as f64;
        let fz = cz - iz as f64;
        let corner = ivec3(ix, iy, iz);
        let ok = cs.contains(corner) && cs.contains(corner + IVec3::ONE);
        let v = if ok {
            let mut acc = 0.0;
            for (dx, wx) in [(0i64, 1.0 - fx), (1, fx)] {
                for (dy, wy) in [(0i64, 1.0 - fy), (1, fy)] {
                    for (dz, wz) in [(0i64, 1.0 - fz), (1, fz)] {
                        acc += wx * wy * wz * coarse.get(corner + ivec3(dx, dy, dz));
                    }
                }
            }
            acc
        } else {
            let cp = p.div_floor(r);
            if cs.contains(cp) {
                coarse.get(cp)
            } else {
                continue;
            }
        };
        fine.set(p, v);
    }
}

/// Conservative restriction: replace each coarse cell inside `coarse_window`
/// (coarse-level coordinates) with the average of its `r^3` fine children.
pub fn restrict_average(fine: &Field3, coarse: &mut Field3, coarse_window: &Region, r: i64) {
    let w = coarse_window.intersect(&coarse.storage_region());
    let inv = 1.0 / (r * r * r) as f64;
    for cp in w.iter_cells() {
        let fine_block = Region::at(cp * r, IVec3::splat(r));
        if !fine.storage_region().contains_region(&fine_block) {
            continue;
        }
        let sum: f64 = fine_block.iter_cells().map(|fp| fine.get(fp)).sum();
        coarse.set(cp, sum * inv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::region;

    #[test]
    fn constant_prolong_injects_parent_value() {
        let mut coarse = Field3::zeros(Region::cube(4), 1);
        coarse.map_interior(|p, _| (p.x * 100 + p.y * 10 + p.z) as f64);
        let fine_region = Region::cube(8);
        let mut fine = Field3::zeros(fine_region, 0);
        prolong_constant(&coarse, &mut fine, &fine_region, 2);
        assert_eq!(fine.get(ivec3(0, 0, 0)), 0.0);
        assert_eq!(fine.get(ivec3(1, 1, 1)), 0.0);
        assert_eq!(fine.get(ivec3(2, 0, 0)), 100.0);
        assert_eq!(fine.get(ivec3(7, 7, 7)), 333.0);
    }

    #[test]
    fn constant_prolong_conserves_sum() {
        let mut coarse = Field3::zeros(Region::cube(4), 0);
        coarse.map_interior(|p, _| (p.x + p.y + p.z) as f64 + 1.0);
        let fine_region = Region::cube(8);
        let mut fine = Field3::zeros(fine_region, 0);
        prolong_constant(&coarse, &mut fine, &fine_region, 2);
        // each coarse value copied into 8 fine cells
        assert!((fine.interior_sum() - 8.0 * coarse.interior_sum()).abs() < 1e-9);
    }

    #[test]
    fn linear_prolong_reproduces_linear_fields() {
        // u = x (in coarse index units) should be reproduced exactly away
        // from boundaries
        let mut coarse = Field3::zeros(Region::cube(6), 2);
        for p in coarse.storage_region().iter_cells() {
            coarse.set(p, p.x as f64);
        }
        let fine_region = region(ivec3(4, 4, 4), ivec3(8, 8, 8));
        let mut fine = Field3::zeros(fine_region, 0);
        prolong_linear(&coarse, &mut fine, &fine_region, 2);
        for p in fine_region.iter_cells() {
            let expect = (p.x as f64 + 0.5) / 2.0 - 0.5;
            assert!(
                (fine.get(p) - expect).abs() < 1e-12,
                "at {p:?}: {} vs {expect}",
                fine.get(p)
            );
        }
    }

    #[test]
    fn restrict_average_of_constant_is_constant() {
        let fine = Field3::constant(Region::cube(8), 0, 3.5);
        let mut coarse = Field3::zeros(Region::cube(4), 0);
        restrict_average(&fine, &mut coarse, &Region::cube(4), 2);
        for p in Region::cube(4).iter_cells() {
            assert_eq!(coarse.get(p), 3.5);
        }
    }

    #[test]
    fn restrict_then_prolong_conserves_total() {
        let mut fine = Field3::zeros(Region::cube(8), 0);
        fine.map_interior(|p, _| (p.x * p.y + p.z) as f64);
        let mut coarse = Field3::zeros(Region::cube(4), 0);
        restrict_average(&fine, &mut coarse, &Region::cube(4), 2);
        // total mass conserved under restriction: coarse sum * 8 == fine sum
        assert!((coarse.interior_sum() * 8.0 - fine.interior_sum()).abs() < 1e-9);
    }

    #[test]
    fn restrict_partial_window_only_touches_window() {
        let fine = Field3::constant(Region::cube(8), 0, 2.0);
        let mut coarse = Field3::constant(Region::cube(4), 0, -1.0);
        let window = region(ivec3(0, 0, 0), ivec3(2, 4, 4));
        restrict_average(&fine, &mut coarse, &window, 2);
        assert_eq!(coarse.get(ivec3(1, 1, 1)), 2.0);
        assert_eq!(coarse.get(ivec3(3, 3, 3)), -1.0);
    }
}
