//! Inter-level data transfer: prolongation (coarse → fine) and restriction
//! (fine → coarse).

use crate::field::Field3;
use crate::index::{ivec3, IVec3};
use crate::region::Region;

/// Piecewise-constant prolongation: fill `fine`'s cells inside `fine_window`
/// (fine-level coordinates) by injecting the containing coarse cell's value.
///
/// Conservative for cell-averaged quantities and monotone, which is what a
/// newly created refined grid needs before its first fine step.
///
/// Row-sliced: each fine z-row is filled in runs of `r` equal values read
/// from the matching coarse row, with all index math hoisted out of the
/// per-cell loop. Bit-identical to [`reference::prolong_constant`].
pub fn prolong_constant(coarse: &Field3, fine: &mut Field3, fine_window: &Region, r: i64) {
    let w = fine_window.intersect(&fine.storage_region());
    if w.is_empty() {
        return;
    }
    let cs = coarse.storage_region();
    let fs = fine.storage_region();
    // fine z cells whose containing coarse cell lies inside coarse storage:
    // floor(z / r) ∈ [cs.lo.z, cs.hi.z) ⇔ z ∈ [cs.lo.z·r, cs.hi.z·r)
    let z0 = w.lo.z.max(cs.lo.z * r);
    let z1 = w.hi.z.min(cs.hi.z * r);
    if z0 >= z1 {
        return;
    }
    for x in w.lo.x..w.hi.x {
        let cx = x.div_euclid(r);
        if cx < cs.lo.x || cx >= cs.hi.x {
            continue;
        }
        for y in w.lo.y..w.hi.y {
            let cy = y.div_euclid(r);
            if cy < cs.lo.y || cy >= cs.hi.y {
                continue;
            }
            let crow = &coarse.data()[cs.row_range(cx, cy, cs.lo.z, cs.hi.z)];
            let frange = fs.row_range(x, y, z0, z1);
            let frow = &mut fine.data_mut()[frange];
            let mut z = z0;
            while z < z1 {
                let cz = z.div_euclid(r);
                let seg_end = ((cz + 1) * r).min(z1);
                let v = crow[(cz - cs.lo.z) as usize];
                frow[(z - z0) as usize..(seg_end - z0) as usize].fill(v);
                z = seg_end;
            }
        }
    }
}

/// Trilinear prolongation: fill fine cells by linear interpolation between
/// coarse cell centers. Falls back to the containing-cell value at coarse
/// boundaries where a full stencil is unavailable.
pub fn prolong_linear(coarse: &Field3, fine: &mut Field3, fine_window: &Region, r: i64) {
    let w = fine_window.intersect(&fine.storage_region());
    let cs = coarse.storage_region();
    let rf = r as f64;
    for p in w.iter_cells() {
        // fine cell center in coarse index space
        let cx = (p.x as f64 + 0.5) / rf - 0.5;
        let cy = (p.y as f64 + 0.5) / rf - 0.5;
        let cz = (p.z as f64 + 0.5) / rf - 0.5;
        let ix = cx.floor() as i64;
        let iy = cy.floor() as i64;
        let iz = cz.floor() as i64;
        let fx = cx - ix as f64;
        let fy = cy - iy as f64;
        let fz = cz - iz as f64;
        let corner = ivec3(ix, iy, iz);
        let ok = cs.contains(corner) && cs.contains(corner + IVec3::ONE);
        let v = if ok {
            let mut acc = 0.0;
            for (dx, wx) in [(0i64, 1.0 - fx), (1, fx)] {
                for (dy, wy) in [(0i64, 1.0 - fy), (1, fy)] {
                    for (dz, wz) in [(0i64, 1.0 - fz), (1, fz)] {
                        acc += wx * wy * wz * coarse.get(corner + ivec3(dx, dy, dz));
                    }
                }
            }
            acc
        } else {
            let cp = p.div_floor(r);
            if cs.contains(cp) {
                coarse.get(cp)
            } else {
                continue;
            }
        };
        fine.set(p, v);
    }
}

/// Conservative restriction: replace each coarse cell inside `coarse_window`
/// (coarse-level coordinates) with the average of its `r^3` fine children.
///
/// Row-sliced: the fine block under each coarse cell is summed one
/// z-contiguous row at a time, in the same cell order as the per-cell
/// reference, so the floating-point result is bit-identical to
/// [`reference::restrict_average`].
pub fn restrict_average(fine: &Field3, coarse: &mut Field3, coarse_window: &Region, r: i64) {
    let w = coarse_window.intersect(&coarse.storage_region());
    if w.is_empty() {
        return;
    }
    let fs = fine.storage_region();
    let cs = coarse.storage_region();
    let inv = 1.0 / (r * r * r) as f64;
    for cx in w.lo.x..w.hi.x {
        for cy in w.lo.y..w.hi.y {
            let crange = cs.row_range(cx, cy, w.lo.z, w.hi.z);
            for (k, out) in coarse.data_mut()[crange].iter_mut().enumerate() {
                let cz = w.lo.z + k as i64;
                let fine_block = Region::at(ivec3(cx, cy, cz) * r, IVec3::splat(r));
                if !fs.contains_region(&fine_block) {
                    continue;
                }
                let mut sum = 0.0;
                for fx in fine_block.lo.x..fine_block.hi.x {
                    for fy in fine_block.lo.y..fine_block.hi.y {
                        let frange = fs.row_range(fx, fy, fine_block.lo.z, fine_block.hi.z);
                        for &v in &fine.data()[frange] {
                            sum += v;
                        }
                    }
                }
                *out = sum * inv;
            }
        }
    }
}

/// Per-cell reference implementations of the row-sliced transfer kernels,
/// retained as bit-identity oracles for golden tests (see
/// [`crate::field::reference`] for the field-op counterparts).
pub mod reference {
    use super::*;

    /// Reference for [`super::prolong_constant`].
    pub fn prolong_constant(coarse: &Field3, fine: &mut Field3, fine_window: &Region, r: i64) {
        let w = fine_window.intersect(&fine.storage_region());
        for p in w.iter_cells() {
            let cp = p.div_floor(r);
            if coarse.storage_region().contains(cp) {
                fine.set(p, coarse.get(cp));
            }
        }
    }

    /// Reference for [`super::restrict_average`].
    pub fn restrict_average(fine: &Field3, coarse: &mut Field3, coarse_window: &Region, r: i64) {
        let w = coarse_window.intersect(&coarse.storage_region());
        let inv = 1.0 / (r * r * r) as f64;
        for cp in w.iter_cells() {
            let fine_block = Region::at(cp * r, IVec3::splat(r));
            if !fine.storage_region().contains_region(&fine_block) {
                continue;
            }
            let sum: f64 = fine_block.iter_cells().map(|fp| fine.get(fp)).sum();
            coarse.set(cp, sum * inv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::region;

    #[test]
    fn constant_prolong_injects_parent_value() {
        let mut coarse = Field3::zeros(Region::cube(4), 1);
        coarse.map_interior(|p, _| (p.x * 100 + p.y * 10 + p.z) as f64);
        let fine_region = Region::cube(8);
        let mut fine = Field3::zeros(fine_region, 0);
        prolong_constant(&coarse, &mut fine, &fine_region, 2);
        assert_eq!(fine.get(ivec3(0, 0, 0)), 0.0);
        assert_eq!(fine.get(ivec3(1, 1, 1)), 0.0);
        assert_eq!(fine.get(ivec3(2, 0, 0)), 100.0);
        assert_eq!(fine.get(ivec3(7, 7, 7)), 333.0);
    }

    #[test]
    fn constant_prolong_conserves_sum() {
        let mut coarse = Field3::zeros(Region::cube(4), 0);
        coarse.map_interior(|p, _| (p.x + p.y + p.z) as f64 + 1.0);
        let fine_region = Region::cube(8);
        let mut fine = Field3::zeros(fine_region, 0);
        prolong_constant(&coarse, &mut fine, &fine_region, 2);
        // each coarse value copied into 8 fine cells
        assert!((fine.interior_sum() - 8.0 * coarse.interior_sum()).abs() < 1e-9);
    }

    #[test]
    fn linear_prolong_reproduces_linear_fields() {
        // u = x (in coarse index units) should be reproduced exactly away
        // from boundaries
        let mut coarse = Field3::zeros(Region::cube(6), 2);
        for p in coarse.storage_region().iter_cells() {
            coarse.set(p, p.x as f64);
        }
        let fine_region = region(ivec3(4, 4, 4), ivec3(8, 8, 8));
        let mut fine = Field3::zeros(fine_region, 0);
        prolong_linear(&coarse, &mut fine, &fine_region, 2);
        for p in fine_region.iter_cells() {
            let expect = (p.x as f64 + 0.5) / 2.0 - 0.5;
            assert!(
                (fine.get(p) - expect).abs() < 1e-12,
                "at {p:?}: {} vs {expect}",
                fine.get(p)
            );
        }
    }

    #[test]
    fn restrict_average_of_constant_is_constant() {
        let fine = Field3::constant(Region::cube(8), 0, 3.5);
        let mut coarse = Field3::zeros(Region::cube(4), 0);
        restrict_average(&fine, &mut coarse, &Region::cube(4), 2);
        for p in Region::cube(4).iter_cells() {
            assert_eq!(coarse.get(p), 3.5);
        }
    }

    #[test]
    fn restrict_then_prolong_conserves_total() {
        let mut fine = Field3::zeros(Region::cube(8), 0);
        fine.map_interior(|p, _| (p.x * p.y + p.z) as f64);
        let mut coarse = Field3::zeros(Region::cube(4), 0);
        restrict_average(&fine, &mut coarse, &Region::cube(4), 2);
        // total mass conserved under restriction: coarse sum * 8 == fine sum
        assert!((coarse.interior_sum() * 8.0 - fine.interior_sum()).abs() < 1e-9);
    }

    #[test]
    fn restrict_partial_window_only_touches_window() {
        let fine = Field3::constant(Region::cube(8), 0, 2.0);
        let mut coarse = Field3::constant(Region::cube(4), 0, -1.0);
        let window = region(ivec3(0, 0, 0), ivec3(2, 4, 4));
        restrict_average(&fine, &mut coarse, &window, 2);
        assert_eq!(coarse.get(ivec3(1, 1, 1)), 2.0);
        assert_eq!(coarse.get(ivec3(3, 3, 3)), -1.0);
    }

    fn scrambled(interior: Region, ghost: i64, seed: u64) -> Field3 {
        let mut f = Field3::zeros(interior, ghost);
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        for v in f.data_mut() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *v = ((s >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0;
        }
        f
    }

    #[test]
    fn prolong_constant_matches_reference_bitwise() {
        for (r, ghost, seed) in [(2i64, 1i64, 5u64), (2, 2, 6), (3, 1, 7), (4, 0, 8)] {
            let coarse = scrambled(region(ivec3(-2, 1, 0), ivec3(5, 8, 6)), ghost, seed);
            // fine patch deliberately poking past the coarse coverage so the
            // containment clipping is exercised on every axis
            let fine_region = region(ivec3(-3 * r, 0, -2), ivec3(6 * r, 9 * r, 7 * r));
            let windows = [
                fine_region,
                fine_region.grow(2),
                region(ivec3(-1, -1, -1), ivec3(3, 5, 9)),
                Region::EMPTY,
            ];
            for w in windows {
                let mut a = scrambled(fine_region, ghost, seed + 100);
                let mut b = a.clone();
                prolong_constant(&coarse, &mut a, &w, r);
                reference::prolong_constant(&coarse, &mut b, &w, r);
                assert_eq!(a, b, "r={r} ghost={ghost} window={w:?}");
            }
        }
    }

    #[test]
    fn restrict_average_matches_reference_bitwise() {
        for (r, ghost, seed) in [(2i64, 1i64, 11u64), (2, 0, 12), (3, 2, 13)] {
            let fine = scrambled(region(ivec3(-r, 0, r), ivec3(6 * r, 5 * r, 7 * r)), ghost, seed);
            let coarse_region = region(ivec3(-3, -2, 0), ivec3(8, 7, 9));
            let windows = [
                coarse_region,
                region(ivec3(0, 0, 1), ivec3(4, 4, 6)),
                coarse_region.grow(3),
                Region::EMPTY,
            ];
            for w in windows {
                let mut a = scrambled(coarse_region, ghost, seed + 50);
                let mut b = a.clone();
                restrict_average(&fine, &mut a, &w, r);
                reference::restrict_average(&fine, &mut b, &w, r);
                // bitwise: same cells touched, same summation order
                assert_eq!(a, b, "r={r} ghost={ghost} window={w:?}");
            }
        }
    }
}
