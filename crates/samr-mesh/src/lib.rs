//! # samr-mesh — structured adaptive mesh refinement substrate
//!
//! The grid-hierarchy machinery underneath the SC'01 distributed-DLB
//! reproduction: exact integer region algebra, patches with ghosted fields,
//! the level tree (Fig. 1 of the paper), refinement flagging,
//! Berger–Rigoutsos clustering, and inter-level interpolation.
//!
//! Nothing in this crate knows about processors' *performance* or networks;
//! patches carry only an opaque `owner` index. The DLB crate (`dlb`) and the
//! driver (`samr-engine`) assign meaning to owners.
//!
//! ## Coordinate conventions
//!
//! All regions are half-open integer cell boxes in *level-local* coordinates:
//! level `l`'s cells are a factor `r` smaller than level `l-1`'s, so a level-
//! `l` region maps to level `l+1` via [`Region::refine`] and back via
//! [`Region::coarsen`].

// Fixed-axis (0..3) loops indexing several parallel arrays read more
// clearly as index loops.
#![allow(clippy::needless_range_loop)]

pub mod checkpoint;
pub mod cluster;
pub mod coalesce;
pub mod composite;
pub mod field;
pub mod flag;
pub mod flux;
pub mod hierarchy;
pub mod index;
pub mod interp;
pub mod patch;
pub mod pool;
pub mod region;

pub use checkpoint::{restore, snapshot, HierarchySnapshot};
pub use cluster::{berger_rigoutsos, ClusterParams};
pub use coalesce::coalesce;
pub use composite::{composite_level0, finest_value_at, refined_fraction};
pub use field::Field3;
pub use flag::{flag_cells, FlagField, RefineCriterion};
pub use flux::FluxRegister;
pub use hierarchy::{GridHierarchy, LevelTopology, PatchShell, SiblingOverlap};
pub use index::{ivec3, IVec3};
pub use patch::{GridPatch, OwnerProc, PatchId};
pub use pool::{FieldPool, PoolDetail, PoolStats};
pub use region::{region, total_cells, Region};
