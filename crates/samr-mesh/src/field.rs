//! Scalar field storage over a region, with ghost zones.
//!
//! A [`Field3`] owns an `f64` array covering `region.grow(ghost)`; the
//! *interior* is `region` and the surrounding shell of width `ghost` holds
//! boundary data copied from siblings or interpolated from the parent.

use crate::index::IVec3;
use crate::region::Region;
use serde::{Deserialize, Serialize};

/// A 3-D scalar field over `interior.grow(ghost)` cells.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Field3 {
    interior: Region,
    ghost: i64,
    storage: Region,
    data: Vec<f64>,
}

impl Field3 {
    /// Allocate a zero-filled field over `interior` with `ghost` ghost cells.
    pub fn zeros(interior: Region, ghost: i64) -> Self {
        assert!(ghost >= 0);
        assert!(!interior.is_empty(), "field over empty region");
        let storage = interior.grow(ghost);
        let data = vec![0.0; storage.cells() as usize];
        Field3 {
            interior,
            ghost,
            storage,
            data,
        }
    }

    /// Allocate with every cell (ghosts included) set to `v`.
    pub fn constant(interior: Region, ghost: i64, v: f64) -> Self {
        let mut f = Self::zeros(interior, ghost);
        f.data.fill(v);
        f
    }

    /// Like [`Field3::zeros`], but the backing store comes from (and is
    /// zeroed by) `pool` — no heap allocation when the pool has a buffer of
    /// sufficient capacity. Bit-identical to a fresh `zeros` field. Generic
    /// over [`FieldAlloc`](crate::pool::FieldAlloc) so callers can pass
    /// either the pool itself or a shard-resolved worker handle.
    pub fn new_in<P: crate::pool::FieldAlloc>(pool: &P, interior: Region, ghost: i64) -> Self {
        assert!(ghost >= 0);
        assert!(!interior.is_empty(), "field over empty region");
        let storage = interior.grow(ghost);
        let data = pool.acquire(storage.cells() as usize);
        Field3 {
            interior,
            ghost,
            storage,
            data,
        }
    }

    /// A pooled field whose entire storage (ghosts included) is filled by
    /// piecewise-constant prolongation from `coarse` — bit-identical to
    /// [`Field3::new_in`] followed by [`crate::interp::prolong_constant`]
    /// over the full storage window, without the intermediate zero fill.
    ///
    /// Skipping the zero fill is only sound because prolongation covers
    /// every cell, which requires the outer-coarsened storage to lie inside
    /// `coarse`'s storage; asserted here.
    pub fn from_coarse_in<P: crate::pool::FieldAlloc>(
        pool: &P,
        interior: Region,
        ghost: i64,
        coarse: &Field3,
        r: i64,
    ) -> Self {
        assert!(ghost >= 0);
        assert!(!interior.is_empty(), "field over empty region");
        let storage = interior.grow(ghost);
        assert!(
            coarse.storage_region().contains_region(&storage.coarsen(r)),
            "prolongation source {:?} does not cover fine storage {:?}",
            coarse.storage_region(),
            storage
        );
        let data = pool.acquire_unfilled(storage.cells() as usize);
        let mut f = Field3 {
            interior,
            ghost,
            storage,
            data,
        };
        crate::interp::prolong_constant(coarse, &mut f, &storage, r);
        f
    }

    /// Pooled deep copy: same shape and bitwise-identical contents, with the
    /// backing store drawn from `pool` instead of a fresh allocation.
    pub fn clone_in<P: crate::pool::FieldAlloc>(&self, pool: &P) -> Self {
        let mut data = pool.acquire(self.data.len());
        data.copy_from_slice(&self.data);
        Field3 {
            interior: self.interior,
            ghost: self.ghost,
            storage: self.storage,
            data,
        }
    }

    /// Consume the field and shelve its backing store in `pool` for reuse.
    pub fn recycle<P: crate::pool::FieldAlloc>(self, pool: &P) {
        pool.release(self.data);
    }

    /// The interior region this field is defined on.
    pub fn interior(&self) -> Region {
        self.interior
    }

    /// Ghost-zone width.
    pub fn ghost(&self) -> i64 {
        self.ghost
    }

    /// The full storage region including ghosts.
    pub fn storage_region(&self) -> Region {
        self.storage
    }

    /// Value at cell `p` (must be inside storage, ghosts included).
    #[inline]
    pub fn get(&self, p: IVec3) -> f64 {
        self.data[self.storage.linear_index(p)]
    }

    /// Mutable access to cell `p`.
    #[inline]
    pub fn at_mut(&mut self, p: IVec3) -> &mut f64 {
        let i = self.storage.linear_index(p);
        &mut self.data[i]
    }

    /// Set cell `p` to `v`.
    #[inline]
    pub fn set(&mut self, p: IVec3, v: f64) {
        let i = self.storage.linear_index(p);
        self.data[i] = v;
    }

    /// Raw data slice (z fastest within storage region).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data slice.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Fill every cell (ghosts included) with `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Copy values over `src_window ∩ both fields' storage` from `src`.
    /// The window is in shared (same-level) coordinates.
    ///
    /// Row-sliced: the window is walked one z-contiguous row at a time and
    /// each row moves with a single `copy_from_slice`, so the 3D→1D index
    /// math is amortized to once per row. Bit-identical to
    /// [`reference::copy_from`].
    pub fn copy_from(&mut self, src: &Field3, window: &Region) {
        let w = window.intersect(&self.storage).intersect(&src.storage);
        if w.is_empty() {
            return;
        }
        for x in w.lo.x..w.hi.x {
            for y in w.lo.y..w.hi.y {
                let dr = self.storage.row_range(x, y, w.lo.z, w.hi.z);
                let sr = src.storage.row_range(x, y, w.lo.z, w.hi.z);
                self.data[dr].copy_from_slice(&src.data[sr]);
            }
        }
    }

    /// Sum of interior values. Accumulated in the same cell order as the
    /// per-cell reference, so the result is bit-identical.
    pub fn interior_sum(&self) -> f64 {
        let int = self.interior;
        let mut acc = 0.0;
        for x in int.lo.x..int.hi.x {
            for y in int.lo.y..int.hi.y {
                for &v in &self.data[self.storage.row_range(x, y, int.lo.z, int.hi.z)] {
                    acc += v;
                }
            }
        }
        acc
    }

    /// Maximum absolute interior value.
    pub fn interior_max_abs(&self) -> f64 {
        let int = self.interior;
        let mut m = 0.0f64;
        for x in int.lo.x..int.hi.x {
            for y in int.lo.y..int.hi.y {
                for &v in &self.data[self.storage.row_range(x, y, int.lo.z, int.hi.z)] {
                    m = f64::max(m, v.abs());
                }
            }
        }
        m
    }

    /// L2 norm of interior values.
    pub fn interior_l2(&self) -> f64 {
        let int = self.interior;
        let mut acc = 0.0;
        for x in int.lo.x..int.hi.x {
            for y in int.lo.y..int.hi.y {
                for &v in &self.data[self.storage.row_range(x, y, int.lo.z, int.hi.z)] {
                    acc += v * v;
                }
            }
        }
        acc.sqrt()
    }

    /// Apply `f` to every interior cell.
    pub fn map_interior(&mut self, mut f: impl FnMut(IVec3, f64) -> f64) {
        let int = self.interior;
        for x in int.lo.x..int.hi.x {
            for y in int.lo.y..int.hi.y {
                let r = self.storage.row_range(x, y, int.lo.z, int.hi.z);
                for (k, v) in self.data[r].iter_mut().enumerate() {
                    *v = f(crate::index::ivec3(x, y, int.lo.z + k as i64), *v);
                }
            }
        }
    }

    /// Extrapolate ghost zones from the nearest interior cell (zero-gradient /
    /// outflow physical boundary). Only cells outside the interior are
    /// touched.
    ///
    /// Runs in three sweeps — z-row end fills, then y-edge row copies, then
    /// whole x-plane copies — touching only the ghost shell instead of
    /// clamping every storage cell. Each later sweep reads values an earlier
    /// sweep already clamped, which composes to exactly the per-component
    /// clamp of the per-cell form: bit-identical to
    /// [`reference::fill_ghosts_zero_gradient`] (golden test pins it).
    pub fn fill_ghosts_zero_gradient(&mut self) {
        if self.ghost == 0 {
            return;
        }
        let int = self.interior;
        let sto = self.storage;
        let g = self.ghost as usize;
        // 1. z ghosts of every interior (x, y) row: copy the row's first and
        //    last interior value outward.
        for x in int.lo.x..int.hi.x {
            for y in int.lo.y..int.hi.y {
                let lo = self.data[sto.linear_index(crate::index::ivec3(x, y, int.lo.z))];
                let hi = self.data[sto.linear_index(crate::index::ivec3(x, y, int.hi.z - 1))];
                self.data[sto.row_range(x, y, sto.lo.z, int.lo.z)].fill(lo);
                self.data[sto.row_range(x, y, int.hi.z, sto.hi.z)].fill(hi);
            }
        }
        // 2. y ghosts (z ghosts included): copy the full edge rows at
        //    y = int.lo.y / int.hi.y − 1, which step 1 already clamped in z.
        let row_len = (sto.hi.z - sto.lo.z) as usize;
        for x in int.lo.x..int.hi.x {
            let lo_src = sto.row_range(x, int.lo.y, sto.lo.z, sto.hi.z);
            for dy in 1..=g as i64 {
                let dst = sto.linear_index(crate::index::ivec3(x, int.lo.y - dy, sto.lo.z));
                self.data.copy_within(lo_src.clone(), dst);
            }
            let hi_src = sto.row_range(x, int.hi.y - 1, sto.lo.z, sto.hi.z);
            for dy in 0..g as i64 {
                let dst = sto.linear_index(crate::index::ivec3(x, int.hi.y + dy, sto.lo.z));
                self.data.copy_within(hi_src.clone(), dst);
            }
        }
        // 3. x ghosts: each ghost plane is one contiguous block copied from
        //    the edge interior plane, which steps 1–2 already clamped.
        let plane_len = (sto.hi.y - sto.lo.y) as usize * row_len;
        let lo_src = sto.linear_index(crate::index::ivec3(int.lo.x, sto.lo.y, sto.lo.z));
        for dx in 1..=g as i64 {
            let dst = sto.linear_index(crate::index::ivec3(int.lo.x - dx, sto.lo.y, sto.lo.z));
            self.data.copy_within(lo_src..lo_src + plane_len, dst);
        }
        let hi_src = sto.linear_index(crate::index::ivec3(int.hi.x - 1, sto.lo.y, sto.lo.z));
        for dx in 0..g as i64 {
            let dst = sto.linear_index(crate::index::ivec3(int.hi.x + dx, sto.lo.y, sto.lo.z));
            self.data.copy_within(hi_src..hi_src + plane_len, dst);
        }
    }
}

/// Per-cell reference implementations of the row-sliced kernels above.
///
/// These are the naive `Region::linear_index`-per-cell versions the
/// optimized kernels replaced; they are retained (and exported, so
/// cross-crate golden tests can reach them) purely as bit-identity oracles.
/// Production code must call the `Field3` methods instead.
pub mod reference {
    use super::*;

    /// Reference for [`Field3::copy_from`].
    pub fn copy_from(dst: &mut Field3, src: &Field3, window: &Region) {
        let w = window.intersect(&dst.storage).intersect(&src.storage);
        for p in w.iter_cells() {
            let v = src.get(p);
            dst.set(p, v);
        }
    }

    /// Reference for [`Field3::interior_sum`].
    pub fn interior_sum(f: &Field3) -> f64 {
        f.interior.iter_cells().map(|p| f.get(p)).sum()
    }

    /// Reference for [`Field3::interior_max_abs`].
    pub fn interior_max_abs(f: &Field3) -> f64 {
        f.interior
            .iter_cells()
            .map(|p| f.get(p).abs())
            .fold(0.0, f64::max)
    }

    /// Reference for [`Field3::interior_l2`].
    pub fn interior_l2(f: &Field3) -> f64 {
        f.interior
            .iter_cells()
            .map(|p| {
                let v = f.get(p);
                v * v
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Reference for [`Field3::map_interior`].
    pub fn map_interior(f: &mut Field3, mut g: impl FnMut(IVec3, f64) -> f64) {
        for p in f.interior.iter_cells() {
            let v = f.get(p);
            f.set(p, g(p, v));
        }
    }

    /// Reference for [`Field3::fill_ghosts_zero_gradient`]: clamp every
    /// storage cell to the interior box per component.
    pub fn fill_ghosts_zero_gradient(f: &mut Field3) {
        if f.ghost == 0 {
            return;
        }
        let int = f.interior;
        for p in f.storage.iter_cells() {
            if int.contains(p) {
                continue;
            }
            let clamped = p.max(int.lo).min(int.hi - IVec3::ONE);
            let v = f.get(clamped);
            f.set(p, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ivec3;
    use crate::region::region;

    #[test]
    fn zeros_and_shape() {
        let r = Region::cube(4);
        let f = Field3::zeros(r, 2);
        assert_eq!(f.interior(), r);
        assert_eq!(f.storage_region(), r.grow(2));
        assert_eq!(f.data().len(), 8 * 8 * 8);
        assert!(f.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut f = Field3::zeros(Region::cube(4), 1);
        f.set(ivec3(2, 3, 1), 7.5);
        assert_eq!(f.get(ivec3(2, 3, 1)), 7.5);
        // ghost cells addressable
        f.set(ivec3(-1, -1, -1), 1.25);
        assert_eq!(f.get(ivec3(-1, -1, -1)), 1.25);
        *f.at_mut(ivec3(0, 0, 0)) += 2.0;
        assert_eq!(f.get(ivec3(0, 0, 0)), 2.0);
    }

    #[test]
    fn copy_from_respects_window() {
        let mut a = Field3::zeros(Region::cube(4), 1);
        let mut b = Field3::zeros(region(ivec3(2, 0, 0), ivec3(6, 4, 4)), 1);
        b.fill(3.0);
        // copy b's values into a over their shared window
        let window = region(ivec3(2, 0, 0), ivec3(4, 4, 4));
        a.copy_from(&b, &window);
        assert_eq!(a.get(ivec3(2, 0, 0)), 3.0);
        assert_eq!(a.get(ivec3(3, 3, 3)), 3.0);
        assert_eq!(a.get(ivec3(1, 0, 0)), 0.0);
    }

    #[test]
    fn interior_reductions() {
        let mut f = Field3::constant(Region::cube(2), 1, 1.0);
        assert_eq!(f.interior_sum(), 8.0);
        f.set(ivec3(0, 0, 0), -5.0);
        assert_eq!(f.interior_max_abs(), 5.0);
        let l2 = f.interior_l2();
        assert!((l2 - (25.0f64 + 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn zero_gradient_ghosts() {
        let mut f = Field3::zeros(Region::cube(2), 1);
        f.map_interior(|p, _| (p.x * 4 + p.y * 2 + p.z) as f64);
        f.fill_ghosts_zero_gradient();
        // corner ghost copies nearest interior corner
        assert_eq!(f.get(ivec3(-1, -1, -1)), f.get(ivec3(0, 0, 0)));
        assert_eq!(f.get(ivec3(2, 2, 2)), f.get(ivec3(1, 1, 1)));
        // face ghost copies adjacent interior cell
        assert_eq!(f.get(ivec3(-1, 0, 1)), f.get(ivec3(0, 0, 1)));
    }

    #[test]
    #[should_panic]
    fn empty_interior_panics() {
        let _ = Field3::zeros(Region::EMPTY, 1);
    }

    /// Deterministic pseudo-random fill (LCG) so golden comparisons cover
    /// irregular data without a rand dependency.
    fn scrambled(interior: Region, ghost: i64, seed: u64) -> Field3 {
        let mut f = Field3::zeros(interior, ghost);
        let mut s = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        for v in f.data_mut() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *v = ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
        }
        f
    }

    #[test]
    fn copy_from_empty_intersection_is_noop() {
        let mut a = scrambled(Region::cube(4), 1, 1);
        let b = scrambled(region(ivec3(20, 20, 20), ivec3(24, 24, 24)), 1, 2);
        let before = a.clone();
        // window overlaps neither storage pair: src and dst are disjoint
        a.copy_from(&b, &region(ivec3(8, 8, 8), ivec3(12, 12, 12)));
        assert_eq!(a, before);
        // window non-empty but src storage disjoint from dst storage
        a.copy_from(&b, &region(ivec3(20, 20, 20), ivec3(24, 24, 24)));
        assert_eq!(a, before);
        // explicitly empty window
        a.copy_from(&b, &Region::EMPTY);
        assert_eq!(a, before);
    }

    #[test]
    fn copy_from_window_entirely_in_ghost_shell() {
        // dst interior [0,4)^3 ghost 2 -> storage [-2,6)^3; window sits in the
        // low-corner ghost shell only
        let mut a = Field3::zeros(Region::cube(4), 2);
        let b = Field3::constant(region(ivec3(-4, -4, -4), ivec3(2, 2, 2)), 0, 9.0);
        let window = region(ivec3(-2, -2, -2), ivec3(0, 0, 0));
        a.copy_from(&b, &window);
        assert_eq!(a.get(ivec3(-1, -1, -1)), 9.0);
        assert_eq!(a.get(ivec3(-2, -2, -2)), 9.0);
        // interior untouched
        assert_eq!(a.get(ivec3(0, 0, 0)), 0.0);
        assert_eq!(a.interior_sum(), 0.0);
    }

    #[test]
    fn copy_from_window_exceeding_both_storages_clips() {
        let mut a = scrambled(Region::cube(4), 1, 3);
        let b = scrambled(region(ivec3(2, 0, 0), ivec3(8, 4, 4)), 1, 4);
        let mut a_ref = a.clone();
        // window vastly larger than either storage: must clip to the shared box
        let huge = region(ivec3(-100, -100, -100), ivec3(100, 100, 100));
        a.copy_from(&b, &huge);
        reference::copy_from(&mut a_ref, &b, &huge);
        assert_eq!(a, a_ref);
        // clipped region is storage(a) ∩ storage(b)
        let shared = a.storage_region().intersect(&b.storage_region());
        assert!(!shared.is_empty());
        for p in shared.iter_cells() {
            assert_eq!(a.get(p), b.get(p));
        }
    }

    #[test]
    fn ghost_fill_matches_reference_bitwise() {
        for (seed, ghost) in [(11u64, 1i64), (12, 2), (13, 3)] {
            // non-cubic, off-origin interior so every axis differs
            let r = region(ivec3(-2, 3, 1), ivec3(3, 10, 12));
            let mut a = scrambled(r, ghost, seed);
            let mut b = a.clone();
            a.fill_ghosts_zero_gradient();
            reference::fill_ghosts_zero_gradient(&mut b);
            let bits = |f: &Field3| -> Vec<u64> { f.data().iter().map(|v| v.to_bits()).collect() };
            assert_eq!(bits(&a), bits(&b), "seed {seed} ghost {ghost}");
        }
        // ghost 0 is a no-op on both
        let mut a = scrambled(Region::cube(4), 0, 14);
        let before = a.clone();
        a.fill_ghosts_zero_gradient();
        assert_eq!(a, before);
    }

    #[test]
    fn row_sliced_kernels_match_reference_bitwise() {
        for (seed, ghost) in [(1u64, 0i64), (2, 1), (3, 2)] {
            let r = region(ivec3(-1, 2, 3), ivec3(6, 9, 11));
            let f = scrambled(r, ghost, seed);
            assert_eq!(
                f.interior_sum().to_bits(),
                reference::interior_sum(&f).to_bits()
            );
            assert_eq!(
                f.interior_max_abs().to_bits(),
                reference::interior_max_abs(&f).to_bits()
            );
            assert_eq!(
                f.interior_l2().to_bits(),
                reference::interior_l2(&f).to_bits()
            );
            let g = |p: IVec3, v: f64| v * 1.7 + (p.x - p.y + 2 * p.z) as f64;
            let mut a = f.clone();
            let mut b = f.clone();
            a.map_interior(g);
            reference::map_interior(&mut b, g);
            assert_eq!(a, b);
            // copy_from over a partial window
            let src = scrambled(region(ivec3(2, 4, 5), ivec3(10, 12, 13)), ghost, seed + 9);
            let window = region(ivec3(3, 5, 6), ivec3(7, 8, 10));
            let mut c = f.clone();
            let mut d = f.clone();
            c.copy_from(&src, &window);
            reference::copy_from(&mut d, &src, &window);
            assert_eq!(c, d);
        }
    }
}
