//! Scalar field storage over a region, with ghost zones.
//!
//! A [`Field3`] owns an `f64` array covering `region.grow(ghost)`; the
//! *interior* is `region` and the surrounding shell of width `ghost` holds
//! boundary data copied from siblings or interpolated from the parent.

use crate::index::IVec3;
use crate::region::Region;
use serde::{Deserialize, Serialize};

/// A 3-D scalar field over `interior.grow(ghost)` cells.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Field3 {
    interior: Region,
    ghost: i64,
    storage: Region,
    data: Vec<f64>,
}

impl Field3 {
    /// Allocate a zero-filled field over `interior` with `ghost` ghost cells.
    pub fn zeros(interior: Region, ghost: i64) -> Self {
        assert!(ghost >= 0);
        assert!(!interior.is_empty(), "field over empty region");
        let storage = interior.grow(ghost);
        let data = vec![0.0; storage.cells() as usize];
        Field3 {
            interior,
            ghost,
            storage,
            data,
        }
    }

    /// Allocate with every cell (ghosts included) set to `v`.
    pub fn constant(interior: Region, ghost: i64, v: f64) -> Self {
        let mut f = Self::zeros(interior, ghost);
        f.data.fill(v);
        f
    }

    /// The interior region this field is defined on.
    pub fn interior(&self) -> Region {
        self.interior
    }

    /// Ghost-zone width.
    pub fn ghost(&self) -> i64 {
        self.ghost
    }

    /// The full storage region including ghosts.
    pub fn storage_region(&self) -> Region {
        self.storage
    }

    /// Value at cell `p` (must be inside storage, ghosts included).
    #[inline]
    pub fn get(&self, p: IVec3) -> f64 {
        self.data[self.storage.linear_index(p)]
    }

    /// Mutable access to cell `p`.
    #[inline]
    pub fn at_mut(&mut self, p: IVec3) -> &mut f64 {
        let i = self.storage.linear_index(p);
        &mut self.data[i]
    }

    /// Set cell `p` to `v`.
    #[inline]
    pub fn set(&mut self, p: IVec3, v: f64) {
        let i = self.storage.linear_index(p);
        self.data[i] = v;
    }

    /// Raw data slice (z fastest within storage region).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data slice.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Fill every cell (ghosts included) with `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Copy values over `src_window ∩ both fields' storage` from `src`.
    /// The window is in shared (same-level) coordinates.
    pub fn copy_from(&mut self, src: &Field3, window: &Region) {
        let w = window
            .intersect(&self.storage)
            .intersect(&src.storage);
        for p in w.iter_cells() {
            let v = src.get(p);
            self.set(p, v);
        }
    }

    /// Sum of interior values.
    pub fn interior_sum(&self) -> f64 {
        self.interior.iter_cells().map(|p| self.get(p)).sum()
    }

    /// Maximum absolute interior value.
    pub fn interior_max_abs(&self) -> f64 {
        self.interior
            .iter_cells()
            .map(|p| self.get(p).abs())
            .fold(0.0, f64::max)
    }

    /// L2 norm of interior values.
    pub fn interior_l2(&self) -> f64 {
        self.interior
            .iter_cells()
            .map(|p| {
                let v = self.get(p);
                v * v
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Apply `f` to every interior cell.
    pub fn map_interior(&mut self, mut f: impl FnMut(IVec3, f64) -> f64) {
        for p in self.interior.iter_cells() {
            let v = self.get(p);
            self.set(p, f(p, v));
        }
    }

    /// Extrapolate ghost zones from the nearest interior cell (zero-gradient /
    /// outflow physical boundary). Only cells outside the interior are
    /// touched.
    pub fn fill_ghosts_zero_gradient(&mut self) {
        if self.ghost == 0 {
            return;
        }
        let int = self.interior;
        for p in self.storage.iter_cells() {
            if int.contains(p) {
                continue;
            }
            let clamped = p.max(int.lo).min(int.hi - IVec3::ONE);
            let v = self.get(clamped);
            self.set(p, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ivec3;
    use crate::region::region;

    #[test]
    fn zeros_and_shape() {
        let r = Region::cube(4);
        let f = Field3::zeros(r, 2);
        assert_eq!(f.interior(), r);
        assert_eq!(f.storage_region(), r.grow(2));
        assert_eq!(f.data().len(), 8 * 8 * 8);
        assert!(f.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut f = Field3::zeros(Region::cube(4), 1);
        f.set(ivec3(2, 3, 1), 7.5);
        assert_eq!(f.get(ivec3(2, 3, 1)), 7.5);
        // ghost cells addressable
        f.set(ivec3(-1, -1, -1), 1.25);
        assert_eq!(f.get(ivec3(-1, -1, -1)), 1.25);
        *f.at_mut(ivec3(0, 0, 0)) += 2.0;
        assert_eq!(f.get(ivec3(0, 0, 0)), 2.0);
    }

    #[test]
    fn copy_from_respects_window() {
        let mut a = Field3::zeros(Region::cube(4), 1);
        let mut b = Field3::zeros(region(ivec3(2, 0, 0), ivec3(6, 4, 4)), 1);
        b.fill(3.0);
        // copy b's values into a over their shared window
        let window = region(ivec3(2, 0, 0), ivec3(4, 4, 4));
        a.copy_from(&b, &window);
        assert_eq!(a.get(ivec3(2, 0, 0)), 3.0);
        assert_eq!(a.get(ivec3(3, 3, 3)), 3.0);
        assert_eq!(a.get(ivec3(1, 0, 0)), 0.0);
    }

    #[test]
    fn interior_reductions() {
        let mut f = Field3::constant(Region::cube(2), 1, 1.0);
        assert_eq!(f.interior_sum(), 8.0);
        f.set(ivec3(0, 0, 0), -5.0);
        assert_eq!(f.interior_max_abs(), 5.0);
        let l2 = f.interior_l2();
        assert!((l2 - (25.0f64 + 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn zero_gradient_ghosts() {
        let mut f = Field3::zeros(Region::cube(2), 1);
        f.map_interior(|p, _| (p.x * 4 + p.y * 2 + p.z) as f64);
        f.fill_ghosts_zero_gradient();
        // corner ghost copies nearest interior corner
        assert_eq!(f.get(ivec3(-1, -1, -1)), f.get(ivec3(0, 0, 0)));
        assert_eq!(f.get(ivec3(2, 2, 2)), f.get(ivec3(1, 1, 1)));
        // face ghost copies adjacent interior cell
        assert_eq!(f.get(ivec3(-1, 0, 1)), f.get(ivec3(0, 0, 1)));
    }

    #[test]
    #[should_panic]
    fn empty_interior_panics() {
        let _ = Field3::zeros(Region::EMPTY, 1);
    }
}
