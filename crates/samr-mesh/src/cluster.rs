//! Berger–Rigoutsos point clustering: turning flagged cells into a small set
//! of efficient rectangular subgrid regions.
//!
//! This is the standard SAMR grid-generation algorithm: take the bounding box
//! of the flags; if its fill ratio meets the efficiency target, accept it;
//! otherwise cut it — at a hole (zero plane of the flag *signature*) if one
//! exists, else at the strongest inflection of the signature's second
//! difference — and recurse on both halves.

use crate::flag::FlagField;
use crate::region::Region;

/// Tuning for the clustering algorithm.
#[derive(Clone, Copy, Debug)]
pub struct ClusterParams {
    /// Minimum fraction of flagged cells a produced box must contain.
    pub min_efficiency: f64,
    /// Boxes with at most this many cells are accepted regardless of
    /// efficiency (avoids shredding small features).
    pub min_box_cells: i64,
    /// Hard cap on recursion depth (safety net; never hit in practice).
    pub max_depth: usize,
    /// Maximum cells per produced box; larger accepted boxes are bisected so
    /// the load balancer has movable units.
    pub max_box_cells: i64,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            min_efficiency: 0.7,
            min_box_cells: 8,
            max_depth: 64,
            max_box_cells: i64::MAX,
        }
    }
}

/// Cluster the flagged cells of `flags` into rectangular regions.
///
/// ```
/// use samr_mesh::{berger_rigoutsos, ClusterParams, FlagField, Region, ivec3};
/// let mut flags = FlagField::new(Region::cube(16));
/// for p in Region::cube(4).iter_cells() {
///     flags.set(p + ivec3(2, 2, 2), true);
/// }
/// let boxes = berger_rigoutsos(&flags, &ClusterParams::default());
/// assert_eq!(boxes.len(), 1);
/// assert_eq!(boxes[0].cells(), 64);
/// ```
///
/// Guarantees:
/// * every flagged cell is inside exactly one returned region,
/// * returned regions are pairwise disjoint and lie within `flags.region()`,
/// * each region meets the efficiency target unless it is at or below
///   `min_box_cells` or the depth cap was reached.
pub fn berger_rigoutsos(flags: &FlagField, params: &ClusterParams) -> Vec<Region> {
    let mut out = Vec::new();
    let bbox = flags.bounding_box();
    if bbox.is_empty() {
        return out;
    }
    cluster_rec(flags, bbox, params, 0, &mut out);
    // Enforce the maximum box size by bisecting oversized accepted boxes.
    let mut sized = Vec::with_capacity(out.len());
    for r in out {
        push_bounded(r, params.max_box_cells, &mut sized);
    }
    sized
}

fn push_bounded(r: Region, max_cells: i64, out: &mut Vec<Region>) {
    if r.cells() <= max_cells || r.cells() <= 1 {
        out.push(r);
    } else {
        let (a, b) = r.bisect();
        if a.is_empty() || b.is_empty() {
            out.push(r);
        } else {
            push_bounded(a, max_cells, out);
            push_bounded(b, max_cells, out);
        }
    }
}

fn cluster_rec(
    flags: &FlagField,
    bbox: Region,
    params: &ClusterParams,
    depth: usize,
    out: &mut Vec<Region>,
) {
    let nflag = flags.count_in(&bbox);
    if nflag == 0 {
        return;
    }
    let eff = nflag as f64 / bbox.cells() as f64;
    if eff >= params.min_efficiency
        || bbox.cells() <= params.min_box_cells
        || depth >= params.max_depth
    {
        out.push(bbox);
        return;
    }

    // Signatures: per-plane flag counts along each axis.
    let sig = signatures(flags, &bbox);

    // 1) Prefer a cut at an interior zero-signature plane (a hole).
    if let Some((axis, cut)) = find_hole(&sig, &bbox) {
        let (a, b) = bbox.split_at(axis, cut);
        cluster_tight(flags, a, params, depth + 1, out);
        cluster_tight(flags, b, params, depth + 1, out);
        return;
    }

    // 2) Otherwise cut at the strongest inflection of the second difference.
    if let Some((axis, cut)) = find_inflection(&sig, &bbox) {
        let (a, b) = bbox.split_at(axis, cut);
        if !a.is_empty() && !b.is_empty() {
            cluster_tight(flags, a, params, depth + 1, out);
            cluster_tight(flags, b, params, depth + 1, out);
            return;
        }
    }

    // 3) Fall back to bisection along the longest axis.
    let (a, b) = bbox.bisect();
    if a.is_empty() || b.is_empty() {
        out.push(bbox); // cannot split a 1-cell-thick box further
        return;
    }
    cluster_tight(flags, a, params, depth + 1, out);
    cluster_tight(flags, b, params, depth + 1, out);
}

/// Recurse on the tight bounding box of the flags inside `window`.
fn cluster_tight(
    flags: &FlagField,
    window: Region,
    params: &ClusterParams,
    depth: usize,
    out: &mut Vec<Region>,
) {
    let tight = tight_bbox(flags, &window);
    if !tight.is_empty() {
        cluster_rec(flags, tight, params, depth, out);
    }
}

fn tight_bbox(flags: &FlagField, window: &Region) -> Region {
    use crate::index::{ivec3, IVec3};
    let w = window.intersect(&flags.region());
    let mut lo = ivec3(i64::MAX, i64::MAX, i64::MAX);
    let mut hi = ivec3(i64::MIN, i64::MIN, i64::MIN);
    let mut any = false;
    for p in w.iter_cells() {
        if flags.get(p) {
            any = true;
            lo = lo.min(p);
            hi = hi.max(p + IVec3::ONE);
        }
    }
    if any {
        Region { lo, hi }
    } else {
        Region::EMPTY
    }
}

/// Per-axis signatures: `sig[axis][i]` = number of flags in plane
/// `lo[axis] + i`.
fn signatures(flags: &FlagField, bbox: &Region) -> [Vec<i64>; 3] {
    let s = bbox.size();
    let mut sig = [
        vec![0i64; s.x as usize],
        vec![0i64; s.y as usize],
        vec![0i64; s.z as usize],
    ];
    for p in bbox.iter_cells() {
        if flags.get(p) {
            sig[0][(p.x - bbox.lo.x) as usize] += 1;
            sig[1][(p.y - bbox.lo.y) as usize] += 1;
            sig[2][(p.z - bbox.lo.z) as usize] += 1;
        }
    }
    sig
}

/// Find an interior plane with zero signature, preferring the cut closest to
/// the box middle. Returns `(axis, level-local cut coordinate)`.
fn find_hole(sig: &[Vec<i64>; 3], bbox: &Region) -> Option<(usize, i64)> {
    let mut best: Option<(usize, i64, i64)> = None; // (axis, cut, dist-from-mid)
    for axis in 0..3 {
        let n = sig[axis].len() as i64;
        let mid = n / 2;
        for i in 1..(n - 1) {
            if sig[axis][i as usize] == 0 {
                let d = (i - mid).abs();
                let cut = bbox.lo[axis] + i;
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((axis, cut, d));
                }
            }
        }
    }
    best.map(|(a, c, _)| (a, c))
}

/// Find the cut at the largest magnitude sign change of the second difference
/// Δ²σ, preferring cuts nearer the middle on ties. Cut index is between
/// planes `i` and `i+1` where the sign change of Δ² is strongest.
fn find_inflection(sig: &[Vec<i64>; 3], bbox: &Region) -> Option<(usize, i64)> {
    let mut best: Option<(usize, i64, i64, i64)> = None; // (axis, cut, strength, dist)
    for axis in 0..3 {
        let s = &sig[axis];
        let n = s.len() as i64;
        if n < 4 {
            continue;
        }
        // second differences d[i] = s[i-1] - 2 s[i] + s[i+1], defined for 1..n-1
        let d: Vec<i64> = (1..(n - 1) as usize)
            .map(|i| s[i - 1] - 2 * s[i] + s[i + 1])
            .collect();
        let mid = n / 2;
        for i in 0..d.len().saturating_sub(1) {
            if (d[i] >= 0) != (d[i + 1] >= 0) {
                let strength = (d[i] - d[i + 1]).abs();
                // cut between planes (i+1) and (i+2) in 0-based plane indices
                let plane = i as i64 + 2;
                if plane <= 0 || plane >= n {
                    continue;
                }
                let dist = (plane - mid).abs();
                let better = match best {
                    None => true,
                    Some((_, _, bs, bd)) => strength > bs || (strength == bs && dist < bd),
                };
                if better {
                    best = Some((axis, bbox.lo[axis] + plane, strength, dist));
                }
            }
        }
    }
    best.map(|(a, c, _, _)| (a, c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ivec3;
    use crate::region::region;

    fn params() -> ClusterParams {
        ClusterParams {
            min_efficiency: 0.7,
            min_box_cells: 2,
            max_depth: 64,
            max_box_cells: i64::MAX,
        }
    }

    fn check_cover(flags: &FlagField, boxes: &[Region]) {
        // every flag covered exactly once; boxes disjoint and inside region
        for p in flags.region().iter_cells() {
            let n = boxes.iter().filter(|b| b.contains(p)).count();
            if flags.get(p) {
                assert_eq!(n, 1, "flag at {p:?} covered {n} times");
            } else {
                assert!(n <= 1, "cell {p:?} covered {n} times");
            }
        }
        for (i, a) in boxes.iter().enumerate() {
            assert!(flags.region().contains_region(a));
            for b in &boxes[i + 1..] {
                assert!(!a.overlaps(b), "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn empty_flags_no_boxes() {
        let flags = FlagField::new(Region::cube(8));
        assert!(berger_rigoutsos(&flags, &params()).is_empty());
    }

    #[test]
    fn single_blob_single_box() {
        let mut flags = FlagField::new(Region::cube(16));
        for p in region(ivec3(3, 3, 3), ivec3(7, 7, 7)).iter_cells() {
            flags.set(p, true);
        }
        let boxes = berger_rigoutsos(&flags, &params());
        assert_eq!(boxes, vec![region(ivec3(3, 3, 3), ivec3(7, 7, 7))]);
        check_cover(&flags, &boxes);
    }

    #[test]
    fn two_separated_blobs_two_boxes() {
        let mut flags = FlagField::new(Region::cube(16));
        for p in region(ivec3(0, 0, 0), ivec3(3, 3, 3)).iter_cells() {
            flags.set(p, true);
        }
        for p in region(ivec3(10, 10, 10), ivec3(14, 14, 14)).iter_cells() {
            flags.set(p, true);
        }
        let boxes = berger_rigoutsos(&flags, &params());
        assert_eq!(boxes.len(), 2);
        check_cover(&flags, &boxes);
        let eff: f64 = flags.count() as f64
            / boxes.iter().map(|b| b.cells()).sum::<i64>() as f64;
        assert!(eff > 0.99, "efficiency {eff}");
    }

    #[test]
    fn l_shape_split_efficiently() {
        // An L-shaped flag set cannot be covered efficiently by one box.
        let mut flags = FlagField::new(Region::cube(16));
        for p in region(ivec3(0, 0, 0), ivec3(12, 2, 2)).iter_cells() {
            flags.set(p, true);
        }
        for p in region(ivec3(0, 2, 0), ivec3(2, 12, 2)).iter_cells() {
            flags.set(p, true);
        }
        let boxes = berger_rigoutsos(&flags, &params());
        check_cover(&flags, &boxes);
        let covered: i64 = boxes.iter().map(|b| b.cells()).sum();
        let eff = flags.count() as f64 / covered as f64;
        assert!(eff >= 0.7, "efficiency {eff} with {} boxes", boxes.len());
        assert!(boxes.len() >= 2);
    }

    #[test]
    fn diagonal_flags_meet_efficiency() {
        let mut flags = FlagField::new(Region::cube(12));
        for i in 0..12 {
            flags.set(ivec3(i, i, i), true);
        }
        let p = params();
        let boxes = berger_rigoutsos(&flags, &p);
        check_cover(&flags, &boxes);
        for b in &boxes {
            let eff = flags.count_in(b) as f64 / b.cells() as f64;
            assert!(
                eff >= p.min_efficiency || b.cells() <= p.min_box_cells,
                "box {b:?} efficiency {eff}"
            );
        }
    }

    #[test]
    fn tilted_plane_clusters_like_shockpool3d() {
        // flags on a tilted plane x + y/2 ≈ const — the ShockPool3D pattern
        let mut flags = FlagField::new(Region::cube(16));
        for p in Region::cube(16).iter_cells() {
            if (2 * p.x + p.y - 16).abs() <= 1 {
                flags.set(p, true);
            }
        }
        let boxes = berger_rigoutsos(&flags, &params());
        check_cover(&flags, &boxes);
        assert!(!boxes.is_empty());
    }

    #[test]
    fn max_box_cells_bounds_output() {
        let mut flags = FlagField::new(Region::cube(16));
        for p in Region::cube(16).iter_cells() {
            flags.set(p, true);
        }
        let mut p = params();
        p.max_box_cells = 512;
        let boxes = berger_rigoutsos(&flags, &p);
        check_cover(&flags, &boxes);
        assert!(boxes.len() >= 8);
        for b in &boxes {
            assert!(b.cells() <= 512);
        }
    }

    #[test]
    fn single_cell_flag() {
        let mut flags = FlagField::new(Region::cube(8));
        flags.set(ivec3(5, 2, 7), true);
        let boxes = berger_rigoutsos(&flags, &params());
        assert_eq!(boxes, vec![region(ivec3(5, 2, 7), ivec3(6, 3, 8))]);
    }
}
