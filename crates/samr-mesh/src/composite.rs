//! Composite-grid queries: read the hierarchy's solution "as one field",
//! always answering from the finest grid covering a location. Used by
//! validation, analysis, and visualization exports.

use crate::hierarchy::GridHierarchy;
use crate::index::IVec3;

/// The finest level (and value of `field`) covering level-0 cell `p0`.
/// Returns `None` when no level-0 grid contains `p0`.
pub fn finest_value_at(hier: &GridHierarchy, p0: IVec3, field: usize) -> Option<(usize, f64)> {
    let r = hier.refine_factor();
    let mut best: Option<(usize, f64)> = None;
    let mut p = p0;
    for level in 0..hier.num_levels() {
        let mut found = false;
        for &id in hier.level_ids(level) {
            let patch = hier.patch(id);
            if patch.region.contains(p) {
                best = Some((level, patch.fields[field].get(p)));
                found = true;
                break;
            }
        }
        if level == 0 && !found {
            return None;
        }
        // descend to the low-corner child cell (fine patches produced by
        // clustering are r-aligned, so the corner is representative; patches
        // split at unaligned planes may be sampled on either side)
        p = p * r;
    }
    best
}

/// Level-0-resolution snapshot of `field`: for every level-0 cell, the value
/// from the finest covering grid (conservatively averaged data is already
/// present at level 0 after restriction, so this mainly differs mid-step or
/// for non-restricted fields). Row-major z-fastest over the domain.
pub fn composite_level0(hier: &GridHierarchy, field: usize) -> Vec<f64> {
    let domain = hier.domain();
    let mut out = Vec::with_capacity(domain.cells() as usize);
    for p in domain.iter_cells() {
        let v = finest_value_at(hier, p, field).map(|(_, v)| v).unwrap_or(0.0);
        out.push(v);
    }
    out
}

/// Fraction of the level-0 domain covered by grids at `level` (projected
/// down) — the "refined fraction" curve analyses plot.
pub fn refined_fraction(hier: &GridHierarchy, level: usize) -> f64 {
    if level == 0 {
        let covered: i64 = hier.level_ids(0).iter().map(|&id| hier.patch(id).cells()).sum();
        return covered as f64 / hier.domain().cells() as f64;
    }
    let r = hier.refine_factor();
    let mut covered = 0i64;
    for &id in hier.level_ids(level) {
        let mut reg = hier.patch(id).region;
        for _ in 0..level {
            reg = reg.coarsen(r);
        }
        covered += reg.cells();
    }
    covered as f64 / hier.domain().cells() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivec3;
    use crate::region::{region, Region};

    fn two_level() -> GridHierarchy {
        let mut h = GridHierarchy::new(Region::cube(8), 2, 3, 1, 1);
        let root = h.insert_patch(0, Region::cube(8), None, 0);
        h.patch_mut(root).fields[0].fill(1.0);
        let child = h.insert_patch(1, region(ivec3(0, 0, 0), ivec3(8, 8, 8)), Some(root), 0);
        h.patch_mut(child).fields[0].fill(2.0);
        h
    }

    #[test]
    fn finest_value_prefers_fine_grid() {
        let h = two_level();
        // cell (1,1,1) at level 0 is covered by the child at level 1
        let (lvl, v) = finest_value_at(&h, ivec3(1, 1, 1), 0).unwrap();
        assert_eq!(lvl, 1);
        assert_eq!(v, 2.0);
        // cell (6,6,6) only by the root
        let (lvl, v) = finest_value_at(&h, ivec3(6, 6, 6), 0).unwrap();
        assert_eq!(lvl, 0);
        assert_eq!(v, 1.0);
    }

    #[test]
    fn outside_domain_is_none() {
        let h = two_level();
        assert!(finest_value_at(&h, ivec3(100, 0, 0), 0).is_none());
    }

    #[test]
    fn composite_snapshot_mixes_levels() {
        let h = two_level();
        let snap = composite_level0(&h, 0);
        assert_eq!(snap.len(), 512);
        let fines = snap.iter().filter(|&&v| v == 2.0).count();
        let coarses = snap.iter().filter(|&&v| v == 1.0).count();
        assert_eq!(fines, 64); // the refined octant (4^3 level-0 cells)
        assert_eq!(coarses, 512 - 64);
    }

    #[test]
    fn refined_fraction_values() {
        let h = two_level();
        assert!((refined_fraction(&h, 0) - 1.0).abs() < 1e-12);
        assert!((refined_fraction(&h, 1) - 64.0 / 512.0).abs() < 1e-12);
        assert_eq!(refined_fraction(&h, 2), 0.0);
    }
}
