//! Integer index vectors for 3-D structured grids.
//!
//! All mesh coordinates are *level-local integer cell indices*: at level `l`
//! one cell spans `h0 / r^l` in physical space, where `r` is the refinement
//! factor. Keeping indices integral makes region algebra exact and makes the
//! whole simulation deterministic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A 3-component integer vector used for cell indices and extents.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct IVec3 {
    pub x: i64,
    pub y: i64,
    pub z: i64,
}

impl fmt::Debug for IVec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl fmt::Display for IVec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

/// Shorthand constructor for [`IVec3`].
pub const fn ivec3(x: i64, y: i64, z: i64) -> IVec3 {
    IVec3 { x, y, z }
}

impl IVec3 {
    pub const ZERO: IVec3 = ivec3(0, 0, 0);
    pub const ONE: IVec3 = ivec3(1, 1, 1);

    /// All three components set to `v`.
    pub const fn splat(v: i64) -> Self {
        ivec3(v, v, v)
    }

    /// Component-wise minimum.
    pub fn min(self, o: Self) -> Self {
        ivec3(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    pub fn max(self, o: Self) -> Self {
        ivec3(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Product of the components; the cell count of an extent.
    ///
    /// Saturates instead of wrapping so pathological extents fail loudly in
    /// comparisons rather than silently aliasing.
    pub fn product(self) -> i64 {
        self.x.saturating_mul(self.y).saturating_mul(self.z)
    }

    /// `true` if every component of `self` is strictly less than `o`'s.
    pub fn all_lt(self, o: Self) -> bool {
        self.x < o.x && self.y < o.y && self.z < o.z
    }

    /// `true` if every component of `self` is less than or equal to `o`'s.
    pub fn all_le(self, o: Self) -> bool {
        self.x <= o.x && self.y <= o.y && self.z <= o.z
    }

    /// Floor division by a positive scalar (rounds toward negative infinity),
    /// the coarsening map for lower box corners.
    pub fn div_floor(self, d: i64) -> Self {
        debug_assert!(d > 0);
        ivec3(
            self.x.div_euclid(d),
            self.y.div_euclid(d),
            self.z.div_euclid(d),
        )
    }

    /// Ceiling division by a positive scalar, the coarsening map for upper
    /// (exclusive) box corners.
    pub fn div_ceil(self, d: i64) -> Self {
        debug_assert!(d > 0);
        ivec3(
            (self.x + d - 1).div_euclid(d),
            (self.y + d - 1).div_euclid(d),
            (self.z + d - 1).div_euclid(d),
        )
    }

    /// The axis (0 = x, 1 = y, 2 = z) with the largest component.
    pub fn longest_axis(self) -> usize {
        if self.x >= self.y && self.x >= self.z {
            0
        } else if self.y >= self.z {
            1
        } else {
            2
        }
    }

    /// Sum of components.
    pub fn sum(self) -> i64 {
        self.x + self.y + self.z
    }

    /// Component-wise absolute value.
    pub fn abs(self) -> Self {
        ivec3(self.x.abs(), self.y.abs(), self.z.abs())
    }
}

impl Index<usize> for IVec3 {
    type Output = i64;
    fn index(&self, i: usize) -> &i64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("IVec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for IVec3 {
    fn index_mut(&mut self, i: usize) -> &mut i64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("IVec3 index out of range: {i}"),
        }
    }
}

impl Add for IVec3 {
    type Output = IVec3;
    fn add(self, o: IVec3) -> IVec3 {
        ivec3(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for IVec3 {
    fn add_assign(&mut self, o: IVec3) {
        *self = *self + o;
    }
}

impl Sub for IVec3 {
    type Output = IVec3;
    fn sub(self, o: IVec3) -> IVec3 {
        ivec3(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for IVec3 {
    fn sub_assign(&mut self, o: IVec3) {
        *self = *self - o;
    }
}

impl Mul<i64> for IVec3 {
    type Output = IVec3;
    fn mul(self, s: i64) -> IVec3 {
        ivec3(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<i64> for IVec3 {
    type Output = IVec3;
    /// Truncating division; use [`IVec3::div_floor`]/[`IVec3::div_ceil`] for
    /// box-corner coarsening.
    fn div(self, s: i64) -> IVec3 {
        ivec3(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for IVec3 {
    type Output = IVec3;
    fn neg(self) -> IVec3 {
        ivec3(-self.x, -self.y, -self.z)
    }
}

/// The 6 face-neighbour offsets (±x, ±y, ±z).
pub const FACE_NEIGHBORS: [IVec3; 6] = [
    ivec3(-1, 0, 0),
    ivec3(1, 0, 0),
    ivec3(0, -1, 0),
    ivec3(0, 1, 0),
    ivec3(0, 0, -1),
    ivec3(0, 0, 1),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let a = ivec3(1, 2, 3);
        let b = ivec3(4, 5, 6);
        assert_eq!(a + b, ivec3(5, 7, 9));
        assert_eq!(b - a, ivec3(3, 3, 3));
        assert_eq!(a * 2, ivec3(2, 4, 6));
        assert_eq!(-a, ivec3(-1, -2, -3));
        assert_eq!(a.product(), 6);
        assert_eq!(a.sum(), 6);
    }

    #[test]
    fn min_max_component_wise() {
        let a = ivec3(1, 9, 3);
        let b = ivec3(4, 2, 8);
        assert_eq!(a.min(b), ivec3(1, 2, 3));
        assert_eq!(a.max(b), ivec3(4, 9, 8));
    }

    #[test]
    fn div_floor_rounds_toward_neg_infinity() {
        assert_eq!(ivec3(-3, -2, -1).div_floor(2), ivec3(-2, -1, -1));
        assert_eq!(ivec3(3, 2, 1).div_floor(2), ivec3(1, 1, 0));
    }

    #[test]
    fn div_ceil_rounds_toward_pos_infinity() {
        assert_eq!(ivec3(3, 2, 1).div_ceil(2), ivec3(2, 1, 1));
        assert_eq!(ivec3(-3, -2, -1).div_ceil(2), ivec3(-1, -1, 0));
        assert_eq!(ivec3(4, 4, 4).div_ceil(2), ivec3(2, 2, 2));
    }

    #[test]
    fn floor_ceil_consistent_with_refine() {
        // coarsen(refine(v)) must be the identity for both corner maps.
        for v in [ivec3(0, 1, 2), ivec3(-5, 7, 13)] {
            assert_eq!((v * 4).div_floor(4), v);
            assert_eq!((v * 4).div_ceil(4), v);
        }
    }

    #[test]
    fn longest_axis_picks_largest() {
        assert_eq!(ivec3(5, 1, 1).longest_axis(), 0);
        assert_eq!(ivec3(1, 5, 1).longest_axis(), 1);
        assert_eq!(ivec3(1, 1, 5).longest_axis(), 2);
        // ties prefer lower axis index
        assert_eq!(ivec3(5, 5, 5).longest_axis(), 0);
    }

    #[test]
    fn indexing_matches_fields() {
        let v = ivec3(7, 8, 9);
        assert_eq!(v[0], 7);
        assert_eq!(v[1], 8);
        assert_eq!(v[2], 9);
        let mut m = v;
        m[1] = 42;
        assert_eq!(m, ivec3(7, 42, 9));
    }

    #[test]
    fn comparisons() {
        assert!(ivec3(0, 0, 0).all_lt(ivec3(1, 1, 1)));
        assert!(!ivec3(0, 1, 0).all_lt(ivec3(1, 1, 1)));
        assert!(ivec3(1, 1, 1).all_le(ivec3(1, 1, 1)));
    }

    #[test]
    fn product_saturates() {
        let huge = IVec3::splat(i64::MAX / 2);
        assert_eq!(huge.product(), i64::MAX);
    }
}
