//! Refinement flagging: marking the cells of a patch that need finer
//! resolution, plus flag buffering.

use crate::field::Field3;
use crate::index::{ivec3, IVec3, FACE_NEIGHBORS};
use crate::region::Region;

/// A boolean mask over a region marking cells that require refinement.
#[derive(Clone, Debug)]
pub struct FlagField {
    region: Region,
    flags: Vec<bool>,
}

impl FlagField {
    /// All-clear flags over `region`.
    pub fn new(region: Region) -> Self {
        assert!(!region.is_empty());
        FlagField {
            region,
            flags: vec![false; region.cells() as usize],
        }
    }

    /// Region covered.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Is cell `p` flagged? Cells outside the region are unflagged.
    #[inline]
    pub fn get(&self, p: IVec3) -> bool {
        if !self.region.contains(p) {
            return false;
        }
        self.flags[self.region.linear_index(p)]
    }

    /// Set the flag of interior cell `p`.
    #[inline]
    pub fn set(&mut self, p: IVec3, v: bool) {
        let i = self.region.linear_index(p);
        self.flags[i] = v;
    }

    /// Number of flagged cells.
    pub fn count(&self) -> i64 {
        self.flags.iter().filter(|&&f| f).count() as i64
    }

    /// `true` if no cell is flagged.
    pub fn is_clear(&self) -> bool {
        self.count() == 0
    }

    /// Tight bounding box of flagged cells (`Region::EMPTY` when clear).
    pub fn bounding_box(&self) -> Region {
        let mut lo = ivec3(i64::MAX, i64::MAX, i64::MAX);
        let mut hi = ivec3(i64::MIN, i64::MIN, i64::MIN);
        let mut any = false;
        for p in self.region.iter_cells() {
            if self.get(p) {
                any = true;
                lo = lo.min(p);
                hi = hi.max(p + IVec3::ONE);
            }
        }
        if any {
            Region { lo, hi }
        } else {
            Region::EMPTY
        }
    }

    /// Count flagged cells within `window`.
    pub fn count_in(&self, window: &Region) -> i64 {
        window
            .intersect(&self.region)
            .iter_cells()
            .filter(|&p| self.get(p))
            .count() as i64
    }

    /// Expand every flag to its face neighbours, `buffer` times, clipped to
    /// the region. Buffering keeps features inside refined grids between
    /// regrids.
    pub fn buffer(&mut self, buffer: usize) {
        for _ in 0..buffer {
            let mut next = self.flags.clone();
            for p in self.region.iter_cells() {
                if !self.get(p) {
                    continue;
                }
                for d in FACE_NEIGHBORS {
                    let q = p + d;
                    if self.region.contains(q) {
                        next[self.region.linear_index(q)] = true;
                    }
                }
            }
            self.flags = next;
        }
    }

    /// OR another flag field (over the same region) into this one.
    pub fn union_with(&mut self, other: &FlagField) {
        assert_eq!(self.region, other.region, "flag regions differ");
        for (a, b) in self.flags.iter_mut().zip(&other.flags) {
            *a |= *b;
        }
    }
}

/// Refinement criteria applied to a patch's fields to produce flags.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RefineCriterion {
    /// Flag cells where the max absolute one-sided difference of field `field`
    /// over the 6 face neighbours exceeds `threshold`.
    Gradient { field: usize, threshold: f64 },
    /// Flag cells where field `field` exceeds `threshold`.
    Overdensity { field: usize, threshold: f64 },
    /// Flag cells where the relative slope (|Δu| / (|u| + eps)) exceeds
    /// `threshold` — scale-free shock detector.
    RelativeSlope { field: usize, threshold: f64, eps: f64 },
}

/// Row-based evaluation of the face-difference criteria for fields with at
/// least one ghost layer: every face neighbour of an interior cell is then
/// inside storage, so the per-cell containment checks vanish and the 3D→1D
/// index math reduces to six constant offsets applied along each z-row. The
/// neighbour fold runs in `FACE_NEIGHBORS` order, exactly like the per-cell
/// fallback in [`flag_cells`], so the produced flags are identical.
fn flag_face_diff(f: &Field3, flags: &mut FlagField, mut pred: impl FnMut(f64, f64) -> bool) {
    let interior = f.interior();
    let sto = f.storage_region();
    let sz = sto.hi.z - sto.lo.z;
    let sxy = (sto.hi.y - sto.lo.y) * sz;
    let offs: [i64; 6] = FACE_NEIGHBORS.map(|d| d.x * sxy + d.y * sz + d.z);
    let data = f.data();
    for x in interior.lo.x..interior.hi.x {
        for y in interior.lo.y..interior.hi.y {
            let base = sto.linear_index(ivec3(x, y, interior.lo.z)) as i64;
            for k in 0..interior.hi.z - interior.lo.z {
                let i = base + k;
                let u = data[i as usize];
                let mut g: f64 = 0.0;
                for off in offs {
                    g = g.max((data[(i + off) as usize] - u).abs());
                }
                if pred(g, u) {
                    flags.set(ivec3(x, y, interior.lo.z + k), true);
                }
            }
        }
    }
}

/// Evaluate `criteria` on `fields` (all over the same interior region) and
/// return the union of the produced flags.
pub fn flag_cells(fields: &[Field3], criteria: &[RefineCriterion]) -> FlagField {
    assert!(!fields.is_empty());
    let interior = fields[0].interior();
    let mut flags = FlagField::new(interior);
    for c in criteria {
        match *c {
            RefineCriterion::Gradient { field, threshold } => {
                let f = &fields[field];
                if f.ghost() >= 1 {
                    flag_face_diff(f, &mut flags, |g, _| g > threshold);
                    continue;
                }
                for p in interior.iter_cells() {
                    let u = f.get(p);
                    let mut g: f64 = 0.0;
                    for d in FACE_NEIGHBORS {
                        let q = p + d;
                        if f.storage_region().contains(q) {
                            g = g.max((f.get(q) - u).abs());
                        }
                    }
                    if g > threshold {
                        flags.set(p, true);
                    }
                }
            }
            RefineCriterion::Overdensity { field, threshold } => {
                let f = &fields[field];
                let sto = f.storage_region();
                let data = f.data();
                for x in interior.lo.x..interior.hi.x {
                    for y in interior.lo.y..interior.hi.y {
                        let row = sto.row_range(x, y, interior.lo.z, interior.hi.z);
                        for (k, &v) in data[row].iter().enumerate() {
                            if v > threshold {
                                flags.set(ivec3(x, y, interior.lo.z + k as i64), true);
                            }
                        }
                    }
                }
            }
            RefineCriterion::RelativeSlope { field, threshold, eps } => {
                let f = &fields[field];
                if f.ghost() >= 1 {
                    flag_face_diff(f, &mut flags, |g, u| g / (u.abs() + eps) > threshold);
                    continue;
                }
                for p in interior.iter_cells() {
                    let u = f.get(p);
                    let mut g: f64 = 0.0;
                    for d in FACE_NEIGHBORS {
                        let q = p + d;
                        if f.storage_region().contains(q) {
                            g = g.max((f.get(q) - u).abs());
                        }
                    }
                    if g / (u.abs() + eps) > threshold {
                        flags.set(p, true);
                    }
                }
            }
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::region;

    #[test]
    fn set_get_count() {
        let mut f = FlagField::new(Region::cube(4));
        assert!(f.is_clear());
        f.set(ivec3(1, 1, 1), true);
        f.set(ivec3(2, 3, 0), true);
        assert_eq!(f.count(), 2);
        assert!(f.get(ivec3(1, 1, 1)));
        assert!(!f.get(ivec3(0, 0, 0)));
        // outside region reads false
        assert!(!f.get(ivec3(-1, 0, 0)));
    }

    #[test]
    fn bounding_box_tight() {
        let mut f = FlagField::new(Region::cube(8));
        f.set(ivec3(2, 3, 4), true);
        f.set(ivec3(5, 3, 4), true);
        assert_eq!(
            f.bounding_box(),
            region(ivec3(2, 3, 4), ivec3(6, 4, 5))
        );
        let clear = FlagField::new(Region::cube(4));
        assert!(clear.bounding_box().is_empty());
    }

    #[test]
    fn row_based_criteria_match_per_cell_form() {
        let interior = region(ivec3(-2, 1, 0), ivec3(5, 7, 6));
        let mut f = Field3::zeros(interior, 1);
        let mut s = 99u64;
        for v in f.data_mut() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *v = ((s >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0;
        }
        let criteria = [
            RefineCriterion::Gradient { field: 0, threshold: 0.8 },
            RefineCriterion::RelativeSlope { field: 0, threshold: 0.5, eps: 1e-8 },
            RefineCriterion::Overdensity { field: 0, threshold: 1.2 },
        ];
        let fast = flag_cells(std::slice::from_ref(&f), &criteria);
        // the per-cell form the row kernels replaced
        let mut slow = FlagField::new(interior);
        for p in interior.iter_cells() {
            let u = f.get(p);
            let mut g: f64 = 0.0;
            for d in FACE_NEIGHBORS {
                g = g.max((f.get(p + d) - u).abs());
            }
            if g > 0.8 || g / (u.abs() + 1e-8) > 0.5 || u > 1.2 {
                slow.set(p, true);
            }
        }
        for p in interior.iter_cells() {
            assert_eq!(fast.get(p), slow.get(p), "at {p:?}");
        }
        assert!(fast.count() > 0, "scrambled field must flag something");
    }

    #[test]
    fn buffering_spreads_to_neighbors() {
        let mut f = FlagField::new(Region::cube(5));
        f.set(ivec3(2, 2, 2), true);
        f.buffer(1);
        assert_eq!(f.count(), 7); // center + 6 faces
        assert!(f.get(ivec3(1, 2, 2)));
        assert!(!f.get(ivec3(1, 1, 2))); // diagonal untouched
        f.buffer(1);
        assert!(f.get(ivec3(0, 2, 2)));
        assert!(f.get(ivec3(1, 1, 2)));
    }

    #[test]
    fn buffer_clips_at_region_edge() {
        let mut f = FlagField::new(Region::cube(2));
        f.set(ivec3(0, 0, 0), true);
        f.buffer(5);
        assert_eq!(f.count(), 8); // fills the whole 2^3 region, no panic
    }

    #[test]
    fn gradient_criterion_flags_jump() {
        // step in x: u = 0 for x<2, 10 for x>=2
        let mut fld = Field3::zeros(Region::cube(4), 1);
        fld.map_interior(|p, _| if p.x >= 2 { 10.0 } else { 0.0 });
        fld.fill_ghosts_zero_gradient();
        let flags = flag_cells(
            std::slice::from_ref(&fld),
            &[RefineCriterion::Gradient { field: 0, threshold: 5.0 }],
        );
        // cells adjacent to the jump plane flagged on both sides
        assert!(flags.get(ivec3(1, 0, 0)));
        assert!(flags.get(ivec3(2, 0, 0)));
        assert!(!flags.get(ivec3(0, 0, 0)));
        assert!(!flags.get(ivec3(3, 0, 0)));
    }

    #[test]
    fn overdensity_criterion() {
        let mut fld = Field3::zeros(Region::cube(3), 0);
        fld.set(ivec3(1, 1, 1), 4.0);
        let flags = flag_cells(
            std::slice::from_ref(&fld),
            &[RefineCriterion::Overdensity { field: 0, threshold: 2.0 }],
        );
        assert_eq!(flags.count(), 1);
        assert!(flags.get(ivec3(1, 1, 1)));
    }

    #[test]
    fn union_of_criteria() {
        let mut a = Field3::zeros(Region::cube(3), 0);
        a.set(ivec3(0, 0, 0), 9.0);
        let mut b = Field3::zeros(Region::cube(3), 0);
        b.set(ivec3(2, 2, 2), 9.0);
        let flags = flag_cells(
            &[a, b],
            &[
                RefineCriterion::Overdensity { field: 0, threshold: 5.0 },
                RefineCriterion::Overdensity { field: 1, threshold: 5.0 },
            ],
        );
        assert!(flags.get(ivec3(0, 0, 0)));
        assert!(flags.get(ivec3(2, 2, 2)));
        assert_eq!(flags.count(), 2);
    }

    #[test]
    fn union_with_merges() {
        let mut a = FlagField::new(Region::cube(2));
        let mut b = FlagField::new(Region::cube(2));
        a.set(ivec3(0, 0, 0), true);
        b.set(ivec3(1, 1, 1), true);
        a.union_with(&b);
        assert_eq!(a.count(), 2);
    }
}
