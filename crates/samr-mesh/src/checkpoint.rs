//! Checkpoint/restore of a grid hierarchy: serialize the full adaptive
//! state — structure, ownership, and solution data — and rebuild it exactly.

use crate::hierarchy::GridHierarchy;
use crate::patch::GridPatch;
use crate::region::Region;
use serde::{Deserialize, Serialize};

/// A serializable snapshot of a [`GridHierarchy`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HierarchySnapshot {
    pub refine_factor: i64,
    pub max_levels: usize,
    pub ghost: i64,
    pub nfields: usize,
    pub domain: Region,
    /// Patches in id order (ids are preserved across restore).
    pub patches: Vec<GridPatch>,
}

/// Capture the full state of `hier`.
pub fn snapshot(hier: &GridHierarchy) -> HierarchySnapshot {
    HierarchySnapshot {
        refine_factor: hier.refine_factor(),
        max_levels: hier.max_levels(),
        ghost: hier.ghost(),
        nfields: hier.nfields(),
        domain: hier.domain(),
        patches: hier.iter().cloned().collect(),
    }
}

/// Like [`snapshot`], but every cloned field's backing store is drawn from
/// `pool` (data is bit-identical). Pair with [`HierarchySnapshot::recycle`]
/// when replacing the snapshot, so a recurring one (e.g. a per-step
/// crash-recovery checkpoint) stops allocating once the pool is warm.
pub fn snapshot_in(hier: &GridHierarchy, pool: &crate::pool::FieldPool) -> HierarchySnapshot {
    HierarchySnapshot {
        refine_factor: hier.refine_factor(),
        max_levels: hier.max_levels(),
        ghost: hier.ghost(),
        nfields: hier.nfields(),
        domain: hier.domain(),
        patches: hier
            .iter()
            .map(|p| GridPatch {
                id: p.id,
                level: p.level,
                region: p.region,
                parent: p.parent,
                owner: p.owner,
                fields: p.fields.iter().map(|f| f.clone_in(pool)).collect(),
            })
            .collect(),
    }
}

impl HierarchySnapshot {
    /// Return every field buffer to `pool` (for snapshots built with
    /// [`snapshot_in`]; harmless for plain clones).
    pub fn recycle(self, pool: &crate::pool::FieldPool) {
        for p in self.patches {
            for f in p.fields {
                f.recycle(pool);
            }
        }
    }
}

/// Rebuild a hierarchy from a snapshot. Structure, ids, owners, parents and
/// field data are restored exactly; the result satisfies
/// [`GridHierarchy::check_invariants`] iff the snapshot did.
pub fn restore(snap: &HierarchySnapshot) -> GridHierarchy {
    let mut hier = GridHierarchy::new(
        snap.domain,
        snap.refine_factor,
        snap.max_levels,
        snap.nfields,
        snap.ghost,
    );
    // insert in (level, id) order so parents exist before children
    let mut by_level: Vec<&GridPatch> = snap.patches.iter().collect();
    by_level.sort_by_key(|p| (p.level, p.id));
    for p in by_level {
        hier.insert_patch_with_id(p.id, p.level, p.region, p.parent, p.owner);
        // copy the snapshot data into the pooled zero fields the insert
        // created rather than cloning fresh allocations into their place
        let dst = hier.patch_mut(p.id);
        for (d, s) in dst.fields.iter_mut().zip(&p.fields) {
            debug_assert_eq!(d.storage_region(), s.storage_region());
            d.copy_from(s, &s.storage_region());
        }
    }
    hier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ivec3, region};

    fn sample() -> GridHierarchy {
        let mut h = GridHierarchy::new(Region::cube(8), 2, 3, 2, 1);
        let root = h.insert_patch(0, Region::cube(8), None, 0);
        h.patch_mut(root).fields[0].map_interior(|p, _| p.x as f64 * 1.5);
        let c = h.insert_patch(1, region(ivec3(2, 2, 2), ivec3(8, 8, 8)), Some(root), 1);
        h.patch_mut(c).fields[1].map_interior(|p, _| (p.y + p.z) as f64);
        h
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let h = sample();
        let snap = snapshot(&h);
        let back = restore(&snap);
        assert!(back.check_invariants().is_ok());
        assert_eq!(back.num_patches(), h.num_patches());
        assert_eq!(back.num_levels(), h.num_levels());
        for p in h.iter() {
            let q = back.patch(p.id);
            assert_eq!(q.level, p.level);
            assert_eq!(q.region, p.region);
            assert_eq!(q.parent, p.parent);
            assert_eq!(q.owner, p.owner);
            assert_eq!(q.fields, p.fields);
        }
    }

    #[test]
    fn json_roundtrip() {
        let h = sample();
        let snap = snapshot(&h);
        let json = serde_json::to_string(&snap).unwrap();
        let back: HierarchySnapshot = serde_json::from_str(&json).unwrap();
        let restored = restore(&back);
        assert_eq!(restored.num_patches(), h.num_patches());
        assert_eq!(
            restored.patch(h.iter().next().unwrap().id).fields,
            h.iter().next().unwrap().fields
        );
    }

    #[test]
    fn pooled_snapshot_matches_and_recycling_feeds_the_pool() {
        let h = sample();
        let pool = h.pool().clone();
        let plain = snapshot(&h);
        let pooled = snapshot_in(&h, &pool);
        assert_eq!(plain.patches.len(), pooled.patches.len());
        for (a, b) in plain.patches.iter().zip(&pooled.patches) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.fields, b.fields);
        }
        // replace-and-recycle: the second snapshot reuses the first's buffers
        pooled.recycle(&pool);
        let hits_before = pool.stats().hits;
        let again = snapshot_in(&h, &pool);
        assert!(
            pool.stats().hits > hits_before,
            "re-snapshot should hit the recycled free lists: {:?}",
            pool.stats()
        );
        for (a, b) in plain.patches.iter().zip(&again.patches) {
            assert_eq!(a.fields, b.fields);
        }
    }

    #[test]
    fn restored_hierarchy_keeps_working() {
        let h = sample();
        let mut back = restore(&snapshot(&h));
        // new patches get fresh ids beyond the restored ones
        let root = back.level_ids(0)[0];
        let extra = back.insert_patch(
            1,
            region(ivec3(10, 10, 10), ivec3(14, 14, 14)),
            Some(root),
            0,
        );
        assert!(back.check_invariants().is_ok());
        assert!(extra.0 > back.level_ids(1)[0].0 || back.level_ids(1)[0] == extra);
        assert!(!h.contains(extra), "fresh id unused by the original");
    }
}
