//! The SAMR grid hierarchy: a tree of patches, one list per refinement level
//! (Fig. 1 of the paper).
//!
//! The hierarchy is an arena keyed by [`PatchId`]; levels store ids in
//! deterministic creation order. The number of levels, the number of grids,
//! and the locations of the grids all change with each adaptation.

use crate::field::Field3;
use crate::index::IVec3;
use crate::patch::{GridPatch, OwnerProc, PatchId};
use crate::region::Region;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A tree of grid patches organized by refinement level.
#[derive(Clone, Debug)]
pub struct GridHierarchy {
    /// Refinement factor between consecutive levels (paper uses 2).
    refine_factor: i64,
    /// Maximum number of levels allowed (root counts as one).
    max_levels: usize,
    /// Ghost-zone width used by all patch fields.
    ghost: i64,
    /// Number of solution fields per patch.
    nfields: usize,
    /// Root-level problem domain.
    domain: Region,
    /// Arena of live patches.
    patches: BTreeMap<PatchId, GridPatch>,
    /// Patch ids per level, creation-ordered.
    levels: Vec<Vec<PatchId>>,
    /// Next fresh id.
    next_id: u64,
    /// Structural generation: bumped whenever the patch set or any patch
    /// region changes, invalidating [`GridHierarchy::exchange_topology`]
    /// caches. Field *data* writes do not bump it.
    topo_gen: u64,
    /// Per-level cached exchange topology tagged with the generation that
    /// built it. `Arc` so callers can hold the topology while mutating
    /// patch data, and so cloning the hierarchy stays cheap.
    topo_cache: Vec<Option<(u64, Arc<LevelTopology>)>>,
    /// Recycling pool for field backing stores: inserts draw from it,
    /// removals shelve into it, so steady-state regrids stop allocating.
    /// Cloning the hierarchy shares the pool (it is an `Arc` handle).
    pool: crate::pool::FieldPool,
}

impl GridHierarchy {
    /// Create a hierarchy whose level-0 domain is `domain`, with no patches.
    pub fn new(domain: Region, refine_factor: i64, max_levels: usize, nfields: usize, ghost: i64) -> Self {
        assert!(refine_factor >= 2, "refinement factor must be >= 2");
        assert!(max_levels >= 1);
        assert!(!domain.is_empty());
        GridHierarchy {
            refine_factor,
            max_levels,
            ghost,
            nfields,
            domain,
            patches: BTreeMap::new(),
            levels: vec![Vec::new()],
            next_id: 0,
            topo_gen: 0,
            topo_cache: Vec::new(),
            pool: crate::pool::FieldPool::new(),
        }
    }

    /// The hierarchy's field-buffer pool. Callers that allocate scratch
    /// fields on the hot path (solvers, ghost exchange, stashes) should draw
    /// from it so the steady-state zero-allocation property holds end to end.
    pub fn pool(&self) -> &crate::pool::FieldPool {
        &self.pool
    }

    /// Record a structural mutation: invalidate every cached level topology.
    fn bump_topology(&mut self) {
        self.topo_gen = self.topo_gen.wrapping_add(1);
    }

    /// Refinement factor between levels.
    pub fn refine_factor(&self) -> i64 {
        self.refine_factor
    }

    /// Maximum level count.
    pub fn max_levels(&self) -> usize {
        self.max_levels
    }

    /// Ghost width of patch fields.
    pub fn ghost(&self) -> i64 {
        self.ghost
    }

    /// Fields per patch.
    pub fn nfields(&self) -> usize {
        self.nfields
    }

    /// Level-0 domain.
    pub fn domain(&self) -> Region {
        self.domain
    }

    /// Domain expressed at level `l` resolution.
    pub fn domain_at_level(&self, l: usize) -> Region {
        let mut d = self.domain;
        for _ in 0..l {
            d = d.refine(self.refine_factor);
        }
        d
    }

    /// Number of levels that currently hold at least one patch... plus empty
    /// trailing levels are trimmed, so this is `deepest level + 1` (at least 1).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Ids of patches at `level` (empty slice when the level doesn't exist).
    pub fn level_ids(&self, level: usize) -> &[PatchId] {
        self.levels.get(level).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Borrow a patch.
    pub fn patch(&self, id: PatchId) -> &GridPatch {
        &self.patches[&id]
    }

    /// Mutably borrow a patch.
    pub fn patch_mut(&mut self, id: PatchId) -> &mut GridPatch {
        self.patches.get_mut(&id).expect("unknown patch id")
    }

    /// Does the hierarchy contain this id?
    pub fn contains(&self, id: PatchId) -> bool {
        self.patches.contains_key(&id)
    }

    /// Iterate over all live patches in id order.
    pub fn iter(&self) -> impl Iterator<Item = &GridPatch> {
        self.patches.values()
    }

    /// Total number of live patches.
    pub fn num_patches(&self) -> usize {
        self.patches.len()
    }

    /// Total cells at `level`.
    pub fn level_cells(&self, level: usize) -> i64 {
        self.level_ids(level)
            .iter()
            .map(|id| self.patch(*id).cells())
            .sum()
    }

    /// Children ids of `id` (patches at `level+1` whose parent is `id`).
    pub fn children_of(&self, id: PatchId) -> Vec<PatchId> {
        let level = self.patch(id).level;
        self.level_ids(level + 1)
            .iter()
            .copied()
            .filter(|c| self.patch(*c).parent == Some(id))
            .collect()
    }

    /// Allocate a fresh patch id.
    fn fresh_id(&mut self) -> PatchId {
        let id = PatchId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Insert a new patch at `level` covering `region` (level-`level`
    /// coordinates), owned by `owner`. Returns its id.
    ///
    /// The caller is responsible for region validity (inside the level
    /// domain, non-empty). Parent must be given for `level > 0`.
    pub fn insert_patch(
        &mut self,
        level: usize,
        region: Region,
        parent: Option<PatchId>,
        owner: OwnerProc,
    ) -> PatchId {
        assert!(!region.is_empty(), "inserting empty patch region");
        assert!(level < self.max_levels, "level {level} exceeds max_levels");
        assert!(
            self.domain_at_level(level).contains_region(&region),
            "patch region {region:?} outside level-{level} domain"
        );
        assert_eq!(level == 0, parent.is_none(), "non-root patches need a parent");
        let id = self.fresh_id();
        let patch =
            GridPatch::new_in(&self.pool, id, level, region, parent, owner, self.nfields, self.ghost);
        self.insert_prepared(level, patch);
        id
    }

    /// Insert a new refined patch whose field data is piecewise-constant
    /// prolongation from its parent's fields — the regrid fast path.
    /// Bit-identical to [`GridHierarchy::insert_patch`] followed by
    /// full-storage `prolong_constant` from each parent field, but the
    /// pooled buffers skip the intermediate zero fill (prolongation provably
    /// overwrites every cell; see [`Field3::from_coarse_in`]).
    pub fn insert_refined_patch(
        &mut self,
        level: usize,
        region: Region,
        parent: PatchId,
        owner: OwnerProc,
    ) -> PatchId {
        assert!(!region.is_empty(), "inserting empty patch region");
        assert!(level < self.max_levels, "level {level} exceeds max_levels");
        assert!(
            self.domain_at_level(level).contains_region(&region),
            "patch region {region:?} outside level-{level} domain"
        );
        let r = self.refine_factor;
        let pp = self.patch(parent);
        assert_eq!(pp.level + 1, level, "parent must be one level up");
        let fields: Vec<Field3> = pp
            .fields
            .iter()
            .map(|pf| Field3::from_coarse_in(&self.pool, region, self.ghost, pf, r))
            .collect();
        let id = self.fresh_id();
        let patch = GridPatch {
            id,
            level,
            region,
            parent: Some(parent),
            owner,
            fields,
        };
        self.insert_prepared(level, patch);
        id
    }

    fn insert_prepared(&mut self, level: usize, patch: GridPatch) {
        let id = patch.id;
        while self.levels.len() <= level {
            self.levels.push(Vec::new());
        }
        self.levels[level].push(id);
        self.patches.insert(id, patch);
        self.bump_topology();
    }

    /// Remove a patch (and no others — callers remove descendants first).
    /// Its field backing stores are shelved in the pool for reuse.
    pub fn remove_patch(&mut self, id: PatchId) {
        let p = self.patches.remove(&id).expect("removing unknown patch");
        let lvl = &mut self.levels[p.level];
        lvl.retain(|x| *x != id);
        p.recycle(&self.pool);
        self.trim_levels();
        self.bump_topology();
    }

    /// Remove every patch at `level` and deeper. Used when regridding a
    /// level: the finer structure is rebuilt from scratch.
    pub fn clear_levels_from(&mut self, level: usize) {
        if level == 0 {
            panic!("cannot clear level 0: the root grid must always exist");
        }
        for l in level..self.levels.len() {
            for id in std::mem::take(&mut self.levels[l]) {
                if let Some(p) = self.patches.remove(&id) {
                    p.recycle(&self.pool);
                }
            }
        }
        self.trim_levels();
        self.bump_topology();
    }

    fn trim_levels(&mut self) {
        while self.levels.len() > 1 && self.levels.last().is_some_and(|v| v.is_empty()) {
            self.levels.pop();
        }
    }

    /// Change the owner of a patch.
    pub fn set_owner(&mut self, id: PatchId, owner: OwnerProc) {
        self.patch_mut(id).owner = owner;
    }

    /// Insert a patch under a caller-chosen id (checkpoint restore support).
    /// The id must be unused; the fresh-id counter is bumped past it so
    /// future insertions never collide. Same validity rules as
    /// [`GridHierarchy::insert_patch`].
    pub fn insert_patch_with_id(
        &mut self,
        id: PatchId,
        level: usize,
        region: Region,
        parent: Option<PatchId>,
        owner: OwnerProc,
    ) {
        assert!(!self.patches.contains_key(&id), "{id:?} already in use");
        assert!(!region.is_empty(), "inserting empty patch region");
        assert!(level < self.max_levels, "level {level} exceeds max_levels");
        assert!(
            self.domain_at_level(level).contains_region(&region),
            "patch region {region:?} outside level-{level} domain"
        );
        assert_eq!(level == 0, parent.is_none(), "non-root patches need a parent");
        let patch =
            GridPatch::new_in(&self.pool, id, level, region, parent, owner, self.nfields, self.ghost);
        while self.levels.len() <= level {
            self.levels.push(Vec::new());
        }
        self.levels[level].push(id);
        self.patches.insert(id, patch);
        self.next_id = self.next_id.max(id.0 + 1);
        self.bump_topology();
    }

    /// Run `f` with two *distinct* patches borrowed at once, `dst` mutably —
    /// the split-borrow accessor the zero-clone data paths are built on
    /// (prolong from a parent into a child, copy a sibling window) without
    /// snapshotting whole `Vec<Field3>`s. `dst` is moved out of the arena for
    /// the duration of `f` (a pointer-sized struct move, no field data is
    /// copied) and reinserted afterwards.
    pub fn with_patch_pair<R>(
        &mut self,
        src: PatchId,
        dst: PatchId,
        f: impl FnOnce(&GridPatch, &mut GridPatch) -> R,
    ) -> R {
        assert_ne!(src, dst, "with_patch_pair needs two distinct patches");
        let mut d = self.patches.remove(&dst).expect("unknown patch id");
        let s = self.patches.get(&src).expect("unknown patch id");
        let r = f(s, &mut d);
        self.patches.insert(dst, d);
        r
    }

    /// Split patch `id` in two along `axis` so that the first part has
    /// (approximately, whole planes) `want_cells` cells. Returns the two new
    /// ids `(a, b)`; patch `id` is removed. See [`GridHierarchy::split_patch_at`].
    ///
    /// Used by load balancers when a single grid is too large to move whole.
    pub fn split_patch(&mut self, id: PatchId, want_cells: i64, axis: usize) -> (PatchId, PatchId) {
        let region = self.patch(id).region;
        let (ra, _rb) = region.split_cells(want_cells, axis);
        assert!(
            !ra.is_empty() && ra != region,
            "split produced an empty half: {region:?} want={want_cells} axis={axis}"
        );
        self.split_patch_at(id, axis, ra.hi[axis])
    }

    /// Split patch `id` at plane `cut` (its own level's coordinates) normal
    /// to `axis`. Field data is copied into the two new patches. Children
    /// fully inside one half reattach to it; children straddling the cut are
    /// recursively split at the same plane so the parent-containment
    /// invariant always holds. Returns the two new ids `(low, high)`;
    /// patch `id` is removed.
    pub fn split_patch_at(&mut self, id: PatchId, axis: usize, cut: i64) -> (PatchId, PatchId) {
        let (level, region, parent, owner) = {
            let p = self.patch(id);
            (p.level, p.region, p.parent, p.owner)
        };
        let (ra, rb) = region.split_at(axis, cut);
        assert!(
            !ra.is_empty() && !rb.is_empty(),
            "cut {cut} does not bisect {region:?} on axis {axis}"
        );
        let children = self.children_of(id);

        let a = self.insert_patch(level, ra, parent, owner);
        let b = self.insert_patch(level, rb, parent, owner);
        // copy solution data straight out of the doomed patch — the
        // split-borrow accessor avoids snapshotting its whole field set
        for (dst, half) in [(a, ra), (b, rb)] {
            self.with_patch_pair(id, dst, |src, d| {
                for (k, of) in src.fields.iter().enumerate() {
                    d.fields[k].copy_from(of, &half);
                }
            });
        }
        // reattach (splitting straddlers at the refined cut plane)
        let r = self.refine_factor;
        let fine_cut = cut * r;
        for c in children {
            let creg = self.patch(c).region;
            if creg.hi[axis] <= fine_cut {
                self.patch_mut(c).parent = Some(a);
            } else if creg.lo[axis] >= fine_cut {
                self.patch_mut(c).parent = Some(b);
            } else {
                let (ca, cb) = self.split_patch_at(c, axis, fine_cut);
                self.patch_mut(ca).parent = Some(a);
                self.patch_mut(cb).parent = Some(b);
            }
        }
        self.remove_patch(id);
        (a, b)
    }

    /// Overlap descriptors for sibling boundary exchange at `level`: for
    /// every ordered pair of distinct patches `(dst, src)` at the level whose
    /// ghost shell of `dst` overlaps `src`'s interior, the overlap window and
    /// its cell count.
    pub fn sibling_overlaps(&self, level: usize) -> Vec<SiblingOverlap> {
        let ids = self.level_ids(level);
        if ids.len() < 2 {
            return Vec::new();
        }
        // Uniform bucket grid over the level domain: each patch registers in
        // every bucket its region touches, each destination queries the
        // buckets its ghost shell touches. Any overlapping (shell, region)
        // pair shares the bucket of a cell of the overlap (the overlap lies
        // inside the domain, and out-of-domain shell coordinates clamp to
        // the boundary buckets), so candidates are a superset of the true
        // overlaps and the exact intersection test below decides.
        const SHIFT: i64 = 5; // 32-cell buckets ~ the largest movable boxes
        let dom = self.domain_at_level(level);
        let nb = |lo: i64, hi: i64| ((hi - lo - 1) >> SHIFT) as usize + 1;
        let (bx, by, bz) = (
            nb(dom.lo.x, dom.hi.x),
            nb(dom.lo.y, dom.hi.y),
            nb(dom.lo.z, dom.hi.z),
        );
        let range = |lo: i64, hi: i64, dlo: i64, n: usize| {
            let a = ((lo - dlo) >> SHIFT).clamp(0, n as i64 - 1) as usize;
            let b = ((hi - 1 - dlo) >> SHIFT).clamp(0, n as i64 - 1) as usize;
            a..=b
        };
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); bx * by * bz];
        for (i, &id) in ids.iter().enumerate() {
            let r = self.patch(id).region;
            for x in range(r.lo.x, r.hi.x, dom.lo.x, bx) {
                for y in range(r.lo.y, r.hi.y, dom.lo.y, by) {
                    for z in range(r.lo.z, r.hi.z, dom.lo.z, bz) {
                        buckets[(x * by + y) * bz + z].push(i as u32);
                    }
                }
            }
        }
        let mut out = Vec::new();
        let mut seen = vec![u32::MAX; ids.len()];
        let mut cand: Vec<u32> = Vec::new();
        for (di, &dst) in ids.iter().enumerate() {
            let dp = self.patch(dst);
            let shell = dp.region.grow(self.ghost);
            cand.clear();
            for x in range(shell.lo.x, shell.hi.x, dom.lo.x, bx) {
                for y in range(shell.lo.y, shell.hi.y, dom.lo.y, by) {
                    for z in range(shell.lo.z, shell.hi.z, dom.lo.z, bz) {
                        for &si in &buckets[(x * by + y) * bz + z] {
                            if si != di as u32 && seen[si as usize] != di as u32 {
                                seen[si as usize] = di as u32;
                                cand.push(si);
                            }
                        }
                    }
                }
            }
            // level_ids order, exactly as the all-pairs scan emitted
            cand.sort_unstable();
            for &si in &cand {
                let src = ids[si as usize];
                let sp = self.patch(src);
                let w = shell.intersect(&sp.region);
                if !w.is_empty() && !dp.region.contains_region(&w) {
                    out.push(SiblingOverlap {
                        dst,
                        src,
                        window: w,
                        cells: w.cells(),
                    });
                }
            }
        }
        out
    }

    /// The cached ghost-exchange topology of `level`: sibling overlap windows
    /// plus each patch's parent ghost-shell boxes, rebuilt only when the grid
    /// structure changed since the last call (regrid, split, insert, remove).
    /// Field-data writes leave the cache valid.
    ///
    /// Returned as an [`Arc`] so the driver can hold the topology while
    /// mutating patch data, and so repeated calls between regrids are
    /// allocation-free.
    pub fn exchange_topology(&mut self, level: usize) -> Arc<LevelTopology> {
        if self.topo_cache.len() <= level {
            self.topo_cache.resize(level + 1, None);
        }
        if let Some((gen, topo)) = &self.topo_cache[level] {
            if *gen == self.topo_gen {
                return Arc::clone(topo);
            }
        }
        let topo = Arc::new(self.build_topology(level));
        self.topo_cache[level] = Some((self.topo_gen, Arc::clone(&topo)));
        topo
    }

    /// Uncached topology construction (the reference the cache must agree
    /// with; also used directly by tests).
    fn build_topology(&self, level: usize) -> LevelTopology {
        let overlaps = self.sibling_overlaps(level);
        let shells = self
            .level_ids(level)
            .iter()
            .map(|&id| {
                let region = self.patch(id).region;
                PatchShell {
                    id,
                    boxes: region.grow(self.ghost).subtract(&region),
                }
            })
            .collect();
        LevelTopology { overlaps, shells }
    }

    /// Total cells owned by `owner` at `level`.
    pub fn owner_level_cells(&self, owner: OwnerProc, level: usize) -> i64 {
        self.level_ids(level)
            .iter()
            .map(|id| self.patch(*id))
            .filter(|p| p.owner == owner)
            .map(|p| p.cells())
            .sum()
    }

    /// Per-owner cell totals at `level` for `nprocs` processors.
    pub fn level_load_by_owner(&self, level: usize, nprocs: usize) -> Vec<i64> {
        let mut v = vec![0i64; nprocs];
        for id in self.level_ids(level) {
            let p = self.patch(*id);
            v[p.owner] += p.cells();
        }
        v
    }

    /// Check structural invariants; returns a description of the first
    /// violation, if any. Used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (l, ids) in self.levels.iter().enumerate() {
            for id in ids {
                let p = self
                    .patches
                    .get(id)
                    .ok_or_else(|| format!("{id:?} listed at level {l} but not in arena"))?;
                if p.level != l {
                    return Err(format!("{id:?} stored at level {l} but claims {}", p.level));
                }
                if p.region.is_empty() {
                    return Err(format!("{id:?} has empty region"));
                }
                if !self.domain_at_level(l).contains_region(&p.region) {
                    return Err(format!("{id:?} region {:?} outside domain", p.region));
                }
                match (l, p.parent) {
                    (0, Some(_)) => return Err(format!("{id:?} at level 0 has a parent")),
                    (0, None) => {}
                    (_, None) => return Err(format!("{id:?} at level {l} has no parent")),
                    (_, Some(par)) => {
                        let pp = self
                            .patches
                            .get(&par)
                            .ok_or_else(|| format!("{id:?} parent {par:?} missing"))?;
                        if pp.level + 1 != l {
                            return Err(format!("{id:?} parent {par:?} not one level up"));
                        }
                        // child must lie within its parent (outer-coarsened)
                        let creg = p.region.coarsen(self.refine_factor);
                        if !pp.region.contains_region(&creg) {
                            return Err(format!(
                                "{id:?} ({:?}) not inside parent {par:?} ({:?})",
                                p.region, pp.region
                            ));
                        }
                    }
                }
            }
            // siblings must be pairwise disjoint
            for (i, a) in ids.iter().enumerate() {
                for b in &ids[i + 1..] {
                    if self.patches[a].region.overlaps(&self.patches[b].region) {
                        return Err(format!("{a:?} and {b:?} overlap at level {l}"));
                    }
                }
            }
        }
        if self.patches.len() != self.levels.iter().map(|v| v.len()).sum::<usize>() {
            return Err("arena/level count mismatch".into());
        }
        Ok(())
    }
}

/// One sibling ghost-exchange dependency: `dst` needs `window` (which lies in
/// `src`'s interior) to fill its ghost shell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiblingOverlap {
    pub dst: PatchId,
    pub src: PatchId,
    pub window: Region,
    pub cells: i64,
}

/// The ghost-shell boxes of one patch: up to six disjoint boxes (its own
/// level's coordinates) covering `region.grow(ghost) \ region`, i.e. the
/// cells the parent must prolong into before siblings overwrite their share.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatchShell {
    pub id: PatchId,
    pub boxes: Vec<Region>,
}

/// Ghost-exchange topology of one level, cached inside [`GridHierarchy`]
/// between structural mutations (see [`GridHierarchy::exchange_topology`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LevelTopology {
    /// Sibling overlap windows at this level, destination-major in level id
    /// order (the deterministic exchange order).
    pub overlaps: Vec<SiblingOverlap>,
    /// Parent ghost-shell boxes per patch, in level id order.
    pub shells: Vec<PatchShell>,
}

/// Convenience: map a cell position from level-`l` coordinates to the
/// containing cell at level `l - k` (coarsening by `r^k`).
pub fn coarsen_point(p: IVec3, r: i64, k: usize) -> IVec3 {
    let mut q = p;
    for _ in 0..k {
        q = q.div_floor(r);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ivec3;
    use crate::region::region;

    fn basic() -> GridHierarchy {
        // 8^3 root domain, r=2, up to 4 levels, 1 field, ghost 1
        GridHierarchy::new(Region::cube(8), 2, 4, 1, 1)
    }

    #[test]
    fn build_two_levels() {
        let mut h = basic();
        let root = h.insert_patch(0, Region::cube(8), None, 0);
        let child = h.insert_patch(
            1,
            region(ivec3(2, 2, 2), ivec3(8, 8, 8)),
            Some(root),
            1,
        );
        assert_eq!(h.num_levels(), 2);
        assert_eq!(h.level_cells(0), 512);
        assert_eq!(h.level_cells(1), 216);
        assert_eq!(h.children_of(root), vec![child]);
        assert!(h.check_invariants().is_ok());
    }

    #[test]
    fn domain_at_level_refines() {
        let h = basic();
        assert_eq!(h.domain_at_level(0), Region::cube(8));
        assert_eq!(h.domain_at_level(2), Region::cube(32));
    }

    #[test]
    fn clear_levels_from_removes_descendants() {
        let mut h = basic();
        let root = h.insert_patch(0, Region::cube(8), None, 0);
        let c1 = h.insert_patch(1, region(ivec3(0, 0, 0), ivec3(4, 4, 4)), Some(root), 0);
        let _g1 = h.insert_patch(2, region(ivec3(0, 0, 0), ivec3(4, 4, 4)), Some(c1), 0);
        assert_eq!(h.num_levels(), 3);
        h.clear_levels_from(1);
        assert_eq!(h.num_levels(), 1);
        assert_eq!(h.num_patches(), 1);
        assert!(h.check_invariants().is_ok());
    }

    #[test]
    #[should_panic]
    fn cannot_clear_root() {
        let mut h = basic();
        h.insert_patch(0, Region::cube(8), None, 0);
        h.clear_levels_from(0);
    }

    #[test]
    fn split_patch_conserves_cells_and_children() {
        let mut h = basic();
        let root = h.insert_patch(0, Region::cube(8), None, 0);
        // child entirely within the first half (x < 4 at level 0 -> x < 8 at level 1)
        let c = h.insert_patch(1, region(ivec3(0, 0, 0), ivec3(6, 6, 6)), Some(root), 0);
        let (a, b) = h.split_patch(root, 256, 0);
        assert!(!h.contains(root));
        assert_eq!(h.patch(a).cells() + h.patch(b).cells(), 512);
        assert_eq!(h.patch(a).cells(), 256);
        // child reattached to the half containing it
        assert_eq!(h.patch(c).parent, Some(a));
        assert!(h.check_invariants().is_ok());
    }

    #[test]
    fn split_patch_copies_field_data() {
        let mut h = basic();
        let root = h.insert_patch(0, Region::cube(8), None, 0);
        h.patch_mut(root).fields[0].map_interior(|p, _| p.x as f64);
        let (a, b) = h.split_patch(root, 256, 0);
        assert_eq!(h.patch(a).fields[0].get(ivec3(1, 1, 1)), 1.0);
        assert_eq!(h.patch(b).fields[0].get(ivec3(6, 2, 3)), 6.0);
    }

    #[test]
    fn sibling_overlaps_found() {
        let mut h = basic();
        let root = h.insert_patch(0, Region::cube(8), None, 0);
        // two adjacent children at level 1 sharing the x=8 plane
        let a = h.insert_patch(1, region(ivec3(0, 0, 0), ivec3(8, 8, 8)), Some(root), 0);
        let b = h.insert_patch(1, region(ivec3(8, 0, 0), ivec3(16, 8, 8)), Some(root), 1);
        let ov = h.sibling_overlaps(1);
        // each needs a 1-deep 8x8 slab from the other
        assert_eq!(ov.len(), 2);
        for o in &ov {
            assert_eq!(o.cells, 64);
            assert!((o.dst == a && o.src == b) || (o.dst == b && o.src == a));
        }
    }

    #[test]
    fn no_overlap_for_distant_siblings() {
        let mut h = basic();
        let root = h.insert_patch(0, Region::cube(8), None, 0);
        h.insert_patch(1, region(ivec3(0, 0, 0), ivec3(4, 4, 4)), Some(root), 0);
        h.insert_patch(1, region(ivec3(10, 10, 10), ivec3(14, 14, 14)), Some(root), 0);
        assert!(h.sibling_overlaps(1).is_empty());
    }

    /// The bucket-indexed `sibling_overlaps` must reproduce the all-pairs
    /// scan exactly — same overlaps, same (dst, src) emission order — on a
    /// randomized disjoint tiling with patches straddling bucket borders.
    #[test]
    fn bucketed_overlaps_match_all_pairs_scan() {
        let mut h = GridHierarchy::new(Region::cube(48), 2, 2, 1, 1);
        let root = h.insert_patch(0, Region::cube(48), None, 0);
        // tile level 1 (96^3) into uneven disjoint boxes, dropping some so
        // the mesh has holes; splits at 31/33/65 straddle 32-cell buckets
        let cuts = [0i64, 31, 33, 65, 96];
        let mut rng = 0x9e37u64;
        for ix in 0..4 {
            for iy in 0..4 {
                for iz in 0..4 {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    if rng >> 60 == 0 {
                        continue;
                    }
                    h.insert_patch(
                        1,
                        region(
                            ivec3(cuts[ix], cuts[iy], cuts[iz]),
                            ivec3(cuts[ix + 1], cuts[iy + 1], cuts[iz + 1]),
                        ),
                        Some(root),
                        0,
                    );
                }
            }
        }
        assert!(h.check_invariants().is_ok());
        let ids = h.level_ids(1).to_vec();
        let mut brute = Vec::new();
        for &dst in &ids {
            let shell = h.patch(dst).region.grow(h.ghost());
            for &src in &ids {
                if src == dst {
                    continue;
                }
                let w = shell.intersect(&h.patch(src).region);
                if !w.is_empty() && !h.patch(dst).region.contains_region(&w) {
                    brute.push(SiblingOverlap { dst, src, window: w, cells: w.cells() });
                }
            }
        }
        assert!(brute.len() > 100, "tiling too sparse to exercise the index");
        assert_eq!(h.sibling_overlaps(1), brute);
    }

    /// `insert_refined_patch` on a deliberately dirtied pool must produce
    /// exactly the fields of `insert_patch` + full-storage prolongation —
    /// i.e. skipping the zero fill is invisible.
    #[test]
    fn refined_insert_matches_zeroed_insert_plus_prolong() {
        let mk = || {
            let mut h = GridHierarchy::new(Region::cube(8), 2, 3, 2, 1);
            let root = h.insert_patch(0, Region::cube(8), None, 0);
            for k in 0..2 {
                let f = &mut h.patch_mut(root).fields[k];
                for p in f.storage_region().iter_cells() {
                    f.set(p, (p.x * 61 + p.y * 17 + p.z * 5 + k as i64 * 911) as f64 * 0.37);
                }
            }
            // dirty the pool: shelve poisoned buffers big enough to serve
            // the child fields
            for _ in 0..4 {
                let mut b = h.pool().acquire(1000);
                b.fill(f64::NAN);
                h.pool().release(b);
            }
            (h, root)
        };
        let child_region = region(ivec3(3, 2, 5), ivec3(11, 12, 13));

        let (mut ha, root_a) = mk();
        let a = ha.insert_refined_patch(1, child_region, root_a, 1);

        let (mut hb, root_b) = mk();
        let b = hb.insert_patch(1, child_region, Some(root_b), 1);
        {
            let r = hb.refine_factor();
            let (hb2, id) = (&mut hb, b);
            let parent_fields: Vec<Field3> = hb2.patch(root_b).fields.to_vec();
            let child = hb2.patch_mut(id);
            let window = child.fields[0].storage_region();
            for (k, pf) in parent_fields.iter().enumerate() {
                crate::interp::prolong_constant(pf, &mut child.fields[k], &window, r);
            }
        }
        for k in 0..2 {
            let fa = &ha.patch(a).fields[k];
            let fb = &hb.patch(b).fields[k];
            assert_eq!(fa.interior(), fb.interior());
            let bits = |f: &Field3| f.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(fa), bits(fb), "field {k} diverged");
        }
    }

    #[test]
    fn invariant_catches_overlapping_siblings() {
        let mut h = basic();
        let root = h.insert_patch(0, Region::cube(8), None, 0);
        h.insert_patch(1, region(ivec3(0, 0, 0), ivec3(6, 6, 6)), Some(root), 0);
        h.insert_patch(1, region(ivec3(4, 4, 4), ivec3(8, 8, 8)), Some(root), 0);
        assert!(h.check_invariants().is_err());
    }

    #[test]
    fn owner_loads() {
        let mut h = basic();
        let root = h.insert_patch(0, Region::cube(8), None, 0);
        h.insert_patch(1, region(ivec3(0, 0, 0), ivec3(4, 4, 4)), Some(root), 1);
        h.insert_patch(1, region(ivec3(8, 8, 8), ivec3(12, 12, 12)), Some(root), 1);
        let loads = h.level_load_by_owner(1, 2);
        assert_eq!(loads, vec![0, 128]);
        assert_eq!(h.owner_level_cells(0, 0), 512);
    }

    #[test]
    fn coarsen_point_maps_down() {
        assert_eq!(coarsen_point(ivec3(7, 6, 5), 2, 1), ivec3(3, 3, 2));
        assert_eq!(coarsen_point(ivec3(7, 6, 5), 2, 2), ivec3(1, 1, 1));
        assert_eq!(coarsen_point(ivec3(3, 3, 3), 2, 0), ivec3(3, 3, 3));
    }

    #[test]
    fn exchange_topology_matches_fresh_computation() {
        let mut h = basic();
        let root = h.insert_patch(0, Region::cube(8), None, 0);
        h.insert_patch(1, region(ivec3(0, 0, 0), ivec3(8, 8, 8)), Some(root), 0);
        h.insert_patch(1, region(ivec3(8, 0, 0), ivec3(16, 8, 8)), Some(root), 1);
        let topo = h.exchange_topology(1);
        assert_eq!(topo.overlaps, h.sibling_overlaps(1));
        assert_eq!(topo.shells.len(), 2);
        for s in &topo.shells {
            let reg = h.patch(s.id).region;
            let shell_cells: i64 = s.boxes.iter().map(|b| b.cells()).sum();
            assert_eq!(shell_cells, reg.grow(1).cells() - reg.cells());
            for b in &s.boxes {
                assert!(!b.overlaps(&reg));
            }
        }
    }

    #[test]
    fn exchange_topology_cache_hits_and_invalidates() {
        let mut h = basic();
        let root = h.insert_patch(0, Region::cube(8), None, 0);
        let a = h.insert_patch(1, region(ivec3(0, 0, 0), ivec3(8, 8, 8)), Some(root), 0);
        let t1 = h.exchange_topology(1);
        // unchanged structure: the same Arc comes back (no rebuild)
        let t2 = h.exchange_topology(1);
        assert!(Arc::ptr_eq(&t1, &t2));
        // field-data writes do not invalidate
        h.patch_mut(a).fields[0].fill(3.0);
        assert!(Arc::ptr_eq(&t1, &h.exchange_topology(1)));
        // structural change invalidates and the rebuilt topology is fresh
        let b = h.insert_patch(1, region(ivec3(8, 0, 0), ivec3(16, 8, 8)), Some(root), 1);
        let t3 = h.exchange_topology(1);
        assert!(!Arc::ptr_eq(&t1, &t3));
        assert_eq!(t3.overlaps.len(), 2);
        assert_eq!(t3.overlaps, h.sibling_overlaps(1));
        // removal invalidates too
        h.remove_patch(b);
        assert!(h.exchange_topology(1).overlaps.is_empty());
    }

    #[test]
    fn with_patch_pair_borrows_both_and_restores() {
        let mut h = basic();
        let root = h.insert_patch(0, Region::cube(8), None, 0);
        let child = h.insert_patch(1, region(ivec3(0, 0, 0), ivec3(8, 8, 8)), Some(root), 0);
        h.patch_mut(root).fields[0].fill(2.5);
        let copied = h.with_patch_pair(root, child, |src, dst| {
            let w = dst.fields[0].storage_region();
            crate::interp::prolong_constant(&src.fields[0], &mut dst.fields[0], &w, 2);
            dst.fields[0].get(ivec3(4, 4, 4))
        });
        assert_eq!(copied, 2.5);
        // the patch is back in the arena with the mutation applied
        assert_eq!(h.patch(child).fields[0].get(ivec3(0, 0, 0)), 2.5);
        assert_eq!(h.num_patches(), 2);
        assert!(h.check_invariants().is_ok());
    }

    #[test]
    #[should_panic]
    fn with_patch_pair_rejects_same_id() {
        let mut h = basic();
        let root = h.insert_patch(0, Region::cube(8), None, 0);
        h.with_patch_pair(root, root, |_, _| ());
    }
}
