//! Coarse–fine flux registers: the Berger–Colella conservation fix-up.
//!
//! When a coarse cell abuts a refined region, the coarse update used the
//! coarse flux at the shared face while the fine grid advanced with its own
//! (better) fluxes — so mass/momentum/energy leak at the interface unless
//! the coarse cell is corrected by the difference between the coarse flux
//! and the time-and-space average of the fine fluxes.
//!
//! A [`FluxRegister`] accumulates `F_coarse − ⟨F_fine⟩` per interface face
//! and [`FluxRegister::apply`] adds `± dt/dx · Δ` to the adjacent uncovered
//! coarse cells (sign by face orientation).

use crate::field::Field3;
use crate::index::IVec3;
use std::collections::BTreeMap;

/// Accumulator of flux mismatches along the boundary of one refined region.
#[derive(Clone, Debug)]
pub struct FluxRegister {
    r: i64,
    nfields: usize,
    /// Signed accumulated mismatch per (outside coarse cell, field); applied
    /// as `U += dt_over_dx * value`.
    acc: BTreeMap<(IVec3, usize), f64>,
}

impl FluxRegister {
    /// A register for refinement factor `r` and `nfields` conserved fields.
    pub fn new(r: i64, nfields: usize) -> Self {
        assert!(r >= 2);
        assert!(nfields > 0);
        FluxRegister {
            r,
            nfields,
            acc: BTreeMap::new(),
        }
    }

    /// Number of coarse faces carrying a non-trivial correction so far.
    pub fn touched_faces(&self) -> usize {
        self.acc.len() / self.nfields.max(1)
    }

    fn sign(fine_on_high: bool) -> f64 {
        // fine region on the outside cell's HIGH side ⇒ the shared face is
        // the outside cell's high face, whose flux enters with −dt/dx; the
        // correction ΔU = dt/dx (F_c − ⟨F_f⟩) ⇒ +F_c, −⟨F_f⟩.
        if fine_on_high {
            1.0
        } else {
            -1.0
        }
    }

    /// Record the coarse flux used at the face between the uncovered coarse
    /// cell `outside` and the fine region, which lies on `outside`'s
    /// high/low side of `axis` per `fine_on_high`.
    pub fn record_coarse(
        &mut self,
        outside: IVec3,
        _axis: usize,
        fine_on_high: bool,
        flux: &[f64],
    ) {
        assert_eq!(flux.len(), self.nfields);
        let s = Self::sign(fine_on_high);
        for (k, &f) in flux.iter().enumerate() {
            *self.acc.entry((outside, k)).or_default() += s * f;
        }
    }

    /// Record one fine face flux on the same interface. `fine_cell` is the
    /// fine cell *inside* the fine region adjacent to the face. `weight` is
    /// the space-time averaging factor — `1 / (r^(d−1) · r_time)`, i.e.
    /// `1/(r²·r)` for 3-D sub-cycled advance (r² face cells, r sub-steps).
    pub fn record_fine(
        &mut self,
        fine_cell: IVec3,
        axis: usize,
        fine_on_high: bool,
        flux: &[f64],
        weight: f64,
    ) {
        assert_eq!(flux.len(), self.nfields);
        let coarse_inside = fine_cell.div_floor(self.r);
        let mut outside = coarse_inside;
        if fine_on_high {
            outside[axis] -= 1;
        } else {
            outside[axis] += 1;
        }
        let s = Self::sign(fine_on_high);
        for (k, &f) in flux.iter().enumerate() {
            *self.acc.entry((outside, k)).or_default() -= s * weight * f;
        }
    }

    /// The canonical space-time fine-flux weight for 3-D sub-cycling.
    pub fn fine_weight(&self) -> f64 {
        1.0 / (self.r * self.r * self.r) as f64
    }

    /// Apply the accumulated corrections to the coarse fields:
    /// `U[cell] += dt_over_dx · Δ[cell]` for every touched cell that lies in
    /// the fields' interior. Clears the register.
    pub fn apply(&mut self, fields: &mut [Field3], dt_over_dx: f64) {
        assert!(fields.len() >= self.nfields);
        for (&(cell, k), &v) in &self.acc {
            if fields[k].interior().contains(cell) {
                *fields[k].at_mut(cell) += dt_over_dx * v;
            }
        }
        self.acc.clear();
    }

    /// Peek at the accumulated correction for `(cell, field)`.
    pub fn correction(&self, cell: IVec3, field: usize) -> f64 {
        self.acc.get(&(cell, field)).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ivec3;
    use crate::region::Region;

    #[test]
    fn matching_fluxes_cancel_exactly() {
        // fine average equals the coarse flux ⇒ zero correction
        let mut reg = FluxRegister::new(2, 1);
        let outside = ivec3(3, 2, 2);
        reg.record_coarse(outside, 0, true, &[6.0]);
        // the interface face covers 2x2 fine faces for 2 sub-steps = 8 records
        let w = reg.fine_weight();
        for dy in 0..2 {
            for dz in 0..2 {
                for _substep in 0..2 {
                    // fine cells just inside the fine region (x = 8 = 4*r)
                    reg.record_fine(ivec3(8, 4 + dy, 4 + dz), 0, true, &[6.0], w);
                }
            }
        }
        assert!(reg.correction(outside, 0).abs() < 1e-12);
    }

    #[test]
    fn mismatch_produces_signed_correction_high_side() {
        // coarse flux 2.0, fine average 1.5, fine on high side:
        // ΔU = dt/dx (2.0 − 1.5) > 0 for the outside cell
        let mut reg = FluxRegister::new(2, 1);
        let outside = ivec3(3, 0, 0);
        reg.record_coarse(outside, 0, true, &[2.0]);
        let w = reg.fine_weight();
        for dy in 0..2 {
            for dz in 0..2 {
                for _ in 0..2 {
                    reg.record_fine(ivec3(8, dy, dz), 0, true, &[1.5], w);
                }
            }
        }
        let d = reg.correction(outside, 0);
        assert!((d - 0.5).abs() < 1e-12, "correction {d}");
        // applying adds dt/dx * 0.5
        let mut f = Field3::constant(Region::cube(8), 1, 10.0);
        reg.apply(std::slice::from_mut(&mut f), 0.2);
        assert!((f.get(outside) - 10.1).abs() < 1e-12);
        // register cleared after apply
        assert_eq!(reg.touched_faces(), 0);
    }

    #[test]
    fn mismatch_low_side_flips_sign() {
        // fine region on the LOW side of the outside cell: shared face is
        // the outside cell's low face (+dt/dx F): ΔU = dt/dx (⟨F_f⟩ − F_c)
        let mut reg = FluxRegister::new(2, 1);
        let outside = ivec3(4, 0, 0);
        reg.record_coarse(outside, 0, false, &[2.0]);
        let w = reg.fine_weight();
        for dy in 0..2 {
            for dz in 0..2 {
                for _ in 0..2 {
                    // fine cells just inside the fine region: x = 7 (coarse 3)
                    reg.record_fine(ivec3(7, dy, dz), 0, false, &[1.5], w);
                }
            }
        }
        let d = reg.correction(outside, 0);
        assert!((d + 0.5).abs() < 1e-12, "correction {d}");
    }

    #[test]
    fn composite_mass_conserved_after_reflux() {
        // 1-D style budget across one interface: coarse cell C loses
        // dt/dx·F_c through the face while the fine side gains the fine
        // fluxes. After refluxing C, the composite total change is exactly
        // (fine influx − fine influx) = 0 mismatch.
        let dt_over_dx = 0.25;
        let f_coarse = 2.0;
        let fine_fluxes = [1.2, 1.8, 1.5, 1.5, 2.1, 0.9, 1.4, 1.6]; // 4 faces x 2 substeps
        let fine_avg: f64 = fine_fluxes.iter().sum::<f64>() / 8.0;

        // coarse side: C was updated with −dt/dx·F_c; the physically
        // consistent update is −dt/dx·⟨F_f⟩
        let mut reg = FluxRegister::new(2, 1);
        let outside = ivec3(3, 1, 1);
        reg.record_coarse(outside, 0, true, &[f_coarse]);
        let w = reg.fine_weight();
        let mut i = 0;
        for dy in 0..2 {
            for dz in 0..2 {
                for _ in 0..2 {
                    reg.record_fine(
                        ivec3(8, 2 + dy, 2 + dz),
                        0,
                        true,
                        &[fine_fluxes[i]],
                        w,
                    );
                    i += 1;
                }
            }
        }
        let mut u = Field3::zeros(Region::cube(8), 1);
        u.set(outside, 5.0 - dt_over_dx * f_coarse); // raw coarse update
        reg.apply(std::slice::from_mut(&mut u), dt_over_dx);
        let expect = 5.0 - dt_over_dx * fine_avg;
        assert!(
            (u.get(outside) - expect).abs() < 1e-12,
            "{} vs {}",
            u.get(outside),
            expect
        );
    }

    #[test]
    fn apply_skips_cells_outside_interior() {
        let mut reg = FluxRegister::new(2, 1);
        reg.record_coarse(ivec3(100, 0, 0), 0, true, &[3.0]);
        let mut f = Field3::zeros(Region::cube(4), 1);
        reg.apply(std::slice::from_mut(&mut f), 1.0); // must not panic
        assert_eq!(f.interior_sum(), 0.0);
    }

    #[test]
    fn multiple_fields_tracked_independently() {
        let mut reg = FluxRegister::new(2, 3);
        let c = ivec3(0, 0, 0);
        reg.record_coarse(c, 1, true, &[1.0, 2.0, 3.0]);
        assert_eq!(reg.correction(c, 0), 1.0);
        assert_eq!(reg.correction(c, 1), 2.0);
        assert_eq!(reg.correction(c, 2), 3.0);
    }
}
