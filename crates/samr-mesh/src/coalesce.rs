//! Merging adjacent boxes: clustering and subtraction produce many small
//! rectangles; coalescing reduces grid counts (fewer patches = less
//! bookkeeping and fewer boundary messages) without changing coverage.

use crate::region::Region;

/// Can `a` and `b` be merged into one box exactly? True when they share a
/// full face: equal extents on two axes and touching on the third.
pub fn mergeable(a: &Region, b: &Region) -> Option<Region> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    for axis in 0..3 {
        let (o1, o2) = ((axis + 1) % 3, (axis + 2) % 3);
        let same_cross = a.lo[o1] == b.lo[o1]
            && a.hi[o1] == b.hi[o1]
            && a.lo[o2] == b.lo[o2]
            && a.hi[o2] == b.hi[o2];
        if !same_cross {
            continue;
        }
        if a.hi[axis] == b.lo[axis] || b.hi[axis] == a.lo[axis] {
            return Some(a.hull(b));
        }
    }
    None
}

/// Repeatedly merge face-adjacent compatible boxes until no merge applies.
/// The result covers exactly the same cells with `<=` the input count.
/// Deterministic: scans in index order, restarting after each merge.
pub fn coalesce(boxes: &[Region]) -> Vec<Region> {
    let mut out: Vec<Region> = boxes.iter().copied().filter(|b| !b.is_empty()).collect();
    'outer: loop {
        for i in 0..out.len() {
            for j in (i + 1)..out.len() {
                if let Some(m) = mergeable(&out[i], &out[j]) {
                    out[i] = m;
                    out.swap_remove(j);
                    continue 'outer;
                }
            }
        }
        break;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivec3;
    use crate::region::region;

    #[test]
    fn face_adjacent_same_cross_section_merges() {
        let a = region(ivec3(0, 0, 0), ivec3(4, 4, 4));
        let b = region(ivec3(4, 0, 0), ivec3(8, 4, 4));
        assert_eq!(mergeable(&a, &b), Some(region(ivec3(0, 0, 0), ivec3(8, 4, 4))));
        assert_eq!(mergeable(&b, &a), Some(region(ivec3(0, 0, 0), ivec3(8, 4, 4))));
    }

    #[test]
    fn mismatched_cross_section_does_not_merge() {
        let a = region(ivec3(0, 0, 0), ivec3(4, 4, 4));
        let b = region(ivec3(4, 0, 0), ivec3(8, 4, 3));
        assert_eq!(mergeable(&a, &b), None);
        // diagonal neighbours don't merge either
        let c = region(ivec3(4, 4, 4), ivec3(8, 8, 8));
        assert_eq!(mergeable(&a, &c), None);
        // overlapping boxes don't merge
        let d = region(ivec3(2, 0, 0), ivec3(6, 4, 4));
        assert_eq!(mergeable(&a, &d), None);
    }

    #[test]
    fn coalesce_reassembles_a_subtraction() {
        // subtract returns up to 6 slabs; coalescing a hole-free split must
        // reduce the count
        let a = Region::cube(8);
        let hole = region(ivec3(0, 0, 0), ivec3(8, 8, 4)); // bottom half
        let parts = a.subtract(&hole);
        let merged = coalesce(&parts);
        assert_eq!(merged, vec![region(ivec3(0, 0, 4), ivec3(8, 8, 8))]);
    }

    #[test]
    fn coalesce_grid_of_octants() {
        // 8 octants of a cube coalesce back to the cube
        let mut parts = Vec::new();
        for dx in 0..2 {
            for dy in 0..2 {
                for dz in 0..2 {
                    parts.push(region(
                        ivec3(4 * dx, 4 * dy, 4 * dz),
                        ivec3(4 * dx + 4, 4 * dy + 4, 4 * dz + 4),
                    ));
                }
            }
        }
        let merged = coalesce(&parts);
        assert_eq!(merged, vec![Region::cube(8)]);
    }

    #[test]
    fn coalesce_preserves_coverage() {
        let parts = vec![
            region(ivec3(0, 0, 0), ivec3(2, 2, 2)),
            region(ivec3(2, 0, 0), ivec3(4, 2, 2)),
            region(ivec3(0, 2, 0), ivec3(2, 4, 2)),
            region(ivec3(5, 5, 5), ivec3(6, 6, 6)),
        ];
        let merged = coalesce(&parts);
        let total_before: i64 = parts.iter().map(|r| r.cells()).sum();
        let total_after: i64 = merged.iter().map(|r| r.cells()).sum();
        assert_eq!(total_before, total_after);
        assert!(merged.len() < parts.len());
        for p in &parts {
            for c in p.iter_cells() {
                assert_eq!(merged.iter().filter(|m| m.contains(c)).count(), 1);
            }
        }
    }

    #[test]
    fn empty_inputs_dropped() {
        assert!(coalesce(&[]).is_empty());
        assert!(coalesce(&[Region::EMPTY]).is_empty());
    }
}
