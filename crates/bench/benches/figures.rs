//! Criterion benches — one per measured figure/experiment of the paper.
//!
//! Each bench times the quick-scale harness for its figure. The full-scale
//! tables for EXPERIMENTS.md (and the `results/*.json` files) come from the
//! `fig3`/`fig7`/`fig8`/`ablations` binaries; Criterion's reported time here
//! is the wall-clock cost of simulating one whole quick experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use samr_engine::AppKind;
use std::time::Duration;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1));

    g.bench_function("fig3_parallel_vs_distributed", |b| {
        b.iter(|| std::hint::black_box(bench::fig3(true)))
    });
    g.bench_function("fig7a_amr64_lan", |b| {
        b.iter(|| std::hint::black_box(bench::fig7(AppKind::Amr64, true)))
    });
    g.bench_function("fig7b_shockpool3d_wan", |b| {
        b.iter(|| std::hint::black_box(bench::fig7(AppKind::ShockPool3D, true)))
    });
    g.bench_function("fig8a_amr64_efficiency", |b| {
        b.iter(|| std::hint::black_box(bench::fig8(AppKind::Amr64, true)))
    });
    g.bench_function("fig8b_shockpool3d_efficiency", |b| {
        b.iter(|| std::hint::black_box(bench::fig8(AppKind::ShockPool3D, true)))
    });
    g.finish();

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1));
    g.bench_function("gamma_sensitivity", |b| {
        b.iter(|| std::hint::black_box(bench::ablation_gamma(AppKind::ShockPool3D, true)))
    });
    g.bench_function("heterogeneous_processors", |b| {
        b.iter(|| std::hint::black_box(bench::ablation_hetero(true)))
    });
    g.bench_function("traffic_adaptation", |b| {
        b.iter(|| std::hint::black_box(bench::ablation_traffic(true)))
    });
    g.finish();
}

criterion_group!(figures, bench_figures);
criterion_main!(figures);
