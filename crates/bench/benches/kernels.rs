//! Criterion micro-benches of the hot kernels underneath the experiments:
//! the Euler sweep, Berger–Rigoutsos clustering, the balancing primitive,
//! link timing, the probe, and the gain evaluator.

use criterion::{criterion_group, criterion_main, Criterion};
use dlb::{balance_level_within, evaluate_gain, BalanceParams, WorkloadHistory};
use samr_mesh::cluster::{berger_rigoutsos, ClusterParams};
use samr_mesh::field::Field3;
use samr_mesh::flag::FlagField;
use samr_mesh::hierarchy::GridHierarchy;
use samr_mesh::region::Region;
use samr_mesh::{ivec3, region};
use samr_solvers::{advection, euler, muscl, poisson};
use simnet::SimView;
use std::hint::black_box;
use topology::{presets, LinkEstimator, ProcId, SimTime};

fn euler_fieldset(n: i64) -> Vec<Field3> {
    let mut fs: Vec<Field3> = (0..euler::NFIELDS)
        .map(|_| Field3::zeros(Region::cube(n), 1))
        .collect();
    euler::set_ambient(&mut fs, 1.0, [0.1, 0.0, 0.0], 1.0, 1.4);
    // a jump so fluxes are non-trivial
    for p in fs[0].storage_region().iter_cells() {
        if p.x < n / 3 {
            fs[euler::fields::RHO].set(p, 4.0);
            fs[euler::fields::E].set(p, 10.0);
        }
    }
    fs
}

fn bench_kernels(c: &mut Criterion) {
    c.bench_function("euler_step_16cubed", |b| {
        let mut fs = euler_fieldset(16);
        b.iter(|| {
            euler::euler_step(black_box(&mut fs), 0.05, 1.4);
        })
    });

    c.bench_function("euler_step_16cubed_reference", |b| {
        let mut fs = euler_fieldset(16);
        b.iter(|| {
            euler::reference::euler_step(black_box(&mut fs), 0.05, 1.4);
        })
    });

    c.bench_function("muscl_step_16cubed", |b| {
        let mut fs: Vec<Field3> = (0..euler::NFIELDS)
            .map(|_| Field3::zeros(Region::cube(16), 2))
            .collect();
        euler::set_ambient(&mut fs, 1.0, [0.1, 0.0, 0.0], 1.0, 1.4);
        for p in fs[0].storage_region().iter_cells() {
            if p.x < 5 {
                fs[euler::fields::RHO].set(p, 4.0);
                fs[euler::fields::E].set(p, 10.0);
            }
        }
        let pool = samr_mesh::pool::FieldPool::new();
        b.iter(|| {
            muscl::muscl_step(black_box(&mut fs), 0.05, 1.4, &pool);
        })
    });

    c.bench_function("advect_step_16cubed_limited", |b| {
        let mut f = Field3::zeros(Region::cube(16), 2);
        f.map_interior(|p, _| ((p.x * 7 + p.y * 3 + p.z) % 11) as f64 * 0.1);
        f.fill_ghosts_zero_gradient();
        let pool = samr_mesh::pool::FieldPool::new();
        b.iter(|| {
            advection::advect_step(black_box(&mut f), [0.4, -0.3, 0.2], true, &pool);
        })
    });

    c.bench_function("rbgs_sweep_16cubed", |b| {
        let mut phi = Field3::zeros(Region::cube(16), 1);
        let mut rhs = Field3::zeros(Region::cube(16), 0);
        phi.map_interior(|p, _| (p.x + p.y + p.z) as f64 * 0.05);
        rhs.map_interior(|p, _| if p.x == 8 { -1.0 } else { 0.0 });
        b.iter(|| {
            poisson::rbgs_sweep(black_box(&mut phi), &rhs, 1.0);
        })
    });

    c.bench_function("fill_ghosts_zero_gradient_16cubed_g2", |b| {
        let mut f = Field3::zeros(Region::cube(16), 2);
        f.map_interior(|p, _| (p.x * p.y + p.z) as f64);
        b.iter(|| {
            black_box(&mut f).fill_ghosts_zero_gradient();
        })
    });

    c.bench_function("berger_rigoutsos_tilted_plane_32", |b| {
        let mut flags = FlagField::new(Region::cube(32));
        for p in Region::cube(32).iter_cells() {
            if (2 * p.x + p.y - 32).abs() <= 1 {
                flags.set(p, true);
            }
        }
        let params = ClusterParams::default();
        b.iter(|| black_box(berger_rigoutsos(&flags, &params)))
    });

    c.bench_function("balance_level_within_64_grids", |b| {
        // setup (hierarchy build + fresh view) is inside the timed closure:
        // balancing mutates both, and the build is cheap next to the
        // balance pass itself
        let procs: Vec<ProcId> = (0..8).map(ProcId).collect();
        b.iter(|| {
            let mut h =
                GridHierarchy::new(region(ivec3(0, 0, 0), ivec3(8 * 64, 8, 8)), 2, 2, 1, 1);
            for i in 0..64 {
                h.insert_patch(
                    0,
                    region(ivec3(8 * i, 0, 0), ivec3(8 * (i + 1), 8, 8)),
                    None,
                    0,
                );
            }
            let mut sim = SimView::new(presets::single_origin2000(8));
            black_box(balance_level_within(
                &mut h,
                &mut sim,
                0,
                &procs,
                &[1.0; 8],
                &BalanceParams::default(),
            ))
        })
    });

    c.bench_function("wan_transfer_time_1MB", |b| {
        let link = presets::mren_oc3_wan(7);
        let mut t = 0u64;
        b.iter(|| {
            t = t.wrapping_add(1);
            black_box(link.transfer_time(SimTime(t * 1_000_000), 1 << 20))
        })
    });

    c.bench_function("probe_and_estimate", |b| {
        let link = presets::mren_oc3_wan(7);
        let mut est = LinkEstimator::paper_default();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(est.refresh(&link, SimTime::from_secs(i)))
        })
    });

    c.bench_function("gain_evaluation_8_procs", |b| {
        let sys = presets::anl_ncsa_wan(4, 4, 7);
        let mut h = WorkloadHistory::new(8);
        h.record_snapshot(
            vec![vec![1000; 8], vec![4000, 3000, 2000, 1000, 0, 0, 0, 0]],
            vec![1, 2],
        );
        h.record_step_time(12.0);
        b.iter(|| black_box(evaluate_gain(&h, &sys)))
    });
}

criterion_group!(kernels, bench_kernels);
criterion_main!(kernels);
