//! Multi-tenant service benchmark: N concurrent SAMR jobs on one shared
//! substrate, tenant-aware admission + γ-gated inter-tenant migration vs
//! naive static placement.
//!
//! The tenant mix is deliberately adversarial to static placement: big
//! 2-group jobs alternate with small 1-group jobs, so the static round-robin
//! anchors two big tenants (plus two smalls) onto the same group window
//! while the aware scheduler spreads them over the least-loaded groups.
//! Every tenant pair admitted to the same group contends for the *same*
//! simulated processor clocks and background-traffic links, so collisions
//! show up directly in per-tenant p99 step latency.
//!
//! Two scenarios run the identical mix:
//!
//! - **quiet** — LAN-class inter-group links with light background traffic;
//! - **congested** — WAN-class links under heavy bursty cross traffic,
//!   where placement mistakes are the most expensive.
//!
//! Each (scenario, mode) cell reports per-tenant p50/p99 step latency,
//! aggregate throughput and migrations. The aware/congested cell runs twice
//! (second run recording telemetry) and the whole bench exits non-zero if
//! the two fingerprints differ — the shared clock must be bit-identical
//! per seed. Writes `results/BENCH_tenants.json`.
//!
//! Flags: `--quick` shrinks tenant sizes for CI, `--seed N`, `--out PATH`,
//! `--trace-out PATH` to export the recorded aware/congested replay
//! (telemetry JSONL when PATH ends in `.jsonl`, Chrome trace JSON
//! otherwise — the JSONL feeds `report run`).

use bench::TRAFFIC_SEED;
use samr_engine::AppKind;
use telemetry::Telemetry;
use tenants::{ServiceResult, TenantService, TenantServiceConfig, TenantSpec};
use topology::{presets, DistributedSystem, Link, SimTime, SystemBuilder, TrafficModel};

const NGROUPS: usize = 6;

/// Fully-connected homogeneous substrate: `NGROUPS` sites of `procs`
/// Origin2000-class processors each, every pair joined by a shared link.
fn substrate(procs: usize, congested: bool, seed: u64) -> DistributedSystem {
    let link = |s: u64| {
        if congested {
            // MREN OC-3-class WAN under heavy bursty cross traffic
            Link::shared(
                "WAN",
                SimTime::from_millis(6),
                19.375e6,
                TrafficModel::Bursty {
                    low: 0.40,
                    high: 0.90,
                    p_on: 0.60,
                    slot: SimTime::from_secs(4).into(),
                    seed: s,
                },
            )
        } else {
            // GigE-class LAN with light background traffic
            Link::shared(
                "LAN",
                SimTime::from_micros(120),
                125e6,
                TrafficModel::Bursty {
                    low: 0.05,
                    high: 0.20,
                    p_on: 0.20,
                    slot: SimTime::from_secs(2).into(),
                    seed: s,
                },
            )
        }
    };
    let mut b = SystemBuilder::new();
    for g in 0..NGROUPS {
        b = b.group(&format!("site-{g}"), procs, 1.0, presets::origin2000_intra());
    }
    for a in 0..NGROUPS {
        for c in (a + 1)..NGROUPS {
            b = b.connect(a, c, link(seed ^ ((a as u64) << 16) ^ ((c as u64) << 4)));
        }
    }
    b.build()
}

/// Eight tenants, mixed presets and sizes: high-priority 2-group jobs
/// interleaved with low-priority 1-group fillers.
fn tenant_mix(quick: bool) -> Vec<TenantSpec> {
    let (big, small, steps) = if quick { (12, 8, 3) } else { (16, 10, 5) };
    let bigs = [AppKind::ShockPool3D, AppKind::Amr64];
    (0..8)
        .map(|i| {
            if i % 2 == 0 {
                TenantSpec::new(bigs[(i / 2) % 2], big, steps, 4.0, 2)
            } else {
                TenantSpec::new(AppKind::AdvectBlob, small, steps, 1.0, 1)
            }
        })
        .collect()
}

fn run_cell(
    procs: usize,
    congested: bool,
    quick: bool,
    seed: u64,
    aware: bool,
    tel: Telemetry,
) -> ServiceResult {
    let cfg = TenantServiceConfig {
        seed,
        tenant_aware: aware,
        telemetry: tel,
        ..TenantServiceConfig::default()
    };
    TenantService::new(substrate(procs, congested, TRAFFIC_SEED), tenant_mix(quick), cfg).run()
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0.0".to_string()
    }
}

fn mode_json(mode: &str, r: &ServiceResult) -> String {
    let tenants = r
        .tenants
        .iter()
        .map(|t| {
            let groups = t
                .groups
                .iter()
                .map(|g| g.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "        {{\"tenant\": {}, \"priority\": {}, \"groups\": [{groups}], \
                 \"steps\": {}, \"cell_updates\": {}, \"total_secs\": {}, \
                 \"p50_step_secs\": {}, \"p99_step_secs\": {}, \"migrations\": {}}}",
                t.tenant,
                num(t.priority),
                t.steps,
                t.cell_updates,
                num(t.total_secs),
                num(t.p50_step_secs),
                num(t.p99_step_secs),
                t.migrations,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "      {{\n        \"mode\": \"{mode}\",\n        \"total_secs\": {},\n        \
         \"aggregate_cell_updates_per_sec\": {},\n        \"migrations\": {},\n        \
         \"worst_p99_step_secs\": {},\n        \"tenants\": [\n{tenants}\n        ]\n      }}",
        num(r.total_secs),
        num(r.aggregate_cell_updates_per_sec()),
        r.migrations,
        num(r.worst_p99_step_secs()),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out = arg_after("--out").unwrap_or_else(|| "results/BENCH_tenants.json".to_string());
    let trace_out = arg_after("--trace-out");
    let seed: u64 = arg_after("--seed")
        .map(|s| s.parse().expect("--seed takes a number"))
        .unwrap_or(42);
    let procs = if quick { 2 } else { 4 };

    let mut scenario_blocks = Vec::new();
    let mut congested_gap = 0.0;
    let mut bit_identical = true;
    for congested in [false, true] {
        let name = if congested { "congested" } else { "quiet" };
        let aware = run_cell(procs, congested, quick, seed, true, Telemetry::null());
        let naive = run_cell(procs, congested, quick, seed, false, Telemetry::null());
        if congested {
            // replay the aware cell with telemetry recording: the shared
            // clock must not notice the observer
            let (tel, sink) = Telemetry::recording_shared();
            let replay = run_cell(procs, congested, quick, seed, true, tel);
            if replay.fingerprint() != aware.fingerprint() {
                bit_identical = false;
            }
            congested_gap = naive.worst_p99_step_secs() - aware.worst_p99_step_secs();
            if let Some(path) = &trace_out {
                use telemetry::TelemetrySink as _;
                let sink = sink.lock().unwrap();
                let doc = if path.ends_with(".jsonl") {
                    sink.to_jsonl()
                } else {
                    sink.to_chrome_trace()
                }
                .expect("recording sink exports");
                if let Some(dir) = std::path::Path::new(path).parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                std::fs::write(path, doc).expect("write trace output");
                println!("wrote {path}");
            }
        }
        println!(
            "{name:>9}: aware p99 {:>9.4}s ({} migrations) | static p99 {:>9.4}s",
            aware.worst_p99_step_secs(),
            aware.migrations,
            naive.worst_p99_step_secs(),
        );
        scenario_blocks.push(format!(
            "    {{\n      \"scenario\": \"{name}\",\n      \"modes\": [\n{},\n{}\n      ]\n    }}",
            mode_json("aware", &aware),
            mode_json("static", &naive),
        ));
    }

    println!(
        "tenants: 8 jobs on {NGROUPS}x{procs} procs, shared clock {} \
         (congested p99 gap: static - aware = {congested_gap:.4}s)",
        if bit_identical {
            "bit-identical"
        } else {
            "DIVERGED"
        },
    );

    let json = format!(
        "{{\n  \"bench\": \"tenants\",\n  \"quick\": {quick},\n  \"seed\": {seed},\n  \
         \"ngroups\": {NGROUPS},\n  \"procs_per_group\": {procs},\n  \"tenants\": 8,\n  \
         \"bit_identical\": {bit_identical},\n  \
         \"congested_p99_gap_secs\": {},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        num(congested_gap),
        scenario_blocks.join(",\n"),
    );
    let _ = std::fs::create_dir_all("results");
    std::fs::write(&out, json).expect("write benchmark output");
    println!("wrote {out}");

    if !bit_identical {
        eprintln!("FAIL: recording telemetry perturbed the shared-clock run");
        std::process::exit(1);
    }
}
