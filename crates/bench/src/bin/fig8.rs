//! Regenerates Fig. 8: efficiency E(1)/(E·P) for both datasets and schemes.
use samr_engine::AppKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for (app, name) in [
        (AppKind::Amr64, "fig8a_amr64"),
        (AppKind::ShockPool3D, "fig8b_shockpool3d"),
    ] {
        let t = bench::fig8(app, quick);
        print!("{}", bench::emit(&t, name));
        let par = t.column("parallel DLB");
        let dist = t.column("distributed DLB");
        let incr: Vec<f64> = par
            .iter()
            .zip(&dist)
            .map(|(p, d)| (d - p) / p * 100.0)
            .collect();
        let (min, max) = incr
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        println!("summary: efficiency increased by {:.1}%..{:.1}%\n", min, max);
    }
}
