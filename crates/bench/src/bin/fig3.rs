//! Regenerates Fig. 3: parallel vs distributed execution under parallel DLB.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let t = bench::fig3(quick);
    print!("{}", bench::emit(&t, "fig3"));
}
