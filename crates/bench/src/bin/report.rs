//! Run-report analyzer and regression differ over the observability
//! artifacts the other bins emit.
//!
//! Two modes:
//!
//! * `report run FILE.jsonl` — digest one telemetry JSONL export into a
//!   human-readable report: event counters, host wall-clock phase
//!   breakdown, gamma-gate statistics, the imbalance trajectory (with an
//!   ASCII sparkline over the retained points), and any anomalies the
//!   online detectors flagged.
//! * `report diff A B [--tol F]` — compare two artifacts (telemetry JSONL
//!   or `BENCH_*.json` benchmark outputs, auto-detected) after flattening
//!   both to `name -> number` maps. Keys with a known "worse" direction
//!   (seconds, misses, drops, anomalies up; throughput, speedups,
//!   bit-identity down) that moved the wrong way by more than the
//!   tolerance (default 20%) are printed as `REGRESSION` lines with the
//!   values attributed, and the exit code is 2. Identical inputs produce
//!   no output and exit 0, so the diff can sit in CI pipelines silently.
//!
//! Like the exporters themselves this bin is serializer-free: it parses
//! with [`telemetry::json`].

use std::collections::BTreeMap;
use telemetry::json::{self, Json};

const USAGE: &str = "usage:\n  report run FILE.jsonl\n  report diff A B [--tol FRACTION]";

/// Relative change beyond which a wrong-direction move is a regression.
const DEFAULT_TOL: f64 = 0.20;

/// Key substrings where an *increase* is a regression.
const WORSE_UP: &[&str] = &[
    "secs", "misses", "dropped", "failed", "faults", "aborted", "anomalies", "crashes", "mae",
    "overhead", "wasted", "evacuations", "quarantines", "msgs_per_decision",
];

/// Key substrings where a *decrease* is a regression. Checked first:
/// `per_sec` must not fall through to the `secs` rule (it does not match
/// `secs`, but keep the precedence explicit for future patterns).
const WORSE_DOWN: &[&str] = &["per_sec", "speedup", "bit_identical", "counts_match"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") if args.len() == 2 => run_report(&args[1]),
        Some("diff") if args.len() >= 3 => {
            let tol = args
                .iter()
                .position(|a| a == "--tol")
                .and_then(|i| args.get(i + 1))
                .map(|s| s.parse::<f64>().expect("--tol takes a fraction"))
                .unwrap_or(DEFAULT_TOL);
            diff_report(&args[1], &args[2], tol)
        }
        _ => {
            eprintln!("{USAGE}");
            64
        }
    };
    std::process::exit(code);
}

fn read_lines(path: &str) -> Vec<Json> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("report: cannot read {path}: {e}"));
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| json::parse(l).unwrap_or_else(|e| panic!("report: bad JSONL line in {path}: {e}\n{l}")))
        .collect()
}

fn f(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn s<'a>(v: &'a Json, key: &str) -> &'a str {
    v.get(key).and_then(Json::as_str).unwrap_or("")
}

// ---------------------------------------------------------------- run mode

fn run_report(path: &str) -> i32 {
    let lines = read_lines(path);
    let Some(meta) = lines.first().filter(|v| s(v, "type") == "meta") else {
        eprintln!("report: {path} is not a telemetry JSONL export (no meta line first)");
        return 65;
    };
    let by_type = |ty: &'static str| lines.iter().filter(move |v| s(v, "type") == ty);

    println!("run report: {path}");
    println!(
        "  gates {} ({} accepted)  redistributes {} ({} aborted)  probes {}  transfers {} ({} failed)",
        f(meta, "gates"),
        f(meta, "gate_accepts"),
        f(meta, "redistributes"),
        f(meta, "aborted_redistributes"),
        f(meta, "probes"),
        f(meta, "transfers"),
        f(meta, "failed_transfers"),
    );
    println!(
        "  faults {}  crashes {}  evacuations {}  rejoins {}  tenant steps {}  anomalies {}",
        f(meta, "faults"),
        f(meta, "crashes"),
        f(meta, "evacuations"),
        f(meta, "rejoins"),
        f(meta, "tenant_steps"),
        f(meta, "anomalies"),
    );
    let dropped = f(meta, "dropped_decisions") + f(meta, "dropped_flows") + f(meta, "spans_dropped");
    if dropped > 0.0 {
        println!(
            "  dropped by ring bounds: {} decisions, {} flows, {} spans (event-derived stats below are partial)",
            f(meta, "dropped_decisions"),
            f(meta, "dropped_flows"),
            f(meta, "spans_dropped"),
        );
    }

    // phase breakdown, largest total first
    let mut phases: Vec<&Json> = by_type("phase").collect();
    phases.sort_by(|a, b| f(b, "total_secs").total_cmp(&f(a, "total_secs")));
    if !phases.is_empty() {
        println!("phase breakdown (host wall-clock):");
        for p in phases.iter().take(10) {
            let label = match p.get("level").and_then(Json::as_f64) {
                Some(l) => format!("{}[l{}]", s(p, "name"), l),
                None => s(p, "name").to_string(),
            };
            println!(
                "  {label:<24} n {:>7}  total {:>9.3}s  p50 {:>10.3e}s  p95 {:>10.3e}s  max {:>10.3e}s",
                f(p, "count"),
                f(p, "total_secs"),
                f(p, "p50_secs"),
                f(p, "p95_secs"),
                f(p, "max_secs"),
            );
        }
    }

    // gate statistics from the retained event lines
    let mut verdicts: BTreeMap<&str, u64> = BTreeMap::new();
    let mut reject_reasons: BTreeMap<&str, u64> = BTreeMap::new();
    for g in by_type("gamma_gate") {
        let v = s(g, "verdict");
        *verdicts.entry(v).or_default() += 1;
        if v != "accept" {
            *reject_reasons.entry(s(g, "reason")).or_default() += 1;
        }
    }
    if !verdicts.is_empty() {
        let total: u64 = verdicts.values().sum();
        let accepts = verdicts.get("accept").copied().unwrap_or(0);
        println!(
            "gate statistics (from {} retained events; accept rate {:.1}%):",
            total,
            100.0 * accepts as f64 / total as f64
        );
        for (v, n) in &verdicts {
            println!("  {v:<10} {n:>6}");
        }
        if !reject_reasons.is_empty() {
            let rs: Vec<String> = reject_reasons
                .iter()
                .map(|(r, n)| format!("{r} {n}"))
                .collect();
            println!("  non-accept reasons: {}", rs.join(", "));
        }
    }

    // imbalance trajectory with a sparkline over the retained points
    if let Some(m) = by_type("metric").find(|v| s(v, "name") == "imbalance") {
        println!(
            "imbalance trajectory ({} samples, {} retained, stride {}):",
            f(m, "samples"),
            f(m, "kept"),
            f(m, "stride"),
        );
        println!(
            "  min {:.4}  mean {:.4}  max {:.4}  last {:.4}",
            f(m, "min"),
            f(m, "mean"),
            f(m, "max"),
            f(m, "last"),
        );
        let pts: Vec<f64> = m
            .get("points")
            .and_then(Json::as_arr)
            .map(|ps| ps.iter().filter_map(|p| p.as_arr()?.get(1)?.as_f64()).collect())
            .unwrap_or_default();
        if pts.len() >= 2 {
            println!("  [{}]", sparkline(&pts, 60));
        }
    }
    let n_metrics = by_type("metric").count();
    if n_metrics > 0 {
        println!("metric series recorded: {n_metrics} (see the metric JSONL lines for full points)");
    }

    let anomalies: Vec<&Json> = by_type("anomaly").collect();
    if !anomalies.is_empty() {
        println!("anomalies ({}):", anomalies.len());
        for a in anomalies {
            println!(
                "  t={:.3}s {}: {}",
                f(a, "t_sim"),
                s(a, "kind"),
                s(a, "detail"),
            );
        }
    } else {
        println!("anomalies: none");
    }
    0
}

/// Scale `pts` into `width` columns of " .:-=+*#%@" (column = mean of the
/// samples it covers). A flat series renders as all-minimum characters.
fn sparkline(pts: &[f64], width: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let width = width.min(pts.len()).max(1);
    let lo = pts.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = pts.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    (0..width)
        .map(|c| {
            let a = c * pts.len() / width;
            let b = ((c + 1) * pts.len() / width).max(a + 1);
            let mean = pts[a..b].iter().sum::<f64>() / (b - a) as f64;
            let idx = ((mean - lo) / span * (RAMP.len() - 1) as f64).round() as usize;
            RAMP[idx.min(RAMP.len() - 1)] as char
        })
        .collect()
}

// --------------------------------------------------------------- diff mode

/// Flatten either artifact kind into a `name -> number` map.
fn load_flat(path: &str) -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("report: cannot read {path}: {e}"));
    // a BENCH_*.json file is one JSON document; a JSONL export is one
    // document per line (the whole-file parse fails on line two)
    if let Ok(doc) = json::parse(&text) {
        let mut out = BTreeMap::new();
        flatten_json("", &doc, &mut out);
        out
    } else {
        flatten_jsonl(&text.lines().filter(|l| !l.trim().is_empty()).map(|l| {
            json::parse(l)
                .unwrap_or_else(|e| panic!("report: {path} is neither JSON nor JSONL: {e}\n{l}"))
        }).collect::<Vec<_>>())
    }
}

/// Recursive dotted-path flattening for benchmark JSON documents. Array
/// elements carrying a `"name"` member use it as the path segment (the
/// hotpath presets), others their index; booleans map to 0/1.
fn flatten_json(prefix: &str, v: &Json, out: &mut BTreeMap<String, f64>) {
    let key = |k: &str| {
        if prefix.is_empty() {
            k.to_string()
        } else {
            format!("{prefix}.{k}")
        }
    };
    match v {
        Json::Num(x) => {
            out.insert(prefix.to_string(), *x);
        }
        Json::Bool(b) => {
            out.insert(prefix.to_string(), if *b { 1.0 } else { 0.0 });
        }
        Json::Obj(members) => {
            for (k, val) in members {
                flatten_json(&key(k), val, out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let seg = item
                    .get("name")
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .unwrap_or_else(|| i.to_string());
                flatten_json(&key(&seg), item, out);
            }
        }
        Json::Str(_) | Json::Null => {}
    }
}

/// Flatten a telemetry JSONL export: meta counters, per-phase wall totals,
/// stat-block entries, and per-series metric aggregates. Individual events
/// are not compared (they are ring-bounded and scheduling-ordered); their
/// population is already visible through the meta counters.
fn flatten_jsonl(lines: &[Json]) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for v in lines {
        match s(v, "type") {
            "meta" => {
                if let Json::Obj(members) = v {
                    for (k, val) in members {
                        if let Some(x) = val.as_f64() {
                            out.insert(k.clone(), x);
                        }
                    }
                }
            }
            "phase" => {
                let label = match v.get("level").and_then(Json::as_f64) {
                    Some(l) => format!("phase:{}[l{}]", s(v, "name"), l),
                    None => format!("phase:{}", s(v, "name")),
                };
                out.insert(format!("{label}:total_secs"), f(v, "total_secs"));
                out.insert(format!("{label}:p95_secs"), f(v, "p95_secs"));
                out.insert(format!("{label}:count"), f(v, "count"));
            }
            "stat_block" => {
                if let Json::Obj(members) = v {
                    let name = s(v, "name").to_string();
                    for (k, val) in members {
                        if k == "type" || k == "name" {
                            continue;
                        }
                        if let Some(x) = val.as_f64() {
                            out.insert(format!("{name}:{k}"), x);
                        }
                    }
                }
            }
            "metric" => {
                let name = s(v, "name");
                out.insert(format!("metric:{name}:mean"), f(v, "mean"));
                out.insert(format!("metric:{name}:max"), f(v, "max"));
                out.insert(format!("metric:{name}:last"), f(v, "last"));
                out.insert(format!("metric:{name}:samples"), f(v, "samples"));
            }
            _ => {}
        }
    }
    out
}

/// `Some(relative_change)` when `key` moved in its worse direction, where
/// the change is expressed as a positive fraction of `|a|`.
fn regression(key: &str, a: f64, b: f64) -> Option<f64> {
    let worse_down = WORSE_DOWN.iter().any(|p| key.contains(p));
    let worse_up = !worse_down && WORSE_UP.iter().any(|p| key.contains(p));
    let delta = if worse_down {
        a - b // a decrease is bad: positive delta = regression
    } else if worse_up {
        b - a // an increase is bad
    } else {
        return None;
    };
    if delta <= 0.0 {
        return None;
    }
    Some(if a == 0.0 { f64::INFINITY } else { delta / a.abs() })
}

fn diff_report(path_a: &str, path_b: &str, tol: f64) -> i32 {
    let a = load_flat(path_a);
    let b = load_flat(path_b);
    let mut regressions = 0usize;
    for (key, &va) in &a {
        let Some(&vb) = b.get(key) else { continue };
        let Some(rel) = regression(key, va, vb) else {
            continue;
        };
        // boolean keys (bit_identical, counts_match) regress on any flip;
        // numeric keys must clear the tolerance
        let boolean = WORSE_DOWN[2..].iter().any(|p| key.contains(p));
        if boolean || rel > tol {
            regressions += 1;
            if rel.is_finite() {
                println!("REGRESSION {key}: {va} -> {vb} ({:+.1}%)", (vb - va) / va.abs() * 100.0);
            } else {
                println!("REGRESSION {key}: {va} -> {vb}");
            }
        }
    }
    if regressions > 0 {
        println!(
            "report diff: {regressions} regression(s) between {path_a} and {path_b} (tolerance ±{:.0}%)",
            tol * 100.0
        );
        2
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_rules_flag_only_wrong_way_moves() {
        // seconds up = regression; down = fine
        assert!(regression("wall_recording_secs", 1.0, 3.0).unwrap() > 1.9);
        assert!(regression("wall_recording_secs", 3.0, 1.0).is_none());
        // throughput down = regression (and must not hit the "secs" rule)
        assert!(regression("cell_updates_per_sec", 100.0, 50.0).is_some());
        assert!(regression("cell_updates_per_sec", 50.0, 100.0).is_none());
        // boolean flip
        assert!(regression("bit_identical", 1.0, 0.0).is_some());
        // decision traffic up = regression (and "msgs_per_decision" must
        // not be mistaken for the throughput "per_sec" rule)
        assert!(regression("msgs_per_decision", 100.0, 400.0).is_some());
        assert!(regression("msgs_per_decision", 400.0, 100.0).is_none());
        // decision wall rides the generic "secs" rule
        assert!(regression("decision_secs_per_step", 0.01, 0.05).is_some());
        // undirected keys never flag
        assert!(regression("peak_patches", 1.0, 100.0).is_none());
        // growth from zero is an infinite relative change
        assert_eq!(
            regression("steady_misses", 0.0, 4.0),
            Some(f64::INFINITY)
        );
    }

    #[test]
    fn flatten_json_uses_preset_names_and_maps_bools() {
        let doc = json::parse(
            r#"{"bench": "hotpath", "presets": [{"name": "amr64", "wall_secs": 1.5, "bit_identical": true}]}"#,
        )
        .unwrap();
        let mut out = BTreeMap::new();
        flatten_json("", &doc, &mut out);
        assert_eq!(out.get("presets.amr64.wall_secs"), Some(&1.5));
        assert_eq!(out.get("presets.amr64.bit_identical"), Some(&1.0));
        assert!(!out.contains_key("bench"), "strings are not compared");
    }

    #[test]
    fn flatten_jsonl_keeps_meta_phases_blocks_and_metrics() {
        let lines: Vec<Json> = [
            r#"{"type": "meta", "gates": 4, "anomalies": 1, "dropped_decisions": 0}"#,
            r#"{"type": "stat_block", "name": "field_pool", "hits": 10, "steady_misses": 0}"#,
            r#"{"type": "phase", "name": "solve", "level": 1, "count": 8, "total_secs": 0.5, "p50_secs": 0.06, "p95_secs": 0.07, "p99_secs": 0.07, "max_secs": 0.08}"#,
            r#"{"type": "metric", "name": "imbalance", "samples": 9, "kept": 9, "downsamples": 0, "stride": 1, "min": 1.0, "max": 2.0, "mean": 1.5, "last": 1.2, "points": [[0.0, 1.0]]}"#,
            r#"{"type": "gamma_gate", "seq": 0, "t_sim": 0.1, "verdict": "accept"}"#,
        ]
        .iter()
        .map(|l| json::parse(l).unwrap())
        .collect();
        let flat = flatten_jsonl(&lines);
        assert_eq!(flat.get("gates"), Some(&4.0));
        assert_eq!(flat.get("anomalies"), Some(&1.0));
        assert_eq!(flat.get("field_pool:steady_misses"), Some(&0.0));
        assert_eq!(flat.get("phase:solve[l1]:total_secs"), Some(&0.5));
        assert_eq!(flat.get("metric:imbalance:mean"), Some(&1.5));
        // raw events do not produce comparison keys
        assert!(flat.keys().all(|k| !k.contains("gamma_gate")));
    }

    #[test]
    fn sparkline_is_monotone_with_the_data() {
        let rising: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let line = sparkline(&rising, 10);
        assert_eq!(line.len(), 10);
        assert!(line.starts_with(' '));
        assert!(line.ends_with('@'));
        let flat = sparkline(&[2.0, 2.0, 2.0], 3);
        assert_eq!(flat, "   ");
    }
}
