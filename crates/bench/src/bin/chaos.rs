//! Chaos harness: sweep seeded random fault schedules — WAN link faults and
//! crash-stop processor faults *combined* — through an invariant oracle.
//! Every seed runs the ShockPool3D WAN preset twice (once recording
//! telemetry, once with the null handle) and must satisfy:
//!
//! - **no patch lost or duplicated** — the hierarchy passes
//!   `check_invariants` and level 0 still tiles the domain exactly;
//! - **conservation** — total level-0 mass stays within tolerance of the
//!   fault-free baseline (stale ghost zones from tolerated transfer
//!   failures may perturb it, but never wildly);
//! - **determinism** — both runs produce bit-identical trace CSVs, solution
//!   fingerprints and total times (all fault-path randomness is seeded, and
//!   recording telemetry never perturbs the simulation);
//! - **audited causality** — every `evacuate` event in the telemetry
//!   decision log is preceded by a `crash` event for the same processor;
//! - **bounded MTTR** — detection plus evacuation never exceeds a few mean
//!   step times.
//!
//! Writes `results/BENCH_chaos.json` and exits non-zero on any oracle
//! violation (or if the whole sweep was vacuous: no seed produced a crash).
//!
//! Flags: `--quick` shrinks scale and seed count for CI runs; `--seeds N`
//! overrides the seed count; `--out PATH` overrides the output file;
//! `--trace-out PATH` re-runs seed 1's recorded leg after the sweep and
//! exports it (telemetry JSONL when PATH ends in `.jsonl`, Chrome trace
//! JSON otherwise — the JSONL feeds `report run`).

use bench::{Scale, TRAFFIC_SEED};
use rayon::prelude::*;
use samr_engine::{AppKind, Driver, RunConfig, Scheme};
use telemetry::{EventKind, Telemetry};
use topology::faults::{FaultSchedule, ProcFaultSchedule};
use topology::{presets, DistributedSystem, SimTime, SystemBuilder};

/// Level-0 mass may drift this much (relative) from the fault-free run
/// before the conservation oracle fires.
const MASS_TOLERANCE: f64 = 0.25;

fn chaos_system(n: usize, link: FaultSchedule) -> DistributedSystem {
    let wan = presets::mren_oc3_wan(TRAFFIC_SEED).with_faults(link);
    SystemBuilder::new()
        .group("ANL", n, 1.0, presets::origin2000_intra())
        .group("NCSA", n, 1.0, presets::origin2000_intra())
        .connect(0, 1, wan)
        .build()
}

fn cfg(scale: Scale, procs: ProcFaultSchedule, tel: Telemetry) -> RunConfig {
    let mut c = RunConfig::new(
        AppKind::ShockPool3D,
        scale.n0,
        scale.steps,
        Scheme::distributed_default(),
    );
    c.max_levels = scale.max_levels;
    c.proc_faults = procs;
    c.telemetry = tel;
    c
}

/// Everything one run contributes to the oracle.
struct Observed {
    res: samr_engine::RunResult,
    csv: String,
    /// (patches, cells, xor of field bits) — the solution fingerprint.
    fp: (usize, i64, u64),
    level0_cells: i64,
    mass: f64,
    nesting: Result<(), String>,
}

fn observe(sys: DistributedSystem, c: RunConfig) -> Observed {
    let steps = c.steps;
    let mut d = Driver::new(sys, c);
    for _ in 0..steps {
        d.step_once();
    }
    let h = d.hierarchy();
    let nesting = h.check_invariants();
    let mut bits: u64 = 0;
    let mut cells = 0i64;
    for p in h.iter() {
        cells += p.cells();
        for f in &p.fields {
            for cell in p.region.iter_cells() {
                bits ^= f.get(cell).to_bits().rotate_left((cell.x % 63) as u32);
            }
        }
    }
    let fp = (h.num_patches(), cells, bits);
    let level0_cells: i64 = h
        .level_ids(0)
        .iter()
        .map(|&id| h.patch(id).cells())
        .sum();
    let mass: f64 = h
        .level_ids(0)
        .iter()
        .map(|&id| {
            let p = h.patch(id);
            p.region.iter_cells().map(|cell| p.fields[0].get(cell)).sum::<f64>()
        })
        .sum();
    let csv = d.trace().to_csv();
    Observed {
        res: d.finish(),
        csv,
        fp,
        level0_cells,
        mass,
        nesting,
    }
}

struct SeedOutcome {
    seed: u64,
    crashes: u64,
    rejoins: u64,
    evacuations: u64,
    evacuated_cells: i64,
    mttr_max_secs: f64,
    recompute_secs: f64,
    total_secs: f64,
    mass_rel_err: f64,
    violations: Vec<String>,
}

#[allow(clippy::too_many_arguments)]
fn sweep_seed(
    seed: u64,
    n: usize,
    scale: Scale,
    horizon: SimTime,
    mean_up: SimTime,
    mean_down: SimTime,
    base_mass: f64,
    mttr_bound: f64,
) -> SeedOutcome {
    let link = FaultSchedule::generate(seed, horizon, mean_up, mean_down);
    let sys = chaos_system(n, link.clone());
    let procs = ProcFaultSchedule::generate_for(&sys, seed, horizon, mean_up, mean_down);

    let (tel, sink) = Telemetry::recording_shared();
    let a = observe(sys, cfg(scale, procs.clone(), tel));
    let b = observe(
        chaos_system(n, link),
        cfg(scale, procs, Telemetry::null()),
    );

    let mut violations = Vec::new();
    if let Err(e) = &a.nesting {
        violations.push(format!("nesting: {e}"));
    }
    let domain = scale.n0 * scale.n0 * scale.n0;
    if a.level0_cells != domain {
        violations.push(format!(
            "patch loss/duplication: level 0 covers {} cells, domain has {domain}",
            a.level0_cells
        ));
    }
    let mass_rel_err = if base_mass.abs() > 0.0 {
        (a.mass - base_mass).abs() / base_mass.abs()
    } else {
        a.mass.abs()
    };
    if mass_rel_err > MASS_TOLERANCE {
        violations.push(format!(
            "conservation: level-0 mass drifted {:.1}% from the fault-free run",
            mass_rel_err * 100.0
        ));
    }
    if a.csv != b.csv || a.fp != b.fp || a.res.total_secs != b.res.total_secs {
        violations.push("determinism: two identical runs diverged".to_string());
    }

    // audit: walk the decision log in order; an evacuation may only follow
    // a detected crash of the same processor
    let events = sink.lock().unwrap().events();
    let mut crashed: Vec<usize> = Vec::new();
    for e in &events {
        match &e.kind {
            EventKind::Crash(c) => crashed.push(c.proc),
            EventKind::Evacuate(ev) if !crashed.contains(&ev.proc) => {
                violations.push(format!(
                    "audit: evacuation of proc {} with no preceding crash event",
                    ev.proc
                ));
            }
            _ => {}
        }
    }

    let rec = &a.res.recovery;
    if rec.mttr_max_secs > mttr_bound {
        violations.push(format!(
            "mttr: {:.3}s exceeds the {:.3}s bound",
            rec.mttr_max_secs, mttr_bound
        ));
    }
    if rec.crashes != events_crashes(&events) {
        violations.push(format!(
            "audit: RunResult reports {} crashes, telemetry logged {}",
            rec.crashes,
            events_crashes(&events)
        ));
    }

    SeedOutcome {
        seed,
        crashes: rec.crashes,
        rejoins: rec.rejoins,
        evacuations: rec.evacuations,
        evacuated_cells: rec.evacuated_cells,
        mttr_max_secs: rec.mttr_max_secs,
        recompute_secs: rec.recompute_secs,
        total_secs: a.res.total_secs,
        mass_rel_err,
        violations,
    }
}

fn events_crashes(events: &[telemetry::EventRecord]) -> u64 {
    events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Crash(_)))
        .count() as u64
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0.0".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out = arg_after("--out").unwrap_or_else(|| "results/BENCH_chaos.json".to_string());
    let nseeds: u64 = arg_after("--seeds")
        .map(|s| s.parse().expect("--seeds takes a number"))
        .unwrap_or(if quick { 16 } else { 24 });
    let scale = Scale::pick(quick);
    let n = if quick { 2 } else { 4 };

    // the fault-free baseline anchors the fault time-scales, the MTTR bound
    // and the conservation reference
    let base = observe(
        chaos_system(n, FaultSchedule::none()),
        cfg(scale, ProcFaultSchedule::none(2 * n), Telemetry::null()),
    );
    base.nesting.as_ref().expect("fault-free baseline violates nesting");
    let b = base.res.total_secs;
    // up/down spans sized so most seeds crash (and often rejoin) mid-run
    let mean_up = SimTime::from_secs_f64((0.4 * b).max(1e-3));
    let mean_down = SimTime::from_secs_f64((0.3 * b).max(1e-3));
    let horizon = SimTime::from_secs_f64(4.0 * b + 1.0);
    // detection can lag a crash by nearly one full level-0 step, and the
    // evacuation recompute adds a fraction of one more
    let mttr_bound = 4.0 * b / scale.steps as f64;

    let outcomes: Vec<SeedOutcome> = (1..=nseeds)
        .collect::<Vec<u64>>()
        .into_par_iter()
        .map(|seed| {
            sweep_seed(
                seed, n, scale, horizon, mean_up, mean_down, base.mass, mttr_bound,
            )
        })
        .collect();

    let total_crashes: u64 = outcomes.iter().map(|o| o.crashes).sum();
    let total_evacs: u64 = outcomes.iter().map(|o| o.evacuations).sum();
    let total_rejoins: u64 = outcomes.iter().map(|o| o.rejoins).sum();
    let total_violations: usize = outcomes.iter().map(|o| o.violations.len()).sum();
    let vacuous = total_crashes == 0;

    for o in &outcomes {
        println!(
            "seed {:>3}: crashes {} rejoins {} evacuated {:>6} cells  mttr {:>7.3}s  \
             mass drift {:>6.2}%  {}",
            o.seed,
            o.crashes,
            o.rejoins,
            o.evacuated_cells,
            o.mttr_max_secs,
            o.mass_rel_err * 100.0,
            if o.violations.is_empty() {
                "ok".to_string()
            } else {
                format!("VIOLATIONS: {}", o.violations.join("; "))
            }
        );
    }
    println!(
        "chaos: {nseeds} seeds, {total_crashes} crashes, {total_evacs} evacuations, \
         {total_rejoins} rejoins, {total_violations} violations (mttr bound {mttr_bound:.3}s)"
    );

    let mut entries = Vec::new();
    for o in &outcomes {
        let viol = o
            .violations
            .iter()
            .map(|v| format!("\"{}\"", v.replace('"', "'")))
            .collect::<Vec<_>>()
            .join(", ");
        entries.push(format!(
            "    {{\n      \"seed\": {},\n      \"crashes\": {},\n      \"rejoins\": {},\n      \
             \"evacuations\": {},\n      \"evacuated_cells\": {},\n      \
             \"mttr_max_secs\": {},\n      \"recompute_secs\": {},\n      \
             \"total_secs\": {},\n      \"mass_rel_err\": {},\n      \
             \"violations\": [{viol}]\n    }}",
            o.seed,
            o.crashes,
            o.rejoins,
            o.evacuations,
            o.evacuated_cells,
            num(o.mttr_max_secs),
            num(o.recompute_secs),
            num(o.total_secs),
            num(o.mass_rel_err),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"chaos\",\n  \"quick\": {quick},\n  \"seeds\": {nseeds},\n  \
         \"n0\": {}, \"max_levels\": {}, \"steps\": {}, \"procs_per_site\": {n},\n  \
         \"baseline_secs\": {},\n  \"mttr_bound_secs\": {},\n  \
         \"total_crashes\": {total_crashes},\n  \"total_evacuations\": {total_evacs},\n  \
         \"total_rejoins\": {total_rejoins},\n  \"violations\": {total_violations},\n  \
         \"vacuous\": {vacuous},\n  \"seeds_detail\": [\n{}\n  ]\n}}\n",
        scale.n0,
        scale.max_levels,
        scale.steps,
        num(b),
        num(mttr_bound),
        entries.join(",\n"),
    );
    let _ = std::fs::create_dir_all("results");
    std::fs::write(&out, json).expect("write benchmark output");
    println!("wrote {out}");

    if let Some(path) = arg_after("--trace-out") {
        // a dedicated recorded replay of seed 1 (the sweep's own sinks are
        // per-seed and already dropped); recording is bit-identical, so
        // this is the same run the oracle just validated
        use telemetry::TelemetrySink as _;
        let link = FaultSchedule::generate(1, horizon, mean_up, mean_down);
        let sys = chaos_system(n, link);
        let procs = ProcFaultSchedule::generate_for(&sys, 1, horizon, mean_up, mean_down);
        let (tel, sink) = Telemetry::recording_shared();
        let _ = observe(sys, cfg(scale, procs, tel));
        let sink = sink.lock().unwrap();
        let doc = if path.ends_with(".jsonl") {
            sink.to_jsonl()
        } else {
            sink.to_chrome_trace()
        }
        .expect("recording sink exports");
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&path, doc).expect("write trace output");
        println!("wrote {path}");
    }

    if total_violations > 0 {
        eprintln!("FAIL: {total_violations} oracle violations across the sweep");
        std::process::exit(1);
    }
    if vacuous {
        eprintln!("FAIL: no seed produced a crash — the sweep proved nothing");
        std::process::exit(1);
    }
}
