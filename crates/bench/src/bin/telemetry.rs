//! Telemetry overhead and audit gate: runs the AMR64 (LAN) preset with the
//! default null handle and with a [`telemetry::RecordingSink`], checks the
//! two runs are bit-identical, that the JSONL export parses line by line,
//! and that the exported gate counts agree with the [`RunResult`] counters
//! (`gamma_gate` events == `global_checks`, `accept` verdicts ==
//! `global_redistributions`). Writes `results/BENCH_telemetry.json` with
//! best-of-3 wall times and the recording overhead percentage (the verify
//! gate enforces <= 2%).
//!
//! Flags: `--quick` shrinks the scale for smoke/CI runs; `--out PATH`
//! overrides the output file; `--trace-out PATH` additionally writes the
//! recording run's Chrome trace JSON (load in chrome://tracing or
//! https://ui.perfetto.dev).

use bench::{lan_system, Scale};
use samr_engine::{AppKind, Driver, RunConfig, RunResult, Scheme};
use std::time::Instant;
use telemetry::json::{self, Json};
use telemetry::{Telemetry, TelemetrySink as _};

fn timed_run(scale: Scale, n: usize, tel: Telemetry) -> (RunResult, f64) {
    let mut cfg = RunConfig::new(AppKind::Amr64, scale.n0, scale.steps, Scheme::distributed_default());
    cfg.max_levels = scale.max_levels;
    cfg.telemetry = tel;
    let t0 = Instant::now();
    let res = Driver::new(lan_system(n), cfg).run();
    (res, t0.elapsed().as_secs_f64())
}

/// Everything that must agree bitwise between the null and recording runs.
fn fingerprint(r: &RunResult) -> (u64, u64, u64, usize, usize, usize) {
    (
        r.total_secs.to_bits(),
        r.cell_updates,
        r.breakdown.remote_bytes,
        r.final_patches,
        r.peak_patches,
        r.global_redistributions,
    )
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0.0".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out = arg_after("--out").unwrap_or_else(|| "results/BENCH_telemetry.json".to_string());
    let trace_out = arg_after("--trace-out");
    let scale = Scale::pick(quick);
    let n = if quick { 1 } else { 2 };
    let reps = 3;

    // best-of-N wall clock per mode; the fingerprint check uses the last
    // run of each mode (any pair must agree)
    let mut wall_null = f64::INFINITY;
    let mut wall_rec = f64::INFINITY;
    let mut res_null = None;
    let mut last_rec = None;
    for _ in 0..reps {
        let (r, w) = timed_run(scale, n, Telemetry::null());
        wall_null = wall_null.min(w);
        res_null = Some(r);
    }
    for _ in 0..reps {
        let (tel, sink) = Telemetry::recording_shared();
        let (r, w) = timed_run(scale, n, tel);
        wall_rec = wall_rec.min(w);
        last_rec = Some((r, sink));
    }
    let res_null = res_null.unwrap();
    let (res_rec, sink) = last_rec.unwrap();

    let identical = fingerprint(&res_null) == fingerprint(&res_rec);
    let overhead_pct = (wall_rec - wall_null) / wall_null * 100.0;

    // parse the JSONL export line by line and re-count the gate events
    let sink = sink.lock().unwrap();
    let jsonl = sink.to_jsonl().expect("recording sink exports JSONL");
    let mut parsed_lines = 0usize;
    let mut gates = 0usize;
    let mut accepts = 0usize;
    for line in jsonl.lines() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line: {e:?}\n{line}"));
        parsed_lines += 1;
        if v.get("type").and_then(Json::as_str) == Some("gamma_gate") {
            gates += 1;
            if v.get("verdict").and_then(Json::as_str) == Some("accept") {
                accepts += 1;
            }
        }
    }
    let (dropped_decisions, _) = sink.dropped();
    let counts = sink.counts();
    // the ring-independent counters must match the engine's own tally; the
    // ring-derived recount matches too unless eviction dropped decisions
    let counts_match = counts.gates == res_rec.global_checks as u64
        && counts.gate_accepts == res_rec.global_redistributions as u64
        && (dropped_decisions > 0
            || (gates == res_rec.global_checks && accepts == res_rec.global_redistributions));

    println!(
        "amr64 telemetry: null {:.3}s, recording {:.3}s ({:+.2}% overhead)  bit-identical {}  \
         jsonl lines {}  gates {}/{} accepts {}/{}",
        wall_null,
        wall_rec,
        overhead_pct,
        identical,
        parsed_lines,
        counts.gates,
        res_rec.global_checks,
        counts.gate_accepts,
        res_rec.global_redistributions,
    );
    println!(
        "{:>15} {} bounded metric series, {} anomalies flagged",
        "",
        sink.metrics().len(),
        counts.anomalies,
    );

    if let Some(path) = &trace_out {
        let trace = sink.to_chrome_trace().expect("recording sink exports a trace");
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, trace).expect("write Chrome trace");
        println!("wrote {path}");
    }

    let json_out = format!(
        "{{\n  \"bench\": \"telemetry\",\n  \"quick\": {quick},\n  \"preset\": \"amr64\",\n  \
         \"n0\": {}, \"max_levels\": {}, \"steps\": {}, \"procs_per_site\": {n},\n  \
         \"wall_null_secs\": {},\n  \"wall_recording_secs\": {},\n  \"overhead_pct\": {},\n  \
         \"bit_identical\": {identical},\n  \"jsonl_lines\": {parsed_lines},\n  \
         \"gates\": {},\n  \"gate_accepts\": {},\n  \"global_checks\": {},\n  \
         \"global_redistributions\": {},\n  \"dropped_decisions\": {dropped_decisions},\n  \
         \"metric_series\": {},\n  \"anomalies\": {},\n  \
         \"counts_match\": {counts_match}\n}}\n",
        scale.n0,
        scale.max_levels,
        scale.steps,
        num(wall_null),
        num(wall_rec),
        num(overhead_pct),
        counts.gates,
        counts.gate_accepts,
        res_rec.global_checks,
        res_rec.global_redistributions,
        sink.metrics().len(),
        counts.anomalies,
    );
    let _ = std::fs::create_dir_all("results");
    std::fs::write(&out, json_out).expect("write benchmark output");
    println!("wrote {out}");

    if !identical {
        eprintln!("FAIL: recording telemetry perturbed the simulation");
        std::process::exit(1);
    }
    if !counts_match {
        eprintln!("FAIL: telemetry gate counts disagree with the RunResult counters");
        std::process::exit(1);
    }
}
