//! Scratch calibration tool: prints breakdowns and the global decision log
//! for one configuration (developer utility).
use bench::*;
use samr_engine::{AppKind, Driver, RunConfig, Scheme};

fn main() {
    let scale = Scale::full();
    for scheme in [Scheme::Parallel, Scheme::distributed_default()] {
        let mut cfg =
            RunConfig::new(AppKind::ShockPool3D, scale.n0, scale.steps, scheme);
        cfg.max_levels = scale.max_levels;
        let r = Driver::new(wan_system(1), cfg).run();
        println!("{}", r.summary());
        println!(
            "  compute {:.1} local {:.1} remote {:.1} lb {:.1} rbytes {}M",
            r.breakdown.compute,
            r.breakdown.comm_local,
            r.breakdown.comm_remote,
            r.breakdown.lb,
            r.breakdown.remote_bytes / 1_000_000
        );
        for d in &r.decisions {
            println!(
                "  step {}: imb {:.2} gain {:.2}s cost {:?} invoked {} moved {} loads {:?}",
                d.step, d.imbalance, d.gain_secs, d.cost_secs, d.invoked, d.moved_cells, d.group_loads
            );
        }
    }
}
