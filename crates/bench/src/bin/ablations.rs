//! Regenerates the three ablation studies (γ sensitivity, processor
//! heterogeneity, traffic adaptation).
use samr_engine::AppKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let t = bench::ablation_gamma(AppKind::ShockPool3D, quick);
    println!("{}", bench::emit(&t, "ablation_gamma"));
    let t = bench::ablation_hetero(quick);
    println!("{}", bench::emit(&t, "ablation_hetero"));
    let t = bench::ablation_traffic(quick);
    println!("{}", bench::emit(&t, "ablation_traffic"));
    let t = bench::ablation_tolerance(quick);
    println!("{}", bench::emit(&t, "ablation_tolerance"));
    let t = bench::ablation_lambda(quick);
    println!("{}", bench::emit(&t, "ablation_lambda"));
    let t = bench::ablation_faults(quick);
    println!("{}", bench::emit(&t, "ablation_faults"));
    let t = bench::ablation_forecast(quick);
    println!("{}", bench::emit(&t, "ablation_forecast"));
}
