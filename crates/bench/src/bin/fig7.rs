//! Regenerates Fig. 7: total execution time, parallel vs distributed DLB,
//! for AMR64 (LAN) and ShockPool3D (WAN), plus the §5 improvement summary.
use samr_engine::AppKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for (app, name) in [
        (AppKind::Amr64, "fig7a_amr64"),
        (AppKind::ShockPool3D, "fig7b_shockpool3d"),
    ] {
        let t = bench::fig7(app, quick);
        print!("{}", bench::emit(&t, name));
        let imps = t.column("improvement %");
        let (min, max) = imps
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let avg = imps.iter().sum::<f64>() / imps.len() as f64;
        println!(
            "summary: improvement {:.1}%..{:.1}%, average {:.1}%\n",
            min, max, avg
        );
    }
}
