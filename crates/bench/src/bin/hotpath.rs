//! Hot-path throughput baseline: runs the AMR64 (LAN) and ShockPool3D (WAN)
//! presets through the optimized zero-clone data path and the clone-based
//! reference path, checks the two are bit-identical, and writes
//! `results/BENCH_hotpath.json` with cell-updates/sec, host wall-clock
//! seconds per phase (solve / ghost / regrid / restrict), and the peak patch
//! count. The JSON is written by hand so the binary has no serializer
//! dependency in its hot loop.
//!
//! Flags: `--quick` shrinks the scale for smoke/CI runs; `--full` raises it
//! to the large-domain scale (n0 = 32, 10 steps — the committed
//! `results/BENCH_hotpath_full.json` baseline); `--out PATH` overrides the
//! output file (the verify gate uses this to avoid clobbering the committed
//! baselines); `--trace-out PATH` records telemetry during the optimized
//! runs and writes the last preset's Chrome trace JSON (load in
//! chrome://tracing or https://ui.perfetto.dev — recording is
//! bit-identical, so the data-path check still holds).

use bench::{lan_system, wan_system, Scale};
use samr_engine::{AppKind, Driver, RunConfig, RunResult, Scheme};
use std::fmt::Write as _;
use std::time::Instant;
use topology::DistributedSystem;

fn system_for(app: AppKind, n: usize) -> DistributedSystem {
    match app {
        AppKind::Amr64 => lan_system(n),
        _ => wan_system(n),
    }
}

fn timed_run(
    sys: DistributedSystem,
    app: AppKind,
    scale: Scale,
    reference: bool,
    tel: telemetry::Telemetry,
) -> (RunResult, f64) {
    let mut cfg = RunConfig::new(app, scale.n0, scale.steps, Scheme::distributed_default());
    cfg.max_levels = scale.max_levels;
    cfg.reference_datapath = reference;
    cfg.telemetry = tel;
    let t0 = Instant::now();
    let res = Driver::new(sys, cfg).run();
    (res, t0.elapsed().as_secs_f64())
}

/// Everything that must agree bitwise between the two data paths.
fn fingerprint(r: &RunResult) -> (u64, u64, u64, usize, usize, usize) {
    (
        r.total_secs.to_bits(),
        r.cell_updates,
        r.breakdown.remote_bytes,
        r.final_patches,
        r.peak_patches,
        r.global_redistributions,
    )
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0.0".to_string()
    }
}

fn phases_json(w: &metrics::PhaseWall) -> String {
    format!(
        "{{\"solve\": {}, \"ghost\": {}, \"regrid\": {}, \"restrict\": {}, \"decision\": {}}}",
        num(w.solve),
        num(w.ghost),
        num(w.regrid),
        num(w.restrict),
        num(w.decision)
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let full = args.iter().any(|a| a == "--full");
    assert!(
        !(quick && full),
        "--quick and --full are mutually exclusive"
    );
    let out = arg_after("--out").unwrap_or_else(|| "results/BENCH_hotpath.json".to_string());
    let trace_out = arg_after("--trace-out");
    let scale = if full {
        // large-domain scale: deep hierarchies and long steady-state runs,
        // where the pooled data path earns its keep
        Scale {
            n0: 32,
            max_levels: 4,
            steps: 10,
        }
    } else {
        Scale::pick(quick)
    };
    let n = if quick { 1 } else { 2 };

    let mut entries = Vec::new();
    let mut all_identical = true;
    let mut last_sink = None;
    for (name, app) in [("amr64", AppKind::Amr64), ("shockpool3d", AppKind::ShockPool3D)] {
        let tel = if trace_out.is_some() {
            let (tel, sink) = telemetry::Telemetry::recording_shared();
            last_sink = Some(sink);
            tel
        } else {
            telemetry::Telemetry::null()
        };
        let (opt, opt_wall) = timed_run(system_for(app, n), app, scale, false, tel);
        let (refr, ref_wall) = timed_run(
            system_for(app, n),
            app,
            scale,
            true,
            telemetry::Telemetry::null(),
        );
        let identical = fingerprint(&opt) == fingerprint(&refr);
        all_identical &= identical;
        let cups = opt.cell_updates as f64 / opt_wall;
        println!(
            "{name:>12}: {:.3e} cell-updates/sec  wall {:.3}s (reference {:.3}s, x{:.2})  \
             peak patches {}  bit-identical {}",
            cups,
            opt_wall,
            ref_wall,
            ref_wall / opt_wall,
            opt.peak_patches,
            identical,
        );
        println!(
            "{:>12}  pool: {} hits / {} misses  {:.1} MiB recycled  steady-state field allocs {}",
            "",
            opt.pool.hits,
            opt.pool.misses,
            opt.pool.bytes_recycled as f64 / (1024.0 * 1024.0),
            opt.pool.steady_misses,
        );
        let pd = &opt.pool_detail;
        println!(
            "{:>12}  tiers: {} home / {} spill / {} steal  ({} borrows, {} shards active)",
            "",
            pd.home_hits,
            pd.spill_hits,
            pd.steal_hits,
            pd.borrow_hits,
            pd.shard_hits.iter().filter(|&&h| h > 0).count(),
        );
        let mut e = String::new();
        let _ = writeln!(e, "    {{");
        let _ = writeln!(e, "      \"name\": \"{name}\",");
        let _ = writeln!(
            e,
            "      \"n0\": {}, \"max_levels\": {}, \"steps\": {}, \"procs_per_site\": {n},",
            scale.n0, scale.max_levels, scale.steps
        );
        let _ = writeln!(e, "      \"cell_updates\": {},", opt.cell_updates);
        let _ = writeln!(e, "      \"peak_patches\": {},", opt.peak_patches);
        let _ = writeln!(e, "      \"final_patches\": {},", opt.final_patches);
        let _ = writeln!(e, "      \"wall_secs\": {},", num(opt_wall));
        let _ = writeln!(e, "      \"cell_updates_per_sec\": {},", num(cups));
        let _ = writeln!(e, "      \"phases\": {},", phases_json(&opt.wall));
        let _ = writeln!(e, "      \"reference_wall_secs\": {},", num(ref_wall));
        let _ = writeln!(e, "      \"reference_phases\": {},", phases_json(&refr.wall));
        let _ = writeln!(e, "      \"speedup_vs_reference\": {},", num(ref_wall / opt_wall));
        let _ = writeln!(e, "      \"pool_hits\": {},", opt.pool.hits);
        let _ = writeln!(e, "      \"pool_misses\": {},", opt.pool.misses);
        let _ = writeln!(e, "      \"pool_bytes_recycled\": {},", opt.pool.bytes_recycled);
        let _ = writeln!(
            e,
            "      \"steady_state_field_allocs\": {},",
            opt.pool.steady_misses
        );
        let shard_hits = pd
            .shard_hits
            .iter()
            .map(|h| h.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            e,
            "      \"pool_detail\": {{\"home_hits\": {}, \"spill_hits\": {}, \
             \"steal_hits\": {}, \"borrow_hits\": {}, \"shard_hits\": [{}]}},",
            pd.home_hits, pd.spill_hits, pd.steal_hits, pd.borrow_hits, shard_hits
        );
        let _ = writeln!(e, "      \"bit_identical\": {identical}");
        let _ = write!(e, "    }}");
        entries.push(e);
    }

    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"quick\": {quick},\n  \"full\": {full},\n  \
         \"presets\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let _ = std::fs::create_dir_all("results");
    std::fs::write(&out, json).expect("write benchmark output");
    println!("wrote {out}");
    if let (Some(path), Some(sink)) = (&trace_out, &last_sink) {
        use telemetry::TelemetrySink as _;
        let trace = sink
            .lock()
            .unwrap()
            .to_chrome_trace()
            .expect("recording sink exports a trace");
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, trace).expect("write Chrome trace");
        println!("wrote {path}");
    }
    if !all_identical {
        eprintln!("FAIL: optimized data path diverged from the reference path");
        std::process::exit(1);
    }
}
