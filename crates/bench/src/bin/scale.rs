//! Federation-scale decision-phase sweep: how does the cost of the global
//! load-balancing decision grow with the number of groups?
//!
//! Sweeps G = 2 → 512 groups (quick tier: → 64) over the seeded
//! [`presets::federation`] site→region→federation topology, holding the
//! *total* processor count fixed so the numerics stay comparable while only
//! the decision structure scales. Each G runs twice: the hierarchical
//! tree-reduction decision path (default) and the flat all-pairs reference
//! (`flat_reference = true`). Writes `results/BENCH_scale.json` with, per
//! run: host decision-phase wall per level-0 step, decision messages per
//! global check, link-estimator pairs allocated, and the final
//! power-normalized imbalance.
//!
//! The claims this sweep backs: flat decision cost grows superlinearly
//! (O(G²) probes + estimator pairs), hierarchical stays near-flat in G
//! (O(G) messages, O(log G) depth), and both paths end runs at equivalent
//! imbalance.
//!
//! Flags: `--quick` (G ≤ 64, smaller domain — the CI tier), `--out PATH`.

use bench::TRAFFIC_SEED;
use dlb::DistributedDlbConfig;
use samr_engine::{AppKind, Driver, RunConfig, RunResult, Scheme};
use std::fmt::Write as _;
use std::time::Instant;
use topology::presets;

/// One (G, mode) measurement.
struct Entry {
    groups: usize,
    procs_per_group: usize,
    mode: &'static str,
    res: RunResult,
    wall_secs: f64,
    steps: usize,
}

fn run_one(groups: usize, procs_per_group: usize, quick: bool, flat: bool) -> Entry {
    let sys = presets::federation(groups, procs_per_group, TRAFFIC_SEED);
    let (n0, steps) = if quick { (64, 3) } else { (128, 3) };
    let mut cfg = RunConfig::new(
        AppKind::Amr64,
        n0,
        steps,
        Scheme::Distributed(DistributedDlbConfig {
            flat_reference: flat,
            ..Default::default()
        }),
    );
    cfg.max_levels = 2;
    // enough level-0 boxes that every processor owns work at every G
    cfg.max_box_cells = 512;
    let t0 = Instant::now();
    let res = Driver::new(sys, cfg).run();
    Entry {
        groups,
        procs_per_group,
        mode: if flat { "flat" } else { "hierarchical" },
        res,
        wall_secs: t0.elapsed().as_secs_f64(),
        steps,
    }
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0.0".to_string()
    }
}

fn entry_json(e: &Entry) -> String {
    let steps = e.steps.max(1) as f64;
    let mut s = String::new();
    let _ = writeln!(s, "    {{");
    let _ = writeln!(
        s,
        "      \"groups\": {}, \"procs_per_group\": {}, \"procs\": {},",
        e.groups,
        e.procs_per_group,
        e.groups * e.procs_per_group
    );
    let _ = writeln!(s, "      \"mode\": \"{}\",", e.mode);
    let _ = writeln!(
        s,
        "      \"decision_secs_per_step\": {},",
        num(e.res.wall.decision / steps)
    );
    let _ = writeln!(
        s,
        "      \"msgs_per_decision\": {},",
        num(e.res.decision_msgs as f64 / steps)
    );
    let _ = writeln!(s, "      \"decision_msgs\": {},", e.res.decision_msgs);
    let _ = writeln!(s, "      \"estimator_pairs\": {},", e.res.estimator_pairs);
    let _ = writeln!(s, "      \"final_imbalance\": {},", num(e.res.final_imbalance));
    let _ = writeln!(s, "      \"global_checks\": {},", e.res.global_checks);
    let _ = writeln!(
        s,
        "      \"redistributions\": {},",
        e.res.global_redistributions
    );
    let _ = writeln!(s, "      \"total_secs\": {},", num(e.res.total_secs));
    let _ = writeln!(s, "      \"wall_secs\": {}", num(e.wall_secs));
    let _ = write!(s, "    }}");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out = arg_after("--out").unwrap_or_else(|| "results/BENCH_scale.json".to_string());

    // Fixed total processor count: only the grouping (and with it the
    // decision structure) changes across the sweep.
    let (total_procs, gs): (usize, &[usize]) = if quick {
        (256, &[2, 4, 8, 16, 32, 64])
    } else {
        (2048, &[2, 4, 8, 16, 32, 64, 128, 256, 512])
    };

    let mut entries = Vec::new();
    println!(
        "{:>7} {:>5} {:>14} {:>18} {:>16} {:>16} {:>10}",
        "groups", "ppg", "mode", "decision s/step", "msgs/decision", "estimator_pairs", "imbalance"
    );
    for &g in gs {
        let ppg = total_procs / g;
        for flat in [false, true] {
            let e = run_one(g, ppg, quick, flat);
            println!(
                "{:>7} {:>5} {:>14} {:>18.6} {:>16.1} {:>16} {:>10.4}",
                e.groups,
                e.procs_per_group,
                e.mode,
                e.res.wall.decision / e.steps.max(1) as f64,
                e.res.decision_msgs as f64 / e.steps.max(1) as f64,
                e.res.estimator_pairs,
                e.res.final_imbalance,
            );
            entries.push(e);
        }
    }

    // Decision-quality equivalence: the hierarchical path must never end a
    // run more than 10% worse balanced than the flat reference (identical
    // decisions at G ≤ 8; at federation scale it typically ends *better*,
    // because per-subtree gating still accepts cheap intra-site moves the
    // flat gate rejects at worst-case WAN pricing).
    let mut ok = true;
    for pair in entries.chunks(2) {
        let (h, f) = (&pair[0], &pair[1]);
        let (a, b) = (h.res.final_imbalance, f.res.final_imbalance);
        if a > 1.10 * b {
            eprintln!(
                "FAIL: G={} hierarchical final imbalance {a:.4} is >10% worse than flat {b:.4}",
                h.groups
            );
            ok = false;
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"quick\": {quick},\n  \"total_procs\": {total_procs},\n  \
         \"sweep\": [\n{}\n  ]\n}}\n",
        entries.iter().map(entry_json).collect::<Vec<_>>().join(",\n")
    );
    let _ = std::fs::create_dir_all("results");
    std::fs::write(&out, json).expect("write benchmark output");
    println!("wrote {out}");
    if !ok {
        std::process::exit(1);
    }
}
