//! # bench — experiment harnesses for every measured figure of the paper
//!
//! Each `fig*`/`ablation_*` function reproduces one figure's data as a
//! [`metrics::Table`]; the `src/bin/*` binaries print them (and write JSON
//! under `results/`), and `benches/figures.rs` wires them into Criterion.
//!
//! `quick = true` shrinks domain/steps for CI-speed smoke runs; `false`
//! uses the full experiment scale recorded in EXPERIMENTS.md.

use metrics::{efficiency, improvement_percent, ConfigRow, Table};
use rayon::prelude::*;
use samr_engine::{AppKind, Driver, RunConfig, RunResult, Scheme};
use topology::{presets, DistributedSystem};

/// Results of both schemes on one `n+n` configuration.
#[derive(Clone, Debug)]
pub struct SchemePair {
    pub n: usize,
    pub parallel: RunResult,
    pub distributed: RunResult,
}

/// Run parallel-DLB and distributed-DLB over every configuration of `app`'s
/// testbed, concurrently (results are simulated time, unaffected by host
/// parallelism).
pub fn run_pairs(app: AppKind, quick: bool) -> Vec<SchemePair> {
    let scale = Scale::pick(quick);
    configs(quick)
        .par_iter()
        .map(|&n| {
            let sys = system_for(app, n);
            let (parallel, distributed) = rayon::join(
                || run_once(sys.clone(), app, Scheme::Parallel, scale),
                || run_once(sys.clone(), app, Scheme::distributed_default(), scale),
            );
            SchemePair {
                n,
                parallel,
                distributed,
            }
        })
        .collect()
}

/// The five processor configurations of the paper's §3/§5 (per site).
pub const CONFIGS: [usize; 5] = [1, 2, 4, 6, 8];

/// Experiment scale.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    pub n0: i64,
    pub max_levels: usize,
    pub steps: usize,
}

impl Scale {
    pub fn full() -> Scale {
        Scale {
            n0: 24,
            max_levels: 4,
            steps: 5,
        }
    }

    pub fn quick() -> Scale {
        Scale {
            n0: 16,
            max_levels: 3,
            steps: 3,
        }
    }

    pub fn pick(quick: bool) -> Scale {
        if quick {
            Scale::quick()
        } else {
            Scale::full()
        }
    }
}

/// Traffic seed used by all figure runs (fixed for reproducibility; the
/// paper ran both schemes back-to-back to see similar traffic — we give
/// both schemes *identical* traffic).
pub const TRAFFIC_SEED: u64 = 20011110; // SC'01 week

/// Run one configuration.
pub fn run_once(sys: DistributedSystem, app: AppKind, scheme: Scheme, scale: Scale) -> RunResult {
    let mut cfg = RunConfig::new(app, scale.n0, scale.steps, scheme);
    cfg.max_levels = scale.max_levels;
    Driver::new(sys, cfg).run()
}

/// The WAN testbed for a `n+n` configuration (ShockPool3D's system).
pub fn wan_system(n: usize) -> DistributedSystem {
    presets::anl_ncsa_wan(n, n, TRAFFIC_SEED)
}

/// The LAN testbed for a `n+n` configuration (AMR64's system).
pub fn lan_system(n: usize) -> DistributedSystem {
    presets::anl_lan_pair(n, n, TRAFFIC_SEED)
}

/// A single parallel machine with `n` processors (§3's comparison system).
pub fn parallel_system(n: usize) -> DistributedSystem {
    presets::single_origin2000(n)
}

/// **Fig. 3** — compare ENZO under the *parallel DLB* on a parallel machine
/// vs. on the WAN-connected distributed system: per-configuration compute
/// and communication times. Returns one table with four series.
pub fn fig3(quick: bool) -> Table {
    let scale = Scale::pick(quick);
    let rows: Vec<ConfigRow> = configs(quick)
        .par_iter()
        .map(|&n| {
            let (par, dist) = rayon::join(
                || {
                    run_once(
                        parallel_system(2 * n),
                        AppKind::ShockPool3D,
                        Scheme::Parallel,
                        scale,
                    )
                },
                || run_once(wan_system(n), AppKind::ShockPool3D, Scheme::Parallel, scale),
            );
            let mut row = ConfigRow::new(format!("{n}+{n}"));
            row.push("parallel computation", par.breakdown.compute);
            row.push("parallel communication", par.breakdown.comm);
            row.push("distributed computation", dist.breakdown.compute);
            row.push("distributed communication", dist.breakdown.comm);
            row
        })
        .collect();
    let mut t = Table::new(
        "Fig. 3 — parallel vs distributed execution of ShockPool3D (parallel DLB on both)",
    );
    for row in rows {
        t.push(row);
    }
    t
}

/// **Fig. 7** — total execution time, parallel DLB vs distributed DLB, on
/// the dataset's testbed (`AMR64` → LAN, `ShockPool3D` → WAN).
pub fn fig7(app: AppKind, quick: bool) -> Table {
    fig7_from(app, &run_pairs(app, quick))
}

/// Build the Fig. 7 table from precomputed scheme pairs.
pub fn fig7_from(app: AppKind, pairs: &[SchemePair]) -> Table {
    let title = match app {
        AppKind::Amr64 => "Fig. 7a — AMR64 on ANL LAN pair: total execution time",
        AppKind::ShockPool3D => "Fig. 7b — ShockPool3D on ANL+NCSA WAN: total execution time",
        AppKind::AdvectBlob => "Fig. 7 (advect-blob variant)",
    };
    let mut t = Table::new(title);
    for p in pairs {
        let mut row = ConfigRow::new(format!("{0}+{0}", p.n));
        row.push("parallel DLB", p.parallel.total_secs);
        row.push("distributed DLB", p.distributed.total_secs);
        row.push(
            "improvement %",
            improvement_percent(p.parallel.total_secs, p.distributed.total_secs),
        );
        t.push(row);
    }
    t
}

/// **Fig. 8** — efficiency `E(1)/(E·P)` for both schemes on both datasets.
pub fn fig8(app: AppKind, quick: bool) -> Table {
    fig8_from(app, &run_pairs(app, quick), quick)
}

/// Build the Fig. 8 table from precomputed scheme pairs (runs the
/// one-processor sequential reference itself).
pub fn fig8_from(app: AppKind, pairs: &[SchemePair], quick: bool) -> Table {
    let scale = Scale::pick(quick);
    let title = match app {
        AppKind::Amr64 => "Fig. 8a — AMR64 efficiency",
        AppKind::ShockPool3D => "Fig. 8b — ShockPool3D efficiency",
        AppKind::AdvectBlob => "Fig. 8 (advect-blob variant)",
    };
    // sequential reference on one processor
    let seq = run_once(parallel_system(1), app, Scheme::Static, scale);
    let e1 = seq.total_secs;
    let mut t = Table::new(title);
    for p in pairs {
        let p_total = system_for(app, p.n).total_power();
        let mut row = ConfigRow::new(format!("{0}+{0}", p.n));
        row.push("parallel DLB", efficiency(e1, p.parallel.total_secs, p_total));
        row.push(
            "distributed DLB",
            efficiency(e1, p.distributed.total_secs, p_total),
        );
        t.push(row);
    }
    t
}

/// **Ablation A** — sensitivity to the γ threshold (the paper's declared
/// future work, §6), swept under two WAN regimes. On a quiet WAN the Eq.-1
/// cost is negligible next to the gain so γ barely matters; under heavy
/// congestion the γ-gate decides how aggressively to fight the network.
pub fn ablation_gamma(app: AppKind, quick: bool) -> Table {
    use topology::link::Link;
    use topology::{SimTime, SystemBuilder, TrafficModel};
    let scale = Scale::pick(quick);
    let n = if quick { 2 } else { 4 };
    let gammas = [0.0, 1.0, 2.0, 16.0, 64.0, 256.0, f64::INFINITY];
    let mut t = Table::new(format!("Ablation — γ sensitivity ({app:?}, {n}+{n})"));
    let regimes: Vec<(&str, TrafficModel)> = vec![
        ("quiet", TrafficModel::Quiet),
        ("congested", TrafficModel::Constant { load: 0.97 }),
    ];
    let rows: Vec<ConfigRow> = gammas
        .par_iter()
        .map(|&gamma| {
            let label = if gamma.is_infinite() {
                "inf".to_string()
            } else {
                format!("{gamma}")
            };
            let mut row = ConfigRow::new(format!("γ={label}"));
            for (name, traffic) in &regimes {
                let wan = Link::shared(
                    "WAN",
                    SimTime::from_millis(6),
                    19.375e6,
                    traffic.clone(),
                );
                let sys = SystemBuilder::new()
                    .group("ANL", n, 1.0, presets::origin2000_intra())
                    .group("NCSA", n, 1.0, presets::origin2000_intra())
                    .connect(0, 1, wan)
                    .build();
                let cfg = dlb::DistributedDlbConfig {
                    gamma,
                    ..Default::default()
                };
                let res = run_once(sys, app, Scheme::Distributed(cfg), scale);
                row.push(format!("{name} total"), res.total_secs);
                row.push(
                    format!("{name} redist"),
                    res.global_redistributions as f64,
                );
            }
            row
        })
        .collect();
    for row in rows {
        t.push(row);
    }
    t
}

/// **Ablation B** — processor heterogeneity (§4 capability the paper's
/// homogeneous testbeds could not exercise): group B runs at `rel`× speed.
pub fn ablation_hetero(quick: bool) -> Table {
    let scale = Scale::pick(quick);
    let n = if quick { 2 } else { 4 };
    let mut t = Table::new(format!(
        "Ablation — heterogeneous processors (ShockPool3D, {n}+{n} WAN)"
    ));
    for rel in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let sys = presets::heterogeneous_wan(n, n, rel, TRAFFIC_SEED);
        let par = run_once(sys.clone(), AppKind::ShockPool3D, Scheme::Parallel, scale);
        let dist = run_once(
            sys,
            AppKind::ShockPool3D,
            Scheme::distributed_default(),
            scale,
        );
        let mut row = ConfigRow::new(format!("B@{rel}x"));
        row.push("parallel DLB", par.total_secs);
        row.push("distributed DLB", dist.total_secs);
        row.push(
            "improvement %",
            improvement_percent(par.total_secs, dist.total_secs),
        );
        t.push(row);
    }
    t
}

/// **Ablation C** — dynamic network adaptation: the same run under
/// different WAN traffic patterns; reports total time and how many global
/// redistributions the γ-gate allowed.
pub fn ablation_traffic(quick: bool) -> Table {
    use topology::link::Link;
    use topology::{SimTime, SystemBuilder, TrafficModel};
    let scale = Scale::pick(quick);
    let n = if quick { 2 } else { 4 };
    let patterns: Vec<(&str, TrafficModel)> = vec![
        ("quiet", TrafficModel::Quiet),
        (
            "diurnal",
            TrafficModel::Diurnal {
                base: 0.45,
                amp: 0.4,
                period: SimTime::from_secs(120).into(),
            },
        ),
        (
            "bursty",
            TrafficModel::Bursty {
                low: 0.2,
                high: 0.85,
                p_on: 0.5,
                slot: SimTime::from_secs(5).into(),
                seed: TRAFFIC_SEED,
            },
        ),
        ("congested", TrafficModel::Constant { load: 0.95 }),
    ];
    let mut t = Table::new(format!(
        "Ablation — WAN traffic patterns (ShockPool3D, {n}+{n})"
    ));
    for (name, traffic) in patterns {
        let wan = Link::shared("WAN", SimTime::from_millis(6), 19.375e6, traffic);
        let sys = SystemBuilder::new()
            .group("ANL", n, 1.0, presets::origin2000_intra())
            .group("NCSA", n, 1.0, presets::origin2000_intra())
            .connect(0, 1, wan)
            .build();
        let par = run_once(sys.clone(), AppKind::ShockPool3D, Scheme::Parallel, scale);
        let dist = run_once(
            sys,
            AppKind::ShockPool3D,
            Scheme::distributed_default(),
            scale,
        );
        let mut row = ConfigRow::new(name);
        row.push("parallel DLB", par.total_secs);
        row.push("distributed DLB", dist.total_secs);
        row.push("redistributions", dist.global_redistributions as f64);
        t.push(row);
    }
    t
}

/// **Ablation D** — sensitivity of the "imbalance exists" threshold (part
/// of the paper's promised sensitivity analysis, §6). Runs at quick scale.
pub fn ablation_tolerance(quick: bool) -> Table {
    let scale = if quick { Scale::quick() } else { Scale { n0: 16, max_levels: 3, steps: 4 } };
    let n = 2;
    let mut t = Table::new(format!(
        "Ablation — imbalance tolerance (ShockPool3D, {n}+{n} WAN)"
    ));
    let rows: Vec<ConfigRow> = [1.0f64, 1.05, 1.1, 1.25, 1.5, 2.0]
        .par_iter()
        .map(|&tol| {
            let cfg = dlb::DistributedDlbConfig {
                imbalance_tolerance: tol,
                ..Default::default()
            };
            let res = run_once(
                wan_system(n),
                AppKind::ShockPool3D,
                Scheme::Distributed(cfg),
                scale,
            );
            let mut row = ConfigRow::new(format!("tol={tol}"));
            row.push("total time", res.total_secs);
            row.push("redistributions", res.global_redistributions as f64);
            row.push("checks", res.global_checks as f64);
            row
        })
        .collect();
    for row in rows {
        t.push(row);
    }
    t
}

/// **Ablation E** — probe smoothing λ (NWS-style EWMA vs the paper's
/// latest-sample estimate) under bursty WAN traffic. Runs at quick scale.
/// Routed through the forecast layer (`PredictorKind::Ewma`) so the
/// smoothed estimate is what the cost gate actually prices — with the
/// reactive default the gate reads the freshest probe sample and λ would
/// only affect the diagnostics.
pub fn ablation_lambda(quick: bool) -> Table {
    let scale = if quick { Scale::quick() } else { Scale { n0: 16, max_levels: 3, steps: 4 } };
    let n = 2;
    let mut t = Table::new(format!(
        "Ablation — probe smoothing λ (ShockPool3D, {n}+{n} bursty WAN)"
    ));
    let rows: Vec<ConfigRow> = [0.25f64, 0.5, 1.0]
        .par_iter()
        .map(|&lambda| {
            let cfg = dlb::DistributedDlbConfig {
                estimator_lambda: lambda,
                predictor: Some(forecast::PredictorKind::Ewma { gain: lambda }),
                forecast_seed: TRAFFIC_SEED,
                ..Default::default()
            };
            let res = run_once(
                wan_system(n),
                AppKind::ShockPool3D,
                Scheme::Distributed(cfg),
                scale,
            );
            let mut row = ConfigRow::new(format!("λ={lambda}"));
            row.push("total time", res.total_secs);
            row.push("redistributions", res.global_redistributions as f64);
            row
        })
        .collect();
    for row in rows {
        t.push(row);
    }
    t
}

/// **Ablation F** — donor-selection policy for global redistribution: the
/// naive cells-based reading of Fig. 6 vs the subtree-workload policy this
/// reproduction converged on (see DESIGN.md §5 implementation notes).
pub fn ablation_selection(quick: bool) -> Table {
    let scale = Scale::pick(quick);
    let n = if quick { 1 } else { 2 };
    let mut t = Table::new(format!(
        "Ablation — donor selection policy (ShockPool3D, {n}+{n} WAN)"
    ));
    let rows: Vec<ConfigRow> = [
        ("subtree-workload", dlb::SelectionPolicy::SubtreeWorkload),
        ("cells (naive)", dlb::SelectionPolicy::Cells),
    ]
    .par_iter()
    .map(|&(name, selection)| {
        let cfg = dlb::DistributedDlbConfig {
            selection,
            ..Default::default()
        };
        let res = run_once(
            wan_system(n),
            AppKind::ShockPool3D,
            Scheme::Distributed(cfg),
            scale,
        );
        let mut row = ConfigRow::new(name);
        row.push("total time", res.total_secs);
        row.push("redistributions", res.global_redistributions as f64);
        row.push("remote MB", res.breakdown.remote_bytes as f64 / 1e6);
        row
    })
    .collect();
    for row in rows {
        t.push(row);
    }
    t
}

/// **Ablation G** — fault injection: the WAN run of Fig. 7 with a seeded
/// outage/degradation schedule on the inter-group link, reporting what the
/// degradation protocol did (retries, rollbacks, quarantines, re-admissions)
/// next to the fault-free baseline.
pub fn ablation_faults(quick: bool) -> Table {
    use topology::faults::FaultSchedule;
    use topology::{SimTime, SystemBuilder};

    let scale = Scale::pick(quick);
    let n = if quick { 2 } else { 4 };
    // Up/down spans scaled to the simulated run length (seconds to minutes),
    // so every seed actually exercises the degradation protocol.
    let (mean_up, mean_down) = (SimTime::from_secs(3), SimTime::from_secs(3));
    let horizon = SimTime::from_secs(3600);
    let mut t = Table::new(format!(
        "Ablation — WAN link faults (ShockPool3D, {n}+{n})"
    ));
    let cases: Vec<(String, Option<u64>)> = std::iter::once(("fault-free".to_string(), None))
        .chain([1u64, 2, 3].into_iter().map(|s| (format!("faults seed {s}"), Some(s))))
        .collect();
    let rows: Vec<ConfigRow> = cases
        .par_iter()
        .map(|(name, seed)| {
            let sys = match seed {
                None => wan_system(n),
                Some(s) => {
                    let wan = presets::mren_oc3_wan(TRAFFIC_SEED)
                        .with_faults(FaultSchedule::generate(*s, horizon, mean_up, mean_down));
                    SystemBuilder::new()
                        .group("ANL", n, 1.0, presets::origin2000_intra())
                        .group("NCSA", n, 1.0, presets::origin2000_intra())
                        .connect(0, 1, wan)
                        .build()
                }
            };
            let res = run_once(sys, AppKind::ShockPool3D, Scheme::distributed_default(), scale);
            let mut row = ConfigRow::new(name.clone());
            row.push("total time", res.total_secs);
            row.push("retries", res.faults.retries as f64);
            row.push("aborts", res.faults.aborts as f64);
            row.push("quarantines", res.faults.quarantines as f64);
            row.push("readmissions", res.faults.readmissions as f64);
            row.push("recovery secs", res.faults.recovery_secs);
            row
        })
        .collect();
    for row in rows {
        t.push(row);
    }
    t
}

/// **Ablation H** — network-weather prediction: the paper's reactive
/// probe-direct cost vs each forecast predictor vs the adaptive selector,
/// under three WAN regimes. Reports total time, redistributions admitted,
/// redistributions aborted mid-transfer (the regret the confident γ-gate
/// exists to avoid), and the β forecast error.
pub fn ablation_forecast(quick: bool) -> Table {
    use forecast::PredictorKind;
    use topology::faults::FaultSchedule;
    use topology::link::Link;
    use topology::{SimTime, SystemBuilder, TrafficModel};

    // one step beyond the smoke scale so each link series scores more than
    // a single out-of-sample probe
    let scale = if quick {
        Scale { n0: 16, max_levels: 3, steps: 4 }
    } else {
        Scale::full()
    };
    let n = if quick { 2 } else { 4 };
    let predictors: Vec<(&str, Option<PredictorKind>)> = vec![
        ("reactive", None),
        ("last", Some(PredictorKind::LastValue)),
        ("mean(8)", Some(PredictorKind::SlidingMean { window: 8 })),
        ("median(5)", Some(PredictorKind::SlidingMedian { window: 5 })),
        ("adaptive-ewma", Some(PredictorKind::AdaptiveEwma)),
        ("adaptive", Some(PredictorKind::Adaptive)),
    ];
    let regimes: &[&str] = &["quiet", "congested", "faulty"];
    let build = |regime: &str| -> DistributedSystem {
        let wan = match regime {
            "quiet" => Link::shared(
                "WAN",
                SimTime::from_millis(6),
                19.375e6,
                TrafficModel::Quiet,
            ),
            // congestion that swings within a level-0 step, so consecutive
            // probes are guaranteed to see different link weather
            "congested" => Link::shared(
                "WAN",
                SimTime::from_millis(6),
                19.375e6,
                TrafficModel::Diurnal {
                    base: 0.6,
                    amp: 0.35,
                    period: SimTime::from_secs(8).into(),
                },
            ),
            _ => presets::mren_oc3_wan(TRAFFIC_SEED).with_faults(FaultSchedule::generate(
                1,
                SimTime::from_secs(3600),
                SimTime::from_secs(3),
                SimTime::from_secs(3),
            )),
        };
        SystemBuilder::new()
            .group("ANL", n, 1.0, presets::origin2000_intra())
            .group("NCSA", n, 1.0, presets::origin2000_intra())
            .connect(0, 1, wan)
            .build()
    };
    let mut t = Table::new(format!(
        "Ablation — network-weather prediction (ShockPool3D, {n}+{n} WAN)"
    ));
    let rows: Vec<ConfigRow> = predictors
        .par_iter()
        .map(|&(name, predictor)| {
            let mut row = ConfigRow::new(name);
            for regime in regimes {
                let cfg = dlb::DistributedDlbConfig {
                    predictor,
                    forecast_seed: TRAFFIC_SEED,
                    ..Default::default()
                };
                let res = run_once(
                    build(regime),
                    AppKind::ShockPool3D,
                    Scheme::Distributed(cfg),
                    scale,
                );
                row.push(format!("{regime} total"), res.total_secs);
                row.push(
                    format!("{regime} admitted"),
                    res.global_redistributions as f64,
                );
                row.push(format!("{regime} aborted"), res.faults.aborts as f64);
                // β is ~5e-8 s/byte; report its MAE in ns/byte so the
                // 3-decimal table rendering doesn't flatten it to zero
                row.push(format!("{regime} β MAE ns/B"), res.forecast.beta_mae * 1e9);
                row.push(format!("{regime} load MAE"), res.forecast.load_mae);
            }
            row
        })
        .collect();
    for row in rows {
        t.push(row);
    }
    t
}

fn system_for(app: AppKind, n: usize) -> DistributedSystem {
    match app {
        AppKind::Amr64 => lan_system(n),
        _ => wan_system(n),
    }
}

fn configs(quick: bool) -> &'static [usize] {
    if quick {
        &CONFIGS[..2]
    } else {
        &CONFIGS
    }
}

/// Write a table to `results/<name>.json` (best-effort) and return the
/// rendered text.
pub fn emit(table: &Table, name: &str) -> String {
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write(format!("results/{name}.json"), table.to_json());
    table.render()
}
