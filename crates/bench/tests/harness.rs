//! Smoke tests of the figure harnesses at quick scale: every figure builds
//! a structurally valid table with the series the paper plots.

use samr_engine::AppKind;

#[test]
fn fig7_quick_has_both_schemes_and_improvement() {
    let t = bench::fig7(AppKind::ShockPool3D, true);
    let series = t.series();
    assert!(series.contains(&"parallel DLB".to_string()));
    assert!(series.contains(&"distributed DLB".to_string()));
    assert!(series.contains(&"improvement %".to_string()));
    assert_eq!(t.rows.len(), 2, "quick mode runs two configurations");
    for row in &t.rows {
        let p = row.get("parallel DLB").unwrap();
        let d = row.get("distributed DLB").unwrap();
        assert!(p > 0.0 && d > 0.0);
        let imp = row.get("improvement %").unwrap();
        assert!((imp - (p - d) / p * 100.0).abs() < 1e-9);
    }
}

#[test]
fn fig3_quick_shape() {
    let t = bench::fig3(true);
    for row in &t.rows {
        // compute similar, distributed comm much larger
        let pc = row.get("parallel computation").unwrap();
        let dc = row.get("distributed computation").unwrap();
        assert!((pc / dc - 1.0).abs() < 0.3, "compute ratio {}", pc / dc);
        let pm = row.get("parallel communication").unwrap();
        let dm = row.get("distributed communication").unwrap();
        assert!(dm > pm, "distributed comm {dm} must exceed parallel {pm}");
    }
}

#[test]
fn fig8_quick_efficiencies_sane() {
    let t = bench::fig8(AppKind::AdvectBlob, true);
    for row in &t.rows {
        for (_, v) in &row.values {
            assert!(*v > 0.0 && *v < 1.6, "efficiency {v} out of range");
        }
    }
}

#[test]
fn emit_writes_json() {
    let t = bench::ablation_lambda(true);
    let rendered = bench::emit(&t, "test_emit_tmp");
    assert!(rendered.contains("λ=1"));
    let json = std::fs::read_to_string("results/test_emit_tmp.json").unwrap();
    assert!(json.contains("total time"));
    let _ = std::fs::remove_file("results/test_emit_tmp.json");
}

#[test]
fn forecast_ablation_adaptive_regrets_no_more_than_reactive() {
    let t = bench::ablation_forecast(true);
    assert_eq!(t.rows.len(), 6, "six predictor rows");
    let reactive = &t.rows[0];
    assert_eq!(reactive.config, "reactive");
    let adaptive = t.rows.iter().find(|r| r.config == "adaptive").unwrap();
    for regime in ["congested", "faulty"] {
        let r = reactive.get(&format!("{regime} aborted")).unwrap();
        let a = adaptive.get(&format!("{regime} aborted")).unwrap();
        assert!(
            a <= r,
            "{regime}: adaptive aborted {a} redistributions vs reactive {r}"
        );
    }
    for row in &t.rows {
        assert!(row.get("quiet total").unwrap() > 0.0);
        for regime in ["quiet", "congested", "faulty"] {
            let mae = row.get(&format!("{regime} β MAE ns/B")).unwrap();
            assert!(mae.is_finite() && mae >= 0.0);
            assert!(row.get(&format!("{regime} load MAE")).unwrap() >= 0.0);
        }
    }
}

#[test]
fn selection_policy_quick_comparison() {
    let t = bench::ablation_selection(true);
    assert_eq!(t.rows.len(), 2);
    let sub = t.rows[0].get("total time").unwrap();
    let naive = t.rows[1].get("total time").unwrap();
    assert!(sub > 0.0 && naive > 0.0);
}
