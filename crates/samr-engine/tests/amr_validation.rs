//! Validation that the *composite* SAMR solution is physically meaningful:
//! the refined hierarchy must track the feature (an advected blob) the same
//! way a flat run does, and refinement must follow the feature.

use samr_engine::{AppKind, Driver, RunConfig, Scheme};
use samr_mesh::ivec3;
use topology::presets;

/// Center of mass (x) of the scalar field over the level-0 grids.
fn level0_com_x(d: &Driver) -> f64 {
    let h = d.hierarchy();
    let mut m = 0.0;
    let mut mx = 0.0;
    for &id in h.level_ids(0) {
        let p = h.patch(id);
        for c in p.region.iter_cells() {
            let v = p.fields[0].get(c);
            m += v;
            mx += v * (c.x as f64 + 0.5);
        }
    }
    mx / m.max(1e-30)
}

#[test]
fn blob_advects_at_the_right_speed_with_amr() {
    // AdvectBlob moves at (1, 0.6, 0) cells per unit time with dt/dx = 0.5
    // per level-0 step ⇒ the x center of mass advances 0.5 per step.
    let sys = presets::single_origin2000(2);
    let mut cfg = RunConfig::new(AppKind::AdvectBlob, 16, 0, Scheme::Static);
    cfg.max_levels = 3;
    let mut d = Driver::new(sys, cfg);
    let x0 = level0_com_x(&d);
    let steps = 6;
    for _ in 0..steps {
        d.step_once();
    }
    let x1 = level0_com_x(&d);
    let expected = 0.5 * steps as f64;
    assert!(
        (x1 - x0 - expected).abs() < 0.35,
        "com moved {} (expected ~{expected})",
        x1 - x0
    );
}

#[test]
fn refinement_follows_the_blob() {
    let sys = presets::single_origin2000(2);
    let mut cfg = RunConfig::new(AppKind::AdvectBlob, 16, 0, Scheme::Static);
    cfg.max_levels = 2;
    let mut d = Driver::new(sys, cfg);

    let refined_com = |d: &Driver| -> f64 {
        let h = d.hierarchy();
        let mut n = 0.0;
        let mut cx = 0.0;
        for &id in h.level_ids(1) {
            let p = h.patch(id);
            cx += (p.region.lo.x + p.region.hi.x) as f64 / 4.0 * p.cells() as f64; // /2 for mid, /2 for level
            n += p.cells() as f64;
        }
        cx / n.max(1.0)
    };
    let r0 = refined_com(&d);
    for _ in 0..6 {
        d.step_once();
    }
    let r1 = refined_com(&d);
    // refinement tracks the blob: moved ~3 level-0 cells in x
    assert!(
        (r1 - r0 - 3.0).abs() < 1.5,
        "refined region moved {} (expected ~3)",
        r1 - r0
    );
}

#[test]
fn amr_matches_flat_run_on_coarse_grid() {
    // Level-0 fields of a max_levels=2 run must stay close to a flat
    // (max_levels=1) run of the same scenario: restriction feeds the fine
    // solution back, so differences reflect only the (better) fine fluxes.
    let sys = presets::single_origin2000(1);
    let run = |levels: usize| {
        let mut cfg = RunConfig::new(AppKind::AdvectBlob, 16, 0, Scheme::Static);
        cfg.max_levels = levels;
        let mut d = Driver::new(sys.clone(), cfg);
        for _ in 0..4 {
            d.step_once();
        }
        d
    };
    let flat = run(1);
    let amr = run(2);
    // compare level-0 values cell by cell
    let get = |d: &Driver, c| {
        let h = d.hierarchy();
        for &id in h.level_ids(0) {
            let p = h.patch(id);
            if p.region.contains(c) {
                return p.fields[0].get(c);
            }
        }
        unreachable!()
    };
    let mut max_diff: f64 = 0.0;
    let mut max_val: f64 = 0.0;
    for x in 0..16 {
        for y in 0..16 {
            for z in 0..16 {
                let c = ivec3(x, y, z);
                max_diff = max_diff.max((get(&flat, c) - get(&amr, c)).abs());
                max_val = max_val.max(get(&flat, c).abs());
            }
        }
    }
    assert!(
        max_diff < 0.35 * max_val,
        "AMR level-0 deviates too much from flat: {max_diff} vs scale {max_val}"
    );
    // and the total blob mass agrees closely
    let mass = |d: &Driver| -> f64 {
        let h = d.hierarchy();
        h.level_ids(0)
            .iter()
            .map(|&id| h.patch(id).fields[0].interior_sum())
            .sum()
    };
    let (mf, ma) = (mass(&flat), mass(&amr));
    assert!((mf - ma).abs() / mf < 0.05, "mass {mf} vs {ma}");
}
