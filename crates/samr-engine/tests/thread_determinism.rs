//! Sharded field pools and row kernels must not make results depend on the
//! number of rayon workers or their scheduling: which shard a scratch
//! buffer comes from never changes its (zero-filled) contents, and every
//! parallel loop writes disjoint per-patch state. A run's observable
//! fingerprint therefore has to be identical under 1, 2, and 8 threads.

use samr_engine::{AppKind, Driver, RunConfig, Scheme};
use topology::presets;

type Fingerprint = (u64, u64, u64, usize, usize, usize);

fn run_with_threads(app: AppKind, threads: usize) -> Fingerprint {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    let r = pool.install(|| {
        let mut cfg = RunConfig::new(app, 16, 3, Scheme::distributed_default());
        cfg.max_levels = 3;
        Driver::new(presets::anl_ncsa_wan(2, 2, 11), cfg).run()
    });
    (
        r.total_secs.to_bits(),
        r.cell_updates,
        r.breakdown.remote_bytes,
        r.final_patches,
        r.peak_patches,
        r.global_redistributions,
    )
}

#[test]
fn shockpool_fingerprint_identical_under_1_2_8_threads() {
    let one = run_with_threads(AppKind::ShockPool3D, 1);
    for threads in [2, 8] {
        assert_eq!(
            run_with_threads(AppKind::ShockPool3D, threads),
            one,
            "threads={threads}"
        );
    }
}

#[test]
fn amr64_fingerprint_identical_under_1_2_8_threads() {
    // AMR64 exercises every solver the engine has (Euler + Poisson) plus
    // the particle deposit on the flagging path
    let one = run_with_threads(AppKind::Amr64, 1);
    for threads in [2, 8] {
        assert_eq!(
            run_with_threads(AppKind::Amr64, threads),
            one,
            "threads={threads}"
        );
    }
}
