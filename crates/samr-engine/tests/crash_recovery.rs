//! Crash-stop recovery integration: kill a processor mid-run and check the
//! elastic-recovery path end to end — the crash is detected at the next
//! step boundary, the dead proc's patches are evacuated to survivors (data
//! reconstructed from the per-step recovery checkpoint, recompute charged),
//! the balancer prices the shrunken proc set, and a recovered proc rejoins
//! with zero load. Plus the determinism and checkpoint/pool guarantees the
//! chaos harness builds on.

use samr_engine::{AppKind, Driver, RunConfig, Scheme};
use telemetry::{EventKind, Telemetry};
use topology::faults::{FaultSchedule, ProcFaultSchedule};
use topology::link::Link;
use topology::{presets, DistributedSystem, SimTime, SystemBuilder};

const STEPS: usize = 10;
const N0: i64 = 16;

/// A quiet 2+2 WAN pair so the fault schedules are the only variable.
fn wan_pair(link_faults: FaultSchedule) -> DistributedSystem {
    let wan = Link::dedicated("wan", SimTime::from_millis(5), 2e7).with_faults(link_faults);
    SystemBuilder::new()
        .group("A", 2, 1.0, presets::origin2000_intra())
        .group("B", 2, 1.0, presets::origin2000_intra())
        .connect(0, 1, wan)
        .build()
}

/// An eager distributed scheme (γ = 0, tight tolerance) so the DLB phases
/// visibly react to the shrunken and re-grown proc set.
fn cfg() -> RunConfig {
    let scheme = Scheme::Distributed(dlb::DistributedDlbConfig {
        gamma: 0.0,
        imbalance_tolerance: 1.02,
        probe_small_bytes: 256,
        probe_large_bytes: 4096,
        ..Default::default()
    });
    let mut c = RunConfig::new(AppKind::ShockPool3D, N0, STEPS, scheme);
    c.max_levels = 3;
    c
}

/// Simulated length of the fault-free run, used to place crash windows.
fn baseline_secs() -> f64 {
    let base = Driver::new(wan_pair(FaultSchedule::none()), cfg()).run();
    assert_eq!(
        base.recovery,
        metrics::RecoveryStats::default(),
        "fault-free run must report no recovery activity"
    );
    base.total_secs
}

#[test]
fn proc_crash_evacuates_and_run_completes() {
    let b = baseline_secs();
    // proc 1 (group A, non-head) dies at ~30% of the run and never returns
    let sched = ProcFaultSchedule::none(4).with_crash(
        1,
        SimTime::from_secs_f64(0.3 * b),
        SimTime::from_secs_f64(1e6),
    );
    let (tel, sink) = Telemetry::recording_shared();
    let mut c = cfg();
    c.proc_faults = sched;
    c.telemetry = tel;
    let mut d = Driver::new(wan_pair(FaultSchedule::none()), c);
    for _ in 0..STEPS {
        d.step_once();
    }
    d.hierarchy()
        .check_invariants()
        .expect("AMR invariants after evacuation");
    // no patch lost or duplicated: level 0 still tiles the domain exactly
    let l0: i64 = d
        .hierarchy()
        .level_ids(0)
        .iter()
        .map(|&id| d.hierarchy().patch(id).cells())
        .sum();
    assert_eq!(l0, N0 * N0 * N0, "level 0 no longer tiles the domain");
    // the dead proc owns nothing
    assert!(
        d.hierarchy().iter().all(|p| p.owner != 1),
        "dead proc still owns patches"
    );

    let totals = d.trace().recovery_totals();
    let res = d.finish();
    assert_eq!(res.recovery.crashes, 1, "{:?}", res.recovery);
    assert_eq!(res.recovery.rejoins, 0);
    assert_eq!(res.recovery.evacuations, 1);
    assert!(res.recovery.evacuated_cells > 0, "{:?}", res.recovery);
    assert!(res.recovery.recompute_secs > 0.0, "{:?}", res.recovery);
    assert!(res.recovery.mttr_max_secs > 0.0, "{:?}", res.recovery);
    assert!(res.recovery.mttr_mean_secs <= res.recovery.mttr_max_secs);
    // run-level counters agree with the per-step trace
    assert_eq!(totals.crashes, res.recovery.crashes);
    assert_eq!(totals.evacuated_cells, res.recovery.evacuated_cells);
    assert!((totals.recompute_secs - res.recovery.recompute_secs).abs() < 1e-9);

    // audit log: the evacuation follows the crash that caused it
    let events = sink.lock().unwrap().events();
    let crash = events
        .iter()
        .find(|e| matches!(e.kind, EventKind::Crash(_)))
        .expect("crash event recorded");
    let evac = events
        .iter()
        .find(|e| matches!(e.kind, EventKind::Evacuate(_)))
        .expect("evacuate event recorded");
    assert!(crash.seq < evac.seq, "evacuation must follow its crash");
    if let EventKind::Crash(ce) = &crash.kind {
        assert_eq!(ce.proc, 1);
        assert_eq!(ce.group, 0);
    }
    if let EventKind::Evacuate(ee) = &evac.kind {
        assert_eq!(ee.proc, 1);
        assert_eq!(ee.cells, res.recovery.evacuated_cells);
        assert!(ee.patches > 0);
    }
}

#[test]
fn crashed_proc_rejoins_with_zero_load_and_is_refilled() {
    let b = baseline_secs();
    // proc 3 (group B, non-head) is down for ~[20%, 50%] of the baseline
    let sched = ProcFaultSchedule::none(4).with_crash(
        3,
        SimTime::from_secs_f64(0.2 * b),
        SimTime::from_secs_f64(0.5 * b),
    );
    let mut c = cfg();
    c.proc_faults = sched;
    let mut d = Driver::new(wan_pair(FaultSchedule::none()), c);
    for _ in 0..STEPS {
        d.step_once();
    }
    d.hierarchy()
        .check_invariants()
        .expect("AMR invariants after rejoin");
    // the eager local phase refills the returned proc from its group peers
    assert!(
        d.hierarchy().iter().any(|p| p.owner == 3),
        "rejoined proc was never refilled by the DLB"
    );
    let res = d.finish();
    assert_eq!(res.recovery.crashes, 1, "{:?}", res.recovery);
    assert_eq!(res.recovery.rejoins, 1, "{:?}", res.recovery);
    assert!(res.total_secs > 0.0);
}

/// Satellite: all fault-path randomness is seeded — two identical runs with
/// combined link + proc faults produce bit-identical traces.
#[test]
fn identical_faulty_runs_produce_identical_traces() {
    let horizon = SimTime::from_secs(3600);
    let link = FaultSchedule::generate(
        7,
        horizon,
        SimTime::from_secs(3),
        SimTime::from_secs(3),
    );
    let procs = ProcFaultSchedule::generate(
        7,
        4,
        &[0, 2], // protect the group heads
        horizon,
        SimTime::from_secs(4),
        SimTime::from_secs(2),
    );
    let go = || {
        let mut c = cfg();
        c.proc_faults = procs.clone();
        let mut d = Driver::new(wan_pair(link.clone()), c);
        for _ in 0..STEPS {
            d.step_once();
        }
        let csv = d.trace().to_csv();
        let res = d.finish();
        (csv, res.total_secs)
    };
    let (csv_a, total_a) = go();
    let (csv_b, total_b) = go();
    assert_eq!(csv_a, csv_b, "faulty runs must be deterministic per seed");
    assert_eq!(total_a, total_b);
}

/// Satellite: the recurring recovery checkpoint and the crash restores draw
/// their buffers from the field pool — recovery causes no steady-state
/// allocation regression. The steady window is the final step and the crash
/// is detected at its opening barrier, so the whole evacuate + restore +
/// re-snapshot sequence runs under the zero-alloc assertion.
#[test]
fn recovery_allocates_nothing_in_steady_state() {
    let b = baseline_secs();
    let mut c = cfg();
    // dies mid-penultimate-step, detected at the final step's barrier
    c.proc_faults = ProcFaultSchedule::none(4).with_crash(
        1,
        SimTime::from_secs_f64((STEPS as f64 - 1.5) / STEPS as f64 * b),
        SimTime::from_secs_f64(1e6),
    );
    c.pool_warmup_steps = STEPS - 1;
    let res = Driver::new(wan_pair(FaultSchedule::none()), c).run();
    assert_eq!(res.recovery.crashes, 1, "{:?}", res.recovery);
    assert!(res.recovery.evacuated_cells > 0);
    assert_eq!(
        res.pool.steady_misses, 0,
        "recovery must not allocate field buffers in steady state: {:?}",
        res.pool
    );
}

/// Satellite: checkpointing the post-evacuation hierarchy is exact — the
/// in-memory snapshot/restore round-trip preserves every owner and field
/// bit-identically.
#[test]
fn post_evacuation_checkpoint_restores_bit_identically() {
    let b = baseline_secs();
    let mut c = cfg();
    c.proc_faults = ProcFaultSchedule::none(4).with_crash(
        1,
        SimTime::from_secs_f64(0.3 * b),
        SimTime::from_secs_f64(1e6),
    );
    let mut d = Driver::new(wan_pair(FaultSchedule::none()), c);
    for _ in 0..STEPS {
        d.step_once();
    }
    assert!(d.trace().recovery_totals().crashes >= 1);
    let ck = d.checkpoint();
    let restored = samr_mesh::checkpoint::restore(&ck.hierarchy);
    assert!(restored.check_invariants().is_ok());
    assert_eq!(restored.num_patches(), d.hierarchy().num_patches());
    for p in d.hierarchy().iter() {
        let q = restored.patch(p.id);
        assert_eq!(q.owner, p.owner);
        assert_eq!(q.region, p.region);
        assert_eq!(q.fields, p.fields);
    }
}

/// Satellite (JSON half): `Checkpoint::to_json`/`from_json` round-trips the
/// post-evacuation hierarchy bit-identically.
#[test]
fn post_evacuation_checkpoint_roundtrips_through_json() {
    let b = baseline_secs();
    let mut c = cfg();
    c.proc_faults = ProcFaultSchedule::none(4).with_crash(
        1,
        SimTime::from_secs_f64(0.3 * b),
        SimTime::from_secs_f64(1e6),
    );
    let mut d = Driver::new(wan_pair(FaultSchedule::none()), c);
    for _ in 0..STEPS {
        d.step_once();
    }
    assert!(d.trace().recovery_totals().crashes >= 1);
    let ck = d.checkpoint();
    let back = samr_engine::Checkpoint::from_json(&ck.to_json()).expect("checkpoint parses");
    assert_eq!(back.hierarchy.patches.len(), ck.hierarchy.patches.len());
    for (a, s) in back.hierarchy.patches.iter().zip(&ck.hierarchy.patches) {
        assert_eq!(a.id, s.id);
        assert_eq!(a.owner, s.owner);
        assert_eq!(a.fields, s.fields);
    }
}
