//! Fault-recovery integration: kill the inter-group link mid-run and check
//! the whole degradation protocol end to end — aborted redistributions roll
//! back, the unreachable group is quarantined (local DLB keeps going), a
//! probation probe re-admits it, and the run still finishes with a valid
//! hierarchy.

use samr_engine::{AppKind, Driver, RunConfig, Scheme};
use topology::faults::{FaultKind, FaultSchedule};
use topology::link::Link;
use topology::{presets, DistributedSystem, SimTime};
use topology::SystemBuilder;

const STEPS: usize = 10;

/// A quiet 2+2 WAN pair so the fault schedule is the only variable.
fn wan_pair(sched: FaultSchedule) -> DistributedSystem {
    let wan = Link::dedicated("wan", SimTime::from_millis(5), 2e7).with_faults(sched);
    SystemBuilder::new()
        .group("A", 2, 1.0, presets::origin2000_intra())
        .group("B", 2, 1.0, presets::origin2000_intra())
        .connect(0, 1, wan)
        .build()
}

/// An eager distributed scheme (γ = 0, tight tolerance) with a hair-trigger
/// quarantine so a single failure exercises the whole protocol.
fn cfg() -> RunConfig {
    let scheme = Scheme::Distributed(dlb::DistributedDlbConfig {
        gamma: 0.0,
        imbalance_tolerance: 1.02,
        // Probes small enough to squeeze under the DropLarge threshold
        // below, so the protocol can tell "bulk traffic dies" from "dead".
        probe_small_bytes: 256,
        probe_large_bytes: 4096,
        fault: dlb::FaultTolerancePolicy {
            quarantine_after: 1,
            probation_interval: 1,
            ..Default::default()
        },
        ..Default::default()
    });
    let mut c = RunConfig::new(AppKind::ShockPool3D, 16, STEPS, scheme);
    c.max_levels = 3;
    c
}

/// Simulated length of the fault-free run, used to place fault windows so
/// they end while the (slower) faulted run is still going.
fn baseline_secs() -> f64 {
    let base = Driver::new(wan_pair(FaultSchedule::none()), cfg()).run();
    assert!(
        base.global_redistributions >= 1,
        "baseline must redistribute for the fault tests to mean anything: {}",
        base.summary()
    );
    assert_eq!(base.faults, metrics::FaultCounters::default());
    base.total_secs
}

#[test]
fn midflight_link_failure_rolls_back_quarantines_and_readmits() {
    // Large transfers die partway through for the first ~60% of the run:
    // probes and load reports (≤ 4 KiB) pass, grid migrations (tens of KiB
    // once ghost zones are counted) are cut mid-flight.
    let window_end = SimTime::from_secs_f64(0.6 * baseline_secs());
    let sched = FaultSchedule::none().with_window(
        SimTime::ZERO,
        window_end,
        FaultKind::DropLarge {
            threshold_bytes: 8 << 10,
        },
    );
    let mut d = Driver::new(wan_pair(sched), cfg());
    for _ in 0..STEPS {
        d.step_once();
    }
    // Rollback must leave a structurally valid hierarchy behind.
    d.hierarchy()
        .check_invariants()
        .expect("AMR invariants after rollback");

    let totals = d.trace().fault_totals();
    let res = d.finish();
    assert!(totals.aborts >= 1, "expected >=1 rolled-back redistribution: {totals:?}");
    assert!(totals.quarantines >= 1, "expected >=1 quarantine: {totals:?}");
    assert!(totals.readmissions >= 1, "expected >=1 re-admission: {totals:?}");
    assert!(totals.recovery_secs > 0.0, "{totals:?}");

    // The per-step trace and the run-level counters agree.
    assert_eq!(res.faults.aborts, totals.aborts);
    assert_eq!(res.faults.quarantines, totals.quarantines);
    assert_eq!(res.faults.readmissions, totals.readmissions);
    assert!((res.faults.recovery_secs - totals.recovery_secs).abs() < 1e-9);

    // The decision log records which invocations were aborted.
    assert!(res.decisions.iter().any(|s| s.aborted));
    // After the window clears, at least one redistribution goes through.
    assert!(
        res.global_redistributions as u64 > totals.aborts
            || res.decisions.iter().any(|s| s.invoked && !s.aborted),
        "a post-recovery redistribution should succeed: {res:?}"
    );
    assert!(res.total_secs > 0.0);
}

#[test]
fn outage_quarantines_group_and_probation_readmits_it() {
    // The WAN is dead outright for the first half of the run: decision
    // collectives fail even after retries, group B is quarantined, and the
    // probation probe only passes once the outage lifts.
    let window_end = SimTime::from_secs_f64(0.5 * baseline_secs());
    let sched =
        FaultSchedule::none().with_window(SimTime::ZERO, window_end, FaultKind::Outage);
    let mut d = Driver::new(wan_pair(sched), cfg());
    for _ in 0..STEPS {
        d.step_once();
    }
    d.hierarchy()
        .check_invariants()
        .expect("AMR invariants after outage");

    let totals = d.trace().fault_totals();
    let res = d.finish();
    assert!(totals.comm_failures >= 1, "collectives must have failed: {totals:?}");
    assert!(totals.quarantines >= 1, "{totals:?}");
    assert!(totals.readmissions >= 1, "probation must re-admit B: {totals:?}");
    assert!(totals.recovery_secs > 0.0, "{totals:?}");
    assert_eq!(res.faults.comm_failures, totals.comm_failures);
    assert_eq!(res.steps, STEPS);
}
