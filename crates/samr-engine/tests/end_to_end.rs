//! End-to-end driver tests: full SAMR runs on simulated testbeds.

use samr_engine::{AppKind, Driver, RunConfig, Scheme};
use topology::presets;

fn run(app: AppKind, scheme: Scheme, steps: usize) -> samr_engine::RunResult {
    let sys = presets::anl_ncsa_wan(2, 2, 7);
    let mut cfg = RunConfig::new(app, 16, steps, scheme);
    cfg.max_levels = 3;
    Driver::new(sys, cfg).run()
}

#[test]
fn shockpool_runs_and_refines() {
    let r = run(AppKind::ShockPool3D, Scheme::Static, 2);
    assert_eq!(r.steps, 2);
    assert!(r.levels >= 2, "shock must trigger refinement: {r:?}");
    assert!(r.total_secs > 0.0);
    assert!(r.cell_updates > 0);
}

#[test]
fn distributed_beats_parallel_on_wan() {
    let p = run(AppKind::ShockPool3D, Scheme::Parallel, 3);
    let d = run(AppKind::ShockPool3D, Scheme::distributed_default(), 3);
    println!("parallel:    {}", p.summary());
    println!("distributed: {}", d.summary());
    // the headline claim, in miniature: distributed DLB reduces total time
    assert!(
        d.total_secs < p.total_secs,
        "distributed {:.2}s should beat parallel {:.2}s",
        d.total_secs,
        p.total_secs
    );
    // mechanism: less remote traffic
    assert!(d.breakdown.remote_bytes < p.breakdown.remote_bytes);
}

#[test]
fn same_physics_same_workload() {
    // adaptation follows the physics, so both schemes execute a similar
    // number of cell updates (ownership differs, work does not much)
    let p = run(AppKind::ShockPool3D, Scheme::Parallel, 2);
    let d = run(AppKind::ShockPool3D, Scheme::distributed_default(), 2);
    let ratio = p.cell_updates as f64 / d.cell_updates as f64;
    assert!((0.8..1.25).contains(&ratio), "workload ratio {ratio}");
}

#[test]
fn amr64_runs() {
    let r = run(AppKind::Amr64, Scheme::distributed_default(), 2);
    assert!(r.levels >= 2, "{r:?}");
    assert!(r.final_patches >= 2);
}

#[test]
fn deterministic_across_runs() {
    let a = run(AppKind::ShockPool3D, Scheme::distributed_default(), 2);
    let b = run(AppKind::ShockPool3D, Scheme::distributed_default(), 2);
    assert_eq!(a.total_secs, b.total_secs);
    assert_eq!(a.cell_updates, b.cell_updates);
    assert_eq!(a.breakdown.remote_bytes, b.breakdown.remote_bytes);
}

#[test]
fn children_stay_local_under_distributed_dlb() {
    let sys = presets::anl_ncsa_wan(2, 2, 7);
    let mut cfg = RunConfig::new(
        AppKind::ShockPool3D,
        16,
        2,
        Scheme::distributed_default(),
    );
    cfg.max_levels = 3;
    let mut driver = Driver::new(sys, cfg);
    // run manually? Driver::run consumes; instead inspect after construction
    // (initial hierarchy) and rely on placement invariant
    let hier = driver.hierarchy();
    let sys = driver.system().clone();
    for p in hier.iter() {
        if let Some(parent) = p.parent {
            let pg = sys.group_of(topology::ProcId(hier.patch(parent).owner));
            let cg = sys.group_of(topology::ProcId(p.owner));
            assert_eq!(pg, cg, "child in different group than parent");
        }
    }
    let _ = &mut driver;
}
